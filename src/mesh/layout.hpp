#pragma once
/// \file layout.hpp
/// Structural description of multiport-interferometer architectures
/// (paper Section 4). A mesh is an ordered list of *columns*; each column
/// is one of:
///   - MziColumn:     programmable MZI cells (2 phases each) at given rows,
///   - PhaseColumn:   one programmable phase shifter on every waveguide,
///   - CouplerColumn: fixed 50:50 couplers (no phases) at given rows.
///
/// This IR expresses every architecture the paper names:
///   - Reck triangle and Clements rectangle       (MziColumns + output PhaseColumn)
///   - Bell & Walmsley compacted cells            (MziStyle::kSymmetric)
///   - Fldzhyan parallel-PS / error-tolerant mesh (PhaseColumns interleaved
///     with fixed CouplerColumns; programmed by optimization)
///   - redundant rectangles (extra columns)       (the "newly proposed
///     architectures" extension hook)

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "photonics/mzi.hpp"

namespace aspen::mesh {

/// Programmable MZI cells; `top_ports` lists the upper row of each cell,
/// strictly increasing, with gaps >= 2 (cells must not overlap).
struct MziColumn {
  std::vector<int> top_ports;
};

/// A full column of per-waveguide phase shifters (N phases).
struct PhaseColumn {};

/// Fixed 50:50 couplers (no programmable phase) at the given rows.
struct CouplerColumn {
  std::vector<int> top_ports;
};

using Column = std::variant<MziColumn, PhaseColumn, CouplerColumn>;

/// A mesh architecture: geometry only, no phase values.
struct MeshLayout {
  std::size_t ports = 0;
  phot::MziStyle style = phot::MziStyle::kStandard;
  std::string name;
  std::vector<Column> columns;

  /// Total number of programmable phases (2 per MZI cell, `ports` per
  /// phase column). This is the length of a phase vector for this layout.
  [[nodiscard]] std::size_t phase_count() const;
  /// Number of MZI cells across all MZI columns.
  [[nodiscard]] std::size_t mzi_count() const;
  /// Number of fixed directional couplers (2 per MZI + coupler columns).
  [[nodiscard]] std::size_t coupler_count() const;
  /// Optical depth in columns.
  [[nodiscard]] std::size_t depth() const { return columns.size(); }

  /// Validate structural invariants (port ranges, non-overlap);
  /// throws std::invalid_argument on violation.
  void validate() const;
};

/// Greedy column packer: turns an ordered list of two-mode cell positions
/// (encounter order — the order the optical signal meets them) into the
/// minimal column arrangement that preserves ordering constraints between
/// cells sharing a waveguide. Used by the analytic decompositions to
/// build Reck triangles / Clements rectangles, and exposed for custom
/// architectures.
class ColumnPacker {
 public:
  /// Add a cell with the given top port; returns (column, slot-in-order).
  std::size_t add_cell(int top_port, std::size_t ports);
  /// Final columns (top ports sorted within each column).
  [[nodiscard]] std::vector<MziColumn> columns() const;
  /// For each added cell (in add order): its column index.
  [[nodiscard]] const std::vector<std::size_t>& cell_columns() const {
    return cell_columns_;
  }

 private:
  std::vector<std::vector<int>> cols_;
  std::vector<std::size_t> port_busy_until_;  ///< next free column per port
  std::vector<std::size_t> cell_columns_;
};

/// Clements rectangle for `n` ports: n MZI columns on alternating offsets
/// plus a trailing output PhaseColumn; n(n-1)/2 cells, depth n+1 columns.
[[nodiscard]] MeshLayout clements_layout(std::size_t n,
                                         phot::MziStyle style =
                                             phot::MziStyle::kStandard);

/// Reck triangle for `n` ports (depth 2n-3 MZI columns + output phases).
[[nodiscard]] MeshLayout reck_layout(std::size_t n,
                                     phot::MziStyle style =
                                         phot::MziStyle::kStandard);

/// Fldzhyan-style error-tolerant mesh: `phase_layers` full PhaseColumns
/// interleaved with fixed alternating-offset CouplerColumns. The published
/// universal design uses phase_layers = n + 1 (default when 0 is passed).
/// No analytic decomposition exists; program it with mesh::calibrate.
[[nodiscard]] MeshLayout fldzhyan_layout(std::size_t n,
                                         std::size_t phase_layers = 0);

/// Clements rectangle with `extra_columns` additional MZI columns —
/// redundancy that in-situ calibration can exploit under fabrication
/// error (the paper's "newly proposed multiport interferometer
/// architectures" hook).
[[nodiscard]] MeshLayout redundant_layout(std::size_t n,
                                          std::size_t extra_columns,
                                          phot::MziStyle style =
                                              phot::MziStyle::kStandard);

}  // namespace aspen::mesh
