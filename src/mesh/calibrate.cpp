#include "mesh/calibrate.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

namespace aspen::mesh {

using lina::CMat;
using lina::cplx;

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// tr(target^dagger M) without forming the product.
cplx overlap(const CMat& target, const CMat& m) {
  cplx s{0.0, 0.0};
  const auto& a = target.raw();
  const auto& b = m.raw();
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double fidelity_from_overlap(cplx ov, double target_norm, double mesh_norm) {
  if (target_norm == 0.0 || mesh_norm == 0.0) return 0.0;
  return std::abs(ov) / (target_norm * mesh_norm);
}

/// Which phase slots belong to symmetric MZI cells? Those enter the
/// transfer through e^{+-i phi/2} (4*pi-periodic), so their coordinate
/// update needs the three-coefficient model below instead of the affine
/// one. PhaseColumn slots are always plain diagonal phases.
std::vector<bool> half_angle_slots(const MeshLayout& layout) {
  std::vector<bool> half(layout.phase_count(), false);
  if (layout.style != phot::MziStyle::kSymmetric) return half;
  std::size_t idx = 0;
  for (const auto& col : layout.columns) {
    if (std::holds_alternative<MziColumn>(col)) {
      const std::size_t n = 2 * std::get<MziColumn>(col).top_ports.size();
      for (std::size_t k = 0; k < n; ++k) half[idx + k] = true;
      idx += n;
    } else if (std::holds_alternative<PhaseColumn>(col)) {
      idx += layout.ports;
    }
  }
  return half;
}

}  // namespace

CalibrationReport calibrate(PhysicalMesh& mesh, const CMat& target,
                            const CalibrationOptions& opt) {
  if (target.rows() != mesh.layout().ports ||
      target.cols() != mesh.layout().ports)
    throw std::invalid_argument("calibrate: target shape mismatch");

  CalibrationReport report;
  report.initial_fidelity = CMat::fidelity(target, mesh.transfer());

  // Calibrate in the continuous phase domain; requantize on exit.
  const std::optional<phot::PcmCellConfig> pcm_cfg = mesh.pcm_config();
  if (pcm_cfg.has_value()) mesh.disable_pcm();

  const double target_norm = target.frobenius();
  const std::size_t nph = mesh.phase_count();
  lina::Rng rng(opt.seed);

  std::vector<double> best_phases = mesh.phases();
  double best_fid = -1.0;

  for (int restart = 0; restart < std::max(1, opt.restarts); ++restart) {
    if (restart > 0) {
      for (std::size_t k = 0; k < nph; ++k)
        mesh.set_phase(k, rng.uniform(0.0, kTwoPi));
    }
    // Coordinate ascent over phase slots. Phase slots are ordered by mesh
    // column, so the sweep below drives the mesh's column-factored cache
    // entirely through its O(N^2) incremental path: every trial transfer
    // re-evaluates one column and applies a handful of rank-one updates
    // instead of recomposing all O(columns) of them.
    double mesh_norm = mesh.transfer().frobenius();
    cplx cur = overlap(target, mesh.transfer());
    double prev_sweep_fid = fidelity_from_overlap(cur, target_norm, mesh_norm);

    const std::vector<bool> half = half_angle_slots(mesh.layout());
    constexpr double kPi = 3.141592653589793238462643383280;

    int sweeps = 0;
    for (; sweeps < opt.max_sweeps; ++sweeps) {
      for (std::size_t k = 0; k < nph; ++k) {
        const double old = mesh.phase(k);
        double cand;
        if (!half[k]) {
          // Affine model: tr(T^dagger M) = c0 + c1 e^{i phi}.
          mesh.set_phase(k, 0.0);
          const cplx t0 = overlap(target, mesh.transfer());
          mesh.set_phase(k, kPi);
          const cplx tpi = overlap(target, mesh.transfer());
          const cplx c0 = 0.5 * (t0 + tpi);
          const cplx c1 = 0.5 * (t0 - tpi);
          if (std::abs(c1) < 1e-15) {
            mesh.set_phase(k, old);
            // Settle the restored column now, while it is still the only
            // dirty one — otherwise the next slot in a different column
            // would force a full cache rebuild.
            (void)mesh.transfer();
            continue;
          }
          cand = std::arg(c0) - std::arg(c1);
        } else {
          // Symmetric cell: tr = c0 + c+ e^{i phi/2} + c- e^{-i phi/2},
          // 4*pi-periodic. Identify the three coefficients from a 4-point
          // DFT at phi in {0, pi, 2 pi, 3 pi} (u = e^{i phi/2} = i^k),
          // then maximize on a fine grid.
          cplx t[4];
          for (int s = 0; s < 4; ++s) {
            mesh.set_phase(k, s * kPi);
            t[s] = overlap(target, mesh.transfer());
          }
          const cplx i1{0.0, 1.0};
          const cplx c0 = 0.25 * (t[0] + t[1] + t[2] + t[3]);
          const cplx cp =
              0.25 * (t[0] - i1 * t[1] - t[2] + i1 * t[3]);
          const cplx cm =
              0.25 * (t[0] + i1 * t[1] - t[2] - i1 * t[3]);
          double best_val = -1.0;
          cand = old;
          for (int g = 0; g < 256; ++g) {
            const double phi = 4.0 * kPi * g / 256.0;
            const cplx u = std::polar(1.0, phi / 2.0);
            const double val = std::abs(c0 + cp * u + cm * std::conj(u));
            if (val > best_val) {
              best_val = val;
              cand = phi;
            }
          }
        }
        mesh.set_phase(k, cand);
        // With thermal crosstalk (or grid resolution) the model is
        // approximate; accept only true improvements.
        const cplx tnew = overlap(target, mesh.transfer());
        if (std::abs(tnew) + 1e-15 >= std::abs(cur)) {
          cur = tnew;
        } else {
          mesh.set_phase(k, old);
          // Settle the restored column incrementally (see above): keeps a
          // rejection from pushing the sweep off the O(N^2) fast path.
          (void)mesh.transfer();
        }
      }
      mesh_norm = mesh.transfer().frobenius();
      cur = overlap(target, mesh.transfer());
      const double fid = fidelity_from_overlap(cur, target_norm, mesh_norm);
      if (fid - prev_sweep_fid < opt.tol) {
        prev_sweep_fid = fid;
        ++sweeps;
        break;
      }
      prev_sweep_fid = fid;
    }
    report.sweeps_used = std::max(report.sweeps_used, sweeps);
    ++report.restarts_used;
    if (prev_sweep_fid > best_fid) {
      best_fid = prev_sweep_fid;
      best_phases = mesh.phases();
    }
  }

  mesh.program(best_phases);
  if (pcm_cfg.has_value()) mesh.enable_pcm(*pcm_cfg);
  report.final_fidelity = CMat::fidelity(target, mesh.transfer());
  return report;
}

}  // namespace aspen::mesh
