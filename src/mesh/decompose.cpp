#include "mesh/decompose.hpp"

#include <cmath>
#include <stdexcept>

#include "mesh/physical_mesh.hpp"
#include "photonics/mzi.hpp"

namespace aspen::mesh {

using lina::CMat;
using lina::cplx;
using Op = DecomposeScratch::Op;

namespace {

constexpr double kPi = 3.141592653589793238462643383280;
constexpr double kTwoPi = 2.0 * kPi;

double wrap(double phase) {
  double p = std::fmod(phase, kTwoPi);
  if (p < 0.0) p += kTwoPi;
  return p;
}

/// Packs ops (encounter order) into columns and emits the flat phase
/// vector matching the layout's phase-ordering convention. The layout
/// and the op-to-slot packing depend only on (ports, style, name) — they
/// are kept from the previous call when they already match, so repeat
/// decompositions of same-shape targets only rewrite phases.
///
/// For symmetric (Bell-Walmsley / parallel-PS) cells the per-cell
/// common-mode phase e^{-i(theta+phi)/2} is a *local* two-port screen, not
/// a global factor, so the standard-cell phases are rewritten by pushing a
/// diagonal phase debt Xi through the mesh:
///   T_sym(theta, phi') Xi_in = e^{i mu} T_std(theta, phi) on the cell's
///   ports, with phi' = phi - xi_m + xi_{m+1},
///   mu = xi_{m+1} - (theta + phi') / 2, and xi_m = xi_{m+1} = mu after
///   the cell. The residual debt folds into the output phase screen.
void assemble(std::size_t n, phot::MziStyle style, DecomposeScratch& ws,
              std::vector<Op>& ops, std::vector<double>& out_phases,
              const std::string& name, ProgrammedMesh& pm) {
  if (style == phot::MziStyle::kSymmetric) {
    ws.xi.assign(n, 0.0);
    std::vector<double>& xi = ws.xi;
    for (auto& op : ops) {
      const auto m = static_cast<std::size_t>(op.top);
      // T_sym is 4*pi-periodic in (theta, phi) — wrapping a phase by 2*pi
      // flips the cell's sign — so mu must be computed from the *wrapped*
      // phases that the hardware will actually be programmed with.
      const double theta_w = wrap(op.theta);
      const double phi_w = wrap(op.phi - xi[m] + xi[m + 1]);
      const double mu = xi[m + 1] - (theta_w + phi_w) / 2.0;
      op.theta = theta_w;
      op.phi = phi_w;
      xi[m] = mu;
      xi[m + 1] = mu;
    }
    for (std::size_t p = 0; p < n; ++p) out_phases[p] -= xi[p];
  }

  const bool reusable = pm.layout.ports == n && pm.layout.style == style &&
                        pm.layout.name == name && ws.cached_name == name &&
                        ws.cached_style == style &&
                        ws.cell_cols.size() == ops.size();
  if (!reusable) {
    ColumnPacker packer;
    for (const auto& op : ops) packer.add_cell(op.top, n);
    std::vector<MziColumn> cols = packer.columns();

    pm.layout = MeshLayout{};
    pm.layout.ports = n;
    pm.layout.style = style;
    pm.layout.name = name;
    for (auto& c : cols) pm.layout.columns.emplace_back(std::move(c));
    pm.layout.columns.emplace_back(PhaseColumn{});
    pm.layout.validate();

    // Phase-slot base offset of every column.
    ws.base.assign(pm.layout.columns.size(), 0);
    std::size_t acc = 0;
    for (std::size_t c = 0; c < pm.layout.columns.size(); ++c) {
      ws.base[c] = acc;
      if (std::holds_alternative<MziColumn>(pm.layout.columns[c]))
        acc += 2 * std::get<MziColumn>(pm.layout.columns[c]).top_ports.size();
      else if (std::holds_alternative<PhaseColumn>(pm.layout.columns[c]))
        acc += n;
    }
    ws.phase_total = acc;
    ws.cell_cols = packer.cell_columns();
    ws.cached_name = name;
    ws.cached_style = style;
  }
  pm.phases.assign(ws.phase_total, 0.0);

  // Scatter op phases to their slots.
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const std::size_t col = ws.cell_cols[k];
    const auto& tops = std::get<MziColumn>(pm.layout.columns[col]).top_ports;
    std::size_t slot = 0;
    while (tops[slot] != ops[k].top) ++slot;
    pm.phases[ws.base[col] + 2 * slot] = wrap(ops[k].theta);
    pm.phases[ws.base[col] + 2 * slot + 1] = wrap(ops[k].phi);
  }
  // Output phase screen.
  const std::size_t out_base = ws.base.back();
  for (std::size_t i = 0; i < n; ++i)
    pm.phases[out_base + i] = wrap(out_phases[i]);
}

void require_unitary(const CMat& u, const char* who) {
  if (u.rows() != u.cols())
    throw std::invalid_argument(std::string(who) + ": matrix not square");
  if (!u.is_unitary(1e-8))
    throw std::invalid_argument(std::string(who) + ": matrix not unitary");
}

}  // namespace

void clements_decompose(const CMat& u_in, phot::MziStyle style,
                        DecomposeScratch& ws, ProgrammedMesh& out) {
  require_unitary(u_in, "clements_decompose");
  const std::size_t n = u_in.rows();
  CMat& u = ws.u;
  u = u_in;

  std::vector<Op>& right_ops = ws.right_ops;  // recorded as U <- U * T^{-1}
  std::vector<Op>& left_ops = ws.left_ops;    // recorded as U <- T * U
  right_ops.clear();
  left_ops.clear();

  for (std::size_t i = 1; i <= n - 1; ++i) {
    if (i % 2 == 1) {
      // Null anti-diagonal elements from the right: element (0-based)
      // (n-1-j, i-1-j), cell on column pair (i-1-j, i-j).
      for (std::size_t j = 0; j < i; ++j) {
        const std::size_t r = n - 1 - j;
        const std::size_t m = i - 1 - j;  // left column of the pair
        const cplx a = u(r, m);
        const cplx b = u(r, m + 1);
        double theta, phi;
        if (std::abs(a) < 1e-300 && std::abs(b) < 1e-300) {
          theta = 0.0;
          phi = 0.0;
        } else {
          theta = 2.0 * std::atan2(std::abs(b), std::abs(a));
          phi = (std::abs(a) < 1e-300 || std::abs(b) < 1e-300)
                    ? 0.0
                    : std::arg(a) - std::arg(b) - kPi;
        }
        // U <- U * T^{-1}(theta, phi) on columns (m, m+1) with
        // T^{-1} = -i e^{-i theta/2} [[e^{-i phi} s, e^{-i phi} c],
        //                             [          c,          -s]].
        const double s = std::sin(theta / 2.0);
        const double c = std::cos(theta / 2.0);
        const cplx g = cplx{0.0, -1.0} * std::polar(1.0, -theta / 2.0);
        const cplx emphi = std::polar(1.0, -phi);
        lina::apply_two_mode_right(u, m, m + 1, g * emphi * s, g * emphi * c,
                                   g * c, g * (-s));
        right_ops.push_back({static_cast<int>(m), theta, phi});
      }
    } else {
      // Null from the left: element (0-based) (n+j-i-1, j-1), cell on row
      // pair (n+j-i-2, n+j-i-1).
      for (std::size_t j = 1; j <= i; ++j) {
        const std::size_t r = n + j - i - 1;  // bottom row of the pair
        const std::size_t col = j - 1;
        const auto sol = phot::null_port(u(r - 1, col), u(r, col), 1);
        const phot::Transfer2 t = phot::mzi_ideal(sol.theta, sol.phi);
        lina::apply_two_mode_left(u, r - 1, r, t.a, t.b, t.c, t.d);
        left_ops.push_back({static_cast<int>(r - 1), sol.theta, sol.phi});
      }
    }
  }

  // u is now diagonal: D = L U R  =>  U = L^{-1} D R^{-1-reversed}; commute
  // every inverse left cell through the diagonal:
  //   T^{-1}(theta, phi) D = D' T(theta, phi'),
  //   phi' = arg(d_m / d_{m+1}),
  //   D'_m = -e^{-i(theta+phi)} d_{m+1},  D'_{m+1} = -e^{-i theta} d_{m+1}.
  std::vector<cplx>& d = ws.d;
  d.resize(n);
  for (std::size_t k = 0; k < n; ++k) d[k] = u(k, k);

  // Signal-encounter order: right ops in recording order, then the
  // commuted left ops (last-recorded first).
  std::vector<Op>& ordered = ws.ordered;
  ordered = right_ops;
  ordered.reserve(right_ops.size() + left_ops.size());
  for (std::size_t k = left_ops.size(); k-- > 0;) {
    const Op& op = left_ops[k];
    const auto m = static_cast<std::size_t>(op.top);
    const double phi_new = std::arg(d[m] / d[m + 1]);
    const cplx d2 = d[m + 1];
    d[m] = -std::polar(1.0, -(op.theta + op.phi)) * d2;
    d[m + 1] = -std::polar(1.0, -op.theta) * d2;
    ordered.push_back({op.top, op.theta, phi_new});
  }

  std::vector<double>& out_phases = ws.out_phases;
  out_phases.resize(n);
  for (std::size_t k = 0; k < n; ++k) out_phases[k] = std::arg(d[k]);

  assemble(n, style, ws, ordered, out_phases, "clements-" + std::to_string(n),
           out);
}

void reck_decompose(const CMat& u_in, phot::MziStyle style,
                    DecomposeScratch& ws, ProgrammedMesh& out) {
  require_unitary(u_in, "reck_decompose");
  const std::size_t n = u_in.rows();
  CMat& u = ws.u;
  u = u_in;

  std::vector<Op>& ops = ws.ordered;
  ops.clear();
  for (std::size_t row = n - 1; row >= 1; --row) {
    for (std::size_t m = 0; m < row; ++m) {
      const cplx a = u(row, m);
      const cplx b = u(row, m + 1);
      double theta, phi;
      if (std::abs(a) < 1e-300 && std::abs(b) < 1e-300) {
        theta = 0.0;
        phi = 0.0;
      } else {
        theta = 2.0 * std::atan2(std::abs(b), std::abs(a));
        phi = (std::abs(a) < 1e-300 || std::abs(b) < 1e-300)
                  ? 0.0
                  : std::arg(a) - std::arg(b) - kPi;
      }
      const double s = std::sin(theta / 2.0);
      const double c = std::cos(theta / 2.0);
      const cplx g = cplx{0.0, -1.0} * std::polar(1.0, -theta / 2.0);
      const cplx emphi = std::polar(1.0, -phi);
      lina::apply_two_mode_right(u, m, m + 1, g * emphi * s, g * emphi * c,
                                 g * c, g * (-s));
      ops.push_back({static_cast<int>(m), theta, phi});
    }
    if (row == 1) break;
  }

  std::vector<double>& out_phases = ws.out_phases;
  out_phases.resize(n);
  for (std::size_t k = 0; k < n; ++k) out_phases[k] = std::arg(u(k, k));

  assemble(n, style, ws, ops, out_phases, "reck-" + std::to_string(n), out);
}

ProgrammedMesh clements_decompose(const CMat& u_in, phot::MziStyle style) {
  DecomposeScratch ws;
  ProgrammedMesh pm;
  clements_decompose(u_in, style, ws, pm);
  return pm;
}

ProgrammedMesh reck_decompose(const CMat& u_in, phot::MziStyle style) {
  DecomposeScratch ws;
  ProgrammedMesh pm;
  reck_decompose(u_in, style, ws, pm);
  return pm;
}

lina::CMat ideal_transfer(const ProgrammedMesh& pm) {
  return PhysicalMesh::ideal_of(pm.layout, pm.phases);
}

}  // namespace aspen::mesh
