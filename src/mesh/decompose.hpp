#pragma once
/// \file decompose.hpp
/// Analytic unitary-to-phases decompositions for MZI meshes:
///  - Reck et al. (PRL 73, 58 (1994)): triangular mesh, depth 2N-3.
///  - Clements et al. (Optica 3, 1460 (2016)): rectangular mesh, depth N —
///    the architecture of paper Fig. 2b.
///
/// Both return a `ProgrammedMesh`: a MeshLayout (geometry) plus the flat
/// phase vector that programs it. `ideal_transfer` of a PhysicalMesh with
/// a zero error model rebuilds the target to ~1e-10.

#include <vector>

#include "lina/complex_matrix.hpp"
#include "mesh/layout.hpp"

namespace aspen::mesh {

/// A mesh geometry together with phase values for every programmable
/// phase (ordering: columns in order; within an MziColumn cells by top
/// port, theta then phi; PhaseColumns by port index).
struct ProgrammedMesh {
  MeshLayout layout;
  std::vector<double> phases;
};

/// Clements rectangular decomposition of a unitary `u` (throws
/// std::invalid_argument if `u` is not square or not unitary to 1e-8).
/// The returned layout equals `clements_layout(n, style)`.
[[nodiscard]] ProgrammedMesh clements_decompose(
    const lina::CMat& u, phot::MziStyle style = phot::MziStyle::kStandard);

/// Reck triangular decomposition; layout equals `reck_layout(n, style)`.
[[nodiscard]] ProgrammedMesh reck_decompose(
    const lina::CMat& u, phot::MziStyle style = phot::MziStyle::kStandard);

/// Ideal (error-free, lossless) transfer matrix realized by a programmed
/// mesh — the mathematical reference for fidelity metrics.
[[nodiscard]] lina::CMat ideal_transfer(const ProgrammedMesh& pm);

}  // namespace aspen::mesh
