#pragma once
/// \file decompose.hpp
/// Analytic unitary-to-phases decompositions for MZI meshes:
///  - Reck et al. (PRL 73, 58 (1994)): triangular mesh, depth 2N-3.
///  - Clements et al. (Optica 3, 1460 (2016)): rectangular mesh, depth N —
///    the architecture of paper Fig. 2b.
///
/// Both return a `ProgrammedMesh`: a MeshLayout (geometry) plus the flat
/// phase vector that programs it. `ideal_transfer` of a PhysicalMesh with
/// a zero error model rebuilds the target to ~1e-10.

#include <vector>

#include "lina/complex_matrix.hpp"
#include "mesh/layout.hpp"

namespace aspen::mesh {

/// A mesh geometry together with phase values for every programmable
/// phase (ordering: columns in order; within an MziColumn cells by top
/// port, theta then phi; PhaseColumns by port index).
struct ProgrammedMesh {
  MeshLayout layout;
  std::vector<double> phases;
};

/// Clements rectangular decomposition of a unitary `u` (throws
/// std::invalid_argument if `u` is not square or not unitary to 1e-8).
/// The returned layout equals `clements_layout(n, style)`.
[[nodiscard]] ProgrammedMesh clements_decompose(
    const lina::CMat& u, phot::MziStyle style = phot::MziStyle::kStandard);

/// Reck triangular decomposition; layout equals `reck_layout(n, style)`.
[[nodiscard]] ProgrammedMesh reck_decompose(
    const lina::CMat& u, phot::MziStyle style = phot::MziStyle::kStandard);

/// Reusable scratch for the workspace-based decomposition overloads. The
/// cell-to-column packing and the per-column phase-slot bases depend only
/// on (ports, style, architecture), so they are cached across calls; the
/// op streams and the working copy of `u` reuse their allocations.
struct DecomposeScratch {
  struct Op {
    int top;  ///< upper port of the pair the cell acts on
    double theta;
    double phi;
  };
  lina::CMat u;                      ///< working copy being nulled
  std::vector<Op> right_ops, left_ops, ordered;
  std::vector<double> out_phases, xi;
  std::vector<lina::cplx> d;         ///< diagonal residue
  // Cached packing (keyed by the layout name, e.g. "clements-8").
  std::string cached_name;
  phot::MziStyle cached_style = phot::MziStyle::kStandard;
  std::vector<std::size_t> cell_cols;  ///< owning column per op
  std::vector<std::size_t> base;       ///< phase-slot base per column
  std::size_t phase_total = 0;
};

/// Workspace-reusing variants: identical phases, writing into `out`
/// (whose layout is kept when it already matches) instead of allocating
/// a fresh ProgrammedMesh per call.
void clements_decompose(const lina::CMat& u, phot::MziStyle style,
                        DecomposeScratch& ws, ProgrammedMesh& out);
void reck_decompose(const lina::CMat& u, phot::MziStyle style,
                    DecomposeScratch& ws, ProgrammedMesh& out);

/// Ideal (error-free, lossless) transfer matrix realized by a programmed
/// mesh — the mathematical reference for fidelity metrics.
[[nodiscard]] lina::CMat ideal_transfer(const ProgrammedMesh& pm);

}  // namespace aspen::mesh
