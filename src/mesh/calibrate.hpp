#pragma once
/// \file calibrate.hpp
/// In-situ programming of an imperfect physical mesh against a target
/// matrix ("self-configuration"). Exploits the fact that any single
/// programmable phase phi enters the chip's transfer *affinely* in
/// e^{i phi}, so the complex overlap tr(T^dagger M) = c0 + c1 e^{i phi}
/// can be identified from two evaluations and maximized in closed form —
/// the simulation-domain analogue of sinusoidal heater dithering used to
/// configure real meshes.
///
/// Powers the "with recalibration" series of experiment E2 and the only
/// programming path for the Fldzhyan architecture (which has no analytic
/// decomposition).
///
/// The sweep visits phase slots in column order, so every trial transfer
/// rides PhysicalMesh's column-factored cache: O(N^2) per probe instead
/// of an O(columns * N^2) rebuild, making a full sweep O(phases * N^2)
/// rather than O(phases * columns * N^2).

#include "lina/complex_matrix.hpp"
#include "lina/random.hpp"
#include "mesh/physical_mesh.hpp"

namespace aspen::mesh {

struct CalibrationOptions {
  int max_sweeps = 40;
  /// Stop when a full sweep improves fidelity by less than this.
  double tol = 1e-10;
  /// Number of random restarts (best kept); > 1 helps non-convex
  /// architectures (Fldzhyan) escape poor basins.
  int restarts = 1;
  std::uint64_t seed = 0xca11b8ULL;
};

struct CalibrationReport {
  double initial_fidelity = 0.0;
  double final_fidelity = 0.0;
  int sweeps_used = 0;
  int restarts_used = 0;
};

/// Coordinate-ascent calibration of `mesh` toward `target` (N x N).
/// Maximizes lina::CMat::fidelity(target, mesh.transfer()). If the mesh
/// has PCM quantization enabled it is calibrated in the continuous domain
/// and requantized on exit (program-then-quantize). The mesh is left
/// programmed with the best phases found.
CalibrationReport calibrate(PhysicalMesh& mesh, const lina::CMat& target,
                            const CalibrationOptions& opt = {});

}  // namespace aspen::mesh
