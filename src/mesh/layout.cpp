#include "mesh/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace aspen::mesh {

std::size_t MeshLayout::phase_count() const {
  std::size_t n = 0;
  for (const auto& col : columns) {
    if (std::holds_alternative<MziColumn>(col))
      n += 2 * std::get<MziColumn>(col).top_ports.size();
    else if (std::holds_alternative<PhaseColumn>(col))
      n += ports;
  }
  return n;
}

std::size_t MeshLayout::mzi_count() const {
  std::size_t n = 0;
  for (const auto& col : columns)
    if (std::holds_alternative<MziColumn>(col))
      n += std::get<MziColumn>(col).top_ports.size();
  return n;
}

std::size_t MeshLayout::coupler_count() const {
  std::size_t n = 0;
  for (const auto& col : columns) {
    if (std::holds_alternative<MziColumn>(col))
      n += 2 * std::get<MziColumn>(col).top_ports.size();
    else if (std::holds_alternative<CouplerColumn>(col))
      n += std::get<CouplerColumn>(col).top_ports.size();
  }
  return n;
}

namespace {
void check_ports(const std::vector<int>& tops, std::size_t ports,
                 const char* what) {
  int prev = -2;
  for (int t : tops) {
    if (t < 0 || static_cast<std::size_t>(t) + 1 >= ports)
      throw std::invalid_argument(std::string(what) + ": port out of range");
    if (t - prev < 2)
      throw std::invalid_argument(std::string(what) +
                                  ": overlapping or unsorted cells");
    prev = t;
  }
}
}  // namespace

void MeshLayout::validate() const {
  if (ports < 2) throw std::invalid_argument("MeshLayout: ports < 2");
  for (const auto& col : columns) {
    if (std::holds_alternative<MziColumn>(col))
      check_ports(std::get<MziColumn>(col).top_ports, ports, "MziColumn");
    else if (std::holds_alternative<CouplerColumn>(col))
      check_ports(std::get<CouplerColumn>(col).top_ports, ports,
                  "CouplerColumn");
  }
}

std::size_t ColumnPacker::add_cell(int top_port, std::size_t ports) {
  if (top_port < 0 || static_cast<std::size_t>(top_port) + 1 >= ports)
    throw std::invalid_argument("ColumnPacker: top_port out of range");
  if (port_busy_until_.size() < ports) port_busy_until_.resize(ports, 0);
  const auto p = static_cast<std::size_t>(top_port);
  const std::size_t col =
      std::max(port_busy_until_[p], port_busy_until_[p + 1]);
  if (cols_.size() <= col) cols_.resize(col + 1);
  cols_[col].push_back(top_port);
  port_busy_until_[p] = col + 1;
  port_busy_until_[p + 1] = col + 1;
  cell_columns_.push_back(col);
  return col;
}

std::vector<MziColumn> ColumnPacker::columns() const {
  std::vector<MziColumn> out;
  out.reserve(cols_.size());
  for (const auto& c : cols_) {
    MziColumn mc;
    mc.top_ports = c;
    std::sort(mc.top_ports.begin(), mc.top_ports.end());
    out.push_back(std::move(mc));
  }
  return out;
}

MeshLayout clements_layout(std::size_t n, phot::MziStyle style) {
  if (n < 2) throw std::invalid_argument("clements_layout: n < 2");
  MeshLayout m;
  m.ports = n;
  m.style = style;
  m.name = "clements-" + std::to_string(n) +
           (style == phot::MziStyle::kSymmetric ? "-sym" : "");
  for (std::size_t c = 0; c < n; ++c) {
    MziColumn col;
    for (std::size_t t = (c % 2 == 0) ? 0 : 1; t + 1 < n; t += 2)
      col.top_ports.push_back(static_cast<int>(t));
    if (!col.top_ports.empty()) m.columns.emplace_back(std::move(col));
  }
  m.columns.emplace_back(PhaseColumn{});
  m.validate();
  return m;
}

MeshLayout reck_layout(std::size_t n, phot::MziStyle style) {
  if (n < 2) throw std::invalid_argument("reck_layout: n < 2");
  MeshLayout m;
  m.ports = n;
  m.style = style;
  m.name = "reck-" + std::to_string(n) +
           (style == phot::MziStyle::kSymmetric ? "-sym" : "");
  // Encounter order of the Reck nulling scheme: rows from the bottom up;
  // within a row, pairs (0,1), (1,2), ... The packer shapes the triangle.
  ColumnPacker packer;
  for (std::size_t row = n - 1; row >= 1; --row) {
    for (std::size_t j = 0; j < row; ++j)
      packer.add_cell(static_cast<int>(j), n);
    if (row == 1) break;
  }
  for (auto& col : packer.columns()) m.columns.emplace_back(std::move(col));
  m.columns.emplace_back(PhaseColumn{});
  m.validate();
  return m;
}

MeshLayout fldzhyan_layout(std::size_t n, std::size_t phase_layers) {
  if (n < 2) throw std::invalid_argument("fldzhyan_layout: n < 2");
  if (phase_layers == 0) phase_layers = n + 1;
  MeshLayout m;
  m.ports = n;
  m.style = phot::MziStyle::kSymmetric;  // parallel-PS flavour
  m.name = "fldzhyan-" + std::to_string(n) + "x" +
           std::to_string(phase_layers);
  for (std::size_t k = 0; k < phase_layers; ++k) {
    m.columns.emplace_back(PhaseColumn{});
    if (k + 1 == phase_layers) break;
    CouplerColumn cc;
    for (std::size_t t = (k % 2 == 0) ? 0 : 1; t + 1 < n; t += 2)
      cc.top_ports.push_back(static_cast<int>(t));
    m.columns.emplace_back(std::move(cc));
  }
  m.validate();
  return m;
}

MeshLayout redundant_layout(std::size_t n, std::size_t extra_columns,
                            phot::MziStyle style) {
  MeshLayout m = clements_layout(n, style);
  m.name = "redundant-" + std::to_string(n) + "+" +
           std::to_string(extra_columns);
  // Insert extra alternating-offset MZI columns before the output phases.
  std::vector<Column> extras;
  for (std::size_t c = 0; c < extra_columns; ++c) {
    MziColumn col;
    for (std::size_t t = (c % 2 == 0) ? 0 : 1; t + 1 < n; t += 2)
      col.top_ports.push_back(static_cast<int>(t));
    if (!col.top_ports.empty()) extras.emplace_back(std::move(col));
  }
  m.columns.insert(m.columns.end() - 1, extras.begin(), extras.end());
  m.validate();
  return m;
}

}  // namespace aspen::mesh
