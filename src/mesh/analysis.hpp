#pragma once
/// \file analysis.hpp
/// Architecture-level evaluation helpers shared by the experiment
/// harness (E1 expressivity, E2 robustness) and the tests: program an
/// architecture for a target (analytically where a decomposition exists,
/// by in-situ optimization otherwise), and sweep fidelity statistics over
/// Haar-random target ensembles.

#include <string>

#include "lina/stats.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "mesh/physical_mesh.hpp"

namespace aspen::mesh {

/// The mesh architectures evaluated in the paper (Section 4).
enum class Architecture {
  kReck,         ///< triangular, depth 2N-3
  kClements,     ///< rectangular, depth N (Fig. 2b)
  kClementsSym,  ///< Clements with Bell-Walmsley compacted (symmetric) cells
  kFldzhyan,     ///< parallel-PS error-tolerant design (optimization-programmed)
  kRedundant,    ///< Clements + 2 extra columns (calibration headroom)
};

[[nodiscard]] std::string to_string(Architecture a);

/// Construct the layout of an architecture at size n.
[[nodiscard]] MeshLayout make_layout(Architecture a, std::size_t n,
                                     std::size_t extra_columns = 2);

/// True when the architecture has a closed-form decomposition.
[[nodiscard]] bool has_analytic_decomposition(Architecture a);

/// Program `mesh` to realize unitary `target`:
///  - analytic architectures: run the decomposition, then fold any
///    diagonal residue into the output phase screen;
///  - Fldzhyan: calibrate an ideal twin first (universality programming),
///    then copy the phases onto the physical die.
/// If `recalibrate` is set, afterwards run in-situ calibration on the
/// physical die itself (error-aware programming).
/// Returns the fidelity between target and the physical transfer.
double program_for_target(Architecture a, PhysicalMesh& mesh,
                          const lina::CMat& target, bool recalibrate,
                          const CalibrationOptions& opt = {});

/// Reusable scratch for the workspace-based program_for_target overload:
/// decomposition workspace, the ProgrammedMesh holder (layout kept across
/// same-architecture calls), and the redundant-layout phase expansion.
struct ProgramScratch {
  DecomposeScratch decompose;
  ProgrammedMesh pm;
  std::vector<double> phases;
};

/// Identical to program_for_target but scratching in `scratch` instead of
/// allocating per call — the photonic engines program two meshes per
/// weight matrix and reuse one scratch for both.
double program_for_target(Architecture a, PhysicalMesh& mesh,
                          const lina::CMat& target, bool recalibrate,
                          const CalibrationOptions& opt,
                          ProgramScratch& scratch);

/// Fidelity statistics of an (architecture, size, error-model) point over
/// `samples` Haar targets.
struct EnsembleResult {
  lina::Stats fidelity;
  lina::Stats infidelity;  ///< 1 - F, the usual expressivity metric
};
EnsembleResult haar_ensemble_fidelity(Architecture a, std::size_t n,
                                      const MeshErrorModel& errors,
                                      int samples, bool recalibrate,
                                      std::uint64_t seed = 7,
                                      const CalibrationOptions& opt = {});

}  // namespace aspen::mesh
