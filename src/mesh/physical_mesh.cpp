#include "mesh/physical_mesh.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/mzi.hpp"
#include "photonics/units.hpp"

namespace aspen::mesh {

using lina::CMat;
using lina::CVec;
using lina::cplx;

PhysicalMesh::PhysicalMesh(MeshLayout layout, MeshErrorModel errors)
    : layout_(std::move(layout)), errors_(errors) {
  layout_.validate();
  phases_.assign(layout_.phase_count(), 0.0);
  phase_offset_.assign(layout_.phase_count(), 0.0);
  coupler_delta_.assign(layout_.coupler_count(), 0.0);
  lina::Rng rng(errors_.seed);
  if (errors_.phase_sigma > 0.0)
    for (auto& o : phase_offset_) o = rng.gaussian(0.0, errors_.phase_sigma);
  if (errors_.coupler_sigma > 0.0)
    for (auto& d : coupler_delta_) d = rng.gaussian(0.0, errors_.coupler_sigma);
}

void PhysicalMesh::program(const std::vector<double>& phases) {
  if (phases.size() != phases_.size())
    throw std::invalid_argument("PhysicalMesh::program: phase count mismatch");
  phases_ = phases;
}

void PhysicalMesh::enable_pcm(const phot::PcmCellConfig& cfg) {
  pcm_.emplace(cfg);
  pcm_cfg_ = cfg;
}

void PhysicalMesh::disable_pcm() {
  pcm_.reset();
  pcm_cfg_.reset();
}

CMat PhysicalMesh::evaluate(bool with_errors) const {
  const std::size_t n = layout_.ports;
  CMat m = CMat::identity(n);
  const bool use_pcm = with_errors && pcm_.has_value();
  const bool use_xtalk =
      with_errors && !use_pcm && errors_.thermal_crosstalk > 0.0;

  const double routing_amp =
      with_errors
          ? phot::loss_db_to_amplitude(errors_.routing_loss_db_per_column)
          : 1.0;
  // DWDM carrier detuning rotates every coupler systematically.
  const double disp_delta =
      with_errors ? detuning_nm_ * errors_.coupler_dispersion_rad_per_nm : 0.0;

  // Matched-dummy attenuation for ports a column does not cover.
  const auto apply_uncovered = [&](CMat& mat, const std::vector<int>& tops,
                                   double amp) {
    if (amp == 1.0) return;
    std::vector<bool> covered(n, false);
    for (const int t : tops) {
      covered[static_cast<std::size_t>(t)] = true;
      covered[static_cast<std::size_t>(t) + 1] = true;
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (covered[p]) continue;
      for (std::size_t col = 0; col < n; ++col) mat(p, col) *= amp;
    }
  };

  std::size_t phase_i = 0;
  std::size_t coup_i = 0;
  for (const auto& column : layout_.columns) {
    if (std::holds_alternative<MziColumn>(column)) {
      const auto& tops = std::get<MziColumn>(column).top_ports;
      const std::size_t ncells = tops.size();
      // Programmed phases of this column (for thermal crosstalk).
      std::vector<double> th(ncells), ph(ncells);
      for (std::size_t c = 0; c < ncells; ++c) {
        th[c] = phases_[phase_i + 2 * c];
        ph[c] = phases_[phase_i + 2 * c + 1];
      }
      for (std::size_t c = 0; c < ncells; ++c) {
        double theta = th[c];
        double phi = ph[c];
        if (use_xtalk) {
          // Heaters leak into vertically adjacent cells of the column.
          const double xt = errors_.thermal_crosstalk;
          if (c > 0) {
            theta += xt * th[c - 1];
            phi += xt * ph[c - 1];
          }
          if (c + 1 < ncells) {
            theta += xt * th[c + 1];
            phi += xt * ph[c + 1];
          }
        }
        phot::MziImperfections imp;
        if (with_errors) {
          imp.coupler1_delta_eta = coupler_delta_[coup_i + 2 * c] + disp_delta;
          imp.coupler2_delta_eta =
              coupler_delta_[coup_i + 2 * c + 1] + disp_delta;
          imp.theta_error = phase_offset_[phase_i + 2 * c];
          imp.phi_error = phase_offset_[phase_i + 2 * c + 1];
          imp.coupler_loss_db = errors_.coupler_loss_db;
          imp.ps_loss_db = errors_.ps_loss_db;
        } else {
          imp.coupler_loss_db = 0.0;
          imp.ps_loss_db = 0.0;
        }
        if (use_pcm) {
          const auto qt = pcm_->quantize(theta, drift_time_s_);
          const auto qp = pcm_->quantize(phi, drift_time_s_);
          theta = qt.phase;
          phi = qp.phase;
          imp.theta_arm_amplitude = qt.amplitude;
          imp.phi_arm_amplitude = qp.amplitude;
        }
        const phot::Transfer2 t =
            phot::mzi_physical(theta, phi, imp, layout_.style);
        const auto port = static_cast<std::size_t>(tops[c]);
        lina::apply_two_mode_left(m, port, port + 1, t.a, t.b, t.c, t.d);
      }
      if (with_errors && errors_.balanced_dummies) {
        const double dummy_amp = phot::loss_db_to_amplitude(
            2.0 * errors_.coupler_loss_db + 2.0 * errors_.ps_loss_db);
        apply_uncovered(m, tops, dummy_amp);
      }
      phase_i += 2 * ncells;
      coup_i += 2 * ncells;
    } else if (std::holds_alternative<PhaseColumn>(column)) {
      const double ps_amp =
          with_errors ? phot::loss_db_to_amplitude(errors_.ps_loss_db) : 1.0;
      for (std::size_t p = 0; p < n; ++p) {
        double phi = phases_[phase_i];
        double amp = ps_amp;
        if (use_pcm) {
          const auto q = pcm_->quantize(phi, drift_time_s_);
          phi = q.phase;
          amp *= q.amplitude;
        }
        if (with_errors) phi += phase_offset_[phase_i];
        const cplx f = std::polar(amp, phi);
        for (std::size_t col = 0; col < n; ++col) m(p, col) *= f;
        ++phase_i;
      }
    } else {
      const auto& tops = std::get<CouplerColumn>(column).top_ports;
      for (const int t : tops) {
        phot::DirectionalCoupler dc;
        dc.delta_eta =
            with_errors ? coupler_delta_[coup_i] + disp_delta : 0.0;
        dc.insertion_loss_db = with_errors ? errors_.coupler_loss_db : 0.0;
        const phot::Transfer2 tr = dc.transfer();
        const auto port = static_cast<std::size_t>(t);
        lina::apply_two_mode_left(m, port, port + 1, tr.a, tr.b, tr.c, tr.d);
        ++coup_i;
      }
      if (with_errors && errors_.balanced_dummies) {
        apply_uncovered(m, tops,
                        phot::loss_db_to_amplitude(errors_.coupler_loss_db));
      }
    }
    if (routing_amp != 1.0) {
      for (auto& x : m.raw()) x *= routing_amp;
    }
  }
  return m;
}

CMat PhysicalMesh::transfer() const { return evaluate(true); }
CMat PhysicalMesh::ideal_transfer() const { return evaluate(false); }

CVec PhysicalMesh::propagate(const CVec& in) const { return transfer() * in; }

double PhysicalMesh::nominal_insertion_loss_db() const {
  double total = 0.0;
  for (const auto& column : layout_.columns) {
    total += errors_.routing_loss_db_per_column;
    if (std::holds_alternative<MziColumn>(column))
      total += 2.0 * errors_.coupler_loss_db + 2.0 * errors_.ps_loss_db;
    else if (std::holds_alternative<PhaseColumn>(column))
      total += errors_.ps_loss_db;
    else
      total += errors_.coupler_loss_db;
  }
  return total;
}

CMat PhysicalMesh::ideal_of(const MeshLayout& layout,
                            const std::vector<double>& phases) {
  PhysicalMesh mesh(layout, MeshErrorModel{});
  mesh.program(phases);
  return mesh.ideal_transfer();
}

}  // namespace aspen::mesh
