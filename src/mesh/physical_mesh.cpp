#include "mesh/physical_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/mzi.hpp"
#include "photonics/units.hpp"

namespace aspen::mesh {

using lina::CMat;
using lina::CVec;
using lina::cplx;

namespace {
/// Rank-one updates accumulate rounding relative to a from-scratch
/// evaluation; refresh the whole cache after this many (amortized cost is
/// negligible, keeps the cached transfer within ~1e-15 of ground truth).
constexpr int kMaxRankUpdates = 128;
}  // namespace

PhysicalMesh::PhysicalMesh(MeshLayout layout, MeshErrorModel errors)
    : layout_(std::move(layout)), errors_(errors) {
  layout_.validate();
  phases_.assign(layout_.phase_count(), 0.0);
  phase_offset_.assign(layout_.phase_count(), 0.0);
  coupler_delta_.assign(layout_.coupler_count(), 0.0);
  lina::Rng rng(errors_.seed);
  if (errors_.phase_sigma > 0.0)
    for (auto& o : phase_offset_) o = rng.gaussian(0.0, errors_.phase_sigma);
  if (errors_.coupler_sigma > 0.0)
    for (auto& d : coupler_delta_) d = rng.gaussian(0.0, errors_.coupler_sigma);

  // Static layout indexing: owning column per phase slot and the first
  // phase / coupler index of every column (build_column starts there).
  phase_col_.assign(phases_.size(), 0);
  col_phase0_.assign(layout_.columns.size(), 0);
  col_coup0_.assign(layout_.columns.size(), 0);
  std::size_t phase_i = 0;
  std::size_t coup_i = 0;
  for (std::size_t c = 0; c < layout_.columns.size(); ++c) {
    col_phase0_[c] = phase_i;
    col_coup0_[c] = coup_i;
    const auto& column = layout_.columns[c];
    if (std::holds_alternative<MziColumn>(column)) {
      const std::size_t ncells = std::get<MziColumn>(column).top_ports.size();
      for (std::size_t k = 0; k < 2 * ncells; ++k) phase_col_[phase_i + k] = c;
      phase_i += 2 * ncells;
      coup_i += 2 * ncells;
    } else if (std::holds_alternative<PhaseColumn>(column)) {
      for (std::size_t k = 0; k < layout_.ports; ++k)
        phase_col_[phase_i + k] = c;
      phase_i += layout_.ports;
    } else {
      coup_i += std::get<CouplerColumn>(column).top_ports.size();
    }
  }
}

void PhysicalMesh::program(const std::vector<double>& phases) {
  if (phases.size() != phases_.size())
    throw std::invalid_argument("PhysicalMesh::program: phase count mismatch");
  phases_ = phases;
  invalidate_cache();
}

void PhysicalMesh::set_phase(std::size_t i, double v) {
  phases_.at(i) = v;
  if (!cache_ready_) return;
  const std::size_t c = phase_col_[i];
  if (dirty_col_ >= 0 && static_cast<std::size_t>(dirty_col_) != c) {
    // Two distinct columns stale: fall back to a full rebuild next time.
    invalidate_cache();
    return;
  }
  dirty_col_ = static_cast<std::ptrdiff_t>(c);
  // Prefixes past c and suffixes before c now contain a stale column.
  prefix_valid_ = std::min(prefix_valid_, c);
  suffix_valid_ = std::max(suffix_valid_, c);
}

void PhysicalMesh::enable_pcm(const phot::PcmCellConfig& cfg) {
  pcm_.emplace(cfg);
  pcm_cfg_ = cfg;
  invalidate_cache();
}

void PhysicalMesh::disable_pcm() {
  pcm_.reset();
  pcm_cfg_.reset();
  invalidate_cache();
}

void PhysicalMesh::set_drift_time(double seconds) {
  if (seconds == drift_time_s_) return;
  drift_time_s_ = seconds;
  if (pcm_.has_value()) invalidate_cache();
}

void PhysicalMesh::set_wavelength_detuning_nm(double nm) {
  if (nm == detuning_nm_) return;
  detuning_nm_ = nm;
  invalidate_cache();
}

void PhysicalMesh::invalidate_cache() const {
  cache_ready_ = false;
  dirty_col_ = -1;
}

void PhysicalMesh::restore(const Snapshot& s) {
  if (s.phases.size() != phases_.size())
    throw std::invalid_argument("PhysicalMesh::restore: phase count mismatch");
  // Untouched mesh (the common fault-campaign trial): keep the column
  // cache — restore is then free.
  if (phases_ == s.phases && drift_time_s_ == s.drift_time_s &&
      detuning_nm_ == s.detuning_nm)
    return;
  phases_ = s.phases;
  drift_time_s_ = s.drift_time_s;
  detuning_nm_ = s.detuning_nm;
  invalidate_cache();
}

void PhysicalMesh::build_column(std::size_t ci, bool with_errors,
                                double detuning_nm, ColumnMatrix& out) const {
  const std::size_t n = layout_.ports;
  const bool use_pcm = with_errors && pcm_.has_value();
  const bool use_xtalk =
      with_errors && !use_pcm && errors_.thermal_crosstalk > 0.0;
  const double routing_amp =
      with_errors
          ? phot::loss_db_to_amplitude(errors_.routing_loss_db_per_column)
          : 1.0;
  // DWDM carrier detuning rotates every coupler systematically.
  const double disp_delta =
      with_errors ? detuning_nm * errors_.coupler_dispersion_rad_per_nm : 0.0;

  out.blocks.clear();
  out.diag.assign(n, cplx{routing_amp, 0.0});
  out.covered.assign(n, 0);

  const auto& column = layout_.columns[ci];
  std::size_t phase_i = col_phase0_[ci];
  const std::size_t coup_i = col_coup0_[ci];

  if (std::holds_alternative<MziColumn>(column)) {
    const auto& tops = std::get<MziColumn>(column).top_ports;
    const std::size_t ncells = tops.size();
    // Programmed phases of this column (for thermal crosstalk).
    scratch_th_.assign(ncells, 0.0);
    scratch_ph_.assign(ncells, 0.0);
    for (std::size_t c = 0; c < ncells; ++c) {
      scratch_th_[c] = phases_[phase_i + 2 * c];
      scratch_ph_[c] = phases_[phase_i + 2 * c + 1];
    }
    for (std::size_t c = 0; c < ncells; ++c) {
      double theta = scratch_th_[c];
      double phi = scratch_ph_[c];
      if (use_xtalk) {
        // Heaters leak into vertically adjacent cells of the column.
        const double xt = errors_.thermal_crosstalk;
        if (c > 0) {
          theta += xt * scratch_th_[c - 1];
          phi += xt * scratch_ph_[c - 1];
        }
        if (c + 1 < ncells) {
          theta += xt * scratch_th_[c + 1];
          phi += xt * scratch_ph_[c + 1];
        }
      }
      phot::MziImperfections imp;
      if (with_errors) {
        imp.coupler1_delta_eta = coupler_delta_[coup_i + 2 * c] + disp_delta;
        imp.coupler2_delta_eta =
            coupler_delta_[coup_i + 2 * c + 1] + disp_delta;
        imp.theta_error = phase_offset_[phase_i + 2 * c];
        imp.phi_error = phase_offset_[phase_i + 2 * c + 1];
        imp.coupler_loss_db = errors_.coupler_loss_db;
        imp.ps_loss_db = errors_.ps_loss_db;
      } else {
        imp.coupler_loss_db = 0.0;
        imp.ps_loss_db = 0.0;
      }
      if (use_pcm) {
        const auto qt = pcm_->quantize(theta, drift_time_s_);
        const auto qp = pcm_->quantize(phi, drift_time_s_);
        theta = qt.phase;
        phi = qp.phase;
        imp.theta_arm_amplitude = qt.amplitude;
        imp.phi_arm_amplitude = qp.amplitude;
      }
      const phot::Transfer2 t =
          phot::mzi_physical(theta, phi, imp, layout_.style);
      const auto port = static_cast<std::size_t>(tops[c]);
      out.blocks.push_back({port, t.a * routing_amp, t.b * routing_amp,
                            t.c * routing_amp, t.d * routing_amp});
      out.covered[port] = 1;
      out.covered[port + 1] = 1;
    }
    if (with_errors && errors_.balanced_dummies) {
      // Matched-dummy attenuation for ports this column does not cover.
      const double dummy_amp = phot::loss_db_to_amplitude(
          2.0 * errors_.coupler_loss_db + 2.0 * errors_.ps_loss_db);
      for (std::size_t p = 0; p < n; ++p)
        if (!out.covered[p]) out.diag[p] *= dummy_amp;
    }
  } else if (std::holds_alternative<PhaseColumn>(column)) {
    const double ps_amp =
        with_errors ? phot::loss_db_to_amplitude(errors_.ps_loss_db) : 1.0;
    for (std::size_t p = 0; p < n; ++p) {
      double phi = phases_[phase_i];
      double amp = ps_amp;
      if (use_pcm) {
        const auto q = pcm_->quantize(phi, drift_time_s_);
        phi = q.phase;
        amp *= q.amplitude;
      }
      if (with_errors) phi += phase_offset_[phase_i];
      out.diag[p] = std::polar(amp, phi) * routing_amp;
      ++phase_i;
    }
  } else {
    const auto& tops = std::get<CouplerColumn>(column).top_ports;
    std::size_t ci2 = coup_i;
    for (const int t : tops) {
      phot::DirectionalCoupler dc;
      dc.delta_eta = with_errors ? coupler_delta_[ci2] + disp_delta : 0.0;
      dc.insertion_loss_db = with_errors ? errors_.coupler_loss_db : 0.0;
      const phot::Transfer2 tr = dc.transfer();
      const auto port = static_cast<std::size_t>(t);
      out.blocks.push_back({port, tr.a * routing_amp, tr.b * routing_amp,
                            tr.c * routing_amp, tr.d * routing_amp});
      out.covered[port] = 1;
      out.covered[port + 1] = 1;
      ++ci2;
    }
    if (with_errors && errors_.balanced_dummies) {
      const double dummy_amp =
          phot::loss_db_to_amplitude(errors_.coupler_loss_db);
      for (std::size_t p = 0; p < n; ++p)
        if (!out.covered[p]) out.diag[p] *= dummy_amp;
    }
  }
}

void PhysicalMesh::column_apply_left(const ColumnMatrix& cm, CMat& m) {
  const std::size_t ncols = m.cols();
  cplx* data = m.raw().data();
  for (const auto& b : cm.blocks) {
    cplx* ri = &data[b.top * ncols];
    cplx* rj = &data[(b.top + 1) * ncols];
    for (std::size_t col = 0; col < ncols; ++col) {
      const cplx mi = ri[col];
      const cplx mj = rj[col];
      ri[col] = b.a * mi + b.b * mj;
      rj[col] = b.c * mi + b.d * mj;
    }
  }
  for (std::size_t p = 0; p < cm.covered.size(); ++p) {
    if (cm.covered[p]) continue;
    const cplx f = cm.diag[p];
    if (f == cplx{1.0, 0.0}) continue;
    cplx* rp = &data[p * ncols];
    for (std::size_t col = 0; col < ncols; ++col) rp[col] *= f;
  }
}

void PhysicalMesh::column_apply_right(CMat& m, const ColumnMatrix& cm) {
  const std::size_t nrows = m.rows();
  const std::size_t ncols = m.cols();
  cplx* data = m.raw().data();
  for (const auto& b : cm.blocks) {
    for (std::size_t r = 0; r < nrows; ++r) {
      cplx* row = &data[r * ncols];
      const cplx mi = row[b.top];
      const cplx mj = row[b.top + 1];
      row[b.top] = mi * b.a + mj * b.c;
      row[b.top + 1] = mi * b.b + mj * b.d;
    }
  }
  for (std::size_t p = 0; p < cm.covered.size(); ++p) {
    if (cm.covered[p]) continue;
    const cplx f = cm.diag[p];
    if (f == cplx{1.0, 0.0}) continue;
    for (std::size_t r = 0; r < nrows; ++r) data[r * ncols + p] *= f;
  }
}

CMat PhysicalMesh::evaluate(bool with_errors, double detuning_nm) const {
  CMat m = CMat::identity(layout_.ports);
  for (std::size_t c = 0; c < layout_.columns.size(); ++c) {
    build_column(c, with_errors, detuning_nm, scratch_col_);
    column_apply_left(scratch_col_, m);
  }
  return m;
}

void PhysicalMesh::rebuild_cache() const {
  const std::size_t n = layout_.ports;
  const std::size_t k = layout_.columns.size();
  if (k == 0) {
    t_cache_ = CMat::identity(n);
    cache_ready_ = true;
    dirty_col_ = -1;
    rank_updates_ = 0;
    return;
  }
  cols_.resize(k);
  prefix_.resize(k);
  suffix_.resize(k);
  for (std::size_t c = 0; c < k; ++c)
    build_column(c, true, detuning_nm_, cols_[c]);
  // T is composed in one accumulator — a rebuild costs exactly what the
  // from-scratch evaluation does. Prefixes and suffixes start at their
  // identity anchors and are extended lazily by the incremental path, so
  // pure-evaluation workloads (drift/detuning sweeps that never call
  // set_phase) neither compute nor store the product chains.
  t_cache_.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) t_cache_(i, i) = cplx{1.0, 0.0};
  for (std::size_t c = 0; c < k; ++c) column_apply_left(cols_[c], t_cache_);
  prefix_[0].resize(n, n);
  for (std::size_t i = 0; i < n; ++i) prefix_[0](i, i) = cplx{1.0, 0.0};
  prefix_valid_ = 0;
  suffix_[k - 1].resize(n, n);
  for (std::size_t i = 0; i < n; ++i) suffix_[k - 1](i, i) = cplx{1.0, 0.0};
  suffix_valid_ = k - 1;
  cache_ready_ = true;
  dirty_col_ = -1;
  rank_updates_ = 0;
}

bool PhysicalMesh::try_incremental_update() const {
  if (rank_updates_ >= kMaxRankUpdates) return false;
  const auto c = static_cast<std::size_t>(dirty_col_);
  // Extend the cached prefix/suffix products to bracket column c. Only
  // clean columns are touched; O(N^2) per step, paid once per column
  // transition of a calibration sweep.
  while (prefix_valid_ < c) {
    prefix_[prefix_valid_ + 1] = prefix_[prefix_valid_];
    column_apply_left(cols_[prefix_valid_], prefix_[prefix_valid_ + 1]);
    ++prefix_valid_;
  }
  while (suffix_valid_ > c) {
    suffix_[suffix_valid_ - 1] = suffix_[suffix_valid_];
    column_apply_right(suffix_[suffix_valid_ - 1], cols_[suffix_valid_]);
    --suffix_valid_;
  }
  build_column(c, true, detuning_nm_, scratch_col_);

  // T += L_c (C_c' - C_c) R_c, contracted entry-by-entry: the column
  // difference has O(1) nonzeros (one MZI cell, or three with thermal
  // crosstalk), each a rank-one update costing O(N^2).
  const CMat& lc = suffix_[c];
  const CMat& rc = prefix_[c];
  const std::size_t n = layout_.ports;
  const auto add_entry = [&](std::size_t i, std::size_t j, cplx delta) {
    if (delta == cplx{0.0, 0.0}) return;
    const cplx* rrow = &rc.raw()[j * n];
    for (std::size_t r = 0; r < n; ++r) {
      const cplx lri = lc(r, i) * delta;
      if (lri == cplx{0.0, 0.0}) continue;
      cplx* trow = &t_cache_.raw()[r * n];
      for (std::size_t s = 0; s < n; ++s) trow[s] += lri * rrow[s];
    }
  };
  const ColumnMatrix& oldc = cols_[c];
  const ColumnMatrix& newc = scratch_col_;
  for (std::size_t b = 0; b < newc.blocks.size(); ++b) {
    const auto& nb = newc.blocks[b];
    const auto& ob = oldc.blocks[b];
    add_entry(nb.top, nb.top, nb.a - ob.a);
    add_entry(nb.top, nb.top + 1, nb.b - ob.b);
    add_entry(nb.top + 1, nb.top, nb.c - ob.c);
    add_entry(nb.top + 1, nb.top + 1, nb.d - ob.d);
  }
  for (std::size_t p = 0; p < n; ++p) {
    if (newc.covered[p]) continue;
    add_entry(p, p, newc.diag[p] - oldc.diag[p]);
  }
  std::swap(cols_[c], scratch_col_);
  dirty_col_ = -1;
  ++rank_updates_;
  return true;
}

const CMat& PhysicalMesh::transfer() const {
  if (cache_ready_) {
    if (dirty_col_ < 0) return t_cache_;
    if (try_incremental_update()) return t_cache_;
  }
  rebuild_cache();
  return t_cache_;
}

CMat PhysicalMesh::transfer_uncached() const {
  return evaluate(true, detuning_nm_);
}

CMat PhysicalMesh::transfer_at(double detuning_nm) const {
  return evaluate(true, detuning_nm);
}

CMat PhysicalMesh::ideal_transfer() const {
  return evaluate(false, detuning_nm_);
}

CVec PhysicalMesh::propagate(const CVec& in) const { return transfer() * in; }

double PhysicalMesh::nominal_insertion_loss_db() const {
  double total = 0.0;
  for (const auto& column : layout_.columns) {
    total += errors_.routing_loss_db_per_column;
    if (std::holds_alternative<MziColumn>(column))
      total += 2.0 * errors_.coupler_loss_db + 2.0 * errors_.ps_loss_db;
    else if (std::holds_alternative<PhaseColumn>(column))
      total += errors_.ps_loss_db;
    else
      total += errors_.coupler_loss_db;
  }
  return total;
}

CMat PhysicalMesh::ideal_of(const MeshLayout& layout,
                            const std::vector<double>& phases) {
  PhysicalMesh mesh(layout, MeshErrorModel{});
  mesh.program(phases);
  return mesh.ideal_transfer();
}

}  // namespace aspen::mesh
