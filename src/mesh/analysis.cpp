#include "mesh/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "lina/random.hpp"

namespace aspen::mesh {

using lina::CMat;
using lina::cplx;

std::string to_string(Architecture a) {
  switch (a) {
    case Architecture::kReck: return "reck";
    case Architecture::kClements: return "clements";
    case Architecture::kClementsSym: return "clements-sym";
    case Architecture::kFldzhyan: return "fldzhyan";
    case Architecture::kRedundant: return "redundant";
  }
  return "?";
}

MeshLayout make_layout(Architecture a, std::size_t n,
                       std::size_t extra_columns) {
  switch (a) {
    case Architecture::kReck: return reck_layout(n);
    case Architecture::kClements: return clements_layout(n);
    case Architecture::kClementsSym:
      return clements_layout(n, phot::MziStyle::kSymmetric);
    case Architecture::kFldzhyan:
      // 2n phase layers: local-search programming reliably exceeds
      // F = 0.99 only with ~2x parameter redundancy over the n^2 DOF
      // (bench_e1_expressivity sweeps this crossover explicitly).
      return fldzhyan_layout(n, 2 * n);
    case Architecture::kRedundant: return redundant_layout(n, extra_columns);
  }
  throw std::invalid_argument("make_layout: unknown architecture");
}

bool has_analytic_decomposition(Architecture a) {
  return a != Architecture::kFldzhyan;
}

namespace {

/// Fold a near-diagonal residue D = target * E^dagger into the trailing
/// output PhaseColumn so analytic programming matches `target` exactly
/// (absorbs symmetric-cell global phases and redundant-column residues).
void fold_diagonal_residue(PhysicalMesh& mesh, const CMat& target) {
  const CMat e = mesh.ideal_transfer();
  CMat e_adj;
  lina::adjoint_into(e_adj, e);
  CMat residue;
  lina::mul_into(residue, target, e_adj);
  // Verify the residue is diagonal enough to absorb.
  const std::size_t n = residue.rows();
  double offdiag = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (r != c) offdiag = std::max(offdiag, std::abs(residue(r, c)));
  if (offdiag > 1e-6) return;  // nothing safe to fold
  // The trailing PhaseColumn occupies the last n phase slots.
  const std::size_t base = mesh.phase_count() - n;
  for (std::size_t k = 0; k < n; ++k)
    mesh.set_phase(base + k, mesh.phase(base + k) + std::arg(residue(k, k)));
}

/// Program analytic phases for architectures that have a decomposition.
void program_analytic(Architecture a, PhysicalMesh& mesh, const CMat& target,
                      ProgramScratch& ws) {
  const std::size_t n = target.rows();
  ProgrammedMesh& pm = ws.pm;
  switch (a) {
    case Architecture::kReck:
      reck_decompose(target, phot::MziStyle::kStandard, ws.decompose, pm);
      mesh.program(pm.phases);
      break;
    case Architecture::kClements:
      clements_decompose(target, phot::MziStyle::kStandard, ws.decompose, pm);
      mesh.program(pm.phases);
      break;
    case Architecture::kClementsSym: {
      clements_decompose(target, phot::MziStyle::kSymmetric, ws.decompose, pm);
      mesh.program(pm.phases);
      break;
    }
    case Architecture::kRedundant: {
      clements_decompose(target, phot::MziStyle::kStandard, ws.decompose, pm);
      // Redundant layout = Clements columns + extra columns before the
      // output phases. Extra cells are parked in the bar state
      // (theta = pi) whose diagonal sign residue the fold below absorbs.
      std::vector<double>& phases = ws.phases;
      phases.assign(mesh.phase_count(), 0.0);
      const std::size_t clements_cells = 2 * pm.layout.mzi_count();
      for (std::size_t k = 0; k < clements_cells; ++k)
        phases[k] = pm.phases[k];
      for (std::size_t k = clements_cells; k + n < phases.size(); k += 2)
        phases[k] = 3.141592653589793;  // theta = pi -> bar state
      // Output phase screen from the Clements program.
      for (std::size_t k = 0; k < n; ++k)
        phases[phases.size() - n + k] = pm.phases[pm.phases.size() - n + k];
      mesh.program(phases);
      break;
    }
    case Architecture::kFldzhyan:
      throw std::logic_error("program_analytic: fldzhyan has no analytic form");
  }
  fold_diagonal_residue(mesh, target);
}

}  // namespace

double program_for_target(Architecture a, PhysicalMesh& mesh,
                          const CMat& target, bool recalibrate,
                          const CalibrationOptions& opt) {
  ProgramScratch scratch;
  return program_for_target(a, mesh, target, recalibrate, opt, scratch);
}

double program_for_target(Architecture a, PhysicalMesh& mesh,
                          const CMat& target, bool recalibrate,
                          const CalibrationOptions& opt,
                          ProgramScratch& scratch) {
  if (has_analytic_decomposition(a)) {
    program_analytic(a, mesh, target, scratch);
  } else {
    // Universality programming on an ideal twin (no fabrication errors),
    // then transfer the phases to the physical die.
    PhysicalMesh twin(mesh.layout(), MeshErrorModel{});
    CalibrationOptions twin_opt = opt;
    if (twin_opt.restarts < 2) twin_opt.restarts = 2;
    calibrate(twin, target, twin_opt);
    mesh.program(twin.phases());
  }
  if (recalibrate) calibrate(mesh, target, opt);
  return CMat::fidelity(target, mesh.transfer());
}

EnsembleResult haar_ensemble_fidelity(Architecture a, std::size_t n,
                                      const MeshErrorModel& errors,
                                      int samples, bool recalibrate,
                                      std::uint64_t seed,
                                      const CalibrationOptions& opt) {
  EnsembleResult out;
  lina::Rng rng(seed);
  for (int s = 0; s < samples; ++s) {
    MeshErrorModel em = errors;
    em.seed = rng.fork().engine()();  // fresh die per sample
    PhysicalMesh mesh(make_layout(a, n), em);
    const CMat target = lina::haar_unitary(n, rng);
    const double f = program_for_target(a, mesh, target, recalibrate, opt);
    out.fidelity.add(f);
    out.infidelity.add(std::max(0.0, 1.0 - f));
  }
  return out;
}

}  // namespace aspen::mesh
