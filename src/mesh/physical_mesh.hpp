#pragma once
/// \file physical_mesh.hpp
/// Physical simulation of a programmable interferometer mesh: composes
/// per-device transfer matrices (couplers, MZIs, phase shifters) with
/// fabrication errors, loss, thermal crosstalk and optional PCM phase
/// quantization + drift into the N x N complex transfer of the chip.
///
/// Fabrication imperfections are sampled once at construction (a "die");
/// reprogramming the phases models the heaters / PCM writes on that die.
///
/// The transfer is column-factored and cached: every mesh column c is a
/// block-diagonal matrix C_c (2x2 cell blocks + per-port scalars), and the
/// chip transfer is T = C_{K-1} ... C_1 C_0. The cache keeps the per-column
/// matrices together with prefix products R_c = C_{c-1}...C_0 and suffix
/// products L_c = C_{K-1}...C_{c+1}, so after set_phase() dirties a single
/// column c the new transfer is
///     T' = T + L_c (C_c' - C_c) R_c,
/// a sum of a handful of rank-one updates (C_c' - C_c has O(1) nonzero
/// entries) costing O(N^2) instead of the O(columns * N^2) from-scratch
/// rebuild. Coordinate-descent calibration — which tweaks one phase at a
/// time, in column order — runs entirely on this fast path.

#include <cstdint>
#include <optional>
#include <vector>

#include "lina/complex_matrix.hpp"
#include "lina/random.hpp"
#include "mesh/layout.hpp"
#include "photonics/pcm_cell.hpp"

namespace aspen::mesh {

/// Stochastic + deterministic imperfection parameters of a fabricated die.
struct MeshErrorModel {
  /// Std-dev of the directional-coupler coupling-angle error [rad].
  /// (0.05 rad ~= 2.5 % power-splitting imbalance.)
  double coupler_sigma = 0.0;
  /// Std-dev of static per-phase-shifter fabrication phase offsets [rad].
  double phase_sigma = 0.0;
  /// Deterministic per-component losses.
  double coupler_loss_db = 0.05;
  double ps_loss_db = 0.05;
  double routing_loss_db_per_column = 0.02;
  /// Fraction of a thermo-optic heater's phase leaking into each
  /// vertically adjacent cell in the same column (0 disables). Not
  /// applied when PCM phases are enabled: holding a PCM state draws no
  /// heater power, which is precisely the paper's argument for
  /// non-volatile weights.
  double thermal_crosstalk = 0.0;
  /// Real meshes place matched dummy devices on waveguides a column does
  /// not cover, so every path sees the same nominal loss; without them
  /// edge ports attenuate less and the transfer shape is distorted.
  bool balanced_dummies = true;
  /// Directional-coupler dispersion: systematic coupling-angle shift per
  /// nm of wavelength detuning from the design wavelength. Meshes are
  /// designed at one wavelength; DWDM channels ride detuned carriers and
  /// see a uniformly rotated splitting ratio (~0.006 rad/nm for typical
  /// SOI couplers). Activated via set_wavelength_detuning_nm().
  double coupler_dispersion_rad_per_nm = 0.006;
  /// Die seed for the sampled imperfections.
  std::uint64_t seed = 0xd1e5eedULL;
};

class PhysicalMesh {
 public:
  PhysicalMesh(MeshLayout layout, MeshErrorModel errors = {});

  /// Program all phases (length must equal layout().phase_count()).
  void program(const std::vector<double>& phases);
  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }
  [[nodiscard]] double phase(std::size_t i) const { return phases_.at(i); }
  /// Set one programmable phase. Dirties only the owning mesh column; the
  /// next transfer() refreshes incrementally in O(N^2).
  void set_phase(std::size_t i, double v);
  [[nodiscard]] const std::vector<double>& phases() const { return phases_; }

  /// Route all programmable phases through a PCM phase map (multilevel
  /// quantization + level-dependent absorption) instead of ideal
  /// thermo-optic holding.
  void enable_pcm(const phot::PcmCellConfig& cfg);
  void disable_pcm();
  [[nodiscard]] bool pcm_enabled() const { return pcm_.has_value(); }
  /// Config of the enabled PCM map (std::nullopt when disabled).
  [[nodiscard]] const std::optional<phot::PcmCellConfig>& pcm_config() const {
    return pcm_cfg_;
  }
  /// Time since the PCM weights were written (drift model input).
  void set_drift_time(double seconds);

  /// Carrier detuning from the design wavelength (DWDM channels); shifts
  /// every coupler by dispersion * detuning.
  void set_wavelength_detuning_nm(double nm);
  [[nodiscard]] double wavelength_detuning_nm() const { return detuning_nm_; }

  /// Full N x N transfer with all imperfections. Served from the
  /// column-factored cache; the returned reference is invalidated by any
  /// subsequent mutation of the mesh (copy it if you need it to persist).
  [[nodiscard]] const lina::CMat& transfer() const;
  /// From-scratch reference evaluation of the same transfer, bypassing the
  /// cache entirely — the ground truth the incremental path is verified
  /// against (and a debugging aid).
  [[nodiscard]] lina::CMat transfer_uncached() const;
  /// Transfer seen by a carrier detuned `nm` from the design wavelength,
  /// evaluated from scratch. Does not touch the mesh's own detuning state
  /// (or its transfer cache) — detuning is an explicit argument here, not
  /// hidden mutable state.
  [[nodiscard]] lina::CMat transfer_at(double detuning_nm) const;
  /// Transfer of the same phases on a perfect, lossless die.
  [[nodiscard]] lina::CMat ideal_transfer() const;
  /// Propagate one input field vector.
  [[nodiscard]] lina::CVec propagate(const lina::CVec& in) const;

  /// Worst-path nominal insertion loss from the deterministic per-device
  /// losses (excludes PCM state-dependent absorption).
  [[nodiscard]] double nominal_insertion_loss_db() const;

  [[nodiscard]] const MeshLayout& layout() const { return layout_; }
  [[nodiscard]] const MeshErrorModel& errors() const { return errors_; }

  /// Mesh column owning programmable phase slot `i` (cache diagnostics,
  /// calibration scheduling).
  [[nodiscard]] std::size_t column_of_phase(std::size_t i) const {
    return phase_col_.at(i);
  }

  /// Evaluate a layout + phases on a perfect die (static convenience used
  /// by the decomposition tests).
  [[nodiscard]] static lina::CMat ideal_of(const MeshLayout& layout,
                                           const std::vector<double>& phases);

  // -- Snapshot / restore -------------------------------------------------
  /// Programmable state only: phases + drift clock + carrier detuning.
  /// Die imperfections are construction-time constants and the transfer
  /// cache is derived — restore() invalidates it (only when the restored
  /// state actually differs) rather than copying it.
  struct Snapshot {
    std::vector<double> phases;
    double drift_time_s = 0.0;
    double detuning_nm = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return {phases_, drift_time_s_, detuning_nm_};
  }
  void restore(const Snapshot& s);

 private:
  /// One mesh column as a compact block-diagonal matrix: 2x2 blocks at the
  /// cell positions, per-port scalars everywhere else. All error terms
  /// (losses, offsets, crosstalk, PCM, routing) are folded in.
  struct ColumnMatrix {
    struct Block {
      std::size_t top = 0;
      lina::cplx a, b, c, d;
    };
    std::vector<Block> blocks;
    std::vector<lina::cplx> diag;          ///< scalar for each uncovered port
    std::vector<unsigned char> covered;    ///< 1 when a block owns the port
  };

  /// m <- C * m (block-sparse left application, O(N^2)).
  static void column_apply_left(const ColumnMatrix& cm, lina::CMat& m);
  /// m <- m * C (block-sparse right application, O(N^2)).
  static void column_apply_right(lina::CMat& m, const ColumnMatrix& cm);

  [[nodiscard]] lina::CMat evaluate(bool with_errors, double detuning_nm) const;
  void build_column(std::size_t c, bool with_errors, double detuning_nm,
                    ColumnMatrix& out) const;
  void rebuild_cache() const;      ///< full O(columns * N^2) refresh
  void invalidate_cache() const;   ///< global-parameter change
  /// Apply the single-dirty-column rank update; false -> full rebuild.
  [[nodiscard]] bool try_incremental_update() const;

  MeshLayout layout_;
  MeshErrorModel errors_;
  std::vector<double> phases_;

  // Sampled die imperfections, indexed per phase slot / coupler instance.
  std::vector<double> phase_offset_;     ///< per programmable phase
  std::vector<double> coupler_delta_;    ///< per coupler instance
  std::optional<phot::PcmPhaseMap> pcm_;
  std::optional<phot::PcmCellConfig> pcm_cfg_;
  double drift_time_s_ = 0.0;
  double detuning_nm_ = 0.0;

  // Static layout indexing, computed once in the constructor.
  std::vector<std::size_t> phase_col_;    ///< owning column per phase slot
  std::vector<std::size_t> col_phase0_;   ///< first phase slot per column
  std::vector<std::size_t> col_coup0_;    ///< first coupler index per column

  // -- Column-factored transfer cache (logically const) ------------------
  mutable std::vector<ColumnMatrix> cols_;   ///< per-column matrices
  mutable std::vector<lina::CMat> prefix_;   ///< prefix_[c] = C_{c-1}...C_0
  mutable std::vector<lina::CMat> suffix_;   ///< suffix_[c] = C_{K-1}...C_{c+1}
  mutable lina::CMat t_cache_;
  mutable bool cache_ready_ = false;         ///< cols_/t_cache_ coherent
  mutable std::ptrdiff_t dirty_col_ = -1;    ///< single stale column, -1 none
  mutable std::size_t prefix_valid_ = 0;     ///< prefix_[0..prefix_valid_] valid
  mutable std::size_t suffix_valid_ = 0;     ///< suffix_[suffix_valid_..] valid
  mutable int rank_updates_ = 0;  ///< low-rank steps since last full rebuild
  // Reusable scratch (kills the per-column allocations in evaluate()).
  mutable ColumnMatrix scratch_col_;
  mutable std::vector<double> scratch_th_, scratch_ph_;
};

}  // namespace aspen::mesh
