#pragma once
/// \file physical_mesh.hpp
/// Physical simulation of a programmable interferometer mesh: composes
/// per-device transfer matrices (couplers, MZIs, phase shifters) with
/// fabrication errors, loss, thermal crosstalk and optional PCM phase
/// quantization + drift into the N x N complex transfer of the chip.
///
/// Fabrication imperfections are sampled once at construction (a "die");
/// reprogramming the phases models the heaters / PCM writes on that die.

#include <cstdint>
#include <optional>
#include <vector>

#include "lina/complex_matrix.hpp"
#include "lina/random.hpp"
#include "mesh/layout.hpp"
#include "photonics/pcm_cell.hpp"

namespace aspen::mesh {

/// Stochastic + deterministic imperfection parameters of a fabricated die.
struct MeshErrorModel {
  /// Std-dev of the directional-coupler coupling-angle error [rad].
  /// (0.05 rad ~= 2.5 % power-splitting imbalance.)
  double coupler_sigma = 0.0;
  /// Std-dev of static per-phase-shifter fabrication phase offsets [rad].
  double phase_sigma = 0.0;
  /// Deterministic per-component losses.
  double coupler_loss_db = 0.05;
  double ps_loss_db = 0.05;
  double routing_loss_db_per_column = 0.02;
  /// Fraction of a thermo-optic heater's phase leaking into each
  /// vertically adjacent cell in the same column (0 disables). Not
  /// applied when PCM phases are enabled: holding a PCM state draws no
  /// heater power, which is precisely the paper's argument for
  /// non-volatile weights.
  double thermal_crosstalk = 0.0;
  /// Real meshes place matched dummy devices on waveguides a column does
  /// not cover, so every path sees the same nominal loss; without them
  /// edge ports attenuate less and the transfer shape is distorted.
  bool balanced_dummies = true;
  /// Directional-coupler dispersion: systematic coupling-angle shift per
  /// nm of wavelength detuning from the design wavelength. Meshes are
  /// designed at one wavelength; DWDM channels ride detuned carriers and
  /// see a uniformly rotated splitting ratio (~0.006 rad/nm for typical
  /// SOI couplers). Activated via set_wavelength_detuning_nm().
  double coupler_dispersion_rad_per_nm = 0.006;
  /// Die seed for the sampled imperfections.
  std::uint64_t seed = 0xd1e5eedULL;
};

class PhysicalMesh {
 public:
  PhysicalMesh(MeshLayout layout, MeshErrorModel errors = {});

  /// Program all phases (length must equal layout().phase_count()).
  void program(const std::vector<double>& phases);
  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }
  [[nodiscard]] double phase(std::size_t i) const { return phases_.at(i); }
  void set_phase(std::size_t i, double v) { phases_.at(i) = v; }
  [[nodiscard]] const std::vector<double>& phases() const { return phases_; }

  /// Route all programmable phases through a PCM phase map (multilevel
  /// quantization + level-dependent absorption) instead of ideal
  /// thermo-optic holding.
  void enable_pcm(const phot::PcmCellConfig& cfg);
  void disable_pcm();
  [[nodiscard]] bool pcm_enabled() const { return pcm_.has_value(); }
  /// Config of the enabled PCM map (std::nullopt when disabled).
  [[nodiscard]] const std::optional<phot::PcmCellConfig>& pcm_config() const {
    return pcm_cfg_;
  }
  /// Time since the PCM weights were written (drift model input).
  void set_drift_time(double seconds) { drift_time_s_ = seconds; }

  /// Carrier detuning from the design wavelength (DWDM channels); shifts
  /// every coupler by dispersion * detuning.
  void set_wavelength_detuning_nm(double nm) { detuning_nm_ = nm; }
  [[nodiscard]] double wavelength_detuning_nm() const { return detuning_nm_; }

  /// Full N x N transfer with all imperfections.
  [[nodiscard]] lina::CMat transfer() const;
  /// Transfer of the same phases on a perfect, lossless die.
  [[nodiscard]] lina::CMat ideal_transfer() const;
  /// Propagate one input field vector.
  [[nodiscard]] lina::CVec propagate(const lina::CVec& in) const;

  /// Worst-path nominal insertion loss from the deterministic per-device
  /// losses (excludes PCM state-dependent absorption).
  [[nodiscard]] double nominal_insertion_loss_db() const;

  [[nodiscard]] const MeshLayout& layout() const { return layout_; }
  [[nodiscard]] const MeshErrorModel& errors() const { return errors_; }

  /// Evaluate a layout + phases on a perfect die (static convenience used
  /// by the decomposition tests).
  [[nodiscard]] static lina::CMat ideal_of(const MeshLayout& layout,
                                           const std::vector<double>& phases);

 private:
  [[nodiscard]] lina::CMat evaluate(bool with_errors) const;

  MeshLayout layout_;
  MeshErrorModel errors_;
  std::vector<double> phases_;

  // Sampled die imperfections, indexed per phase slot / coupler instance.
  std::vector<double> phase_offset_;     ///< per programmable phase
  std::vector<double> coupler_delta_;    ///< per coupler instance
  std::optional<phot::PcmPhaseMap> pcm_;
  std::optional<phot::PcmCellConfig> pcm_cfg_;
  double drift_time_s_ = 0.0;
  double detuning_nm_ = 0.0;
};

}  // namespace aspen::mesh
