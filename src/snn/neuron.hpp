#pragma once
/// \file neuron.hpp
/// Photonic spiking neurons:
///  - `PcmNeuron`: accumulate-and-fire via PCM pulse accumulation (paper
///    Section 3 "accumulation behavior of PCM-based devices to optical
///    pulses"; Feldmann 2019's integrate-and-fire cell). Non-leaky —
///    the state is non-volatile between pulses.
///  - `YamadaSpikingNeuron`: excitable Q-switched laser neuron driven by
///    optical pulse injections (the III-V spiking source of Section 3),
///    wrapping the Yamada rate equations with physical time scaling.

#include "photonics/laser.hpp"
#include "photonics/pcm_cell.hpp"

namespace aspen::snn {

struct PcmNeuronConfig {
  phot::PcmCellConfig cell;
  /// Crystalline fraction at which the probe branch flips and the neuron
  /// emits an output spike.
  double threshold_fraction = 0.75;
  /// Scale from summed weighted input (in [0, 1] units) to accumulation
  /// strength per pulse slot.
  double integration_gain = 1.0;
  double refractory_s = 20e-9;
  /// Homeostatic threshold adaptation: each output spike raises the
  /// effective threshold by `adaptation_delta`, which then decays with
  /// time constant `adaptation_tau_s`. Keeps any one neuron from
  /// monopolizing a winner-take-all population (0 disables).
  double adaptation_delta = 0.0;
  double adaptation_tau_s = 400e-9;
};

class PcmNeuron {
 public:
  explicit PcmNeuron(PcmNeuronConfig cfg = {});

  /// Deliver the summed weighted optical input of one pulse slot at time
  /// `now`; returns true if the neuron fires (and resets).
  bool inject(double weighted_sum, double now_s);

  /// Would `inject` fire, without changing state? Used by winner-take-all
  /// arbitration to order firing within a pulse slot.
  [[nodiscard]] bool would_fire(double weighted_sum, double now_s) const;
  /// Predicted membrane after such an injection (no state change).
  [[nodiscard]] double predicted_membrane(double weighted_sum) const;

  [[nodiscard]] double membrane() const { return cell_.fraction(); }
  /// Effective threshold right now (base + decayed adaptation).
  [[nodiscard]] double threshold(double now_s) const;
  [[nodiscard]] double base_threshold() const {
    return cfg_.threshold_fraction;
  }
  [[nodiscard]] double last_spike_time() const { return last_spike_s_; }
  [[nodiscard]] std::uint64_t spike_count() const { return spikes_; }
  /// Total energy spent on accumulation + reset writes.
  [[nodiscard]] double energy_j() const { return cell_.energy_spent_j(); }
  void reset_state();

  /// Apply lateral inhibition: partially amorphize the membrane.
  void inhibit(double amount);

 private:
  PcmNeuronConfig cfg_;
  phot::PcmCell cell_;
  double last_spike_s_ = -1e300;
  std::uint64_t spikes_ = 0;
  double adapt_ = 0.0;           ///< adaptation level at adapt_time_
  double adapt_time_s_ = 0.0;
};

/// Excitable-laser neuron with physical time conversion: the Yamada model
/// runs in cavity-lifetime units; `time_unit_s` converts to seconds
/// (~0.1-1 ns for III-V on SOI lasers).
struct YamadaSpikingConfig {
  phot::YamadaConfig model;
  double time_unit_s = 0.2e-9;
  double injection_gain = 0.3;  ///< optical input to injection conversion
};

class YamadaSpikingNeuron {
 public:
  explicit YamadaSpikingNeuron(YamadaSpikingConfig cfg = {});

  /// Advance to absolute time `until_s`, applying `input` as a constant
  /// injection over the interval; records spike times.
  void advance(double until_s, double input = 0.0);

  [[nodiscard]] const std::vector<double>& spike_times() const {
    return spikes_;
  }
  [[nodiscard]] double intensity() const { return neuron_.intensity(); }
  [[nodiscard]] double now() const { return now_s_; }
  void reset();

 private:
  YamadaSpikingConfig cfg_;
  phot::YamadaNeuron neuron_;
  std::vector<double> spikes_;
  double now_s_ = 0.0;
};

}  // namespace aspen::snn
