#include "snn/neuron.hpp"

#include <algorithm>
#include <cmath>

namespace aspen::snn {

PcmNeuron::PcmNeuron(PcmNeuronConfig cfg) : cfg_(cfg), cell_(cfg.cell) {}

double PcmNeuron::threshold(double now_s) const {
  if (cfg_.adaptation_delta <= 0.0) return cfg_.threshold_fraction;
  const double dt = now_s - adapt_time_s_;
  const double decayed =
      dt > 0.0 ? adapt_ * std::exp(-dt / cfg_.adaptation_tau_s) : adapt_;
  return cfg_.threshold_fraction + decayed;
}

double PcmNeuron::predicted_membrane(double weighted_sum) const {
  if (weighted_sum <= 0.0) return cell_.fraction();
  return std::min(1.0, cell_.fraction() +
                           cfg_.cell.accumulation_step *
                               cfg_.integration_gain * weighted_sum);
}

bool PcmNeuron::would_fire(double weighted_sum, double now_s) const {
  if (now_s - last_spike_s_ < cfg_.refractory_s) return false;
  if (weighted_sum <= 0.0) return false;
  return predicted_membrane(weighted_sum) >= threshold(now_s);
}

bool PcmNeuron::inject(double weighted_sum, double now_s) {
  if (now_s - last_spike_s_ < cfg_.refractory_s) return false;
  if (weighted_sum <= 0.0) return false;
  cell_.accumulate(cfg_.integration_gain * weighted_sum);
  if (cell_.fraction() >= threshold(now_s)) {
    cell_.reset();  // melt-quench back to amorphous
    last_spike_s_ = now_s;
    ++spikes_;
    if (cfg_.adaptation_delta > 0.0) {
      // Fold the decayed adaptation forward, then bump it.
      adapt_ = threshold(now_s) - cfg_.threshold_fraction +
               cfg_.adaptation_delta;
      adapt_time_s_ = now_s;
    }
    return true;
  }
  return false;
}

void PcmNeuron::reset_state() {
  cell_.reset();
  last_spike_s_ = -1e300;
  adapt_ = 0.0;
  adapt_time_s_ = 0.0;
}

void PcmNeuron::inhibit(double amount) {
  // Partial amorphization pulls the membrane away from threshold.
  const double target =
      std::max(0.0, cell_.fraction() - std::abs(amount));
  cell_.program_fraction(target);
}

YamadaSpikingNeuron::YamadaSpikingNeuron(YamadaSpikingConfig cfg)
    : cfg_(cfg), neuron_(cfg.model) {}

void YamadaSpikingNeuron::advance(double until_s, double input) {
  const double dt_s = cfg_.model.dt * cfg_.time_unit_s;
  while (now_s_ + dt_s <= until_s) {
    (void)neuron_.step(cfg_.injection_gain * input);
    now_s_ += dt_s;
    if (neuron_.spiked()) spikes_.push_back(now_s_);
  }
}

void YamadaSpikingNeuron::reset() {
  neuron_.reset();
  spikes_.clear();
  now_s_ = 0.0;
}

}  // namespace aspen::snn
