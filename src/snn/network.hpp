#pragma once
/// \file network.hpp
/// A single-layer photonic spiking network: input waveguides fan out
/// through a crossbar of PCM synapses onto PCM accumulate-and-fire
/// neurons, with optional winner-take-all lateral inhibition and online
/// STDP — the architecture of the paper's Section 3 SNN programme
/// (mirroring Feldmann 2019's self-learning network).
///
/// Simulation is slotted in time: input spikes are binned into pulse
/// slots of `slot_s`; within a slot each neuron integrates its weighted
/// input sum, may fire, and STDP updates run on the resulting pre/post
/// pairs.

#include <vector>

#include "snn/neuron.hpp"
#include "snn/pcm_synapse.hpp"
#include "snn/spike.hpp"
#include "snn/stdp.hpp"

namespace aspen::snn {

struct NetworkConfig {
  std::size_t inputs = 8;
  std::size_t outputs = 2;
  double slot_s = 10e-9;  ///< pulse slot duration
  PcmNeuronConfig neuron;
  phot::PcmCellConfig synapse_cell;
  StdpConfig stdp;
  bool learning = true;
  /// Winner-take-all: when a neuron fires, other membranes are pulled
  /// down by this fraction (0 disables).
  double lateral_inhibition = 0.3;
  /// Heterosynaptic depression: when a neuron fires, synapses from inputs
  /// that were *silent* in the recent window are depressed by this amount
  /// — the competition mechanism that keeps pair-STDP from saturating
  /// every weight (0 disables).
  double heterosynaptic_depression = 0.04;
  /// "Recent" window for heterosynaptic depression.
  double hetero_window_s = 30e-9;
  /// Initial synapse weights are uniform in [lo, hi].
  double init_weight_lo = 0.3;
  double init_weight_hi = 0.7;
  std::uint64_t seed = 0x55aaULL;
};

class SpikingNetwork {
 public:
  explicit SpikingNetwork(NetworkConfig cfg);

  /// Present an input raster over [0, duration) *relative to this call*;
  /// returns the output raster in the same relative time base. The
  /// network keeps a persistent internal clock across calls (membranes,
  /// refractory state and STDP traces carry over), so repeated
  /// presentations model one continuous hardware session.
  SpikeRaster run(const SpikeRaster& input, double duration_s);

  /// Total simulated time across all run() calls.
  [[nodiscard]] double elapsed_s() const { return elapsed_s_; }

  /// Current weight matrix snapshot (outputs x inputs).
  [[nodiscard]] std::vector<std::vector<double>> weights() const;
  void set_weight(std::size_t out, std::size_t in, double w);

  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<PcmNeuron>& neurons() const {
    return neurons_;
  }
  /// Total PCM write energy across synapses and neurons so far.
  [[nodiscard]] double total_write_energy_j() const;

  void set_learning(bool on) { cfg_.learning = on; }

 private:
  NetworkConfig cfg_;
  std::vector<PcmNeuron> neurons_;                  ///< size outputs
  std::vector<std::vector<PcmSynapse>> synapses_;   ///< [out][in]
  std::vector<double> last_pre_s_;                  ///< per input (absolute)
  std::vector<double> last_post_s_;                 ///< per output (absolute)
  double elapsed_s_ = 0.0;                          ///< persistent clock
};

}  // namespace aspen::snn
