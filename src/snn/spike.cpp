#include "snn/spike.hpp"

#include <algorithm>
#include <stdexcept>

namespace aspen::snn {

std::vector<double> poisson_train(double rate_hz, double duration_s,
                                  lina::Rng& rng) {
  std::vector<double> out;
  if (rate_hz <= 0.0 || duration_s <= 0.0) return out;
  double t = rng.exponential(rate_hz);
  while (t < duration_s) {
    out.push_back(t);
    t += rng.exponential(rate_hz);
  }
  return out;
}

SpikeRaster latency_encode(const std::vector<double>& values,
                           double window_s) {
  if (window_s <= 0.0)
    throw std::invalid_argument("latency_encode: window <= 0");
  SpikeRaster r(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (v <= 0.0) continue;
    const double clipped = std::min(v, 1.0);
    r[i].push_back((1.0 - clipped) * window_s);
  }
  return r;
}

SpikeRaster rate_encode(const std::vector<double>& values, double max_rate_hz,
                        double duration_s, lina::Rng& rng) {
  SpikeRaster r(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = std::clamp(values[i], 0.0, 1.0);
    r[i] = poisson_train(v * max_rate_hz, duration_s, rng);
  }
  return r;
}

std::vector<SpikeEvent> raster_to_events(const SpikeRaster& r) {
  std::vector<SpikeEvent> events;
  for (std::size_t ch = 0; ch < r.size(); ++ch)
    for (const double t : r[ch]) events.push_back({t, ch});
  std::sort(events.begin(), events.end(),
            [](const SpikeEvent& a, const SpikeEvent& b) {
              return a.time < b.time;
            });
  return events;
}

std::vector<std::size_t> spike_counts(const SpikeRaster& r, double t0,
                                      double t1) {
  std::vector<std::size_t> counts(r.size(), 0);
  for (std::size_t ch = 0; ch < r.size(); ++ch)
    for (const double t : r[ch])
      if (t >= t0 && t < t1) ++counts[ch];
  return counts;
}

}  // namespace aspen::snn
