#pragma once
/// \file pcm_synapse.hpp
/// Non-volatile photonic synapse: the transmission of a PCM patch on the
/// signal waveguide sets the weight (cf. Feldmann et al., Nature 2019 —
/// reference [9] of the paper). More crystalline = more absorptive, so
/// weight w in [0, 1] maps to transmitted *power*; potentiation is a
/// partial RESET (amorphize -> more transparent), depression a partial
/// SET. Write energies and counts are tracked by the underlying cell.

#include "photonics/pcm_cell.hpp"

namespace aspen::snn {

class PcmSynapse {
 public:
  explicit PcmSynapse(phot::PcmCellConfig cfg = phot::PcmCellConfig{},
                      double initial_weight = 0.5);

  /// Current weight = normalized optical power transmission in [0, 1]
  /// (1 at fully amorphous, 0 at fully crystalline).
  [[nodiscard]] double weight() const;

  /// Apply a weight change (positive = potentiate). The change is
  /// realized by reprogramming the crystalline fraction; quantization of
  /// the underlying cell applies.
  void update(double delta_w);
  /// Set the weight directly (clamped to [0, 1]).
  void set_weight(double w);

  [[nodiscard]] const phot::PcmCell& cell() const { return cell_; }
  [[nodiscard]] phot::PcmCell& cell() { return cell_; }

 private:
  /// Invert the weight -> fraction map.
  [[nodiscard]] double fraction_for_weight(double w) const;

  phot::PcmCellConfig cfg_;
  phot::PcmCell cell_;
  double t_min_;  ///< power transmission at fully crystalline
  double t_max_;  ///< power transmission at fully amorphous
};

}  // namespace aspen::snn
