#pragma once
/// \file stdp.hpp
/// Pair-based spike-timing-dependent plasticity rule (paper Section 3).
/// Causal pre-before-post pairs potentiate, anti-causal pairs depress,
/// both with exponential windows. Weight updates are later realized as
/// partial SET / partial RESET pulses on the PCM synapses.

#include <cmath>

namespace aspen::snn {

struct StdpConfig {
  double a_plus = 0.08;    ///< LTP amplitude (fractional weight change)
  double a_minus = 0.06;   ///< LTD amplitude
  double tau_plus_s = 40e-9;
  double tau_minus_s = 40e-9;
};

/// Weight change for a pre->post delay `dt = t_post - t_pre`.
/// dt >= 0 (causal): +a_plus * exp(-dt / tau_plus)
/// dt <  0 (anti-causal): -a_minus * exp(dt / tau_minus)
[[nodiscard]] inline double stdp_delta(const StdpConfig& cfg, double dt_s) {
  if (dt_s >= 0.0) return cfg.a_plus * std::exp(-dt_s / cfg.tau_plus_s);
  return -cfg.a_minus * std::exp(dt_s / cfg.tau_minus_s);
}

}  // namespace aspen::snn
