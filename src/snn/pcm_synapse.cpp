#include "snn/pcm_synapse.hpp"

#include <algorithm>
#include <cmath>

namespace aspen::snn {

PcmSynapse::PcmSynapse(phot::PcmCellConfig cfg, double initial_weight)
    : cfg_(std::move(cfg)), cell_(cfg_) {
  const double amp_min = cell_.amplitude_of_fraction(1.0);
  t_min_ = amp_min * amp_min;
  // The amorphous state is not perfectly transparent either (k_am > 0):
  // normalize against the actually reachable transmission window.
  const double amp_max = cell_.amplitude_of_fraction(0.0);
  t_max_ = amp_max * amp_max;
  set_weight(initial_weight);
}

double PcmSynapse::weight() const {
  const double amp = cell_.amplitude();
  const double t = amp * amp;  // power transmission
  // Normalize [t_min, t_max] -> [0, 1].
  return std::clamp((t - t_min_) / (t_max_ - t_min_), 0.0, 1.0);
}

double PcmSynapse::fraction_for_weight(double w) const {
  const double target_t =
      t_min_ + std::clamp(w, 0.0, 1.0) * (t_max_ - t_min_);
  // amplitude^2 monotone decreasing in fraction: bisect.
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double amp = cell_.amplitude_of_fraction(mid);
    if (amp * amp > target_t)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

void PcmSynapse::set_weight(double w) {
  cell_.program_fraction(fraction_for_weight(w));
}

void PcmSynapse::update(double delta_w) {
  if (delta_w == 0.0) return;
  set_weight(weight() + delta_w);
}

}  // namespace aspen::snn
