#include "snn/network.hpp"

#include <cmath>
#include <stdexcept>

namespace aspen::snn {

SpikingNetwork::SpikingNetwork(NetworkConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.inputs == 0 || cfg_.outputs == 0)
    throw std::invalid_argument("SpikingNetwork: empty shape");
  lina::Rng rng(cfg_.seed);
  neurons_.reserve(cfg_.outputs);
  synapses_.resize(cfg_.outputs);
  for (std::size_t o = 0; o < cfg_.outputs; ++o) {
    neurons_.emplace_back(cfg_.neuron);
    synapses_[o].reserve(cfg_.inputs);
    for (std::size_t i = 0; i < cfg_.inputs; ++i)
      synapses_[o].emplace_back(
          cfg_.synapse_cell,
          rng.uniform(cfg_.init_weight_lo, cfg_.init_weight_hi));
  }
  last_pre_s_.assign(cfg_.inputs, -1e300);
  last_post_s_.assign(cfg_.outputs, -1e300);
}

SpikeRaster SpikingNetwork::run(const SpikeRaster& input, double duration_s) {
  if (input.size() != cfg_.inputs)
    throw std::invalid_argument("SpikingNetwork::run: raster shape");
  SpikeRaster output(cfg_.outputs);

  const auto slots =
      static_cast<std::size_t>(std::ceil(duration_s / cfg_.slot_s));
  // Per-input spike cursors. Input times are relative to this call; the
  // persistent clock offsets them to absolute time.
  const double base = elapsed_s_;
  std::vector<std::size_t> cursor(cfg_.inputs, 0);

  for (std::size_t slot = 0; slot < slots; ++slot) {
    const double t0 = static_cast<double>(slot) * cfg_.slot_s;
    const double t1 = t0 + cfg_.slot_s;
    const double now = base + t1;

    // Which inputs pulsed in this slot?
    std::vector<bool> pre(cfg_.inputs, false);
    for (std::size_t i = 0; i < cfg_.inputs; ++i) {
      while (cursor[i] < input[i].size() && input[i][cursor[i]] < t1) {
        if (input[i][cursor[i]] >= t0) {
          pre[i] = true;
          const double pre_abs = base + input[i][cursor[i]];
          last_pre_s_[i] = pre_abs;
          // Anti-causal LTD: a pre spike arriving after a recent post
          // spike depresses the synapse.
          if (cfg_.learning) {
            for (std::size_t o = 0; o < cfg_.outputs; ++o) {
              const double dt = last_post_s_[o] - pre_abs;
              if (dt > -1e290 && dt < 0.0)
                synapses_[o][i].update(stdp_delta(cfg_.stdp, dt));
            }
          }
        }
        ++cursor[i];
      }
    }

    // Integrate with winner-take-all arbitration: the neuron with the
    // strongest predicted drive fires first; its inhibition pulse lands
    // on competitors *within* the slot, so simultaneous crossings do not
    // all fire (the optical WTA of self-learning SNN hardware).
    std::vector<double> sums(cfg_.outputs, 0.0);
    for (std::size_t o = 0; o < cfg_.outputs; ++o) {
      for (std::size_t i = 0; i < cfg_.inputs; ++i)
        if (pre[i]) sums[o] += synapses_[o][i].weight();
      sums[o] /= static_cast<double>(cfg_.inputs);  // fan-in normalization
    }
    std::size_t winner = cfg_.outputs;
    double best = -1.0;
    for (std::size_t o = 0; o < cfg_.outputs; ++o) {
      if (!neurons_[o].would_fire(sums[o], now)) continue;
      const double m = neurons_[o].predicted_membrane(sums[o]);
      if (m > best) {
        best = m;
        winner = o;
      }
    }
    std::vector<bool> fired(cfg_.outputs, false);
    if (winner < cfg_.outputs && neurons_[winner].inject(sums[winner], now)) {
      fired[winner] = true;
      output[winner].push_back(t1);  // relative to this call
      last_post_s_[winner] = now;
      if (cfg_.lateral_inhibition > 0.0)
        for (std::size_t p = 0; p < cfg_.outputs; ++p)
          if (p != winner) neurons_[p].inhibit(cfg_.lateral_inhibition);
    }
    for (std::size_t o = 0; o < cfg_.outputs; ++o) {
      if (o == winner) continue;
      if (neurons_[o].inject(sums[o], now)) {
        fired[o] = true;
        output[o].push_back(t1);
        last_post_s_[o] = now;
      }
    }

    // Plasticity on firing neurons.
    for (std::size_t o = 0; o < cfg_.outputs; ++o) {
      if (!fired[o]) continue;
      if (cfg_.learning) {
        for (std::size_t i = 0; i < cfg_.inputs; ++i) {
          const double dt = now - last_pre_s_[i];
          if (dt >= 0.0 && dt < cfg_.hetero_window_s) {
            // Causal LTP for recently active inputs.
            synapses_[o][i].update(stdp_delta(cfg_.stdp, dt));
          } else if (cfg_.heterosynaptic_depression > 0.0) {
            // Competition: silent inputs lose weight when the neuron
            // fires, preventing blanket saturation.
            synapses_[o][i].update(-cfg_.heterosynaptic_depression);
          }
        }
      }
    }
  }
  elapsed_s_ += static_cast<double>(slots) * cfg_.slot_s;
  return output;
}

std::vector<std::vector<double>> SpikingNetwork::weights() const {
  std::vector<std::vector<double>> w(cfg_.outputs,
                                     std::vector<double>(cfg_.inputs, 0.0));
  for (std::size_t o = 0; o < cfg_.outputs; ++o)
    for (std::size_t i = 0; i < cfg_.inputs; ++i)
      w[o][i] = synapses_[o][i].weight();
  return w;
}

void SpikingNetwork::set_weight(std::size_t out, std::size_t in, double w) {
  synapses_.at(out).at(in).set_weight(w);
}

double SpikingNetwork::total_write_energy_j() const {
  double e = 0.0;
  for (const auto& row : synapses_)
    for (const auto& s : row) e += s.cell().energy_spent_j();
  for (const auto& n : neurons_) e += n.energy_j();
  return e;
}

}  // namespace aspen::snn
