#pragma once
/// \file spike.hpp
/// Spike-train types and encoders for the photonic SNN substrate (paper
/// Section 3: PCM accumulation + Q-switched laser spiking sources enable
/// "photonic spiking neural networks (SNN) and bio-inspired learning
/// rules such as spike-timing dependent plasticity (STDP)").

#include <cstddef>
#include <vector>

#include "lina/random.hpp"

namespace aspen::snn {

/// A raster of spike times: raster[channel] = sorted spike times [s].
using SpikeRaster = std::vector<std::vector<double>>;

/// Poisson spike train with the given mean rate over [0, duration).
[[nodiscard]] std::vector<double> poisson_train(double rate_hz,
                                                double duration_s,
                                                lina::Rng& rng);

/// Latency encoding: one spike per channel, earlier for larger values.
/// value in [0, 1] -> spike at (1 - value) * window (values <= 0 stay
/// silent).
[[nodiscard]] SpikeRaster latency_encode(const std::vector<double>& values,
                                         double window_s);

/// Rate encoding: Poisson trains with rate proportional to value.
[[nodiscard]] SpikeRaster rate_encode(const std::vector<double>& values,
                                      double max_rate_hz, double duration_s,
                                      lina::Rng& rng);

/// Merge a raster into a time-sorted (time, channel) event list.
struct SpikeEvent {
  double time;
  std::size_t channel;
};
[[nodiscard]] std::vector<SpikeEvent> raster_to_events(const SpikeRaster& r);

/// Count spikes in [t0, t1) per channel.
[[nodiscard]] std::vector<std::size_t> spike_counts(const SpikeRaster& r,
                                                    double t0, double t1);

}  // namespace aspen::snn
