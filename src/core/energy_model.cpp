#include "core/energy_model.hpp"

#include <cmath>

#include "mesh/analysis.hpp"

namespace aspen::core {

namespace {

/// Mean holding power of one thermo-optic phase shifter at a uniformly
/// distributed random phase: <phi>/pi * P_pi = P_pi (phases in [0, 2 pi)).
double mean_heater_power(const phot::ThermoOpticConfig& t) { return t.p_pi_w; }

}  // namespace

AcceleratorReport evaluate_accelerator(const MvmConfig& cfg,
                                       double weight_reuse, int wdm_channels,
                                       const AreaParams& area) {
  AcceleratorReport r;
  r.architecture = mesh::to_string(cfg.architecture);
  r.ports = cfg.ports;
  r.wdm_channels = wdm_channels;

  const mesh::MeshLayout layout = mesh::make_layout(cfg.architecture, cfg.ports);
  const auto n = static_cast<double>(cfg.ports);
  const auto k = static_cast<double>(wdm_channels);

  // --- Footprint: two meshes + attenuator column + per-channel IO ------
  const double mesh_area =
      static_cast<double>(layout.mzi_count()) * area.mzi_mm2 +
      static_cast<double>(layout.phase_count() - 2 * layout.mzi_count()) *
          area.phase_shifter_mm2 +
      static_cast<double>(layout.coupler_count() -
                          2 * layout.mzi_count()) *
          area.coupler_mm2;
  r.area_mm2 = 2.0 * mesh_area + n * area.attenuator_mm2 +
               k * (n * area.modulator_mm2 + 2.0 * n * area.photodetector_mm2 +
                    area.laser_mm2);

  // --- Optical path loss ------------------------------------------------
  mesh::PhysicalMesh probe(layout, cfg.errors);
  const double att_il =
      2.0 * cfg.errors.coupler_loss_db + 2.0 * cfg.errors.ps_loss_db;
  r.insertion_loss_db = cfg.modulator.insertion_loss_db +
                        2.0 * probe.nominal_insertion_loss_db() + att_il;

  // --- Static power ------------------------------------------------------
  const double phases =
      2.0 * static_cast<double>(layout.phase_count()) + n;  // + attenuators
  r.weight_holding_w = cfg.weights == WeightTechnology::kThermoOptic
                           ? phases * mean_heater_power(cfg.thermo)
                           : 0.0;
  const double laser_electrical =
      k * cfg.laser.power_w / cfg.laser.wall_plug_efficiency;
  r.static_power_w = r.weight_holding_w + laser_electrical;

  // --- Programming -------------------------------------------------------
  if (cfg.weights == WeightTechnology::kPcm) {
    r.program_energy_j = phases * (cfg.pcm.material.reset_energy_j +
                                   0.5 * cfg.pcm.material.set_energy_j);
    r.program_time_s =
        cfg.pcm.material.reset_time_s + cfg.pcm.material.set_time_s;
  } else {
    r.program_energy_j =
        phases * 0.5 * cfg.thermo.p_pi_w * cfg.thermo.response_time_s;
    r.program_time_s = cfg.thermo.response_time_s;
  }

  // --- Per-MVM dynamic cost ----------------------------------------------
  const double t_sym =
      std::max(1.0 / cfg.modulator.rate_hz, 1.0 / cfg.adc.rate_hz);
  r.latency_per_mvm_s = t_sym;
  r.macs_per_mvm = n * n;
  const double e_mod = n * cfg.modulator.energy_per_symbol_j;
  const double e_adc = 2.0 * n * cfg.adc.energy_per_sample_j;
  const double e_laser_sym = laser_electrical * t_sym / k;  // per channel-symbol
  const double e_hold_sym = r.weight_holding_w * t_sym / k;
  const double e_prog_amortized =
      weight_reuse > 0.0 ? r.program_energy_j / weight_reuse : 0.0;
  r.energy_per_mvm_j =
      e_mod + e_adc + e_laser_sym + e_hold_sym + e_prog_amortized;

  // --- Throughput / efficiency -------------------------------------------
  r.throughput_ops_s = 2.0 * r.macs_per_mvm * k / t_sym;
  const double total_power =
      r.static_power_w + (e_mod + e_adc + e_prog_amortized) * k / t_sym;
  r.tops_per_watt =
      total_power > 0.0 ? r.throughput_ops_s / total_power / 1e12 : 0.0;
  return r;
}

WeightEnergyPoint weight_energy_at_reuse(const MvmConfig& cfg, double reuse,
                                         double mvms_per_inference) {
  WeightEnergyPoint p;
  p.reuse = reuse;

  MvmConfig thermo_cfg = cfg;
  thermo_cfg.weights = WeightTechnology::kThermoOptic;
  MvmConfig pcm_cfg = cfg;
  pcm_cfg.weights = WeightTechnology::kPcm;

  const AcceleratorReport thermo = evaluate_accelerator(thermo_cfg, reuse);
  const AcceleratorReport pcm = evaluate_accelerator(pcm_cfg, reuse);
  p.thermo_energy_j = thermo.energy_per_mvm_j * mvms_per_inference;
  p.pcm_energy_j = pcm.energy_per_mvm_j * mvms_per_inference;
  return p;
}

}  // namespace aspen::core
