#include "core/mvm_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::core {

using lina::CMat;
using lina::cplx;
using lina::CVec;

namespace {
constexpr double kPi = 3.141592653589793238462643383280;

phot::AdcConfig autoscale_adc(phot::AdcConfig adc, const phot::CwLaserConfig& laser,
                              std::size_t ports) {
  // Map ADC full scale to the per-port launch power: output fields are
  // bounded by the total launch amplitude, and typical entries sit near
  // the per-port level, so this uses the converter range efficiently.
  adc.full_scale_w = laser.power_w / static_cast<double>(ports);
  return adc;
}
}  // namespace

MvmEngine::MvmEngine(MvmConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.noise_seed),
      modulator_(cfg_.modulator),
      receiver_(cfg_.detector, autoscale_adc(cfg_.adc, cfg_.laser, cfg_.ports)),
      laser_(cfg_.laser) {
  if (cfg_.ports < 2) throw std::invalid_argument("MvmEngine: ports < 2");
  mesh::MeshErrorModel em_u = cfg_.errors;
  mesh::MeshErrorModel em_v = cfg_.errors;
  // Two distinct dies on the same wafer: decorrelate their imperfections.
  em_v.seed = em_u.seed * 0x9e3779b97f4a7c15ULL + 1;
  mesh_u_ = std::make_unique<mesh::PhysicalMesh>(
      mesh::make_layout(cfg_.architecture, cfg_.ports), em_u);
  mesh_v_ = std::make_unique<mesh::PhysicalMesh>(
      mesh::make_layout(cfg_.architecture, cfg_.ports), em_v);
  if (cfg_.weights == WeightTechnology::kPcm) {
    mesh_u_->enable_pcm(cfg_.pcm);
    mesh_v_->enable_pcm(cfg_.pcm);
    mesh_u_->set_drift_time(cfg_.pcm_drift_time_s);
    mesh_v_->set_drift_time(cfg_.pcm_drift_time_s);
  }
  attenuation_.assign(cfg_.ports, 1.0);
  set_matrix(CMat::identity(cfg_.ports));
}

void MvmEngine::account_programming() {
  const std::size_t nph =
      mesh_u_->phase_count() + mesh_v_->phase_count() + cfg_.ports;
  if (cfg_.weights == WeightTechnology::kPcm) {
    const auto& m = cfg_.pcm.material;
    counters_.weight_write_energy_j +=
        static_cast<double>(nph) * (m.reset_energy_j + 0.5 * m.set_energy_j);
  } else {
    counters_.weight_write_energy_j +=
        static_cast<double>(nph) * (0.5 * cfg_.thermo.p_pi_w) *
        cfg_.thermo.response_time_s;
  }
  ++counters_.program_ops;
}

void MvmEngine::set_matrix(const CMat& w) {
  if (w.rows() != cfg_.ports || w.cols() != cfg_.ports)
    throw std::invalid_argument("MvmEngine::set_matrix: shape mismatch");

  // Unchanged-weights fast path: the meshes already hold exactly this
  // program (no perturbation/drift since), so rewriting it changes no
  // state — only the write cost is paid, as on hardware.
  if (weights_clean_ && w.raw() == weight_.raw()) {
    account_programming();
    return;
  }

  weight_ = w;

  // Decomposition memo: SVD + mesh programming are pure functions of the
  // weight bytes (per die), so a repeat matrix skips the expensive math
  // and reprograms from the cached phases, bit-identically.
  for (auto it = program_memo_.begin(); it != program_memo_.end(); ++it) {
    if (it->key != w.raw()) continue;
    svd_ = it->svd;
    sigma_max_ = it->sigma_max;
    attenuation_ = it->attenuation;
    if (sigma_max_ > 0.0) {
      mesh_u_->program(it->phases_u);
      mesh_v_->program(it->phases_v);
    }
    std::rotate(program_memo_.begin(), it, it + 1);  // keep MRU first
    account_programming();
    weights_clean_ = true;
    refresh_transfer();
    return;
  }

  lina::svd(w, svd_, svd_ws_);
  sigma_max_ = svd_.sigma_max();

  for (std::size_t k = 0; k < cfg_.ports; ++k) {
    double t = sigma_max_ > 0.0 ? svd_.sigma[k] / sigma_max_ : 0.0;
    if (cfg_.weights == WeightTechnology::kPcm) {
      // Attenuator settings are held in PCM too: quantize the amplitude
      // to the same level grid.
      const double levels = static_cast<double>((1 << cfg_.pcm.level_bits) - 1);
      t = std::round(t * levels) / levels;
    }
    attenuation_[k] = t;
  }

  mesh::CalibrationOptions opt;
  if (sigma_max_ > 0.0) {
    (void)mesh::program_for_target(cfg_.architecture, *mesh_u_, svd_.u,
                                   cfg_.recalibrate, opt, program_scratch_);
    (void)mesh::program_for_target(cfg_.architecture, *mesh_v_,
                                   svd_.v.adjoint(), cfg_.recalibrate, opt,
                                   program_scratch_);
  }

  program_memo_.insert(program_memo_.begin(),
                       ProgramMemo{w.raw(), svd_, sigma_max_, attenuation_,
                                   mesh_u_->phases(), mesh_v_->phases()});
  if (program_memo_.size() > kProgramMemoCap) program_memo_.pop_back();

  account_programming();
  weights_clean_ = true;
  refresh_transfer();
}

void MvmEngine::compose_path_into(const CMat& tu, const CMat& tv,
                                  CMat& out) const {
  // Attenuator column: one variable MZI splitter per port (2 couplers +
  // 2 phase sections of loss each), setting amplitude sigma_k/sigma_max.
  const double att_loss_amp = phot::loss_db_to_amplitude(
      2.0 * cfg_.errors.coupler_loss_db + 2.0 * cfg_.errors.ps_loss_db);
  scratch_path_ = tu;
  for (std::size_t k = 0; k < cfg_.ports; ++k) {
    const cplx d{attenuation_[k] * att_loss_amp, 0.0};
    for (std::size_t r = 0; r < cfg_.ports; ++r) scratch_path_(r, k) *= d;
  }
  lina::mul_into(out, scratch_path_, tv);
}

void MvmEngine::rebuild_physical_transfer() {
  compose_path_into(mesh_u_->transfer(), mesh_v_->transfer(), t_phys_);
}

void MvmEngine::set_pcm_drift_time(double seconds) {
  cfg_.pcm_drift_time_s = seconds;
  if (cfg_.weights != WeightTechnology::kPcm) return;
  weights_clean_ = false;  // drifted state: a reprogram must recalibrate
  mesh_u_->set_drift_time(seconds);
  mesh_v_->set_drift_time(seconds);
  rebuild_physical_transfer();  // gain_ deliberately kept from program time
  fidelity_ = sigma_max_ > 0.0 ? CMat::fidelity(weight_, t_phys_) : 1.0;
}

lina::CMat MvmEngine::transfer_at_detuning(double nm) const {
  // Detuning is an explicit evaluation argument: the meshes' own state
  // (detuning, transfer cache) is left untouched, keeping this method
  // logically const instead of mutate-and-restore.
  const CMat tu = mesh_u_->transfer_at(nm);
  const CMat tv = mesh_v_->transfer_at(nm);
  CMat out;
  compose_path_into(tu, tv, out);
  return out;
}

std::size_t MvmEngine::phase_state_size() const {
  return mesh_v_->phase_count() + mesh_u_->phase_count();
}

void MvmEngine::perturb_phase(std::size_t index, double delta_rad) {
  if (index >= phase_state_size())
    throw std::out_of_range("MvmEngine::perturb_phase: index");
  weights_clean_ = false;  // mesh no longer holds the programmed weights
  if (index < mesh_v_->phase_count()) {
    mesh_v_->set_phase(index, mesh_v_->phase(index) + delta_rad);
  } else {
    const std::size_t k = index - mesh_v_->phase_count();
    mesh_u_->set_phase(k, mesh_u_->phase(k) + delta_rad);
  }
  rebuild_physical_transfer();
  fidelity_ = sigma_max_ > 0.0 ? CMat::fidelity(weight_, t_phys_) : 1.0;
}

void MvmEngine::refresh_transfer() {
  rebuild_physical_transfer();

  // One-time scalar calibration: T_phys ~= gain * (W / sigma_max).
  if (sigma_max_ > 0.0) {
    const CMat wn = weight_.scaled(cplx{1.0 / sigma_max_, 0.0});
    cplx num{0.0, 0.0};
    double den = 0.0;
    for (std::size_t i = 0; i < wn.raw().size(); ++i) {
      num += std::conj(wn.raw()[i]) * t_phys_.raw()[i];
      den += std::norm(wn.raw()[i]);
    }
    gain_ = den > 0.0 ? num / den : cplx{1.0, 0.0};
    fidelity_ = CMat::fidelity(weight_, t_phys_);
  } else {
    gain_ = cplx{1.0, 0.0};
    fidelity_ = 1.0;
  }
}

CVec MvmEngine::encode(const CVec& x) const {
  if (x.size() != cfg_.ports)
    throw std::invalid_argument("MvmEngine::encode: size mismatch");
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  CVec fields(cfg_.ports);
  for (std::size_t i = 0; i < cfg_.ports; ++i) {
    // IQ Mach-Zehnder modulator: each quadrature is DAC-quantized and
    // carries the modulator insertion loss.
    const cplx enc = modulator_.encode(x[i].real()) +
                     cplx{0.0, 1.0} * modulator_.encode(x[i].imag());
    fields[i] = launch * enc;
  }
  return fields;
}

CVec MvmEngine::propagate_fields(const CVec& fields) const {
  return t_phys_ * fields;
}

CVec MvmEngine::detect(const CVec& fields) {
  CVec out(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i)
    out[i] = receiver_.measure(fields[i], rng_);
  return out;
}

CVec MvmEngine::rescale(const CVec& detected) const {
  // Zero weight matrix: the reference scale sigma_max is 0, the optical
  // path is fully attenuated, and the rescaled output is identically 0
  // (avoids 0 * inf under finite-math complex division).
  if (sigma_max_ <= 0.0) return CVec(detected.size());
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  const cplx scale =
      gain_ * launch * modulator_.amplitude_scale() / sigma_max_;
  CVec out(detected.size());
  for (std::size_t i = 0; i < detected.size(); ++i)
    out[i] = detected[i] / scale;
  return out;
}

CVec MvmEngine::multiply(const CVec& x) {
  CVec fields = encode(x);
  // Laser RIN: common-mode launch-power fluctuation per symbol.
  const double p = laser_.sample_power(rng_);
  const double rin_scale = std::sqrt(p / cfg_.laser.power_w);
  fields.scale(cplx{rin_scale, 0.0});
  const CVec out_fields = propagate_fields(fields);
  const CVec detected = detect(out_fields);
  ++counters_.mvm_ops;
  counters_.busy_time_s += symbol_time_s();
  return rescale(detected);
}

void MvmEngine::encode_batch(const CMat& x, std::size_t first,
                             std::size_t count, CMat& fields) const {
  if (x.rows() != cfg_.ports || first + count > x.cols())
    throw std::invalid_argument("MvmEngine::encode_batch: shape mismatch");
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  fields.resize(cfg_.ports, count);
  for (std::size_t i = 0; i < cfg_.ports; ++i) {
    for (std::size_t c = 0; c < count; ++c) {
      const cplx v = x(i, first + c);
      // IQ Mach-Zehnder modulator: each quadrature is DAC-quantized and
      // carries the modulator insertion loss.
      const cplx enc = modulator_.encode(v.real()) +
                       cplx{0.0, 1.0} * modulator_.encode(v.imag());
      fields(i, c) = launch * enc;
    }
  }
}

void MvmEngine::detect_batch(CMat& fields) {
  for (std::size_t c = 0; c < fields.cols(); ++c)
    for (std::size_t i = 0; i < fields.rows(); ++i)
      fields(i, c) = receiver_.measure(fields(i, c), rng_);
}

void MvmEngine::rescale_batch(CMat& detected) const {
  if (sigma_max_ <= 0.0) {  // zero weights -> zero output; see rescale()
    for (auto& v : detected.raw()) v = cplx{0.0, 0.0};
    return;
  }
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  const cplx scale =
      gain_ * launch * modulator_.amplitude_scale() / sigma_max_;
  for (auto& v : detected.raw()) v /= scale;
}

lina::CMat MvmEngine::multiply_batch(const CMat& x) {
  if (x.rows() != cfg_.ports)
    throw std::invalid_argument("MvmEngine::multiply_batch: row mismatch");
  const std::size_t m = x.cols();
  encode_batch(x, 0, m, batch_fields_);
  CMat out;
  lina::mul_into(out, t_phys_, batch_fields_);
  for (std::size_t c = 0; c < m; ++c) {
    // Laser RIN: common-mode launch-power fluctuation per symbol. The
    // scalar commutes with the mesh product, so scaling the propagated
    // column (instead of the launched fields) is equivalent; drawing it
    // right before this symbol's detection keeps the rng stream in the
    // same order as a multiply() loop.
    const double p = laser_.sample_power(rng_);
    const cplx rin_scale{std::sqrt(p / cfg_.laser.power_w), 0.0};
    for (std::size_t i = 0; i < cfg_.ports; ++i)
      out(i, c) = receiver_.measure(out(i, c) * rin_scale, rng_);
  }
  rescale_batch(out);
  counters_.mvm_ops += m;
  counters_.busy_time_s += static_cast<double>(m) * symbol_time_s();
  return out;
}

std::vector<double> MvmEngine::multiply_real(const std::vector<double>& x) {
  CVec v(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) v[i] = cplx{x[i], 0.0};
  const CVec y = multiply(v);
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i].real();
  return out;
}

CVec MvmEngine::multiply_noiseless(const CVec& x) const {
  CVec out;
  multiply_noiseless_into(x, out);
  return out;
}

void MvmEngine::multiply_noiseless_into(const CVec& x, CVec& out) const {
  // Device (systematic) errors only: exact encoding, no RIN/shot/ADC.
  // Same expressions and evaluation order as the allocating path.
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  scratch_noiseless_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    scratch_noiseless_[i] = launch * modulator_.amplitude_scale() * x[i];
  lina::mul_vec_into(out, t_phys_, scratch_noiseless_);
  if (sigma_max_ <= 0.0) {  // zero weights -> zero output; see rescale()
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = cplx{0.0, 0.0};
    return;
  }
  const cplx scale =
      gain_ * launch * modulator_.amplitude_scale() / sigma_max_;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = out[i] / scale;
}

void MvmEngine::multiply_noiseless_batch_into(const CMat& x,
                                              CMat& out) const {
  const double launch =
      std::sqrt(cfg_.laser.power_w / static_cast<double>(cfg_.ports));
  scratch_noiseless_batch_.resize(x.rows(), x.cols());
  const cplx* xin = x.raw().data();
  cplx* fields = scratch_noiseless_batch_.raw().data();
  for (std::size_t i = 0; i < x.raw().size(); ++i)
    fields[i] = launch * modulator_.amplitude_scale() * xin[i];
  lina::mul_into(out, t_phys_, scratch_noiseless_batch_);
  if (sigma_max_ <= 0.0) {  // zero weights -> zero output; see rescale()
    for (auto& v : out.raw()) v = cplx{0.0, 0.0};
    return;
  }
  // One reciprocal instead of a division per element (the whole tile
  // shares the scale; agrees with the per-column path to ~1 ulp, well
  // inside the Q3.12 conversion at the SPM boundary).
  const cplx inv_scale =
      cplx{1.0, 0.0} /
      (gain_ * launch * modulator_.amplitude_scale() / sigma_max_);
  for (auto& v : out.raw()) v *= inv_scale;
}

MvmEngine::Snapshot MvmEngine::snapshot() const {
  Snapshot s;
  s.mesh_u = mesh_u_->snapshot();
  s.mesh_v = mesh_v_->snapshot();
  s.weight = weight_;
  s.svd = svd_;
  s.attenuation = attenuation_;
  s.sigma_max = sigma_max_;
  s.t_phys = t_phys_;
  s.gain = gain_;
  s.fidelity = fidelity_;
  s.pcm_drift_time_s = cfg_.pcm_drift_time_s;
  s.rng = rng_;
  s.counters = counters_;
  s.weights_clean = weights_clean_;
  return s;
}

void MvmEngine::restore(const Snapshot& s) {
  // Mesh restore is a no-op (cache kept) when the trial never touched the
  // phases; the composed transfer and calibration are restored by value
  // either way, so nothing is recomputed here.
  mesh_u_->restore(s.mesh_u);
  mesh_v_->restore(s.mesh_v);
  weight_ = s.weight;
  svd_ = s.svd;
  attenuation_ = s.attenuation;
  sigma_max_ = s.sigma_max;
  t_phys_ = s.t_phys;
  gain_ = s.gain;
  fidelity_ = s.fidelity;
  cfg_.pcm_drift_time_s = s.pcm_drift_time_s;
  rng_ = s.rng;
  counters_ = s.counters;
  weights_clean_ = s.weights_clean;
}

double MvmEngine::symbol_time_s() const {
  return std::max(1.0 / cfg_.modulator.rate_hz, 1.0 / cfg_.adc.rate_hz);
}

double MvmEngine::holding_power_w() const {
  if (cfg_.weights == WeightTechnology::kPcm) return 0.0;
  double total = 0.0;
  const auto add_mesh = [&](const mesh::PhysicalMesh& m) {
    for (std::size_t k = 0; k < m.phase_count(); ++k) {
      double ph = std::fmod(m.phase(k), 2.0 * kPi);
      if (ph < 0.0) ph += 2.0 * kPi;
      total += ph / kPi * cfg_.thermo.p_pi_w;
    }
  };
  add_mesh(*mesh_u_);
  add_mesh(*mesh_v_);
  for (const double t : attenuation_) {
    const double theta = 2.0 * std::asin(std::min(1.0, std::max(0.0, t)));
    total += theta / kPi * cfg_.thermo.p_pi_w;
  }
  return total;
}

double MvmEngine::program_time_s() const {
  if (cfg_.weights == WeightTechnology::kPcm)
    return cfg_.pcm.material.reset_time_s + cfg_.pcm.material.set_time_s;
  return cfg_.thermo.response_time_s;
}

double MvmEngine::insertion_loss_db() const {
  const double att_il =
      2.0 * cfg_.errors.coupler_loss_db + 2.0 * cfg_.errors.ps_loss_db;
  return cfg_.modulator.insertion_loss_db + mesh_u_->nominal_insertion_loss_db() +
         mesh_v_->nominal_insertion_loss_db() + att_il;
}

}  // namespace aspen::core
