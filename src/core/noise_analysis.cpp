#include "core/noise_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lina/random.hpp"
#include "photonics/units.hpp"

namespace aspen::core {

namespace {
constexpr double kTwoSqrt3 = 3.4641016151377545870548926830117;
}

double rms_to_bits(double relative_rms) {
  if (relative_rms <= 0.0) return 24.0;  // beyond any converter modelled here
  // A b-bit quantizer over the signed range [-1, 1] (span 2) has
  // rms = 2 / (2^b sqrt 12); inverting gives b = log2(1 / (rms sqrt 3)).
  return std::log2(1.0 / (relative_rms * std::sqrt(3.0)));
}

double NoiseContribution::bits_alone() const { return rms_to_bits(relative_rms); }

const NoiseContribution& PrecisionBudget::dominant() const {
  if (contributions.empty())
    throw std::logic_error("PrecisionBudget: empty budget");
  const NoiseContribution* best = &contributions.front();
  for (const auto& c : contributions)
    if (c.relative_rms > best->relative_rms) best = &c;
  return *best;
}

PrecisionBudget analytic_precision_budget(const MvmConfig& cfg) {
  PrecisionBudget b;
  const auto add = [&](std::string name, double rms) {
    b.contributions.push_back({std::move(name), rms});
  };

  // Input DAC: uniform quantizer over [-1, 1].
  {
    const double step = 2.0 / static_cast<double>((1 << cfg.modulator.dac_bits) - 1);
    add("input DAC", step / kTwoSqrt3);
  }
  // Modulator extinction floor: values |x| < f clamp to f. For uniform
  // inputs the clamping error has rms f^{3/2} / sqrt(3).
  {
    const double f = std::pow(10.0, -cfg.modulator.extinction_ratio_db / 20.0);
    add("modulator extinction", std::pow(f, 1.5) / std::sqrt(3.0));
  }
  // Laser RIN: common-mode multiplicative amplitude error.
  {
    const double rel_var =
        std::pow(10.0, cfg.laser.rin_db_per_hz / 10.0) * cfg.laser.bandwidth_hz;
    // Field scales with sqrt(power): amplitude rms is half the power rms.
    add("laser RIN", 0.5 * std::sqrt(rel_var));
  }
  // Shot noise per quadrature at the coherent receiver, referenced to the
  // per-port full-scale photocurrent.
  {
    const double p_fs = cfg.laser.power_w / static_cast<double>(cfg.ports);
    const double i_fs = cfg.detector.responsivity_a_per_w * p_fs;
    const double shot = std::sqrt(2.0 * phot::kElementaryCharge *
                                  (0.5 * i_fs + cfg.detector.dark_current_a) *
                                  cfg.detector.bandwidth_hz);
    add("shot noise", i_fs > 0.0 ? shot / i_fs : 0.0);
  }
  // Receiver thermal (TIA) noise.
  {
    const double p_fs = cfg.laser.power_w / static_cast<double>(cfg.ports);
    const double i_fs = cfg.detector.responsivity_a_per_w * p_fs;
    const double th = cfg.detector.thermal_noise_a_per_sqrt_hz *
                      std::sqrt(cfg.detector.bandwidth_hz);
    add("thermal noise", i_fs > 0.0 ? th / i_fs : 0.0);
  }
  // Output ADC.
  {
    const double step = 2.0 / static_cast<double>((1 << cfg.adc.bits) - 1);
    add("output ADC", step / kTwoSqrt3);
  }
  // Non-volatile weight impairments (first-order estimates): phase-level
  // quantization and the state-dependent absorption swing exp(-2 pi /FOM).
  if (cfg.weights == WeightTechnology::kPcm) {
    const phot::PcmCell cell(cfg.pcm);
    const double dphi =
        cell.max_phase() / static_cast<double>(cell.levels() - 1);
    add("PCM phase quantization", dphi / kTwoSqrt3);
    const double swing = 1.0 - cell.amplitude_of_fraction(1.0);
    add("PCM loss-phase coupling", swing / kTwoSqrt3);
  }

  double ss = 0.0;
  for (const auto& c : b.contributions) ss += c.relative_rms * c.relative_rms;
  b.total_relative_rms = std::sqrt(ss);
  b.enob = rms_to_bits(b.total_relative_rms);
  return b;
}

double empirical_enob(const MvmConfig& cfg, int trials, std::uint64_t seed) {
  MvmEngine engine(cfg);
  lina::Rng rng(seed);
  engine.set_matrix(lina::haar_unitary(cfg.ports, rng));

  double err_ss = 0.0;
  std::size_t count = 0;
  for (int t = 0; t < trials; ++t) {
    const lina::CVec x = lina::random_state(cfg.ports, rng);
    const lina::CVec exact = engine.matrix() * x;
    const lina::CVec got = engine.multiply(x);
    for (std::size_t i = 0; i < exact.size(); ++i) {
      err_ss += std::norm(got[i] - exact[i]);
      ++count;
    }
  }
  if (count == 0) return 0.0;
  // Reference the per-element error to the modulator full scale (1.0),
  // matching the convention of the analytic budget.
  const double rel_rms = std::sqrt(err_ss / static_cast<double>(count));
  return rms_to_bits(rel_rms);
}

}  // namespace aspen::core
