#include "core/abft.hpp"

#include <cmath>
#include <stdexcept>

namespace aspen::core {

using lina::CMat;
using lina::cplx;

CMat abft_augment(const CMat& w) {
  const std::size_t n = w.rows();
  if (w.cols() != n)
    throw std::invalid_argument("abft_augment: weight matrix not square");
  CMat a(n + kAbftRows, n + kAbftRows);
  for (std::size_t c = 0; c < n; ++c) {
    cplx sum{0.0, 0.0};
    cplx wsum{0.0, 0.0};
    for (std::size_t r = 0; r < n; ++r) {
      const cplx v = w(r, c);
      a(r, c) = v;
      sum += v;
      wsum += static_cast<double>(r + 1) * v;
    }
    a(n, c) = sum;
    a(n + 1, c) = wsum;
  }
  return a;
}

AbftReport abft_check(CMat& y, double tolerance) {
  if (y.rows() <= kAbftRows)
    throw std::invalid_argument("abft_check: block has no data rows");
  const std::size_t n = y.rows() - kAbftRows;
  const double consistency_tol = tolerance * static_cast<double>(n + 1);
  AbftReport rep;
  for (std::size_t c = 0; c < y.cols(); ++c) {
    ++rep.counts.columns_checked;
    cplx sum{0.0, 0.0};
    cplx wsum{0.0, 0.0};
    for (std::size_t r = 0; r < n; ++r) {
      sum += y(r, c);
      wsum += static_cast<double>(r + 1) * y(r, c);
    }
    const cplx d1 = sum - y(n, c);
    const cplx d2 = wsum - y(n + 1, c);
    const double a1 = std::abs(d1);
    const double a2 = std::abs(d2);
    rep.max_residual = std::max(rep.max_residual, std::max(a1, a2));
    if (a1 <= tolerance && a2 <= tolerance) continue;
    ++rep.counts.detected;
    bool repaired = false;
    if (a1 <= tolerance) {
      // Plain checksum closes but the weighted one does not: the error is
      // confined to the weighted checksum lane itself. Data rows are fine.
      y(n + 1, c) = wsum;
      repaired = true;
    } else if (a2 <= tolerance) {
      // A data-row error at row r makes |d2| = (r+1)|d1| >= |d1|, so a
      // clean d2 pins the corruption to the plain checksum lane.
      y(n, c) = sum;
      repaired = true;
    } else {
      // Single data-element error e at row r: d1 = e, d2 = (r+1) e.
      const double ratio = (d2 * std::conj(d1)).real() / std::norm(d1);
      const double located = std::round(ratio) - 1.0;
      if (located >= 0.0 && located < static_cast<double>(n)) {
        const auto row = static_cast<std::size_t>(located);
        if (std::abs(d2 - static_cast<double>(row + 1) * d1) <=
            consistency_tol) {
          y(row, c) -= d1;
          repaired = true;
        }
      }
    }
    if (repaired)
      ++rep.counts.corrected;
    else
      ++rep.counts.uncorrectable;
  }
  return rep;
}

}  // namespace aspen::core
