#pragma once
/// \file mvm_engine.hpp
/// The photonic matrix-vector-multiplication engine — the paper's core
/// computing architecture (Section 4): "input vectors are encoded into
/// amplitude/phase of individual inputs ... and the multiplication
/// (weighting) matrix is encoded in the state of the programmable PS
/// blocks".
///
/// An arbitrary (non-unitary) N x N matrix W is realized as
///     W = U . diag(sigma) . V^dagger,   sigma normalized by sigma_max,
/// with V^dagger and U programmed onto two physical MZI meshes and the
/// singular values onto a column of amplitude attenuators. The full
/// electro-optic loop is modelled: input DAC + Mach-Zehnder modulators,
/// CW laser power budget (with RIN), lossy/imperfect meshes (optionally
/// PCM-quantized non-volatile weights), coherent receivers with shot and
/// thermal noise, and output ADCs. A one-time scalar calibration (gain +
/// reference phase) recovers W-units from the measured fields, exactly as
/// a real system would calibrate against known test vectors.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lina/complex_matrix.hpp"
#include "lina/random.hpp"
#include "lina/svd.hpp"
#include "mesh/analysis.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/pcm_cell.hpp"
#include "photonics/phase_shifter.hpp"
#include "photonics/photodetector.hpp"

namespace aspen::core {

/// Weight-holding technology for the mesh phase shifters.
enum class WeightTechnology {
  kThermoOptic,  ///< volatile heaters: exact phases, static holding power
  kPcm,          ///< non-volatile multilevel PCM: quantized, zero hold power
};

struct MvmConfig {
  std::size_t ports = 8;
  mesh::Architecture architecture = mesh::Architecture::kClements;
  mesh::MeshErrorModel errors;  ///< fabrication die model (both meshes)
  WeightTechnology weights = WeightTechnology::kThermoOptic;
  phot::PcmCellConfig pcm = phot::pcm_config_for_two_pi(phot::make_gese());
  /// Drift time applied to PCM weights (seconds since programming).
  double pcm_drift_time_s = 0.0;
  /// Error-aware in-situ recalibration after programming.
  bool recalibrate = false;

  phot::ModulatorConfig modulator;
  phot::PhotodetectorConfig detector;
  phot::AdcConfig adc;
  phot::CwLaserConfig laser;
  /// Thermo-optic heater parameters (for the energy model).
  phot::ThermoOpticConfig thermo;

  std::uint64_t noise_seed = 0x5eedULL;
};

/// Cumulative operation counters for energy/latency reporting.
struct MvmCounters {
  std::uint64_t mvm_ops = 0;       ///< vectors pushed through the mesh
  std::uint64_t program_ops = 0;   ///< weight (re)programming events
  double busy_time_s = 0.0;        ///< optical/electrical symbol time
  double weight_write_energy_j = 0.0;
};

class MvmEngine {
 public:
  explicit MvmEngine(MvmConfig cfg);

  /// Program an arbitrary N x N matrix (real matrices: zero imaginary
  /// parts). Throws std::invalid_argument on shape mismatch.
  void set_matrix(const lina::CMat& w);
  [[nodiscard]] const lina::CMat& matrix() const { return weight_; }

  /// End-to-end photonic multiply: encode -> propagate -> detect ->
  /// rescale. Input entries must satisfy |x_i| <= 1 (the modulator range);
  /// the engine does not rescale inputs implicitly.
  [[nodiscard]] lina::CVec multiply(const lina::CVec& x);

  /// Batched end-to-end multiply: every column of `x` (ports x M) is one
  /// symbol pushed through the mesh. Propagation of the whole block is a
  /// single matrix-matrix product on the cached physical transfer, and
  /// encode/detect run allocation-free on reused scratch. Noise draws
  /// (per-symbol RIN, per-sample detection) are consumed in exactly the
  /// same order as the equivalent multiply() loop, so results agree with
  /// it up to floating-point reassociation.
  [[nodiscard]] lina::CMat multiply_batch(const lina::CMat& x);

  /// Real-vector convenience wrapper (returns real parts).
  [[nodiscard]] std::vector<double> multiply_real(
      const std::vector<double>& x);

  /// Deterministic device-error-only result (no shot/RIN/ADC noise):
  /// isolates systematic from stochastic error in the analyses.
  [[nodiscard]] lina::CVec multiply_noiseless(const lina::CVec& x) const;
  /// Allocation-free variant writing into `out` (identical values; the
  /// memory-mapped accelerator's deterministic path streams tiles
  /// through this without per-column heap churn).
  void multiply_noiseless_into(const lina::CVec& x, lina::CVec& out) const;
  /// Whole-tile noiseless evaluation as one matrix product. Accumulation
  /// order matches the per-column path (k-major), but the final rescale
  /// multiplies by one shared reciprocal instead of dividing per
  /// element, so results agree with multiply_noiseless() to ~1 ulp —
  /// compare with a tolerance, not bitwise.
  void multiply_noiseless_batch_into(const lina::CMat& x,
                                     lina::CMat& out) const;

  // -- Lower-level stages (used by the WDM GeMM scheduler) --------------
  /// DAC + modulator encoding into field amplitudes (per-port).
  [[nodiscard]] lina::CVec encode(const lina::CVec& x) const;
  /// Propagate encoded fields through the programmed optical path.
  [[nodiscard]] lina::CVec propagate_fields(const lina::CVec& fields) const;
  /// Coherent detection + ADC of output fields, in field units.
  [[nodiscard]] lina::CVec detect(const lina::CVec& fields);
  /// Undo the calibrated system gain: measured field -> W-units output.
  [[nodiscard]] lina::CVec rescale(const lina::CVec& detected) const;

  // -- Batched stages (used by multiply_batch and the WDM GeMM core) -----
  /// Encode `count` columns of `x` starting at `first` into field
  /// amplitudes; writes a ports x count block into `fields` (storage
  /// reused, no allocation once warm).
  void encode_batch(const lina::CMat& x, std::size_t first,
                    std::size_t count, lina::CMat& fields) const;
  /// Coherent detection + ADC of a block of output fields, in place
  /// (column-major draw order: one symbol after another, matching the
  /// per-vector detect()).
  void detect_batch(lina::CMat& fields);
  /// Undo the calibrated system gain on a detected block, in place.
  void rescale_batch(lina::CMat& detected) const;

  /// Physical (lossy, imperfect) transfer of the whole optical path in
  /// field units, including the sqrt(P_laser / N) launch scale.
  [[nodiscard]] const lina::CMat& physical_transfer() const { return t_phys_; }
  /// Calibrated complex system gain c: T_phys ~= c * W.
  [[nodiscard]] lina::cplx system_gain() const { return gain_; }

  /// Advance the PCM drift clock (no-op for thermo-optic weights). The
  /// system gain calibration is *not* redone: drift error accrues exactly
  /// as it would on hardware between recalibrations.
  void set_pcm_drift_time(double seconds);

  /// Physical transfer seen by a carrier detuned `nm` from the design
  /// wavelength (coupler dispersion). The engine's own state (and its
  /// calibration) stays at the design wavelength — DWDM side channels are
  /// the uncalibrated ones, exactly as on hardware. Detuning is passed
  /// straight through to the mesh evaluation; nothing is mutated.
  [[nodiscard]] lina::CMat transfer_at_detuning(double nm) const;

  /// Total programmable phases across both meshes (fault-injection
  /// surface of the photonic configuration state).
  [[nodiscard]] std::size_t phase_state_size() const;
  /// Additively perturb one programmed phase (index over mesh V then
  /// mesh U) and rebuild the transfer *without* recalibrating — models a
  /// configuration upset in the field.
  void perturb_phase(std::size_t index, double delta_rad);

  /// Time to push one vector (symbol period limited by the slower of the
  /// modulator and ADC; propagation latency is sub-symbol at these sizes).
  [[nodiscard]] double symbol_time_s() const;
  /// Static power drawn while holding the current weights [W].
  [[nodiscard]] double holding_power_w() const;
  /// Time to (re)program the weights once [s].
  [[nodiscard]] double program_time_s() const;

  [[nodiscard]] const MvmCounters& counters() const { return counters_; }
  [[nodiscard]] const MvmConfig& config() const { return cfg_; }
  /// Fidelity achieved by the last set_matrix (physical vs target shape).
  [[nodiscard]] double programming_fidelity() const { return fidelity_; }
  /// Worst-path optical insertion loss of the full path [dB].
  [[nodiscard]] double insertion_loss_db() const;

  // -- Snapshot / restore -------------------------------------------------
  /// Complete mutable engine state: mesh programs, calibrated transfer,
  /// noise-stream position and cost counters. The decomposition memo is
  /// a pure cache and deliberately excluded — it survives restore, which
  /// is exactly what makes repeated fault-campaign trials cheap.
  struct Snapshot {
    mesh::PhysicalMesh::Snapshot mesh_u, mesh_v;
    lina::CMat weight;
    lina::SvdResult svd;
    std::vector<double> attenuation;
    double sigma_max = 1.0;
    lina::CMat t_phys;
    lina::cplx gain{1.0, 0.0};
    double fidelity = 0.0;
    double pcm_drift_time_s = 0.0;
    lina::Rng rng;
    MvmCounters counters;
    bool weights_clean = false;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  void refresh_transfer();
  void rebuild_physical_transfer();
  /// out = T_u * diag(attenuation) * T_v, composed without temporaries
  /// beyond the reusable scratch.
  void compose_path_into(const lina::CMat& tu, const lina::CMat& tv,
                         lina::CMat& out) const;
  /// Weight-write cost bookkeeping shared by the full, memoized and
  /// unchanged-weights set_matrix paths (hardware pays the write either
  /// way; only the host-side math is skipped).
  void account_programming();

  /// Memoized pure weight-programming math, keyed by the exact weight
  /// bytes: the SVD plus the final per-mesh phase programs (after any
  /// recalibration) and the attenuator settings. A hit skips the
  /// decomposition entirely; reprogramming from the cached phases is
  /// bit-identical to the recomputed path. Per-engine and therefore
  /// thread-private (campaign workers never share engines).
  struct ProgramMemo {
    std::vector<lina::cplx> key;
    lina::SvdResult svd;
    double sigma_max = 0.0;
    std::vector<double> attenuation;
    std::vector<double> phases_u, phases_v;
  };
  static constexpr std::size_t kProgramMemoCap = 8;

  MvmConfig cfg_;
  lina::Rng rng_;
  lina::CMat weight_;
  lina::SvdResult svd_;
  std::unique_ptr<mesh::PhysicalMesh> mesh_u_;
  std::unique_ptr<mesh::PhysicalMesh> mesh_v_;
  std::vector<double> attenuation_;  ///< per-port sigma / sigma_max
  double sigma_max_ = 1.0;
  lina::CMat t_phys_;
  lina::cplx gain_{1.0, 0.0};
  double fidelity_ = 0.0;
  phot::Modulator modulator_;
  phot::CoherentReceiver receiver_;
  phot::CwLaser laser_;
  MvmCounters counters_;
  mutable lina::CMat scratch_path_;  ///< compose_path_into scratch
  lina::CMat batch_fields_;          ///< multiply_batch encode scratch
  mutable lina::CVec scratch_noiseless_;  ///< multiply_noiseless_into fields
  mutable lina::CMat scratch_noiseless_batch_;  ///< batch variant fields
  std::vector<ProgramMemo> program_memo_;  ///< MRU-ordered, capped
  /// True while the meshes hold exactly what the last set_matrix
  /// programmed (no phase perturbation / drift advance since): lets
  /// set_matrix of the identical matrix reduce to cost accounting.
  bool weights_clean_ = false;
  lina::SvdWorkspace svd_ws_;
  mesh::ProgramScratch program_scratch_;
};

}  // namespace aspen::core
