#pragma once
/// \file noise_analysis.hpp
/// End-to-end precision budget of the photonic MVM engine: how many
/// effective bits survive the analog path, and which impairment is the
/// binding constraint. The paper's platform pitch (>50 GHz modulators and
/// detectors, §2) only pays off if the precision budget closes — this
/// module quantifies it, both analytically (per-impairment contributions)
/// and empirically (Monte-Carlo ENOB of an engine configuration).

#include <string>
#include <vector>

#include "core/mvm_engine.hpp"

namespace aspen::core {

/// One contribution to the output error budget, expressed as an RMS error
/// relative to the full-scale output (so bits = -log2(2*sqrt(3)*rms)).
struct NoiseContribution {
  std::string source;
  double relative_rms = 0.0;
  /// Effective bits this impairment alone would allow.
  [[nodiscard]] double bits_alone() const;
};

struct PrecisionBudget {
  std::vector<NoiseContribution> contributions;
  double total_relative_rms = 0.0;  ///< root-sum-square of contributions
  double enob = 0.0;                ///< effective number of bits end-to-end

  /// The single impairment with the largest contribution.
  [[nodiscard]] const NoiseContribution& dominant() const;
};

/// Analytic budget for a configuration: DAC quantization, modulator
/// extinction floor, laser RIN, shot noise, receiver thermal noise, ADC
/// quantization, and (for PCM weights) weight quantization — each mapped
/// to an equivalent relative-RMS output error for unit-scale operands.
[[nodiscard]] PrecisionBudget analytic_precision_budget(const MvmConfig& cfg);

/// Empirical ENOB: run `trials` random MVMs through a physical engine and
/// compare with the exact product; returns effective bits from the
/// measured relative RMS error.
[[nodiscard]] double empirical_enob(const MvmConfig& cfg, int trials = 64,
                                    std::uint64_t seed = 0xE0Bu);

/// Convert a relative RMS error (vs full scale) into effective bits of a
/// uniform quantizer with the same RMS: bits = log2(1 / (rms * 2 sqrt 3)).
[[nodiscard]] double rms_to_bits(double relative_rms);

}  // namespace aspen::core
