#pragma once
/// \file energy_model.hpp
/// Analytical speed / energy / footprint model of the photonic
/// accelerator — the "key metrics such as speed, energy consumption, and
/// footprint" the paper's abstract promises from the simulation platform.
/// Component counts come from the actual mesh layouts; device parameters
/// from the photonics configs, so the model stays consistent with the
/// simulated physics.

#include <string>

#include "core/mvm_engine.hpp"

namespace aspen::core {

/// Die-area figures for the standard building blocks (conservative
/// foundry-scale values at 1550 nm).
struct AreaParams {
  double mzi_mm2 = 0.0050;        ///< full MZI cell incl. 2 couplers + 2 PS
  double phase_shifter_mm2 = 0.0012;
  double coupler_mm2 = 0.0004;
  double modulator_mm2 = 0.0150;  ///< high-speed MZM
  double photodetector_mm2 = 0.0020;
  double attenuator_mm2 = 0.0050; ///< variable MZI splitter
  double laser_mm2 = 0.0500;      ///< III-V on-SOI laser + isolator
};

/// The complete metrics row for one accelerator configuration.
struct AcceleratorReport {
  std::string architecture;
  std::size_t ports = 0;
  int wdm_channels = 1;

  double area_mm2 = 0.0;
  double insertion_loss_db = 0.0;
  double static_power_w = 0.0;      ///< weight holding + laser wall-plug
  double weight_holding_w = 0.0;    ///< heaters only (0 for PCM)
  double program_energy_j = 0.0;    ///< one full reprogram
  double program_time_s = 0.0;
  double energy_per_mvm_j = 0.0;    ///< modulators + ADCs + laser/symbol
  double latency_per_mvm_s = 0.0;
  double macs_per_mvm = 0.0;
  double throughput_ops_s = 0.0;    ///< 2*MAC/s at full rate
  double tops_per_watt = 0.0;       ///< efficiency incl. static power
};

/// Evaluate the analytical model for a configuration.
/// `weight_reuse` = number of MVMs executed per weight programming
/// (amortizes the write energy; the non-volatility argument of Section 3
/// is precisely about the weight_reuse -> infinity limit).
[[nodiscard]] AcceleratorReport evaluate_accelerator(
    const MvmConfig& cfg, double weight_reuse = 1e6, int wdm_channels = 1,
    const AreaParams& area = {});

/// Energy of one inference pass (row count `mvms` through the engine)
/// under the two weight technologies, as a function of how many
/// inferences share one weight programming — the E4 crossover series.
struct WeightEnergyPoint {
  double reuse;                 ///< inferences per reprogram
  double thermo_energy_j;       ///< per inference
  double pcm_energy_j;          ///< per inference
};
[[nodiscard]] WeightEnergyPoint weight_energy_at_reuse(const MvmConfig& cfg,
                                                       double reuse,
                                                       double mvms_per_inference);

}  // namespace aspen::core
