#pragma once
/// \file abft.hpp
/// Algorithm-based fault tolerance (ABFT) for the photonic GEMM tile,
/// after Huang & Abraham's checksum scheme. The programmed weight matrix
/// W (N x N) is augmented with two checksum rows
///
///   row N   :  sum_r      W(r, c)      (plain column sums)
///   row N+1 :  sum_r (r+1) W(r, c)      (index-weighted column sums)
///
/// so every output column y = W' x carries the invariants
///
///   y(N)   = sum_{r<N}       y(r)
///   y(N+1) = sum_{r<N} (r+1) y(r)
///
/// through the (linear) analog datapath for free. On readout the two
/// discrepancies d1 = sum y - y(N) and d2 = wsum y - y(N+1) detect any
/// corruption, and for a single corrupted element locate it:
/// row = round(d2/d1) - 1, magnitude d1 — which is enough to repair the
/// column in place. Two zero columns keep W' square so it programs onto
/// the same SVD + dual-mesh pipeline as any other matrix.

#include <cstdint>

#include "lina/complex_matrix.hpp"

namespace aspen::core {

/// Number of checksum rows/columns the augmentation adds.
inline constexpr std::size_t kAbftRows = 2;

struct AbftConfig {
  bool enabled = false;
  /// Detection threshold on the checksum discrepancies, in output (W)
  /// units. Must sit above the platform's systematic checksum residual:
  /// the deterministic thermo-optic path closes the identity to ~1e-12,
  /// so the default is safe there; noisy or PCM-quantized platforms need
  /// a calibrated (larger) tolerance.
  double tolerance = 1e-6;
};

/// Cumulative ABFT event counts (architectural state: the accelerator
/// exposes them over MMIO, so they snapshot/restore with the system).
struct AbftCounters {
  std::uint64_t columns_checked = 0;
  std::uint64_t detected = 0;       ///< columns failing a checksum identity
  std::uint64_t corrected = 0;      ///< columns repaired in place
  std::uint64_t uncorrectable = 0;  ///< detected columns left unrepaired

  void add(const AbftCounters& o) {
    columns_checked += o.columns_checked;
    detected += o.detected;
    corrected += o.corrected;
    uncorrectable += o.uncorrectable;
  }
};

/// Per-call report of the most recent checked multiply.
struct AbftReport {
  AbftCounters counts;
  double max_residual = 0.0;  ///< largest |discrepancy| seen this call
};

/// Augment W (n x n) to (n+2) x (n+2): two checksum rows, two zero
/// columns. Throws if W is not square.
[[nodiscard]] lina::CMat abft_augment(const lina::CMat& w);

/// Verify every column of an augmented output block y ((n+2) x m) and
/// repair single-element corruptions in place. Detection uses
/// `tolerance`; the locate/consistency test uses tolerance * (n+1) to
/// absorb the index-weighted amplification of the baseline residual.
AbftReport abft_check(lina::CMat& y, double tolerance);

}  // namespace aspen::core
