#include "core/gemm_core.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::core {

using lina::CMat;
using lina::cplx;

namespace {

/// The engine is built at the physical tile size: two extra ports carry
/// the checksum rows when ABFT is on.
MvmConfig engine_config(const GemmConfig& cfg) {
  MvmConfig m = cfg.mvm;
  if (cfg.abft.enabled) m.ports += kAbftRows;
  return m;
}

}  // namespace

GemmCore::GemmCore(GemmConfig cfg) : cfg_(cfg), engine_(engine_config(cfg)) {
  if (cfg_.wdm_channels < 1)
    throw std::invalid_argument("GemmCore: wdm_channels < 1");
  if (cfg_.channel_isolation_db <= 0.0)
    throw std::invalid_argument("GemmCore: channel_isolation_db <= 0");
  if (cfg_.abft.enabled && cfg_.abft.tolerance <= 0.0)
    throw std::invalid_argument("GemmCore: abft tolerance <= 0");
}

void GemmCore::set_weights(const CMat& w) {
  const double before = engine_.counters().weight_write_energy_j;
  if (cfg_.abft.enabled)
    engine_.set_matrix(abft_augment(w));
  else
    engine_.set_matrix(w);
  stats_.weight_write_energy_j +=
      engine_.counters().weight_write_energy_j - before;

  // Precompute per-channel transfers when dispersion is in play: channel
  // c rides at (c - (K-1)/2) * spacing from the design wavelength.
  channel_transfer_.clear();
  if (cfg_.wdm_channels > 1 && cfg_.channel_spacing_nm != 0.0) {
    channel_transfer_.reserve(static_cast<std::size_t>(cfg_.wdm_channels));
    for (int c = 0; c < cfg_.wdm_channels; ++c) {
      const double nm =
          (c - 0.5 * (cfg_.wdm_channels - 1)) * cfg_.channel_spacing_nm;
      channel_transfer_.push_back(engine_.transfer_at_detuning(nm));
    }
  }
}

void GemmCore::pad_input(const CMat& x) {
  const std::size_t n = data_ports();
  if (x.rows() != n)
    throw std::invalid_argument("GemmCore: input rows != data ports");
  const std::size_t m = x.cols();
  abft_x_.resize(n + kAbftRows, m);  // resize zero-fills the checksum rows
  for (std::size_t c = 0; c < m; ++c)
    for (std::size_t r = 0; r < n; ++r) abft_x_(r, c) = x(r, c);
}

CMat GemmCore::multiply(const CMat& x) {
  if (!cfg_.abft.enabled) return multiply_physical(x);
  pad_input(x);
  CMat full = multiply_physical(abft_x_);
  last_abft_ = abft_check(full, cfg_.abft.tolerance);
  abft_counters_.add(last_abft_.counts);
  const std::size_t n = data_ports();
  CMat out(n, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c)
    for (std::size_t r = 0; r < n; ++r) out(r, c) = full(r, c);
  return out;
}

void GemmCore::multiply_noiseless(const CMat& x, CMat& out) {
  if (!cfg_.abft.enabled) {
    engine_.multiply_noiseless_batch_into(x, out);
    return;
  }
  pad_input(x);
  engine_.multiply_noiseless_batch_into(abft_x_, abft_y_);
  last_abft_ = abft_check(abft_y_, cfg_.abft.tolerance);
  abft_counters_.add(last_abft_.counts);
  const std::size_t n = data_ports();
  out.resize(n, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c)
    for (std::size_t r = 0; r < n; ++r) out(r, c) = abft_y_(r, c);
}

CMat GemmCore::multiply_physical(const CMat& x) {
  const std::size_t n = engine_.config().ports;
  if (x.rows() != n)
    throw std::invalid_argument("GemmCore: input rows != engine ports");
  const std::size_t m = x.cols();
  const auto k = static_cast<std::size_t>(cfg_.wdm_channels);

  stats_ = GemmStats{};
  stats_.weight_write_energy_j = 0.0;  // per-call stats exclude programming
  CMat out(n, m);

  // Field-level leakage between adjacent DWDM channels after the demux.
  const double leak =
      std::pow(10.0, -cfg_.channel_isolation_db / 20.0);

  for (std::size_t group = 0; group * k < m; ++group) {
    const std::size_t first = group * k;
    const std::size_t count = std::min(k, m - first);

    // Encode the whole group into one ports x count field block, then
    // propagate it as a single matrix-matrix product; distinct
    // wavelengths do not interfere, but with dispersion enabled each
    // channel sees its own (rotated) transfer.
    engine_.encode_batch(x, first, count, fields_);
    if (channel_transfer_.empty()) {
      lina::mul_into(outputs_, engine_.physical_transfer(), fields_);
    } else {
      outputs_.resize(n, count);
      for (std::size_t c = 0; c < count; ++c) {
        const CMat& t = channel_transfer_[c];
        for (std::size_t r = 0; r < n; ++r) {
          cplx s{0.0, 0.0};
          for (std::size_t j = 0; j < n; ++j) s += t(r, j) * fields_(j, c);
          outputs_(r, c) = s;
        }
      }
    }
    // Imperfect demux: neighbour leakage before detection. The mixing
    // block only exists when there is something to mix — single-channel
    // or perfectly isolated configs detect the outputs directly.
    CMat* detected = &outputs_;
    if (count > 1 && leak > 0.0) {
      mixed_.resize(n, count);
      for (std::size_t c = 0; c < count; ++c) {
        for (std::size_t p = 0; p < n; ++p) {
          cplx leakage{0.0, 0.0};
          if (c > 0) leakage += outputs_(p, c - 1);
          if (c + 1 < count) leakage += outputs_(p, c + 1);
          mixed_(p, c) = outputs_(p, c) + leak * leakage;
        }
      }
      detected = &mixed_;
    }
    engine_.detect_batch(*detected);
    engine_.rescale_batch(*detected);
    for (std::size_t c = 0; c < count; ++c)
      for (std::size_t r = 0; r < n; ++r)
        out(r, first + c) = (*detected)(r, c);

    ++stats_.symbols;
  }

  // Cost model.
  const double t_sym = engine_.symbol_time_s();
  stats_.wall_time_s = static_cast<double>(stats_.symbols) * t_sym;
  stats_.macs = static_cast<std::uint64_t>(n) * n * m;
  const double mods = static_cast<double>(n) * static_cast<double>(m);
  stats_.modulator_energy_j =
      mods * engine_.config().modulator.energy_per_symbol_j;
  // Two quadrature samples per port per column (I/Q receiver).
  stats_.adc_energy_j =
      2.0 * mods * engine_.config().adc.energy_per_sample_j;
  // One laser per WDM channel, on for the whole call.
  const double laser_electrical =
      engine_.config().laser.power_w /
      engine_.config().laser.wall_plug_efficiency;
  stats_.laser_energy_j =
      static_cast<double>(cfg_.wdm_channels) * laser_electrical *
      stats_.wall_time_s;
  return out;
}

}  // namespace aspen::core
