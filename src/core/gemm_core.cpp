#include "core/gemm_core.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::core {

using lina::CMat;
using lina::cplx;
using lina::CVec;

GemmCore::GemmCore(GemmConfig cfg) : cfg_(cfg), engine_(cfg.mvm) {
  if (cfg_.wdm_channels < 1)
    throw std::invalid_argument("GemmCore: wdm_channels < 1");
  if (cfg_.channel_isolation_db <= 0.0)
    throw std::invalid_argument("GemmCore: channel_isolation_db <= 0");
}

void GemmCore::set_weights(const CMat& w) {
  const double before = engine_.counters().weight_write_energy_j;
  engine_.set_matrix(w);
  stats_.weight_write_energy_j +=
      engine_.counters().weight_write_energy_j - before;

  // Precompute per-channel transfers when dispersion is in play: channel
  // c rides at (c - (K-1)/2) * spacing from the design wavelength.
  channel_transfer_.clear();
  if (cfg_.wdm_channels > 1 && cfg_.channel_spacing_nm != 0.0) {
    channel_transfer_.reserve(static_cast<std::size_t>(cfg_.wdm_channels));
    for (int c = 0; c < cfg_.wdm_channels; ++c) {
      const double nm =
          (c - 0.5 * (cfg_.wdm_channels - 1)) * cfg_.channel_spacing_nm;
      channel_transfer_.push_back(engine_.transfer_at_detuning(nm));
    }
  }
}

CMat GemmCore::multiply(const CMat& x) {
  const std::size_t n = engine_.config().ports;
  if (x.rows() != n)
    throw std::invalid_argument("GemmCore::multiply: row mismatch");
  const std::size_t m = x.cols();
  const auto k = static_cast<std::size_t>(cfg_.wdm_channels);

  stats_ = GemmStats{};
  stats_.weight_write_energy_j = 0.0;  // per-call stats exclude programming
  CMat out(n, m);

  // Field-level leakage between adjacent DWDM channels after the demux.
  const double leak =
      std::pow(10.0, -cfg_.channel_isolation_db / 20.0);

  for (std::size_t group = 0; group * k < m; ++group) {
    const std::size_t first = group * k;
    const std::size_t count = std::min(k, m - first);

    // Propagate each channel's column through the same mesh; distinct
    // wavelengths do not interfere, but with dispersion enabled each
    // channel sees its own (rotated) transfer.
    std::vector<CVec> outputs(count);
    for (std::size_t c = 0; c < count; ++c) {
      const CVec fields = engine_.encode(x.col(first + c));
      outputs[c] = channel_transfer_.empty()
                       ? engine_.propagate_fields(fields)
                       : channel_transfer_[c] * fields;
    }
    // Imperfect demux: neighbour leakage before detection.
    std::vector<CVec> mixed = outputs;
    if (count > 1 && leak > 0.0) {
      for (std::size_t c = 0; c < count; ++c) {
        for (std::size_t p = 0; p < n; ++p) {
          cplx leakage{0.0, 0.0};
          if (c > 0) leakage += outputs[c - 1][p];
          if (c + 1 < count) leakage += outputs[c + 1][p];
          mixed[c][p] += leak * leakage;
        }
      }
    }
    for (std::size_t c = 0; c < count; ++c) {
      const CVec y = engine_.rescale(engine_.detect(mixed[c]));
      for (std::size_t r = 0; r < n; ++r) out(r, first + c) = y[r];
    }

    ++stats_.symbols;
  }

  // Cost model.
  const double t_sym = engine_.symbol_time_s();
  stats_.wall_time_s = static_cast<double>(stats_.symbols) * t_sym;
  stats_.macs = static_cast<std::uint64_t>(n) * n * m;
  const double mods = static_cast<double>(n) * static_cast<double>(m);
  stats_.modulator_energy_j =
      mods * engine_.config().modulator.energy_per_symbol_j;
  // Two quadrature samples per port per column (I/Q receiver).
  stats_.adc_energy_j =
      2.0 * mods * engine_.config().adc.energy_per_sample_j;
  // One laser per WDM channel, on for the whole call.
  const double laser_electrical =
      engine_.config().laser.power_w /
      engine_.config().laser.wall_plug_efficiency;
  stats_.laser_energy_j =
      static_cast<double>(cfg_.wdm_channels) * laser_electrical *
      stats_.wall_time_s;
  return out;
}

}  // namespace aspen::core
