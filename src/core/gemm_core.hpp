#pragma once
/// \file gemm_core.hpp
/// Generalized matrix-matrix (GeMM) scheduling on top of the photonic MVM
/// engine — paper Section 4: "Generalization to GeMM operations can be
/// realized through separating of the input matrix into rows, and
/// processing those either via time-division multiplexing or through
/// encoding into multiple dense wavelength division multiplexed (DWDM)
/// channels that can be processed in parallel in a single multiport
/// interferometer without incurring additional resource costs."
///
/// TDM:  one input column per symbol period.
/// DWDM: `wdm_channels` columns ride distinct wavelengths through the
///       same mesh simultaneously; each channel needs its own modulator /
///       detector bank but no additional mesh. Finite channel isolation
///       leaks a fraction of each neighbouring channel's field into the
///       detected signal (incoherent crosstalk penalty).

#include "core/mvm_engine.hpp"

namespace aspen::core {

struct GemmConfig {
  MvmConfig mvm;
  int wdm_channels = 1;
  /// Adjacent-channel isolation of the DWDM (de)mux [dB, positive].
  double channel_isolation_db = 25.0;
  /// DWDM grid spacing [nm]. With coupler dispersion enabled in the mesh
  /// error model, channels away from the design wavelength see rotated
  /// splitting ratios — the physical cost of "free" WDM parallelism.
  /// 0 disables (ideal wavelength-flat mesh).
  double channel_spacing_nm = 0.0;
};

/// Cost/throughput statistics of one GeMM call.
struct GemmStats {
  std::uint64_t symbols = 0;       ///< symbol slots used
  double wall_time_s = 0.0;        ///< symbols * symbol period
  std::uint64_t macs = 0;          ///< multiply-accumulates performed
  double modulator_energy_j = 0.0;
  double adc_energy_j = 0.0;
  double laser_energy_j = 0.0;     ///< electrical (wall-plug) energy
  double weight_write_energy_j = 0.0;

  [[nodiscard]] double total_energy_j() const {
    return modulator_energy_j + adc_energy_j + laser_energy_j +
           weight_write_energy_j;
  }
  /// Operations (2 x MAC) per second.
  [[nodiscard]] double ops_per_second() const {
    return wall_time_s > 0.0 ? 2.0 * static_cast<double>(macs) / wall_time_s
                             : 0.0;
  }
  /// Energy efficiency in operations per joule.
  [[nodiscard]] double ops_per_joule() const {
    const double e = total_energy_j();
    return e > 0.0 ? 2.0 * static_cast<double>(macs) / e : 0.0;
  }
};

class GemmCore {
 public:
  explicit GemmCore(GemmConfig cfg);

  /// Program the weight matrix W (N x N).
  void set_weights(const lina::CMat& w);

  /// C = W * X for an N x M input matrix X (columns are input vectors,
  /// |entries| <= 1). Full physical simulation, TDM or WDM per config.
  [[nodiscard]] lina::CMat multiply(const lina::CMat& x);

  /// Statistics of the most recent multiply().
  [[nodiscard]] const GemmStats& last_stats() const { return stats_; }
  [[nodiscard]] MvmEngine& engine() { return engine_; }
  [[nodiscard]] const MvmEngine& engine() const { return engine_; }
  [[nodiscard]] const GemmConfig& config() const { return cfg_; }

  // -- Snapshot / restore -------------------------------------------------
  struct Snapshot {
    MvmEngine::Snapshot engine;
    GemmStats stats;
    std::vector<lina::CMat> channel_transfer;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return {engine_.snapshot(), stats_, channel_transfer_};
  }
  void restore(const Snapshot& s) {
    engine_.restore(s.engine);
    stats_ = s.stats;
    channel_transfer_ = s.channel_transfer;
  }

 private:
  GemmConfig cfg_;
  MvmEngine engine_;
  GemmStats stats_;
  /// Per-channel transfers under dispersion (rebuilt on set_weights).
  std::vector<lina::CMat> channel_transfer_;
  /// Reusable per-group scratch blocks (ports x wdm_channels), hoisted out
  /// of the group loop: encoded fields, propagated outputs, and the
  /// leakage-mixed block (only touched when mixing is actually needed).
  lina::CMat fields_;
  lina::CMat outputs_;
  lina::CMat mixed_;
};

}  // namespace aspen::core
