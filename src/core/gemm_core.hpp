#pragma once
/// \file gemm_core.hpp
/// Generalized matrix-matrix (GeMM) scheduling on top of the photonic MVM
/// engine — paper Section 4: "Generalization to GeMM operations can be
/// realized through separating of the input matrix into rows, and
/// processing those either via time-division multiplexing or through
/// encoding into multiple dense wavelength division multiplexed (DWDM)
/// channels that can be processed in parallel in a single multiport
/// interferometer without incurring additional resource costs."
///
/// TDM:  one input column per symbol period.
/// DWDM: `wdm_channels` columns ride distinct wavelengths through the
///       same mesh simultaneously; each channel needs its own modulator /
///       detector bank but no additional mesh. Finite channel isolation
///       leaks a fraction of each neighbouring channel's field into the
///       detected signal (incoherent crosstalk penalty).
///
/// With ABFT enabled the core transparently programs the checksum-
/// augmented (N+2)x(N+2) matrix onto an (N+2)-port engine and verifies /
/// repairs every output column on readout; callers keep the N x N view.

#include "core/abft.hpp"
#include "core/mvm_engine.hpp"

namespace aspen::core {

struct GemmConfig {
  MvmConfig mvm;
  int wdm_channels = 1;
  /// Adjacent-channel isolation of the DWDM (de)mux [dB, positive].
  double channel_isolation_db = 25.0;
  /// DWDM grid spacing [nm]. With coupler dispersion enabled in the mesh
  /// error model, channels away from the design wavelength see rotated
  /// splitting ratios — the physical cost of "free" WDM parallelism.
  /// 0 disables (ideal wavelength-flat mesh).
  double channel_spacing_nm = 0.0;
  /// Checksum-row fault detection/correction on every tile (see abft.hpp).
  AbftConfig abft;
};

/// Cost/throughput statistics of one GeMM call.
struct GemmStats {
  std::uint64_t symbols = 0;       ///< symbol slots used
  double wall_time_s = 0.0;        ///< symbols * symbol period
  std::uint64_t macs = 0;          ///< multiply-accumulates performed
  double modulator_energy_j = 0.0;
  double adc_energy_j = 0.0;
  double laser_energy_j = 0.0;     ///< electrical (wall-plug) energy
  double weight_write_energy_j = 0.0;

  [[nodiscard]] double total_energy_j() const {
    return modulator_energy_j + adc_energy_j + laser_energy_j +
           weight_write_energy_j;
  }
  /// Operations (2 x MAC) per second.
  [[nodiscard]] double ops_per_second() const {
    return wall_time_s > 0.0 ? 2.0 * static_cast<double>(macs) / wall_time_s
                             : 0.0;
  }
  /// Energy efficiency in operations per joule.
  [[nodiscard]] double ops_per_joule() const {
    const double e = total_energy_j();
    return e > 0.0 ? 2.0 * static_cast<double>(macs) / e : 0.0;
  }
};

class GemmCore {
 public:
  explicit GemmCore(GemmConfig cfg);

  /// Program the weight matrix W (N x N, the data tile; checksum rows are
  /// appended internally when ABFT is on).
  void set_weights(const lina::CMat& w);

  /// C = W * X for an N x M input matrix X (columns are input vectors,
  /// |entries| <= 1). Full physical simulation, TDM or WDM per config.
  /// With ABFT on, the returned block is the verified/repaired N x M data
  /// view (checksum rows stripped).
  [[nodiscard]] lina::CMat multiply(const lina::CMat& x);

  /// Deterministic tile path used by the memory-mapped accelerator:
  /// noiseless batched multiply, plus ABFT verify/repair when enabled.
  /// With ABFT off this delegates straight to the engine (bit-identical
  /// to calling multiply_noiseless_batch_into directly).
  void multiply_noiseless(const lina::CMat& x, lina::CMat& out);

  /// Rows/columns of the data tile callers see (engine ports minus the
  /// checksum rows when ABFT is on).
  [[nodiscard]] std::size_t data_ports() const { return cfg_.mvm.ports; }

  /// Statistics of the most recent multiply().
  [[nodiscard]] const GemmStats& last_stats() const { return stats_; }
  /// Cumulative ABFT event counts (all zero when ABFT is off).
  [[nodiscard]] const AbftCounters& abft_counters() const {
    return abft_counters_;
  }
  /// ABFT report of the most recent checked multiply.
  [[nodiscard]] const AbftReport& last_abft() const { return last_abft_; }
  [[nodiscard]] MvmEngine& engine() { return engine_; }
  [[nodiscard]] const MvmEngine& engine() const { return engine_; }
  [[nodiscard]] const GemmConfig& config() const { return cfg_; }

  // -- Snapshot / restore -------------------------------------------------
  struct Snapshot {
    MvmEngine::Snapshot engine;
    GemmStats stats;
    std::vector<lina::CMat> channel_transfer;
    AbftCounters abft;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return {engine_.snapshot(), stats_, channel_transfer_, abft_counters_};
  }
  void restore(const Snapshot& s) {
    engine_.restore(s.engine);
    stats_ = s.stats;
    channel_transfer_ = s.channel_transfer;
    abft_counters_ = s.abft;
  }

 private:
  /// The physical multiply at engine dimensions (the pre-ABFT body).
  [[nodiscard]] lina::CMat multiply_physical(const lina::CMat& x);
  /// Copy x (data rows) into abft_x_ with zeroed checksum rows.
  void pad_input(const lina::CMat& x);

  GemmConfig cfg_;
  MvmEngine engine_;
  GemmStats stats_;
  AbftCounters abft_counters_;
  AbftReport last_abft_;
  /// Per-channel transfers under dispersion (rebuilt on set_weights).
  std::vector<lina::CMat> channel_transfer_;
  /// Reusable per-group scratch blocks (ports x wdm_channels), hoisted out
  /// of the group loop: encoded fields, propagated outputs, and the
  /// leakage-mixed block (only touched when mixing is actually needed).
  lina::CMat fields_;
  lina::CMat outputs_;
  lina::CMat mixed_;
  /// ABFT scratch: zero-padded input and full augmented output blocks.
  lina::CMat abft_x_;
  lina::CMat abft_y_;
};

}  // namespace aspen::core
