#include "lina/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aspen::lina {

CMat SvdResult::reconstruct() const {
  CMat s = CMat::diag(std::vector<cplx>(sigma.size()));
  for (std::size_t i = 0; i < sigma.size(); ++i) s(i, i) = cplx{sigma[i], 0.0};
  return u * s * v.adjoint();
}

double SvdResult::sigma_max() const {
  return sigma.empty() ? 0.0 : sigma.front();
}

namespace {

/// One-sided Jacobi for m x n with m >= n: orthogonalizes the columns of a
/// working copy of M by right-multiplying complex plane rotations, which
/// accumulate into V; at convergence column norms are the singular values
/// and normalized columns form U.
SvdResult svd_tall(const CMat& m_in, double tol) {
  const std::size_t rows = m_in.rows();
  const std::size_t n = m_in.cols();
  CMat a = m_in;
  CMat v = CMat::identity(n);

  const double fro = a.frobenius();
  const double off_tol = tol * std::max(fro, 1e-300);
  constexpr int kMaxSweeps = 64;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the (p, q) column pair.
        double alpha = 0.0;
        double beta = 0.0;
        cplx gamma{0.0, 0.0};
        for (std::size_t r = 0; r < rows; ++r) {
          const cplx ap = a(r, p);
          const cplx aq = a(r, q);
          alpha += std::norm(ap);
          beta += std::norm(aq);
          gamma += std::conj(ap) * aq;
        }
        const double g = std::abs(gamma);
        if (g <= off_tol * 1e-4 || g <= tol * std::sqrt(alpha * beta)) continue;
        converged = false;

        // Phase-align column q so the effective Gram off-diagonal is real
        // positive, then apply a classical real Jacobi rotation.
        const cplx phase = gamma / g;  // e^{i psi}
        const double zeta = (beta - alpha) / (2.0 * g);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Columns: [ap', aq'] = [ap, aq] * G,
        // G = [[c, s*phase], [-s*conj(phase), c]].
        for (std::size_t r = 0; r < rows; ++r) {
          const cplx ap = a(r, p);
          const cplx aq = a(r, q);
          a(r, p) = c * ap - s * std::conj(phase) * aq;
          a(r, q) = s * phase * ap + c * aq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const cplx vp = v(r, p);
          const cplx vq = v(r, q);
          v(r, p) = c * vp - s * std::conj(phase) * vq;
          v(r, q) = s * phase * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms -> singular values; sort descending.
  std::vector<double> sig(n);
  for (std::size_t c = 0; c < n; ++c) sig[c] = a.col(c).norm();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sig[x] > sig[y]; });

  SvdResult out;
  out.sigma.resize(n);
  out.u = CMat(rows, n);
  out.v = CMat(n, n);
  const double rank_tol = 1e-13 * std::max(1.0, fro);
  std::vector<CVec> ucols;
  ucols.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    out.sigma[k] = sig[src];
    out.v.set_col(k, v.col(src));
    CVec uc = a.col(src);
    if (sig[src] > rank_tol) {
      for (std::size_t r = 0; r < rows; ++r) uc[r] /= sig[src];
    } else {
      // Null column: complete an orthonormal basis so U keeps orthonormal
      // columns even for rank-deficient input.
      out.sigma[k] = 0.0;
      for (std::size_t seed = 0; seed < rows; ++seed) {
        CVec cand(rows);
        cand[seed] = cplx{1.0, 0.0};
        for (const CVec& prev : ucols) {
          const cplx proj = dot(prev, cand);
          for (std::size_t r = 0; r < rows; ++r) cand[r] -= proj * prev[r];
        }
        if (cand.norm() > 0.5) {
          const double nv = cand.norm();
          for (std::size_t r = 0; r < rows; ++r) cand[r] /= nv;
          uc = cand;
          break;
        }
      }
    }
    ucols.push_back(uc);
    out.u.set_col(k, uc);
  }
  return out;
}

}  // namespace

SvdResult svd(const CMat& m, double tol) {
  if (m.rows() == 0 || m.cols() == 0)
    throw std::invalid_argument("svd: empty matrix");
  if (m.rows() >= m.cols()) return svd_tall(m, tol);
  // Wide matrix: M = U S V^dagger  <=>  M^dagger = V S U^dagger.
  SvdResult t = svd_tall(m.adjoint(), tol);
  SvdResult out;
  out.u = t.v;
  out.v = t.u;
  out.sigma = std::move(t.sigma);
  return out;
}

}  // namespace aspen::lina
