#include "lina/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aspen::lina {

CMat SvdResult::reconstruct() const {
  CMat s = CMat::diag(std::vector<cplx>(sigma.size()));
  for (std::size_t i = 0; i < sigma.size(); ++i) s(i, i) = cplx{sigma[i], 0.0};
  return u * s * v.adjoint();
}

double SvdResult::sigma_max() const {
  return sigma.empty() ? 0.0 : sigma.front();
}

namespace {

/// One-sided Jacobi for m x n with m >= n: orthogonalizes the columns of a
/// working copy of M by right-multiplying complex plane rotations, which
/// accumulate into V; at convergence column norms are the singular values
/// and normalized columns form U. All storage lives in `ws`/`out`.
void svd_tall(const CMat& m_in, double tol, SvdWorkspace& ws,
              SvdResult& out) {
  const std::size_t rows = m_in.rows();
  const std::size_t n = m_in.cols();
  CMat& a = ws.a;
  CMat& v = ws.v;
  a = m_in;
  v.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = cplx{1.0, 0.0};

  const double fro = a.frobenius();
  const double off_tol = tol * std::max(fro, 1e-300);
  constexpr int kMaxSweeps = 64;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the (p, q) column pair.
        double alpha = 0.0;
        double beta = 0.0;
        cplx gamma{0.0, 0.0};
        for (std::size_t r = 0; r < rows; ++r) {
          const cplx ap = a(r, p);
          const cplx aq = a(r, q);
          alpha += std::norm(ap);
          beta += std::norm(aq);
          gamma += std::conj(ap) * aq;
        }
        const double g = std::abs(gamma);
        if (g <= off_tol * 1e-4 || g <= tol * std::sqrt(alpha * beta)) continue;
        converged = false;

        // Phase-align column q so the effective Gram off-diagonal is real
        // positive, then apply a classical real Jacobi rotation.
        const cplx phase = gamma / g;  // e^{i psi}
        const double zeta = (beta - alpha) / (2.0 * g);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Columns: [ap', aq'] = [ap, aq] * G,
        // G = [[c, s*phase], [-s*conj(phase), c]].
        for (std::size_t r = 0; r < rows; ++r) {
          const cplx ap = a(r, p);
          const cplx aq = a(r, q);
          a(r, p) = c * ap - s * std::conj(phase) * aq;
          a(r, q) = s * phase * ap + c * aq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const cplx vp = v(r, p);
          const cplx vq = v(r, q);
          v(r, p) = c * vp - s * std::conj(phase) * vq;
          v(r, q) = s * phase * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms -> singular values; sort descending.
  std::vector<double>& sig = ws.sig;
  sig.assign(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < rows; ++r) s += std::norm(a(r, c));
    sig[c] = std::sqrt(s);
  }
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sig[x] > sig[y]; });

  out.sigma.resize(n);
  out.u.resize(rows, n);
  out.v.resize(n, n);
  const double rank_tol = 1e-13 * std::max(1.0, fro);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    out.sigma[k] = sig[src];
    for (std::size_t r = 0; r < n; ++r) out.v(r, k) = v(r, src);
    if (sig[src] > rank_tol) {
      for (std::size_t r = 0; r < rows; ++r)
        out.u(r, k) = a(r, src) / sig[src];
    } else {
      // Null column: complete an orthonormal basis so U keeps orthonormal
      // columns even for rank-deficient input. Columns 0..k-1 of out.u
      // are exactly the vectors accumulated so far.
      out.sigma[k] = 0.0;
      CVec& cand = ws.cand;
      for (std::size_t seed = 0; seed < rows; ++seed) {
        cand.resize(rows);
        cand[seed] = cplx{1.0, 0.0};
        for (std::size_t j = 0; j < k; ++j) {
          cplx proj{0.0, 0.0};
          for (std::size_t r = 0; r < rows; ++r)
            proj += std::conj(out.u(r, j)) * cand[r];
          for (std::size_t r = 0; r < rows; ++r)
            cand[r] -= proj * out.u(r, j);
        }
        double nsq = 0.0;
        for (std::size_t r = 0; r < rows; ++r) nsq += std::norm(cand[r]);
        const double nv = std::sqrt(nsq);
        if (nv > 0.5) {
          for (std::size_t r = 0; r < rows; ++r) out.u(r, k) = cand[r] / nv;
          break;
        }
      }
    }
  }
}

}  // namespace

void svd(const CMat& m, SvdResult& out, SvdWorkspace& ws, double tol) {
  if (m.rows() == 0 || m.cols() == 0)
    throw std::invalid_argument("svd: empty matrix");
  if (m.rows() >= m.cols()) {
    svd_tall(m, tol, ws, out);
    return;
  }
  // Wide matrix: M = U S V^dagger  <=>  M^dagger = V S U^dagger. Off the
  // hot path (the photonic engines decompose square matrices), so the
  // adjoint temporary is acceptable.
  SvdResult t;
  svd_tall(m.adjoint(), tol, ws, t);
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.sigma = std::move(t.sigma);
}

SvdResult svd(const CMat& m, double tol) {
  SvdResult out;
  SvdWorkspace ws;
  svd(m, out, ws, tol);
  return out;
}

}  // namespace aspen::lina
