#pragma once
/// \file complex_matrix.hpp
/// Dense complex matrix / vector types used throughout ASPEN.
///
/// Photonic meshes are described by N x N complex transfer matrices with
/// N <= 64 for every experiment in the paper, so a simple row-major dense
/// representation is the right tool: cache-friendly, no expression
/// templates, trivially verifiable.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace aspen::lina {

using cplx = std::complex<double>;

/// Dense complex column vector.
class CVec {
 public:
  CVec() = default;
  explicit CVec(std::size_t n) : data_(n, cplx{0.0, 0.0}) {}
  CVec(std::initializer_list<cplx> xs) : data_(xs) {}

  /// Reshape to `n` entries, zero-filled. Keeps the allocation when the
  /// capacity suffices (scratch-buffer reuse in hot loops).
  void resize(std::size_t n) { data_.assign(n, cplx{0.0, 0.0}); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] cplx& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const cplx& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] double norm() const;           ///< Euclidean (L2) norm.
  [[nodiscard]] double power() const;          ///< Sum of |x_i|^2 (optical power).
  [[nodiscard]] CVec conj() const;
  void scale(cplx s);

  [[nodiscard]] std::vector<cplx>& raw() { return data_; }
  [[nodiscard]] const std::vector<cplx>& raw() const { return data_; }

 private:
  std::vector<cplx> data_;
};

/// Inner product <a, b> = sum conj(a_i) * b_i.
[[nodiscard]] cplx dot(const CVec& a, const CVec& b);
/// Max |a_i - b_i| over all entries.
[[nodiscard]] double max_abs_diff(const CVec& a, const CVec& b);

/// Dense row-major complex matrix.
class CMat {
 public:
  CMat() = default;
  CMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// Reshape to rows x cols, zero-filled. Keeps the allocation when the
  /// capacity suffices (scratch-buffer reuse in hot loops).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, cplx{0.0, 0.0});
  }

  /// Identity matrix of size n.
  [[nodiscard]] static CMat identity(std::size_t n);
  /// Diagonal matrix from a vector of entries.
  [[nodiscard]] static CMat diag(const std::vector<cplx>& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] cplx& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] CMat operator*(const CMat& rhs) const;
  [[nodiscard]] CVec operator*(const CVec& v) const;
  [[nodiscard]] CMat operator+(const CMat& rhs) const;
  [[nodiscard]] CMat operator-(const CMat& rhs) const;
  [[nodiscard]] CMat scaled(cplx s) const;

  /// Conjugate transpose.
  [[nodiscard]] CMat adjoint() const;
  [[nodiscard]] CMat transpose() const;
  [[nodiscard]] CMat conj() const;

  [[nodiscard]] double frobenius() const;
  [[nodiscard]] cplx trace() const;
  [[nodiscard]] double max_abs() const;

  /// ||A - B||_max: largest entry-wise absolute difference.
  [[nodiscard]] double max_abs_diff(const CMat& rhs) const;

  /// True when ||A A† - I||_max < tol.
  [[nodiscard]] bool is_unitary(double tol = 1e-9) const;

  /// Matrix fidelity F = |tr(A† B)| / sqrt(tr(A†A) tr(B†B)) in [0, 1].
  /// F = 1 iff B = c A for a complex scalar c (global phase / gain is
  /// irrelevant for interferometer comparisons).
  [[nodiscard]] static double fidelity(const CMat& a, const CMat& b);

  /// Relative Frobenius error ||A - B||_F / ||A||_F.
  [[nodiscard]] static double rel_error(const CMat& a, const CMat& b);

  /// Extract column / row as vectors.
  [[nodiscard]] CVec col(std::size_t c) const;
  [[nodiscard]] CVec row(std::size_t r) const;
  void set_col(std::size_t c, const CVec& v);

  /// Human-readable dump (for diagnostics and failing-test messages).
  [[nodiscard]] std::string to_string(int precision = 4) const;

  [[nodiscard]] std::vector<cplx>& raw() { return data_; }
  [[nodiscard]] const std::vector<cplx>& raw() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Left-multiplies rows (i, j) of `m` in place by the 2x2 matrix
/// [[a, b], [c, d]] — the core operation when embedding an MZI acting on a
/// pair of adjacent waveguides into an N-port transfer matrix.
void apply_two_mode_left(CMat& m, std::size_t i, std::size_t j, cplx a,
                         cplx b, cplx c, cplx d);

/// Right-multiplies columns (i, j) of `m` in place by [[a, b], [c, d]].
void apply_two_mode_right(CMat& m, std::size_t i, std::size_t j, cplx a,
                          cplx b, cplx c, cplx d);

// -- Allocation-free in-place kernels -------------------------------------
// The batched MVM/GEMM pipeline and the mesh transfer cache call these in
// tight loops; `out` is resized in place (no allocation once warm) and must
// not alias an input.

/// out = a * b (same ikj kernel and summation order as operator*).
void mul_into(CMat& out, const CMat& a, const CMat& b);

/// out = a * x (same summation order as operator*).
void mul_vec_into(CVec& out, const CMat& a, const CVec& x);

/// out = conj(transpose(a)).
void adjoint_into(CMat& out, const CMat& a);

}  // namespace aspen::lina
