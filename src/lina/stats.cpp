#include "lina/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aspen::lina {

void Stats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
}

double Stats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Stats::stddev() const { return std::sqrt(variance()); }

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0, 100]");
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  const double idx = (p / 100.0) * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit: need >= 2 paired samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-300)
    throw std::invalid_argument("linear_fit: degenerate x");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

}  // namespace aspen::lina
