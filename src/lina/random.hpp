#pragma once
/// \file random.hpp
/// Deterministic, seedable randomness for all of ASPEN.
///
/// Every stochastic experiment in the repo (Haar ensembles, fabrication
/// error sampling, noise, fault injection campaigns) draws from an `Rng`
/// handed down explicitly — there is no hidden global generator, so every
/// table in EXPERIMENTS.md is reproducible from its stated seed.

#include <cstdint>
#include <random>
#include <vector>

#include "lina/complex_matrix.hpp"

namespace aspen::lina {

/// Thin deterministic wrapper over mt19937_64 with the distributions the
/// rest of the codebase needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : eng_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Standard normal scaled by sigma, centered on mu.
  [[nodiscard]] double gaussian(double mu = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mu, sigma)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(eng_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(eng_);
  }

  /// Poisson sample (used by shot-noise and spike encoders).
  [[nodiscard]] std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::uint64_t>(mean)(eng_);
  }

  /// Exponentially distributed waiting time with given rate (1/mean).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(eng_);
  }

  /// Standard complex Gaussian (Ginibre) entry.
  [[nodiscard]] cplx cgaussian() {
    return cplx{gaussian(0.0, 1.0), gaussian(0.0, 1.0)};
  }

  /// Derive an independent child generator (for parallel campaigns).
  [[nodiscard]] Rng fork() { return Rng(eng_()); }

  [[nodiscard]] std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

/// Haar-distributed random N x N unitary, via QR of a complex Ginibre
/// matrix with the R-diagonal phase fix (Mezzadri, AMS Notices 54 (2007)).
[[nodiscard]] CMat haar_unitary(std::size_t n, Rng& rng);

/// Random complex matrix with i.i.d. standard complex Gaussian entries.
[[nodiscard]] CMat ginibre(std::size_t rows, std::size_t cols, Rng& rng);

/// Random real matrix with entries uniform in [lo, hi], returned as CMat
/// with zero imaginary parts (weight matrices for the MVM experiments).
[[nodiscard]] CMat random_real(std::size_t rows, std::size_t cols, Rng& rng,
                               double lo = -1.0, double hi = 1.0);

/// Random unit-power complex input vector (optical field amplitudes).
[[nodiscard]] CVec random_state(std::size_t n, Rng& rng);

}  // namespace aspen::lina
