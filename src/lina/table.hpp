#pragma once
/// \file table.hpp
/// ASCII table printer for the experiment harness. Every bench binary
/// prints its results through this so EXPERIMENTS.md rows can be pasted
/// directly from `bench_*` stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace aspen::lina {

/// Column-aligned ASCII table with a title, headers, and formatted cells.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the column headers (defines column count).
  void set_header(std::vector<std::string> header);

  /// Append a row of preformatted cells; must match header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision; integers are
  /// printed without a decimal point.
  [[nodiscard]] static std::string num(double v, int precision = 4);
  /// Scientific notation (for infidelities spanning decades).
  [[nodiscard]] static std::string sci(double v, int precision = 2);

  /// Render with box-drawing separators to the stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aspen::lina
