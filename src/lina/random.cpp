#include "lina/random.hpp"

#include <cmath>
#include <stdexcept>

namespace aspen::lina {

CMat ginibre(std::size_t rows, std::size_t cols, Rng& rng) {
  CMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.cgaussian();
  return m;
}

CMat haar_unitary(std::size_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("haar_unitary: n == 0");
  // Modified Gram-Schmidt QR of a Ginibre sample. MGS is numerically
  // adequate for the N <= 64 sizes used in the experiments; unitarity is
  // asserted by tests to < 1e-10.
  CMat a = ginibre(n, n, rng);
  CMat q(n, n);
  std::vector<cplx> rdiag(n);
  for (std::size_t k = 0; k < n; ++k) {
    CVec v = a.col(k);
    for (std::size_t j = 0; j < k; ++j) {
      const CVec qj = q.col(j);
      const cplx proj = dot(qj, v);
      for (std::size_t i = 0; i < n; ++i) v[i] -= proj * qj[i];
    }
    const double nv = v.norm();
    if (nv < 1e-14) throw std::runtime_error("haar_unitary: rank deficiency");
    rdiag[k] = cplx{nv, 0.0};
    for (std::size_t i = 0; i < n; ++i) v[i] /= nv;
    q.set_col(k, v);
  }
  // Phase fix: Lambda = diag(r_kk / |r_kk|). With MGS r_kk is real-positive
  // already, but keep the general fix so the construction stays Haar even
  // if the QR variant changes.
  for (std::size_t k = 0; k < n; ++k) {
    const cplx lambda = rdiag[k] / std::abs(rdiag[k]);
    for (std::size_t i = 0; i < n; ++i) q(i, k) *= lambda;
  }
  return q;
}

CMat random_real(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                 double hi) {
  CMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      m(r, c) = cplx{rng.uniform(lo, hi), 0.0};
  return m;
}

CVec random_state(std::size_t n, Rng& rng) {
  CVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.cgaussian();
  const double nv = v.norm();
  for (std::size_t i = 0; i < n; ++i) v[i] /= nv;
  return v;
}

}  // namespace aspen::lina
