#include "lina/complex_matrix.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace aspen::lina {

double CVec::norm() const { return std::sqrt(power()); }

double CVec::power() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return s;
}

CVec CVec::conj() const {
  CVec out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = std::conj(data_[i]);
  return out;
}

void CVec::scale(cplx s) {
  for (auto& x : data_) x *= s;
}

cplx dot(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double max_abs_diff(const CVec& a, const CVec& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

CMat CMat::diag(const std::vector<cplx>& d) {
  CMat m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

CMat CMat::operator*(const CMat& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matmul: shape mismatch");
  CMat out(rows_, rhs.cols_);
  // ikj loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx aik = (*this)(i, k);
      if (aik == cplx{0.0, 0.0}) continue;
      const cplx* rhs_row = &rhs.data_[k * rhs.cols_];
      cplx* out_row = &out.data_[i * rhs.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += aik * rhs_row[j];
    }
  }
  return out;
}

CVec CMat::operator*(const CVec& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("matvec: shape mismatch");
  CVec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    cplx s{0.0, 0.0};
    const cplx* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * v[j];
    out[i] = s;
  }
  return out;
}

CMat CMat::operator+(const CMat& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("add: shape mismatch");
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

CMat CMat::operator-(const CMat& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("sub: shape mismatch");
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

CMat CMat::scaled(cplx s) const {
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

CMat CMat::adjoint() const {
  CMat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj((*this)(r, c));
  return out;
}

CMat CMat::transpose() const {
  CMat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

CMat CMat::conj() const {
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = std::conj(data_[i]);
  return out;
}

double CMat::frobenius() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

cplx CMat::trace() const {
  cplx s{0.0, 0.0};
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) s += (*this)(i, i);
  return s;
}

double CMat::max_abs() const {
  double m = 0.0;
  for (const auto& x : data_) m = std::max(m, std::abs(x));
  return m;
}

double CMat::max_abs_diff(const CMat& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

bool CMat::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const CMat p = (*this) * adjoint();
  return p.max_abs_diff(identity(rows_)) < tol;
}

double CMat::fidelity(const CMat& a, const CMat& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("fidelity: shape mismatch");
  // tr(A^dagger B) = sum_ij conj(A_ij) B_ij — O(N^2), no product formed.
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    t += std::conj(a.data_[i]) * b.data_[i];
  const double na = a.frobenius();
  const double nb = b.frobenius();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::abs(t) / (na * nb);
}

double CMat::rel_error(const CMat& a, const CMat& b) {
  const double na = a.frobenius();
  if (na == 0.0) return (a.max_abs_diff(b) == 0.0) ? 0.0 : 1.0;
  return (a - b).frobenius() / na;
}

CVec CMat::col(std::size_t c) const {
  CVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

CVec CMat::row(std::size_t r) const {
  CVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

void CMat::set_col(std::size_t c, const CVec& v) {
  assert(v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

std::string CMat::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx& x = (*this)(r, c);
      os << x.real() << (x.imag() >= 0 ? "+" : "") << x.imag() << "i ";
    }
    os << "]\n";
  }
  return os.str();
}

void apply_two_mode_left(CMat& m, std::size_t i, std::size_t j, cplx a,
                         cplx b, cplx c, cplx d) {
  assert(i < m.rows() && j < m.rows() && i != j);
  for (std::size_t col = 0; col < m.cols(); ++col) {
    const cplx mi = m(i, col);
    const cplx mj = m(j, col);
    m(i, col) = a * mi + b * mj;
    m(j, col) = c * mi + d * mj;
  }
}

void mul_into(CMat& out, const CMat& a, const CMat& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("mul_into: shape mismatch");
  assert(&out != &a && &out != &b);
  out.resize(a.rows(), b.cols());
  const cplx* adata = a.raw().data();
  const cplx* bdata = b.raw().data();
  cplx* odata = out.raw().data();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const cplx aik = adata[i * a.cols() + k];
      if (aik == cplx{0.0, 0.0}) continue;
      const cplx* brow = &bdata[k * n];
      cplx* orow = &odata[i * n];
      for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void mul_vec_into(CVec& out, const CMat& a, const CVec& x) {
  if (a.cols() != x.size())
    throw std::invalid_argument("mul_vec_into: shape mismatch");
  assert(&out != &x);
  out.resize(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    cplx s{0.0, 0.0};
    const cplx* row = &a.raw()[i * a.cols()];
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    out[i] = s;
  }
}

void adjoint_into(CMat& out, const CMat& a) {
  assert(&out != &a);
  out.resize(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      out(c, r) = std::conj(a(r, c));
}

void apply_two_mode_right(CMat& m, std::size_t i, std::size_t j, cplx a,
                          cplx b, cplx c, cplx d) {
  assert(i < m.cols() && j < m.cols() && i != j);
  for (std::size_t row = 0; row < m.rows(); ++row) {
    const cplx mi = m(row, i);
    const cplx mj = m(row, j);
    m(row, i) = mi * a + mj * c;
    m(row, j) = mi * b + mj * d;
  }
}

}  // namespace aspen::lina
