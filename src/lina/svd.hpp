#pragma once
/// \file svd.hpp
/// Complex singular value decomposition via one-sided Jacobi.
///
/// The photonic MVM engine programs an arbitrary matrix M onto hardware as
/// M = U . diag(sigma) . V^dagger — V^dagger and U map onto two unitary MZI
/// meshes and sigma onto a column of MZI attenuators (Section 4 of the
/// paper; standard since Miller, Photon. Res. 1, 1 (2013)). One-sided
/// Jacobi is chosen because it is simple to verify, unconditionally stable
/// for the small dense matrices used here, and delivers singular vectors
/// orthonormal to machine precision.

#include "lina/complex_matrix.hpp"

namespace aspen::lina {

/// Result of `svd(M)`: M = u * diag(sigma) * v.adjoint().
/// For an m x n input with m >= n: u is m x n with orthonormal columns,
/// v is n x n unitary, sigma is length n, non-negative, descending.
/// For m < n the roles are derived from the decomposition of M^dagger.
struct SvdResult {
  CMat u;
  std::vector<double> sigma;
  CMat v;

  /// Reassemble u * diag(sigma) * v^dagger (for tests / diagnostics).
  [[nodiscard]] CMat reconstruct() const;
  /// Largest singular value (0 for empty sigma).
  [[nodiscard]] double sigma_max() const;
};

/// One-sided Jacobi SVD. Throws std::invalid_argument on empty input.
/// `tol` bounds the relative off-diagonal residual at convergence.
[[nodiscard]] SvdResult svd(const CMat& m, double tol = 1e-12);

/// Reusable scratch for the workspace-based svd() overload: holds the
/// Jacobi working copy and the bookkeeping vectors so repeated
/// decompositions of same-shape matrices allocate nothing once warm
/// (the photonic weight-programming path decomposes one N x N matrix
/// per set_matrix miss).
struct SvdWorkspace {
  CMat a;                          ///< column-orthogonalized working copy
  CMat v;                          ///< accumulated right rotations
  std::vector<double> sig;         ///< column norms
  std::vector<std::size_t> order;  ///< descending sort permutation
  CVec cand;                       ///< null-space basis completion scratch
};

/// Workspace-reusing variant of svd(): identical results (same
/// operations in the same order), writing into `out` and scratching in
/// `ws` instead of allocating per call.
void svd(const CMat& m, SvdResult& out, SvdWorkspace& ws, double tol = 1e-12);

}  // namespace aspen::lina
