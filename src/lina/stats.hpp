#pragma once
/// \file stats.hpp
/// Streaming statistics used by every experiment harness: Welford
/// mean/variance, min/max, and retained-sample percentiles.

#include <cstddef>
#include <vector>

namespace aspen::lina {

/// Streaming accumulator. `add` is O(1); percentiles retain samples.
class Stats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Linear-interpolated percentile, p in [0, 100]. Sorts retained samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<double> samples_;
};

/// Ordinary least squares fit y = a + b x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace aspen::lina
