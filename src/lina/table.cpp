#include "lina/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aspen::lina {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size())
    throw std::invalid_argument("Table: row width != header width");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  if (std::abs(v - std::round(v)) < 1e-12 && std::abs(v) < 1e15) {
    os << static_cast<long long>(std::llround(v));
  } else {
    os.precision(precision);
    os << std::fixed << v;
  }
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::scientific << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto hline = [&]() {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  if (header_.empty()) return;
  hline();
  emit(header_);
  hline();
  for (const auto& row : rows_) emit(row);
  hline();
}

}  // namespace aspen::lina
