#pragma once
/// \file tensor.hpp
/// Minimal real dense matrix for the NN workload substrate. Row-major,
/// shaped (rows x cols); biases and activations are handled explicitly by
/// the layers to keep this type small and obvious.

#include <cstddef>
#include <vector>

namespace aspen::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix scaled(double s) const;
  [[nodiscard]] double max_abs() const;

  /// Column view / assignment helpers.
  [[nodiscard]] std::vector<double> col(std::size_t c) const;
  void set_col(std::size_t c, const std::vector<double>& v);

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise ReLU (in place variant returns reference semantics copy).
[[nodiscard]] Matrix relu(const Matrix& m);
/// Derivative mask of ReLU at pre-activation values.
[[nodiscard]] Matrix relu_grad(const Matrix& pre);
/// Column-wise softmax (columns are samples).
[[nodiscard]] Matrix softmax_columns(const Matrix& logits);

}  // namespace aspen::nn
