#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aspen::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, lina::Rng& rng) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need >= 2 sizes");
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    DenseLayer layer;
    layer.weights = Matrix(sizes[l + 1], sizes[l]);
    layer.bias.assign(sizes[l + 1], 0.0);
    const double he = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    for (auto& w : layer.weights.raw()) w = rng.gaussian(0.0, he);
    layers_.push_back(std::move(layer));
  }
}

Matrix Mlp::forward(const Matrix& x) const {
  Matrix act = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = layers_[l].weights * act;
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t c = 0; c < z.cols(); ++c) z(r, c) += layers_[l].bias[r];
    act = (l + 1 < layers_.size()) ? relu(z) : z;
  }
  return act;
}

std::vector<int> Mlp::predict(const Matrix& x) const {
  const Matrix logits = forward(x);
  std::vector<int> out(logits.cols());
  for (std::size_t c = 0; c < logits.cols(); ++c) {
    std::size_t best = 0;
    for (std::size_t r = 1; r < logits.rows(); ++r)
      if (logits(r, c) > logits(best, c)) best = r;
    out[c] = static_cast<int>(best);
  }
  return out;
}

double Mlp::accuracy(const Dataset& d) const {
  const std::vector<int> pred = predict(d.inputs);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == d.labels[i]) ++hits;
  return d.size() ? static_cast<double>(hits) / static_cast<double>(d.size())
                  : 0.0;
}

double Mlp::train_epoch(const Dataset& d, double learning_rate,
                        int batch_size, lina::Rng& rng) {
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < d.size();
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t count =
        std::min(static_cast<std::size_t>(batch_size), d.size() - start);
    Matrix x(d.features(), count);
    std::vector<int> y(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t src = order[start + i];
      for (std::size_t f = 0; f < d.features(); ++f)
        x(f, i) = d.inputs(f, src);
      y[i] = d.labels[src];
    }

    // Forward pass, caching activations and pre-activations.
    std::vector<Matrix> acts{x};
    std::vector<Matrix> pres;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      Matrix z = layers_[l].weights * acts.back();
      for (std::size_t r = 0; r < z.rows(); ++r)
        for (std::size_t c = 0; c < z.cols(); ++c)
          z(r, c) += layers_[l].bias[r];
      pres.push_back(z);
      acts.push_back(l + 1 < layers_.size() ? relu(z) : z);
    }

    // Softmax cross-entropy gradient at the output.
    Matrix probs = softmax_columns(acts.back());
    double loss = 0.0;
    for (std::size_t c = 0; c < count; ++c)
      loss -= std::log(
          std::max(probs(static_cast<std::size_t>(y[c]), c), 1e-12));
    loss_sum += loss / static_cast<double>(count);
    ++batches;

    Matrix delta = probs;  // dL/dz for the final layer
    for (std::size_t c = 0; c < count; ++c)
      delta(static_cast<std::size_t>(y[c]), c) -= 1.0;
    delta = delta.scaled(1.0 / static_cast<double>(count));

    // Backward pass.
    for (std::size_t l = layers_.size(); l-- > 0;) {
      const Matrix grad_w = delta * acts[l].transpose();
      std::vector<double> grad_b(layers_[l].bias.size(), 0.0);
      for (std::size_t r = 0; r < delta.rows(); ++r)
        for (std::size_t c = 0; c < delta.cols(); ++c)
          grad_b[r] += delta(r, c);

      if (l > 0) {
        Matrix next = layers_[l].weights.transpose() * delta;
        const Matrix mask = relu_grad(pres[l - 1]);
        for (std::size_t i = 0; i < next.raw().size(); ++i)
          next.raw()[i] *= mask.raw()[i];
        delta = std::move(next);
      }

      for (std::size_t i = 0; i < grad_w.raw().size(); ++i)
        layers_[l].weights.raw()[i] -= learning_rate * grad_w.raw()[i];
      for (std::size_t r = 0; r < grad_b.size(); ++r)
        layers_[l].bias[r] -= learning_rate * grad_b[r];
    }
  }
  return batches ? loss_sum / static_cast<double>(batches) : 0.0;
}

double Mlp::train(const Dataset& d, int epochs, double learning_rate,
                  int batch_size, lina::Rng& rng) {
  for (int e = 0; e < epochs; ++e)
    (void)train_epoch(d, learning_rate, batch_size, rng);
  return accuracy(d);
}

}  // namespace aspen::nn
