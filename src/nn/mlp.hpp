#pragma once
/// \file mlp.hpp
/// A small multilayer perceptron with softmax cross-entropy SGD training.
/// This is the workload generator for the accelerator experiments: train
/// digitally, then map the trained dense layers onto the photonic MVM
/// core (nn/photonic_backend.hpp) and measure accuracy under device
/// physics (PCM levels, drift, noise — experiment E3).

#include <vector>

#include "lina/random.hpp"
#include "nn/dataset.hpp"
#include "nn/tensor.hpp"

namespace aspen::nn {

struct DenseLayer {
  Matrix weights;             ///< (out x in)
  std::vector<double> bias;   ///< size out
};

class Mlp {
 public:
  /// Layer sizes, e.g. {64, 32, 10}. Weights are He-initialized.
  Mlp(const std::vector<std::size_t>& sizes, lina::Rng& rng);

  /// Logits for a batch (features x samples).
  [[nodiscard]] Matrix forward(const Matrix& x) const;
  /// Class predictions for a batch.
  [[nodiscard]] std::vector<int> predict(const Matrix& x) const;
  /// Fraction of correctly classified samples.
  [[nodiscard]] double accuracy(const Dataset& d) const;

  /// One SGD epoch over the dataset; returns mean cross-entropy loss.
  double train_epoch(const Dataset& d, double learning_rate, int batch_size,
                     lina::Rng& rng);
  /// Full training loop; returns final training accuracy.
  double train(const Dataset& d, int epochs, double learning_rate,
               int batch_size, lina::Rng& rng);

  [[nodiscard]] const std::vector<DenseLayer>& layers() const {
    return layers_;
  }
  [[nodiscard]] std::vector<DenseLayer>& layers() { return layers_; }

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace aspen::nn
