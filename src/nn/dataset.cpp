#include "nn/dataset.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>
#include <string_view>

namespace aspen::nn {

namespace {

// 8x8 glyph templates, '#' = ink. Hand-drawn to be mutually
// distinguishable under noise and jitter.
constexpr std::array<std::string_view, 10> kGlyphs = {
    // 0
    "..####.."
    ".#....#."
    ".#....#."
    ".#....#."
    ".#....#."
    ".#....#."
    ".#....#."
    "..####..",
    // 1
    "...##..."
    "..###..."
    "...##..."
    "...##..."
    "...##..."
    "...##..."
    "...##..."
    ".######.",
    // 2
    "..####.."
    ".#....#."
    "......#."
    ".....#.."
    "....#..."
    "...#...."
    "..#....."
    ".######.",
    // 3
    ".#####.."
    "......#."
    "......#."
    "..####.."
    "......#."
    "......#."
    "......#."
    ".#####..",
    // 4
    "....##.."
    "...#.#.."
    "..#..#.."
    ".#...#.."
    ".######."
    ".....#.."
    ".....#.."
    ".....#..",
    // 5
    ".######."
    ".#......"
    ".#......"
    ".#####.."
    "......#."
    "......#."
    ".#....#."
    "..####..",
    // 6
    "..####.."
    ".#......"
    ".#......"
    ".#####.."
    ".#....#."
    ".#....#."
    ".#....#."
    "..####..",
    // 7
    ".######."
    "......#."
    ".....#.."
    "....#..."
    "....#..."
    "...#...."
    "...#...."
    "...#....",
    // 8
    "..####.."
    ".#....#."
    ".#....#."
    "..####.."
    ".#....#."
    ".#....#."
    ".#....#."
    "..####..",
    // 9
    "..####.."
    ".#....#."
    ".#....#."
    "..#####."
    "......#."
    "......#."
    "......#."
    "..####..",
};

double glyph_pixel(int digit, int row, int col) {
  if (row < 0 || row >= 8 || col < 0 || col >= 8) return 0.0;
  return kGlyphs[static_cast<std::size_t>(digit)]
                [static_cast<std::size_t>(row * 8 + col)] == '#'
             ? 1.0
             : 0.0;
}

}  // namespace

Dataset make_digits(int per_class, lina::Rng& rng, double noise_sigma,
                    bool jitter) {
  if (per_class <= 0) throw std::invalid_argument("make_digits: per_class");
  Dataset d;
  d.classes = 10;
  const int total = 10 * per_class;
  d.inputs = Matrix(64, static_cast<std::size_t>(total));
  d.labels.resize(static_cast<std::size_t>(total));
  int s = 0;
  for (int digit = 0; digit < 10; ++digit) {
    for (int k = 0; k < per_class; ++k, ++s) {
      const int dr =
          jitter ? static_cast<int>(rng.uniform_int(0, 2)) - 1 : 0;
      const int dc =
          jitter ? static_cast<int>(rng.uniform_int(0, 2)) - 1 : 0;
      for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
          double v = glyph_pixel(digit, r - dr, c - dc);
          v += rng.gaussian(0.0, noise_sigma);
          d.inputs(static_cast<std::size_t>(r * 8 + c),
                   static_cast<std::size_t>(s)) = std::clamp(v, 0.0, 1.0);
        }
      }
      d.labels[static_cast<std::size_t>(s)] = digit;
    }
  }
  return d;
}

Dataset make_blobs(int classes, int dims, int per_class, lina::Rng& rng,
                   double spread) {
  if (classes < 2 || dims < 1 || per_class < 1)
    throw std::invalid_argument("make_blobs: bad shape");
  Dataset d;
  d.classes = classes;
  const int total = classes * per_class;
  d.inputs = Matrix(static_cast<std::size_t>(dims),
                    static_cast<std::size_t>(total));
  d.labels.resize(static_cast<std::size_t>(total));
  // Deterministic cluster centers in [0.2, 0.8]^dims.
  std::vector<std::vector<double>> centers(static_cast<std::size_t>(classes));
  lina::Rng center_rng(20240623);  // fixed: centers independent of `rng`
  for (auto& c : centers) {
    c.resize(static_cast<std::size_t>(dims));
    for (auto& x : c) x = center_rng.uniform(0.2, 0.8);
  }
  int s = 0;
  for (int k = 0; k < classes; ++k) {
    for (int i = 0; i < per_class; ++i, ++s) {
      for (int f = 0; f < dims; ++f) {
        const double v = centers[static_cast<std::size_t>(k)]
                                [static_cast<std::size_t>(f)] +
                         rng.gaussian(0.0, spread);
        d.inputs(static_cast<std::size_t>(f), static_cast<std::size_t>(s)) =
            std::clamp(v, 0.0, 1.0);
      }
      d.labels[static_cast<std::size_t>(s)] = k;
    }
  }
  return d;
}

Split split_dataset(const Dataset& d, double train_fraction, lina::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("split_dataset: fraction out of (0,1)");
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  const auto n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(d.size()));

  const auto take = [&](std::size_t from, std::size_t count) {
    Dataset out;
    out.classes = d.classes;
    out.inputs = Matrix(d.features(), count);
    out.labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t src = idx[from + i];
      for (std::size_t f = 0; f < d.features(); ++f)
        out.inputs(f, i) = d.inputs(f, src);
      out.labels[i] = d.labels[src];
    }
    return out;
  };

  Split s;
  s.train = take(0, n_train);
  s.test = take(n_train, d.size() - n_train);
  return s;
}

}  // namespace aspen::nn
