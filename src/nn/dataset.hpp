#pragma once
/// \file dataset.hpp
/// Deterministic synthetic datasets for the edge-inference experiments.
/// The paper's workloads are edge-AI classification tasks; the repository
/// stays hermetic (no downloads) by generating them procedurally:
///
///  - `digits`: 8x8 glyph bitmaps of '0'..'9' with per-pixel Gaussian
///    noise and +-1 pixel jitter — a stand-in with the same shape as
///    sklearn's classic digits task (64-dim input, 10 classes).
///  - `blobs`: K Gaussian clusters in D dimensions — a linearly separable
///    sanity workload.

#include <cstdint>
#include <vector>

#include "lina/random.hpp"
#include "nn/tensor.hpp"

namespace aspen::nn {

struct Dataset {
  Matrix inputs;            ///< (features x samples), values in [0, 1]
  std::vector<int> labels;  ///< size = samples
  int classes = 0;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] std::size_t features() const { return inputs.rows(); }
};

/// Synthetic 8x8 digits: `per_class` samples per digit class.
/// `noise_sigma` is the per-pixel Gaussian noise; `jitter` enables +-1
/// pixel random shifts.
[[nodiscard]] Dataset make_digits(int per_class, lina::Rng& rng,
                                  double noise_sigma = 0.15,
                                  bool jitter = true);

/// Gaussian blobs: `classes` isotropic clusters in `dims` dimensions.
[[nodiscard]] Dataset make_blobs(int classes, int dims, int per_class,
                                 lina::Rng& rng, double spread = 0.15);

/// Deterministic train/test split (shuffles with the provided RNG).
struct Split {
  Dataset train;
  Dataset test;
};
[[nodiscard]] Split split_dataset(const Dataset& d, double train_fraction,
                                  lina::Rng& rng);

}  // namespace aspen::nn
