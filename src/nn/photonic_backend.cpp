#include "nn/photonic_backend.hpp"

#include <cmath>
#include <stdexcept>

namespace aspen::nn {

using aspen::lina::CMat;
using aspen::lina::cplx;

PhotonicBackend::PhotonicBackend(PhotonicBackendConfig cfg)
    : cfg_(cfg), gemm_(cfg.gemm) {}

void PhotonicBackend::set_pcm_drift_time(double seconds) {
  drift_time_s_ = seconds;
}

Matrix PhotonicBackend::matmul(const Matrix& w, const Matrix& x) {
  if (w.cols() != x.rows())
    throw std::invalid_argument("PhotonicBackend::matmul: shape mismatch");
  const std::size_t n = gemm_.config().mvm.ports;
  const std::size_t out_dim = w.rows();
  const std::size_t in_dim = w.cols();
  const std::size_t batch = x.cols();

  // Normalize inputs into the modulator's [-1, 1] range.
  const double xmax = x.max_abs();
  Matrix c(out_dim, batch);
  if (xmax == 0.0) return c;
  const double inv = 1.0 / xmax;

  const std::size_t tiles_r = (out_dim + n - 1) / n;
  const std::size_t tiles_k = (in_dim + n - 1) / n;

  // Tile scratch hoisted out of the loops; resize() reuses the storage
  // (and re-zeros it, which doubles as the zero padding).
  CMat xt;
  CMat wt;
  for (std::size_t kt = 0; kt < tiles_k; ++kt) {
    // Input tile (zero-padded) as complex columns.
    xt.resize(n, batch);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t src = kt * n + r;
      if (src >= in_dim) break;
      for (std::size_t b = 0; b < batch; ++b)
        xt(r, b) = cplx{x(src, b) * inv, 0.0};
    }
    for (std::size_t rt = 0; rt < tiles_r; ++rt) {
      wt.resize(n, n);
      bool nonzero = false;
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t wr = rt * n + r;
        if (wr >= out_dim) break;
        for (std::size_t col = 0; col < n; ++col) {
          const std::size_t wc = kt * n + col;
          if (wc >= in_dim) break;
          wt(r, col) = cplx{w(wr, wc), 0.0};
          nonzero = nonzero || w(wr, wc) != 0.0;
        }
      }
      if (!nonzero) continue;

      const auto program_and_run = [&]() -> CMat {
        gemm_.set_weights(wt);
        if (drift_time_s_ > 0.0)
          gemm_.engine().set_pcm_drift_time(drift_time_s_);
        ++totals_.tiles_programmed;
        CMat y = gemm_.multiply(xt);
        const auto& st = gemm_.last_stats();
        totals_.macs += st.macs;
        totals_.optical_time_s += st.wall_time_s;
        totals_.energy_j += st.total_energy_j();
        return y;
      };

      CMat part = program_and_run();
      if (cfg_.gemm.abft.enabled) {
        // Detect -> bounded retry -> digital fallback. Reprogramming the
        // tile rewrites every mesh phase from the host-held weights, so a
        // retry clears transient configuration upsets; a fault that
        // survives the retry budget is treated as permanent and the tile
        // is recomputed digitally (exact, so the layer output stays
        // trustworthy at the cost of this tile's speedup).
        if (gemm_.last_abft().counts.detected > 0) ++recovery_.tiles_detected;
        if (gemm_.last_abft().counts.corrected > 0)
          ++recovery_.tiles_corrected;
        unsigned tries = 0;
        while (gemm_.last_abft().counts.uncorrectable > 0 &&
               tries < cfg_.max_tile_retries) {
          ++tries;
          ++recovery_.tiles_retried;
          part = program_and_run();
        }
        if (gemm_.last_abft().counts.uncorrectable > 0) {
          ++recovery_.tiles_fell_back;
          digital_tile(wt, xt, part);
        }
      }

      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t cr = rt * n + r;
        if (cr >= out_dim) break;
        for (std::size_t b = 0; b < batch; ++b)
          c(cr, b) += part(r, b).real() * xmax;
      }
    }
  }
  return c;
}

void PhotonicBackend::digital_tile(const CMat& wt, const CMat& xt,
                                   CMat& part) const {
  const std::size_t n = wt.rows();
  const std::size_t batch = xt.cols();
  part.resize(n, batch);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t b = 0; b < batch; ++b) {
      cplx acc{0.0, 0.0};
      for (std::size_t k = 0; k < wt.cols(); ++k) acc += wt(r, k) * xt(k, b);
      part(r, b) = acc;
    }
}

Matrix PhotonicBackend::forward(const Mlp& mlp, const Matrix& x) {
  Matrix act = x;
  const auto& layers = mlp.layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    Matrix z = matmul(layers[l].weights, act);
    for (std::size_t r = 0; r < z.rows(); ++r)
      for (std::size_t col = 0; col < z.cols(); ++col)
        z(r, col) += layers[l].bias[r];
    act = (l + 1 < layers.size()) ? relu(z) : z;
  }
  return act;
}

double PhotonicBackend::accuracy(const Mlp& mlp, const Dataset& d) {
  const Matrix logits = forward(mlp, d.inputs);
  std::size_t hits = 0;
  for (std::size_t c = 0; c < logits.cols(); ++c) {
    std::size_t best = 0;
    for (std::size_t r = 1; r < logits.rows(); ++r)
      if (logits(r, c) > logits(best, c)) best = r;
    if (static_cast<int>(best) == d.labels[c]) ++hits;
  }
  return d.size() ? static_cast<double>(hits) / static_cast<double>(d.size())
                  : 0.0;
}

}  // namespace aspen::nn
