#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aspen::nn {

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += a * rhs(k, j);
    }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_col(std::size_t c, const std::vector<double>& v) {
  if (v.size() != rows_)
    throw std::invalid_argument("Matrix::set_col: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix relu(const Matrix& m) {
  Matrix out = m;
  for (auto& x : out.raw()) x = std::max(0.0, x);
  return out;
}

Matrix relu_grad(const Matrix& pre) {
  Matrix out = pre;
  for (auto& x : out.raw()) x = x > 0.0 ? 1.0 : 0.0;
  return out;
}

Matrix softmax_columns(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t c = 0; c < logits.cols(); ++c) {
    double mx = -1e300;
    for (std::size_t r = 0; r < logits.rows(); ++r)
      mx = std::max(mx, logits(r, c));
    double sum = 0.0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      out(r, c) = std::exp(logits(r, c) - mx);
      sum += out(r, c);
    }
    for (std::size_t r = 0; r < logits.rows(); ++r) out(r, c) /= sum;
  }
  return out;
}

}  // namespace aspen::nn
