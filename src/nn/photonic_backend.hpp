#pragma once
/// \file photonic_backend.hpp
/// Executes trained MLP inference on the photonic accelerator: each dense
/// layer's weight matrix is tiled into N x N blocks mapped onto the MVM
/// core; partial products are accumulated digitally (the standard
/// analog-tile + digital-reduction arrangement). This is the bridge that
/// turns accelerator physics (PCM levels, drift, shot noise, crosstalk)
/// into end-task accuracy numbers for experiment E3.

#include <memory>

#include "core/gemm_core.hpp"
#include "nn/mlp.hpp"

namespace aspen::nn {

struct PhotonicBackendConfig {
  core::GemmConfig gemm;  ///< engine config; gemm.mvm.ports = tile size
};

/// Aggregated cost of everything executed on the backend so far.
struct BackendTotals {
  std::uint64_t tiles_programmed = 0;
  std::uint64_t macs = 0;
  double optical_time_s = 0.0;
  double energy_j = 0.0;
};

class PhotonicBackend {
 public:
  explicit PhotonicBackend(PhotonicBackendConfig cfg);

  /// C = W (out x in) * X (in x batch) via photonic tiles. Inputs are
  /// normalized to the modulator range internally and rescaled back.
  [[nodiscard]] Matrix matmul(const Matrix& w, const Matrix& x);

  /// Full MLP forward pass with all dense products on the accelerator
  /// (bias add and ReLU are digital, as in a host-attached deployment).
  [[nodiscard]] Matrix forward(const Mlp& mlp, const Matrix& x);

  /// Classification accuracy of the photonic-executed model.
  [[nodiscard]] double accuracy(const Mlp& mlp, const Dataset& d);

  /// Age all PCM weights by `seconds` (drift study hook).
  void set_pcm_drift_time(double seconds);

  [[nodiscard]] const BackendTotals& totals() const { return totals_; }
  [[nodiscard]] core::GemmCore& core() { return gemm_; }

 private:
  PhotonicBackendConfig cfg_;
  core::GemmCore gemm_;
  BackendTotals totals_;
  double drift_time_s_ = 0.0;
};

}  // namespace aspen::nn
