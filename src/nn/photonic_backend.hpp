#pragma once
/// \file photonic_backend.hpp
/// Executes trained MLP inference on the photonic accelerator: each dense
/// layer's weight matrix is tiled into N x N blocks mapped onto the MVM
/// core; partial products are accumulated digitally (the standard
/// analog-tile + digital-reduction arrangement). This is the bridge that
/// turns accelerator physics (PCM levels, drift, shot noise, crosstalk)
/// into end-task accuracy numbers for experiment E3.

#include <memory>

#include "core/gemm_core.hpp"
#include "nn/mlp.hpp"

namespace aspen::nn {

struct PhotonicBackendConfig {
  core::GemmConfig gemm;  ///< engine config; gemm.mvm.ports = tile size
  /// Tile-level recovery (active when gemm.abft.enabled): a tile whose
  /// ABFT check reports uncorrectable columns is reprogrammed and re-run
  /// up to this many times; if the check still fails, the tile's partial
  /// product is recomputed digitally (the host keeps the exact weights).
  unsigned max_tile_retries = 2;
};

/// Aggregated cost of everything executed on the backend so far.
struct BackendTotals {
  std::uint64_t tiles_programmed = 0;
  std::uint64_t macs = 0;
  double optical_time_s = 0.0;
  double energy_j = 0.0;
};

/// Tile-level fault accounting (detect -> bounded retry -> digital
/// fallback); only ABFT-enabled backends ever move these counters.
struct BackendRecoveryStats {
  std::uint64_t tiles_detected = 0;   ///< tiles with >= 1 flagged column
  std::uint64_t tiles_corrected = 0;  ///< tiles ABFT repaired in place
  std::uint64_t tiles_retried = 0;    ///< reprogram+rerun attempts
  std::uint64_t tiles_fell_back = 0;  ///< tiles recomputed digitally
};

class PhotonicBackend {
 public:
  explicit PhotonicBackend(PhotonicBackendConfig cfg);

  /// C = W (out x in) * X (in x batch) via photonic tiles. Inputs are
  /// normalized to the modulator range internally and rescaled back.
  [[nodiscard]] Matrix matmul(const Matrix& w, const Matrix& x);

  /// Full MLP forward pass with all dense products on the accelerator
  /// (bias add and ReLU are digital, as in a host-attached deployment).
  [[nodiscard]] Matrix forward(const Mlp& mlp, const Matrix& x);

  /// Classification accuracy of the photonic-executed model.
  [[nodiscard]] double accuracy(const Mlp& mlp, const Dataset& d);

  /// Age all PCM weights by `seconds` (drift study hook).
  void set_pcm_drift_time(double seconds);

  [[nodiscard]] const BackendTotals& totals() const { return totals_; }
  [[nodiscard]] const BackendRecoveryStats& recovery() const {
    return recovery_;
  }
  [[nodiscard]] core::GemmCore& core() { return gemm_; }

 private:
  /// Exact digital recomputation of one tile product (the fallback path).
  void digital_tile(const lina::CMat& wt, const lina::CMat& xt,
                    lina::CMat& part) const;

  PhotonicBackendConfig cfg_;
  core::GemmCore gemm_;
  BackendTotals totals_;
  BackendRecoveryStats recovery_;
  double drift_time_s_ = 0.0;
};

}  // namespace aspen::nn
