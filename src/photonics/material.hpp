#pragma once
/// \file material.hpp
/// Optical material models for the augmented SOI platform (paper Section 2
/// and 3): phase-change materials (PCMs) with distinct amorphous and
/// crystalline complex refractive indices at 1550 nm, and the figure of
/// merit FOM = delta_n / delta_k the paper uses to compare candidates
/// (GSST, GeSe vs. the GST baseline).
///
/// Values are literature-representative compact-model endpoints; every
/// number is a plain struct field a user can refit to measured data.

#include <complex>
#include <string>

namespace aspen::phot {

/// Complex refractive index n + i*k at a fixed wavelength.
struct OpticalConstants {
  double n = 1.0;  ///< Real refractive index.
  double k = 0.0;  ///< Extinction coefficient (>= 0).

  [[nodiscard]] std::complex<double> as_complex() const { return {n, k}; }
  /// Complex relative permittivity epsilon = (n + ik)^2.
  [[nodiscard]] std::complex<double> permittivity() const;
};

/// A phase-change material characterized by its two stable phases.
struct PcmMaterial {
  std::string name;
  OpticalConstants amorphous;
  OpticalConstants crystalline;
  /// Specific heat / kinetics are abstracted into energy-per-transition
  /// figures used by the energy model (Section 3 "heaters above PCM").
  double set_energy_j = 100e-12;    ///< Full crystallization (SET) energy.
  double reset_energy_j = 500e-12;  ///< Melt-quench (RESET) energy.
  double set_time_s = 100e-9;       ///< SET pulse duration (slow, low power).
  double reset_time_s = 10e-9;      ///< RESET pulse duration (fast, high power).
  /// Amorphous-phase structural-relaxation (drift) coefficient; the
  /// effective index of the amorphous fraction drifts as
  /// nu * ln(1 + t / t0). Optical drift is weak compared to electrical
  /// resistance drift.
  double drift_nu = 0.004;
  double drift_t0_s = 1.0;

  /// delta n = n_cr - n_am (index contrast used for phase shifting).
  [[nodiscard]] double delta_n() const;
  /// delta k = k_cr - k_am (loss contrast paid for switching).
  [[nodiscard]] double delta_k() const;
  /// Paper Section 3: FOM = delta_n / delta_k, larger is better.
  [[nodiscard]] double figure_of_merit() const;

  /// Effective optical constants at crystalline fraction x in [0, 1],
  /// via Lorentz-Lorenz effective-medium mixing of the permittivities.
  [[nodiscard]] OpticalConstants at_fraction(double x) const;
};

/// Literature-representative PCM database (1550 nm endpoints).
/// GST-225: large contrast, lossy crystalline phase (baseline).
[[nodiscard]] PcmMaterial make_gst225();
/// GSST (Ge2Sb2Se4Te1): near-transparent amorphous phase, FOM ~ 5.
[[nodiscard]] PcmMaterial make_gsst();
/// GeSe: small contrast but extremely low loss, FOM >> 10 (Soref 2015,
/// Dory 2020 — the chalcogenides the paper names).
[[nodiscard]] PcmMaterial make_gese();
/// Lookup by case-insensitive name ("gst", "gsst", "gese");
/// throws std::invalid_argument for unknown names.
[[nodiscard]] PcmMaterial pcm_by_name(const std::string& name);

}  // namespace aspen::phot
