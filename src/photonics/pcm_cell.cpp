#include "photonics/pcm_cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aspen::phot {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

PcmCell::PcmCell(PcmCellConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.level_bits < 1 || cfg_.level_bits > 16)
    throw std::invalid_argument("PcmCell: level_bits must be in [1, 16]");
  if (cfg_.patch_length_m <= 0.0 || cfg_.confinement <= 0.0)
    throw std::invalid_argument("PcmCell: non-positive geometry");
}

double PcmCell::phase_of_fraction(double x) const {
  const OpticalConstants base = cfg_.material.at_fraction(0.0);
  const OpticalConstants eff = cfg_.material.at_fraction(x);
  return kTwoPi / cfg_.wavelength_m * cfg_.confinement *
         (eff.n - base.n) * cfg_.patch_length_m;
}

double PcmCell::amplitude_of_fraction(double x) const {
  const OpticalConstants eff = cfg_.material.at_fraction(x);
  // Field attenuation through the patch: exp(-2*pi*k_eff*Gamma*L/lambda).
  const double alpha =
      kTwoPi * eff.k * cfg_.confinement * cfg_.patch_length_m / cfg_.wavelength_m;
  return std::exp(-alpha);
}

double PcmCell::fraction_for_phase(double phase_rad) const {
  const double target = std::clamp(phase_rad, 0.0, max_phase());
  // phase_of_fraction is monotone increasing in x (delta_n > 0 for all
  // modelled PCMs); bisection to 1e-12 fraction resolution.
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (phase_of_fraction(mid) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double PcmCell::quantize_fraction(double x) const {
  const int n = levels();
  const double step = 1.0 / static_cast<double>(n - 1);
  const double q = std::round(std::clamp(x, 0.0, 1.0) / step) * step;
  return std::clamp(q, 0.0, 1.0);
}

void PcmCell::program_fraction(double x, lina::Rng* rng) {
  double target = quantize_fraction(x);
  if (rng != nullptr && cfg_.write_noise_sigma > 0.0)
    target = std::clamp(target + rng->gaussian(0.0, cfg_.write_noise_sigma),
                        0.0, 1.0);
  // Programming = RESET to amorphous, then partial SET to the target
  // fraction (the standard iterative multilevel scheme); energy scales
  // with the crystallized volume fraction.
  energy_spent_j_ +=
      cfg_.material.reset_energy_j + target * cfg_.material.set_energy_j;
  fraction_ = target;
  time_since_write_s_ = 0.0;
  ++write_count_;
}

void PcmCell::program_level(int level, lina::Rng* rng) {
  const int n = levels();
  if (level < 0 || level >= n)
    throw std::invalid_argument("PcmCell: level out of range");
  program_fraction(static_cast<double>(level) / static_cast<double>(n - 1),
                   rng);
}

void PcmCell::program_phase(double phase_rad, lina::Rng* rng) {
  program_fraction(fraction_for_phase(phase_rad), rng);
}

void PcmCell::accumulate(double strength) {
  if (strength <= 0.0) return;
  fraction_ = std::min(1.0, fraction_ + cfg_.accumulation_step * strength);
  // A sub-switching pulse costs energy proportional to the fraction moved.
  energy_spent_j_ +=
      cfg_.material.set_energy_j * cfg_.accumulation_step * strength;
  ++write_count_;
}

void PcmCell::reset() {
  fraction_ = 0.0;
  time_since_write_s_ = 0.0;
  energy_spent_j_ += cfg_.material.reset_energy_j;
  ++write_count_;
}

void PcmCell::advance_time(double dt_s) {
  if (dt_s < 0.0) throw std::invalid_argument("PcmCell: negative dt");
  time_since_write_s_ += dt_s;
}

double PcmCell::drift_factor() const {
  // Structural relaxation of the *amorphous* fraction perturbs the net
  // index contrast: no drift when fully amorphous (phase is zero anyway)
  // or fully crystalline; worst at intermediate levels — matching the
  // multilevel-retention behaviour reported for PCM photonics.
  const double amorphous = 1.0 - fraction_;
  const double lt =
      std::log1p(time_since_write_s_ / cfg_.material.drift_t0_s);
  return 1.0 - cfg_.material.drift_nu * amorphous * lt;
}

double PcmCell::phase() const {
  return phase_of_fraction(fraction_) * drift_factor();
}

double PcmCell::amplitude() const { return amplitude_of_fraction(fraction_); }

PcmCellConfig pcm_config_for_two_pi(const PcmMaterial& material,
                                    double confinement, double margin,
                                    int level_bits) {
  if (material.delta_n() <= 0.0)
    throw std::invalid_argument("pcm_config_for_two_pi: delta_n <= 0");
  PcmCellConfig cfg;
  cfg.material = material;
  cfg.confinement = confinement;
  cfg.level_bits = level_bits;
  // phase(x=1) = 2 pi / lambda * Gamma * delta_n_eff * L. The effective-
  // medium contrast at x = 1 equals the raw material contrast, so sizing
  // against delta_n is exact at the endpoint.
  cfg.patch_length_m =
      margin * cfg.wavelength_m / (confinement * material.delta_n());
  return cfg;
}

PcmPhaseMap::PcmPhaseMap(const PcmCellConfig& cfg) : cfg_(cfg) {
  const PcmCell probe(cfg);
  const int n = probe.levels();
  phase_.resize(n);
  amplitude_.resize(n);
  fraction_.resize(n);
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    fraction_[i] = x;
    phase_[i] = probe.phase_of_fraction(x);
    amplitude_[i] = probe.amplitude_of_fraction(x);
  }
  covers_two_pi_ = phase_.back() >= kTwoPi;
}

PcmPhaseMap::Quantized PcmPhaseMap::quantize(double phase_rad,
                                             double drift_time_s) const {
  double target = std::fmod(phase_rad, kTwoPi);
  if (target < 0.0) target += kTwoPi;
  // Nearest achievable level. Levels are monotone in phase, so a binary
  // search would do; linear scan is fine for <= 2^16 levels at
  // construction-time call rates, but quantize is hot in mesh programming,
  // so use lower_bound.
  const auto it = std::lower_bound(phase_.begin(), phase_.end(), target);
  std::size_t idx;
  if (it == phase_.begin()) {
    idx = 0;
  } else if (it == phase_.end()) {
    idx = phase_.size() - 1;
  } else {
    const std::size_t hi = static_cast<std::size_t>(it - phase_.begin());
    const std::size_t lo = hi - 1;
    idx = (target - phase_[lo] <= phase_[hi] - target) ? lo : hi;
  }
  Quantized q;
  q.amplitude = amplitude_[idx];
  double drift = 1.0;
  if (drift_time_s > 0.0) {
    const double amorphous = 1.0 - fraction_[idx];
    drift = 1.0 - cfg_.material.drift_nu * amorphous *
                      std::log1p(drift_time_s / cfg_.material.drift_t0_s);
  }
  q.phase = phase_[idx] * drift;
  return q;
}

}  // namespace aspen::phot
