#include "photonics/photodetector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::phot {

Photodetector::Photodetector(PhotodetectorConfig cfg) : cfg_(cfg) {
  if (cfg_.responsivity_a_per_w <= 0.0 || cfg_.bandwidth_hz <= 0.0)
    throw std::invalid_argument("Photodetector: non-positive parameter");
}

double Photodetector::ideal_current(double power_w) const {
  return cfg_.responsivity_a_per_w * std::max(power_w, 0.0) +
         cfg_.dark_current_a;
}

double Photodetector::noise_rms_a(double power_w) const {
  const double i = ideal_current(power_w);
  const double shot_var = 2.0 * kElementaryCharge * i * cfg_.bandwidth_hz;
  const double th = cfg_.thermal_noise_a_per_sqrt_hz;
  const double thermal_var = th * th * cfg_.bandwidth_hz;
  return std::sqrt(shot_var + thermal_var);
}

double Photodetector::measure_current(double power_w, lina::Rng& rng) const {
  return ideal_current(power_w) + rng.gaussian(0.0, noise_rms_a(power_w));
}

double Photodetector::snr(double power_w) const {
  const double sig = cfg_.responsivity_a_per_w * std::max(power_w, 0.0);
  const double n = noise_rms_a(power_w);
  if (n <= 0.0) return 1e300;
  return (sig * sig) / (n * n);
}

CoherentReceiver::CoherentReceiver(PhotodetectorConfig pd, AdcConfig adc)
    : pd_(pd), adc_(adc), det_(pd) {
  if (adc_.bits < 1 || adc_.bits > 24)
    throw std::invalid_argument("CoherentReceiver: adc bits out of range");
  if (adc_.full_scale_w <= 0.0)
    throw std::invalid_argument("CoherentReceiver: full_scale_w <= 0");
}

double CoherentReceiver::quantize_current(double current_a) const {
  const double fs_current = pd_.responsivity_a_per_w * adc_.full_scale_w;
  const double v = std::clamp(current_a / fs_current, -1.0, 1.0);
  const double levels = static_cast<double>((1 << adc_.bits) - 1);
  return std::round((v + 1.0) / 2.0 * levels) / levels * 2.0 - 1.0;
}

std::complex<double> CoherentReceiver::measure(std::complex<double> field,
                                               lina::Rng& rng) const {
  // Balanced homodyne: each quadrature produces a signed photocurrent
  // proportional to the field component, with shot noise set by the
  // local-oscillator-dominated level (approximated by full scale) plus
  // thermal noise; dark current cancels in the balanced pair.
  const double fs_field = std::sqrt(adc_.full_scale_w);
  const double r = pd_.responsivity_a_per_w;
  const double noise = det_.noise_rms_a(adc_.full_scale_w * 0.5);

  const auto read_quadrature = [&](double component) {
    const double i_sig = r * component * fs_field;  // ~ R * E * E_LO
    const double i_meas = i_sig + rng.gaussian(0.0, noise);
    return quantize_current(i_meas);
  };

  const double re = read_quadrature(field.real());
  const double im = read_quadrature(field.imag());
  // Map quantized currents back to field units.
  const double fs_current = r * adc_.full_scale_w;
  const double scale = fs_current / (r * fs_field);
  return {re * scale, im * scale};
}

}  // namespace aspen::phot
