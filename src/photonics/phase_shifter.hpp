#pragma once
/// \file phase_shifter.hpp
/// Programmable optical phase shifters: the volatile thermo-optic heater
/// (SOI baseline — burns static power to *hold* a phase, Section 3) and
/// the non-volatile PCM shifter (holds for free, pays write energy).
/// The energy-crossover experiment E4 compares exactly these two.

#include <memory>

#include "lina/random.hpp"
#include "photonics/pcm_cell.hpp"

namespace aspen::phot {

/// Common interface for programmable phase shifters.
class PhaseShifter {
 public:
  virtual ~PhaseShifter() = default;

  /// Program the target phase [rad]; implementations may quantize.
  virtual void set_phase(double phase_rad) = 0;
  /// Achieved phase right now (quantization, drift included).
  [[nodiscard]] virtual double phase() const = 0;
  /// Field-amplitude transmission of the shifter section.
  [[nodiscard]] virtual double amplitude() const = 0;
  /// Power drawn *while holding* the current phase [W].
  [[nodiscard]] virtual double static_power_w() const = 0;
  /// Cumulative energy spent on (re)programming [J].
  [[nodiscard]] virtual double write_energy_j() const = 0;
  /// Time needed to settle after a program operation [s].
  [[nodiscard]] virtual double settle_time_s() const = 0;
  /// Advance wall-clock time (drift, etc.).
  virtual void advance_time(double dt_s) = 0;
};

/// Thermo-optic heater parameters (typical SOI metal heater).
struct ThermoOpticConfig {
  double p_pi_w = 20e-3;        ///< Electrical power for a pi shift.
  double response_time_s = 10e-6;
  double insertion_loss_db = 0.05;
  /// Fraction of a heater's phase that leaks into each nearest neighbour
  /// (thermal crosstalk; consumed by the mesh error model).
  double crosstalk = 0.01;
};

/// Volatile heater: phase is linear in electrical power, so holding phi
/// costs (phi / pi) * P_pi continuously.
class ThermoOpticPhaseShifter final : public PhaseShifter {
 public:
  explicit ThermoOpticPhaseShifter(ThermoOpticConfig cfg = {});

  void set_phase(double phase_rad) override;
  [[nodiscard]] double phase() const override { return phase_; }
  [[nodiscard]] double amplitude() const override;
  [[nodiscard]] double static_power_w() const override;
  [[nodiscard]] double write_energy_j() const override { return write_energy_j_; }
  [[nodiscard]] double settle_time_s() const override {
    return cfg_.response_time_s;
  }
  void advance_time(double dt_s) override;

  /// Energy integrated so far including holding power.
  [[nodiscard]] double total_energy_j() const {
    return write_energy_j_ + hold_energy_j_;
  }
  [[nodiscard]] const ThermoOpticConfig& config() const { return cfg_; }

 private:
  ThermoOpticConfig cfg_;
  double phase_ = 0.0;
  double write_energy_j_ = 0.0;
  double hold_energy_j_ = 0.0;
};

/// Non-volatile PCM shifter: quantized multilevel phase, zero holding
/// power, per-write energy, drift over time.
class PcmPhaseShifter final : public PhaseShifter {
 public:
  explicit PcmPhaseShifter(PcmCellConfig cfg = {}, lina::Rng* rng = nullptr);

  void set_phase(double phase_rad) override;
  [[nodiscard]] double phase() const override { return cell_.phase(); }
  [[nodiscard]] double amplitude() const override { return cell_.amplitude(); }
  [[nodiscard]] double static_power_w() const override { return 0.0; }
  [[nodiscard]] double write_energy_j() const override {
    return cell_.energy_spent_j();
  }
  [[nodiscard]] double settle_time_s() const override;
  void advance_time(double dt_s) override { cell_.advance_time(dt_s); }

  [[nodiscard]] PcmCell& cell() { return cell_; }
  [[nodiscard]] const PcmCell& cell() const { return cell_; }

 private:
  PcmCell cell_;
  lina::Rng* rng_;  ///< Optional write-noise source (not owned).
};

}  // namespace aspen::phot
