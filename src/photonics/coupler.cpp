#include "photonics/coupler.hpp"

#include <algorithm>
#include <cmath>

namespace aspen::phot {

namespace {
constexpr double kPi4 = 0.78539816339744830961566084581988;
}

Transfer2 Transfer2::phases(double top, double bottom) {
  Transfer2 t;
  t.a = std::polar(1.0, top);
  t.d = std::polar(1.0, bottom);
  t.b = t.c = cplx{0.0, 0.0};
  return t;
}

Transfer2 Transfer2::operator*(const Transfer2& rhs) const {
  Transfer2 o;
  o.a = a * rhs.a + b * rhs.c;
  o.b = a * rhs.b + b * rhs.d;
  o.c = c * rhs.a + d * rhs.c;
  o.d = c * rhs.b + d * rhs.d;
  return o;
}

Transfer2 Transfer2::scaled(cplx s) const {
  Transfer2 o;
  o.a = a * s;
  o.b = b * s;
  o.c = c * s;
  o.d = d * s;
  return o;
}

double Transfer2::max_abs_diff(const Transfer2& rhs) const {
  return std::max({std::abs(a - rhs.a), std::abs(b - rhs.b),
                   std::abs(c - rhs.c), std::abs(d - rhs.d)});
}

bool Transfer2::is_unitary(double tol) const {
  // Rows of T T^dagger.
  const cplx r00 = a * std::conj(a) + b * std::conj(b);
  const cplx r01 = a * std::conj(c) + b * std::conj(d);
  const cplx r11 = c * std::conj(c) + d * std::conj(d);
  return std::abs(r00 - 1.0) < tol && std::abs(r11 - 1.0) < tol &&
         std::abs(r01) < tol;
}

Transfer2 DirectionalCoupler::transfer() const {
  const double eta = kPi4 + delta_eta;
  const double t = std::cos(eta);
  const double k = std::sin(eta);
  Transfer2 m;
  m.a = cplx{t, 0.0};
  m.b = cplx{0.0, k};
  m.c = cplx{0.0, k};
  m.d = cplx{t, 0.0};
  if (insertion_loss_db > 0.0)
    m = m.scaled(cplx{loss_db_to_amplitude(insertion_loss_db), 0.0});
  return m;
}

double DirectionalCoupler::cross_coupling() const {
  const double s = std::sin(kPi4 + delta_eta);
  return s * s;
}

}  // namespace aspen::phot
