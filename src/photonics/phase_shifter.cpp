#include "photonics/phase_shifter.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::phot {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr double kPi = 3.141592653589793238462643383280;

double wrap_two_pi(double phase) {
  double p = std::fmod(phase, kTwoPi);
  if (p < 0.0) p += kTwoPi;
  return p;
}
}  // namespace

ThermoOpticPhaseShifter::ThermoOpticPhaseShifter(ThermoOpticConfig cfg)
    : cfg_(cfg) {
  if (cfg_.p_pi_w <= 0.0)
    throw std::invalid_argument("ThermoOpticPhaseShifter: p_pi_w <= 0");
}

void ThermoOpticPhaseShifter::set_phase(double phase_rad) {
  phase_ = wrap_two_pi(phase_rad);
  // Transient energy of the program step: ramping the heater dissipates
  // roughly the new holding power over one response time.
  write_energy_j_ += static_power_w() * cfg_.response_time_s;
}

double ThermoOpticPhaseShifter::amplitude() const {
  return loss_db_to_amplitude(cfg_.insertion_loss_db);
}

double ThermoOpticPhaseShifter::static_power_w() const {
  return (phase_ / kPi) * cfg_.p_pi_w;
}

void ThermoOpticPhaseShifter::advance_time(double dt_s) {
  if (dt_s < 0.0)
    throw std::invalid_argument("ThermoOpticPhaseShifter: negative dt");
  hold_energy_j_ += static_power_w() * dt_s;
}

PcmPhaseShifter::PcmPhaseShifter(PcmCellConfig cfg, lina::Rng* rng)
    : cell_(std::move(cfg)), rng_(rng) {}

void PcmPhaseShifter::set_phase(double phase_rad) {
  cell_.program_phase(wrap_two_pi(phase_rad), rng_);
}

double PcmPhaseShifter::settle_time_s() const {
  const auto& m = cell_.config().material;
  // One RESET followed by one (partial) SET pulse.
  return m.reset_time_s + m.set_time_s;
}

}  // namespace aspen::phot
