#pragma once
/// \file mzi.hpp
/// The Mach-Zehnder interferometer cell (paper Fig. 2a): two directional
/// couplers around an internal phase shifter, preceded by an external
/// phase shifter. Supports the two cell styles the paper discusses:
///
///  - `kStandard`  — single-arm phase shifters (theta on the top internal
///    arm, phi on the top input): the classic Reck/Clements cell.
///  - `kSymmetric` — *parallel* phase-shifter blocks driving both arms
///    differentially (+x/2, -x/2): the compacted cell of Bell & Walmsley
///    (APL Photonics 2021) / the parallel-PS blocks of the Fldzhyan
///    design, which halves the per-cell optical path imbalance.
///
/// Ideal transfer in the standard convention (B = 50:50 coupler):
///   T(theta, phi) = B diag(e^{i theta}, 1) B diag(e^{i phi}, 1)
///                 = i e^{i theta/2} [[ e^{i phi} sin(theta/2),  cos(theta/2)],
///                                    [ e^{i phi} cos(theta/2), -sin(theta/2)]]

#include "photonics/coupler.hpp"

namespace aspen::phot {

enum class MziStyle {
  kStandard,   ///< theta / phi on single arms.
  kSymmetric,  ///< differential +-x/2 drive on both arms (parallel PS).
};

/// Imperfection and loss parameters of one physical MZI cell.
struct MziImperfections {
  double coupler1_delta_eta = 0.0;  ///< Input coupler imbalance [rad].
  double coupler2_delta_eta = 0.0;  ///< Output coupler imbalance [rad].
  double theta_error = 0.0;         ///< Additive internal phase error [rad].
  double phi_error = 0.0;           ///< Additive external phase error [rad].
  double coupler_loss_db = 0.05;    ///< Per-coupler insertion loss.
  double ps_loss_db = 0.05;         ///< Per-phase-shifter-section loss.
  /// Extra *state-dependent* amplitude on the arm carrying the phase
  /// shift (PCM absorption asymmetry); 1.0 = lossless.
  double theta_arm_amplitude = 1.0;
  double phi_arm_amplitude = 1.0;
};

/// Ideal MZI transfer matrix for the given style. Unitary by construction.
[[nodiscard]] Transfer2 mzi_ideal(double theta, double phi,
                                  MziStyle style = MziStyle::kStandard);

/// Physical MZI transfer with imperfections applied. For the symmetric
/// style the phase errors are applied differentially as well (each of the
/// parallel PS blocks errs independently is modelled by the caller
/// splitting its sigma across theta_error / phi_error).
[[nodiscard]] Transfer2 mzi_physical(double theta, double phi,
                                     const MziImperfections& imp,
                                     MziStyle style = MziStyle::kStandard);

/// Analytic nulling used by the Reck/Clements decompositions: given field
/// amplitudes (u, v) on the two modes *entering* the cell, returns
/// (theta, phi) such that the cell output on the chosen port vanishes.
/// For port = 1 (bottom), T(theta, phi) [u, v]^T has zero second entry;
/// for port = 0 (top), zero first entry.
struct NullingSolution {
  double theta;
  double phi;
};
[[nodiscard]] NullingSolution null_port(cplx u, cplx v, int port);

}  // namespace aspen::phot
