#pragma once
/// \file modulator.hpp
/// High-speed Mach-Zehnder input modulator (paper Section 4: "input
/// vectors are encoded into amplitude/phase of individual inputs,
/// typically using high-speed Mach Zehnder modulators"). Models DAC
/// quantization, extinction ratio, insertion loss, modulation rate and
/// per-symbol energy — the front half of the accelerator's ENOB budget.

#include <complex>

namespace aspen::phot {

struct ModulatorConfig {
  int dac_bits = 8;               ///< Drive DAC resolution.
  /// Off-state leakage floor. The field floor 10^(-ER/20) bounds the
  /// encodable dynamic range (~ER/6 bits): 30 dB caps inputs near 5 bits,
  /// 50 dB (a good push-pull MZM, the default) supports 8-bit encoding.
  double extinction_ratio_db = 50.0;
  double insertion_loss_db = 3.0;     ///< On-chip MZM loss.
  double rate_hz = 10e9;          ///< Symbol rate (paper: >50 GHz devices).
  double energy_per_symbol_j = 150e-15;  ///< Driver + DAC energy / symbol.
};

/// Encodes a signed real value in [-1, 1] onto an optical field amplitude
/// (sign realized as a 0 / pi carrier phase — coherent amplitude coding).
class Modulator {
 public:
  explicit Modulator(ModulatorConfig cfg = {});

  /// Field amplitude (relative to the unmodulated carrier) for `value`.
  /// Applies DAC quantization, extinction-ratio floor and insertion loss.
  [[nodiscard]] std::complex<double> encode(double value) const;

  /// Quantized drive value only (for analysis of the DAC transfer).
  [[nodiscard]] double quantize(double value) const;

  /// Seconds per encoded symbol.
  [[nodiscard]] double symbol_time_s() const { return 1.0 / cfg_.rate_hz; }
  /// Field transmission of the modulator (insertion loss only).
  [[nodiscard]] double amplitude_scale() const { return amp_loss_; }
  [[nodiscard]] const ModulatorConfig& config() const { return cfg_; }

 private:
  ModulatorConfig cfg_;
  double amp_loss_;   ///< Field transmission from insertion loss.
  double floor_amp_;  ///< Minimum field amplitude (extinction limit).
};

}  // namespace aspen::phot
