#include "photonics/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::phot {

LinkBudget::LinkBudget(double input_power_w) : input_power_w_(input_power_w) {
  if (input_power_w <= 0.0)
    throw std::invalid_argument("LinkBudget: input power <= 0");
}

LinkBudget& LinkBudget::add(std::string name, double loss_db) {
  if (loss_db < 0.0) throw std::invalid_argument("LinkBudget: negative loss");
  stages_.push_back({std::move(name), loss_db});
  return *this;
}

LinkBudget& LinkBudget::add_repeated(std::string name, double loss_db,
                                     int count) {
  for (int i = 0; i < count; ++i)
    add(name + "[" + std::to_string(i) + "]", loss_db);
  return *this;
}

double LinkBudget::total_loss_db() const {
  double sum = 0.0;
  for (const auto& s : stages_) sum += s.loss_db;
  return sum;
}

double LinkBudget::output_power_w() const {
  return input_power_w_ * db_to_power_ratio(-total_loss_db());
}

double LinkBudget::snr(const Photodetector& det) const {
  return det.snr(output_power_w());
}

double LinkBudget::enob(const Photodetector& det) const {
  const double s = snr(det);
  if (s <= 0.0) return 0.0;
  const double snr_db = 10.0 * std::log10(s);
  return (snr_db - 1.76) / 6.02;
}

}  // namespace aspen::phot
