#include "photonics/material.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace aspen::phot {

std::complex<double> OpticalConstants::permittivity() const {
  const std::complex<double> m = as_complex();
  return m * m;
}

double PcmMaterial::delta_n() const { return crystalline.n - amorphous.n; }
double PcmMaterial::delta_k() const { return crystalline.k - amorphous.k; }

double PcmMaterial::figure_of_merit() const {
  const double dk = std::abs(delta_k());
  if (dk < 1e-12) return 1e12;  // effectively lossless switching
  return std::abs(delta_n()) / dk;
}

OpticalConstants PcmMaterial::at_fraction(double x) const {
  const double f = std::clamp(x, 0.0, 1.0);
  // Lorentz-Lorenz (Clausius-Mossotti) effective-medium mixing:
  //   L(eps_eff) = x L(eps_cr) + (1-x) L(eps_am),  L(e) = (e-1)/(e+2).
  const auto ll = [](std::complex<double> e) { return (e - 1.0) / (e + 2.0); };
  const std::complex<double> mix =
      f * ll(crystalline.permittivity()) + (1.0 - f) * ll(amorphous.permittivity());
  // Invert L: eps = (1 + 2 mix) / (1 - mix).
  const std::complex<double> eps = (1.0 + 2.0 * mix) / (1.0 - mix);
  const std::complex<double> nk = std::sqrt(eps);
  OpticalConstants out;
  out.n = nk.real();
  out.k = std::abs(nk.imag());
  return out;
}

PcmMaterial make_gst225() {
  PcmMaterial m;
  m.name = "GST-225";
  m.amorphous = {3.94, 0.045};
  m.crystalline = {6.11, 0.83};
  m.set_energy_j = 120e-12;
  m.reset_energy_j = 600e-12;
  m.drift_nu = 0.006;
  return m;
}

PcmMaterial make_gsst() {
  PcmMaterial m;
  m.name = "GSST";
  m.amorphous = {3.325, 0.0002};
  m.crystalline = {5.083, 0.350};
  m.set_energy_j = 100e-12;
  m.reset_energy_j = 500e-12;
  m.drift_nu = 0.004;
  return m;
}

PcmMaterial make_gese() {
  PcmMaterial m;
  m.name = "GeSe";
  m.amorphous = {2.45, 0.0001};
  m.crystalline = {2.85, 0.0050};
  m.set_energy_j = 90e-12;
  m.reset_energy_j = 450e-12;
  m.drift_nu = 0.003;
  return m;
}

PcmMaterial pcm_by_name(const std::string& name) {
  std::string low = name;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "gst" || low == "gst225" || low == "gst-225") return make_gst225();
  if (low == "gsst") return make_gsst();
  if (low == "gese") return make_gese();
  throw std::invalid_argument("pcm_by_name: unknown material '" + name + "'");
}

}  // namespace aspen::phot
