#pragma once
/// \file link_budget.hpp
/// Optical power budget through a cascade of lossy stages, and the
/// resulting detection SNR / effective number of bits — the analysis that
/// bounds how deep an MZI mesh can be before read-out precision collapses
/// (paper Section 3: "compact with minimized optical loss to enable deep
/// arrangements of MZIs").

#include <string>
#include <vector>

#include "photonics/photodetector.hpp"

namespace aspen::phot {

/// One lossy stage in the optical path.
struct LinkStage {
  std::string name;
  double loss_db = 0.0;
};

class LinkBudget {
 public:
  explicit LinkBudget(double input_power_w);

  /// Append a stage; returns *this for chaining.
  LinkBudget& add(std::string name, double loss_db);
  /// Append `count` copies of a stage (e.g. mesh columns).
  LinkBudget& add_repeated(std::string name, double loss_db, int count);

  [[nodiscard]] double total_loss_db() const;
  [[nodiscard]] double output_power_w() const;

  /// SNR (power ratio) at a detector placed at the link output.
  [[nodiscard]] double snr(const Photodetector& det) const;
  /// Effective number of bits from the detection SNR:
  /// ENOB = (SNR_dB - 1.76) / 6.02.
  [[nodiscard]] double enob(const Photodetector& det) const;

  [[nodiscard]] const std::vector<LinkStage>& stages() const { return stages_; }

 private:
  double input_power_w_;
  std::vector<LinkStage> stages_;
};

}  // namespace aspen::phot
