#pragma once
/// \file photodetector.hpp
/// Output read-out chain: photodetector (responsivity, shot noise, thermal
/// noise, dark current) followed by an ADC. Together with the modulator
/// this closes the electro-optic loop of the MVM engine and sets the
/// achievable end-to-end precision (ENOB) — the paper's platform quotes
/// >50 GHz detectors; the defaults here are conservative 10 GS/s values.

#include <complex>

#include "lina/random.hpp"

namespace aspen::phot {

struct PhotodetectorConfig {
  double responsivity_a_per_w = 1.0;
  double bandwidth_hz = 10e9;
  double dark_current_a = 10e-9;
  /// Input-referred thermal (TIA) noise current density [A / sqrt(Hz)].
  double thermal_noise_a_per_sqrt_hz = 10e-12;
  double temperature_k = 300.0;
};

struct AdcConfig {
  int bits = 8;
  double full_scale_w = 1e-3;  ///< Optical power mapped to full scale.
  double rate_hz = 10e9;
  double energy_per_sample_j = 1e-12;
};

/// Direct (power) detection with physical noise.
class Photodetector {
 public:
  explicit Photodetector(PhotodetectorConfig cfg = {});

  /// Measure optical power [W] -> photocurrent [A] with shot + thermal
  /// noise drawn from `rng`.
  [[nodiscard]] double measure_current(double power_w, lina::Rng& rng) const;

  /// Noise-free photocurrent (for calibration paths).
  [[nodiscard]] double ideal_current(double power_w) const;

  /// RMS noise current at the configured bandwidth for a given signal
  /// power (shot noise depends on the signal).
  [[nodiscard]] double noise_rms_a(double power_w) const;

  /// Signal-to-noise ratio (power ratio, not dB) at given optical power.
  [[nodiscard]] double snr(double power_w) const;

  [[nodiscard]] const PhotodetectorConfig& config() const { return cfg_; }

 private:
  PhotodetectorConfig cfg_;
};

/// Coherent (I/Q homodyne) read-out of a complex field amplitude, as
/// needed to recover *signed* MVM results. Field is expressed in
/// sqrt(W); both quadratures acquire the detector noise.
class CoherentReceiver {
 public:
  CoherentReceiver(PhotodetectorConfig pd, AdcConfig adc);

  /// Measure a complex field; returns the reconstructed complex amplitude
  /// after detection noise and ADC quantization of both quadratures.
  [[nodiscard]] std::complex<double> measure(std::complex<double> field,
                                             lina::Rng& rng) const;

  /// ADC quantization of a current given the full-scale mapping.
  [[nodiscard]] double quantize_current(double current_a) const;

  [[nodiscard]] double sample_time_s() const { return 1.0 / adc_.rate_hz; }
  [[nodiscard]] const AdcConfig& adc_config() const { return adc_; }
  [[nodiscard]] const PhotodetectorConfig& pd_config() const { return pd_; }

 private:
  PhotodetectorConfig pd_;
  AdcConfig adc_;
  Photodetector det_;
};

}  // namespace aspen::phot
