#include "photonics/laser.hpp"

#include <cmath>
#include <stdexcept>

namespace aspen::phot {

CwLaser::CwLaser(CwLaserConfig cfg) : cfg_(cfg) {
  if (cfg_.power_w <= 0.0 || cfg_.wall_plug_efficiency <= 0.0)
    throw std::invalid_argument("CwLaser: non-positive power/efficiency");
}

double CwLaser::rin_rms_w() const {
  // RIN integrates to a relative power variance: sigma_rel^2 = RIN * B.
  const double rel_var =
      std::pow(10.0, cfg_.rin_db_per_hz / 10.0) * cfg_.bandwidth_hz;
  return cfg_.power_w * std::sqrt(rel_var);
}

double CwLaser::sample_power(lina::Rng& rng) const {
  const double p = cfg_.power_w + rng.gaussian(0.0, rin_rms_w());
  return p > 0.0 ? p : 0.0;
}

double CwLaser::electrical_power_w() const {
  return cfg_.power_w / cfg_.wall_plug_efficiency;
}

YamadaNeuron::YamadaNeuron(YamadaConfig cfg) : cfg_(cfg) {
  if (cfg_.dt <= 0.0) throw std::invalid_argument("YamadaNeuron: dt <= 0");
  reset();
}

void YamadaNeuron::reset() {
  // Start at the quiescent (off) fixed point.
  g_ = cfg_.big_a;
  q_ = cfg_.big_b;
  i_ = cfg_.eps;
  t_ = 0.0;
  armed_ = true;
  spiked_ = false;
}

double YamadaNeuron::step(double injection) {
  const double inj = injection > 0.0 ? injection : 0.0;
  const auto deriv = [&](double g, double q, double i, double& dg, double& dq,
                         double& di) {
    dg = cfg_.gamma_g * (cfg_.big_a - g - g * i);
    dq = cfg_.gamma_q * (cfg_.big_b - q - cfg_.a * q * i);
    di = (g - q - 1.0) * i + cfg_.eps + inj;
  };

  double k1g, k1q, k1i, k2g, k2q, k2i, k3g, k3q, k3i, k4g, k4q, k4i;
  const double h = cfg_.dt;
  deriv(g_, q_, i_, k1g, k1q, k1i);
  deriv(g_ + 0.5 * h * k1g, q_ + 0.5 * h * k1q, i_ + 0.5 * h * k1i, k2g, k2q,
        k2i);
  deriv(g_ + 0.5 * h * k2g, q_ + 0.5 * h * k2q, i_ + 0.5 * h * k2i, k3g, k3q,
        k3i);
  deriv(g_ + h * k3g, q_ + h * k3q, i_ + h * k3i, k4g, k4q, k4i);

  g_ += h / 6.0 * (k1g + 2.0 * k2g + 2.0 * k3g + k4g);
  q_ += h / 6.0 * (k1q + 2.0 * k2q + 2.0 * k3q + k4q);
  i_ += h / 6.0 * (k1i + 2.0 * k2i + 2.0 * k3i + k4i);
  if (i_ < 0.0) i_ = 0.0;
  t_ += h;

  // Edge-triggered spike detection with hysteresis.
  spiked_ = false;
  if (armed_ && i_ > cfg_.spike_threshold) {
    spiked_ = true;
    armed_ = false;
  } else if (!armed_ && i_ < 0.5 * cfg_.spike_threshold) {
    armed_ = true;
  }
  return i_;
}

std::vector<double> YamadaNeuron::run(std::size_t steps,
                                      const std::vector<double>& injection) {
  std::vector<double> trace(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    const double inj = k < injection.size() ? injection[k] : 0.0;
    trace[k] = step(inj);
  }
  return trace;
}

}  // namespace aspen::phot
