#pragma once
/// \file units.hpp
/// Physical constants and unit helpers. ASPEN uses SI internally
/// (meters, seconds, watts, joules); helpers convert at the boundaries.

#include <cmath>

namespace aspen::phot {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 2.99792458e8;
/// Planck constant [J*s].
inline constexpr double kPlanck = 6.62607015e-34;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Standard telecom C-band wavelength used throughout the paper [m].
inline constexpr double kTelecomWavelength = 1550e-9;

/// Photon energy at a given vacuum wavelength [J].
[[nodiscard]] inline double photon_energy(double wavelength_m) {
  return kPlanck * kSpeedOfLight / wavelength_m;
}

/// Power conversions. dBm is referenced to 1 mW.
[[nodiscard]] inline double dbm_to_watt(double dbm) {
  return 1e-3 * std::pow(10.0, dbm / 10.0);
}
[[nodiscard]] inline double watt_to_dbm(double watt) {
  return 10.0 * std::log10(watt / 1e-3);
}

/// Field-amplitude <-> power-ratio conversions in dB.
[[nodiscard]] inline double db_to_power_ratio(double db) {
  return std::pow(10.0, db / 10.0);
}
[[nodiscard]] inline double power_ratio_to_db(double ratio) {
  return 10.0 * std::log10(ratio);
}
/// Amplitude transmission for a given (positive) power loss in dB.
[[nodiscard]] inline double loss_db_to_amplitude(double loss_db) {
  return std::pow(10.0, -loss_db / 20.0);
}

}  // namespace aspen::phot
