#include "photonics/mzi.hpp"

#include <cmath>

namespace aspen::phot {

namespace {
constexpr double kPi = 3.141592653589793238462643383280;
}

Transfer2 mzi_ideal(double theta, double phi, MziStyle style) {
  const double s = std::sin(theta / 2.0);
  const double c = std::cos(theta / 2.0);
  const cplx g = cplx{0.0, 1.0} * std::polar(1.0, theta / 2.0);
  const cplx ephi = std::polar(1.0, phi);
  Transfer2 t;
  t.a = g * ephi * s;
  t.b = g * c;
  t.c = g * ephi * c;
  t.d = g * (-s);
  if (style == MziStyle::kSymmetric) {
    // Differential drive shifts only the global phase of the cell:
    // diag(e^{ix/2}, e^{-ix/2}) = e^{-ix/2} diag(e^{ix}, 1).
    t = t.scaled(std::polar(1.0, -(theta + phi) / 2.0));
  }
  return t;
}

Transfer2 mzi_physical(double theta, double phi, const MziImperfections& imp,
                       MziStyle style) {
  DirectionalCoupler c1;
  c1.delta_eta = imp.coupler1_delta_eta;
  c1.insertion_loss_db = imp.coupler_loss_db;
  DirectionalCoupler c2;
  c2.delta_eta = imp.coupler2_delta_eta;
  c2.insertion_loss_db = imp.coupler_loss_db;

  const double ps_amp = loss_db_to_amplitude(imp.ps_loss_db);
  const double th = theta + imp.theta_error;
  const double ph = phi + imp.phi_error;

  Transfer2 internal;
  Transfer2 external;
  if (style == MziStyle::kStandard) {
    // Single-arm drive: the phase (and any state-dependent PCM loss) sits
    // on the top arm only; the bottom arm sees just the section loss.
    internal = Transfer2::phases(th, 0.0);
    internal.a *= imp.theta_arm_amplitude;
    external = Transfer2::phases(ph, 0.0);
    external.a *= imp.phi_arm_amplitude;
  } else {
    // Parallel PS blocks: +-x/2 on the two arms. Both arms carry a phase
    // shifter, so the state-dependent loss is *balanced* — it costs
    // optical power but preserves the interference contrast, which is the
    // physical origin of this cell's robustness.
    internal = Transfer2::phases(th / 2.0, -th / 2.0);
    internal.a *= imp.theta_arm_amplitude;
    internal.d *= imp.theta_arm_amplitude;
    external = Transfer2::phases(ph / 2.0, -ph / 2.0);
    external.a *= imp.phi_arm_amplitude;
    external.d *= imp.phi_arm_amplitude;
  }
  internal = internal.scaled(ps_amp);
  external = external.scaled(ps_amp);

  return c2.transfer() * internal * c1.transfer() * external;
}

NullingSolution null_port(cplx u, cplx v, int port) {
  NullingSolution sol{0.0, 0.0};
  const double au = std::abs(u);
  const double av = std::abs(v);
  if (port == 1) {
    // Zero the bottom output: e^{i phi} cos(theta/2) u = sin(theta/2) v.
    sol.theta = 2.0 * std::atan2(au, av);
    sol.phi = (au < 1e-300 || av < 1e-300) ? 0.0 : std::arg(v) - std::arg(u);
  } else {
    // Zero the top output: e^{i phi} sin(theta/2) u = -cos(theta/2) v.
    sol.theta = 2.0 * std::atan2(av, au);
    sol.phi =
        (au < 1e-300 || av < 1e-300) ? 0.0 : std::arg(v) + kPi - std::arg(u);
  }
  return sol;
}

}  // namespace aspen::phot
