#pragma once
/// \file laser.hpp
/// Light sources for the augmented platform (paper Sections 2-3): the
/// III-V materials co-integrated on SOI enable on-chip lasers. Two models:
///
///  - `CwLaser` — continuous-wave pump/carrier source with wall-plug
///    efficiency and relative intensity noise (RIN), feeding the MVM mesh.
///  - `YamadaNeuron` — Q-switched gain + saturable-absorber laser in the
///    excitable regime (Yamada rate equations), the "chipscale excitable
///    spiking source" of Section 3. Sub-threshold optical perturbations
///    decay; supra-threshold ones fire a large calibrated pulse followed
///    by a refractory period — the photonic spiking neuron primitive.

#include <vector>

#include "lina/random.hpp"

namespace aspen::phot {

struct CwLaserConfig {
  double power_w = 10e-3;          ///< Optical output power.
  double wall_plug_efficiency = 0.10;
  double rin_db_per_hz = -150.0;   ///< Relative intensity noise.
  double bandwidth_hz = 10e9;      ///< Noise integration bandwidth.
};

/// CW source: optical power with RIN fluctuations; electrical draw for the
/// energy model.
class CwLaser {
 public:
  explicit CwLaser(CwLaserConfig cfg = {});

  /// Instantaneous emitted power with RIN [W].
  [[nodiscard]] double sample_power(lina::Rng& rng) const;
  [[nodiscard]] double mean_power_w() const { return cfg_.power_w; }
  [[nodiscard]] double electrical_power_w() const;
  /// RMS of the RIN-induced power fluctuation [W].
  [[nodiscard]] double rin_rms_w() const;
  [[nodiscard]] const CwLaserConfig& config() const { return cfg_; }

 private:
  CwLaserConfig cfg_;
};

/// Yamada rate equations (dimensionless, time in cavity-lifetime units):
///   dG/dt = gamma_g (A - G - G I)
///   dQ/dt = gamma_q (B - Q - a Q I)
///   dI/dt = (G - Q - 1) I + eps + injection(t)
/// Excitable when the off fixed point (I ~ 0, G ~ A, Q ~ B) is stable,
/// i.e. A - B < 1, with A large enough that a perturbation tips the net
/// gain above loss.
struct YamadaConfig {
  double big_a = 4.3;     ///< Pump (gain bias).
  double big_b = 3.52;    ///< Absorber bias.
  double a = 1.8;         ///< Differential absorption ratio.
  double gamma_g = 0.05;  ///< Gain relaxation rate.
  double gamma_q = 0.05;  ///< Absorber relaxation rate.
  double eps = 1e-9;      ///< Spontaneous-emission floor.
  double dt = 0.01;       ///< RK4 step (dimensionless time).
  double spike_threshold = 1.0;  ///< Intensity level that counts as a spike.
};

class YamadaNeuron {
 public:
  explicit YamadaNeuron(YamadaConfig cfg = {});

  /// Advance one RK4 step with the given optical injection (>= 0) held
  /// constant across the step. Returns the new intensity.
  double step(double injection = 0.0);

  /// Run for `steps` steps with per-step injection values (zero-padded);
  /// returns the intensity trace.
  [[nodiscard]] std::vector<double> run(std::size_t steps,
                                        const std::vector<double>& injection = {});

  /// True on the step where intensity first rises through the spike
  /// threshold (edge-triggered; rearms after falling below threshold/2).
  [[nodiscard]] bool spiked() const { return spiked_; }

  void reset();

  [[nodiscard]] double gain() const { return g_; }
  [[nodiscard]] double absorber() const { return q_; }
  [[nodiscard]] double intensity() const { return i_; }
  [[nodiscard]] double time() const { return t_; }
  [[nodiscard]] const YamadaConfig& config() const { return cfg_; }

 private:
  YamadaConfig cfg_;
  double g_, q_, i_, t_ = 0.0;
  bool armed_ = true;
  bool spiked_ = false;
};

}  // namespace aspen::phot
