#include "photonics/modulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photonics/units.hpp"

namespace aspen::phot {

Modulator::Modulator(ModulatorConfig cfg) : cfg_(cfg) {
  if (cfg_.dac_bits < 1 || cfg_.dac_bits > 24)
    throw std::invalid_argument("Modulator: dac_bits must be in [1, 24]");
  if (cfg_.rate_hz <= 0.0)
    throw std::invalid_argument("Modulator: non-positive rate");
  amp_loss_ = loss_db_to_amplitude(cfg_.insertion_loss_db);
  // Extinction ratio bounds the smallest achievable *power* ratio, so the
  // field floor is 10^(-ER/20).
  floor_amp_ = std::pow(10.0, -cfg_.extinction_ratio_db / 20.0);
}

double Modulator::quantize(double value) const {
  const double v = std::clamp(value, -1.0, 1.0);
  // Signed midrise quantizer over [-1, 1] with 2^bits levels.
  const double levels = static_cast<double>((1 << cfg_.dac_bits) - 1);
  return std::round((v + 1.0) / 2.0 * levels) / levels * 2.0 - 1.0;
}

std::complex<double> Modulator::encode(double value) const {
  const double q = quantize(value);
  double mag = std::abs(q);
  // The modulator cannot fully extinguish the carrier.
  mag = std::max(mag, floor_amp_);
  const double sign = (q < 0.0) ? -1.0 : 1.0;
  return {sign * mag * amp_loss_, 0.0};
}

}  // namespace aspen::phot
