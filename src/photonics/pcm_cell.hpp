#pragma once
/// \file pcm_cell.hpp
/// Multilevel non-volatile PCM cell on a waveguide (paper Fig. 2a: PCM
/// patch under a heater, providing a programmable non-volatile optical
/// phase shift). The cell models:
///  - crystalline fraction state x in [0, 1],
///  - multilevel programming (2^bits levels) with write noise,
///  - pulse *accumulation* behaviour (partial SET per pulse — the
///    integrate-and-fire mechanism of Section 3's photonic SNN),
///  - amorphous-phase drift over time,
///  - the phase / loss tradeoff set by the material's delta_n / delta_k.

#include <cstdint>

#include "lina/random.hpp"
#include "photonics/material.hpp"
#include "photonics/units.hpp"

namespace aspen::phot {

/// Geometry + programming parameters of one PCM patch.
struct PcmCellConfig {
  PcmMaterial material = make_gsst();
  double patch_length_m = 12e-6;  ///< PCM patch length along the waveguide.
  double confinement = 0.10;      ///< Modal overlap Gamma with the PCM film.
  double wavelength_m = kTelecomWavelength;
  int level_bits = 6;             ///< Programmable levels = 2^level_bits.
  double write_noise_sigma = 0.0; ///< Std-dev of achieved fraction per write.
  double accumulation_step = 0.10;///< Delta-x per sub-switching SET pulse.
};

/// One programmable PCM patch. All phase values are radians *relative to
/// the fully amorphous state* (the natural zero of the device).
class PcmCell {
 public:
  explicit PcmCell(PcmCellConfig cfg = {});

  /// Phase shift contributed by crystalline fraction x (no drift).
  [[nodiscard]] double phase_of_fraction(double x) const;
  /// Field-amplitude transmission at fraction x (absorption from k_eff).
  [[nodiscard]] double amplitude_of_fraction(double x) const;
  /// Largest reachable phase shift (x = 1).
  [[nodiscard]] double max_phase() const { return phase_of_fraction(1.0); }

  /// Invert phase_of_fraction (monotone in x); clamps to [0, max_phase].
  [[nodiscard]] double fraction_for_phase(double phase_rad) const;

  /// Program to the quantized level nearest the requested fraction.
  /// Adds write noise when `rng` is provided. Costs write energy, resets
  /// the drift clock.
  void program_fraction(double x, lina::Rng* rng = nullptr);
  /// Program the level index directly (0 .. levels()-1).
  void program_level(int level, lina::Rng* rng = nullptr);
  /// Program the quantized fraction that best realizes `phase_rad`.
  void program_phase(double phase_rad, lina::Rng* rng = nullptr);

  /// Partial crystallization by one sub-switching pulse scaled by
  /// `strength` (the SNN accumulation primitive). Saturates at x = 1.
  void accumulate(double strength = 1.0);
  /// Melt-quench back to fully amorphous (x = 0).
  void reset();

  /// Advance the drift clock.
  void advance_time(double dt_s);

  /// Current *effective* phase shift including drift.
  [[nodiscard]] double phase() const;
  /// Current field-amplitude transmission.
  [[nodiscard]] double amplitude() const;
  /// Raw state.
  [[nodiscard]] double fraction() const { return fraction_; }
  [[nodiscard]] int levels() const { return 1 << cfg_.level_bits; }
  [[nodiscard]] std::uint64_t write_count() const { return write_count_; }
  [[nodiscard]] double energy_spent_j() const { return energy_spent_j_; }
  [[nodiscard]] double time_since_write_s() const { return time_since_write_s_; }
  [[nodiscard]] const PcmCellConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] double quantize_fraction(double x) const;
  [[nodiscard]] double drift_factor() const;

  PcmCellConfig cfg_;
  double fraction_ = 0.0;
  double time_since_write_s_ = 0.0;
  std::uint64_t write_count_ = 0;
  double energy_spent_j_ = 0.0;
};

/// Size the PCM patch so the fully crystalline state reaches `margin`
/// times 2*pi of phase shift at the given confinement — the geometry a
/// designer would pick for a full-range phase shifter in this material.
/// Low-FOM materials (GST) pay for the range with absorption; high-FOM
/// materials (GeSe) need a longer patch but stay transparent, which is
/// exactly the trade Section 3 of the paper discusses.
[[nodiscard]] PcmCellConfig pcm_config_for_two_pi(const PcmMaterial& material,
                                                  double confinement = 0.10,
                                                  double margin = 1.10,
                                                  int level_bits = 6);

/// Stateless precomputed map from target phase to the (achieved phase,
/// amplitude) of the nearest PCM level — used by the mesh simulator to
/// apply PCM quantization to thousands of phase shifters cheaply.
class PcmPhaseMap {
 public:
  explicit PcmPhaseMap(const PcmCellConfig& cfg);

  /// Quantize a requested phase (any real; wrapped into [0, 2pi)) to the
  /// nearest achievable level. Returns achieved phase and amplitude after
  /// `drift_time_s` of drift.
  struct Quantized {
    double phase;
    double amplitude;
  };
  [[nodiscard]] Quantized quantize(double phase_rad,
                                   double drift_time_s = 0.0) const;

  [[nodiscard]] int levels() const { return static_cast<int>(phase_.size()); }
  /// True when the device can reach a full 2*pi of phase.
  [[nodiscard]] bool covers_two_pi() const { return covers_two_pi_; }

 private:
  PcmCellConfig cfg_;
  std::vector<double> phase_;      ///< Per-level phase (no drift).
  std::vector<double> amplitude_;  ///< Per-level amplitude.
  std::vector<double> fraction_;   ///< Per-level crystalline fraction.
  bool covers_two_pi_ = false;
};

}  // namespace aspen::phot
