#pragma once
/// \file coupler.hpp
/// 2x2 optical elements as transfer matrices: the directional coupler and
/// the `Transfer2` type every mesh cell is composed from.

#include <complex>

#include "photonics/units.hpp"

namespace aspen::phot {

using cplx = std::complex<double>;

/// A 2x2 complex transfer matrix [[a, b], [c, d]] acting on a pair of
/// waveguide modes. Lightweight value type for hot mesh loops.
struct Transfer2 {
  cplx a{1.0, 0.0}, b{0.0, 0.0}, c{0.0, 0.0}, d{1.0, 0.0};

  [[nodiscard]] static Transfer2 identity() { return {}; }
  /// Phase screen diag(e^{i top}, e^{i bottom}).
  [[nodiscard]] static Transfer2 phases(double top, double bottom);

  /// Matrix product: (*this) * rhs (rhs acts first on the signal).
  [[nodiscard]] Transfer2 operator*(const Transfer2& rhs) const;
  /// Scale all entries by a (loss) factor.
  [[nodiscard]] Transfer2 scaled(cplx s) const;
  /// Max entry-wise |difference|.
  [[nodiscard]] double max_abs_diff(const Transfer2& rhs) const;
  /// True when T T^dagger ~= I within tol.
  [[nodiscard]] bool is_unitary(double tol = 1e-9) const;
};

/// Directional coupler with power cross-coupling kappa = sin^2(eta).
/// The ideal 50:50 coupler (eta = pi/4) realizes (1/sqrt 2)[[1, i],[i, 1]].
/// Fabrication imbalance enters as a deviation `delta_eta` of the coupling
/// angle; insertion loss as a scalar amplitude.
struct DirectionalCoupler {
  double delta_eta = 0.0;        ///< Coupling-angle error [rad].
  double insertion_loss_db = 0.05;

  [[nodiscard]] Transfer2 transfer() const;
  /// Power cross-coupling ratio in [0, 1] (0.5 when ideal).
  [[nodiscard]] double cross_coupling() const;
};

}  // namespace aspen::phot
