#pragma once
/// \file fault.hpp
/// Microarchitecture-level fault injection campaigns — the gem5-MARVEL
/// capability the paper highlights (Section 5: "supports transient and
/// permanent fault injections to all hardware structures"). A campaign
/// repeatedly executes a workload on a fresh system, injects one fault
/// per run (target structure, model, cycle, bit), and classifies the
/// outcome against a golden run:
///
///   Masked   — run completed, architectural output identical
///   SDC      — run completed, output differs (silent data corruption)
///   DUE-trap — detected: CPU halted on an access/illegal fault
///   DUE-hang — detected: run exceeded the cycle budget (watchdog)

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lina/random.hpp"
#include "sysim/system.hpp"

namespace aspen::sys {

enum class FaultTarget {
  kCpuRegfile,    ///< architectural register bit
  kDramData,      ///< workload data region in DRAM
  kAccelSpmW,     ///< accelerator weight scratchpad
  kAccelSpmX,     ///< accelerator input scratchpad
  kAccelPhase,    ///< photonic configuration (programmed mesh phase)
};
[[nodiscard]] std::string to_string(FaultTarget t);

enum class FaultModel {
  kTransientFlip,  ///< single bit flip at the injection cycle
  kStuckAt0,       ///< permanent stuck-at-0 from the injection cycle on
  kStuckAt1,       ///< permanent stuck-at-1
};
[[nodiscard]] std::string to_string(FaultModel m);

enum class Outcome { kMasked, kSdc, kDueTrap, kDueHang };
[[nodiscard]] std::string to_string(Outcome o);

struct FaultSpec {
  FaultTarget target = FaultTarget::kCpuRegfile;
  FaultModel model = FaultModel::kTransientFlip;
  std::uint64_t cycle = 0;   ///< injection time
  std::uint32_t index = 1;   ///< register number / byte offset / phase idx
  unsigned bit = 0;          ///< bit within the target word/byte
  double phase_delta_rad = 0.5;  ///< for kAccelPhase
};

/// Distribution of outcomes over a campaign.
struct CampaignResult {
  std::map<Outcome, int> counts;
  int total = 0;
  [[nodiscard]] double fraction(Outcome o) const;
};

class FaultCampaign {
 public:
  /// `factory` builds a fully staged system (program + data loaded);
  /// `read_output` extracts the architectural output after completion.
  using SystemFactory = std::function<std::unique_ptr<System>()>;
  using OutputReader = std::function<std::vector<std::uint8_t>(System&)>;

  FaultCampaign(SystemFactory factory, OutputReader read_output,
                std::uint64_t max_cycles);

  /// Golden (fault-free) execution; cached after the first call.
  const std::vector<std::uint8_t>& golden();
  /// Cycle count of the golden run (for sampling injection times).
  [[nodiscard]] std::uint64_t golden_cycles();

  /// Execute one faulted run.
  Outcome run_one(const FaultSpec& spec);

  /// Random campaign over a target/model pair: injection cycles uniform
  /// in the golden run's active window, indices/bits uniform over the
  /// target structure. `index_lo`/`index_hi` restrict the sampled index
  /// range (e.g. the workload's data region in DRAM); hi == 0 means the
  /// whole structure.
  CampaignResult run_campaign(FaultTarget target, FaultModel model,
                              int trials, lina::Rng& rng,
                              std::uint32_t index_lo = 0,
                              std::uint32_t index_hi = 0);

 private:
  void inject(System& system, const FaultSpec& spec);

  SystemFactory factory_;
  OutputReader read_output_;
  std::uint64_t max_cycles_;
  std::vector<std::uint8_t> golden_;
  std::uint64_t golden_cycles_ = 0;
  bool have_golden_ = false;
};

}  // namespace aspen::sys
