#pragma once
/// \file fault.hpp
/// Microarchitecture-level fault injection campaigns — the gem5-MARVEL
/// capability the paper highlights (Section 5: "supports transient and
/// permanent fault injections to all hardware structures"). A campaign
/// stages a workload once, snapshots the fully constructed System, and
/// then executes trials by restoring that snapshot (~a DRAM memcpy)
/// instead of rebuilding the platform per run — the construction floor
/// (DRAM allocation + photonic weight programming) is paid once. Each
/// trial injects one fault (target structure, model, cycle, bit) and
/// classifies the outcome against a golden run:
///
///   Masked   — run completed, architectural output identical
///   SDC      — run completed, output differs (silent data corruption)
///   DUE-trap — detected: CPU halted on an access/illegal fault
///   DUE-hang — detected: run exceeded the cycle budget (watchdog)
///
/// Recovery-aware campaigns (a checked workload + set_recovery()) split
/// the survived-and-correct space by the guest's recovery record:
///
///   Detected+corrected — output correct AND the guest observed errors
///                        (retry succeeded or ABFT repaired in place)
///   Detected+recovered — guest fell back to the software GEMM and its
///                        output matches the software-path golden
///
/// so "Masked" keeps meaning the fault genuinely changed nothing and
/// "SDC" keeps meaning corruption escaped every installed detector.
///
/// Trials are independent, so they shard across a worker pool: every
/// worker owns a private factory-built System restored from the shared
/// snapshot per trial. Fault specs are pre-drawn serially from the
/// caller's Rng, so serial and parallel campaigns produce bit-identical
/// per-trial verdicts (not merely equal distributions).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lina/random.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace aspen::sys {

enum class FaultTarget {
  kCpuRegfile,    ///< architectural register bit
  kDramData,      ///< workload data region in DRAM
  kAccelSpmW,     ///< accelerator weight scratchpad
  kAccelSpmX,     ///< accelerator input scratchpad
  kAccelPhase,    ///< photonic configuration (programmed mesh phase)
};
[[nodiscard]] std::string to_string(FaultTarget t);

enum class FaultModel {
  kTransientFlip,  ///< single bit flip at the injection cycle
  kStuckAt0,       ///< permanent stuck-at-0 from the injection cycle on
  kStuckAt1,       ///< permanent stuck-at-1
};
[[nodiscard]] std::string to_string(FaultModel m);

/// Trial verdicts. New values are only ever appended (the campaign wire
/// format and sweep reports serialize the underlying integer).
enum class Outcome {
  kMasked,
  kSdc,
  kDueTrap,
  kDueHang,
  kDetectedCorrected,  ///< detected; retry/ABFT restored the exact output
  kDetectedRecovered,  ///< detected; software fallback produced the output
};
[[nodiscard]] std::string to_string(Outcome o);

struct FaultSpec {
  FaultTarget target = FaultTarget::kCpuRegfile;
  FaultModel model = FaultModel::kTransientFlip;
  std::uint64_t cycle = 0;   ///< injection time
  std::uint32_t index = 1;   ///< register number / byte offset / phase idx
  unsigned bit = 0;          ///< bit within the target word/byte
  double phase_delta_rad = 0.5;  ///< for kAccelPhase
};

/// Distribution of outcomes over a campaign.
struct CampaignResult {
  std::map<Outcome, int> counts;
  int total = 0;
  [[nodiscard]] double fraction(Outcome o) const;
  /// Fraction of *corrupting* faults (everything except Masked) that some
  /// detector caught: trap, hang, corrected, or recovered. 1.0 when no
  /// fault corrupted anything (vacuous coverage).
  [[nodiscard]] double detection_coverage() const;
  /// Fraction of all trials ending in silent data corruption.
  [[nodiscard]] double sdc_rate() const { return fraction(Outcome::kSdc); }
};

/// Histogram of a verdict list — the one reduction every campaign
/// consumer (bench, orchestrator, sweep harness, tests) performs.
[[nodiscard]] CampaignResult histogram_of(const std::vector<Outcome>& outcomes);

class FaultCampaign {
 public:
  /// `factory` builds a fully staged system (program + data loaded);
  /// `read_output` extracts the architectural output after completion.
  /// The factory is only ever invoked from the calling thread (worker
  /// replicas are constructed serially before the pool starts);
  /// `read_output` must be safe to call concurrently on distinct
  /// Systems (a pure read of the passed system is).
  using SystemFactory = std::function<std::unique_ptr<System>()>;
  using OutputReader = std::function<std::vector<std::uint8_t>(System&)>;
  using RecoveryReader = std::function<GemmRecoveryRecord(System&)>;

  FaultCampaign(SystemFactory factory, OutputReader read_output,
                std::uint64_t max_cycles);

  /// Golden (fault-free) execution; cached after the first call.
  const std::vector<std::uint8_t>& golden();
  /// Cycle count of the golden run (for sampling injection times).
  [[nodiscard]] std::uint64_t golden_cycles();
  /// The staged snapshot every trial restores from (stages lazily) — the
  /// image shard planners ship to worker processes.
  [[nodiscard]] const System::SystemSnapshot& staged_snapshot();
  /// The per-trial cycle budget this campaign classifies against.
  [[nodiscard]] std::uint64_t max_cycles() const { return max_cycles_; }

  /// Build a checkpoint ladder: `rungs` snapshots (rung 0 = the staged
  /// system) at evenly spaced cycles across the golden run's window.
  /// run_trial then restores from the latest rung at or before the
  /// injection cycle instead of from cycle 0, so a trial injecting at
  /// cycle c re-simulates at most window/rungs golden-prefix cycles
  /// rather than c. Verdicts are bit-identical to the rung-0 path (the
  /// prefix is fault-free, and snapshots capture complete architectural
  /// state). `rungs` <= 1 tears the ladder down, restoring the plain
  /// restore-from-cycle-0 behavior — kept as the differential oracle.
  void build_ladder(unsigned rungs);
  /// Number of ladder rungs currently held (0 = ladder disabled).
  [[nodiscard]] std::size_t ladder_rungs() const { return ladder_.size(); }

  /// Enable recovery-aware classification for checked workloads:
  /// `reader` extracts the guest-written recovery record after each
  /// trial, and `fallback_golden` is the reference output of the
  /// software-GEMM fallback path (it differs from the photonic golden —
  /// the scalar guest kernel truncates where the accelerator rounds).
  /// With recovery set, a trial whose guest fell back is classified
  /// against `fallback_golden` (match = Detected+recovered), and a trial
  /// matching the photonic golden after observed errors becomes
  /// Detected+corrected. Without it classification is exactly the
  /// four-outcome legacy behavior. `reader` must be safe to call
  /// concurrently on distinct Systems (a pure read of the passed system
  /// is).
  void set_recovery(RecoveryReader reader,
                    std::vector<std::uint8_t> fallback_golden);
  /// The software-fallback reference (empty when recovery is off) —
  /// shipped to worker processes alongside the photonic golden.
  [[nodiscard]] const std::vector<std::uint8_t>& fallback_golden() const {
    return fallback_golden_;
  }
  [[nodiscard]] bool recovery_enabled() const {
    return static_cast<bool>(recovery_reader_);
  }

  /// Adopt an externally produced staged snapshot + golden reference —
  /// the worker-process entry point: a coordinator serializes its staged
  /// snapshot, spec shard and golden output (see campaign_io.hpp), and
  /// each worker adopts them instead of re-running its own golden, so
  /// every process classifies against byte-identical references. The
  /// snapshot must come from a System built by an identical factory
  /// (shape-checked on the first restore). Clears any existing ladder.
  void adopt_staged(System::SystemSnapshot staged,
                    std::vector<std::uint8_t> golden,
                    std::uint64_t golden_cycles);

  /// Execute one faulted run (snapshot-restore under the hood).
  Outcome run_one(const FaultSpec& spec);

  /// Draw `trials` random fault specs for a target/model pair: injection
  /// cycles uniform over the closed window [0, golden_cycles()] (a fault
  /// can land before the first executed cycle or exactly at completion),
  /// indices/bits uniform over the target structure. `index_lo`/
  /// `index_hi` restrict the sampled index range for every target —
  /// register selectors (index i = x(i+1)) and phase indices just like
  /// byte offsets; hi == 0 means the whole structure, and a non-default
  /// range is clamped to the structure size. Throws std::invalid_argument
  /// when the clamped range is empty (lo > hi). Drawing is always serial
  /// and on the caller's rng, so the spec stream is independent of how
  /// the trials are later executed.
  [[nodiscard]] std::vector<FaultSpec> sample_specs(
      FaultTarget target, FaultModel model, int trials, lina::Rng& rng,
      std::uint32_t index_lo = 0, std::uint32_t index_hi = 0);

  /// Execute a batch of trials, sharded across `threads` workers (1 =
  /// serial on the calling thread). Per-trial outcomes are returned in
  /// spec order and are bit-identical for every thread count: each trial
  /// starts from the same restored snapshot whichever worker runs it.
  /// With a ladder built, trials are processed grouped by rung (their
  /// reported order is unchanged) so consecutive restores diff against
  /// the same image and the per-trial copy stays minimal.
  [[nodiscard]] std::vector<Outcome> run_trials(
      const std::vector<FaultSpec>& specs, unsigned threads = 1);

  /// sample_specs + run_trials + outcome histogram in one call.
  CampaignResult run_campaign(FaultTarget target, FaultModel model,
                              int trials, lina::Rng& rng,
                              std::uint32_t index_lo = 0,
                              std::uint32_t index_hi = 0,
                              unsigned threads = 1);

  /// Apply one fault to a live system — the exact injection mapping the
  /// campaign uses (public so benches/tests can drive it on their own
  /// systems instead of duplicating it).
  static void inject(System& system, const FaultSpec& spec);
  /// Classify a finished run against a golden output (DUE-hang/-trap
  /// from the halt state, Masked/SDC from the output comparison) — the
  /// legacy four-outcome classifier, which recovery-off campaigns use
  /// unchanged.
  static Outcome classify(System& system, const OutputReader& read_output,
                          const std::vector<std::uint8_t>& golden);

 private:
  /// One checkpoint: the snapshot of the golden run at `cycle`, plus the
  /// span of its DRAM image that differs from the staged (rung-0) image.
  /// The golden prefix is deterministic, so these spans are computed once
  /// at ladder-build time; the stale span between any two rungs is then
  /// bounded by the union of their spans (a byte equal to the staged
  /// image in both rungs is equal between them).
  struct Rung {
    std::uint64_t cycle = 0;
    System::SystemSnapshot snap;
    std::uint32_t stale_lo = 0;   ///< first DRAM byte differing from rung 0
    std::uint32_t stale_len = 0;  ///< 0 = identical to rung 0
  };
  static constexpr std::size_t kNoRung = static_cast<std::size_t>(-1);

  /// Build the template system and capture the staged snapshot.
  void ensure_staged();
  /// Restore `system` from the best checkpoint at or before the
  /// injection cycle and execute one trial. Throws std::invalid_argument
  /// for a spec whose injection cycle lies beyond the cycle budget —
  /// such a fault can never be injected, so it is rejected loudly
  /// instead of being silently applied after completion.
  ///
  /// `last_rung` (optional) tracks the rung this system was last
  /// restored from across consecutive trials: combined with the rungs'
  /// precomputed stale spans it bounds the DRAM bytes the diff-based
  /// restore must scan. Pass nullptr (or kNoRung) when the system's
  /// current image is unknown — the restore then scans the whole image.
  Outcome run_trial(System& system, const FaultSpec& spec,
                    std::size_t* last_rung = nullptr);
  /// Classification used by run_trial: the legacy static classify when
  /// recovery is off, the six-outcome recovery-aware split otherwise.
  [[nodiscard]] Outcome classify_trial(System& system) const;
  /// Ladder index for an injection cycle (latest rung.cycle <= cycle).
  [[nodiscard]] std::size_t rung_index(std::uint64_t cycle) const;

  SystemFactory factory_;
  OutputReader read_output_;
  std::uint64_t max_cycles_;
  /// Template system (worker 0 / serial trials run here) + the shared
  /// staged snapshot every trial restores from.
  std::unique_ptr<System> scratch_;
  /// Per-worker replica systems, grown lazily to the largest thread
  /// count seen and reused across run_trials calls (each trial restores
  /// from the snapshot anyway, so replicas carry no state between
  /// batches).
  std::vector<std::unique_ptr<System>> replicas_;
  System::SystemSnapshot staged_;
  bool staged_ready_ = false;
  std::vector<std::uint8_t> golden_;
  std::uint64_t golden_cycles_ = 0;
  bool have_golden_ = false;
  /// Recovery-aware classification (set_recovery): guest record reader +
  /// the software-fallback reference output.
  RecoveryReader recovery_reader_;
  std::vector<std::uint8_t> fallback_golden_;
  /// Checkpoint ladder over the injection window (empty = disabled;
  /// otherwise ladder_[0] is the staged snapshot). Read-only while
  /// run_trials shards across threads.
  std::vector<Rung> ladder_;
};

}  // namespace aspen::sys
