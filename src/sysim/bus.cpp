#include "sysim/bus.hpp"

#include <stdexcept>

namespace aspen::sys {

void Bus::attach(std::uint32_t base, std::uint32_t size, BusDevice* dev) {
  if (dev == nullptr) throw std::invalid_argument("Bus::attach: null device");
  if (size == 0) throw std::invalid_argument("Bus::attach: zero size");
  for (const auto& r : regions_) {
    const bool overlap = base < r.base + r.size && r.base < base + size;
    if (overlap)
      throw std::invalid_argument("Bus::attach: overlapping region for " +
                                  dev->name());
  }
  regions_.push_back({base, size, dev});
}

const Bus::Region* Bus::find(std::uint32_t addr) const {
  for (const auto& r : regions_)
    if (addr >= r.base && addr < r.base + r.size) return &r;
  return nullptr;
}

BusDevice* Bus::device_at(std::uint32_t addr) const {
  const Region* r = find(addr);
  return r ? r->dev : nullptr;
}

Bus::Access Bus::read(std::uint32_t addr, unsigned size) {
  Access a;
  const Region* r = find(addr);
  if (r == nullptr) {
    a.fault = true;
    return a;
  }
  a.value = r->dev->read(addr - r->base, size);
  a.latency = bus_latency_ + r->dev->access_latency();
  return a;
}

Bus::Access Bus::write(std::uint32_t addr, std::uint32_t value,
                       unsigned size) {
  Access a;
  const Region* r = find(addr);
  if (r == nullptr) {
    a.fault = true;
    return a;
  }
  r->dev->write(addr - r->base, value, size);
  a.latency = bus_latency_ + r->dev->access_latency();
  return a;
}

}  // namespace aspen::sys
