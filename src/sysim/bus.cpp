#include "sysim/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace aspen::sys {

void Bus::attach(std::uint32_t base, std::uint32_t size, BusDevice* dev) {
  if (dev == nullptr) throw std::invalid_argument("Bus::attach: null device");
  if (size == 0) throw std::invalid_argument("Bus::attach: zero size");
  for (const auto& r : regions_) {
    const bool overlap = base < r.base + r.size && r.base < base + size;
    if (overlap)
      throw std::invalid_argument("Bus::attach: overlapping region for " +
                                  dev->name());
  }
  regions_.push_back({base, size, dev});
}

const Bus::Region* Bus::find(std::uint32_t addr) const {
  // MRU hit first: the unsigned subtraction folds the two range checks
  // (addr >= base && addr < base + size) into one compare.
  if (mru_ < regions_.size()) {
    const Region& m = regions_[mru_];
    if (addr - m.base < m.size) return &m;
  }
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const Region& r = regions_[i];
    if (addr - r.base < r.size) {
      mru_ = i;
      return &r;
    }
  }
  return nullptr;
}

BusDevice* Bus::device_at(std::uint32_t addr) const {
  const Region* r = find(addr);
  return r ? r->dev : nullptr;
}

Bus::Access Bus::read(std::uint32_t addr, unsigned size) {
  Access a;
  const Region* r = find(addr);
  if (r == nullptr) {
    a.fault = true;
    return a;
  }
  a.value = r->dev->read(addr - r->base, size);
  a.latency = bus_latency_ + r->dev->access_latency();
  return a;
}

Bus::Access Bus::write(std::uint32_t addr, std::uint32_t value,
                       unsigned size) {
  Access a;
  const Region* r = find(addr);
  if (r == nullptr) {
    a.fault = true;
    return a;
  }
  r->dev->write(addr - r->base, value, size);
  a.latency = bus_latency_ + r->dev->access_latency();
  a.activating = r->dev->write_is_activating(addr - r->base);
  return a;
}

Bus::DirectWindow Bus::direct_window(std::uint32_t addr) const {
  DirectWindow w;
  const Region* r = find(addr);
  if (r == nullptr) return w;
  // Region metadata is filled in even when the device exposes no span:
  // masters cache that as a negative entry and stop re-querying MMIO
  // regions on every access.
  w.base = r->base;
  w.size = r->size;
  w.latency = bus_latency_ + r->dev->access_latency();
  w.dev = r->dev;
  const BusDevice::DirectSpan span = r->dev->direct_span();
  if (span.data == nullptr || span.size == 0) return w;
  w.size = std::min(r->size, span.size);
  w.data = span.data;
  return w;
}

}  // namespace aspen::sys
