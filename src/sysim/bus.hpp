#pragma once
/// \file bus.hpp
/// System interconnect of the gem5-style platform (paper Fig. 3): a
/// single shared bus routing CPU / DMA accesses by address to memories
/// and memory-mapped devices. Each device reports its access latency;
/// the bus adds its own arbitration cost. Cycle accounting is returned
/// with every access so masters can stall accordingly.

#include <cstdint>
#include <string>
#include <vector>

namespace aspen::sys {

/// Anything addressable on the bus.
class BusDevice {
 public:
  virtual ~BusDevice() = default;
  /// Read `size` (1, 2 or 4) bytes at device-relative `offset`.
  virtual std::uint32_t read(std::uint32_t offset, unsigned size) = 0;
  /// Write `size` bytes.
  virtual void write(std::uint32_t offset, std::uint32_t value,
                     unsigned size) = 0;
  /// Cycles per access (on top of the bus latency).
  [[nodiscard]] virtual unsigned access_latency() const { return 1; }
  [[nodiscard]] virtual std::string name() const { return "device"; }
};

/// Simple address-routed bus. Regions must not overlap.
class Bus {
 public:
  /// Cycles added by the interconnect itself per transaction.
  explicit Bus(unsigned bus_latency = 1) : bus_latency_(bus_latency) {}

  void attach(std::uint32_t base, std::uint32_t size, BusDevice* dev);

  struct Access {
    std::uint32_t value = 0;
    unsigned latency = 0;
    bool fault = false;  ///< no device at address
  };
  [[nodiscard]] Access read(std::uint32_t addr, unsigned size);
  Access write(std::uint32_t addr, std::uint32_t value, unsigned size);

  /// Device mapped at `addr`, or nullptr.
  [[nodiscard]] BusDevice* device_at(std::uint32_t addr) const;

 private:
  struct Region {
    std::uint32_t base;
    std::uint32_t size;
    BusDevice* dev;
  };
  [[nodiscard]] const Region* find(std::uint32_t addr) const;
  std::vector<Region> regions_;
  unsigned bus_latency_;
};

}  // namespace aspen::sys
