#pragma once
/// \file bus.hpp
/// System interconnect of the gem5-style platform (paper Fig. 3): a
/// single shared bus routing CPU / DMA accesses by address to memories
/// and memory-mapped devices. Each device reports its access latency;
/// the bus adds its own arbitration cost. Cycle accounting is returned
/// with every access so masters can stall accordingly.
///
/// Fast path: plain memories expose their raw backing store through
/// `BusDevice::direct_span()`, and `Bus::direct_window()` resolves it
/// together with the region base and the fixed bus+device latency. A
/// master holding such a window (the CPU's DRAM fast path) can fetch,
/// load and store without the linear region scan or the virtual
/// read()/write() call, at bit-identical cycle cost. The remaining MMIO
/// traffic is served through `find()`, which keeps an MRU region cache.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace aspen::sys {

class BusDevice;

/// Little-endian scalar access on a raw byte store — the one audited
/// spot for the size-switched loads/stores shared by Memory and the
/// direct-span fast paths of bus masters. `size` is 1, 2 or 4.
inline std::uint32_t load_le(const std::uint8_t* p, unsigned size) {
  switch (size) {
    case 4: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case 2: {
      std::uint16_t h;
      std::memcpy(&h, p, 2);
      return h;
    }
    default: return *p;
  }
}
inline void store_le(std::uint8_t* p, std::uint32_t value, unsigned size) {
  switch (size) {
    case 4: std::memcpy(p, &value, 4); break;
    case 2: {
      const auto h = static_cast<std::uint16_t>(value);
      std::memcpy(p, &h, 2);
      break;
    }
    default: *p = static_cast<std::uint8_t>(value); break;
  }
}

/// Callback interface for masters that cache state derived from a
/// device's backing store (e.g. predecoded instructions). Registered via
/// `BusDevice::set_write_observer`; single observer per device.
class BusWriteObserver {
 public:
  virtual ~BusWriteObserver() = default;
  /// Bytes [offset, offset+bytes) of `dev` changed — through a bus-side
  /// write (DMA), a host-side load/fill, or an injected fault — or the
  /// device's read transform changed (stuck-at bits armed/cleared, which
  /// notify the full span). Any derived cache must be dropped.
  virtual void bus_memory_written(BusDevice* dev, std::uint32_t offset,
                                  std::uint32_t bytes) = 0;
};

/// Anything addressable on the bus.
class BusDevice {
 public:
  virtual ~BusDevice() = default;
  /// Read `size` (1, 2 or 4) bytes at device-relative `offset`. Reads
  /// must be pure with respect to tick()-observable state (no
  /// clear-on-read registers): masters rely on this to keep executing
  /// through MMIO loads without a device tick in between.
  virtual std::uint32_t read(std::uint32_t offset, unsigned size) = 0;
  /// Write `size` bytes.
  virtual void write(std::uint32_t offset, std::uint32_t value,
                     unsigned size) = 0;
  /// True when a write at `offset` can change tick()-observable behavior
  /// — start an operation or otherwise schedule future device activity.
  /// Pure storage (memories, SPM windows, address/length registers)
  /// returns false so masters may batch execution across such writes;
  /// the conservative default keeps unknown devices safe.
  [[nodiscard]] virtual bool write_is_activating(
      std::uint32_t /*offset*/) const {
    return true;
  }
  /// Cycles per access (on top of the bus latency).
  [[nodiscard]] virtual unsigned access_latency() const { return 1; }
  [[nodiscard]] virtual std::string name() const { return "device"; }

  /// Raw little-endian backing store for masters that bypass the virtual
  /// read/write calls. Devices whose reads have side effects or apply a
  /// transform (MMIO registers, memories with stuck-at faults armed)
  /// return {nullptr, 0}; a master must then fall back to read()/write().
  struct DirectSpan {
    std::uint8_t* data = nullptr;
    std::uint32_t size = 0;
  };
  [[nodiscard]] virtual DirectSpan direct_span() { return {}; }
  /// Report a bulk out-of-band mutation of the direct span (the DMA
  /// engine's bulk fast path writes straight into the raw store): the
  /// device must forward it to its registered write observer so derived
  /// caches (predecoded instructions) stay coherent. No-op for devices
  /// without a span.
  virtual void direct_span_written(std::uint32_t /*offset*/,
                                   std::uint32_t /*bytes*/) {}
  /// Register the (single) observer notified on out-of-band mutation of
  /// the backing store. Devices without a direct span ignore it.
  virtual void set_write_observer(BusWriteObserver* /*observer*/) {}
};

/// Simple address-routed bus. Regions must not overlap.
class Bus {
 public:
  /// Cycles added by the interconnect itself per transaction.
  explicit Bus(unsigned bus_latency = 1) : bus_latency_(bus_latency) {}

  void attach(std::uint32_t base, std::uint32_t size, BusDevice* dev);

  struct Access {
    std::uint32_t value = 0;
    unsigned latency = 0;
    bool fault = false;       ///< no device at address
    bool activating = false;  ///< write reached an activating register
  };
  [[nodiscard]] Access read(std::uint32_t addr, unsigned size);
  Access write(std::uint32_t addr, std::uint32_t value, unsigned size);

  /// Device mapped at `addr`, or nullptr.
  [[nodiscard]] BusDevice* device_at(std::uint32_t addr) const;

  /// Resolved fast-path window for the region containing `addr`: region
  /// base/size clipped to the device's direct span, the raw data pointer
  /// and the fixed per-access latency (bus + device). `data` is nullptr
  /// when the region cannot be accessed directly (MMIO, or the device
  /// currently refuses a span) — base/size/dev are still filled so
  /// masters can cache the miss; a fully zeroed window means unmapped.
  struct DirectWindow {
    std::uint32_t base = 0;
    std::uint32_t size = 0;
    std::uint8_t* data = nullptr;
    unsigned latency = 0;
    BusDevice* dev = nullptr;
  };
  [[nodiscard]] DirectWindow direct_window(std::uint32_t addr) const;

 private:
  struct Region {
    std::uint32_t base;
    std::uint32_t size;
    BusDevice* dev;
  };
  [[nodiscard]] const Region* find(std::uint32_t addr) const;
  std::vector<Region> regions_;
  unsigned bus_latency_;
  /// Most-recently-used region index: consecutive accesses overwhelmingly
  /// hit the same region, so find() is O(1) on the hot path.
  mutable std::size_t mru_ = 0;
};

}  // namespace aspen::sys
