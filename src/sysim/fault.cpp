#include "sysim/fault.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

namespace aspen::sys {

std::string to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kCpuRegfile: return "cpu-regfile";
    case FaultTarget::kDramData: return "dram-data";
    case FaultTarget::kAccelSpmW: return "accel-spm-w";
    case FaultTarget::kAccelSpmX: return "accel-spm-x";
    case FaultTarget::kAccelPhase: return "accel-phase";
  }
  return "?";
}

std::string to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kTransientFlip: return "transient";
    case FaultModel::kStuckAt0: return "stuck-at-0";
    case FaultModel::kStuckAt1: return "stuck-at-1";
  }
  return "?";
}

std::string to_string(Outcome o) {
  switch (o) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDueTrap: return "DUE-trap";
    case Outcome::kDueHang: return "DUE-hang";
  }
  return "?";
}

double CampaignResult::fraction(Outcome o) const {
  const auto it = counts.find(o);
  if (it == counts.end() || total == 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total);
}

FaultCampaign::FaultCampaign(SystemFactory factory, OutputReader read_output,
                             std::uint64_t max_cycles)
    : factory_(std::move(factory)),
      read_output_(std::move(read_output)),
      max_cycles_(max_cycles) {}

void FaultCampaign::ensure_staged() {
  if (staged_ready_) return;
  scratch_ = factory_();
  staged_ = scratch_->snapshot();
  staged_ready_ = true;
}

const std::vector<std::uint8_t>& FaultCampaign::golden() {
  if (!have_golden_) {
    ensure_staged();
    scratch_->restore(staged_);
    const auto result = scratch_->run();
    if (result.timed_out || result.halt == rv::Halt::kBusFault ||
        result.halt == rv::Halt::kIllegal)
      throw std::runtime_error("FaultCampaign: golden run failed");
    golden_ = read_output_(*scratch_);
    golden_cycles_ = result.cycles;
    have_golden_ = true;
  }
  return golden_;
}

std::uint64_t FaultCampaign::golden_cycles() {
  (void)golden();
  return golden_cycles_;
}

void FaultCampaign::inject(System& system, const FaultSpec& spec) {
  switch (spec.target) {
    case FaultTarget::kCpuRegfile: {
      const int reg = static_cast<int>(spec.index % 31 + 1);  // skip x0
      if (spec.model == FaultModel::kTransientFlip)
        system.cpu().flip_reg_bit(reg, spec.bit);
      else
        system.cpu().set_reg_stuck_bit(reg, spec.bit,
                                       spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kDramData: {
      if (spec.model == FaultModel::kTransientFlip)
        system.dram().flip_bit(spec.index, spec.bit);
      else
        system.dram().set_stuck_bit(spec.index, spec.bit,
                                    spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelSpmW:
    case FaultTarget::kAccelSpmX: {
      Memory& spm = spec.target == FaultTarget::kAccelSpmW
                        ? system.pe(0).spm_w()
                        : system.pe(0).spm_x();
      const std::uint32_t off = spec.index % spm.size();
      if (spec.model == FaultModel::kTransientFlip)
        spm.flip_bit(off, spec.bit);
      else
        spm.set_stuck_bit(off, spec.bit,
                          spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelPhase: {
      // Photonic configuration upset: a phase deviates. Stuck-at maps to
      // a persistent offset (PCM cell switched to a wrong level).
      system.pe(0).inject_phase_fault(spec.index, spec.phase_delta_rad);
      break;
    }
  }
}

Outcome FaultCampaign::classify(System& system,
                                const OutputReader& read_output,
                                const std::vector<std::uint8_t>& golden) {
  if (!system.cpu().halted()) return Outcome::kDueHang;
  const rv::Halt h = system.cpu().halt_reason();
  if (h == rv::Halt::kBusFault || h == rv::Halt::kIllegal)
    return Outcome::kDueTrap;
  return read_output(system) == golden ? Outcome::kMasked : Outcome::kSdc;
}

Outcome FaultCampaign::run_trial(System& system, const FaultSpec& spec) {
  system.restore(staged_);

  // Run to the exact injection cycle (event-driven under the hood),
  // inject, then run to completion.
  system.run_until(std::min(spec.cycle, max_cycles_));
  inject(system, spec);
  system.run_until(max_cycles_);
  return classify(system, read_output_, golden_);
}

Outcome FaultCampaign::run_one(const FaultSpec& spec) {
  (void)golden();  // ensure reference exists (also stages the snapshot)
  return run_trial(*scratch_, spec);
}

std::vector<FaultSpec> FaultCampaign::sample_specs(FaultTarget target,
                                                   FaultModel model,
                                                   int trials, lina::Rng& rng,
                                                   std::uint32_t index_lo,
                                                   std::uint32_t index_hi) {
  const std::uint64_t window = golden_cycles();
  // The staged template sizes the injectable structures.
  System& probe = *scratch_;
  const auto default_hi = [&](std::uint32_t structure_size) {
    return index_hi != 0 ? index_hi : structure_size - 1;
  };

  std::vector<FaultSpec> specs;
  specs.reserve(static_cast<std::size_t>(trials > 0 ? trials : 0));
  for (int t = 0; t < trials; ++t) {
    FaultSpec spec;
    spec.target = target;
    spec.model = model;
    spec.cycle = rng.uniform_int(1, window > 2 ? window - 1 : 1);
    spec.bit = static_cast<unsigned>(rng.uniform_int(0, 31));
    switch (target) {
      case FaultTarget::kCpuRegfile:
        spec.index = static_cast<std::uint32_t>(rng.uniform_int(0, 30));
        break;
      case FaultTarget::kDramData:
        spec.index = static_cast<std::uint32_t>(rng.uniform_int(
            index_lo, default_hi(probe.config().dram_size)));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelSpmW:
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(index_lo, default_hi(probe.pe(0).spm_w().size())));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelSpmX:
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(index_lo, default_hi(probe.pe(0).spm_x().size())));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelPhase: {
        const auto nph =
            static_cast<std::uint32_t>(probe.pe(0).phase_state_size());
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(0, nph > 1 ? nph - 1 : 0));
        spec.phase_delta_rad = rng.uniform(-1.5, 1.5);
        break;
      }
    }
    specs.push_back(spec);
  }
  return specs;
}

std::vector<Outcome> FaultCampaign::run_trials(
    const std::vector<FaultSpec>& specs, unsigned threads) {
  (void)golden();
  const std::size_t n = specs.size();
  std::vector<Outcome> outcomes(n, Outcome::kMasked);
  std::size_t workers = threads == 0 ? 1 : threads;
  if (workers > n) workers = n > 0 ? n : 1;

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      outcomes[i] = run_trial(*scratch_, specs[i]);
    return outcomes;
  }

  // Private replica per extra worker, constructed serially (the factory
  // need not be thread-safe) and cached across run_trials calls; worker
  // 0 reuses the template. Construction is paid once per worker for the
  // campaign's lifetime — every trial itself starts from the shared
  // snapshot.
  while (replicas_.size() < workers - 1) replicas_.push_back(factory_());

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(workers);
  const auto work = [&](System& system, std::size_t w) {
    try {
      for (std::size_t i; (i = next.fetch_add(1)) < n;)
        outcomes[i] = run_trial(system, specs[i]);
    } catch (...) {
      errors[w] = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w)
    pool.emplace_back(work, std::ref(*replicas_[w - 1]), w);
  work(*scratch_, 0);
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return outcomes;
}

CampaignResult FaultCampaign::run_campaign(FaultTarget target,
                                           FaultModel model, int trials,
                                           lina::Rng& rng,
                                           std::uint32_t index_lo,
                                           std::uint32_t index_hi,
                                           unsigned threads) {
  const std::vector<FaultSpec> specs =
      sample_specs(target, model, trials, rng, index_lo, index_hi);
  const std::vector<Outcome> outcomes = run_trials(specs, threads);
  CampaignResult result;
  for (const Outcome o : outcomes) {
    ++result.counts[o];
    ++result.total;
  }
  return result;
}

}  // namespace aspen::sys
