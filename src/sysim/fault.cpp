#include "sysim/fault.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

namespace aspen::sys {

std::string to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kCpuRegfile: return "cpu-regfile";
    case FaultTarget::kDramData: return "dram-data";
    case FaultTarget::kAccelSpmW: return "accel-spm-w";
    case FaultTarget::kAccelSpmX: return "accel-spm-x";
    case FaultTarget::kAccelPhase: return "accel-phase";
  }
  return "?";
}

std::string to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kTransientFlip: return "transient";
    case FaultModel::kStuckAt0: return "stuck-at-0";
    case FaultModel::kStuckAt1: return "stuck-at-1";
  }
  return "?";
}

std::string to_string(Outcome o) {
  switch (o) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDueTrap: return "DUE-trap";
    case Outcome::kDueHang: return "DUE-hang";
    case Outcome::kDetectedCorrected: return "detected-corrected";
    case Outcome::kDetectedRecovered: return "detected-recovered";
  }
  return "?";
}

double CampaignResult::fraction(Outcome o) const {
  const auto it = counts.find(o);
  if (it == counts.end() || total == 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total);
}

double CampaignResult::detection_coverage() const {
  int corrupting = 0, detected = 0;
  for (const auto& [o, n] : counts) {
    if (o == Outcome::kMasked) continue;
    corrupting += n;
    if (o != Outcome::kSdc) detected += n;
  }
  if (corrupting == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(corrupting);
}

CampaignResult histogram_of(const std::vector<Outcome>& outcomes) {
  CampaignResult r;
  for (const Outcome o : outcomes) ++r.counts[o];
  r.total = static_cast<int>(outcomes.size());
  return r;
}

FaultCampaign::FaultCampaign(SystemFactory factory, OutputReader read_output,
                             std::uint64_t max_cycles)
    : factory_(std::move(factory)),
      read_output_(std::move(read_output)),
      max_cycles_(max_cycles) {}

void FaultCampaign::ensure_staged() {
  if (staged_ready_) return;
  scratch_ = factory_();
  staged_ = scratch_->snapshot();
  staged_ready_ = true;
}

const std::vector<std::uint8_t>& FaultCampaign::golden() {
  if (!have_golden_) {
    ensure_staged();
    scratch_->restore(staged_);
    const auto result = scratch_->run();
    if (result.timed_out || result.halt == rv::Halt::kBusFault ||
        result.halt == rv::Halt::kIllegal)
      throw std::runtime_error("FaultCampaign: golden run failed");
    golden_ = read_output_(*scratch_);
    golden_cycles_ = result.cycles;
    have_golden_ = true;
  }
  return golden_;
}

std::uint64_t FaultCampaign::golden_cycles() {
  (void)golden();
  return golden_cycles_;
}

const System::SystemSnapshot& FaultCampaign::staged_snapshot() {
  ensure_staged();
  return staged_;
}

void FaultCampaign::build_ladder(unsigned rungs) {
  (void)golden();
  ladder_.clear();
  if (rungs <= 1) return;
  ladder_.push_back({staged_.cycle, staged_});
  if (golden_cycles_ == 0) return;
  // One sequential pass of the golden run, snapshotting at each rung
  // cycle. run_until guarantees now() == target unless the CPU halts
  // first (then the remaining rungs would sit past the window and never
  // be preferred over completion anyway).
  scratch_->restore(staged_);
  for (unsigned k = 1; k < rungs; ++k) {
    const std::uint64_t c =
        staged_.cycle + (golden_cycles_ * k) / rungs;
    if (c <= ladder_.back().cycle) continue;
    scratch_->run_until(c);
    if (scratch_->cpu().halted()) break;
    Rung rung;
    rung.cycle = c;
    rung.snap = scratch_->snapshot();
    // Bounds of this rung's DRAM image against the staged image: the
    // golden prefix is deterministic, so this one-time scan lets trials
    // restoring across rungs hand restore_fast a tight stale span
    // instead of the whole DRAM.
    const std::vector<std::uint8_t>& a = rung.snap.dram.bytes;
    const std::vector<std::uint8_t>& b = staged_.dram.bytes;
    std::size_t lo = 0;
    const std::size_t n = a.size();
    while (lo < n && a[lo] == b[lo]) ++lo;
    if (lo < n) {
      std::size_t hi = n;
      while (hi > lo && a[hi - 1] == b[hi - 1]) --hi;
      rung.stale_lo = static_cast<std::uint32_t>(lo);
      rung.stale_len = static_cast<std::uint32_t>(hi - lo);
    }
    ladder_.push_back(std::move(rung));
  }
}

void FaultCampaign::set_recovery(RecoveryReader reader,
                                 std::vector<std::uint8_t> fallback_golden) {
  recovery_reader_ = std::move(reader);
  fallback_golden_ = std::move(fallback_golden);
}

void FaultCampaign::adopt_staged(System::SystemSnapshot staged,
                                 std::vector<std::uint8_t> golden,
                                 std::uint64_t golden_cycles) {
  ensure_staged();  // the factory-built template executes the trials
  staged_ = std::move(staged);
  golden_ = std::move(golden);
  golden_cycles_ = golden_cycles;
  have_golden_ = true;
  ladder_.clear();
}

void FaultCampaign::inject(System& system, const FaultSpec& spec) {
  switch (spec.target) {
    case FaultTarget::kCpuRegfile: {
      const int reg = static_cast<int>(spec.index % 31 + 1);  // skip x0
      if (spec.model == FaultModel::kTransientFlip)
        system.cpu().flip_reg_bit(reg, spec.bit);
      else
        system.cpu().set_reg_stuck_bit(reg, spec.bit,
                                       spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kDramData: {
      if (spec.model == FaultModel::kTransientFlip)
        system.dram().flip_bit(spec.index, spec.bit);
      else
        system.dram().set_stuck_bit(spec.index, spec.bit,
                                    spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelSpmW:
    case FaultTarget::kAccelSpmX: {
      Memory& spm = spec.target == FaultTarget::kAccelSpmW
                        ? system.pe(0).spm_w()
                        : system.pe(0).spm_x();
      const std::uint32_t off = spec.index % spm.size();
      if (spec.model == FaultModel::kTransientFlip)
        spm.flip_bit(off, spec.bit);
      else
        spm.set_stuck_bit(off, spec.bit,
                          spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelPhase: {
      // Photonic configuration upset: a phase deviates. Stuck-at maps to
      // a persistent offset (PCM cell switched to a wrong level).
      system.pe(0).inject_phase_fault(spec.index, spec.phase_delta_rad);
      break;
    }
  }
}

Outcome FaultCampaign::classify(System& system,
                                const OutputReader& read_output,
                                const std::vector<std::uint8_t>& golden) {
  if (!system.cpu().halted()) return Outcome::kDueHang;
  const rv::Halt h = system.cpu().halt_reason();
  if (h == rv::Halt::kBusFault || h == rv::Halt::kIllegal)
    return Outcome::kDueTrap;
  return read_output(system) == golden ? Outcome::kMasked : Outcome::kSdc;
}

Outcome FaultCampaign::classify_trial(System& system) const {
  if (!recovery_reader_)
    return classify(system, read_output_, golden_);
  if (!system.cpu().halted()) return Outcome::kDueHang;
  const rv::Halt h = system.cpu().halt_reason();
  if (h == rv::Halt::kBusFault || h == rv::Halt::kIllegal)
    return Outcome::kDueTrap;
  const GemmRecoveryRecord rec = recovery_reader_(system);
  const std::vector<std::uint8_t> out = read_output_(system);
  if (rec.fell_back != 0) {
    // The guest abandoned the accelerator: correct means matching the
    // software-path reference (its rounding differs from the photonic
    // golden, so comparing against golden_ would mislabel every
    // successful fallback as SDC).
    return out == fallback_golden_ ? Outcome::kDetectedRecovered
                                   : Outcome::kSdc;
  }
  if (out == golden_) {
    // Correct output, accelerator path. Errors the guest observed (CRC /
    // watchdog retries) or the ABFT unit silently repaired mean the
    // fault was real and the protection earned the verdict.
    return (rec.detected != 0 || rec.corrected != 0 || rec.retried != 0)
               ? Outcome::kDetectedCorrected
               : Outcome::kMasked;
  }
  return Outcome::kSdc;
}

std::size_t FaultCampaign::rung_index(std::uint64_t cycle) const {
  // Latest rung at or before the injection cycle. Rung cycles ascend, so
  // this is one upper_bound.
  const auto it = std::upper_bound(
      ladder_.begin(), ladder_.end(), cycle,
      [](std::uint64_t c, const Rung& r) { return c < r.cycle; });
  return it == ladder_.begin() ? 0 : static_cast<std::size_t>(it - ladder_.begin()) - 1;
}

Outcome FaultCampaign::run_trial(System& system, const FaultSpec& spec,
                                 std::size_t* last_rung) {
  if (spec.cycle > max_cycles_)
    throw std::invalid_argument(
        "FaultCampaign: injection cycle " + std::to_string(spec.cycle) +
        " beyond the cycle budget " + std::to_string(max_cycles_) +
        " — the fault could never be injected");

  if (ladder_.empty()) {
    system.restore(staged_);
  } else {
    // Restore the latest checkpoint at or before the injection cycle.
    // The diff-based restore scans only the memory's dirty watermark
    // (what the previous trial wrote) plus the stale span between the
    // previously restored rung's image and this one's — empty when the
    // rung repeats, which the rung-grouped execution order makes the
    // common case.
    const std::size_t r = rung_index(spec.cycle);
    std::uint32_t stale_lo = 0, stale_len = 0xFFFFFFFFu;
    if (last_rung != nullptr && *last_rung != kNoRung) {
      if (*last_rung == r) {
        stale_len = 0;
      } else {
        const Rung& prev = ladder_[*last_rung];
        const Rung& cur = ladder_[r];
        if (prev.stale_len == 0) {
          stale_lo = cur.stale_lo;
          stale_len = cur.stale_len;
        } else if (cur.stale_len == 0) {
          stale_lo = prev.stale_lo;
          stale_len = prev.stale_len;
        } else {
          stale_lo = std::min(prev.stale_lo, cur.stale_lo);
          stale_len = std::max(prev.stale_lo + prev.stale_len,
                               cur.stale_lo + cur.stale_len) -
                      stale_lo;
        }
      }
    }
    system.restore_fast(ladder_[r].snap, stale_lo, stale_len);
    if (last_rung != nullptr) *last_rung = r;
  }

  // Run to the exact injection cycle (event-driven under the hood),
  // inject, then run to completion.
  system.run_until(spec.cycle);
  inject(system, spec);
  system.run_until(max_cycles_);
  return classify_trial(system);
}

Outcome FaultCampaign::run_one(const FaultSpec& spec) {
  (void)golden();  // ensure reference exists (also stages the snapshot)
  return run_trial(*scratch_, spec);
}

std::vector<FaultSpec> FaultCampaign::sample_specs(FaultTarget target,
                                                   FaultModel model,
                                                   int trials, lina::Rng& rng,
                                                   std::uint32_t index_lo,
                                                   std::uint32_t index_hi) {
  const std::uint64_t window = golden_cycles();
  // The staged template sizes the injectable structures.
  System& probe = *scratch_;
  const auto structure_size = [&]() -> std::uint32_t {
    switch (target) {
      case FaultTarget::kCpuRegfile: return 31;  // index i = register x(i+1)
      case FaultTarget::kDramData: return probe.config().dram_size;
      case FaultTarget::kAccelSpmW: return probe.pe(0).spm_w().size();
      case FaultTarget::kAccelSpmX: return probe.pe(0).spm_x().size();
      case FaultTarget::kAccelPhase:
        return static_cast<std::uint32_t>(probe.pe(0).phase_state_size());
    }
    return 0;
  }();
  // [lo, hi] clamped to the structure; hi == 0 selects the whole range.
  // Every target honors the caller's bounds — a regfile or phase
  // campaign over a sub-range is as legitimate as a DRAM data-region
  // one — and an empty clamped range is an error, not a silent default.
  const std::uint32_t max_index = structure_size > 0 ? structure_size - 1 : 0;
  const std::uint32_t lo = index_lo;
  const std::uint32_t hi =
      index_hi == 0 ? max_index : std::min(index_hi, max_index);
  if (lo > hi)
    throw std::invalid_argument(
        "FaultCampaign::sample_specs: empty index range [" +
        std::to_string(index_lo) + ", " + std::to_string(index_hi) +
        "] for " + to_string(target) + " (structure size " +
        std::to_string(structure_size) + ")");

  std::vector<FaultSpec> specs;
  specs.reserve(static_cast<std::size_t>(trials > 0 ? trials : 0));
  for (int t = 0; t < trials; ++t) {
    FaultSpec spec;
    spec.target = target;
    spec.model = model;
    // Closed injection window: cycle 0 (before the first executed cycle)
    // and golden_cycles() (exactly at completion) are both reachable.
    spec.cycle = rng.uniform_int(0, window);
    spec.bit = static_cast<unsigned>(rng.uniform_int(0, 31));
    spec.index = static_cast<std::uint32_t>(rng.uniform_int(lo, hi));
    switch (target) {
      case FaultTarget::kCpuRegfile:
        break;
      case FaultTarget::kDramData:
      case FaultTarget::kAccelSpmW:
      case FaultTarget::kAccelSpmX:
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelPhase:
        spec.phase_delta_rad = rng.uniform(-1.5, 1.5);
        break;
    }
    specs.push_back(spec);
  }
  return specs;
}

std::vector<Outcome> FaultCampaign::run_trials(
    const std::vector<FaultSpec>& specs, unsigned threads) {
  (void)golden();
  const std::size_t n = specs.size();
  std::vector<Outcome> outcomes(n, Outcome::kMasked);
  std::size_t workers = threads == 0 ? 1 : threads;
  if (workers > n) workers = n > 0 ? n : 1;

  // Execution order: grouped by ladder rung (stable within a rung) so
  // consecutive trials restore from the same checkpoint image and the
  // diff-based restore reverts as little as possible. Outcomes are
  // always reported in spec order, so the grouping is invisible to
  // callers and identical for every thread count.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (!ladder_.empty())
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rung_index(specs[a].cycle) <
                              rung_index(specs[b].cycle);
                     });

  if (workers <= 1) {
    std::size_t last = kNoRung;
    for (std::size_t i = 0; i < n; ++i)
      outcomes[order[i]] = run_trial(*scratch_, specs[order[i]], &last);
    return outcomes;
  }

  // Private replica per extra worker, constructed serially (the factory
  // need not be thread-safe) and cached across run_trials calls; worker
  // 0 reuses the template. Construction is paid once per worker for the
  // campaign's lifetime — every trial itself starts from the shared
  // snapshot.
  while (replicas_.size() < workers - 1) replicas_.push_back(factory_());

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(workers);
  const auto work = [&](System& system, std::size_t w) {
    try {
      std::size_t last = kNoRung;
      for (std::size_t k; (k = next.fetch_add(1)) < n;) {
        const std::size_t i = order[k];
        outcomes[i] = run_trial(system, specs[i], &last);
      }
    } catch (...) {
      errors[w] = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w)
    pool.emplace_back(work, std::ref(*replicas_[w - 1]), w);
  work(*scratch_, 0);
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return outcomes;
}

CampaignResult FaultCampaign::run_campaign(FaultTarget target,
                                           FaultModel model, int trials,
                                           lina::Rng& rng,
                                           std::uint32_t index_lo,
                                           std::uint32_t index_hi,
                                           unsigned threads) {
  const std::vector<FaultSpec> specs =
      sample_specs(target, model, trials, rng, index_lo, index_hi);
  const std::vector<Outcome> outcomes = run_trials(specs, threads);
  CampaignResult result;
  for (const Outcome o : outcomes) {
    ++result.counts[o];
    ++result.total;
  }
  return result;
}

}  // namespace aspen::sys
