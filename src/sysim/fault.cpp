#include "sysim/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace aspen::sys {

std::string to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kCpuRegfile: return "cpu-regfile";
    case FaultTarget::kDramData: return "dram-data";
    case FaultTarget::kAccelSpmW: return "accel-spm-w";
    case FaultTarget::kAccelSpmX: return "accel-spm-x";
    case FaultTarget::kAccelPhase: return "accel-phase";
  }
  return "?";
}

std::string to_string(FaultModel m) {
  switch (m) {
    case FaultModel::kTransientFlip: return "transient";
    case FaultModel::kStuckAt0: return "stuck-at-0";
    case FaultModel::kStuckAt1: return "stuck-at-1";
  }
  return "?";
}

std::string to_string(Outcome o) {
  switch (o) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDueTrap: return "DUE-trap";
    case Outcome::kDueHang: return "DUE-hang";
  }
  return "?";
}

double CampaignResult::fraction(Outcome o) const {
  const auto it = counts.find(o);
  if (it == counts.end() || total == 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total);
}

FaultCampaign::FaultCampaign(SystemFactory factory, OutputReader read_output,
                             std::uint64_t max_cycles)
    : factory_(std::move(factory)),
      read_output_(std::move(read_output)),
      max_cycles_(max_cycles) {}

const std::vector<std::uint8_t>& FaultCampaign::golden() {
  if (!have_golden_) {
    auto system = factory_();
    const auto result = system->run();
    if (result.timed_out || result.halt == rv::Halt::kBusFault ||
        result.halt == rv::Halt::kIllegal)
      throw std::runtime_error("FaultCampaign: golden run failed");
    golden_ = read_output_(*system);
    golden_cycles_ = result.cycles;
    have_golden_ = true;
  }
  return golden_;
}

std::uint64_t FaultCampaign::golden_cycles() {
  (void)golden();
  return golden_cycles_;
}

void FaultCampaign::inject(System& system, const FaultSpec& spec) {
  switch (spec.target) {
    case FaultTarget::kCpuRegfile: {
      const int reg = static_cast<int>(spec.index % 31 + 1);  // skip x0
      if (spec.model == FaultModel::kTransientFlip)
        system.cpu().flip_reg_bit(reg, spec.bit);
      else
        system.cpu().set_reg_stuck_bit(reg, spec.bit,
                                       spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kDramData: {
      if (spec.model == FaultModel::kTransientFlip)
        system.dram().flip_bit(spec.index, spec.bit);
      else
        system.dram().set_stuck_bit(spec.index, spec.bit,
                                    spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelSpmW:
    case FaultTarget::kAccelSpmX: {
      Memory& spm = spec.target == FaultTarget::kAccelSpmW
                        ? system.pe(0).spm_w()
                        : system.pe(0).spm_x();
      const std::uint32_t off = spec.index % spm.size();
      if (spec.model == FaultModel::kTransientFlip)
        spm.flip_bit(off, spec.bit);
      else
        spm.set_stuck_bit(off, spec.bit,
                          spec.model == FaultModel::kStuckAt1);
      break;
    }
    case FaultTarget::kAccelPhase: {
      // Photonic configuration upset: a phase deviates. Stuck-at maps to
      // a persistent offset (PCM cell switched to a wrong level).
      system.pe(0).inject_phase_fault(spec.index, spec.phase_delta_rad);
      break;
    }
  }
}

Outcome FaultCampaign::run_one(const FaultSpec& spec) {
  (void)golden();  // ensure reference exists
  auto system = factory_();

  // Run to the exact injection cycle (event-driven under the hood),
  // inject, then run to completion.
  system->run_until(std::min(spec.cycle, max_cycles_));
  inject(*system, spec);
  system->run_until(max_cycles_);

  if (!system->cpu().halted()) return Outcome::kDueHang;
  const rv::Halt h = system->cpu().halt_reason();
  if (h == rv::Halt::kBusFault || h == rv::Halt::kIllegal)
    return Outcome::kDueTrap;
  const std::vector<std::uint8_t> out = read_output_(*system);
  return out == golden_ ? Outcome::kMasked : Outcome::kSdc;
}

CampaignResult FaultCampaign::run_campaign(FaultTarget target,
                                           FaultModel model, int trials,
                                           lina::Rng& rng,
                                           std::uint32_t index_lo,
                                           std::uint32_t index_hi) {
  CampaignResult result;
  const std::uint64_t window = golden_cycles();
  // Probe one system to size the injectable structures.
  auto probe = factory_();
  const auto default_hi = [&](std::uint32_t structure_size) {
    return index_hi != 0 ? index_hi : structure_size - 1;
  };

  for (int t = 0; t < trials; ++t) {
    FaultSpec spec;
    spec.target = target;
    spec.model = model;
    spec.cycle = rng.uniform_int(1, window > 2 ? window - 1 : 1);
    spec.bit = static_cast<unsigned>(rng.uniform_int(0, 31));
    switch (target) {
      case FaultTarget::kCpuRegfile:
        spec.index = static_cast<std::uint32_t>(rng.uniform_int(0, 30));
        break;
      case FaultTarget::kDramData:
        spec.index = static_cast<std::uint32_t>(rng.uniform_int(
            index_lo, default_hi(probe->config().dram_size)));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelSpmW:
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(index_lo, default_hi(probe->pe(0).spm_w().size())));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelSpmX:
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(index_lo, default_hi(probe->pe(0).spm_x().size())));
        spec.bit = static_cast<unsigned>(rng.uniform_int(0, 7));
        break;
      case FaultTarget::kAccelPhase: {
        const auto nph =
            static_cast<std::uint32_t>(probe->pe(0).phase_state_size());
        spec.index = static_cast<std::uint32_t>(
            rng.uniform_int(0, nph > 1 ? nph - 1 : 0));
        spec.phase_delta_rad = rng.uniform(-1.5, 1.5);
        break;
      }
    }
    ++result.counts[run_one(spec)];
    ++result.total;
  }
  return result;
}

}  // namespace aspen::sys
