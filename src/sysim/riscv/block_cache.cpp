#include "sysim/riscv/block_cache.hpp"

#include <cstdlib>
#include <cstring>

namespace aspen::sys::rv {

void BlockCache::invalidate_range(std::uint32_t addr, std::uint32_t bytes) {
  if (!extent_.overlaps(addr, bytes)) return;
  const std::uint64_t wr_end = static_cast<std::uint64_t>(addr) + bytes;
  bool any = false;
  for (Block& b : pool_) {
    if (!b.valid) continue;
    if (b.start < wr_end && b.end > addr) {
      b.valid = false;
      ++stats_.evictions;
      any = true;
    }
  }
  // The extent stays conservative (never shrinks); a bumped generation
  // is what tells an in-flight executor its block may be gone.
  if (any) ++gen_;
}

void BlockCache::flush() {
  for (Block& b : pool_) {
    if (b.valid) {
      b.valid = false;
      ++stats_.evictions;
    }
  }
  extent_.reset();
  ++gen_;
}

bool block_tier_env_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("ASPEN_BLOCK_TIER");
    return v == nullptr || v[0] == '\0' || std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

bool block_constfold_env_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("ASPEN_BLOCK_CONSTFOLD");
    return v == nullptr || v[0] == '\0' || std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

}  // namespace aspen::sys::rv
