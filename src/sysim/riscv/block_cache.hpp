#pragma once
/// \file block_cache.hpp
/// Basic-block translation tier over the predecoded micro-op engine:
/// straight-line instruction runs are decoded once into a Block — an
/// array of micro-ops with a single entry check — executed back-to-back
/// with per-op cycle/instret accounting, chained across direct
/// branches/jumps via memoized successor links, and peephole-fused
/// (lui+addi, auipc+jalr, load+op, op+branch) at build time. Coherence
/// rides the same write paths that keep the per-instruction micro-op
/// cache honest: every store/DMA/fault-flip invalidation call also
/// evicts overlapping blocks, and a generation counter lets the
/// executor notice when the block it is running was invalidated under
/// its feet (self-modifying code). Results are bit-identical to the
/// uop-at-a-time path and to the legacy decode-every-fetch interpreter.

#include <cstdint>
#include <vector>

namespace aspen::sys::rv {

/// Decoded micro-operation: one fetched word reduced to a dense handler
/// tag plus pre-extracted register indices and a pre-extended immediate
/// (shamt / CSR number reuse the imm slot). Shared by the per-PC
/// micro-op cache and the block tier.
struct MicroOp {
  enum Op : std::uint8_t {
    kLui, kAuipc, kJal, kJalr,
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    kLb, kLh, kLw, kLbu, kLhu,
    kSb, kSh, kSw,
    kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
    kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
    kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
    kFence, kEcall, kEbreak, kWfi, kMret,
    kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
    kIllegal,
  };
  std::uint8_t op = kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  /// Encoded length in bytes: 2 for an RV32C form (expanded to the same
  /// Op set), 4 for a full-width instruction. Drives PC stepping, link
  /// values (jal/jalr write pc+len), and icache/block byte extents.
  std::uint8_t len = 4;
  std::uint32_t imm = 0;
};

/// Macro-op fusion kinds. A fused BlockOp retires both constituent
/// instructions with their exact individual cycle/instret/stall
/// bookkeeping — fusion removes dispatch overhead, never timing.
enum FuseKind : std::uint8_t {
  kFuseNone = 0,
  kFuseLuiAddi,    ///< lui rd,hi ; addi rd2,rd,lo   (materialize constant)
  kFuseAuipcJalr,  ///< auipc rd,hi ; jalr rd2,rd,lo (static call target)
  kFuseLoadOp,     ///< load rd ; ALU/M op reading rd
  kFuseOpBranch,   ///< 1-cycle ALU op rd ; branch reading rd
};

/// Constant-fold kinds computed at block-build time by propagating known
/// register constants (seeded by lui / resolved-auipc / addi chains)
/// forward through the block. A fold never changes timing — the folded
/// op retires with the exact cycle/stall cost of its unfolded form — it
/// only precomputes the data result so dispatch skips the register reads
/// and ALU/compare work. Folds are sound because every folded input is
/// produced *inside* the block before its use (nothing is assumed about
/// register state at block entry beyond x0 == 0), and they are bypassed
/// at runtime whenever stuck-at register faults are armed (the masked
/// read the fold skipped would have changed the value).
enum FoldKind : std::uint8_t {
  kFoldNone = 0,
  kFoldValue,   ///< ALU/M op: result precomputed in fold_val
  kFoldAddr,    ///< load/store: effective address precomputed in fold_val
  kFoldBranch,  ///< branch: direction known; fold_val = 1 when taken
};

/// One block slot: a single micro-op, or a fused pair (`fuse` != none).
struct BlockOp {
  MicroOp a;
  MicroOp b;                       ///< second half when fused
  std::uint8_t fuse = kFuseNone;
  std::uint8_t fold = kFoldNone;   ///< constant-fold kind (unfused ops only)
  /// Total encoded bytes of the slot (a.len, + b.len when fused).
  std::uint8_t len = 4;
  /// Precomputed fusion result: the full constant for kFuseLuiAddi, the
  /// resolved jump target for kFuseAuipcJalr.
  std::uint32_t fused_imm = 0;
  /// Precomputed fold result (see FoldKind).
  std::uint32_t fold_val = 0;
};

/// A run of block ops the executor can retire with batched bookkeeping
/// (`static_run`: pure register ops whose cycle cost is known at build
/// time — no faults, traps, bus traffic, or PC/CSR reads — so budget,
/// cycle, instret, and pc updates happen once per run), or a single op
/// needing full per-op bookkeeping (memory, control flow, system, CSR).
struct Segment {
  std::uint32_t first = 0;    ///< index into Block::ops
  std::uint32_t count = 0;    ///< BlockOps in this segment
  std::uint32_t cycles = 0;   ///< static cycle cost (static_run only)
  std::uint32_t instret = 0;  ///< instructions retired (static_run only)
  std::uint32_t pc_bump = 0;  ///< bytes advanced (static_run only)
  bool static_run = false;
};

/// A decoded straight-line run [start, end) ending at the first control
/// transfer (or the window edge / length cap). Successor PCs are static
/// where the terminator allows; links memoize the successor's pool slot
/// so hot loops re-dispatch without a lookup. Links are hints only:
/// every use re-validates `valid && start == pc`, so stale links
/// self-heal after eviction.
struct Block {
  static constexpr std::uint32_t kNoPc = 0xFFFFFFFFu;
  std::uint32_t start = kNoPc;
  std::uint32_t end = 0;        ///< one past the last instruction byte
  bool valid = false;
  std::uint32_t taken_pc = kNoPc;
  std::uint32_t fall_pc = kNoPc;
  std::int32_t taken_link = -1;
  std::int32_t fall_link = -1;
  std::vector<BlockOp> ops;
  std::vector<Segment> segs;  ///< exec plan: static runs + dynamic singles
};

/// Byte-extent [lo, hi) over a set of cached code ranges: the exact
/// overlap test store-invalidation uses to reject unrelated data
/// traffic cheaply. Shared by the micro-op cache (entries cover
/// [tag, tag+4), so its extent is [min tag, max tag + 4)) and the block
/// cache (blocks cover [start, end)); half-word-aligned PCs and spans
/// landing exactly on either edge resolve exactly — no slack bytes.
struct ByteExtent {
  std::uint32_t lo = 0xFFFFFFFFu;
  std::uint32_t hi = 0;

  [[nodiscard]] bool empty() const { return hi <= lo; }
  void reset() {
    lo = 0xFFFFFFFFu;
    hi = 0;
  }
  void grow(std::uint32_t a, std::uint32_t b) {
    if (a < lo) lo = a;
    if (b > hi) hi = b;
  }
  /// True when [addr, addr+bytes) intersects [lo, hi). The sum is
  /// widened so a span reaching the top of the address space cannot
  /// wrap past the extent.
  [[nodiscard]] bool overlaps(std::uint32_t addr, std::uint32_t bytes) const {
    return !empty() && bytes != 0 && addr < hi &&
           static_cast<std::uint64_t>(addr) + bytes > lo;
  }
};

/// Diagnostic counters for the block tier (derived state, excluded from
/// snapshots — they describe host-side execution strategy, not
/// architectural progress).
struct BlockStats {
  std::uint64_t blocks_built = 0;
  std::uint64_t dispatches = 0;   ///< block executions entered
  std::uint64_t chained = 0;      ///< dispatches resolved via a chain link
  std::uint64_t fused_built = 0;  ///< fused pairs created at build time
  std::uint64_t fused_exec = 0;   ///< fused pairs fully retired
  std::uint64_t evictions = 0;    ///< blocks dropped by invalidation/flush
  std::uint64_t fallback_steps = 0;  ///< single-step dispatches (no block)
  std::uint64_t lookup_hits = 0;
  std::uint64_t lookup_misses = 0;
  std::uint64_t folded_built = 0;  ///< ops constant-folded at build time
  std::uint64_t folded_exec = 0;   ///< folded ops retired via their fold
  std::uint64_t rvc_built = 0;     ///< compressed (2-byte) ops decoded
  std::uint64_t fetch_bytes = 0;   ///< bytes decoded into blocks (2/4 per op)
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = lookup_hits + lookup_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(lookup_hits) /
                            static_cast<double>(total);
  }
};

/// Direct-mapped pool of translated blocks keyed by entry PC. Storage
/// is allocated once and never moves, so the executor may hold Block
/// pointers across invalidations (eviction only clears `valid`; the ops
/// vector stays intact until the slot is rebuilt).
class BlockCache {
 public:
  static constexpr std::uint32_t kSlots = 1024;  // power of two

  BlockCache() : pool_(kSlots) {}

  [[nodiscard]] static std::uint32_t slot_index(std::uint32_t pc) {
    // Half-word shift: RV32C entry PCs are 2-byte aligned, so >> 2
    // would alias pc and pc+2 onto one slot.
    return (pc >> 1) & (kSlots - 1);
  }
  [[nodiscard]] Block& block_at(std::uint32_t slot) { return pool_[slot]; }

  /// Valid block starting exactly at `pc`, or nullptr (counted).
  [[nodiscard]] Block* lookup(std::uint32_t pc) {
    Block& b = pool_[slot_index(pc)];
    if (b.valid && b.start == pc) {
      ++stats_.lookup_hits;
      return &b;
    }
    ++stats_.lookup_misses;
    return nullptr;
  }

  /// Slot to (re)build a block for `pc` into; evicts the incumbent.
  Block& prepare_slot(std::uint32_t pc) {
    Block& b = pool_[slot_index(pc)];
    if (b.valid) {
      b.valid = false;
      ++stats_.evictions;
      ++gen_;
    }
    return b;
  }

  /// Publish a freshly built block (extent grow + counters).
  void commit(Block& b) {
    b.valid = true;
    extent_.grow(b.start, b.end);
    ++stats_.blocks_built;
  }

  /// Evict every block overlapping the written byte range and bump the
  /// generation so an executor mid-way through one of them stops at the
  /// next store boundary. The extent check makes data stores free.
  void invalidate_range(std::uint32_t addr, std::uint32_t bytes);

  /// Drop everything (reset, full restore, fetch-device change).
  void flush();

  [[nodiscard]] std::uint64_t generation() const { return gen_; }
  [[nodiscard]] BlockStats& stats() { return stats_; }
  [[nodiscard]] const BlockStats& stats() const { return stats_; }

 private:
  std::vector<Block> pool_;
  ByteExtent extent_;
  std::uint64_t gen_ = 0;
  BlockStats stats_;
};

/// Default for CpuConfig::block_tier: enabled unless the environment
/// sets ASPEN_BLOCK_TIER=0 (the CI matrix leg that re-runs the whole
/// suite on the uop-at-a-time path).
[[nodiscard]] bool block_tier_env_default();

/// Default for CpuConfig::block_constfold: enabled unless the
/// environment sets ASPEN_BLOCK_CONSTFOLD=0 (the CI matrix leg that
/// re-runs the suite with the folding pass disabled).
[[nodiscard]] bool block_constfold_env_default();

}  // namespace aspen::sys::rv
