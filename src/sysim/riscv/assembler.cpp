#include "sysim/riscv/assembler.hpp"

#include <stdexcept>

namespace aspen::sys::rv {

namespace {

std::uint32_t rtype(unsigned funct7, int rs2, int rs1, unsigned funct3,
                    int rd, unsigned opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t itype(std::int32_t imm, int rs1, unsigned funct3, int rd,
                    unsigned opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::invalid_argument("Assembler: I-immediate out of range");
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t stype(std::int32_t imm, int rs2, int rs1, unsigned funct3,
                    unsigned opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::invalid_argument("Assembler: S-immediate out of range");
  const auto u = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((u >> 5) << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         ((u & 0x1F) << 7) | opcode;
}

std::uint32_t btype_imm(std::int32_t offset) {
  if (offset < -4096 || offset > 4094 || (offset & 1))
    throw std::invalid_argument("Assembler: branch offset out of range");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 12) & 1u) << 31) | (((u >> 5) & 0x3Fu) << 25) |
         (((u >> 1) & 0xFu) << 8) | (((u >> 11) & 1u) << 7);
}

std::uint32_t jtype_imm(std::int32_t offset) {
  if (offset < -(1 << 20) || offset >= (1 << 20) || (offset & 1))
    throw std::invalid_argument("Assembler: jump offset out of range");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 20) & 1u) << 31) | (((u >> 1) & 0x3FFu) << 21) |
         (((u >> 11) & 1u) << 20) | (((u >> 12) & 0xFFu) << 12);
}

void check_reg(int r) {
  if (r < 0 || r > 31) throw std::invalid_argument("Assembler: bad register");
}

}  // namespace

void Assembler::emit(std::uint32_t word) { words_.push_back(word); }

std::uint32_t Assembler::current_address() const {
  return base_ + static_cast<std::uint32_t>(words_.size() * 4);
}

void Assembler::label(const std::string& name) {
  if (labels_.count(name))
    throw std::invalid_argument("Assembler: duplicate label " + name);
  labels_[name] = current_address();
}

std::uint32_t Assembler::address_of(const std::string& label) const {
  const auto it = labels_.find(label);
  if (it == labels_.end())
    throw std::invalid_argument("Assembler: unknown label " + label);
  return it->second;
}

void Assembler::lui(int rd, std::uint32_t imm20) {
  check_reg(rd);
  emit((imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x37);
}
void Assembler::auipc(int rd, std::uint32_t imm20) {
  check_reg(rd);
  emit((imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x17);
}
void Assembler::jal(int rd, const std::string& target) {
  check_reg(rd);
  fixups_.push_back({words_.size(), target, /*is_branch=*/false});
  emit((static_cast<std::uint32_t>(rd) << 7) | 0x6F);
}
void Assembler::jalr(int rd, int rs1, std::int32_t imm) {
  check_reg(rd);
  check_reg(rs1);
  emit(itype(imm, rs1, 0, rd, 0x67));
}

void Assembler::branch(unsigned funct3, int rs1, int rs2,
                       const std::string& target) {
  check_reg(rs1);
  check_reg(rs2);
  fixups_.push_back({words_.size(), target, /*is_branch=*/true});
  emit((static_cast<std::uint32_t>(rs2) << 20) |
       (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) | 0x63);
}
void Assembler::beq(int a, int b, const std::string& l) { branch(0, a, b, l); }
void Assembler::bne(int a, int b, const std::string& l) { branch(1, a, b, l); }
void Assembler::blt(int a, int b, const std::string& l) { branch(4, a, b, l); }
void Assembler::bge(int a, int b, const std::string& l) { branch(5, a, b, l); }
void Assembler::bltu(int a, int b, const std::string& l) { branch(6, a, b, l); }
void Assembler::bgeu(int a, int b, const std::string& l) { branch(7, a, b, l); }

void Assembler::lb(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 0, rd, 0x03));
}
void Assembler::lh(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 1, rd, 0x03));
}
void Assembler::lw(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 2, rd, 0x03));
}
void Assembler::lbu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 4, rd, 0x03));
}
void Assembler::lhu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 5, rd, 0x03));
}
void Assembler::sb(int rs2, int rs1, std::int32_t imm) {
  emit(stype(imm, rs2, rs1, 0, 0x23));
}
void Assembler::sh(int rs2, int rs1, std::int32_t imm) {
  emit(stype(imm, rs2, rs1, 1, 0x23));
}
void Assembler::sw(int rs2, int rs1, std::int32_t imm) {
  emit(stype(imm, rs2, rs1, 2, 0x23));
}

void Assembler::addi(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 0, rd, 0x13));
}
void Assembler::slti(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 2, rd, 0x13));
}
void Assembler::sltiu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 3, rd, 0x13));
}
void Assembler::xori(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 4, rd, 0x13));
}
void Assembler::ori(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 6, rd, 0x13));
}
void Assembler::andi(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 7, rd, 0x13));
}
void Assembler::slli(int rd, int rs1, unsigned shamt) {
  emit(rtype(0x00, static_cast<int>(shamt), rs1, 1, rd, 0x13));
}
void Assembler::srli(int rd, int rs1, unsigned shamt) {
  emit(rtype(0x00, static_cast<int>(shamt), rs1, 5, rd, 0x13));
}
void Assembler::srai(int rd, int rs1, unsigned shamt) {
  emit(rtype(0x20, static_cast<int>(shamt), rs1, 5, rd, 0x13));
}

void Assembler::add(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 0, rd, 0x33));
}
void Assembler::sub(int rd, int rs1, int rs2) {
  emit(rtype(0x20, rs2, rs1, 0, rd, 0x33));
}
void Assembler::sll(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 1, rd, 0x33));
}
void Assembler::slt(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 2, rd, 0x33));
}
void Assembler::sltu(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 3, rd, 0x33));
}
void Assembler::xor_(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 4, rd, 0x33));
}
void Assembler::srl(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 5, rd, 0x33));
}
void Assembler::sra(int rd, int rs1, int rs2) {
  emit(rtype(0x20, rs2, rs1, 5, rd, 0x33));
}
void Assembler::or_(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 6, rd, 0x33));
}
void Assembler::and_(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 7, rd, 0x33));
}

void Assembler::mul(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 0, rd, 0x33));
}
void Assembler::mulh(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 1, rd, 0x33));
}
void Assembler::mulhsu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 2, rd, 0x33));
}
void Assembler::mulhu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 3, rd, 0x33));
}
void Assembler::div(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 4, rd, 0x33));
}
void Assembler::divu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 5, rd, 0x33));
}
void Assembler::rem(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 6, rd, 0x33));
}
void Assembler::remu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 7, rd, 0x33));
}

void Assembler::ecall() { emit(0x00000073); }
void Assembler::ebreak() { emit(0x00100073); }
void Assembler::wfi() { emit(0x10500073); }
void Assembler::mret() { emit(0x30200073); }

void Assembler::csrrw(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (1u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrs(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (2u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrc(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (3u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrwi(int rd, std::uint32_t csr, unsigned zimm) {
  emit((csr << 20) | ((zimm & 0x1Fu) << 15) | (5u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}

void Assembler::li(int rd, std::uint32_t value) {
  check_reg(rd);
  const std::int32_t low = static_cast<std::int32_t>(value << 20) >> 20;
  const std::uint32_t high =
      (value - static_cast<std::uint32_t>(low)) >> 12;
  if (high != 0) {
    lui(rd, high & 0xFFFFF);
    if (low != 0) addi(rd, rd, low);
  } else {
    addi(rd, 0, low);
  }
}

std::vector<std::uint32_t> Assembler::assemble() {
  for (const auto& f : fixups_) {
    const std::uint32_t target = address_of(f.label);
    const std::uint32_t pc =
        base_ + static_cast<std::uint32_t>(f.index * 4);
    const auto offset =
        static_cast<std::int32_t>(target - pc);
    words_[f.index] |= f.is_branch ? btype_imm(offset) : jtype_imm(offset);
  }
  fixups_.clear();
  return words_;
}

}  // namespace aspen::sys::rv
