#include "sysim/riscv/assembler.hpp"

#include <cstring>
#include <stdexcept>

namespace aspen::sys::rv {

namespace {

/// RVC "prime" registers (x8..x15), the only ones most C forms address.
bool crv(int r) { return r >= 8 && r <= 15; }
std::uint16_t c3(int r) { return static_cast<std::uint16_t>(r & 7); }
bool fits6(std::int32_t imm) { return imm >= -32 && imm <= 31; }

std::uint32_t rtype(unsigned funct7, int rs2, int rs1, unsigned funct3,
                    int rd, unsigned opcode) {
  return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t itype(std::int32_t imm, int rs1, unsigned funct3, int rd,
                    unsigned opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::invalid_argument("Assembler: I-immediate out of range");
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

std::uint32_t stype(std::int32_t imm, int rs2, int rs1, unsigned funct3,
                    unsigned opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::invalid_argument("Assembler: S-immediate out of range");
  const auto u = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((u >> 5) << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
         (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
         ((u & 0x1F) << 7) | opcode;
}

std::uint32_t btype_imm(std::int32_t offset) {
  if (offset < -4096 || offset > 4094 || (offset & 1))
    throw std::invalid_argument("Assembler: branch offset out of range");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 12) & 1u) << 31) | (((u >> 5) & 0x3Fu) << 25) |
         (((u >> 1) & 0xFu) << 8) | (((u >> 11) & 1u) << 7);
}

std::uint32_t jtype_imm(std::int32_t offset) {
  if (offset < -(1 << 20) || offset >= (1 << 20) || (offset & 1))
    throw std::invalid_argument("Assembler: jump offset out of range");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 20) & 1u) << 31) | (((u >> 1) & 0x3FFu) << 21) |
         (((u >> 11) & 1u) << 20) | (((u >> 12) & 0xFFu) << 12);
}

void check_reg(int r) {
  if (r < 0 || r > 31) throw std::invalid_argument("Assembler: bad register");
}

}  // namespace

void Assembler::emit(std::uint32_t word) {
  bytes_.push_back(static_cast<std::uint8_t>(word));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(word >> 24));
}

void Assembler::emit16(std::uint16_t half) {
  bytes_.push_back(static_cast<std::uint8_t>(half));
  bytes_.push_back(static_cast<std::uint8_t>(half >> 8));
}

std::uint32_t Assembler::current_address() const {
  return base_ + static_cast<std::uint32_t>(bytes_.size());
}

void Assembler::label(const std::string& name) {
  if (labels_.count(name))
    throw std::invalid_argument("Assembler: duplicate label " + name);
  labels_[name] = current_address();
}

std::uint32_t Assembler::address_of(const std::string& label) const {
  const auto it = labels_.find(label);
  if (it == labels_.end())
    throw std::invalid_argument("Assembler: unknown label " + label);
  return it->second;
}

void Assembler::lui(int rd, std::uint32_t imm20) {
  check_reg(rd);
  // c.lui rd, nzimm6 — rd outside {x0, x2}, imm20 a nonzero 6-bit
  // sign-extendable value (the encoded field is nzimm[17:12]).
  if (compress_ && rd != 0 && rd != 2 && imm20 != 0 &&
      ((imm20 + 32) & 0xFFFFFu) < 64) {
    emit16(static_cast<std::uint16_t>(
        (0x3u << 13) | (((imm20 >> 5) & 1u) << 12) |
        (static_cast<std::uint32_t>(rd) << 7) | ((imm20 & 0x1Fu) << 2) |
        0x1u));
    return;
  }
  emit((imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x37);
}
void Assembler::auipc(int rd, std::uint32_t imm20) {
  check_reg(rd);
  emit((imm20 << 12) | (static_cast<std::uint32_t>(rd) << 7) | 0x17);
}
void Assembler::jal(int rd, const std::string& target) {
  check_reg(rd);
  fixups_.push_back({bytes_.size(), target, /*is_branch=*/false});
  emit((static_cast<std::uint32_t>(rd) << 7) | 0x6F);
}
void Assembler::jalr(int rd, int rs1, std::int32_t imm) {
  check_reg(rd);
  check_reg(rs1);
  // c.jr / c.jalr: zero offset through a nonzero base register.
  if (compress_ && imm == 0 && rs1 != 0 && (rd == 0 || rd == 1)) {
    emit16(static_cast<std::uint16_t>(
        (rd == 0 ? 0x8002u : 0x9002u) |
        (static_cast<std::uint32_t>(rs1) << 7)));
    return;
  }
  emit(itype(imm, rs1, 0, rd, 0x67));
}

void Assembler::branch(unsigned funct3, int rs1, int rs2,
                       const std::string& target) {
  check_reg(rs1);
  check_reg(rs2);
  fixups_.push_back({bytes_.size(), target, /*is_branch=*/true});
  emit((static_cast<std::uint32_t>(rs2) << 20) |
       (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) | 0x63);
}
void Assembler::beq(int a, int b, const std::string& l) { branch(0, a, b, l); }
void Assembler::bne(int a, int b, const std::string& l) { branch(1, a, b, l); }
void Assembler::blt(int a, int b, const std::string& l) { branch(4, a, b, l); }
void Assembler::bge(int a, int b, const std::string& l) { branch(5, a, b, l); }
void Assembler::bltu(int a, int b, const std::string& l) { branch(6, a, b, l); }
void Assembler::bgeu(int a, int b, const std::string& l) { branch(7, a, b, l); }

void Assembler::lb(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 0, rd, 0x03));
}
void Assembler::lh(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 1, rd, 0x03));
}
void Assembler::lw(int rd, int rs1, std::int32_t imm) {
  if (compress_ && (imm & 3) == 0 && imm >= 0) {
    const auto u = static_cast<std::uint32_t>(imm);
    if (crv(rd) && crv(rs1) && u < 128) {  // c.lw rd', uimm7(rs1')
      emit16(static_cast<std::uint16_t>(
          (0x2u << 13) | (((u >> 3) & 7u) << 10) | (c3(rs1) << 7) |
          (((u >> 2) & 1u) << 6) | (((u >> 6) & 1u) << 5) | (c3(rd) << 2)));
      return;
    }
    if (rd != 0 && rs1 == 2 && u < 256) {  // c.lwsp rd, uimm8(sp)
      emit16(static_cast<std::uint16_t>(
          (0x2u << 13) | (((u >> 5) & 1u) << 12) |
          (static_cast<std::uint32_t>(rd) << 7) | (((u >> 2) & 7u) << 4) |
          (((u >> 6) & 3u) << 2) | 0x2u));
      return;
    }
  }
  emit(itype(imm, rs1, 2, rd, 0x03));
}
void Assembler::lbu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 4, rd, 0x03));
}
void Assembler::lhu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 5, rd, 0x03));
}
void Assembler::sb(int rs2, int rs1, std::int32_t imm) {
  emit(stype(imm, rs2, rs1, 0, 0x23));
}
void Assembler::sh(int rs2, int rs1, std::int32_t imm) {
  emit(stype(imm, rs2, rs1, 1, 0x23));
}
void Assembler::sw(int rs2, int rs1, std::int32_t imm) {
  if (compress_ && (imm & 3) == 0 && imm >= 0) {
    const auto u = static_cast<std::uint32_t>(imm);
    if (crv(rs2) && crv(rs1) && u < 128) {  // c.sw rs2', uimm7(rs1')
      emit16(static_cast<std::uint16_t>(
          (0x6u << 13) | (((u >> 3) & 7u) << 10) | (c3(rs1) << 7) |
          (((u >> 2) & 1u) << 6) | (((u >> 6) & 1u) << 5) | (c3(rs2) << 2)));
      return;
    }
    if (rs1 == 2 && u < 256) {  // c.swsp rs2, uimm8(sp)
      emit16(static_cast<std::uint16_t>(
          (0x6u << 13) | (((u >> 2) & 0xFu) << 9) | (((u >> 6) & 3u) << 7) |
          (static_cast<std::uint32_t>(rs2) << 2) | 0x2u));
      return;
    }
  }
  emit(stype(imm, rs2, rs1, 2, 0x23));
}

void Assembler::addi(int rd, int rs1, std::int32_t imm) {
  if (compress_) {
    const auto u5 = static_cast<std::uint32_t>(imm) & 0x1Fu;
    const auto s = static_cast<std::uint32_t>((imm >> 5) & 1);
    if (rd == 0 && rs1 == 0 && imm == 0) {  // c.nop
      emit16(0x0001u);
      return;
    }
    if (rd != 0 && rs1 == rd && imm != 0 && fits6(imm)) {  // c.addi
      emit16(static_cast<std::uint16_t>(
          (s << 12) | (static_cast<std::uint32_t>(rd) << 7) | (u5 << 2) |
          0x1u));
      return;
    }
    if (rd != 0 && rs1 == 0 && fits6(imm)) {  // c.li
      emit16(static_cast<std::uint16_t>(
          (0x2u << 13) | (s << 12) | (static_cast<std::uint32_t>(rd) << 7) |
          (u5 << 2) | 0x1u));
      return;
    }
    if (rd != 0 && rs1 != 0 && imm == 0) {  // c.mv
      emit16(static_cast<std::uint16_t>(
          0x8002u | (static_cast<std::uint32_t>(rd) << 7) |
          (static_cast<std::uint32_t>(rs1) << 2)));
      return;
    }
    if (rd == 2 && rs1 == 2 && imm != 0 && (imm & 15) == 0 && imm >= -512 &&
        imm <= 496) {  // c.addi16sp
      const auto u = static_cast<std::uint32_t>(imm);
      emit16(static_cast<std::uint16_t>(
          (0x3u << 13) | (((u >> 9) & 1u) << 12) | (2u << 7) |
          (((u >> 4) & 1u) << 6) | (((u >> 6) & 1u) << 5) |
          (((u >> 7) & 3u) << 3) | (((u >> 5) & 1u) << 2) | 0x1u));
      return;
    }
    if (crv(rd) && rs1 == 2 && imm > 0 && (imm & 3) == 0 &&
        imm < 1024) {  // c.addi4spn
      const auto u = static_cast<std::uint32_t>(imm);
      emit16(static_cast<std::uint16_t>(
          (((u >> 4) & 3u) << 11) | (((u >> 6) & 0xFu) << 7) |
          (((u >> 2) & 1u) << 6) | (((u >> 3) & 1u) << 5) | (c3(rd) << 2)));
      return;
    }
  }
  emit(itype(imm, rs1, 0, rd, 0x13));
}
void Assembler::slti(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 2, rd, 0x13));
}
void Assembler::sltiu(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 3, rd, 0x13));
}
void Assembler::xori(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 4, rd, 0x13));
}
void Assembler::ori(int rd, int rs1, std::int32_t imm) {
  emit(itype(imm, rs1, 6, rd, 0x13));
}
void Assembler::andi(int rd, int rs1, std::int32_t imm) {
  if (compress_ && rd == rs1 && crv(rd) && fits6(imm)) {  // c.andi
    emit16(static_cast<std::uint16_t>(
        (0x4u << 13) | (static_cast<std::uint32_t>((imm >> 5) & 1) << 12) |
        (0x2u << 10) | (c3(rd) << 7) |
        ((static_cast<std::uint32_t>(imm) & 0x1Fu) << 2) | 0x1u));
    return;
  }
  emit(itype(imm, rs1, 7, rd, 0x13));
}
void Assembler::slli(int rd, int rs1, unsigned shamt) {
  if (compress_ && rd == rs1 && rd != 0 && shamt >= 1 && shamt <= 31) {
    emit16(static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(rd) << 7) | (shamt << 2) | 0x2u));
    return;
  }
  emit(rtype(0x00, static_cast<int>(shamt), rs1, 1, rd, 0x13));
}
void Assembler::srli(int rd, int rs1, unsigned shamt) {
  if (compress_ && rd == rs1 && crv(rd) && shamt >= 1 && shamt <= 31) {
    emit16(static_cast<std::uint16_t>((0x4u << 13) | (c3(rd) << 7) |
                                      (shamt << 2) | 0x1u));
    return;
  }
  emit(rtype(0x00, static_cast<int>(shamt), rs1, 5, rd, 0x13));
}
void Assembler::srai(int rd, int rs1, unsigned shamt) {
  if (compress_ && rd == rs1 && crv(rd) && shamt >= 1 && shamt <= 31) {
    emit16(static_cast<std::uint16_t>((0x4u << 13) | (0x1u << 10) |
                                      (c3(rd) << 7) | (shamt << 2) | 0x1u));
    return;
  }
  emit(rtype(0x20, static_cast<int>(shamt), rs1, 5, rd, 0x13));
}

namespace {
/// CA-format encoder: c.sub/c.xor/c.or/c.and on prime registers.
std::uint16_t ca_alu(unsigned funct2, int rd, int rs2) {
  return static_cast<std::uint16_t>((0x23u << 10) | (c3(rd) << 7) |
                                    (funct2 << 5) | (c3(rs2) << 2) | 0x1u);
}
}  // namespace

void Assembler::add(int rd, int rs1, int rs2) {
  if (compress_ && rd != 0) {
    if (rs1 == rd && rs2 != 0) {  // c.add
      emit16(static_cast<std::uint16_t>(
          0x9002u | (static_cast<std::uint32_t>(rd) << 7) |
          (static_cast<std::uint32_t>(rs2) << 2)));
      return;
    }
    if (rs2 == rd && rs1 != 0) {  // c.add (commuted)
      emit16(static_cast<std::uint16_t>(
          0x9002u | (static_cast<std::uint32_t>(rd) << 7) |
          (static_cast<std::uint32_t>(rs1) << 2)));
      return;
    }
    if (rs1 == 0 && rs2 != 0) {  // c.mv
      emit16(static_cast<std::uint16_t>(
          0x8002u | (static_cast<std::uint32_t>(rd) << 7) |
          (static_cast<std::uint32_t>(rs2) << 2)));
      return;
    }
    if (rs2 == 0 && rs1 != 0) {  // c.mv (x0 operand on either side)
      emit16(static_cast<std::uint16_t>(
          0x8002u | (static_cast<std::uint32_t>(rd) << 7) |
          (static_cast<std::uint32_t>(rs1) << 2)));
      return;
    }
  }
  emit(rtype(0x00, rs2, rs1, 0, rd, 0x33));
}
void Assembler::sub(int rd, int rs1, int rs2) {
  if (compress_ && rd == rs1 && crv(rd) && crv(rs2)) {  // c.sub
    emit16(ca_alu(0, rd, rs2));
    return;
  }
  emit(rtype(0x20, rs2, rs1, 0, rd, 0x33));
}
void Assembler::sll(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 1, rd, 0x33));
}
void Assembler::slt(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 2, rd, 0x33));
}
void Assembler::sltu(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 3, rd, 0x33));
}
void Assembler::xor_(int rd, int rs1, int rs2) {
  if (compress_ && rd == rs1 && crv(rd) && crv(rs2)) {  // c.xor
    emit16(ca_alu(1, rd, rs2));
    return;
  }
  emit(rtype(0x00, rs2, rs1, 4, rd, 0x33));
}
void Assembler::srl(int rd, int rs1, int rs2) {
  emit(rtype(0x00, rs2, rs1, 5, rd, 0x33));
}
void Assembler::sra(int rd, int rs1, int rs2) {
  emit(rtype(0x20, rs2, rs1, 5, rd, 0x33));
}
void Assembler::or_(int rd, int rs1, int rs2) {
  if (compress_ && rd == rs1 && crv(rd) && crv(rs2)) {  // c.or
    emit16(ca_alu(2, rd, rs2));
    return;
  }
  emit(rtype(0x00, rs2, rs1, 6, rd, 0x33));
}
void Assembler::and_(int rd, int rs1, int rs2) {
  if (compress_ && rd == rs1 && crv(rd) && crv(rs2)) {  // c.and
    emit16(ca_alu(3, rd, rs2));
    return;
  }
  emit(rtype(0x00, rs2, rs1, 7, rd, 0x33));
}

void Assembler::mul(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 0, rd, 0x33));
}
void Assembler::mulh(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 1, rd, 0x33));
}
void Assembler::mulhsu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 2, rd, 0x33));
}
void Assembler::mulhu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 3, rd, 0x33));
}
void Assembler::div(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 4, rd, 0x33));
}
void Assembler::divu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 5, rd, 0x33));
}
void Assembler::rem(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 6, rd, 0x33));
}
void Assembler::remu(int rd, int rs1, int rs2) {
  emit(rtype(0x01, rs2, rs1, 7, rd, 0x33));
}

void Assembler::ecall() { emit(0x00000073); }
void Assembler::ebreak() {
  if (compress_) {
    emit16(0x9002u);  // c.ebreak
    return;
  }
  emit(0x00100073);
}
void Assembler::wfi() { emit(0x10500073); }
void Assembler::mret() { emit(0x30200073); }

void Assembler::csrrw(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (1u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrs(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (2u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrc(int rd, std::uint32_t csr, int rs1) {
  emit((csr << 20) | (static_cast<std::uint32_t>(rs1) << 15) | (3u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}
void Assembler::csrrwi(int rd, std::uint32_t csr, unsigned zimm) {
  emit((csr << 20) | ((zimm & 0x1Fu) << 15) | (5u << 12) |
       (static_cast<std::uint32_t>(rd) << 7) | 0x73);
}

void Assembler::li(int rd, std::uint32_t value) {
  check_reg(rd);
  const std::int32_t low = static_cast<std::int32_t>(value << 20) >> 20;
  const std::uint32_t high =
      (value - static_cast<std::uint32_t>(low)) >> 12;
  if (high != 0) {
    lui(rd, high & 0xFFFFF);
    if (low != 0) addi(rd, rd, low);
  } else {
    addi(rd, 0, low);
  }
}

std::vector<std::uint32_t> Assembler::assemble() {
  for (const auto& f : fixups_) {
    const std::uint32_t target = address_of(f.label);
    const std::uint32_t pc = base_ + static_cast<std::uint32_t>(f.offset);
    const auto offset = static_cast<std::int32_t>(target - pc);
    const std::uint8_t* p = bytes_.data() + f.offset;
    std::uint32_t word = static_cast<std::uint32_t>(p[0]) |
                         (static_cast<std::uint32_t>(p[1]) << 8) |
                         (static_cast<std::uint32_t>(p[2]) << 16) |
                         (static_cast<std::uint32_t>(p[3]) << 24);
    word |= f.is_branch ? btype_imm(offset) : jtype_imm(offset);
    std::uint8_t* q = bytes_.data() + f.offset;
    q[0] = static_cast<std::uint8_t>(word);
    q[1] = static_cast<std::uint8_t>(word >> 8);
    q[2] = static_cast<std::uint8_t>(word >> 16);
    q[3] = static_cast<std::uint8_t>(word >> 24);
  }
  fixups_.clear();
  // A compressed stream can end on a half word; pad with c.nop so the
  // word-granular program loaders see a whole number of words.
  if (bytes_.size() % 4 != 0) emit16(0x0001u);
  std::vector<std::uint32_t> words(bytes_.size() / 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint8_t* p = bytes_.data() + i * 4;
    words[i] = static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
  }
  return words;
}

}  // namespace aspen::sys::rv
