#pragma once
/// \file cpu.hpp
/// RV32IM instruction-set simulator with simple timing — the host
/// processor of the platform (paper Section 5: gem5-SALAM "ported to
/// support the RISC-V ISA"). Machine mode only, bare metal:
///  - full RV32I + M extension
///  - machine CSRs (mstatus/mie/mip/mtvec/mepc/mcause/mscratch/mcycle)
///  - external interrupt line, WFI, MRET
///  - timing: base CPI 1, configurable multiply/divide latencies, memory
///    latency from the bus, +1 cycle on taken branches
///  - microarchitecture-level fault hooks on the register file (transient
///    bit flips and permanent stuck-at bits) for the gem5-MARVEL-style
///    reliability campaigns.

#include <array>
#include <cstdint>

#include "sysim/bus.hpp"

namespace aspen::sys::rv {

struct CpuConfig {
  std::uint32_t reset_pc = 0x80000000u;
  unsigned mul_latency = 3;
  unsigned div_latency = 20;
  /// Instruction-fetch cycles. Default 0 models a tightly-coupled
  /// instruction memory / perfect i-cache (fetch overlapped with
  /// execute); data accesses always pay the full bus + device latency.
  unsigned fetch_latency = 0;
};

enum class Halt {
  kRunning,
  kEbreak,       ///< ebreak retired (normal test exit)
  kEcallExit,    ///< ecall with a7 == 93 (exit syscall convention)
  kBusFault,     ///< access to an unmapped address, no handler
  kIllegal,      ///< illegal instruction, no handler
};

class Cpu {
 public:
  Cpu(Bus& bus, CpuConfig cfg = {});

  /// Advance one clock cycle (may retire at most one instruction).
  void tick();

  [[nodiscard]] bool halted() const { return halt_ != Halt::kRunning; }
  [[nodiscard]] Halt halt_reason() const { return halt_; }
  /// a0 at halt (exit code convention).
  [[nodiscard]] std::uint32_t exit_code() const { return read_reg(10); }

  void set_irq(bool level) { irq_ = level; }

  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t read_reg(int i) const;
  void write_reg(int i, std::uint32_t v);
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t instret() const { return instret_; }

  void reset();

  // -- Fault hooks ---------------------------------------------------------
  void flip_reg_bit(int reg, unsigned bit);
  void set_reg_stuck_bit(int reg, unsigned bit, bool value);
  void clear_faults();

 private:
  void exec(std::uint32_t inst);
  void take_trap(std::uint32_t cause, std::uint32_t epc);
  [[nodiscard]] std::uint32_t read_csr(std::uint32_t addr) const;
  void write_csr(std::uint32_t addr, std::uint32_t value);
  void mem_fault(std::uint32_t cause);

  Bus& bus_;
  CpuConfig cfg_;
  std::array<std::uint32_t, 32> regs_{};
  std::array<std::uint32_t, 32> stuck_or_{};   ///< bits forced to 1
  std::array<std::uint32_t, 32> stuck_and_{};  ///< bits forced to 0 (mask)
  std::uint32_t pc_;
  std::uint64_t cycles_ = 0;
  std::uint64_t instret_ = 0;
  unsigned stall_ = 0;
  bool irq_ = false;
  bool wfi_ = false;
  Halt halt_ = Halt::kRunning;

  // Machine CSRs.
  std::uint32_t mstatus_ = 0;
  std::uint32_t mie_ = 0;
  std::uint32_t mip_ = 0;
  std::uint32_t mtvec_ = 0;
  std::uint32_t mscratch_ = 0;
  std::uint32_t mepc_ = 0;
  std::uint32_t mcause_ = 0;
};

}  // namespace aspen::sys::rv
