#pragma once
/// \file cpu.hpp
/// RV32IMC instruction-set simulator with simple timing — the host
/// processor of the platform (paper Section 5: gem5-SALAM "ported to
/// support the RISC-V ISA"). Machine mode only, bare metal:
///  - full RV32I + M extension + C (compressed) extension: every RV32C
///    quadrant form that maps to RV32I/M expands to the same micro-op
///    set, with 2-byte PC stepping and misaligned-on-2 fetch traps
///  - machine CSRs (mstatus/mie/mip/mtvec/mepc/mcause/mtval/mscratch,
///    misa, mcycle/mcycleh, minstret/minstreth)
///  - external interrupt line, WFI, MRET
///  - timing: base CPI 1, configurable multiply/divide latencies, memory
///    latency from the bus, +1 cycle on taken branches
///  - microarchitecture-level fault hooks on the register file (transient
///    bit flips and permanent stuck-at bits) for the gem5-MARVEL-style
///    reliability campaigns.
///
/// Execution core: each fetched word is decoded once into a compact
/// micro-op (dense handler tag + pre-extracted fields) stored in a
/// direct-mapped cache keyed by PC, and dispatched through a dense switch
/// in step(). Fetch/load/store to DRAM resolve through a raw-span fast
/// path (Bus::direct_window) instead of the virtual BusDevice call. DRAM
/// stores — from this CPU, the DMA engine, the host, or injected faults —
/// invalidate overlapping cache entries, so self-modifying code and
/// fault flips behave exactly like the decode-every-fetch interpreter,
/// which remains available via CpuConfig::legacy_decode for differential
/// testing. Cycle counts are bit-identical between the two paths.

#include <array>
#include <cstdint>
#include <vector>

#include "sysim/bus.hpp"
#include "sysim/riscv/block_cache.hpp"

namespace aspen::sys::rv {

struct CpuConfig {
  std::uint32_t reset_pc = 0x80000000u;
  unsigned mul_latency = 3;
  unsigned div_latency = 20;
  /// Instruction-fetch cycles. Default 0 models a tightly-coupled
  /// instruction memory / perfect i-cache (fetch overlapped with
  /// execute); data accesses always pay the full bus + device latency.
  unsigned fetch_latency = 0;
  /// Use the seed's decode-every-fetch interpreter instead of the
  /// predecoded micro-op cache + DRAM fast path. Kept for differential
  /// testing and before/after benchmarking; results are bit-identical.
  bool legacy_decode = false;
  /// Basic-block translation tier inside run_burst(): straight-line
  /// runs decode once into chained, macro-op-fused blocks. Defaults on
  /// (override with ASPEN_BLOCK_TIER=0); the uop-at-a-time path
  /// (false) and legacy_decode both remain as differential oracles —
  /// all three tiers are bit-identical.
  bool block_tier = block_tier_env_default();
  /// Constant-folding pass over freshly built blocks: known register
  /// constants (lui / resolved-auipc / addi chains) propagate forward,
  /// precomputing ALU results, load/store effective addresses, and
  /// statically-decided branch directions into BlockOp fold slots.
  /// Timing is untouched — folds only skip host-side work — and results
  /// stay bit-identical with the pass off (ASPEN_BLOCK_CONSTFOLD=0).
  bool block_constfold = block_constfold_env_default();
};

enum class Halt {
  kRunning,
  kEbreak,       ///< ebreak retired (normal test exit)
  kEcallExit,    ///< ecall with a7 == 93 (exit syscall convention)
  kBusFault,     ///< access to an unmapped address, no handler
  kIllegal,      ///< illegal instruction, no handler
};

class Cpu final : public BusWriteObserver {
 public:
  Cpu(Bus& bus, CpuConfig cfg = {});
  ~Cpu() override;

  /// Advance one clock cycle (may retire at most one instruction).
  void tick();

  /// Advance the cycle counter through `n` guaranteed-idle cycles in one
  /// call — the event-driven System::run() replacement for ticking
  /// stall/WFI cycles one by one. Contract: n <= stall_remaining()
  /// unless the CPU is waiting in WFI (where any n is idle).
  void skip_cycles(std::uint64_t n);

  struct BurstResult {
    std::uint64_t cycles = 0;  ///< cycles consumed (instructions + stalls)
    bool bus_access = false;   ///< last instruction reached the bus (MMIO)
  };
  /// Execute instructions back-to-back for up to `budget` (>= 1) cycles,
  /// bypassing the per-cycle System loop. Caller guarantees: not halted,
  /// not in WFI, no pending stall, the external interrupt line low and
  /// unable to rise for the window (all devices idle), and the
  /// predecoded engine active. Exits early when the CPU halts, parks on
  /// WFI, or an instruction performs an activating MMIO write, a slow
  /// fetch, or a faulting access — the caller must then run the device
  /// phase of that final cycle, since the write may have started a
  /// device. Pure MMIO reads and passive stores (SPM data, DMA
  /// descriptors) do not end the burst. Architectural state evolves
  /// exactly as under per-cycle tick().
  BurstResult run_burst(std::uint64_t budget);

  [[nodiscard]] bool halted() const { return halt_ != Halt::kRunning; }
  [[nodiscard]] Halt halt_reason() const { return halt_; }
  /// a0 at halt (exit code convention).
  [[nodiscard]] std::uint32_t exit_code() const { return read_reg(10); }

  void set_irq(bool level) { irq_ = level; }

  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t read_reg(int i) const;
  void write_reg(int i, std::uint32_t v);
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t instret() const { return instret_; }
  /// Remaining stall cycles before the next instruction can issue.
  [[nodiscard]] unsigned stall_remaining() const { return stall_; }
  /// True while parked on a WFI with no pending interrupt.
  [[nodiscard]] bool waiting_for_interrupt() const { return wfi_; }

  /// Checkpoint/testing hook: preset the 64-bit counter CSRs so guest
  /// reads of mcycleh/minstreth can be exercised without 2^32 real
  /// cycles.
  void set_counters(std::uint64_t cycles, std::uint64_t instret) {
    cycles_ = cycles;
    instret_ = instret;
  }

  void reset();

  // -- Snapshot / restore --------------------------------------------------
  /// Complete architectural + timing state. Derived execution state (the
  /// predecoded micro-op cache, resolved bus windows) is deliberately
  /// excluded: restore() invalidates it instead, and it repopulates
  /// lazily at bit-identical cycle cost.
  struct Snapshot {
    std::array<std::uint32_t, 32> regs{};
    std::array<std::uint32_t, 32> stuck_or{};
    std::array<std::uint32_t, 32> stuck_and{};
    bool reg_faults_armed = false;
    std::uint32_t pc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instret = 0;
    unsigned stall = 0;
    bool irq = false;
    bool wfi = false;
    Halt halt = Halt::kRunning;
    std::uint32_t mstatus = 0, mie = 0, mip = 0, mtvec = 0;
    std::uint32_t mscratch = 0, mepc = 0, mcause = 0, mtval = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& s);
  /// Restore architectural state but keep the derived caches (direct
  /// memory windows, predecoded micro-ops). Callers must pair this with
  /// diff-based memory restores whose observer notifications have
  /// already invalidated every span whose contents changed — then the
  /// surviving entries are coherent by the same protocol that keeps them
  /// coherent across DMA writes. Execution after the call is
  /// bit-identical to restore(); only host-side re-decode work is saved.
  void restore_warm(const Snapshot& s);

  // -- Fault hooks ---------------------------------------------------------
  void flip_reg_bit(int reg, unsigned bit);
  void set_reg_stuck_bit(int reg, unsigned bit, bool value);
  void clear_faults();

  /// BusWriteObserver: DRAM mutated behind the CPU's back (DMA, host
  /// load, injected fault) — drop derived state covering the range.
  void bus_memory_written(BusDevice* dev, std::uint32_t offset,
                          std::uint32_t bytes) override;

  /// Report every direct-window store executed since the last publish to
  /// the owning devices (via direct_span_written), so their dirty
  /// watermarks cover the CPU's raw-span writes. Diff-based restores
  /// call this first; the per-store bookkeeping is two min/max updates
  /// on addresses the fast path already has in registers.
  void publish_store_spans();

  /// Block-tier diagnostics (blocks built, chained dispatches, fused
  /// pairs, evictions, hit rate). All zero when the tier is off.
  [[nodiscard]] const BlockStats& block_stats() const {
    return blocks_.stats();
  }
  [[nodiscard]] bool block_tier_active() const {
    return cfg_.block_tier && !cfg_.legacy_decode;
  }

 private:
  // MicroOp lives at namespace scope in block_cache.hpp, shared with
  // the block tier.
  struct ICacheEntry {
    std::uint32_t tag = kInvalidTag;
    MicroOp uop;
  };
  /// Tags are always even (odd PCs trap as misaligned before fetch), so
  /// an odd sentinel can never collide with a cached tag.
  static constexpr std::uint32_t kInvalidTag = 0xFFFFFFFFu;
  static constexpr std::uint32_t kICacheEntries = 4096;  // direct-mapped

  [[nodiscard]] static MicroOp decode(std::uint32_t inst);
  /// Expand a 16-bit RV32C halfword ((h & 3) != 3) into its full-width
  /// RV32I/M equivalent encoding; reserved/unsupported forms expand to 0
  /// (a guaranteed-illegal word). Shared by every tier so compressed
  /// forms execute identically on all three.
  [[nodiscard]] static std::uint32_t rvc_expand(std::uint16_t h);
  /// Fetch (icache / DRAM fast path / bus fallback) and dispatch one
  /// instruction.
  void step();
  void exec_op(const MicroOp& u);
  // -- Block translation tier ----------------------------------------------
  /// run_burst() body when cfg.block_tier is on: dispatch translated
  /// blocks (chain -> lookup -> build), falling back to single-step
  /// step() iterations whenever a block cannot be used (MMIO-resident
  /// code, revoked fetch window, mid-pair resume points).
  BurstResult run_burst_blocks(std::uint64_t budget);
  /// Decode the straight-line run at `start` through the fetch window
  /// into `blk` (with the fusion peephole). False when no instruction
  /// could be read; the block is left invalid.
  bool build_block(Block& blk, std::uint32_t start);
  /// Execute blk's ops with per-op cycle/instret/stall bookkeeping
  /// identical to a run_burst iteration. Returns true when every op
  /// retired (pc_ is at a block successor); false when the block or
  /// burst must stop early (budget/stall exhaustion, bus event, halt,
  /// WFI, or the block was invalidated by one of its own stores).
  bool exec_block(const Block& blk, std::uint64_t& budget, BurstResult& r,
                  std::uint64_t gen0);
  /// One micro-op through the exact run_burst iteration shape (cycle
  /// and budget consumption, fetch stall, exec, stall burn). Caller
  /// guarantees budget >= 1. Returns false when the block/burst must
  /// stop after this op.
  bool retire_half(const MicroOp& u, std::uint64_t& budget, BurstResult& r);
  /// retire_half shape for a constant-folded op: identical cycle, stall,
  /// instret, and pc bookkeeping, but the precomputed fold result stands
  /// in for the register reads / ALU work / address computation. Caller
  /// guarantees budget >= 1 and that folds are valid (no register faults
  /// armed, zero fetch latency).
  bool retire_folded(const BlockOp& bo, std::uint64_t& budget, BurstResult& r);
  /// Compute-only register-op core (LUI/AUIPC, OP-IMM, OP, M, fence):
  /// no cycle/stall/pc bookkeeping — callers account for those. Shared
  /// by retire_half and exec_block's static runs.
  void exec_alu(const MicroOp& u);
  /// Legacy decode-every-fetch path; `len` is the encoded length of the
  /// fetched instruction (2 for an expanded RV32C form).
  void exec(std::uint32_t inst, std::uint32_t len);
  void take_trap(std::uint32_t cause, std::uint32_t epc,
                 std::uint32_t tval = 0);
  [[nodiscard]] std::uint32_t read_csr(std::uint32_t addr) const;
  void write_csr(std::uint32_t addr, std::uint32_t value);
  void mem_fault(std::uint32_t cause, std::uint32_t tval = 0);

  // -- Direct-memory fast path ---------------------------------------------
  // Two cached windows: slot 0 is resolved by instruction fetch (the
  // DRAM code+data region), slot 1 by data accesses (typically an SPM
  // window during copy loops). Windows whose device refuses a span are
  // cached negatively (data == nullptr, region metadata set) so MMIO
  // regions are not re-queried on every access.
  [[nodiscard]] static bool covers(const Bus::DirectWindow& w,
                                   std::uint32_t addr, unsigned size) {
    return size <= w.size && addr - w.base <= w.size - size;
  }
  /// Window serving [addr, addr+size) directly, resolving slot `slot` on
  /// a full miss; nullptr when the access must use the bus.
  const Bus::DirectWindow* lookup_window(std::uint32_t addr, unsigned size,
                                         std::size_t slot);
  /// Re-resolve slot `slot` for `addr`, keeping the write-observer
  /// registration in `observed_devs_` in sync (both positive and
  /// negative windows are observed, so span revocation and re-grant —
  /// stuck-at faults armed/cleared — always reach bus_memory_written).
  void set_window(std::size_t slot, std::uint32_t addr);
  bool fast_read(std::uint32_t addr, unsigned size, std::uint32_t& value);
  bool fast_write(std::uint32_t addr, std::uint32_t value, unsigned size);
  void icache_invalidate(std::uint32_t addr, std::uint32_t bytes);
  void icache_flush();
  /// Flush one slot's accumulated store span into its window's device
  /// and reset it. Must run before the slot's window is re-resolved (the
  /// span is expressed against the current window's device).
  void flush_store_span(std::size_t slot);

  Bus& bus_;
  CpuConfig cfg_;
  std::array<std::uint32_t, 32> regs_{};
  std::array<std::uint32_t, 32> stuck_or_{};   ///< bits forced to 1
  std::array<std::uint32_t, 32> stuck_and_{};  ///< bits forced to 0 (mask)
  std::uint32_t pc_;
  std::uint64_t cycles_ = 0;
  std::uint64_t instret_ = 0;
  unsigned stall_ = 0;
  bool irq_ = false;
  bool wfi_ = false;
  bool bus_access_ = false;  ///< set by the slow paths during step()
  Halt halt_ = Halt::kRunning;

  std::array<Bus::DirectWindow, 2> win_{};  ///< [0] fetch, [1] data
  /// Per-slot store watermark (bus addresses, [lo, hi)): bytes the CPU
  /// wrote through the slot's raw span since the last flush. These are
  /// the only memory mutations invisible to the device, so flushing them
  /// (publish_store_spans / window re-resolution) is what makes the
  /// memories' dirty watermarks complete.
  std::array<std::uint32_t, 2> store_lo_{0xFFFFFFFFu, 0xFFFFFFFFu};
  std::array<std::uint32_t, 2> store_hi_{0, 0};
  /// Devices this CPU is registered on as write observer, per slot.
  /// Tracked separately from win_ because a revoked window loses its
  /// device pointer while the registration must persist (and be torn
  /// down in the destructor).
  std::array<BusDevice*, 2> observed_devs_{};
  bool reg_faults_armed_ = false;  ///< any stuck bits on the register file
  std::vector<ICacheEntry> icache_;
  /// Byte extent [lo, hi) of cached instructions (entry tag t covers
  /// [t, t+4)) for cheap store-invalidation rejects; exact at both
  /// edges, including half-word-aligned tags.
  ByteExtent icache_ext_;
  BlockCache blocks_;  ///< basic-block translation tier (cfg.block_tier)

  // Machine CSRs.
  std::uint32_t mstatus_ = 0;
  std::uint32_t mie_ = 0;
  std::uint32_t mip_ = 0;
  std::uint32_t mtvec_ = 0;
  std::uint32_t mscratch_ = 0;
  std::uint32_t mepc_ = 0;
  std::uint32_t mcause_ = 0;
  std::uint32_t mtval_ = 0;
};

}  // namespace aspen::sys::rv
