#include "sysim/riscv/cpu.hpp"

#include <cstring>
#include <stdexcept>

#include "sysim/riscv/assembler.hpp"  // CSR number constants

namespace aspen::sys::rv {

namespace {
constexpr std::uint32_t kMstatusMie = 1u << 3;
constexpr std::uint32_t kMstatusMpie = 1u << 7;
constexpr std::uint32_t kMeip = 1u << 11;
constexpr std::uint32_t kCauseExternal = 0x8000000Bu;
/// misa: MXL=1 (RV32) plus the implemented extension letters I, M, C.
constexpr std::uint32_t kMisaValue =
    (1u << 30) | (1u << 8) | (1u << 12) | (1u << 2);

std::int32_t sign_extend(std::uint32_t v, unsigned bits) {
  const unsigned shift = 32 - bits;
  return static_cast<std::int32_t>(v << shift) >> shift;
}

/// Build-time constant evaluation for the folding pass. Semantics must
/// match Cpu::exec_alu bit-for-bit (including the M-extension division
/// edge cases); `y` is the immediate for OP-IMM forms (shamt already
/// masked at decode) and the rs2 value for OP forms (shift amount
/// masked here, like the hardware would).
std::uint32_t eval_alu_const(std::uint8_t op, std::uint32_t x,
                             std::uint32_t y) {
  const auto sx = static_cast<std::int32_t>(x);
  const auto sy = static_cast<std::int32_t>(y);
  switch (op) {
    case MicroOp::kAddi: return x + y;
    case MicroOp::kSlti: return sx < sy ? 1u : 0u;
    case MicroOp::kSltiu: return x < y ? 1u : 0u;
    case MicroOp::kXori: return x ^ y;
    case MicroOp::kOri: return x | y;
    case MicroOp::kAndi: return x & y;
    case MicroOp::kSlli: return x << y;
    case MicroOp::kSrli: return x >> y;
    case MicroOp::kSrai: return static_cast<std::uint32_t>(sx >> y);
    case MicroOp::kAdd: return x + y;
    case MicroOp::kSub: return x - y;
    case MicroOp::kSll: return x << (y & 0x1F);
    case MicroOp::kSlt: return sx < sy ? 1u : 0u;
    case MicroOp::kSltu: return x < y ? 1u : 0u;
    case MicroOp::kXor: return x ^ y;
    case MicroOp::kSrl: return x >> (y & 0x1F);
    case MicroOp::kSra: return static_cast<std::uint32_t>(sx >> (y & 0x1F));
    case MicroOp::kOr: return x | y;
    case MicroOp::kAnd: return x & y;
    default: {
      const auto sa = static_cast<std::int64_t>(sx);
      const auto sb = static_cast<std::int64_t>(sy);
      const auto ua = static_cast<std::uint64_t>(x);
      const auto ub = static_cast<std::uint64_t>(y);
      switch (op) {
        case MicroOp::kMul: return static_cast<std::uint32_t>(sa * sb);
        case MicroOp::kMulh:
          return static_cast<std::uint32_t>((sa * sb) >> 32);
        case MicroOp::kMulhsu:
          return static_cast<std::uint32_t>(
              (sa * static_cast<std::int64_t>(ub)) >> 32);
        case MicroOp::kMulhu: return static_cast<std::uint32_t>((ua * ub) >> 32);
        case MicroOp::kDiv:
          if (y == 0) return 0xFFFFFFFFu;
          if (x == 0x80000000u && y == 0xFFFFFFFFu) return 0x80000000u;
          return static_cast<std::uint32_t>(sx / sy);
        case MicroOp::kDivu: return y == 0 ? 0xFFFFFFFFu : x / y;
        case MicroOp::kRem:
          if (y == 0) return x;
          if (x == 0x80000000u && y == 0xFFFFFFFFu) return 0;
          return static_cast<std::uint32_t>(sx % sy);
        default: return y == 0 ? x : x % y;  // kRemu
      }
    }
  }
}

/// Branch-direction evaluation for the folding pass; matches exec_op.
bool eval_branch_const(std::uint8_t op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case MicroOp::kBeq: return a == b;
    case MicroOp::kBne: return a != b;
    case MicroOp::kBlt:
      return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
    case MicroOp::kBge:
      return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
    case MicroOp::kBltu: return a < b;
    default: return a >= b;  // kBgeu
  }
}
}  // namespace

Cpu::Cpu(Bus& bus, CpuConfig cfg)
    : bus_(bus), cfg_(cfg), pc_(cfg.reset_pc), icache_(kICacheEntries) {
  stuck_and_.fill(0xFFFFFFFFu);
}

Cpu::~Cpu() {
  if (observed_devs_[0] != nullptr)
    observed_devs_[0]->set_write_observer(nullptr);
  if (observed_devs_[1] != nullptr && observed_devs_[1] != observed_devs_[0])
    observed_devs_[1]->set_write_observer(nullptr);
}

void Cpu::reset() {
  regs_.fill(0);
  pc_ = cfg_.reset_pc;
  cycles_ = instret_ = 0;
  stall_ = 0;
  irq_ = false;
  wfi_ = false;
  halt_ = Halt::kRunning;
  mstatus_ = mie_ = mip_ = mtvec_ = mscratch_ = mepc_ = mcause_ = mtval_ = 0;
  icache_flush();
}

Cpu::Snapshot Cpu::snapshot() const {
  Snapshot s;
  s.regs = regs_;
  s.stuck_or = stuck_or_;
  s.stuck_and = stuck_and_;
  s.reg_faults_armed = reg_faults_armed_;
  s.pc = pc_;
  s.cycles = cycles_;
  s.instret = instret_;
  s.stall = stall_;
  s.irq = irq_;
  s.wfi = wfi_;
  s.halt = halt_;
  s.mstatus = mstatus_;
  s.mie = mie_;
  s.mip = mip_;
  s.mtvec = mtvec_;
  s.mscratch = mscratch_;
  s.mepc = mepc_;
  s.mcause = mcause_;
  s.mtval = mtval_;
  return s;
}

void Cpu::restore(const Snapshot& s) {
  restore_warm(s);
  // Derived caches re-resolve lazily against the restored memory image.
  // Observer registrations in observed_devs_ stay in place: devices
  // outlive the restore, and set_window keeps them in sync as windows
  // repopulate. Pending store spans are dropped, not flushed: the full
  // memory restore paired with this call resets the dirty watermarks
  // they would have fed, and the windows they were expressed against
  // are gone.
  win_ = {};
  store_lo_ = {0xFFFFFFFFu, 0xFFFFFFFFu};
  store_hi_ = {0, 0};
  icache_flush();
}

void Cpu::restore_warm(const Snapshot& s) {
  regs_ = s.regs;
  stuck_or_ = s.stuck_or;
  stuck_and_ = s.stuck_and;
  reg_faults_armed_ = s.reg_faults_armed;
  pc_ = s.pc;
  cycles_ = s.cycles;
  instret_ = s.instret;
  stall_ = s.stall;
  irq_ = s.irq;
  wfi_ = s.wfi;
  halt_ = s.halt;
  mstatus_ = s.mstatus;
  mie_ = s.mie;
  mip_ = s.mip;
  mtvec_ = s.mtvec;
  mscratch_ = s.mscratch;
  mepc_ = s.mepc;
  mcause_ = s.mcause;
  mtval_ = s.mtval;
  bus_access_ = false;
}

std::uint32_t Cpu::read_reg(int i) const {
  // x0 stays 0 in regs_ (write_reg guards it), so the fault-free fast
  // path is a single load.
  if (!reg_faults_armed_) return regs_[static_cast<std::size_t>(i)];
  if (i == 0) return 0;
  return (regs_[static_cast<std::size_t>(i)] |
          stuck_or_[static_cast<std::size_t>(i)]) &
         stuck_and_[static_cast<std::size_t>(i)];
}

void Cpu::write_reg(int i, std::uint32_t v) {
  if (i != 0) regs_[static_cast<std::size_t>(i)] = v;
}

void Cpu::flip_reg_bit(int reg, unsigned bit) {
  if (reg <= 0 || reg > 31 || bit > 31)
    throw std::out_of_range("Cpu::flip_reg_bit");
  regs_[static_cast<std::size_t>(reg)] ^= (1u << bit);
}

void Cpu::set_reg_stuck_bit(int reg, unsigned bit, bool value) {
  if (reg <= 0 || reg > 31 || bit > 31)
    throw std::out_of_range("Cpu::set_reg_stuck_bit");
  if (value)
    stuck_or_[static_cast<std::size_t>(reg)] |= (1u << bit);
  else
    stuck_and_[static_cast<std::size_t>(reg)] &= ~(1u << bit);
  reg_faults_armed_ = true;
}

void Cpu::clear_faults() {
  stuck_or_.fill(0);
  stuck_and_.fill(0xFFFFFFFFu);
  reg_faults_armed_ = false;
}

std::uint32_t Cpu::read_csr(std::uint32_t addr) const {
  switch (addr) {
    case kCsrMstatus: return mstatus_;
    case kCsrMisa: return kMisaValue;
    case kCsrMie: return mie_;
    case kCsrMip: return mip_;
    case kCsrMtvec: return mtvec_;
    case kCsrMscratch: return mscratch_;
    case kCsrMepc: return mepc_;
    case kCsrMcause: return mcause_;
    case kCsrMtval: return mtval_;
    case kCsrMcycle: return static_cast<std::uint32_t>(cycles_);
    case kCsrMcycleH: return static_cast<std::uint32_t>(cycles_ >> 32);
    case kCsrMinstret: return static_cast<std::uint32_t>(instret_);
    case kCsrMinstretH: return static_cast<std::uint32_t>(instret_ >> 32);
    default: return 0;
  }
}

void Cpu::write_csr(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kCsrMstatus: mstatus_ = value; break;
    case kCsrMisa: break;  // WARL read-only: the extension set is fixed
    case kCsrMie: mie_ = value; break;
    case kCsrMip: break;  // MEIP is wired to the interrupt line
    case kCsrMtvec: mtvec_ = value; break;
    case kCsrMscratch: mscratch_ = value; break;
    case kCsrMepc: mepc_ = value; break;
    case kCsrMcause: mcause_ = value; break;
    case kCsrMtval: mtval_ = value; break;
    default: break;
  }
}

void Cpu::take_trap(std::uint32_t cause, std::uint32_t epc,
                    std::uint32_t tval) {
  mepc_ = epc;
  mcause_ = cause;
  mtval_ = tval;
  if (mstatus_ & kMstatusMie)
    mstatus_ |= kMstatusMpie;
  else
    mstatus_ &= ~kMstatusMpie;
  mstatus_ &= ~kMstatusMie;
  pc_ = mtvec_ & ~3u;
}

void Cpu::mem_fault(std::uint32_t cause, std::uint32_t tval) {
  if (mtvec_ != 0) {
    take_trap(cause, pc_, tval);
  } else {
    // No handler installed: cause 2 is an illegal instruction, the rest
    // are access faults.
    halt_ = cause == 2 ? Halt::kIllegal : Halt::kBusFault;
  }
}

void Cpu::tick() {
  if (halt_ != Halt::kRunning) return;
  ++cycles_;
  if (stall_ > 0) {
    --stall_;
    return;
  }

  // External interrupt line -> MEIP; WFI wakes on pending regardless of
  // the global enable, per the privileged spec.
  if (irq_)
    mip_ |= kMeip;
  else
    mip_ &= ~kMeip;

  if (wfi_) {
    if (mip_ & kMeip) {
      wfi_ = false;
      pc_ += 4;  // retire the WFI
    } else {
      return;  // idle
    }
  }

  if ((mstatus_ & kMstatusMie) && (mie_ & kMeip) && (mip_ & kMeip)) {
    take_trap(kCauseExternal, pc_);
    return;
  }

  if (cfg_.legacy_decode) {
    if (pc_ & 1u) {
      // 2-byte alignment is the fetch granule with RV32C: bit 0 set is
      // the only misaligned case, reported with the faulting pc in
      // mtval. Reachable only through a software-written mepc + mret.
      mem_fault(0, pc_);  // instruction address misaligned
      return;
    }
    // Halfword-first fetch: a compressed parcel ((h & 3) != 3) is the
    // whole instruction; otherwise the second parcel completes the
    // 32-bit word. Fetch ignores bus access latency (tightly-coupled
    // instruction path), so the split read leaves timing unchanged.
    const Bus::Access lo = bus_.read(pc_, 2);
    if (lo.fault) {
      mem_fault(1, pc_);  // instruction access fault
      return;
    }
    std::uint32_t inst = lo.value;
    std::uint32_t len = 2;
    if ((inst & 3u) == 3u) {
      const Bus::Access hi = bus_.read(pc_ + 2, 2);
      if (hi.fault) {
        mem_fault(1, pc_);
        return;
      }
      inst |= hi.value << 16;
      len = 4;
    } else {
      inst = rvc_expand(static_cast<std::uint16_t>(inst));
    }
    stall_ += cfg_.fetch_latency;
    exec(inst, len);
    return;
  }
  step();
}

void Cpu::skip_cycles(std::uint64_t n) {
  if (halt_ != Halt::kRunning || n == 0) return;
  cycles_ += n;
  const auto burn =
      static_cast<unsigned>(n < stall_ ? n : static_cast<std::uint64_t>(stall_));
  stall_ -= burn;
}

Cpu::BurstResult Cpu::run_burst(std::uint64_t budget) {
  if (cfg_.block_tier) return run_burst_blocks(budget);
  BurstResult r;
  // The interrupt line is low for the whole window (caller-guaranteed),
  // so MEIP stays clear and no asynchronous trap can fire: the per-tick
  // irq/WFI/trap prologue reduces to this one mip update.
  mip_ &= ~kMeip;
  // bus_access_ latches only on burst-ending events (activating writes,
  // slow fetches, faults), so one reset serves the whole burst.
  bus_access_ = false;
  while (budget > 0) {
    ++cycles_;
    --budget;
    ++r.cycles;
    step();
    if (bus_access_ || halt_ != Halt::kRunning || wfi_) {
      r.bus_access = bus_access_;
      break;
    }
    if (stall_ > 0) {
      const std::uint64_t burn =
          stall_ < budget ? static_cast<std::uint64_t>(stall_) : budget;
      cycles_ += burn;
      budget -= burn;
      r.cycles += burn;
      stall_ -= static_cast<unsigned>(burn);
      if (stall_ > 0) break;  // budget exhausted mid-stall
    }
  }
  return r;
}

// ------------------------------------------------- block translation tier

bool Cpu::build_block(Block& blk, std::uint32_t start) {
  const Bus::DirectWindow& w = win_[0];
  blk.valid = false;
  blk.ops.clear();
  blk.start = start;
  blk.taken_pc = Block::kNoPc;
  blk.fall_pc = Block::kNoPc;
  blk.taken_link = -1;
  blk.fall_link = -1;
  constexpr std::size_t kMaxOps = 64;
  BlockStats& st = blocks_.stats();

  // Does `m` read `reg`? OP-IMM forms carry immediate bits in the rs2
  // slot, so only rs1 counts for them.
  const auto reads_reg = [](const MicroOp& m, std::uint8_t reg) {
    if (m.op >= MicroOp::kAddi && m.op <= MicroOp::kSrai) return m.rs1 == reg;
    return m.rs1 == reg || m.rs2 == reg;
  };

  if (start & 1u) return false;  // misaligned entry traps via step()
  std::uint32_t p = start;
  bool terminated = false;
  while (!terminated && blk.ops.size() < kMaxOps && covers(w, p, 2)) {
    std::uint16_t half;
    std::memcpy(&half, w.data + (p - w.base), 2);
    MicroOp u;
    if ((half & 3u) != 3u) {
      u = decode(rvc_expand(half));
      u.len = 2;
      ++st.rvc_built;
    } else {
      // A 32-bit instruction whose upper parcel lies past the window
      // edge ends the block; the fallback single-step fetches it over
      // the bus.
      if (!covers(w, p, 4)) break;
      std::uint32_t word;
      std::memcpy(&word, w.data + (p - w.base), 4);
      u = decode(word);
    }
    st.fetch_bytes += u.len;
    const bool is_branch = u.op >= MicroOp::kBeq && u.op <= MicroOp::kBgeu;
    const bool is_term =
        is_branch || u.op == MicroOp::kJal || u.op == MicroOp::kJalr ||
        u.op == MicroOp::kEcall || u.op == MicroOp::kEbreak ||
        u.op == MicroOp::kWfi || u.op == MicroOp::kMret ||
        u.op == MicroOp::kIllegal;

    // Fusion peephole against the previous op (only when it is a lone,
    // unfused, non-terminator half — terminators end the loop, so the
    // last op is never one). x0-producing firsts are excluded: their
    // architectural result is 0, not the immediate the fused forms
    // precompute.
    BlockOp* prev =
        blk.ops.empty() || blk.ops.back().fuse != kFuseNone ? nullptr
                                                            : &blk.ops.back();
    if (prev != nullptr && prev->a.rd != 0) {
      const MicroOp& f = prev->a;
      // lui+addi: materialize the full 32-bit constant in one pair.
      if (f.op == MicroOp::kLui && u.op == MicroOp::kAddi && u.rs1 == f.rd) {
        prev->b = u;
        prev->fuse = kFuseLuiAddi;
        prev->fused_imm = f.imm + u.imm;
        prev->len = static_cast<std::uint8_t>(f.len + u.len);
        ++st.fused_built;
        p += u.len;
        continue;
      }
      // auipc+jalr: the target is static — a chainable terminator.
      if (f.op == MicroOp::kAuipc && u.op == MicroOp::kJalr &&
          u.rs1 == f.rd) {
        prev->b = u;
        prev->fuse = kFuseAuipcJalr;
        prev->fused_imm = ((p - f.len) + f.imm + u.imm) & ~1u;
        prev->len = static_cast<std::uint8_t>(f.len + u.len);
        ++st.fused_built;
        blk.taken_pc = prev->fused_imm;
        p += u.len;
        terminated = true;
        continue;
      }
      // load+op: ALU/M consumer of the just-loaded register.
      if (f.op >= MicroOp::kLb && f.op <= MicroOp::kLhu &&
          u.op >= MicroOp::kAddi && u.op <= MicroOp::kRemu &&
          reads_reg(u, f.rd)) {
        prev->b = u;
        prev->fuse = kFuseLoadOp;
        prev->len = static_cast<std::uint8_t>(f.len + u.len);
        ++st.fused_built;
        p += u.len;
        continue;
      }
      // op+branch: compare-and-branch on a single-cycle ALU result.
      if (f.op >= MicroOp::kAddi && f.op <= MicroOp::kAnd && is_branch &&
          reads_reg(u, f.rd)) {
        prev->b = u;
        prev->fuse = kFuseOpBranch;
        prev->len = static_cast<std::uint8_t>(f.len + u.len);
        ++st.fused_built;
        blk.taken_pc = p + u.imm;
        blk.fall_pc = p + u.len;
        p += u.len;
        terminated = true;
        continue;
      }
    }

    BlockOp bo;
    bo.a = u;
    bo.len = u.len;
    blk.ops.push_back(bo);
    if (is_term) {
      if (is_branch) {
        blk.taken_pc = p + u.imm;
        blk.fall_pc = p + u.len;
      } else if (u.op == MicroOp::kJal) {
        blk.taken_pc = p + u.imm;
      }
      // jalr/mret: indirect; ecall/ebreak/wfi/illegal: terminal or trap.
      terminated = true;
    }
    p += u.len;
  }
  if (blk.ops.empty()) return false;
  blk.end = p;
  if (!terminated) blk.fall_pc = p;  // window edge / length cap

  // Post-fusion pass. First, resolve standalone auipc into a kLui
  // constant: the block is keyed by its entry PC, so every op's PC is
  // static and the result can be precomputed (the op then no longer
  // reads pc_ and qualifies for static runs).
  std::uint32_t op_pc = blk.start;
  for (BlockOp& bo : blk.ops) {
    if (bo.fuse == kFuseNone && bo.a.op == MicroOp::kAuipc) {
      bo.a.op = MicroOp::kLui;
      bo.a.imm = op_pc + bo.a.imm;
    }
    op_pc += bo.len;
  }
  // Constant-folding pass: walk the ops once, tracking registers whose
  // value is fully determined by in-block immediates (x0 plus anything
  // written by lui / resolved-auipc / folded OP-IMM chains). An op whose
  // inputs are all known gets its result (kFoldValue), effective address
  // (kFoldAddr), or branch direction (kFoldBranch) precomputed into
  // fold_val. Nothing is assumed about register state at entry, so a
  // fold is valid on every dispatch of the block; the executor bypasses
  // folds when register faults are armed (see exec_block).
  if (cfg_.block_constfold) {
    std::uint32_t known = 1;  // bit i: value of xi is known (x0 always)
    std::array<std::uint32_t, 32> kv{};
    const auto is_known = [&known](std::uint8_t r) {
      return (known >> r) & 1u;
    };
    const auto set_known = [&](std::uint8_t rd, std::uint32_t v) {
      if (rd == 0) return;
      known |= 1u << rd;
      kv[rd] = v;
    };
    const auto clear_known = [&known](std::uint8_t rd) {
      if (rd != 0) known &= ~(1u << rd);
    };
    std::uint32_t fold_pc = blk.start;
    for (BlockOp& bo : blk.ops) {
      const MicroOp& u = bo.a;
      switch (bo.fuse) {
        case kFuseLuiAddi:
          set_known(u.rd, u.imm);
          set_known(bo.b.rd, bo.fused_imm);
          break;
        case kFuseAuipcJalr:
          set_known(u.rd, fold_pc + u.imm);
          set_known(bo.b.rd, fold_pc + bo.len);
          break;
        case kFuseLoadOp:
          clear_known(u.rd);
          clear_known(bo.b.rd);
          break;
        case kFuseOpBranch:
          // The branch half writes no register (its rd field carries
          // immediate bits), so only the ALU half clobbers.
          clear_known(u.rd);
          break;
        default: {  // unfused
          if (u.op == MicroOp::kLui) {
            set_known(u.rd, u.imm);
          } else if (u.op >= MicroOp::kAddi && u.op <= MicroOp::kSrai) {
            if (is_known(u.rs1)) {
              bo.fold = kFoldValue;
              bo.fold_val = eval_alu_const(u.op, kv[u.rs1], u.imm);
              set_known(u.rd, bo.fold_val);
              ++st.folded_built;
            } else {
              clear_known(u.rd);
            }
          } else if (u.op >= MicroOp::kAdd && u.op <= MicroOp::kRemu) {
            if (is_known(u.rs1) && is_known(u.rs2)) {
              bo.fold = kFoldValue;
              bo.fold_val = eval_alu_const(u.op, kv[u.rs1], kv[u.rs2]);
              set_known(u.rd, bo.fold_val);
              ++st.folded_built;
            } else {
              clear_known(u.rd);
            }
          } else if (u.op >= MicroOp::kLb && u.op <= MicroOp::kLhu) {
            if (is_known(u.rs1)) {
              bo.fold = kFoldAddr;
              bo.fold_val = kv[u.rs1] + u.imm;
              ++st.folded_built;
            }
            clear_known(u.rd);  // loaded value is never known
          } else if (u.op >= MicroOp::kSb && u.op <= MicroOp::kSw) {
            if (is_known(u.rs1)) {
              bo.fold = kFoldAddr;
              bo.fold_val = kv[u.rs1] + u.imm;
              ++st.folded_built;
            }
          } else if (u.op >= MicroOp::kBeq && u.op <= MicroOp::kBgeu) {
            if (is_known(u.rs1) && is_known(u.rs2)) {
              bo.fold = kFoldBranch;
              bo.fold_val =
                  eval_branch_const(u.op, kv[u.rs1], kv[u.rs2]) ? 1u : 0u;
              ++st.folded_built;
            }
          } else if (u.op == MicroOp::kJalr) {
            if (is_known(u.rs1)) {
              bo.fold = kFoldAddr;
              bo.fold_val = (kv[u.rs1] + u.imm) & ~1u;
              // A statically-known indirect target makes the block
              // chainable like a direct jump.
              blk.taken_pc = bo.fold_val;
              ++st.folded_built;
            }
            clear_known(u.rd);
          } else if (u.op == MicroOp::kJal) {
            set_known(u.rd, fold_pc + u.len);
          } else if (u.op >= MicroOp::kCsrrw && u.op <= MicroOp::kCsrrci) {
            clear_known(u.rd);
          }
          // ecall/ebreak/wfi/mret/fence/illegal: no register writes.
          break;
        }
      }
      fold_pc += bo.len;
    }
  }
  // Then carve the exec plan into segments: consecutive pure register
  // ops — no faults, traps, bus traffic, or cycles_/pc_ reads, cycle
  // cost known now — form a static run the executor retires with one
  // batched budget/counter update; every other op gets a per-op
  // segment. Cost 0 marks a dynamic op.
  const auto static_cost = [this](const BlockOp& bo) -> std::uint32_t {
    if (bo.fuse == kFuseLuiAddi) return 2;
    if (bo.fuse != kFuseNone) return 0;
    const std::uint8_t op = bo.a.op;
    if (op == MicroOp::kLui || op == MicroOp::kFence ||
        (op >= MicroOp::kAddi && op <= MicroOp::kAnd))
      return 1;
    if (op >= MicroOp::kMul && op <= MicroOp::kRemu)
      return 1 + ((op <= MicroOp::kMulhu) ? cfg_.mul_latency - 1
                                          : cfg_.div_latency - 1);
    return 0;
  };
  blk.segs.clear();
  for (std::uint32_t i = 0; i < blk.ops.size();) {
    Segment s;
    s.first = i;
    std::uint32_t c = static_cost(blk.ops[i]);
    if (c == 0) {
      // Consecutive dynamic ops share one segment: the per-op executor
      // walks [first, first+count) anyway, so splitting them only adds
      // segment-loop overhead on memory-heavy blocks.
      do {
        ++s.count;
        ++i;
      } while (i < blk.ops.size() && static_cost(blk.ops[i]) == 0);
    } else {
      s.static_run = true;
      do {
        s.cycles += c;
        const bool fused = blk.ops[i].fuse != kFuseNone;
        s.instret += fused ? 2u : 1u;
        s.pc_bump += blk.ops[i].len;
        ++s.count;
        ++i;
        c = i < blk.ops.size() ? static_cost(blk.ops[i]) : 0;
      } while (c != 0);
    }
    blk.segs.push_back(s);
  }
  blocks_.commit(blk);
  return true;
}

void Cpu::exec_alu(const MicroOp& u) {
  switch (u.op) {
    case MicroOp::kLui:
      write_reg(u.rd, u.imm);
      break;
    case MicroOp::kAuipc:
      // Only reachable with pc_ current (per-op paths): block building
      // resolves standalone auipc to a kLui constant, so static runs —
      // which batch the pc_ update — never see this case.
      write_reg(u.rd, pc_ + u.imm);
      break;
    case MicroOp::kAddi:
      write_reg(u.rd, read_reg(u.rs1) + u.imm);
      break;
    case MicroOp::kSlti:
      write_reg(u.rd, static_cast<std::int32_t>(read_reg(u.rs1)) <
                              static_cast<std::int32_t>(u.imm)
                          ? 1
                          : 0);
      break;
    case MicroOp::kSltiu:
      write_reg(u.rd, read_reg(u.rs1) < u.imm ? 1 : 0);
      break;
    case MicroOp::kXori:
      write_reg(u.rd, read_reg(u.rs1) ^ u.imm);
      break;
    case MicroOp::kOri:
      write_reg(u.rd, read_reg(u.rs1) | u.imm);
      break;
    case MicroOp::kAndi:
      write_reg(u.rd, read_reg(u.rs1) & u.imm);
      break;
    case MicroOp::kSlli:
      write_reg(u.rd, read_reg(u.rs1) << u.imm);
      break;
    case MicroOp::kSrli:
      write_reg(u.rd, read_reg(u.rs1) >> u.imm);
      break;
    case MicroOp::kSrai:
      write_reg(u.rd,
                static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(read_reg(u.rs1)) >> u.imm));
      break;
    case MicroOp::kAdd:
      write_reg(u.rd, read_reg(u.rs1) + read_reg(u.rs2));
      break;
    case MicroOp::kSub:
      write_reg(u.rd, read_reg(u.rs1) - read_reg(u.rs2));
      break;
    case MicroOp::kSll:
      write_reg(u.rd, read_reg(u.rs1) << (read_reg(u.rs2) & 0x1F));
      break;
    case MicroOp::kSlt:
      write_reg(u.rd, static_cast<std::int32_t>(read_reg(u.rs1)) <
                              static_cast<std::int32_t>(read_reg(u.rs2))
                          ? 1
                          : 0);
      break;
    case MicroOp::kSltu:
      write_reg(u.rd, read_reg(u.rs1) < read_reg(u.rs2) ? 1 : 0);
      break;
    case MicroOp::kXor:
      write_reg(u.rd, read_reg(u.rs1) ^ read_reg(u.rs2));
      break;
    case MicroOp::kSrl:
      write_reg(u.rd, read_reg(u.rs1) >> (read_reg(u.rs2) & 0x1F));
      break;
    case MicroOp::kSra:
      write_reg(u.rd, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(read_reg(u.rs1)) >>
                          (read_reg(u.rs2) & 0x1F)));
      break;
    case MicroOp::kOr:
      write_reg(u.rd, read_reg(u.rs1) | read_reg(u.rs2));
      break;
    case MicroOp::kAnd:
      write_reg(u.rd, read_reg(u.rs1) & read_reg(u.rs2));
      break;
    case MicroOp::kMul:
    case MicroOp::kMulh:
    case MicroOp::kMulhsu:
    case MicroOp::kMulhu:
    case MicroOp::kDiv:
    case MicroOp::kDivu:
    case MicroOp::kRem:
    case MicroOp::kRemu: {
      const std::uint32_t a = read_reg(u.rs1);
      const std::uint32_t b = read_reg(u.rs2);
      const auto sa = static_cast<std::int64_t>(static_cast<std::int32_t>(a));
      const auto sb = static_cast<std::int64_t>(static_cast<std::int32_t>(b));
      const auto ua = static_cast<std::uint64_t>(a);
      const auto ub = static_cast<std::uint64_t>(b);
      switch (u.op) {
        case MicroOp::kMul:
          write_reg(u.rd, static_cast<std::uint32_t>(sa * sb));
          break;
        case MicroOp::kMulh:
          write_reg(u.rd, static_cast<std::uint32_t>((sa * sb) >> 32));
          break;
        case MicroOp::kMulhsu:
          write_reg(u.rd, static_cast<std::uint32_t>(
                              (sa * static_cast<std::int64_t>(ub)) >> 32));
          break;
        case MicroOp::kMulhu:
          write_reg(u.rd, static_cast<std::uint32_t>((ua * ub) >> 32));
          break;
        case MicroOp::kDiv:
          if (b == 0)
            write_reg(u.rd, 0xFFFFFFFFu);
          else if (a == 0x80000000u && b == 0xFFFFFFFFu)
            write_reg(u.rd, 0x80000000u);
          else
            write_reg(u.rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) /
                                static_cast<std::int32_t>(b)));
          break;
        case MicroOp::kDivu:
          write_reg(u.rd, b == 0 ? 0xFFFFFFFFu : a / b);
          break;
        case MicroOp::kRem:
          if (b == 0)
            write_reg(u.rd, a);
          else if (a == 0x80000000u && b == 0xFFFFFFFFu)
            write_reg(u.rd, 0);
          else
            write_reg(u.rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) %
                                static_cast<std::int32_t>(b)));
          break;
        default:
          write_reg(u.rd, b == 0 ? a : a % b);
          break;
      }
      break;
    }
    default:
      break;  // kFence: architectural no-op
  }
}

bool Cpu::retire_half(const MicroOp& u, std::uint64_t& budget, BurstResult& r) {
  ++cycles_;
  --budget;
  ++r.cycles;
  stall_ += cfg_.fetch_latency;
  // Pure register ops and DRAM-resident loads/stores are retired inline
  // — semantics transcribed from exec_op and pinned against it (and
  // against legacy_decode) by the differential suite. Control-flow,
  // system, and CSR ops take the full dispatch with burst-level exit
  // checks. Dispatch is a switch so the hot per-op path takes one
  // jump-table indirection instead of a range-compare chain; `default`
  // covers exactly the single-cycle ALU group (lui/auipc/OP-IMM/OP/
  // fence) — every other op has an explicit label.
  switch (u.op) {
  default:
    exec_alu(u);
    ++instret_;
    pc_ += u.len;
    break;
  case MicroOp::kMul:
  case MicroOp::kMulh:
  case MicroOp::kMulhsu:
  case MicroOp::kMulhu:
  case MicroOp::kDiv:
  case MicroOp::kDivu:
  case MicroOp::kRem:
  case MicroOp::kRemu:
    exec_alu(u);
    stall_ += (u.op <= MicroOp::kMulhu) ? cfg_.mul_latency - 1
                                        : cfg_.div_latency - 1;
    ++instret_;
    pc_ += u.len;
    break;
  case MicroOp::kLb:
  case MicroOp::kLh:
  case MicroOp::kLw:
  case MicroOp::kLbu:
  case MicroOp::kLhu: {
    const std::uint32_t addr = read_reg(u.rs1) + u.imm;
    unsigned size = 1;
    if (u.op == MicroOp::kLh || u.op == MicroOp::kLhu) size = 2;
    if (u.op == MicroOp::kLw) size = 4;
    std::uint32_t v;
    if (!fast_read(addr, size, v)) {
      // MMIO reads are pure (BusDevice contract), so a burst may keep
      // running through them; only a fault forces the caller's hand.
      const Bus::Access acc = bus_.read(addr, size);
      if (acc.fault) {
        bus_access_ = true;
        mem_fault(5);  // load access fault (does not retire)
        return false;
      }
      stall_ += acc.latency;
      v = acc.value;
    }
    if (u.op == MicroOp::kLb)
      v = static_cast<std::uint32_t>(sign_extend(v, 8));
    if (u.op == MicroOp::kLh)
      v = static_cast<std::uint32_t>(sign_extend(v, 16));
    write_reg(u.rd, v);
    ++instret_;
    pc_ += u.len;
    break;
  }
  case MicroOp::kSb:
  case MicroOp::kSh:
  case MicroOp::kSw: {
    const std::uint32_t addr = read_reg(u.rs1) + u.imm;
    const std::uint32_t b = read_reg(u.rs2);
    unsigned size = 1;
    if (u.op == MicroOp::kSh) size = 2;
    if (u.op == MicroOp::kSw) size = 4;
    if (!fast_write(addr, b, size)) {
      const Bus::Access acc = bus_.write(addr, b, size);
      if (acc.fault) {
        bus_access_ = true;
        mem_fault(7);  // store access fault (does not retire)
        return false;
      }
      // Writes that can start a device (CTRL registers) end the burst
      // so the device phase of this cycle runs; passive stores keep the
      // burst going.
      bus_access_ = bus_access_ || acc.activating;
      stall_ += acc.latency;
    }
    ++instret_;
    pc_ += u.len;
    // Activating store: exit before the stall burn, exactly like the
    // uop burst loop (its remaining stall drains via skip_cycles).
    if (bus_access_) return false;
    break;
  }
  case MicroOp::kJal:
  case MicroOp::kJalr:
  case MicroOp::kBeq:
  case MicroOp::kBne:
  case MicroOp::kBlt:
  case MicroOp::kBge:
  case MicroOp::kBltu:
  case MicroOp::kBgeu:
  case MicroOp::kEcall:
  case MicroOp::kEbreak:
  case MicroOp::kWfi:
  case MicroOp::kMret:
  case MicroOp::kCsrrw:
  case MicroOp::kCsrrs:
  case MicroOp::kCsrrc:
  case MicroOp::kCsrrwi:
  case MicroOp::kCsrrsi:
  case MicroOp::kCsrrci:
  case MicroOp::kIllegal:
    exec_op(u);
    if (bus_access_ || halt_ != Halt::kRunning || wfi_) return false;
    break;
  }
  if (stall_ > 0) {
    const std::uint64_t burn =
        stall_ < budget ? static_cast<std::uint64_t>(stall_) : budget;
    cycles_ += burn;
    budget -= burn;
    r.cycles += burn;
    stall_ -= static_cast<unsigned>(burn);
    if (stall_ > 0) return false;  // budget exhausted mid-stall
  }
  return true;
}

bool Cpu::retire_folded(const BlockOp& bo, std::uint64_t& budget,
                        BurstResult& r) {
  const MicroOp& u = bo.a;
  ++cycles_;
  --budget;
  ++r.cycles;
  // Callers gate on fetch_latency == 0, so no fetch stall to add here.
  // Each arm mirrors the matching retire_half branch with the fold
  // result substituted for the register reads / computed value.
  if (bo.fold == kFoldValue) {
    write_reg(u.rd, bo.fold_val);
    if (u.op >= MicroOp::kMul && u.op <= MicroOp::kRemu)
      stall_ += (u.op <= MicroOp::kMulhu) ? cfg_.mul_latency - 1
                                          : cfg_.div_latency - 1;
    ++instret_;
    pc_ += u.len;
  } else if (u.op >= MicroOp::kLb && u.op <= MicroOp::kLhu) {
    const std::uint32_t addr = bo.fold_val;
    unsigned size = 1;
    if (u.op == MicroOp::kLh || u.op == MicroOp::kLhu) size = 2;
    if (u.op == MicroOp::kLw) size = 4;
    std::uint32_t v;
    if (!fast_read(addr, size, v)) {
      const Bus::Access acc = bus_.read(addr, size);
      if (acc.fault) {
        bus_access_ = true;
        mem_fault(5);  // load access fault (does not retire)
        return false;
      }
      stall_ += acc.latency;
      v = acc.value;
    }
    if (u.op == MicroOp::kLb)
      v = static_cast<std::uint32_t>(sign_extend(v, 8));
    if (u.op == MicroOp::kLh)
      v = static_cast<std::uint32_t>(sign_extend(v, 16));
    write_reg(u.rd, v);
    ++instret_;
    pc_ += u.len;
  } else if (u.op >= MicroOp::kSb && u.op <= MicroOp::kSw) {
    const std::uint32_t addr = bo.fold_val;
    const std::uint32_t b = read_reg(u.rs2);
    unsigned size = 1;
    if (u.op == MicroOp::kSh) size = 2;
    if (u.op == MicroOp::kSw) size = 4;
    if (!fast_write(addr, b, size)) {
      const Bus::Access acc = bus_.write(addr, b, size);
      if (acc.fault) {
        bus_access_ = true;
        mem_fault(7);  // store access fault (does not retire)
        return false;
      }
      bus_access_ = bus_access_ || acc.activating;
      stall_ += acc.latency;
    }
    ++instret_;
    pc_ += u.len;
    if (bus_access_) return false;  // activating store ends the burst
  } else if (u.op == MicroOp::kJalr) {
    write_reg(u.rd, pc_ + u.len);
    pc_ = bo.fold_val;
    ++stall_;
    ++instret_;
  } else {  // kFoldBranch
    if (bo.fold_val != 0) {
      pc_ += u.imm;
      ++stall_;
    } else {
      pc_ += u.len;
    }
    ++instret_;
  }
  if (stall_ > 0) {
    const std::uint64_t burn =
        stall_ < budget ? static_cast<std::uint64_t>(stall_) : budget;
    cycles_ += burn;
    budget -= burn;
    r.cycles += burn;
    stall_ -= static_cast<unsigned>(burn);
    if (stall_ > 0) return false;  // budget exhausted mid-stall
  }
  return true;
}

// Flattening inlines the retire helpers and the exec_alu switch into the
// dispatch loop — the per-op call overhead is the dominant simulator cost
// on memory-heavy workloads (bench_sysim sw_gemm / stream rows).
#if defined(__GNUC__)
__attribute__((flatten))
#endif
bool Cpu::exec_block(const Block& blk, std::uint64_t& budget, BurstResult& r,
                     std::uint64_t gen0) {
  BlockStats& st = blocks_.stats();
  // Fused fast paths precompute around the intermediate register value,
  // which stuck-at register faults would mask on the intermediate read;
  // with faults armed every pair retires sequentially (bit-exact). The
  // same gate covers static runs (per-instruction fetch stalls and
  // masked register reads both need per-op bookkeeping).
  const bool fuse_fast = cfg_.fetch_latency == 0 && !reg_faults_armed_;
  for (const Segment& seg : blk.segs) {
    // Static runs: nothing inside can fault, trap, touch the bus, or
    // observe cycles_/pc_, so when the budget covers the whole run the
    // budget/cycle/instret/pc bookkeeping collapses to one update.
    if (seg.static_run && fuse_fast && budget >= seg.cycles) {
      const BlockOp* bo = &blk.ops[seg.first];
      for (std::uint32_t n = seg.count; n != 0; --n, ++bo) {
        if (bo->fuse == kFuseNone) {
          if (bo->fold == kFoldValue) {
            write_reg(bo->a.rd, bo->fold_val);
            ++st.folded_exec;
          } else {
            exec_alu(bo->a);
          }
        } else {  // kFuseLuiAddi: both destinations are precomputed
          write_reg(bo->a.rd, bo->a.imm);
          write_reg(bo->b.rd, bo->fused_imm);
          ++st.fused_exec;
        }
      }
      cycles_ += seg.cycles;
      budget -= seg.cycles;
      r.cycles += seg.cycles;
      instret_ += seg.instret;
      pc_ += seg.pc_bump;
      continue;
    }
    // Per-op path: dynamic ops, budget shortfall, armed register
    // faults, or nonzero fetch latency.
    const std::uint32_t seg_end = seg.first + seg.count;
    for (std::uint32_t oi = seg.first; oi < seg_end; ++oi) {
      const BlockOp& bo = blk.ops[oi];
      if (budget == 0) return false;
      switch (bo.fuse) {
        case kFuseNone:
          if (fuse_fast && bo.fold != kFoldNone) {
            ++st.folded_exec;
            if (!retire_folded(bo, budget, r)) return false;
          } else {
            if (!retire_half(bo.a, budget, r)) return false;
          }
          // A store that invalidated cached code (possibly this block)
          // bumps the generation: stop and re-resolve from pc_.
          if (bo.a.op >= MicroOp::kSb && bo.a.op <= MicroOp::kSw &&
              blocks_.generation() != gen0)
            return false;
          break;
        case kFuseLuiAddi:
          if (fuse_fast && budget >= 2) {
            cycles_ += 2;
            budget -= 2;
            r.cycles += 2;
            write_reg(bo.a.rd, bo.a.imm);
            write_reg(bo.b.rd, bo.fused_imm);
            instret_ += 2;
            pc_ += bo.len;
            ++st.fused_exec;
          } else {
            if (!retire_half(bo.a, budget, r)) return false;
            if (budget == 0) return false;
            if (!retire_half(bo.b, budget, r)) return false;
            ++st.fused_exec;
          }
          break;
        case kFuseAuipcJalr:
          if (fuse_fast && budget >= 2) {
            cycles_ += 2;
            budget -= 2;
            r.cycles += 2;
            write_reg(bo.a.rd, pc_ + bo.a.imm);
            write_reg(bo.b.rd, pc_ + bo.len);
            instret_ += 2;
            pc_ = bo.fused_imm;
            ++st.fused_exec;
            ++stall_;  // jalr taken-control-flow penalty
            const std::uint64_t burn =
                stall_ < budget ? static_cast<std::uint64_t>(stall_) : budget;
            cycles_ += burn;
            budget -= burn;
            r.cycles += burn;
            stall_ -= static_cast<unsigned>(burn);
            if (stall_ > 0) return false;
          } else {
            if (!retire_half(bo.a, budget, r)) return false;
            if (budget == 0) return false;
            if (!retire_half(bo.b, budget, r)) return false;
            ++st.fused_exec;
          }
          break;
        case kFuseLoadOp:
        case kFuseOpBranch:
        default:
          // Sequential retire pair: the win is skipping the
          // dispatch-loop re-entry and fuse re-classification, not
          // altered timing.
          if (!retire_half(bo.a, budget, r)) return false;
          if (budget == 0) return false;
          if (!retire_half(bo.b, budget, r)) return false;
          ++st.fused_exec;
          break;
      }
    }
  }
  return true;
}

Cpu::BurstResult Cpu::run_burst_blocks(std::uint64_t budget) {
  BurstResult r;
  // Same entry contract as the uop-at-a-time burst: interrupt line low
  // for the whole window, so the per-tick prologue reduces to one mip
  // update; bus_access_ latches only on burst-ending events.
  mip_ &= ~kMeip;
  bus_access_ = false;
  BlockStats& st = blocks_.stats();
  Block* prev = nullptr;  // last fully executed block, for chaining
  while (budget > 0) {
    Block* blk = nullptr;
    std::int32_t* linkp = nullptr;
    // Blocks execute without re-touching the fetch window, so dispatch
    // requires the window to still cover pc_. When it is gone (revoked
    // spans under memory stuck-at faults, MMIO-resident code), fall
    // back to step(), which takes the slow bus fetch exactly like the
    // uop path.
    if ((pc_ & 1u) == 0 && covers(win_[0], pc_, 2) &&
        win_[0].data != nullptr) {
      if (prev != nullptr) {
        if (pc_ == prev->taken_pc)
          linkp = &prev->taken_link;
        else if (pc_ == prev->fall_pc)
          linkp = &prev->fall_link;
        if (linkp != nullptr && *linkp >= 0) {
          Block& cand = blocks_.block_at(static_cast<std::uint32_t>(*linkp));
          if (cand.valid && cand.start == pc_) {
            blk = &cand;
            ++st.chained;
          } else {
            *linkp = -1;  // stale hint; self-heals below
          }
        }
      }
      if (blk == nullptr) {
        blk = blocks_.lookup(pc_);
        if (blk == nullptr) {
          Block& slot = blocks_.prepare_slot(pc_);
          if (build_block(slot, pc_)) blk = &slot;
        }
        if (blk != nullptr && linkp != nullptr)
          *linkp = static_cast<std::int32_t>(BlockCache::slot_index(pc_));
      }
    }
    if (blk == nullptr) {
      // Single-step fallback: one exact run_burst iteration.
      prev = nullptr;
      ++st.fallback_steps;
      ++cycles_;
      --budget;
      ++r.cycles;
      step();
      if (bus_access_ || halt_ != Halt::kRunning || wfi_) {
        r.bus_access = bus_access_;
        break;
      }
      if (stall_ > 0) {
        const std::uint64_t burn =
            stall_ < budget ? static_cast<std::uint64_t>(stall_) : budget;
        cycles_ += burn;
        budget -= burn;
        r.cycles += burn;
        stall_ -= static_cast<unsigned>(burn);
        if (stall_ > 0) break;  // budget exhausted mid-stall
      }
      continue;
    }
    ++st.dispatches;
    const bool done = exec_block(*blk, budget, r, blocks_.generation());
    if (bus_access_ || halt_ != Halt::kRunning || wfi_) {
      r.bus_access = bus_access_;
      break;
    }
    if (stall_ > 0) break;  // budget exhausted mid-stall
    prev = done ? blk : nullptr;
  }
  return r;
}

// ------------------------------------------------ direct-memory fast path

void Cpu::flush_store_span(std::size_t slot) {
  if (store_lo_[slot] >= store_hi_[slot]) return;
  const Bus::DirectWindow& w = win_[slot];
  if (w.dev != nullptr && w.data != nullptr)
    w.dev->direct_span_written(store_lo_[slot] - w.base,
                               store_hi_[slot] - store_lo_[slot]);
  store_lo_[slot] = 0xFFFFFFFFu;
  store_hi_[slot] = 0;
}

void Cpu::publish_store_spans() {
  flush_store_span(0);
  flush_store_span(1);
}

void Cpu::set_window(std::size_t slot, std::uint32_t addr) {
  flush_store_span(slot);
  win_[slot] = bus_.direct_window(addr);
  BusDevice* const dev = win_[slot].dev;
  BusDevice*& cur = observed_devs_[slot];
  if (cur != dev) {
    BusDevice* const other = observed_devs_[1 - slot];
    if (cur != nullptr && cur != other) cur->set_write_observer(nullptr);
    if (dev != nullptr && dev != other) dev->set_write_observer(this);
    cur = dev;
  }
}

const Bus::DirectWindow* Cpu::lookup_window(std::uint32_t addr, unsigned size,
                                            std::size_t slot) {
  if (covers(win_[0], addr, size))
    return win_[0].data != nullptr ? &win_[0] : nullptr;
  if (covers(win_[1], addr, size))
    return win_[1].data != nullptr ? &win_[1] : nullptr;
  set_window(slot, addr);
  const Bus::DirectWindow& w = win_[slot];
  if (covers(w, addr, size) && w.data != nullptr) return &w;
  return nullptr;
}

bool Cpu::fast_read(std::uint32_t addr, unsigned size, std::uint32_t& value) {
  const Bus::DirectWindow* w = lookup_window(addr, size, 1);
  if (w == nullptr) return false;
  value = load_le(w->data + (addr - w->base), size);
  stall_ += w->latency;
  return true;
}

bool Cpu::fast_write(std::uint32_t addr, std::uint32_t value, unsigned size) {
  const Bus::DirectWindow* w = lookup_window(addr, size, 1);
  if (w == nullptr) return false;
  store_le(w->data + (addr - w->base), value, size);
  const std::size_t slot = w == &win_[0] ? 0 : 1;
  store_lo_[slot] = std::min(store_lo_[slot], addr);
  store_hi_[slot] = std::max(store_hi_[slot], addr + size);
  stall_ += w->latency;
  icache_invalidate(addr, size);  // self-modifying code support
  return true;
}

void Cpu::icache_flush() {
  for (auto& e : icache_) e.tag = kInvalidTag;
  icache_ext_.reset();
  blocks_.flush();
}

void Cpu::icache_invalidate(std::uint32_t addr, std::uint32_t bytes) {
  // The block tier runs its own extent-based reject first: blocks may
  // cover code the per-PC cache never touched (block fetches bypass
  // it), so its eviction cannot hide behind the icache extent below.
  blocks_.invalidate_range(addr, bytes);
  if (bytes == 0 || !icache_ext_.overlaps(addr, bytes)) return;
  // An instruction with tag t occupies bytes [t, t+len), len 2 or 4, so
  // a store over [addr, addr+bytes) overlaps tags in [addr-3, addr+bytes)
  // — conservatively using the 4-byte reach for both lengths. With the
  // misaligned-fetch trap every cached tag is even, so odd probe
  // addresses can never match; the byte-granular loop is kept for the
  // edge arithmetic and the extent check makes data stores free. A
  // cleared 2-byte entry whose store only clipped bytes [t+2, t+4) is a
  // spurious but harmless eviction.
  const std::uint32_t first = addr >= 3 ? addr - 3 : 0;
  const std::uint32_t last = addr + bytes - 1;
  // Entries map half-word-granular (slot = a >> 1), so a span covering
  // 2 * entries byte addresses has touched every slot.
  if (last - first >= 2 * kICacheEntries) {
    icache_flush();
    return;
  }
  for (std::uint32_t a = first;; ++a) {
    ICacheEntry& e = icache_[(a >> 1) & (kICacheEntries - 1)];
    if (e.tag == a) e.tag = kInvalidTag;
    if (a == last) break;
  }
}

void Cpu::bus_memory_written(BusDevice* dev, std::uint32_t offset,
                             std::uint32_t bytes) {
  const bool has_span = dev->direct_span().data != nullptr;
  for (auto& w : win_) {
    if (w.dev != dev) continue;
    if (w.data != nullptr) {
      icache_invalidate(w.base + offset, bytes);
      // A revoked span (stuck-at faults armed) forces every access back
      // onto the virtual read path, where the fault masks are applied.
      if (!has_span) w = Bus::DirectWindow{};
    } else if (has_span) {
      // Stale negative entry: the device re-granted its span (faults
      // cleared) — drop it so the next access resolves positively.
      w = Bus::DirectWindow{};
    }
  }
}

// ---------------------------------------------------- predecoded dispatch

MicroOp Cpu::decode(std::uint32_t inst) {
  MicroOp u;
  const unsigned opcode = inst & 0x7F;
  u.rd = static_cast<std::uint8_t>((inst >> 7) & 0x1F);
  const unsigned funct3 = (inst >> 12) & 0x7;
  u.rs1 = static_cast<std::uint8_t>((inst >> 15) & 0x1F);
  u.rs2 = static_cast<std::uint8_t>((inst >> 20) & 0x1F);
  const unsigned funct7 = inst >> 25;

  switch (opcode) {
    case 0x37:
      u.op = MicroOp::kLui;
      u.imm = inst & 0xFFFFF000u;
      break;
    case 0x17:
      u.op = MicroOp::kAuipc;
      u.imm = inst & 0xFFFFF000u;
      break;
    case 0x6F: {
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 20) | (((inst >> 12) & 0xFFu) << 12) |
          (((inst >> 20) & 1u) << 11) | (((inst >> 21) & 0x3FFu) << 1);
      u.op = MicroOp::kJal;
      u.imm = static_cast<std::uint32_t>(sign_extend(imm, 21));
      break;
    }
    case 0x67:
      u.op = MicroOp::kJalr;
      u.imm = static_cast<std::uint32_t>(sign_extend(inst >> 20, 12));
      break;
    case 0x63: {
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 12) | (((inst >> 7) & 1u) << 11) |
          (((inst >> 25) & 0x3Fu) << 5) | (((inst >> 8) & 0xFu) << 1);
      u.imm = static_cast<std::uint32_t>(sign_extend(imm, 13));
      switch (funct3) {
        case 0: u.op = MicroOp::kBeq; break;
        case 1: u.op = MicroOp::kBne; break;
        case 4: u.op = MicroOp::kBlt; break;
        case 5: u.op = MicroOp::kBge; break;
        case 6: u.op = MicroOp::kBltu; break;
        case 7: u.op = MicroOp::kBgeu; break;
        default: u.op = MicroOp::kIllegal; break;
      }
      break;
    }
    case 0x03:
      u.imm = static_cast<std::uint32_t>(sign_extend(inst >> 20, 12));
      // The seed interpreter treats unknown load funct3 as a plain byte
      // load without sign extension, i.e. LBU; preserved bit-exactly.
      switch (funct3) {
        case 0: u.op = MicroOp::kLb; break;
        case 1: u.op = MicroOp::kLh; break;
        case 2: u.op = MicroOp::kLw; break;
        case 5: u.op = MicroOp::kLhu; break;
        default: u.op = MicroOp::kLbu; break;
      }
      break;
    case 0x23:
      u.imm = static_cast<std::uint32_t>(
          sign_extend(((inst >> 25) << 5) | ((inst >> 7) & 0x1Fu), 12));
      // Unknown store funct3 degrades to a byte store, as in the seed.
      switch (funct3) {
        case 1: u.op = MicroOp::kSh; break;
        case 2: u.op = MicroOp::kSw; break;
        default: u.op = MicroOp::kSb; break;
      }
      break;
    case 0x13:
      switch (funct3) {
        case 0: u.op = MicroOp::kAddi; break;
        case 1: u.op = MicroOp::kSlli; break;
        case 2: u.op = MicroOp::kSlti; break;
        case 3: u.op = MicroOp::kSltiu; break;
        case 4: u.op = MicroOp::kXori; break;
        case 5: u.op = (funct7 & 0x20) ? MicroOp::kSrai : MicroOp::kSrli; break;
        case 6: u.op = MicroOp::kOri; break;
        default: u.op = MicroOp::kAndi; break;
      }
      if (funct3 == 1 || funct3 == 5)
        u.imm = (inst >> 20) & 0x1F;  // shamt
      else
        u.imm = static_cast<std::uint32_t>(sign_extend(inst >> 20, 12));
      break;
    case 0x33:
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0: u.op = MicroOp::kMul; break;
          case 1: u.op = MicroOp::kMulh; break;
          case 2: u.op = MicroOp::kMulhsu; break;
          case 3: u.op = MicroOp::kMulhu; break;
          case 4: u.op = MicroOp::kDiv; break;
          case 5: u.op = MicroOp::kDivu; break;
          case 6: u.op = MicroOp::kRem; break;
          default: u.op = MicroOp::kRemu; break;
        }
      } else {
        // The seed ignores funct7 apart from bit 5 (SUB/SRA selection).
        switch (funct3) {
          case 0: u.op = (funct7 & 0x20) ? MicroOp::kSub : MicroOp::kAdd; break;
          case 1: u.op = MicroOp::kSll; break;
          case 2: u.op = MicroOp::kSlt; break;
          case 3: u.op = MicroOp::kSltu; break;
          case 4: u.op = MicroOp::kXor; break;
          case 5: u.op = (funct7 & 0x20) ? MicroOp::kSra : MicroOp::kSrl; break;
          case 6: u.op = MicroOp::kOr; break;
          default: u.op = MicroOp::kAnd; break;
        }
      }
      break;
    case 0x0F:
      u.op = MicroOp::kFence;
      break;
    case 0x73:
      if (inst == 0x00000073u) {
        u.op = MicroOp::kEcall;
      } else if (inst == 0x00100073u) {
        u.op = MicroOp::kEbreak;
      } else if (inst == 0x10500073u) {
        u.op = MicroOp::kWfi;
      } else if (inst == 0x30200073u) {
        u.op = MicroOp::kMret;
      } else {
        u.imm = inst >> 20;  // CSR number
        switch (funct3) {
          case 1: u.op = MicroOp::kCsrrw; break;
          case 2: u.op = MicroOp::kCsrrs; break;
          case 3: u.op = MicroOp::kCsrrc; break;
          case 5: u.op = MicroOp::kCsrrwi; break;
          case 6: u.op = MicroOp::kCsrrsi; break;
          case 7: u.op = MicroOp::kCsrrci; break;
          default: u.op = MicroOp::kIllegal; break;
        }
      }
      break;
    default:
      u.op = MicroOp::kIllegal;
      break;
  }
  return u;
}

std::uint32_t Cpu::rvc_expand(std::uint16_t h) {
  // Full-width encoders for the expansion targets. Register fields are
  // already 0..31; immediates are passed as the final signed offset /
  // unsigned immediate and repacked into the instruction format.
  const auto i_type = [](std::int32_t imm, unsigned rs1, unsigned f3,
                         unsigned rd, unsigned opc) -> std::uint32_t {
    return (static_cast<std::uint32_t>(imm) & 0xFFFu) << 20 | rs1 << 15 |
           f3 << 12 | rd << 7 | opc;
  };
  const auto s_type = [](std::int32_t imm, unsigned rs2,
                         unsigned rs1) -> std::uint32_t {
    const auto u = static_cast<std::uint32_t>(imm);
    return ((u >> 5) & 0x7Fu) << 25 | rs2 << 20 | rs1 << 15 | 2u << 12 |
           (u & 0x1Fu) << 7 | 0x23u;
  };
  const auto r_type = [](unsigned f7, unsigned rs2, unsigned rs1, unsigned f3,
                         unsigned rd) -> std::uint32_t {
    return f7 << 25 | rs2 << 20 | rs1 << 15 | f3 << 12 | rd << 7 | 0x33u;
  };
  const auto b_type = [](std::int32_t off, unsigned rs2, unsigned rs1,
                         unsigned f3) -> std::uint32_t {
    const auto u = static_cast<std::uint32_t>(off);
    return ((u >> 12) & 1u) << 31 | ((u >> 5) & 0x3Fu) << 25 | rs2 << 20 |
           rs1 << 15 | f3 << 12 | ((u >> 1) & 0xFu) << 8 |
           ((u >> 11) & 1u) << 7 | 0x63u;
  };
  const auto j_type = [](std::int32_t off, unsigned rd) -> std::uint32_t {
    const auto u = static_cast<std::uint32_t>(off);
    return ((u >> 20) & 1u) << 31 | ((u >> 1) & 0x3FFu) << 21 |
           ((u >> 11) & 1u) << 20 | ((u >> 12) & 0xFFu) << 12 | rd << 7 |
           0x6Fu;
  };

  const unsigned funct3 = (h >> 13) & 7u;
  const unsigned rc = 8u + ((h >> 2) & 7u);   // rd'/rs2' (x8..x15)
  const unsigned rc1 = 8u + ((h >> 7) & 7u);  // rd'/rs1'
  const unsigned rfull = (h >> 7) & 31u;      // full-width rd/rs1 field
  // 6-bit immediate shared by c.addi / c.li / c.lui / c.andi / shifts.
  const std::uint32_t imm6 = ((h >> 12) & 1u) << 5 | ((h >> 2) & 0x1Fu);

  switch (h & 3u) {
    case 0:  // quadrant C0
      switch (funct3) {
        case 0: {  // c.addi4spn rd', sp, nzuimm
          const std::uint32_t nz = ((h >> 7) & 0xFu) << 6 |
                                   ((h >> 11) & 3u) << 4 |
                                   ((h >> 5) & 1u) << 3 | ((h >> 6) & 1u) << 2;
          if (nz == 0) return 0;  // reserved (canonical illegal 0x0000)
          return i_type(static_cast<std::int32_t>(nz), 2, 0, rc, 0x13);
        }
        case 2: {  // c.lw rd', uimm(rs1')
          const std::uint32_t uimm = ((h >> 10) & 7u) << 3 |
                                     ((h >> 5) & 1u) << 6 |
                                     ((h >> 6) & 1u) << 2;
          return i_type(static_cast<std::int32_t>(uimm), rc1, 2, rc, 0x03);
        }
        case 6: {  // c.sw rs2', uimm(rs1')
          const std::uint32_t uimm = ((h >> 10) & 7u) << 3 |
                                     ((h >> 5) & 1u) << 6 |
                                     ((h >> 6) & 1u) << 2;
          return s_type(static_cast<std::int32_t>(uimm), rc, rc1);
        }
        default:
          return 0;  // FP loads/stores: D/F not implemented
      }
    case 1:  // quadrant C1
      switch (funct3) {
        case 0:  // c.addi (c.nop when rd == x0)
          return i_type(sign_extend(imm6, 6), rfull, 0, rfull, 0x13);
        case 1:    // c.jal (RV32)
        case 5: {  // c.j
          const std::uint32_t off =
              ((h >> 12) & 1u) << 11 | ((h >> 11) & 1u) << 4 |
              ((h >> 9) & 3u) << 8 | ((h >> 8) & 1u) << 10 |
              ((h >> 7) & 1u) << 6 | ((h >> 6) & 1u) << 7 |
              ((h >> 3) & 7u) << 1 | ((h >> 2) & 1u) << 5;
          return j_type(sign_extend(off, 12), funct3 == 1 ? 1 : 0);
        }
        case 2:  // c.li
          return i_type(sign_extend(imm6, 6), 0, 0, rfull, 0x13);
        case 3: {
          if (rfull == 2) {  // c.addi16sp
            const std::uint32_t im =
                ((h >> 12) & 1u) << 9 | ((h >> 3) & 3u) << 7 |
                ((h >> 5) & 1u) << 6 | ((h >> 2) & 1u) << 5 |
                ((h >> 6) & 1u) << 4;
            if (im == 0) return 0;  // reserved
            return i_type(sign_extend(im, 10), 2, 0, 2, 0x13);
          }
          // c.lui (rd == x0 is a HINT; lui x0 retires as a no-op)
          if (imm6 == 0) return 0;  // reserved
          const auto val =
              static_cast<std::uint32_t>(sign_extend(imm6, 6)) << 12;
          return (val & 0xFFFFF000u) | rfull << 7 | 0x37u;
        }
        case 4:
          switch ((h >> 10) & 3u) {
            case 0:  // c.srli
              if (imm6 & 0x20u) return 0;  // shamt[5]: RV64-only
              return i_type(static_cast<std::int32_t>(imm6), rc1, 5, rc1,
                            0x13);
            case 1:  // c.srai
              if (imm6 & 0x20u) return 0;
              return i_type(static_cast<std::int32_t>(imm6 | 0x400u), rc1, 5,
                            rc1, 0x13);
            case 2:  // c.andi
              return i_type(sign_extend(imm6, 6), rc1, 7, rc1, 0x13);
            default: {
              if ((h >> 12) & 1u) return 0;  // c.subw/c.addw: RV64-only
              static constexpr unsigned kF7[4] = {0x20, 0, 0, 0};
              static constexpr unsigned kF3[4] = {0, 4, 6, 7};
              const unsigned sel = (h >> 5) & 3u;  // sub/xor/or/and
              return r_type(kF7[sel], rc, rc1, kF3[sel], rc1);
            }
          }
        case 6:  // c.beqz rs1', off
        case 7: {  // c.bnez
          const std::uint32_t off =
              ((h >> 12) & 1u) << 8 | ((h >> 10) & 3u) << 3 |
              ((h >> 5) & 3u) << 6 | ((h >> 3) & 3u) << 1 |
              ((h >> 2) & 1u) << 5;
          return b_type(sign_extend(off, 9), 0, rc1, funct3 == 6 ? 0 : 1);
        }
        default:
          return 0;
      }
    default:  // quadrant C2
      switch (funct3) {
        case 0:  // c.slli
          if (imm6 & 0x20u) return 0;  // shamt[5]: RV64-only
          return i_type(static_cast<std::int32_t>(imm6), rfull, 1, rfull,
                        0x13);
        case 2: {  // c.lwsp rd, uimm(sp)
          if (rfull == 0) return 0;  // reserved
          const std::uint32_t uimm = ((h >> 12) & 1u) << 5 |
                                     ((h >> 4) & 7u) << 2 |
                                     ((h >> 2) & 3u) << 6;
          return i_type(static_cast<std::int32_t>(uimm), 2, 2, rfull, 0x03);
        }
        case 4: {
          const unsigned rs2 = (h >> 2) & 31u;
          if (((h >> 12) & 1u) == 0) {
            if (rs2 == 0) {  // c.jr
              if (rfull == 0) return 0;  // reserved
              return i_type(0, rfull, 0, 0, 0x67);
            }
            return r_type(0, rs2, 0, 0, rfull);  // c.mv -> add rd, x0, rs2
          }
          if (rs2 == 0)
            return rfull == 0 ? 0x00100073u            // c.ebreak
                              : i_type(0, rfull, 0, 1, 0x67);  // c.jalr
          return r_type(0, rs2, rfull, 0, rfull);  // c.add
        }
        case 6: {  // c.swsp rs2, uimm(sp)
          const std::uint32_t uimm =
              ((h >> 9) & 0xFu) << 2 | ((h >> 7) & 3u) << 6;
          return s_type(static_cast<std::int32_t>(uimm), (h >> 2) & 31u, 2);
        }
        default:
          return 0;  // FP stack loads/stores: not implemented
      }
  }
}

void Cpu::step() {
  const std::uint32_t pc = pc_;
  if (pc & 1u) {
    // 2-byte alignment is the fetch granule with RV32C: bit 0 set is
    // the only misaligned case (software-written mepc + mret).
    mem_fault(0, pc);  // instruction address misaligned
    return;
  }
  const Bus::DirectWindow* w = nullptr;
  if (covers(win_[0], pc, 2)) {
    if (win_[0].data != nullptr) w = &win_[0];
  } else {
    // Fetch owns slot 0; a miss (first fetch, revoked span, or region
    // change) re-resolves it — negatively for MMIO-resident code.
    BusDevice* const prev_dev = win_[0].data != nullptr ? win_[0].dev : nullptr;
    set_window(0, pc);
    // Entries decoded from a previous fetch device would no longer be
    // invalidated on writes to it: drop them when the device changes.
    if (prev_dev != nullptr && win_[0].dev != prev_dev) icache_flush();
    if (covers(win_[0], pc, 2) && win_[0].data != nullptr) w = &win_[0];
  }
  if (w != nullptr) {
    // Half-word-granular slot index: compressed instructions make every
    // even address a potential entry, so >> 2 would alias pc and pc+2.
    ICacheEntry& e = icache_[(pc >> 1) & (kICacheEntries - 1)];
    if (e.tag != pc) {
      std::uint16_t half;
      std::memcpy(&half, w->data + (pc - w->base), 2);
      if ((half & 3u) != 3u) {
        e.uop = decode(rvc_expand(half));
        e.uop.len = 2;
        icache_ext_.grow(pc, pc + 2);
      } else if (covers(*w, pc, 4)) {
        std::uint32_t word;
        std::memcpy(&word, w->data + (pc - w->base), 4);
        e.uop = decode(word);
        icache_ext_.grow(pc, pc + 4);
      } else {
        // 32-bit instruction straddling the window edge: take the slow
        // bus fetch below without caching a torn entry.
        w = nullptr;
      }
      if (w != nullptr) e.tag = pc;
    }
    if (w != nullptr) {
      stall_ += cfg_.fetch_latency;
      exec_op(e.uop);
      return;
    }
  }
  // Slow fetch (MMIO-resident code, spans revoked by stuck-at faults,
  // window-edge accesses): decode every time, exactly like the seed.
  // Two halfword reads so a compressed tail at the end of a region
  // cannot fault on the phantom upper parcel.
  bus_access_ = true;
  const Bus::Access lo = bus_.read(pc, 2);
  if (lo.fault) {
    mem_fault(1, pc);  // instruction access fault
    return;
  }
  MicroOp u;
  if ((lo.value & 3u) != 3u) {
    u = decode(rvc_expand(static_cast<std::uint16_t>(lo.value)));
    u.len = 2;
  } else {
    const Bus::Access hi = bus_.read(pc + 2, 2);
    if (hi.fault) {
      mem_fault(1, pc);
      return;
    }
    u = decode(lo.value | hi.value << 16);
  }
  stall_ += cfg_.fetch_latency;
  exec_op(u);
}

void Cpu::exec_op(const MicroOp& u) {
  const int rd = u.rd;
  const int rs1 = u.rs1;
  std::uint32_t next_pc = pc_ + u.len;

  const std::uint32_t a = read_reg(rs1);
  const std::uint32_t b = read_reg(u.rs2);

  switch (u.op) {
    case MicroOp::kLui:
      write_reg(rd, u.imm);
      break;
    case MicroOp::kAuipc:
      write_reg(rd, pc_ + u.imm);
      break;
    case MicroOp::kJal:
      write_reg(rd, pc_ + u.len);
      next_pc = pc_ + u.imm;
      ++stall_;  // taken-control-flow penalty
      break;
    case MicroOp::kJalr:
      write_reg(rd, pc_ + u.len);
      next_pc = (a + u.imm) & ~1u;
      ++stall_;
      break;
    case MicroOp::kBeq:
    case MicroOp::kBne:
    case MicroOp::kBlt:
    case MicroOp::kBge:
    case MicroOp::kBltu:
    case MicroOp::kBgeu: {
      bool taken = false;
      switch (u.op) {
        case MicroOp::kBeq: taken = a == b; break;
        case MicroOp::kBne: taken = a != b; break;
        case MicroOp::kBlt: taken = static_cast<std::int32_t>(a) <
                                    static_cast<std::int32_t>(b); break;
        case MicroOp::kBge: taken = static_cast<std::int32_t>(a) >=
                                    static_cast<std::int32_t>(b); break;
        case MicroOp::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      if (taken) {
        next_pc = pc_ + u.imm;
        ++stall_;
      }
      break;
    }
    case MicroOp::kLb:
    case MicroOp::kLh:
    case MicroOp::kLw:
    case MicroOp::kLbu:
    case MicroOp::kLhu: {
      const std::uint32_t addr = a + u.imm;
      unsigned size = 1;
      if (u.op == MicroOp::kLh || u.op == MicroOp::kLhu) size = 2;
      if (u.op == MicroOp::kLw) size = 4;
      std::uint32_t v;
      if (!fast_read(addr, size, v)) {
        // MMIO reads are pure (BusDevice contract), so a burst may keep
        // running through them; only a fault forces the caller's hand.
        const Bus::Access acc = bus_.read(addr, size);
        if (acc.fault) {
          bus_access_ = true;
          mem_fault(5);  // load access fault
          return;
        }
        stall_ += acc.latency;
        v = acc.value;
      }
      if (u.op == MicroOp::kLb)
        v = static_cast<std::uint32_t>(sign_extend(v, 8));
      if (u.op == MicroOp::kLh)
        v = static_cast<std::uint32_t>(sign_extend(v, 16));
      write_reg(rd, v);
      break;
    }
    case MicroOp::kSb:
    case MicroOp::kSh:
    case MicroOp::kSw: {
      const std::uint32_t addr = a + u.imm;
      unsigned size = 1;
      if (u.op == MicroOp::kSh) size = 2;
      if (u.op == MicroOp::kSw) size = 4;
      if (!fast_write(addr, b, size)) {
        const Bus::Access acc = bus_.write(addr, b, size);
        if (acc.fault) {
          bus_access_ = true;
          mem_fault(7);  // store access fault
          return;
        }
        // Writes that can start a device (CTRL registers) end the
        // burst so the device phase of this cycle runs; passive stores
        // (SPM data, DMA descriptors) keep the burst going.
        bus_access_ = bus_access_ || acc.activating;
        stall_ += acc.latency;
      }
      break;
    }
    case MicroOp::kAddi: write_reg(rd, a + u.imm); break;
    case MicroOp::kSlti:
      write_reg(rd, static_cast<std::int32_t>(a) <
                            static_cast<std::int32_t>(u.imm)
                        ? 1
                        : 0);
      break;
    case MicroOp::kSltiu: write_reg(rd, a < u.imm ? 1 : 0); break;
    case MicroOp::kXori: write_reg(rd, a ^ u.imm); break;
    case MicroOp::kOri: write_reg(rd, a | u.imm); break;
    case MicroOp::kAndi: write_reg(rd, a & u.imm); break;
    case MicroOp::kSlli: write_reg(rd, a << u.imm); break;
    case MicroOp::kSrli: write_reg(rd, a >> u.imm); break;
    case MicroOp::kSrai:
      write_reg(rd, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(a) >> u.imm));
      break;
    case MicroOp::kAdd: write_reg(rd, a + b); break;
    case MicroOp::kSub: write_reg(rd, a - b); break;
    case MicroOp::kSll: write_reg(rd, a << (b & 0x1F)); break;
    case MicroOp::kSlt:
      write_reg(rd,
                static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                    ? 1
                    : 0);
      break;
    case MicroOp::kSltu: write_reg(rd, a < b ? 1 : 0); break;
    case MicroOp::kXor: write_reg(rd, a ^ b); break;
    case MicroOp::kSrl: write_reg(rd, a >> (b & 0x1F)); break;
    case MicroOp::kSra:
      write_reg(rd, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(a) >> (b & 0x1F)));
      break;
    case MicroOp::kOr: write_reg(rd, a | b); break;
    case MicroOp::kAnd: write_reg(rd, a & b); break;
    case MicroOp::kMul:
    case MicroOp::kMulh:
    case MicroOp::kMulhsu:
    case MicroOp::kMulhu:
    case MicroOp::kDiv:
    case MicroOp::kDivu:
    case MicroOp::kRem:
    case MicroOp::kRemu: {
      const auto sa = static_cast<std::int64_t>(static_cast<std::int32_t>(a));
      const auto sb = static_cast<std::int64_t>(static_cast<std::int32_t>(b));
      const auto ua = static_cast<std::uint64_t>(a);
      const auto ub = static_cast<std::uint64_t>(b);
      switch (u.op) {
        case MicroOp::kMul:
          write_reg(rd, static_cast<std::uint32_t>(sa * sb));
          break;
        case MicroOp::kMulh:
          write_reg(rd, static_cast<std::uint32_t>((sa * sb) >> 32));
          break;
        case MicroOp::kMulhsu:
          write_reg(rd, static_cast<std::uint32_t>(
                            (sa * static_cast<std::int64_t>(ub)) >> 32));
          break;
        case MicroOp::kMulhu:
          write_reg(rd, static_cast<std::uint32_t>((ua * ub) >> 32));
          break;
        case MicroOp::kDiv:
          if (b == 0)
            write_reg(rd, 0xFFFFFFFFu);
          else if (a == 0x80000000u && b == 0xFFFFFFFFu)
            write_reg(rd, 0x80000000u);
          else
            write_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) /
                              static_cast<std::int32_t>(b)));
          break;
        case MicroOp::kDivu:
          write_reg(rd, b == 0 ? 0xFFFFFFFFu : a / b);
          break;
        case MicroOp::kRem:
          if (b == 0)
            write_reg(rd, a);
          else if (a == 0x80000000u && b == 0xFFFFFFFFu)
            write_reg(rd, 0);
          else
            write_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) %
                              static_cast<std::int32_t>(b)));
          break;
        default:
          write_reg(rd, b == 0 ? a : a % b);
          break;
      }
      stall_ += (u.op <= MicroOp::kMulhu) ? cfg_.mul_latency - 1
                                          : cfg_.div_latency - 1;
      break;
    }
    case MicroOp::kFence:  // no-op on this single-hart platform
      break;
    case MicroOp::kEcall:
      if (read_reg(17) == 93) {  // exit syscall convention (a7 = 93)
        halt_ = Halt::kEcallExit;
        return;
      }
      if (mtvec_ != 0) {
        take_trap(11, pc_);  // environment call from M-mode
        return;
      }
      halt_ = Halt::kIllegal;
      return;
    case MicroOp::kEbreak:
      halt_ = Halt::kEbreak;
      return;
    case MicroOp::kWfi:
      wfi_ = true;
      return;  // pc advances when an interrupt becomes pending
    case MicroOp::kMret:
      if (mstatus_ & kMstatusMpie)
        mstatus_ |= kMstatusMie;
      else
        mstatus_ &= ~kMstatusMie;
      mstatus_ |= kMstatusMpie;
      next_pc = mepc_;
      ++stall_;
      break;
    case MicroOp::kCsrrw:
    case MicroOp::kCsrrs:
    case MicroOp::kCsrrc:
    case MicroOp::kCsrrwi:
    case MicroOp::kCsrrsi:
    case MicroOp::kCsrrci: {
      const std::uint32_t csr = u.imm;
      const std::uint32_t old = read_csr(csr);
      const auto zimm = static_cast<std::uint32_t>(rs1);
      switch (u.op) {
        case MicroOp::kCsrrw: write_csr(csr, a); break;
        case MicroOp::kCsrrs:
          if (rs1 != 0) write_csr(csr, old | a);
          break;
        case MicroOp::kCsrrc:
          if (rs1 != 0) write_csr(csr, old & ~a);
          break;
        case MicroOp::kCsrrwi: write_csr(csr, zimm); break;
        case MicroOp::kCsrrsi: write_csr(csr, old | zimm); break;
        default: write_csr(csr, old & ~zimm); break;
      }
      write_reg(rd, old);
      break;
    }
    case MicroOp::kIllegal:
    default:
      mem_fault(2);  // illegal instruction
      return;
  }

  ++instret_;
  pc_ = next_pc;
}

// --------------------------------------------- legacy decode-every-fetch

void Cpu::exec(std::uint32_t inst, std::uint32_t len) {
  const unsigned opcode = inst & 0x7F;
  const int rd = static_cast<int>((inst >> 7) & 0x1F);
  const unsigned funct3 = (inst >> 12) & 0x7;
  const int rs1 = static_cast<int>((inst >> 15) & 0x1F);
  const int rs2 = static_cast<int>((inst >> 20) & 0x1F);
  const unsigned funct7 = inst >> 25;
  std::uint32_t next_pc = pc_ + len;
  bool retired = true;

  const std::uint32_t a = read_reg(rs1);
  const std::uint32_t b = read_reg(rs2);

  switch (opcode) {
    case 0x37:  // LUI
      write_reg(rd, inst & 0xFFFFF000u);
      break;
    case 0x17:  // AUIPC
      write_reg(rd, pc_ + (inst & 0xFFFFF000u));
      break;
    case 0x6F: {  // JAL
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 20) | (((inst >> 12) & 0xFFu) << 12) |
          (((inst >> 20) & 1u) << 11) | (((inst >> 21) & 0x3FFu) << 1);
      write_reg(rd, pc_ + len);
      next_pc = pc_ + static_cast<std::uint32_t>(sign_extend(imm, 21));
      ++stall_;  // taken-control-flow penalty
      break;
    }
    case 0x67: {  // JALR
      const auto imm = sign_extend(inst >> 20, 12);
      const std::uint32_t target =
          (a + static_cast<std::uint32_t>(imm)) & ~1u;
      write_reg(rd, pc_ + len);
      next_pc = target;
      ++stall_;
      break;
    }
    case 0x63: {  // branches
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 12) | (((inst >> 7) & 1u) << 11) |
          (((inst >> 25) & 0x3Fu) << 5) | (((inst >> 8) & 0xFu) << 1);
      const auto offset = static_cast<std::uint32_t>(sign_extend(imm, 13));
      bool taken = false;
      switch (funct3) {
        case 0: taken = a == b; break;
        case 1: taken = a != b; break;
        case 4: taken = static_cast<std::int32_t>(a) <
                        static_cast<std::int32_t>(b); break;
        case 5: taken = static_cast<std::int32_t>(a) >=
                        static_cast<std::int32_t>(b); break;
        case 6: taken = a < b; break;
        case 7: taken = a >= b; break;
        default:
          retired = false;
          mem_fault(2);
          return;
      }
      if (taken) {
        next_pc = pc_ + offset;
        ++stall_;
      }
      break;
    }
    case 0x03: {  // loads
      const auto imm = sign_extend(inst >> 20, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      unsigned size = 1;
      if (funct3 == 1 || funct3 == 5) size = 2;
      if (funct3 == 2) size = 4;
      const Bus::Access acc = bus_.read(addr, size);
      if (acc.fault) {
        mem_fault(5);  // load access fault
        return;
      }
      stall_ += acc.latency;
      std::uint32_t v = acc.value;
      if (funct3 == 0) v = static_cast<std::uint32_t>(sign_extend(v, 8));
      if (funct3 == 1) v = static_cast<std::uint32_t>(sign_extend(v, 16));
      write_reg(rd, v);
      break;
    }
    case 0x23: {  // stores
      const std::uint32_t imm =
          ((inst >> 25) << 5) | ((inst >> 7) & 0x1Fu);
      const auto offset = sign_extend(imm, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(offset);
      unsigned size = 1;
      if (funct3 == 1) size = 2;
      if (funct3 == 2) size = 4;
      const Bus::Access acc = bus_.write(addr, b, size);
      if (acc.fault) {
        mem_fault(7);  // store access fault
        return;
      }
      stall_ += acc.latency;
      break;
    }
    case 0x13: {  // OP-IMM
      const auto imm = sign_extend(inst >> 20, 12);
      const auto ui = static_cast<std::uint32_t>(imm);
      const unsigned shamt = (inst >> 20) & 0x1F;
      switch (funct3) {
        case 0: write_reg(rd, a + ui); break;
        case 1: write_reg(rd, a << shamt); break;
        case 2: write_reg(rd, static_cast<std::int32_t>(a) < imm ? 1 : 0); break;
        case 3: write_reg(rd, a < ui ? 1 : 0); break;
        case 4: write_reg(rd, a ^ ui); break;
        case 5:
          if (funct7 & 0x20)
            write_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) >> shamt));
          else
            write_reg(rd, a >> shamt);
          break;
        case 6: write_reg(rd, a | ui); break;
        case 7: write_reg(rd, a & ui); break;
        default: break;
      }
      break;
    }
    case 0x33: {  // OP
      if (funct7 == 0x01) {  // M extension
        const auto sa = static_cast<std::int64_t>(static_cast<std::int32_t>(a));
        const auto sb = static_cast<std::int64_t>(static_cast<std::int32_t>(b));
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        switch (funct3) {
          case 0: write_reg(rd, static_cast<std::uint32_t>(sa * sb)); break;
          case 1:
            write_reg(rd, static_cast<std::uint32_t>(
                              (sa * sb) >> 32));
            break;
          case 2:
            write_reg(rd, static_cast<std::uint32_t>(
                              (sa * static_cast<std::int64_t>(ub)) >> 32));
            break;
          case 3:
            write_reg(rd, static_cast<std::uint32_t>((ua * ub) >> 32));
            break;
          case 4:  // DIV
            if (b == 0)
              write_reg(rd, 0xFFFFFFFFu);
            else if (a == 0x80000000u && b == 0xFFFFFFFFu)
              write_reg(rd, 0x80000000u);
            else
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) /
                                static_cast<std::int32_t>(b)));
            break;
          case 5:  // DIVU
            write_reg(rd, b == 0 ? 0xFFFFFFFFu : a / b);
            break;
          case 6:  // REM
            if (b == 0)
              write_reg(rd, a);
            else if (a == 0x80000000u && b == 0xFFFFFFFFu)
              write_reg(rd, 0);
            else
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) %
                                static_cast<std::int32_t>(b)));
            break;
          case 7:  // REMU
            write_reg(rd, b == 0 ? a : a % b);
            break;
          default: break;
        }
        stall_ += (funct3 <= 3) ? cfg_.mul_latency - 1 : cfg_.div_latency - 1;
      } else {
        switch (funct3) {
          case 0:
            write_reg(rd, (funct7 & 0x20) ? a - b : a + b);
            break;
          case 1: write_reg(rd, a << (b & 0x1F)); break;
          case 2:
            write_reg(rd, static_cast<std::int32_t>(a) <
                                  static_cast<std::int32_t>(b)
                              ? 1
                              : 0);
            break;
          case 3: write_reg(rd, a < b ? 1 : 0); break;
          case 4: write_reg(rd, a ^ b); break;
          case 5:
            if (funct7 & 0x20)
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) >> (b & 0x1F)));
            else
              write_reg(rd, a >> (b & 0x1F));
            break;
          case 6: write_reg(rd, a | b); break;
          case 7: write_reg(rd, a & b); break;
          default: break;
        }
      }
      break;
    }
    case 0x0F:  // FENCE — no-op on this single-hart platform
      break;
    case 0x73: {  // SYSTEM
      if (inst == 0x00000073) {  // ECALL
        if (read_reg(17) == 93) {  // exit syscall convention (a7 = 93)
          halt_ = Halt::kEcallExit;
          return;
        }
        if (mtvec_ != 0) {
          take_trap(11, pc_);  // environment call from M-mode
          return;
        }
        halt_ = Halt::kIllegal;
        return;
      }
      if (inst == 0x00100073) {  // EBREAK
        halt_ = Halt::kEbreak;
        return;
      }
      if (inst == 0x10500073) {  // WFI
        wfi_ = true;
        return;  // pc advances when an interrupt becomes pending
      }
      if (inst == 0x30200073) {  // MRET
        if (mstatus_ & kMstatusMpie)
          mstatus_ |= kMstatusMie;
        else
          mstatus_ &= ~kMstatusMie;
        mstatus_ |= kMstatusMpie;
        next_pc = mepc_;
        ++stall_;
        break;
      }
      // Zicsr
      const std::uint32_t csr = inst >> 20;
      const std::uint32_t old = read_csr(csr);
      switch (funct3) {
        case 1: write_csr(csr, a); break;                       // CSRRW
        case 2: if (rs1 != 0) write_csr(csr, old | a); break;   // CSRRS
        case 3: if (rs1 != 0) write_csr(csr, old & ~a); break;  // CSRRC
        case 5: write_csr(csr, static_cast<std::uint32_t>(rs1)); break;
        case 6: write_csr(csr, old | static_cast<std::uint32_t>(rs1)); break;
        case 7: write_csr(csr, old & ~static_cast<std::uint32_t>(rs1)); break;
        default:
          retired = false;
          mem_fault(2);
          return;
      }
      if (funct3 >= 1 && funct3 <= 7) write_reg(rd, old);
      break;
    }
    default:
      retired = false;
      mem_fault(2);  // illegal instruction
      return;
  }

  if (retired) ++instret_;
  pc_ = next_pc;
}

}  // namespace aspen::sys::rv
