#include "sysim/riscv/cpu.hpp"

#include <stdexcept>

#include "sysim/riscv/assembler.hpp"  // CSR number constants

namespace aspen::sys::rv {

namespace {
constexpr std::uint32_t kMstatusMie = 1u << 3;
constexpr std::uint32_t kMstatusMpie = 1u << 7;
constexpr std::uint32_t kMeip = 1u << 11;
constexpr std::uint32_t kCauseExternal = 0x8000000Bu;

std::int32_t sign_extend(std::uint32_t v, unsigned bits) {
  const unsigned shift = 32 - bits;
  return static_cast<std::int32_t>(v << shift) >> shift;
}
}  // namespace

Cpu::Cpu(Bus& bus, CpuConfig cfg) : bus_(bus), cfg_(cfg), pc_(cfg.reset_pc) {
  stuck_and_.fill(0xFFFFFFFFu);
}

void Cpu::reset() {
  regs_.fill(0);
  pc_ = cfg_.reset_pc;
  cycles_ = instret_ = 0;
  stall_ = 0;
  irq_ = false;
  wfi_ = false;
  halt_ = Halt::kRunning;
  mstatus_ = mie_ = mip_ = mtvec_ = mscratch_ = mepc_ = mcause_ = 0;
}

std::uint32_t Cpu::read_reg(int i) const {
  if (i == 0) return 0;
  return (regs_[static_cast<std::size_t>(i)] |
          stuck_or_[static_cast<std::size_t>(i)]) &
         stuck_and_[static_cast<std::size_t>(i)];
}

void Cpu::write_reg(int i, std::uint32_t v) {
  if (i != 0) regs_[static_cast<std::size_t>(i)] = v;
}

void Cpu::flip_reg_bit(int reg, unsigned bit) {
  if (reg <= 0 || reg > 31 || bit > 31)
    throw std::out_of_range("Cpu::flip_reg_bit");
  regs_[static_cast<std::size_t>(reg)] ^= (1u << bit);
}

void Cpu::set_reg_stuck_bit(int reg, unsigned bit, bool value) {
  if (reg <= 0 || reg > 31 || bit > 31)
    throw std::out_of_range("Cpu::set_reg_stuck_bit");
  if (value)
    stuck_or_[static_cast<std::size_t>(reg)] |= (1u << bit);
  else
    stuck_and_[static_cast<std::size_t>(reg)] &= ~(1u << bit);
}

void Cpu::clear_faults() {
  stuck_or_.fill(0);
  stuck_and_.fill(0xFFFFFFFFu);
}

std::uint32_t Cpu::read_csr(std::uint32_t addr) const {
  switch (addr) {
    case kCsrMstatus: return mstatus_;
    case kCsrMie: return mie_;
    case kCsrMip: return mip_;
    case kCsrMtvec: return mtvec_;
    case kCsrMscratch: return mscratch_;
    case kCsrMepc: return mepc_;
    case kCsrMcause: return mcause_;
    case kCsrMcycle: return static_cast<std::uint32_t>(cycles_);
    case kCsrMinstret: return static_cast<std::uint32_t>(instret_);
    default: return 0;
  }
}

void Cpu::write_csr(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kCsrMstatus: mstatus_ = value; break;
    case kCsrMie: mie_ = value; break;
    case kCsrMip: break;  // MEIP is wired to the interrupt line
    case kCsrMtvec: mtvec_ = value; break;
    case kCsrMscratch: mscratch_ = value; break;
    case kCsrMepc: mepc_ = value; break;
    case kCsrMcause: mcause_ = value; break;
    default: break;
  }
}

void Cpu::take_trap(std::uint32_t cause, std::uint32_t epc) {
  mepc_ = epc;
  mcause_ = cause;
  if (mstatus_ & kMstatusMie)
    mstatus_ |= kMstatusMpie;
  else
    mstatus_ &= ~kMstatusMpie;
  mstatus_ &= ~kMstatusMie;
  pc_ = mtvec_ & ~3u;
}

void Cpu::mem_fault(std::uint32_t cause) {
  if (mtvec_ != 0) {
    take_trap(cause, pc_);
  } else {
    // No handler installed: cause 2 is an illegal instruction, the rest
    // are access faults.
    halt_ = cause == 2 ? Halt::kIllegal : Halt::kBusFault;
  }
}

void Cpu::tick() {
  if (halt_ != Halt::kRunning) return;
  ++cycles_;
  if (stall_ > 0) {
    --stall_;
    return;
  }

  // External interrupt line -> MEIP; WFI wakes on pending regardless of
  // the global enable, per the privileged spec.
  if (irq_)
    mip_ |= kMeip;
  else
    mip_ &= ~kMeip;

  if (wfi_) {
    if (mip_ & kMeip) {
      wfi_ = false;
      pc_ += 4;  // retire the WFI
    } else {
      return;  // idle
    }
  }

  if ((mstatus_ & kMstatusMie) && (mie_ & kMeip) && (mip_ & kMeip)) {
    take_trap(kCauseExternal, pc_);
    return;
  }

  const Bus::Access fetch = bus_.read(pc_, 4);
  if (fetch.fault) {
    mem_fault(1);  // instruction access fault
    return;
  }
  stall_ += cfg_.fetch_latency;
  exec(fetch.value);
}

void Cpu::exec(std::uint32_t inst) {
  const unsigned opcode = inst & 0x7F;
  const int rd = static_cast<int>((inst >> 7) & 0x1F);
  const unsigned funct3 = (inst >> 12) & 0x7;
  const int rs1 = static_cast<int>((inst >> 15) & 0x1F);
  const int rs2 = static_cast<int>((inst >> 20) & 0x1F);
  const unsigned funct7 = inst >> 25;
  std::uint32_t next_pc = pc_ + 4;
  bool retired = true;

  const std::uint32_t a = read_reg(rs1);
  const std::uint32_t b = read_reg(rs2);

  switch (opcode) {
    case 0x37:  // LUI
      write_reg(rd, inst & 0xFFFFF000u);
      break;
    case 0x17:  // AUIPC
      write_reg(rd, pc_ + (inst & 0xFFFFF000u));
      break;
    case 0x6F: {  // JAL
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 20) | (((inst >> 12) & 0xFFu) << 12) |
          (((inst >> 20) & 1u) << 11) | (((inst >> 21) & 0x3FFu) << 1);
      write_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sign_extend(imm, 21));
      ++stall_;  // taken-control-flow penalty
      break;
    }
    case 0x67: {  // JALR
      const auto imm = sign_extend(inst >> 20, 12);
      const std::uint32_t target =
          (a + static_cast<std::uint32_t>(imm)) & ~1u;
      write_reg(rd, pc_ + 4);
      next_pc = target;
      ++stall_;
      break;
    }
    case 0x63: {  // branches
      const std::uint32_t imm =
          (((inst >> 31) & 1u) << 12) | (((inst >> 7) & 1u) << 11) |
          (((inst >> 25) & 0x3Fu) << 5) | (((inst >> 8) & 0xFu) << 1);
      const auto offset = static_cast<std::uint32_t>(sign_extend(imm, 13));
      bool taken = false;
      switch (funct3) {
        case 0: taken = a == b; break;
        case 1: taken = a != b; break;
        case 4: taken = static_cast<std::int32_t>(a) <
                        static_cast<std::int32_t>(b); break;
        case 5: taken = static_cast<std::int32_t>(a) >=
                        static_cast<std::int32_t>(b); break;
        case 6: taken = a < b; break;
        case 7: taken = a >= b; break;
        default:
          retired = false;
          mem_fault(2);
          return;
      }
      if (taken) {
        next_pc = pc_ + offset;
        ++stall_;
      }
      break;
    }
    case 0x03: {  // loads
      const auto imm = sign_extend(inst >> 20, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      unsigned size = 1;
      if (funct3 == 1 || funct3 == 5) size = 2;
      if (funct3 == 2) size = 4;
      const Bus::Access acc = bus_.read(addr, size);
      if (acc.fault) {
        mem_fault(5);  // load access fault
        return;
      }
      stall_ += acc.latency;
      std::uint32_t v = acc.value;
      if (funct3 == 0) v = static_cast<std::uint32_t>(sign_extend(v, 8));
      if (funct3 == 1) v = static_cast<std::uint32_t>(sign_extend(v, 16));
      write_reg(rd, v);
      break;
    }
    case 0x23: {  // stores
      const std::uint32_t imm =
          ((inst >> 25) << 5) | ((inst >> 7) & 0x1Fu);
      const auto offset = sign_extend(imm, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(offset);
      unsigned size = 1;
      if (funct3 == 1) size = 2;
      if (funct3 == 2) size = 4;
      const Bus::Access acc = bus_.write(addr, b, size);
      if (acc.fault) {
        mem_fault(7);  // store access fault
        return;
      }
      stall_ += acc.latency;
      break;
    }
    case 0x13: {  // OP-IMM
      const auto imm = sign_extend(inst >> 20, 12);
      const auto ui = static_cast<std::uint32_t>(imm);
      const unsigned shamt = (inst >> 20) & 0x1F;
      switch (funct3) {
        case 0: write_reg(rd, a + ui); break;
        case 1: write_reg(rd, a << shamt); break;
        case 2: write_reg(rd, static_cast<std::int32_t>(a) < imm ? 1 : 0); break;
        case 3: write_reg(rd, a < ui ? 1 : 0); break;
        case 4: write_reg(rd, a ^ ui); break;
        case 5:
          if (funct7 & 0x20)
            write_reg(rd, static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(a) >> shamt));
          else
            write_reg(rd, a >> shamt);
          break;
        case 6: write_reg(rd, a | ui); break;
        case 7: write_reg(rd, a & ui); break;
        default: break;
      }
      break;
    }
    case 0x33: {  // OP
      if (funct7 == 0x01) {  // M extension
        const auto sa = static_cast<std::int64_t>(static_cast<std::int32_t>(a));
        const auto sb = static_cast<std::int64_t>(static_cast<std::int32_t>(b));
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        switch (funct3) {
          case 0: write_reg(rd, static_cast<std::uint32_t>(sa * sb)); break;
          case 1:
            write_reg(rd, static_cast<std::uint32_t>(
                              (sa * sb) >> 32));
            break;
          case 2:
            write_reg(rd, static_cast<std::uint32_t>(
                              (sa * static_cast<std::int64_t>(ub)) >> 32));
            break;
          case 3:
            write_reg(rd, static_cast<std::uint32_t>((ua * ub) >> 32));
            break;
          case 4:  // DIV
            if (b == 0)
              write_reg(rd, 0xFFFFFFFFu);
            else if (a == 0x80000000u && b == 0xFFFFFFFFu)
              write_reg(rd, 0x80000000u);
            else
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) /
                                static_cast<std::int32_t>(b)));
            break;
          case 5:  // DIVU
            write_reg(rd, b == 0 ? 0xFFFFFFFFu : a / b);
            break;
          case 6:  // REM
            if (b == 0)
              write_reg(rd, a);
            else if (a == 0x80000000u && b == 0xFFFFFFFFu)
              write_reg(rd, 0);
            else
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) %
                                static_cast<std::int32_t>(b)));
            break;
          case 7:  // REMU
            write_reg(rd, b == 0 ? a : a % b);
            break;
          default: break;
        }
        stall_ += (funct3 <= 3) ? cfg_.mul_latency - 1 : cfg_.div_latency - 1;
      } else {
        switch (funct3) {
          case 0:
            write_reg(rd, (funct7 & 0x20) ? a - b : a + b);
            break;
          case 1: write_reg(rd, a << (b & 0x1F)); break;
          case 2:
            write_reg(rd, static_cast<std::int32_t>(a) <
                                  static_cast<std::int32_t>(b)
                              ? 1
                              : 0);
            break;
          case 3: write_reg(rd, a < b ? 1 : 0); break;
          case 4: write_reg(rd, a ^ b); break;
          case 5:
            if (funct7 & 0x20)
              write_reg(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) >> (b & 0x1F)));
            else
              write_reg(rd, a >> (b & 0x1F));
            break;
          case 6: write_reg(rd, a | b); break;
          case 7: write_reg(rd, a & b); break;
          default: break;
        }
      }
      break;
    }
    case 0x0F:  // FENCE — no-op on this single-hart platform
      break;
    case 0x73: {  // SYSTEM
      if (inst == 0x00000073) {  // ECALL
        if (read_reg(17) == 93) {  // exit syscall convention (a7 = 93)
          halt_ = Halt::kEcallExit;
          return;
        }
        if (mtvec_ != 0) {
          take_trap(11, pc_);  // environment call from M-mode
          return;
        }
        halt_ = Halt::kIllegal;
        return;
      }
      if (inst == 0x00100073) {  // EBREAK
        halt_ = Halt::kEbreak;
        return;
      }
      if (inst == 0x10500073) {  // WFI
        wfi_ = true;
        return;  // pc advances when an interrupt becomes pending
      }
      if (inst == 0x30200073) {  // MRET
        if (mstatus_ & kMstatusMpie)
          mstatus_ |= kMstatusMie;
        else
          mstatus_ &= ~kMstatusMie;
        mstatus_ |= kMstatusMpie;
        next_pc = mepc_;
        ++stall_;
        break;
      }
      // Zicsr
      const std::uint32_t csr = inst >> 20;
      const std::uint32_t old = read_csr(csr);
      switch (funct3) {
        case 1: write_csr(csr, a); break;                       // CSRRW
        case 2: if (rs1 != 0) write_csr(csr, old | a); break;   // CSRRS
        case 3: if (rs1 != 0) write_csr(csr, old & ~a); break;  // CSRRC
        case 5: write_csr(csr, static_cast<std::uint32_t>(rs1)); break;
        case 6: write_csr(csr, old | static_cast<std::uint32_t>(rs1)); break;
        case 7: write_csr(csr, old & ~static_cast<std::uint32_t>(rs1)); break;
        default:
          retired = false;
          mem_fault(2);
          return;
      }
      if (funct3 >= 1 && funct3 <= 7) write_reg(rd, old);
      break;
    }
    default:
      retired = false;
      mem_fault(2);  // illegal instruction
      return;
  }

  if (retired) ++instret_;
  pc_ = next_pc;
}

}  // namespace aspen::sys::rv
