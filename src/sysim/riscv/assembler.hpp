#pragma once
/// \file assembler.hpp
/// Typed RV32IMC program builder. Workload generators construct
/// bare-metal programs through this API (labels + fixups, standard
/// pseudo-ops); the emitted words feed the ISS. Register arguments are
/// plain ints 0..31; the Reg enum provides the ABI names. With
/// `compress = true` the emitters opportunistically pick RV32C forms
/// when the operands fit (loads/stores/ALU/moves; label-relative
/// branches and jumps stay full-width so fixups never relax), packing
/// mixed 2/4-byte runs; assemble() pads with c.nop to a whole word.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aspen::sys::rv {

/// ABI register names (x0..x31).
enum Reg : int {
  zero = 0, ra = 1, sp = 2, gp = 3, tp = 4,
  t0 = 5, t1 = 6, t2 = 7,
  s0 = 8, s1 = 9,
  a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15, a6 = 16, a7 = 17,
  s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23, s8 = 24, s9 = 25,
  s10 = 26, s11 = 27,
  t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

/// Machine-mode CSR numbers used by the platform.
inline constexpr std::uint32_t kCsrMstatus = 0x300;
inline constexpr std::uint32_t kCsrMisa = 0x301;
inline constexpr std::uint32_t kCsrMie = 0x304;
inline constexpr std::uint32_t kCsrMtvec = 0x305;
inline constexpr std::uint32_t kCsrMscratch = 0x340;
inline constexpr std::uint32_t kCsrMepc = 0x341;
inline constexpr std::uint32_t kCsrMcause = 0x342;
inline constexpr std::uint32_t kCsrMtval = 0x343;
inline constexpr std::uint32_t kCsrMip = 0x344;
inline constexpr std::uint32_t kCsrMcycle = 0xB00;
inline constexpr std::uint32_t kCsrMinstret = 0xB02;
inline constexpr std::uint32_t kCsrMcycleH = 0xB80;
inline constexpr std::uint32_t kCsrMinstretH = 0xB82;

class Assembler {
 public:
  explicit Assembler(std::uint32_t base_address = 0x80000000u,
                     bool compress = false)
      : base_(base_address), compress_(compress) {}

  /// Whether the emitters pick RV32C forms when operands fit.
  [[nodiscard]] bool compress() const { return compress_; }

  // -- RV32I --------------------------------------------------------------
  void lui(int rd, std::uint32_t imm20);
  void auipc(int rd, std::uint32_t imm20);
  void jal(int rd, const std::string& label);
  void jalr(int rd, int rs1, std::int32_t imm);
  void beq(int rs1, int rs2, const std::string& label);
  void bne(int rs1, int rs2, const std::string& label);
  void blt(int rs1, int rs2, const std::string& label);
  void bge(int rs1, int rs2, const std::string& label);
  void bltu(int rs1, int rs2, const std::string& label);
  void bgeu(int rs1, int rs2, const std::string& label);
  void lb(int rd, int rs1, std::int32_t imm);
  void lh(int rd, int rs1, std::int32_t imm);
  void lw(int rd, int rs1, std::int32_t imm);
  void lbu(int rd, int rs1, std::int32_t imm);
  void lhu(int rd, int rs1, std::int32_t imm);
  void sb(int rs2, int rs1, std::int32_t imm);
  void sh(int rs2, int rs1, std::int32_t imm);
  void sw(int rs2, int rs1, std::int32_t imm);
  void addi(int rd, int rs1, std::int32_t imm);
  void slti(int rd, int rs1, std::int32_t imm);
  void sltiu(int rd, int rs1, std::int32_t imm);
  void xori(int rd, int rs1, std::int32_t imm);
  void ori(int rd, int rs1, std::int32_t imm);
  void andi(int rd, int rs1, std::int32_t imm);
  void slli(int rd, int rs1, unsigned shamt);
  void srli(int rd, int rs1, unsigned shamt);
  void srai(int rd, int rs1, unsigned shamt);
  void add(int rd, int rs1, int rs2);
  void sub(int rd, int rs1, int rs2);
  void sll(int rd, int rs1, int rs2);
  void slt(int rd, int rs1, int rs2);
  void sltu(int rd, int rs1, int rs2);
  void xor_(int rd, int rs1, int rs2);
  void srl(int rd, int rs1, int rs2);
  void sra(int rd, int rs1, int rs2);
  void or_(int rd, int rs1, int rs2);
  void and_(int rd, int rs1, int rs2);
  void ecall();
  void ebreak();
  void wfi();
  void mret();
  void csrrw(int rd, std::uint32_t csr, int rs1);
  void csrrs(int rd, std::uint32_t csr, int rs1);
  void csrrc(int rd, std::uint32_t csr, int rs1);
  void csrrwi(int rd, std::uint32_t csr, unsigned zimm);

  // -- RV32M --------------------------------------------------------------
  void mul(int rd, int rs1, int rs2);
  void mulh(int rd, int rs1, int rs2);
  void mulhsu(int rd, int rs1, int rs2);
  void mulhu(int rd, int rs1, int rs2);
  void div(int rd, int rs1, int rs2);
  void divu(int rd, int rs1, int rs2);
  void rem(int rd, int rs1, int rs2);
  void remu(int rd, int rs1, int rs2);

  // -- Pseudo-instructions -------------------------------------------------
  void nop() { addi(0, 0, 0); }
  void mv(int rd, int rs) { addi(rd, rs, 0); }
  /// Load arbitrary 32-bit constant (lui + addi as needed).
  void li(int rd, std::uint32_t value);
  void j(const std::string& label) { jal(0, label); }
  void ret() { jalr(0, 1, 0); }

  // -- Labels / layout ------------------------------------------------------
  void label(const std::string& name);
  [[nodiscard]] std::uint32_t address_of(const std::string& label) const;
  [[nodiscard]] std::uint32_t current_address() const;
  [[nodiscard]] std::uint32_t base_address() const { return base_; }

  /// Finalize (resolve fixups, pad compressed streams to a whole word
  /// with c.nop) and return the packed little-endian instruction words.
  [[nodiscard]] std::vector<std::uint32_t> assemble();

  /// Bytes emitted so far (2 per compressed instruction, 4 otherwise).
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }

 private:
  void emit(std::uint32_t word);
  void emit16(std::uint16_t half);
  void branch(unsigned funct3, int rs1, int rs2, const std::string& label);

  std::uint32_t base_;
  bool compress_ = false;
  std::vector<std::uint8_t> bytes_;  ///< little-endian instruction stream
  std::map<std::string, std::uint32_t> labels_;  ///< label -> address
  struct Fixup {
    std::size_t offset;     ///< byte offset of the 4-byte word to patch
    std::string label;
    bool is_branch;         ///< B-type vs J-type immediate
  };
  std::vector<Fixup> fixups_;
};

}  // namespace aspen::sys::rv
