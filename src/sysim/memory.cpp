#include "sysim/memory.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace aspen::sys {

Memory::Memory(std::string name, std::uint32_t size, unsigned latency_cycles)
    : name_(std::move(name)), bytes_(size, 0), latency_(latency_cycles) {
  if (size == 0) throw std::invalid_argument("Memory: zero size");
}

std::uint8_t Memory::read_byte(std::uint32_t offset) const {
  std::uint8_t b = bytes_[offset];
  for (const auto& s : stuck_) {
    if (s.offset != offset) continue;
    if (s.value)
      b |= static_cast<std::uint8_t>(1u << s.bit);
    else
      b &= static_cast<std::uint8_t>(~(1u << s.bit));
  }
  return b;
}

std::uint32_t Memory::read(std::uint32_t offset, unsigned size) {
  // Bus-facing access: a region-boundary-crossing transaction (possible
  // under injected faults) reads as zero rather than killing the
  // simulation; host-side load/read_block stay strict.
  if (offset > bytes_.size() || size > bytes_.size() - offset) return 0;
  // Little-endian block copy instead of the per-byte assembly loop.
  if (stuck_.empty()) return load_le(bytes_.data() + offset, size);
  std::uint32_t v = 0;
  for (unsigned i = 0; i < size; ++i)
    v |= static_cast<std::uint32_t>(read_byte(offset + i)) << (8 * i);
  return v;
}

void Memory::write(std::uint32_t offset, std::uint32_t value, unsigned size) {
  if (offset > bytes_.size() || size > bytes_.size() - offset)
    return;  // see read()
  store_le(bytes_.data() + offset, value, size);
  mark_dirty(offset, size);
  notify(offset, size);
}

void Memory::load(std::uint32_t offset, const void* src, std::size_t n) {
  if (offset + n > bytes_.size())
    throw std::out_of_range(name_ + ": load past end");
  std::memcpy(bytes_.data() + offset, src, n);
  mark_dirty(offset, static_cast<std::uint32_t>(n));
  notify(offset, static_cast<std::uint32_t>(n));
}

void Memory::read_block(std::uint32_t offset, void* dst, std::size_t n) const {
  if (offset + n > bytes_.size())
    throw std::out_of_range(name_ + ": read_block past end");
  std::memcpy(dst, bytes_.data() + offset, n);
}

void Memory::fill(std::uint8_t value) {
  std::fill(bytes_.begin(), bytes_.end(), value);
  mark_dirty(0, size());
  notify(0, size());
}

void Memory::flip_bit(std::uint32_t offset, unsigned bit) {
  if (offset >= bytes_.size() || bit > 7)
    throw std::out_of_range(name_ + ": flip_bit out of range");
  bytes_[offset] ^= static_cast<std::uint8_t>(1u << bit);
  mark_dirty(offset, 1);
  notify(offset, 1);
}

void Memory::set_stuck_bit(std::uint32_t offset, unsigned bit, bool value) {
  if (offset >= bytes_.size() || bit > 7)
    throw std::out_of_range(name_ + ": set_stuck_bit out of range");
  stuck_.push_back({offset, static_cast<std::uint8_t>(bit), value});
  // The read transform changed: the whole span must be treated as dirty
  // (and direct_span() is revoked until the faults are cleared).
  notify(0, size());
}

void Memory::clear_faults() {
  stuck_.clear();
  notify(0, size());
}

void Memory::restore(const Snapshot& s) {
  if (s.bytes.size() != bytes_.size())
    throw std::invalid_argument(name_ + ": restore size mismatch");
  std::memcpy(bytes_.data(), s.bytes.data(), bytes_.size());
  stuck_ = s.stuck;
  dirty_lo_ = 0xFFFFFFFFu;
  dirty_hi_ = 0;
  // Contents and possibly the read transform changed: the whole span is
  // dirty (this also re-grants / revokes direct_span() visibility for
  // masters holding windows on this memory).
  notify(0, size());
}

void Memory::restore_diff(const Snapshot& s, std::uint32_t stale_lo,
                          std::uint32_t stale_len) {
  const auto same_stuck = [&] {
    if (stuck_.size() != s.stuck.size()) return false;
    for (std::size_t i = 0; i < stuck_.size(); ++i)
      if (stuck_[i].offset != s.stuck[i].offset ||
          stuck_[i].bit != s.stuck[i].bit || stuck_[i].value != s.stuck[i].value)
        return false;
    return true;
  };
  if (s.bytes.size() != bytes_.size() || !same_stuck()) {
    restore(s);
    return;
  }
  // Only bytes inside the dirty watermark (mutated since the last
  // restore) or the caller's stale span (where the last restored image
  // may differ from `s`) can differ; everything else is provably equal
  // and is not even scanned.
  const std::uint32_t n = size();
  std::uint32_t scan_lo = dirty_lo_ <= dirty_hi_ ? dirty_lo_ : n;
  std::uint32_t scan_hi = dirty_lo_ <= dirty_hi_ ? dirty_hi_ : 0;
  if (stale_len > 0) {
    scan_lo = std::min(scan_lo, stale_lo);
    scan_hi = std::max<std::uint64_t>(
        scan_hi, std::min<std::uint64_t>(
                     static_cast<std::uint64_t>(stale_lo) + stale_len, n));
  }
  scan_lo = std::min(scan_lo, n);
  scan_hi = std::min(scan_hi, n);
  dirty_lo_ = 0xFFFFFFFFu;
  dirty_hi_ = 0;
  // Chunked scan: contiguous runs of differing chunks are copied and
  // notified as one span, so observer invalidation stays proportional to
  // what actually changed. 256 bytes balances memcmp call overhead
  // against over-invalidation of a master's predecoded instructions.
  constexpr std::uint32_t kChunk = 256;
  std::uint32_t run_lo = 0;
  bool in_run = false;
  for (std::uint32_t off = scan_lo; off < scan_hi; off += kChunk) {
    const std::uint32_t len = std::min(kChunk, scan_hi - off);
    const bool differs =
        std::memcmp(bytes_.data() + off, s.bytes.data() + off, len) != 0;
    if (differs && !in_run) {
      run_lo = off;
      in_run = true;
    } else if (!differs && in_run) {
      std::memcpy(bytes_.data() + run_lo, s.bytes.data() + run_lo,
                  off - run_lo);
      notify(run_lo, off - run_lo);
      in_run = false;
    }
  }
  if (in_run) {
    std::memcpy(bytes_.data() + run_lo, s.bytes.data() + run_lo,
                scan_hi - run_lo);
    notify(run_lo, scan_hi - run_lo);
  }
}

}  // namespace aspen::sys
