#include "sysim/memory.hpp"

#include <cstring>
#include <stdexcept>

namespace aspen::sys {

Memory::Memory(std::string name, std::uint32_t size, unsigned latency_cycles)
    : name_(std::move(name)), bytes_(size, 0), latency_(latency_cycles) {
  if (size == 0) throw std::invalid_argument("Memory: zero size");
}

std::uint8_t Memory::read_byte(std::uint32_t offset) const {
  std::uint8_t b = bytes_[offset];
  for (const auto& s : stuck_) {
    if (s.offset != offset) continue;
    if (s.value)
      b |= static_cast<std::uint8_t>(1u << s.bit);
    else
      b &= static_cast<std::uint8_t>(~(1u << s.bit));
  }
  return b;
}

std::uint32_t Memory::read(std::uint32_t offset, unsigned size) {
  // Bus-facing access: a region-boundary-crossing transaction (possible
  // under injected faults) reads as zero rather than killing the
  // simulation; host-side load/read_block stay strict.
  if (offset > bytes_.size() || size > bytes_.size() - offset) return 0;
  // Little-endian block copy instead of the per-byte assembly loop.
  if (stuck_.empty()) return load_le(bytes_.data() + offset, size);
  std::uint32_t v = 0;
  for (unsigned i = 0; i < size; ++i)
    v |= static_cast<std::uint32_t>(read_byte(offset + i)) << (8 * i);
  return v;
}

void Memory::write(std::uint32_t offset, std::uint32_t value, unsigned size) {
  if (offset > bytes_.size() || size > bytes_.size() - offset)
    return;  // see read()
  store_le(bytes_.data() + offset, value, size);
  notify(offset, size);
}

void Memory::load(std::uint32_t offset, const void* src, std::size_t n) {
  if (offset + n > bytes_.size())
    throw std::out_of_range(name_ + ": load past end");
  std::memcpy(bytes_.data() + offset, src, n);
  notify(offset, static_cast<std::uint32_t>(n));
}

void Memory::read_block(std::uint32_t offset, void* dst, std::size_t n) const {
  if (offset + n > bytes_.size())
    throw std::out_of_range(name_ + ": read_block past end");
  std::memcpy(dst, bytes_.data() + offset, n);
}

void Memory::fill(std::uint8_t value) {
  std::fill(bytes_.begin(), bytes_.end(), value);
  notify(0, size());
}

void Memory::flip_bit(std::uint32_t offset, unsigned bit) {
  if (offset >= bytes_.size() || bit > 7)
    throw std::out_of_range(name_ + ": flip_bit out of range");
  bytes_[offset] ^= static_cast<std::uint8_t>(1u << bit);
  notify(offset, 1);
}

void Memory::set_stuck_bit(std::uint32_t offset, unsigned bit, bool value) {
  if (offset >= bytes_.size() || bit > 7)
    throw std::out_of_range(name_ + ": set_stuck_bit out of range");
  stuck_.push_back({offset, static_cast<std::uint8_t>(bit), value});
  // The read transform changed: the whole span must be treated as dirty
  // (and direct_span() is revoked until the faults are cleared).
  notify(0, size());
}

void Memory::clear_faults() {
  stuck_.clear();
  notify(0, size());
}

void Memory::restore(const Snapshot& s) {
  if (s.bytes.size() != bytes_.size())
    throw std::invalid_argument(name_ + ": restore size mismatch");
  std::memcpy(bytes_.data(), s.bytes.data(), bytes_.size());
  stuck_ = s.stuck;
  // Contents and possibly the read transform changed: the whole span is
  // dirty (this also re-grants / revokes direct_span() visibility for
  // masters holding windows on this memory).
  notify(0, size());
}

}  // namespace aspen::sys
