#include "sysim/dma.hpp"

#include <cstring>

namespace aspen::sys {

DmaEngine::DmaEngine(Bus& bus, unsigned bytes_per_cycle)
    : bus_(bus), beat_(bytes_per_cycle == 0 ? 4 : bytes_per_cycle) {}

std::uint32_t DmaEngine::read(std::uint32_t offset, unsigned /*size*/) {
  switch (offset) {
    case kRegSrc: return src_;
    case kRegDst: return dst_;
    case kRegLen: return len_;
    case kRegCtrl: return ctrl_;
    case kRegStatus:
      return (busy_ ? kStatusBusy : 0u) | (done_ ? kStatusDone : 0u) |
             (error_ ? kStatusError : 0u);
    default: return 0;
  }
}

void DmaEngine::write(std::uint32_t offset, std::uint32_t value,
                      unsigned /*size*/) {
  switch (offset) {
    case kRegSrc: src_ = value; break;
    case kRegDst: dst_ = value; break;
    case kRegLen: len_ = value; break;
    case kRegCtrl:
      ctrl_ = value;
      if ((value & kCtrlStart) && !busy_ && len_ > 0) {
        busy_ = true;
        done_ = false;
        error_ = false;
        cursor_ = 0;
      }
      break;
    case kRegStatus:
      if (value & kStatusDone) {
        done_ = false;
        irq_ = false;
      }
      if (value & kStatusError) {
        error_ = false;
        irq_ = false;
      }
      break;
    default: break;
  }
}

DmaEngine::BulkPath DmaEngine::resolve_bulk() const {
  BulkPath p;
  if (!busy_ || cursor_ >= len_) return p;
  const std::uint32_t remaining = len_ - cursor_;
  const std::uint32_t src_addr = src_ + cursor_;
  const std::uint32_t dst_addr = dst_ + cursor_;
  // A forward per-beat copy through overlapping ranges propagates bytes
  // written earlier in the same transfer; one memcpy would not. Rare and
  // odd — leave it to the exact per-cycle path.
  if (src_ + cursor_ < dst_ + len_ && dst_ + cursor_ < src_ + len_) return p;
  const Bus::DirectWindow sw = bus_.direct_window(src_addr);
  const Bus::DirectWindow dw = bus_.direct_window(dst_addr);
  if (sw.data == nullptr || dw.data == nullptr) return p;
  if (remaining > sw.size || src_addr - sw.base > sw.size - remaining)
    return p;
  if (remaining > dw.size || dst_addr - dw.base > dw.size - remaining)
    return p;
  p.src = sw.data + (src_addr - sw.base);
  p.dst = dw.data + (dst_addr - dw.base);
  p.dst_dev = dw.dev;
  p.dst_dev_offset = dst_addr - dw.base;
  return p;
}

std::uint64_t DmaEngine::advance_cursor(std::uint32_t& cursor,
                                        std::uint64_t ticks) const {
  std::uint64_t used = 0;
  while (cursor < len_ && used < ticks) {
    ++used;
    unsigned moved = 0;
    while (moved < beat_ && cursor < len_) {
      const std::uint32_t remaining = len_ - cursor;
      const bool word_ok = remaining >= 4 && ((src_ + cursor) % 4 == 0) &&
                           ((dst_ + cursor) % 4 == 0);
      const unsigned size = word_ok ? 4 : 1;
      cursor += size;
      moved += size;
    }
  }
  return used;
}

std::uint64_t DmaEngine::bulk_cycles_remaining() const {
  const BulkPath p = resolve_bulk();
  if (p.src == nullptr) return 0;
  // Closed-form tick count (this runs on every event-loop iteration
  // while the CPU idles through a transfer, so it must not walk the
  // whole remainder). Src/dst congruence mod 4 is cursor-invariant.
  std::uint32_t cursor = cursor_;
  if ((src_ + cursor) % 4 != (dst_ + cursor) % 4) {
    // Never word-aligned: every busy cycle moves exactly beat_ bytes.
    const std::uint32_t remaining = len_ - cursor;
    return (remaining + beat_ - 1) / beat_;
  }
  // Congruent: once cursor is word-aligned with >= one full tick of
  // words left, every tick moves exactly word_tick bytes. The short
  // alignment prologue and the sub-tick tail are simulated (bounded by
  // a handful of ticks); the steady stretch is a division.
  const std::uint32_t word_tick = 4 * ((beat_ + 3) / 4);
  std::uint64_t ticks = 0;
  while (cursor < len_) {
    const std::uint32_t remaining = len_ - cursor;
    if ((src_ + cursor) % 4 == 0 && remaining >= word_tick) {
      const std::uint32_t steady = remaining / word_tick;
      ticks += steady;
      cursor += steady * word_tick;
      continue;
    }
    ticks += advance_cursor(cursor, 1);
  }
  return ticks;
}

void DmaEngine::skip_cycles(std::uint64_t n) {
  if (!busy_ || n == 0) return;
  const BulkPath p = resolve_bulk();
  if (p.src != nullptr) {
    std::uint32_t cursor = cursor_;
    (void)advance_cursor(cursor, n);
    const std::uint32_t bytes = cursor - cursor_;
    std::memcpy(p.dst, p.src, bytes);
    // Keep masters caching state derived from the destination (the
    // CPU's predecoded instructions) coherent, exactly as the per-beat
    // bus writes would have.
    p.dst_dev->direct_span_written(p.dst_dev_offset, bytes);
    cursor_ = cursor;
    if (cursor_ >= len_) {
      busy_ = false;
      done_ = true;
      if (ctrl_ & kCtrlIrqEn) irq_ = true;
    }
    return;
  }
  while (busy_ && n-- > 0) tick();
}

void DmaEngine::restore(const Snapshot& s) {
  src_ = s.src;
  dst_ = s.dst;
  len_ = s.len;
  ctrl_ = s.ctrl;
  cursor_ = s.cursor;
  busy_ = s.busy;
  done_ = s.done;
  irq_ = s.irq;
  error_ = s.error;
}

void DmaEngine::abort_transfer() {
  busy_ = false;
  error_ = true;
  if (ctrl_ & kCtrlIrqEn) irq_ = true;
}

void DmaEngine::tick() {
  if (!busy_) return;
  unsigned moved = 0;
  while (moved < beat_ && cursor_ < len_) {
    // Word transfers when aligned and enough remaining; bytes otherwise.
    const std::uint32_t remaining = len_ - cursor_;
    const bool word_ok = remaining >= 4 && ((src_ + cursor_) % 4 == 0) &&
                         ((dst_ + cursor_) % 4 == 0);
    const unsigned size = word_ok ? 4 : 1;
    const Bus::Access rd = bus_.read(src_ + cursor_, size);
    if (rd.fault) {
      abort_transfer();
      return;
    }
    const Bus::Access wr = bus_.write(dst_ + cursor_, rd.value, size);
    if (wr.fault) {
      abort_transfer();
      return;
    }
    cursor_ += size;
    moved += size;
  }
  if (cursor_ >= len_) {
    busy_ = false;
    done_ = true;
    if (ctrl_ & kCtrlIrqEn) irq_ = true;
  }
}

}  // namespace aspen::sys
