#include "sysim/dma.hpp"

namespace aspen::sys {

DmaEngine::DmaEngine(Bus& bus, unsigned bytes_per_cycle)
    : bus_(bus), beat_(bytes_per_cycle == 0 ? 4 : bytes_per_cycle) {}

std::uint32_t DmaEngine::read(std::uint32_t offset, unsigned /*size*/) {
  switch (offset) {
    case kRegSrc: return src_;
    case kRegDst: return dst_;
    case kRegLen: return len_;
    case kRegCtrl: return ctrl_;
    case kRegStatus:
      return (busy_ ? kStatusBusy : 0u) | (done_ ? kStatusDone : 0u);
    default: return 0;
  }
}

void DmaEngine::write(std::uint32_t offset, std::uint32_t value,
                      unsigned /*size*/) {
  switch (offset) {
    case kRegSrc: src_ = value; break;
    case kRegDst: dst_ = value; break;
    case kRegLen: len_ = value; break;
    case kRegCtrl:
      ctrl_ = value;
      if ((value & kCtrlStart) && !busy_ && len_ > 0) {
        busy_ = true;
        done_ = false;
        cursor_ = 0;
      }
      break;
    case kRegStatus:
      if (value & kStatusDone) {
        done_ = false;
        irq_ = false;
      }
      break;
    default: break;
  }
}

void DmaEngine::skip_cycles(std::uint64_t n) {
  while (busy_ && n-- > 0) tick();
}

void DmaEngine::tick() {
  if (!busy_) return;
  unsigned moved = 0;
  while (moved < beat_ && cursor_ < len_) {
    // Word transfers when aligned and enough remaining; bytes otherwise.
    const std::uint32_t remaining = len_ - cursor_;
    const bool word_ok = remaining >= 4 && ((src_ + cursor_) % 4 == 0) &&
                         ((dst_ + cursor_) % 4 == 0);
    const unsigned size = word_ok ? 4 : 1;
    const Bus::Access rd = bus_.read(src_ + cursor_, size);
    if (rd.fault) {  // abort on bus error; leave DONE unset, drop BUSY
      busy_ = false;
      return;
    }
    (void)bus_.write(dst_ + cursor_, rd.value, size);
    cursor_ += size;
    moved += size;
  }
  if (cursor_ >= len_) {
    busy_ = false;
    done_ = true;
    if (ctrl_ & kCtrlIrqEn) irq_ = true;
  }
}

}  // namespace aspen::sys
