#pragma once
/// \file workloads.hpp
/// Bare-metal RISC-V workload generators for the system-level experiments
/// (E6): the scalar software GEMM baseline and the accelerator-offload
/// variants (MMR-programmed copy loops vs. DMA bulk transfers, polling
/// vs. interrupt synchronization). All operate on int16 Q3.12 data so the
/// software and photonic results are directly comparable.
///
/// DRAM data layout (offsets relative to dram_base):
///   A: n x n weights, row-major
///   X: n x m inputs, column-major
///   Y: n x m outputs, column-major

#include <cstdint>
#include <vector>

#include "sysim/riscv/assembler.hpp"
#include "sysim/system.hpp"

namespace aspen::sys {

struct GemmWorkload {
  std::size_t n = 8;   ///< must equal the accelerator port count
  std::size_t m = 8;   ///< input columns
  std::uint32_t a_offset = 0x10000;  ///< DRAM offsets (from dram_base)
  std::uint32_t x_offset = 0x20000;
  std::uint32_t y_offset = 0x30000;
  /// Checked-offload extras (build_gemm_offload_checked only): staged
  /// {crc32(A), crc32(X)} pair, the guest-written recovery record, the
  /// retry budget before falling back to the software GEMM, and the
  /// accelerator watchdog deadline armed around each wait.
  std::uint32_t crc_offset = 0x38000;
  std::uint32_t rec_offset = 0x3C000;
  std::uint32_t max_retries = 2;
  std::uint32_t watchdog_cycles = 100000;
};

/// Guest-side recovery counters written at `rec_offset` by the checked
/// offload workload: {errors detected, ABFT columns corrected (from the
/// accelerator's cumulative counter), retries launched, fell back}.
struct GemmRecoveryRecord {
  std::uint32_t detected = 0;
  std::uint32_t corrected = 0;
  std::uint32_t retried = 0;
  std::uint32_t fell_back = 0;
};

/// Scalar triple-loop GEMM on the CPU (the software baseline).
[[nodiscard]] std::vector<std::uint32_t> build_gemm_software(
    const GemmWorkload& wl, const SystemConfig& sys);

enum class OffloadPath {
  kMmrPolling,   ///< CPU copy loops + STATUS polling
  kMmrInterrupt, ///< CPU copy loops + WFI on the accelerator IRQ
  kDmaInterrupt, ///< DMA bulk transfers + WFI
};

/// Offload the same GEMM to photonic PE `pe_index`.
[[nodiscard]] std::vector<std::uint32_t> build_gemm_offload(
    const GemmWorkload& wl, const SystemConfig& sys, OffloadPath path,
    std::size_t pe_index = 0);

/// Fault-aware offload: every tile transfer is CRC-checked by the
/// accelerator, ABFT (when enabled in the accelerator config) guards the
/// compute, a watchdog deadline is armed around each WFI wait, and on any
/// latched ERROR the guest retries the full load+compute sequence up to
/// `wl.max_retries` times before falling back to the software GEMM. The
/// recovery record lands at `wl.rec_offset`. Stage data with
/// stage_gemm_data_checked().
[[nodiscard]] std::vector<std::uint32_t> build_gemm_offload_checked(
    const GemmWorkload& wl, const SystemConfig& sys, std::size_t pe_index = 0);

/// Offload with the columns partitioned across all `num_pes` PEs (DMA +
/// polling across PEs); demonstrates multi-PE clustering (Fig. 3 right).
[[nodiscard]] std::vector<std::uint32_t> build_gemm_multi_pe(
    const GemmWorkload& wl, const SystemConfig& sys);

/// Streaming offload: weights are programmed once, then `batches` input
/// tiles of `wl.m` columns each are pushed through the PE back to back —
/// the steady-state inference-serving pattern non-volatile photonic
/// weights enable (weights persist, only activations move). Tile b reads
/// X from `x_offset + b * n*m*2` and writes Y to `y_offset + b * n*m*2`;
/// stage data with a GemmWorkload whose m is `wl.m * batches`.
[[nodiscard]] std::vector<std::uint32_t> build_gemm_offload_stream(
    const GemmWorkload& wl, const SystemConfig& sys, OffloadPath path,
    std::size_t batches, std::size_t pe_index = 0);

/// Stage A and X matrices (Q3.12) into DRAM for a workload.
void stage_gemm_data(System& system, const GemmWorkload& wl,
                     const std::vector<std::int16_t>& a,
                     const std::vector<std::int16_t>& x);

/// Stage A and X plus the CRC-32 expectations the checked offload
/// workload programs into the accelerator.
void stage_gemm_data_checked(System& system, const GemmWorkload& wl,
                             const std::vector<std::int16_t>& a,
                             const std::vector<std::int16_t>& x);

/// Read back the checked-offload recovery record.
[[nodiscard]] GemmRecoveryRecord read_gemm_recovery(System& system,
                                                    const GemmWorkload& wl);

/// Read back Y.
[[nodiscard]] std::vector<std::int16_t> read_gemm_result(
    System& system, const GemmWorkload& wl);

/// Exact int16 Q3.12 GEMM on the host (golden reference).
[[nodiscard]] std::vector<std::int16_t> golden_gemm(
    const GemmWorkload& wl, const std::vector<std::int16_t>& a,
    const std::vector<std::int16_t>& x);

/// Read the 64-bit mcycle and minstret counter pairs with the standard
/// high/low/high re-read loop and store {mcycle_lo, mcycle_hi,
/// minstret_lo, minstret_hi} at DRAM offset `out_offset`; exercises the
/// mcycleh/minstreth CSRs guest code uses for long campaign timing.
[[nodiscard]] std::vector<std::uint32_t> build_counter_probe(
    const SystemConfig& sys, std::uint32_t out_offset);

/// RVC-dense scramble/checksum loop assembled with compress=true: the
/// hot loop is almost entirely 2-byte forms (c.lw/c.sw, c.addi, c.mv,
/// CA/CB ALU ops) plus c.lwsp/c.swsp epilogue traffic and a c.jr
/// subroutine return, so it exercises mixed 2/4-byte fetch, block
/// building over compressed runs, and the compressed-fetch counters.
/// Reads `words` 32-bit words at `src_offset`, writes the scrambled
/// words to `dst_offset` followed by {checksum, 0} — all diffable
/// through the DRAM image.
[[nodiscard]] std::vector<std::uint32_t> build_rvc_loop(
    const SystemConfig& sys, std::uint32_t src_offset,
    std::uint32_t dst_offset, std::uint32_t words);

}  // namespace aspen::sys
