#include "sysim/system.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace aspen::sys {

System::System(SystemConfig cfg) : cfg_(cfg), bus_(cfg.bus_latency) {
  if (cfg_.num_pes == 0) throw std::invalid_argument("System: num_pes == 0");
  dram_ = std::make_unique<Memory>("dram", cfg_.dram_size, cfg_.dram_latency);
  bus_.attach(cfg_.dram_base, cfg_.dram_size, dram_.get());

  dma_ = std::make_unique<DmaEngine>(bus_, cfg_.dma_bytes_per_cycle);
  bus_.attach(cfg_.dma_base, 0x1000, dma_.get());

  for (std::size_t i = 0; i < cfg_.num_pes; ++i) {
    AcceleratorConfig pe_cfg = cfg_.accel;
    // Distinct noise streams / dies per PE.
    pe_cfg.gemm.mvm.noise_seed += i;
    pe_cfg.gemm.mvm.errors.seed += i;
    pes_.push_back(std::make_unique<PhotonicAccelerator>(pe_cfg));
    PhotonicAccelerator* pe = pes_.back().get();
    const std::uint32_t pe_base =
        cfg_.accel_base + static_cast<std::uint32_t>(i) * cfg_.accel_stride;
    // MMR block through the device decode; the SPM windows map straight
    // onto their backing memories, skipping one dispatch layer on the
    // copy-loop hot path. The SPMs report the same access latency the
    // device does, so bus-visible timing is unchanged; offsets beyond an
    // SPM's populated bytes keep the read-0/ignore behavior the device
    // decode provided (Memory is lenient bus-side).
    bus_.attach(pe_base, PhotonicAccelerator::kSpmWBase, pe);
    bus_.attach(pe_base + PhotonicAccelerator::kSpmWBase, 0x1000,
                &pe->spm_w());
    bus_.attach(pe_base + PhotonicAccelerator::kSpmXBase, 0x1000,
                &pe->spm_x());
    bus_.attach(pe_base + PhotonicAccelerator::kSpmYBase, 0x1000,
                &pe->spm_y());
  }

  rv::CpuConfig cpu_cfg = cfg_.cpu;
  cpu_cfg.reset_pc = cfg_.dram_base;
  cpu_ = std::make_unique<rv::Cpu>(bus_, cpu_cfg);
}

void System::load_program(const std::vector<std::uint32_t>& words) {
  dram_->load(0, words.data(), words.size() * 4);
}

void System::write_dram(std::uint32_t offset, const void* src,
                        std::size_t n) {
  dram_->load(offset, src, n);
}

void System::read_dram(std::uint32_t offset, void* dst, std::size_t n) const {
  dram_->read_block(offset, dst, n);
}

void System::tick() {
  bool irq = dma_->irq_pending();
  for (const auto& pe : pes_) irq = irq || pe->irq_pending();
  cpu_->set_irq(irq);
  cpu_->tick();
  dma_->tick();
  for (const auto& pe : pes_) pe->tick();
  ++cycle_;
}

std::uint64_t System::skippable_cycles() const {
  constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t cpu_idle;
  if (cpu_->stall_remaining() > 0) {
    cpu_idle = cpu_->stall_remaining();
  } else if (cpu_->waiting_for_interrupt()) {
    // The CPU samples the OR-ed interrupt line at the top of each
    // non-stalled tick; a pending line means it wakes next tick.
    bool irq = dma_->irq_pending();
    for (const auto& pe : pes_) irq = irq || pe->irq_pending();
    if (irq) return 0;
    cpu_idle = kForever;  // sleeps until a device raises the line
  } else {
    return 0;  // an instruction issues next tick
  }
  // Nearest device event: the DMA completing its transfer or a PE
  // completing its optical operation (the only per-cycle side effects
  // are the final DONE/IRQ edges). The DMA query runs only once the CPU
  // is known idle: a busy DMA engine issues bus transactions every
  // cycle, but when both endpoints resolve to raw memory spans those
  // transactions are pure data movement nobody can observe while the
  // CPU sleeps — the remaining beats bulk-move inside skip_cycles.
  std::uint64_t device_event = kForever;
  if (dma_->busy()) {
    device_event = dma_->bulk_cycles_remaining();
    if (device_event == 0) return 0;  // MMIO endpoint or overlap: tick
  }
  for (const auto& pe : pes_) {
    if (pe->busy())
      device_event = std::min(device_event, pe->busy_cycles_remaining());
    // An armed watchdog is a second scheduled device event: its expiry
    // latches ERROR and raises the interrupt line, so skipping must not
    // jump past the deadline.
    if (pe->watchdog_armed())
      device_event = std::min(device_event, pe->watchdog_cycles_remaining());
  }
  return std::min(cpu_idle, device_event);
}

void System::skip_cycles(std::uint64_t n) {
  cpu_->skip_cycles(n);
  dma_->skip_cycles(n);
  for (const auto& pe : pes_) pe->skip_cycles(n);
  cycle_ += n;
}

bool System::can_burst() const {
  // The CPU may free-run only while no device event can preempt it:
  // every device idle with its interrupt line low (so the line cannot
  // rise mid-burst), and the CPU itself ready to issue.
  if (cfg_.cpu.legacy_decode) return false;
  if (dma_->busy() || dma_->irq_pending()) return false;
  for (const auto& pe : pes_)
    if (pe->busy() || pe->irq_pending() || pe->watchdog_armed()) return false;
  return !cpu_->waiting_for_interrupt() && cpu_->stall_remaining() == 0;
}

void System::run_until(std::uint64_t target) {
  if (!cfg_.event_driven) {
    while (!cpu_->halted() && cycle_ < target) tick();
    return;
  }
  while (!cpu_->halted() && cycle_ < target) {
    const std::uint64_t idle = skippable_cycles();
    if (idle > 0) {
      skip_cycles(std::min(idle, target - cycle_));
      continue;
    }
    if (can_burst()) {
      cpu_->set_irq(false);  // the line is low and stays low
      const rv::Cpu::BurstResult b = cpu_->run_burst(target - cycle_);
      cycle_ += b.cycles;
      if (b.bus_access) {
        // Device phase of the access cycle: the MMIO access may have
        // started the DMA engine or a PE, whose tick for that cycle is
        // still pending (idle devices tick as no-ops).
        dma_->tick();
        for (const auto& pe : pes_) pe->tick();
      }
      continue;
    }
    tick();
  }
}

System::SystemSnapshot System::snapshot() const {
  SystemSnapshot s;
  s.cycle = cycle_;
  s.dram = dram_->snapshot();
  s.dma = dma_->snapshot();
  s.pes.reserve(pes_.size());
  for (const auto& pe : pes_) s.pes.push_back(pe->snapshot());
  s.cpu = cpu_->snapshot();
  return s;
}

void System::restore(const SystemSnapshot& s) {
  if (s.pes.size() != pes_.size() ||
      s.dram.bytes.size() != dram_->size())
    throw std::invalid_argument(
        "System::restore: snapshot from a differently configured system");
  // Memories first (their observer notifications run against the old CPU
  // windows, which the CPU restore then drops wholesale anyway).
  dram_->restore(s.dram);
  dma_->restore(s.dma);
  for (std::size_t i = 0; i < pes_.size(); ++i) pes_[i]->restore(s.pes[i]);
  cpu_->restore(s.cpu);
  cycle_ = s.cycle;
}

void System::restore_fast(const SystemSnapshot& s, std::uint32_t dram_stale_lo,
                          std::uint32_t dram_stale_len) {
  if (s.pes.size() != pes_.size() ||
      s.dram.bytes.size() != dram_->size())
    throw std::invalid_argument(
        "System::restore_fast: snapshot from a differently configured system");
  // The CPU's raw-span stores are the one mutation path the memories
  // cannot see; publishing them first makes the DRAM dirty watermark
  // complete, so the diff below provably covers every changed byte.
  cpu_->publish_store_spans();
  // The diff runs while the CPU still holds its windows, so every
  // notification lands on a live window and invalidates exactly the
  // micro-ops covering changed bytes; the warm CPU restore afterwards
  // keeps the rest.
  dram_->restore_diff(s.dram, dram_stale_lo, dram_stale_len);
  dma_->restore(s.dma);
  for (std::size_t i = 0; i < pes_.size(); ++i) pes_[i]->restore(s.pes[i]);
  cpu_->restore_warm(s.cpu);
  cycle_ = s.cycle;
}

System::RunResult System::run() {
  RunResult r;
  run_until(cfg_.max_cycles);
  r.cycles = cpu_->cycles();
  r.instret = cpu_->instret();
  r.halt = cpu_->halt_reason();
  r.exit_code = cpu_->halted() ? cpu_->exit_code() : 0;
  r.timed_out = !cpu_->halted();
  return r;
}

}  // namespace aspen::sys
