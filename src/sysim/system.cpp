#include "sysim/system.hpp"

#include <stdexcept>

namespace aspen::sys {

System::System(SystemConfig cfg) : cfg_(cfg), bus_(cfg.bus_latency) {
  if (cfg_.num_pes == 0) throw std::invalid_argument("System: num_pes == 0");
  dram_ = std::make_unique<Memory>("dram", cfg_.dram_size, cfg_.dram_latency);
  bus_.attach(cfg_.dram_base, cfg_.dram_size, dram_.get());

  dma_ = std::make_unique<DmaEngine>(bus_, cfg_.dma_bytes_per_cycle);
  bus_.attach(cfg_.dma_base, 0x1000, dma_.get());

  for (std::size_t i = 0; i < cfg_.num_pes; ++i) {
    AcceleratorConfig pe_cfg = cfg_.accel;
    // Distinct noise streams / dies per PE.
    pe_cfg.gemm.mvm.noise_seed += i;
    pe_cfg.gemm.mvm.errors.seed += i;
    pes_.push_back(std::make_unique<PhotonicAccelerator>(pe_cfg));
    bus_.attach(cfg_.accel_base +
                    static_cast<std::uint32_t>(i) * cfg_.accel_stride,
                0x4000, pes_.back().get());
  }

  rv::CpuConfig cpu_cfg = cfg_.cpu;
  cpu_cfg.reset_pc = cfg_.dram_base;
  cpu_ = std::make_unique<rv::Cpu>(bus_, cpu_cfg);
}

void System::load_program(const std::vector<std::uint32_t>& words) {
  dram_->load(0, words.data(), words.size() * 4);
}

void System::write_dram(std::uint32_t offset, const void* src,
                        std::size_t n) {
  dram_->load(offset, src, n);
}

void System::read_dram(std::uint32_t offset, void* dst, std::size_t n) const {
  dram_->read_block(offset, dst, n);
}

void System::tick() {
  bool irq = dma_->irq_pending();
  for (const auto& pe : pes_) irq = irq || pe->irq_pending();
  cpu_->set_irq(irq);
  cpu_->tick();
  dma_->tick();
  for (const auto& pe : pes_) pe->tick();
  ++cycle_;
}

System::RunResult System::run() {
  RunResult r;
  while (!cpu_->halted() && cycle_ < cfg_.max_cycles) tick();
  r.cycles = cpu_->cycles();
  r.instret = cpu_->instret();
  r.halt = cpu_->halt_reason();
  r.exit_code = cpu_->halted() ? cpu_->exit_code() : 0;
  r.timed_out = !cpu_->halted();
  return r;
}

}  // namespace aspen::sys
