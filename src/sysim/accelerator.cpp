#include "sysim/accelerator.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sysim/crc32.hpp"

namespace aspen::sys {

using lina::CMat;
using lina::cplx;
using lina::CVec;

namespace {
std::uint32_t spm_bytes(std::size_t elems) {
  return static_cast<std::uint32_t>(elems * sizeof(std::int16_t));
}
}  // namespace

PhotonicAccelerator::PhotonicAccelerator(AcceleratorConfig cfg)
    // SPM latency mirrors the device access_latency() so the memories
    // can be bus-attached directly without changing cycle accounting.
    : cfg_(cfg),
      gemm_(cfg.gemm),
      spm_w_("spm-w",
             spm_bytes(cfg.gemm.mvm.ports * cfg.gemm.mvm.ports), 2),
      spm_x_("spm-x", spm_bytes(cfg.gemm.mvm.ports * cfg.max_cols), 2),
      spm_y_("spm-y", spm_bytes(cfg.gemm.mvm.ports * cfg.max_cols), 2) {
  if (cfg_.max_cols == 0 || cfg_.clock_hz <= 0.0)
    throw std::invalid_argument("PhotonicAccelerator: bad config");
  if (spm_bytes(cfg.gemm.mvm.ports * cfg.max_cols) > 0x1000)
    throw std::invalid_argument(
        "PhotonicAccelerator: SPM exceeds its 4 KiB window");
}

std::int16_t PhotonicAccelerator::to_fixed(double v) {
  const double scaled = std::round(v * (1 << kFracBits));
  if (scaled > 32767.0) return 32767;
  if (scaled < -32768.0) return -32768;
  return static_cast<std::int16_t>(scaled);
}

double PhotonicAccelerator::from_fixed(std::int16_t v) {
  return static_cast<double>(v) / (1 << kFracBits);
}

namespace {
/// Device-internal decode: out-of-range offsets inside a mapped window
/// read as zero / ignore writes, like unpopulated RTL address space —
/// fault campaigns depend on wild accesses not killing the simulator.
bool spm_ok(const Memory& m, std::uint32_t off, unsigned size) {
  return off + size <= m.size();
}
}  // namespace

std::uint32_t PhotonicAccelerator::read(std::uint32_t offset, unsigned size) {
  if (offset >= kSpmYBase)
    return spm_ok(spm_y_, offset - kSpmYBase, size)
               ? spm_y_.read(offset - kSpmYBase, size)
               : 0;
  if (offset >= kSpmXBase)
    return spm_ok(spm_x_, offset - kSpmXBase, size)
               ? spm_x_.read(offset - kSpmXBase, size)
               : 0;
  if (offset >= kSpmWBase)
    return spm_ok(spm_w_, offset - kSpmWBase, size)
               ? spm_w_.read(offset - kSpmWBase, size)
               : 0;
  switch (offset) {
    case kRegCtrl: return ctrl_;
    case kRegStatus:
      return (busy() ? kStatusBusy : 0u) | (done_ ? kStatusDone : 0u) |
             (error_ ? kStatusError : 0u);
    case kRegCols: return cols_;
    case kRegPorts: return static_cast<std::uint32_t>(cfg_.gemm.mvm.ports);
    case kRegCycles: return last_op_cycles_;
    case kRegErr: return err_cause_;
    case kRegAbftDetected:
      return static_cast<std::uint32_t>(gemm_.abft_counters().detected);
    case kRegAbftCorrected:
      return static_cast<std::uint32_t>(gemm_.abft_counters().corrected);
    case kRegCrcW: return crc_w_expect_;
    case kRegCrcX: return crc_x_expect_;
    case kRegWdog:
      return watchdog_cycles_ > 0xFFFFFFFFull
                 ? 0xFFFFFFFFu
                 : static_cast<std::uint32_t>(watchdog_cycles_);
    default: return 0;
  }
}

void PhotonicAccelerator::write(std::uint32_t offset, std::uint32_t value,
                                unsigned size) {
  if (offset >= kSpmYBase) {
    if (spm_ok(spm_y_, offset - kSpmYBase, size))
      spm_y_.write(offset - kSpmYBase, value, size);
    return;
  }
  if (offset >= kSpmXBase) {
    if (spm_ok(spm_x_, offset - kSpmXBase, size))
      spm_x_.write(offset - kSpmXBase, value, size);
    return;
  }
  if (offset >= kSpmWBase) {
    if (spm_ok(spm_w_, offset - kSpmWBase, size))
      spm_w_.write(offset - kSpmWBase, value, size);
    return;
  }
  switch (offset) {
    case kRegCtrl:
      ctrl_ = value;
      if ((value & (kCtrlStart | kCtrlLoadWeights)) && !busy())
        start_operation(value);
      break;
    case kRegStatus:
      if (value & kStatusDone) {
        done_ = false;
        irq_ = false;
      }
      if (value & kStatusError) {
        error_ = false;
        err_cause_ = 0;
        irq_ = false;
      }
      break;
    case kRegCols:
      if (value >= 1 && value <= cfg_.max_cols) cols_ = value;
      break;
    case kRegCrcW: crc_w_expect_ = value; break;
    case kRegCrcX: crc_x_expect_ = value; break;
    case kRegWdog: watchdog_cycles_ = value; break;
    default: break;
  }
}

namespace {
/// Q3.12 element load: straight off the raw span while no stuck-at
/// faults are armed (identical little-endian value to read(off, 2)),
/// through the fault-masking read() otherwise.
std::int16_t spm_fixed_at(Memory& spm, const BusDevice::DirectSpan& span,
                          std::size_t elem) {
  if (span.data != nullptr)
    return static_cast<std::int16_t>(load_le(span.data + 2 * elem, 2));
  return static_cast<std::int16_t>(
      spm.read(static_cast<std::uint32_t>(2 * elem), 2));
}
}  // namespace

void PhotonicAccelerator::start_operation(std::uint32_t ctrl) {
  pending_op_ = ctrl;
  const std::size_t n = cfg_.gemm.mvm.ports;
  double op_seconds = 0.0;
  std::uint64_t extra_cycles = 0;
  // A CRC mismatch aborts the remainder of this operation (a combined
  // LOAD+START must not compute on unprogrammed weights); the latch from
  // a *previous* operation does not block new ones.
  bool aborted = false;

  if (ctrl & kCtrlLoadWeights) {
    CMat w(n, n);
    const BusDevice::DirectSpan ws = spm_w_.direct_span();
    std::uint32_t crc = kCrc32Init;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        const std::int16_t fixed = spm_fixed_at(spm_w_, ws, r * n + c);
        crc = crc32_le16(crc, static_cast<std::uint16_t>(fixed));
        w(r, c) = cplx{from_fixed(fixed), 0.0};
      }
    if ((ctrl & kCtrlCrcW) && (crc ^ kCrc32FinalXor) != crc_w_expect_) {
      latch_error(kErrCrcW);
      aborted = true;
    } else {
      gemm_.set_weights(w);
      op_seconds += gemm_.engine().program_time_s();
    }
  }

  if ((ctrl & kCtrlStart) && !aborted) {
    const std::size_t m = cols_;
    scratch_x_.resize(n, m);
    const BusDevice::DirectSpan xs = spm_x_.direct_span();
    std::uint32_t crc = kCrc32Init;
    for (std::size_t c = 0; c < m; ++c)
      for (std::size_t r = 0; r < n; ++r) {
        const std::int16_t fixed = spm_fixed_at(spm_x_, xs, c * n + r);
        crc = crc32_le16(crc, static_cast<std::uint16_t>(fixed));
        scratch_x_(r, c) = cplx{from_fixed(fixed), 0.0};
      }
    if ((ctrl & kCtrlCrcX) && (crc ^ kCrc32FinalXor) != crc_x_expect_) {
      latch_error(kErrCrcX);
    } else {
      if (cfg_.deterministic) {
        gemm_.multiply_noiseless(scratch_x_, scratch_y_);
      } else {
        scratch_y_ = gemm_.multiply(scratch_x_);
      }
      if (cfg_.gemm.abft.enabled) {
        if (gemm_.last_abft().counts.uncorrectable > 0) latch_error(kErrAbft);
        // Pipelined checksum verifiers retire eight columns per cycle.
        extra_cycles += (m + 7) / 8;
      }
      // Direct span writeback unless a master caches state derived from
      // this SPM (then write() must run so its observer fires).
      const BusDevice::DirectSpan ys =
          spm_y_.observed() ? BusDevice::DirectSpan{} : spm_y_.direct_span();
      for (std::size_t c = 0; c < m; ++c)
        for (std::size_t r = 0; r < n; ++r) {
          const auto fixed =
              static_cast<std::uint16_t>(to_fixed(scratch_y_(r, c).real()));
          if (ys.data != nullptr) {
            std::memcpy(ys.data + 2 * (c * n + r), &fixed, 2);
          } else {
            spm_y_.write(static_cast<std::uint32_t>(2 * (c * n + r)), fixed,
                         2);
          }
        }

      const auto k = static_cast<std::size_t>(
          std::max(1, cfg_.gemm.wdm_channels));
      const auto groups = static_cast<double>((m + k - 1) / k);
      op_seconds += groups * gemm_.engine().symbol_time_s();
    }
  }

  const double cycles = std::ceil(op_seconds * cfg_.clock_hz);
  busy_cycles_ = static_cast<std::uint64_t>(cycles) + cfg_.handshake_cycles +
                 extra_cycles;
  total_busy_cycles_ += busy_cycles_;
  last_op_cycles_ = static_cast<std::uint32_t>(busy_cycles_);
}

void PhotonicAccelerator::finish_operation() {
  done_ = true;
  watchdog_cycles_ = 0;  // deadline met: the operation retired
  if (pending_op_ & kCtrlIrqEn) irq_ = true;
}

void PhotonicAccelerator::watchdog_fire() {
  latch_error(kErrWatchdog);
  irq_ = true;
}

void PhotonicAccelerator::tick() {
  if (busy_cycles_ > 0 && --busy_cycles_ == 0) finish_operation();
  if (watchdog_cycles_ > 0 && --watchdog_cycles_ == 0) watchdog_fire();
}

void PhotonicAccelerator::skip_cycles(std::uint64_t n) {
  if (n == 0) return;
  if (busy_cycles_ > 0) {
    busy_cycles_ -= n < busy_cycles_ ? n : busy_cycles_;
    if (busy_cycles_ == 0) finish_operation();  // also disarms the watchdog
  }
  if (watchdog_cycles_ > 0) {
    watchdog_cycles_ -= n < watchdog_cycles_ ? n : watchdog_cycles_;
    if (watchdog_cycles_ == 0) watchdog_fire();
  }
}

void PhotonicAccelerator::inject_phase_fault(std::size_t phase_index,
                                             double delta_rad) {
  gemm_.engine().perturb_phase(phase_index, delta_rad);
}

PhotonicAccelerator::Snapshot PhotonicAccelerator::snapshot() const {
  Snapshot s;
  s.gemm = gemm_.snapshot();
  s.spm_w = spm_w_.snapshot();
  s.spm_x = spm_x_.snapshot();
  s.spm_y = spm_y_.snapshot();
  s.ctrl = ctrl_;
  s.cols = cols_;
  s.done = done_;
  s.irq = irq_;
  s.busy_cycles = busy_cycles_;
  s.total_busy_cycles = total_busy_cycles_;
  s.last_op_cycles = last_op_cycles_;
  s.pending_op = pending_op_;
  s.error = error_;
  s.err_cause = err_cause_;
  s.crc_w_expect = crc_w_expect_;
  s.crc_x_expect = crc_x_expect_;
  s.watchdog_cycles = watchdog_cycles_;
  return s;
}

void PhotonicAccelerator::restore(const Snapshot& s) {
  gemm_.restore(s.gemm);
  spm_w_.restore(s.spm_w);
  spm_x_.restore(s.spm_x);
  spm_y_.restore(s.spm_y);
  ctrl_ = s.ctrl;
  cols_ = s.cols;
  done_ = s.done;
  irq_ = s.irq;
  busy_cycles_ = s.busy_cycles;
  total_busy_cycles_ = s.total_busy_cycles;
  last_op_cycles_ = s.last_op_cycles;
  pending_op_ = s.pending_op;
  error_ = s.error;
  err_cause_ = s.err_cause;
  crc_w_expect_ = s.crc_w_expect;
  crc_x_expect_ = s.crc_x_expect;
  watchdog_cycles_ = s.watchdog_cycles;
}

}  // namespace aspen::sys
