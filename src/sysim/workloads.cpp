#include "sysim/workloads.hpp"

#include <stdexcept>

#include "sysim/crc32.hpp"

namespace aspen::sys {

using namespace rv;

namespace {

/// Emit `ecall` exit with code 0.
void emit_exit(Assembler& as) {
  as.li(a7, 93);
  as.li(a0, 0);
  as.ecall();
}

/// Word-copy: copies `bytes` from the address in `src_reg` to the
/// address in `dst_reg` (both preserved), clobbering t0-t3. Pointer
/// cursors with a 4x-unrolled body (plus a straight-line word tail)
/// keep the loop overhead per word low, as hand-written bare-metal
/// copies do.
void emit_copy_words(Assembler& as, int src_reg, int dst_reg,
                     std::uint32_t bytes, const std::string& tag) {
  if (bytes % 4 != 0)
    throw std::invalid_argument("emit_copy_words: bytes % 4 != 0");
  constexpr std::uint32_t kUnroll = 32;  // bytes per unrolled iteration
  as.addi(t0, src_reg, 0);
  as.addi(t1, dst_reg, 0);
  if (bytes >= kUnroll) {
    as.li(t2, bytes - bytes % kUnroll);
    as.add(t2, t2, t0);  // end of the unrolled region
    as.label(tag);
    for (std::uint32_t off = 0; off < kUnroll; off += 4) {
      as.lw(t3, t0, static_cast<std::int32_t>(off));
      as.sw(t3, t1, static_cast<std::int32_t>(off));
    }
    as.addi(t0, t0, static_cast<std::int32_t>(kUnroll));
    as.addi(t1, t1, static_cast<std::int32_t>(kUnroll));
    as.bltu(t0, t2, tag);
  }
  for (std::uint32_t off = 0; off < bytes % kUnroll; off += 4) {
    as.lw(t3, t0, static_cast<std::int32_t>(off));
    as.sw(t3, t1, static_cast<std::int32_t>(off));
  }
}

/// Wait for STATUS bit1 (DONE) on the device whose base is in `base_reg`,
/// at STATUS offset `status_off`; optionally sleeps with WFI between
/// polls. Clears DONE/IRQ afterwards. Clobbers t0.
void emit_wait_done(Assembler& as, int base_reg, std::int32_t status_off,
                    bool use_wfi, const std::string& tag) {
  as.label(tag);
  as.lw(t0, base_reg, status_off);
  as.andi(t0, t0, 2);
  as.bne(t0, zero, tag + "_done");
  if (use_wfi) as.wfi();
  as.j(tag);
  as.label(tag + "_done");
  as.li(t0, 2);
  as.sw(t0, base_reg, status_off);
}

/// Fault-aware accelerator wait: sleeps until DONE *or* ERROR is up (the
/// watchdog guarantees the line eventually rises even if the operation
/// wedges), then clears DONE/IRQ and leaves the ERROR latch for the
/// caller to inspect. Clobbers t0.
void emit_wait_done_or_error(Assembler& as, int base_reg,
                             const std::string& tag) {
  as.label(tag);
  as.lw(t0, base_reg, PhotonicAccelerator::kRegStatus);
  as.andi(t0, t0,
          PhotonicAccelerator::kStatusDone | PhotonicAccelerator::kStatusError);
  as.bne(t0, zero, tag + "_done");
  as.wfi();
  as.j(tag);
  as.label(tag + "_done");
  as.li(t0, PhotonicAccelerator::kStatusDone);
  as.sw(t0, base_reg, PhotonicAccelerator::kRegStatus);
}

/// Scalar triple-loop GEMM body reading A/X from DRAM and writing Y —
/// shared between the standalone software baseline and the checked
/// offload's fallback path. Re-establishes a0-a2 itself; clobbers
/// a0-a2, t0-t5 and s0-s3 (labels are `tag`-prefixed so the body can be
/// emitted alongside other code).
void emit_software_gemm(Assembler& as, const GemmWorkload& wl,
                        const SystemConfig& sys, const std::string& tag) {
  const auto n = static_cast<std::uint32_t>(wl.n);
  const auto m = static_cast<std::uint32_t>(wl.m);

  as.li(a0, sys.dram_base + wl.a_offset);
  as.li(a1, sys.dram_base + wl.x_offset);
  as.li(a2, sys.dram_base + wl.y_offset);
  as.li(t4, n);
  as.li(t5, m);

  as.li(s0, 0);  // r
  as.label(tag + "r_loop");
  as.li(s1, 0);  // c
  as.label(tag + "c_loop");
  as.li(s3, 0);           // acc
  as.li(s2, 0);           // k
  as.mul(t0, s0, t4);     // r * n
  as.mul(t1, s1, t4);     // c * n
  as.label(tag + "k_loop");
  as.add(t2, t0, s2);
  as.slli(t2, t2, 1);
  as.add(t2, t2, a0);
  as.lh(t2, t2, 0);       // A[r][k]
  as.add(t3, t1, s2);
  as.slli(t3, t3, 1);
  as.add(t3, t3, a1);
  as.lh(t3, t3, 0);       // X[k][c]
  as.mul(t2, t2, t3);
  as.add(s3, s3, t2);
  as.addi(s2, s2, 1);
  as.blt(s2, t4, tag + "k_loop");
  as.srai(s3, s3, 12);    // Q3.12 renormalization
  as.add(t3, t1, s0);     // c*n + r
  as.slli(t3, t3, 1);
  as.add(t3, t3, a2);
  as.sh(s3, t3, 0);
  as.addi(s1, s1, 1);
  as.blt(s1, t5, tag + "c_loop");
  as.addi(s0, s0, 1);
  as.blt(s0, t4, tag + "r_loop");
}

}  // namespace

std::vector<std::uint32_t> build_gemm_software(const GemmWorkload& wl,
                                               const SystemConfig& sys) {
  Assembler as(sys.dram_base);
  emit_software_gemm(as, wl, sys, "");
  emit_exit(as);
  return as.assemble();
}

std::vector<std::uint32_t> build_gemm_offload(const GemmWorkload& wl,
                                              const SystemConfig& sys,
                                              OffloadPath path,
                                              std::size_t pe_index) {
  Assembler as(sys.dram_base);
  const auto n = static_cast<std::uint32_t>(wl.n);
  const auto m = static_cast<std::uint32_t>(wl.m);
  const std::uint32_t pe_base =
      sys.accel_base + static_cast<std::uint32_t>(pe_index) * sys.accel_stride;
  const std::uint32_t bytes_w = n * n * 2;
  const std::uint32_t bytes_xy = n * m * 2;
  const bool irq = path != OffloadPath::kMmrPolling;

  as.li(s0, pe_base);
  as.li(a0, sys.dram_base + wl.a_offset);
  as.li(a1, sys.dram_base + wl.x_offset);
  as.li(a2, sys.dram_base + wl.y_offset);
  as.li(s4, pe_base + PhotonicAccelerator::kSpmWBase);
  as.li(s5, pe_base + PhotonicAccelerator::kSpmXBase);
  as.li(s6, pe_base + PhotonicAccelerator::kSpmYBase);

  // COLS = m.
  as.li(t0, m);
  as.sw(t0, s0, PhotonicAccelerator::kRegCols);

  // Two-phase protocol: load the (reused) weights first, then stream the
  // inputs and start the compute — the deployment pattern non-volatile
  // weights enable.
  const std::uint32_t irq_bit =
      irq ? PhotonicAccelerator::kCtrlIrqEn : 0u;
  if (path == OffloadPath::kDmaInterrupt) {
    as.li(s7, sys.dma_base);
    const auto dma_move = [&](int src, int dst, std::uint32_t bytes,
                              const std::string& tag) {
      as.sw(src, s7, DmaEngine::kRegSrc);
      as.sw(dst, s7, DmaEngine::kRegDst);
      as.li(t0, bytes);
      as.sw(t0, s7, DmaEngine::kRegLen);
      as.li(t0, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
      as.sw(t0, s7, DmaEngine::kRegCtrl);
      emit_wait_done(as, s7, DmaEngine::kRegStatus, /*use_wfi=*/true, tag);
    };
    dma_move(a0, s4, bytes_w, "dma_a");
    as.li(t0, PhotonicAccelerator::kCtrlLoadWeights | irq_bit);
    as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
    emit_wait_done(as, s0, PhotonicAccelerator::kRegStatus, irq, "load_wait");
    dma_move(a1, s5, bytes_xy, "dma_x");
  } else {
    emit_copy_words(as, a0, s4, bytes_w, "copy_a");
    as.li(t0, PhotonicAccelerator::kCtrlLoadWeights | irq_bit);
    as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
    emit_wait_done(as, s0, PhotonicAccelerator::kRegStatus, irq, "load_wait");
    emit_copy_words(as, a1, s5, bytes_xy, "copy_x");
  }

  as.li(t0, PhotonicAccelerator::kCtrlStart | irq_bit);
  as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
  emit_wait_done(as, s0, PhotonicAccelerator::kRegStatus, irq, "accel_wait");

  if (path == OffloadPath::kDmaInterrupt) {
    as.sw(s6, s7, DmaEngine::kRegSrc);
    as.sw(a2, s7, DmaEngine::kRegDst);
    as.li(t0, bytes_xy);
    as.sw(t0, s7, DmaEngine::kRegLen);
    as.li(t0, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
    as.sw(t0, s7, DmaEngine::kRegCtrl);
    emit_wait_done(as, s7, DmaEngine::kRegStatus, /*use_wfi=*/true, "dma_y");
  } else {
    emit_copy_words(as, s6, a2, bytes_xy, "copy_y");
  }
  emit_exit(as);
  return as.assemble();
}

std::vector<std::uint32_t> build_gemm_offload_checked(const GemmWorkload& wl,
                                                      const SystemConfig& sys,
                                                      std::size_t pe_index) {
  Assembler as(sys.dram_base);
  const auto n = static_cast<std::uint32_t>(wl.n);
  const auto m = static_cast<std::uint32_t>(wl.m);
  const std::uint32_t pe_base =
      sys.accel_base + static_cast<std::uint32_t>(pe_index) * sys.accel_stride;
  const std::uint32_t bytes_w = n * n * 2;
  const std::uint32_t bytes_xy = n * m * 2;

  as.li(s0, pe_base);
  as.li(a0, sys.dram_base + wl.a_offset);
  as.li(a1, sys.dram_base + wl.x_offset);
  as.li(a2, sys.dram_base + wl.y_offset);
  as.li(s4, pe_base + PhotonicAccelerator::kSpmWBase);
  as.li(s5, pe_base + PhotonicAccelerator::kSpmXBase);
  as.li(s6, pe_base + PhotonicAccelerator::kSpmYBase);

  // Host-precomputed tile CRCs.
  as.li(t0, sys.dram_base + wl.crc_offset);
  as.lw(s2, t0, 0);  // expected CRC of the A tile
  as.lw(s3, t0, 4);  // expected CRC of the X tile

  as.li(t0, m);
  as.sw(t0, s0, PhotonicAccelerator::kRegCols);

  as.li(s7, 0);                // fell-back flag
  as.li(s8, 0);                // errors observed
  as.li(s9, wl.max_retries);   // retry budget

  // One full load+compute attempt; any latched ERROR funnels to "err".
  as.label("try");
  emit_copy_words(as, a0, s4, bytes_w, "copy_a");
  as.sw(s2, s0, PhotonicAccelerator::kRegCrcW);
  as.li(t0, wl.watchdog_cycles);
  as.sw(t0, s0, PhotonicAccelerator::kRegWdog);
  as.li(t0, PhotonicAccelerator::kCtrlLoadWeights |
                PhotonicAccelerator::kCtrlIrqEn |
                PhotonicAccelerator::kCtrlCrcW);
  as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
  emit_wait_done_or_error(as, s0, "ldw");
  as.sw(zero, s0, PhotonicAccelerator::kRegWdog);
  as.lw(t0, s0, PhotonicAccelerator::kRegStatus);
  as.andi(t0, t0, PhotonicAccelerator::kStatusError);
  as.bne(t0, zero, "err");

  emit_copy_words(as, a1, s5, bytes_xy, "copy_x");
  as.sw(s3, s0, PhotonicAccelerator::kRegCrcX);
  as.li(t0, wl.watchdog_cycles);
  as.sw(t0, s0, PhotonicAccelerator::kRegWdog);
  as.li(t0, PhotonicAccelerator::kCtrlStart |
                PhotonicAccelerator::kCtrlIrqEn |
                PhotonicAccelerator::kCtrlCrcX);
  as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
  emit_wait_done_or_error(as, s0, "go");
  as.sw(zero, s0, PhotonicAccelerator::kRegWdog);
  as.lw(t0, s0, PhotonicAccelerator::kRegStatus);
  as.andi(t0, t0, PhotonicAccelerator::kStatusError);
  as.bne(t0, zero, "err");

  emit_copy_words(as, s6, a2, bytes_xy, "copy_y");
  as.j("rec");

  // Detected error: quiesce the device, clear the latches, retry while
  // budget remains, then fall back to the exact software GEMM.
  as.label("err");
  as.addi(s8, s8, 1);
  // An aborted operation still runs out its busy window and raises DONE
  // at the end (the no-wedge handshake guarantee). The wait above exits
  // on ERROR *before* that DONE lands, so clearing ERROR alone would
  // leave a stale DONE behind — and the retry's next wait would fall
  // through mid-operation, reading back a stale SPM_Y. Drain BUSY first,
  // then clear DONE and ERROR together so the retry handshake starts
  // from a clean STATUS.
  as.label("err_drain");
  as.lw(t0, s0, PhotonicAccelerator::kRegStatus);
  as.andi(t0, t0, PhotonicAccelerator::kStatusBusy);
  as.bne(t0, zero, "err_drain");
  as.li(t0, PhotonicAccelerator::kStatusDone |
                PhotonicAccelerator::kStatusError);
  as.sw(t0, s0, PhotonicAccelerator::kRegStatus);
  as.bge(s9, s8, "try");
  as.li(s7, 1);
  emit_software_gemm(as, wl, sys, "fb_");
  as.li(s0, pe_base);  // the fallback body clobbered s0

  // Recovery record: {detected, corrected, retried, fell_back}.
  as.label("rec");
  as.li(t0, sys.dram_base + wl.rec_offset);
  as.sw(s8, t0, 0);
  as.lw(t1, s0, PhotonicAccelerator::kRegAbftCorrected);
  as.sw(t1, t0, 4);
  as.addi(t2, s8, 0);  // retried = min(errors, budget)
  as.bge(s9, t2, "rec_min");
  as.addi(t2, s9, 0);
  as.label("rec_min");
  as.sw(t2, t0, 8);
  as.sw(s7, t0, 12);
  emit_exit(as);
  return as.assemble();
}

std::vector<std::uint32_t> build_gemm_offload_stream(const GemmWorkload& wl,
                                                     const SystemConfig& sys,
                                                     OffloadPath path,
                                                     std::size_t batches,
                                                     std::size_t pe_index) {
  if (batches == 0)
    throw std::invalid_argument("build_gemm_offload_stream: zero batches");
  Assembler as(sys.dram_base);
  const auto n = static_cast<std::uint32_t>(wl.n);
  const auto m = static_cast<std::uint32_t>(wl.m);
  const std::uint32_t pe_base =
      sys.accel_base + static_cast<std::uint32_t>(pe_index) * sys.accel_stride;
  const std::uint32_t bytes_w = n * n * 2;
  const std::uint32_t chunk = n * m * 2;
  if (chunk >= 0x800)
    throw std::invalid_argument(
        "build_gemm_offload_stream: tile too large for addi cursor bump");
  const bool irq = path != OffloadPath::kMmrPolling;
  const std::uint32_t irq_bit = irq ? PhotonicAccelerator::kCtrlIrqEn : 0u;

  as.li(s0, pe_base);
  as.li(a0, sys.dram_base + wl.a_offset);
  as.li(a1, sys.dram_base + wl.x_offset);  // X tile cursor
  as.li(a2, sys.dram_base + wl.y_offset);  // Y tile cursor
  as.li(s4, pe_base + PhotonicAccelerator::kSpmWBase);
  as.li(s5, pe_base + PhotonicAccelerator::kSpmXBase);
  as.li(s6, pe_base + PhotonicAccelerator::kSpmYBase);
  as.li(t0, m);
  as.sw(t0, s0, PhotonicAccelerator::kRegCols);
  if (path == OffloadPath::kDmaInterrupt) as.li(s7, sys.dma_base);

  const auto dma_move = [&](int src, int dst, std::uint32_t bytes,
                            const std::string& tag) {
    as.sw(src, s7, DmaEngine::kRegSrc);
    as.sw(dst, s7, DmaEngine::kRegDst);
    as.li(t0, bytes);
    as.sw(t0, s7, DmaEngine::kRegLen);
    as.li(t0, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
    as.sw(t0, s7, DmaEngine::kRegCtrl);
    emit_wait_done(as, s7, DmaEngine::kRegStatus, /*use_wfi=*/true, tag);
  };

  // Program the weights exactly once.
  if (path == OffloadPath::kDmaInterrupt)
    dma_move(a0, s4, bytes_w, "dma_a");
  else
    emit_copy_words(as, a0, s4, bytes_w, "copy_a");
  as.li(t0, PhotonicAccelerator::kCtrlLoadWeights | irq_bit);
  as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
  emit_wait_done(as, s0, PhotonicAccelerator::kRegStatus, irq, "load_wait");

  // Stream the input tiles (the copy/wait bodies are emitted once; the
  // batch loop runs them with advancing cursors).
  as.li(s8, 0);
  as.li(s9, static_cast<std::uint32_t>(batches));
  as.label("batch");
  if (path == OffloadPath::kDmaInterrupt)
    dma_move(a1, s5, chunk, "dma_x");
  else
    emit_copy_words(as, a1, s5, chunk, "copy_x");
  as.li(t0, PhotonicAccelerator::kCtrlStart | irq_bit);
  as.sw(t0, s0, PhotonicAccelerator::kRegCtrl);
  emit_wait_done(as, s0, PhotonicAccelerator::kRegStatus, irq, "accel_wait");
  if (path == OffloadPath::kDmaInterrupt)
    dma_move(s6, a2, chunk, "dma_y");
  else
    emit_copy_words(as, s6, a2, chunk, "copy_y");
  as.addi(a1, a1, static_cast<std::int32_t>(chunk));
  as.addi(a2, a2, static_cast<std::int32_t>(chunk));
  as.addi(s8, s8, 1);
  as.blt(s8, s9, "batch");
  emit_exit(as);
  return as.assemble();
}

std::vector<std::uint32_t> build_gemm_multi_pe(const GemmWorkload& wl,
                                               const SystemConfig& sys) {
  const auto pes = static_cast<std::uint32_t>(sys.num_pes);
  if (wl.m % pes != 0)
    throw std::invalid_argument("build_gemm_multi_pe: m % num_pes != 0");
  const auto n = static_cast<std::uint32_t>(wl.n);
  const std::uint32_t cols_per_pe = static_cast<std::uint32_t>(wl.m) / pes;
  const std::uint32_t bytes_w = n * n * 2;
  const std::uint32_t chunk = n * cols_per_pe * 2;

  Assembler as(sys.dram_base);
  as.li(a0, sys.dram_base + wl.a_offset);
  as.li(a1, sys.dram_base + wl.x_offset);
  as.li(a2, sys.dram_base + wl.y_offset);
  as.li(s7, sys.dma_base);

  // Program one DMA descriptor and poll it to completion. Source and
  // destination are each either a register plus offset (reg >= 0) or an
  // absolute address (reg < 0, address in the offset argument).
  const auto dma_move_imm = [&](int src_reg, std::uint32_t src_add,
                                int dst_reg, std::uint32_t dst_imm,
                                std::uint32_t bytes, const std::string& tag) {
    if (src_reg >= 0) {
      as.addi(t1, src_reg, 0);
      if (src_add != 0) {
        as.li(t2, src_add);
        as.add(t1, t1, t2);
      }
    } else {
      as.li(t1, src_add);
    }
    as.sw(t1, s7, DmaEngine::kRegSrc);
    if (dst_reg >= 0) {
      as.addi(t1, dst_reg, 0);
      if (dst_imm != 0) {
        as.li(t2, dst_imm);
        as.add(t1, t1, t2);
      }
    } else {
      as.li(t1, dst_imm);
    }
    as.sw(t1, s7, DmaEngine::kRegDst);
    as.li(t1, bytes);
    as.sw(t1, s7, DmaEngine::kRegLen);
    as.li(t1, DmaEngine::kCtrlStart);
    as.sw(t1, s7, DmaEngine::kRegCtrl);
    emit_wait_done(as, s7, DmaEngine::kRegStatus, /*use_wfi=*/false, tag);
  };

  // Distribute weights + input chunks, start every PE.
  for (std::uint32_t p = 0; p < pes; ++p) {
    const std::uint32_t pe_base = sys.accel_base + p * sys.accel_stride;
    const std::string ps = std::to_string(p);
    dma_move_imm(a0, 0, -1, pe_base + PhotonicAccelerator::kSpmWBase,
                 bytes_w, "w" + ps);
    dma_move_imm(a1, p * chunk, -1,
                 pe_base + PhotonicAccelerator::kSpmXBase, chunk, "x" + ps);
    as.li(s1, pe_base);
    as.li(t0, cols_per_pe);
    as.sw(t0, s1, PhotonicAccelerator::kRegCols);
    as.li(t0, PhotonicAccelerator::kCtrlStart |
                  PhotonicAccelerator::kCtrlLoadWeights);
    as.sw(t0, s1, PhotonicAccelerator::kRegCtrl);
  }
  // Collect results as PEs finish (in order).
  for (std::uint32_t p = 0; p < pes; ++p) {
    const std::uint32_t pe_base = sys.accel_base + p * sys.accel_stride;
    const std::string ps = std::to_string(p);
    as.li(s1, pe_base);
    emit_wait_done(as, s1, PhotonicAccelerator::kRegStatus, false,
                   "pewait" + ps);
    dma_move_imm(-1, pe_base + PhotonicAccelerator::kSpmYBase, a2,
                 p * chunk, chunk, "y" + ps);
  }
  emit_exit(as);
  return as.assemble();
}

void stage_gemm_data(System& system, const GemmWorkload& wl,
                     const std::vector<std::int16_t>& a,
                     const std::vector<std::int16_t>& x) {
  if (a.size() != wl.n * wl.n || x.size() != wl.n * wl.m)
    throw std::invalid_argument("stage_gemm_data: size mismatch");
  system.write_dram(wl.a_offset, a.data(), a.size() * 2);
  system.write_dram(wl.x_offset, x.data(), x.size() * 2);
}

void stage_gemm_data_checked(System& system, const GemmWorkload& wl,
                             const std::vector<std::int16_t>& a,
                             const std::vector<std::int16_t>& x) {
  stage_gemm_data(system, wl, a, x);
  const std::uint32_t crc[2] = {crc32(a.data(), a.size() * 2),
                                crc32(x.data(), x.size() * 2)};
  system.write_dram(wl.crc_offset, crc, sizeof(crc));
}

GemmRecoveryRecord read_gemm_recovery(System& system,
                                      const GemmWorkload& wl) {
  GemmRecoveryRecord rec;
  system.read_dram(wl.rec_offset, &rec, sizeof(rec));
  return rec;
}

std::vector<std::int16_t> read_gemm_result(System& system,
                                           const GemmWorkload& wl) {
  std::vector<std::int16_t> y(wl.n * wl.m);
  system.read_dram(wl.y_offset, y.data(), y.size() * 2);
  return y;
}

std::vector<std::uint32_t> build_counter_probe(const SystemConfig& sys,
                                               std::uint32_t out_offset) {
  Assembler as(sys.dram_base);
  as.li(a0, sys.dram_base + out_offset);

  // mcycle: high, low, high — retry if the low word wrapped in between.
  as.label("cycle_retry");
  as.csrrs(t0, kCsrMcycleH, zero);
  as.csrrs(t1, kCsrMcycle, zero);
  as.csrrs(t2, kCsrMcycleH, zero);
  as.bne(t0, t2, "cycle_retry");
  as.sw(t1, a0, 0);
  as.sw(t0, a0, 4);

  as.label("instret_retry");
  as.csrrs(t0, kCsrMinstretH, zero);
  as.csrrs(t1, kCsrMinstret, zero);
  as.csrrs(t2, kCsrMinstretH, zero);
  as.bne(t0, t2, "instret_retry");
  as.sw(t1, a0, 8);
  as.sw(t0, a0, 12);

  emit_exit(as);
  return as.assemble();
}

std::vector<std::uint32_t> build_rvc_loop(const SystemConfig& sys,
                                          std::uint32_t src_offset,
                                          std::uint32_t dst_offset,
                                          std::uint32_t words) {
  if (words == 0) throw std::invalid_argument("build_rvc_loop: words == 0");
  Assembler as(sys.dram_base, /*compress=*/true);
  as.li(s0, sys.dram_base + src_offset);   // source cursor (prime reg)
  as.li(s1, sys.dram_base + dst_offset);   // destination cursor
  as.li(sp, sys.dram_base + dst_offset + words * 4);  // epilogue scratch
  as.li(a0, words);                        // loop counter
  as.li(a3, 0);                            // checksum accumulator

  // Hot loop: every instruction except the back-branch picks its C form
  // (branches stay full-width — fixups never relax).
  as.label("rvc_loop");
  as.lw(a2, s0, 0);       // c.lw
  as.mv(a4, a2);          // c.mv
  as.slli(a4, a4, 3);     // c.slli
  as.srli(a4, a4, 1);     // c.srli
  as.xor_(a4, a4, a2);    // c.xor
  as.andi(a2, a2, 0x1F);  // c.andi
  as.or_(a4, a4, a2);     // c.or
  as.add(a3, a3, a4);     // c.add
  as.sw(a4, s1, 0);       // c.sw
  as.addi(s0, s0, 4);     // c.addi
  as.addi(s1, s1, 4);     // c.addi
  as.addi(a0, a0, -1);    // c.addi
  as.bne(a0, zero, "rvc_loop");

  // Epilogue: stack-pointer forms, a compressed call return, and a
  // self-cancelling c.sub so the scratch slot lands deterministic.
  as.jal(ra, "rvc_fin");  // returns via c.jr ra
  as.sw(a3, sp, 0);       // c.swsp: checksum at dst + words*4
  as.lw(a5, sp, 0);       // c.lwsp
  as.sub(a5, a5, a3);     // c.sub -> 0
  as.sw(a5, sp, 4);       // c.swsp
  emit_exit(as);
  as.label("rvc_fin");
  as.addi(a3, a3, 1);     // c.addi: fold the call into the checksum
  as.ret();               // c.jr ra
  return as.assemble();
}

std::vector<std::int16_t> golden_gemm(const GemmWorkload& wl,
                                      const std::vector<std::int16_t>& a,
                                      const std::vector<std::int16_t>& x) {
  std::vector<std::int16_t> y(wl.n * wl.m, 0);
  for (std::size_t c = 0; c < wl.m; ++c) {
    for (std::size_t r = 0; r < wl.n; ++r) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < wl.n; ++k)
        acc += static_cast<std::int32_t>(a[r * wl.n + k]) *
               static_cast<std::int32_t>(x[c * wl.n + k]);
      y[c * wl.n + r] = static_cast<std::int16_t>(acc >> 12);
    }
  }
  return y;
}

}  // namespace aspen::sys
