#pragma once
/// \file memory.hpp
/// Byte-addressable memories: DRAM-like main memory and on-accelerator
/// scratchpads (SPMs — "these two types of memories occupy the largest
/// part of the area of many accelerators", paper Section 5). Supports the
/// permanent stuck-at fault hooks used by the reliability campaigns.
///
/// Fast path: while no stuck-at faults are armed the raw byte store is
/// exported through `direct_span()`, letting bus masters (the CPU's DRAM
/// fast path) bypass the virtual read/write calls. Every out-of-band
/// mutation — bus writes, host loads, bit flips, stuck-bit changes — is
/// reported to the registered BusWriteObserver so derived caches
/// (predecoded instructions) stay coherent.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sysim/bus.hpp"

namespace aspen::sys {

class Memory final : public BusDevice {
 public:
  Memory(std::string name, std::uint32_t size, unsigned latency_cycles);

  std::uint32_t read(std::uint32_t offset, unsigned size) override;
  void write(std::uint32_t offset, std::uint32_t value, unsigned size) override;
  [[nodiscard]] unsigned access_latency() const override { return latency_; }
  [[nodiscard]] std::string name() const override { return name_; }

  /// Raw store, exported only while reads are transform-free (no stuck
  /// bits): a revoked span forces masters back onto read(), which applies
  /// the fault masks.
  [[nodiscard]] DirectSpan direct_span() override {
    if (!stuck_.empty()) return {};
    return {bytes_.data(), size()};
  }
  void set_write_observer(BusWriteObserver* observer) override {
    observer_ = observer;
  }
  /// Bulk direct-span mutation (DMA bulk moves, a CPU master flushing
  /// its store watermark): marks the span dirty and forwards to the
  /// observer.
  void direct_span_written(std::uint32_t offset,
                           std::uint32_t bytes) override {
    mark_dirty(offset, bytes);
    notify(offset, bytes);
  }
  /// Pure storage: writes never schedule device activity.
  [[nodiscard]] bool write_is_activating(std::uint32_t) const override {
    return false;
  }
  /// True while a master caches state derived from this memory; direct
  /// span writers must then go through write() so the observer fires.
  [[nodiscard]] bool observed() const { return observer_ != nullptr; }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

  /// Bulk host-side access (program loading, result checking) — no
  /// latency modelling.
  void load(std::uint32_t offset, const void* src, std::size_t n);
  void read_block(std::uint32_t offset, void* dst, std::size_t n) const;
  void fill(std::uint8_t value);

  // -- Fault hooks --------------------------------------------------------
  /// Transient: flip one bit now.
  void flip_bit(std::uint32_t offset, unsigned bit);
  /// Permanent: force one bit to `value` on every read from now on.
  void set_stuck_bit(std::uint32_t offset, unsigned bit, bool value);
  void clear_faults();

  // -- Snapshot / restore -------------------------------------------------
  struct Stuck {
    std::uint32_t offset;
    std::uint8_t bit;
    bool value;
  };
  /// Full captured state: the byte image plus the armed stuck-at faults.
  struct Snapshot {
    std::vector<std::uint8_t> bytes;
    std::vector<Stuck> stuck;
  };
  [[nodiscard]] Snapshot snapshot() const { return {bytes_, stuck_}; }
  /// Restore a snapshot taken from an identically sized memory (throws
  /// std::invalid_argument otherwise). One memcpy plus a full-span
  /// observer notification so masters drop derived caches.
  void restore(const Snapshot& s);
  /// Bitwise-equivalent restore that copies (and notifies the observer
  /// about) only the chunks that actually differ from the snapshot image.
  /// Campaign trials restoring a checkpoint rung re-run mostly-identical
  /// prefixes, so the bulk of the image — program text above all — is
  /// already in place; skipping it keeps masters' derived caches
  /// (predecoded instructions) warm for the untouched spans. Falls back
  /// to the full restore when the armed stuck-at fault set differs (the
  /// read transform changed, so every span is stale).
  ///
  /// The scan is bounded to the union of the internal dirty watermark
  /// (every mutation since the last restore — bus writes, bulk moves,
  /// host loads, bit flips; masters writing through direct spans report
  /// via direct_span_written) and the caller-supplied stale span
  /// [stale_lo, stale_lo+stale_len): the bytes where the image last
  /// restored into this memory may differ from `s`. Callers that do not
  /// track which image the memory holds must pass the full span.
  void restore_diff(const Snapshot& s, std::uint32_t stale_lo,
                    std::uint32_t stale_len);
  /// restore_diff with the whole image treated as stale (sound against
  /// any prior contents; still skips copying/notifying matching chunks).
  void restore_diff(const Snapshot& s) { restore_diff(s, 0, size()); }

 private:
  [[nodiscard]] std::uint8_t read_byte(std::uint32_t offset) const;
  void notify(std::uint32_t offset, std::uint32_t bytes) {
    if (observer_ != nullptr) observer_->bus_memory_written(this, offset, bytes);
  }
  /// Widen the dirty watermark (bytes touched since the last restore).
  void mark_dirty(std::uint32_t offset, std::uint32_t bytes) {
    if (bytes == 0) return;
    dirty_lo_ = std::min(dirty_lo_, offset);
    dirty_hi_ = std::max(dirty_hi_, offset + bytes);
  }

  std::string name_;
  std::vector<std::uint8_t> bytes_;
  unsigned latency_;
  BusWriteObserver* observer_ = nullptr;
  std::vector<Stuck> stuck_;
  /// Dirty watermark [dirty_lo_, dirty_hi_): bytes mutated since the
  /// last restore (lo > hi = clean). Lets restore_diff scan only what
  /// this execution actually touched instead of the whole image.
  std::uint32_t dirty_lo_ = 0xFFFFFFFFu;
  std::uint32_t dirty_hi_ = 0;
};

}  // namespace aspen::sys
