#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/final-xor
/// 0xFFFFFFFF), shared by the accelerator's SPM tile check, the host-side
/// workload staging that precomputes expected values, and the tests. The
/// bitwise form is table-free; tiles are a few KiB, so throughput is not
/// a concern.

#include <cstddef>
#include <cstdint>

namespace aspen::sys {

inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
inline constexpr std::uint32_t kCrc32FinalXor = 0xFFFFFFFFu;

/// Fold one byte into the (un-finalized) CRC register.
inline std::uint32_t crc32_byte(std::uint32_t crc, std::uint8_t b) {
  crc ^= b;
  for (int k = 0; k < 8; ++k)
    crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  return crc;
}

/// Fold one little-endian 16-bit value (the Q3.12 SPM element order).
inline std::uint32_t crc32_le16(std::uint32_t crc, std::uint16_t v) {
  crc = crc32_byte(crc, static_cast<std::uint8_t>(v & 0xFFu));
  return crc32_byte(crc, static_cast<std::uint8_t>(v >> 8));
}

/// One-shot CRC over a byte buffer.
inline std::uint32_t crc32(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = kCrc32Init;
  while (n-- > 0) crc = crc32_byte(crc, *p++);
  return crc ^ kCrc32FinalXor;
}

}  // namespace aspen::sys
