#include "sysim/campaign_io.hpp"

#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace aspen::sys {
namespace {

constexpr std::uint32_t kMagic = 0x4E535041u;  // "APSN" little-endian

// ------------------------------------------------------------- primitives

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    u64(bits);
  }
  void bytes(const void* p, std::size_t n) {
    if (n == 0) return;  // empty vectors hand over data() == nullptr
    const auto* s = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), s, s + n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size), pos_(0) {}

  std::uint8_t u8() {
    need(1);
    return p_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  bool b() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
  void bytes(void* dst, std::size_t n) {
    if (n == 0) return;  // empty vectors hand over data() == nullptr
    need(n);
    std::memcpy(dst, p_ + pos_, n);
    pos_ += n;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(p_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Element count for a vector whose entries occupy >= `elem_bytes`
  /// each — bounds the allocation by the remaining payload so a corrupt
  /// length cannot demand terabytes.
  std::size_t count(std::size_t elem_bytes) {
    const std::size_t at = pos_;
    const std::uint64_t n = u64();
    if (elem_bytes > 0 && n > (n_ - pos_) / elem_bytes)
      throw fail("element count " + std::to_string(n) + " (>= " +
                     std::to_string(elem_bytes) +
                     " bytes each) exceeds the remaining payload (" +
                     std::to_string(n_ - pos_) + " bytes)",
                 at);
    return static_cast<std::size_t>(n);
  }
  /// Validate that `n_elems` entries of `elem_bytes` each fit in the
  /// remaining payload (for counts read as separate dimensions, e.g.
  /// matrix rows x cols).
  void need_elems(std::uint64_t n_elems, std::size_t elem_bytes) {
    if (elem_bytes > 0 && n_elems > (n_ - pos_) / elem_bytes)
      throw fail("element count " + std::to_string(n_elems) + " (>= " +
                     std::to_string(elem_bytes) +
                     " bytes each) exceeds the remaining payload (" +
                     std::to_string(n_ - pos_) + " bytes)",
                 pos_);
  }
  /// Read + validate a one-byte enum whose valid values are [0, max].
  std::uint8_t u8_enum(std::uint8_t max, const char* what) {
    const std::size_t at = pos_;
    const std::uint8_t v = u8();
    if (v > max)
      throw fail("invalid " + std::string(what) + " " + std::to_string(v) +
                     " (valid: 0.." + std::to_string(max) + ")",
                 at);
    return v;
  }
  void expect_end() const {
    if (pos_ != n_)
      throw fail("payload complete at byte offset " + std::to_string(pos_) +
                     " but " + std::to_string(n_ - pos_) +
                     " trailing bytes remain",
                 pos_);
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  /// Build a diagnostic tagged with the failure offset and payload size —
  /// the error-location convention every campaign_io message follows.
  [[nodiscard]] std::runtime_error fail(const std::string& what,
                                        std::size_t at) const {
    return std::runtime_error("campaign_io: " + what + " at byte offset " +
                              std::to_string(at) + " of " +
                              std::to_string(n_) + "-byte payload");
  }

 private:
  void need(std::uint64_t n) {
    if (n > n_ - pos_)
      throw fail("truncated payload: need " + std::to_string(n) +
                     " more bytes, only " + std::to_string(n_ - pos_) +
                     " remain",
                 pos_);
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_;
};

void put_header(Writer& w, PayloadKind kind) {
  w.u32(kMagic);
  w.u16(kCampaignWireVersion);
  w.u16(static_cast<std::uint16_t>(kind));
}

PayloadKind read_header(Reader& r) {
  const std::uint32_t magic = r.u32();
  if (magic != kMagic)
    throw r.fail("bad magic (not a campaign payload)", 0);
  const std::uint16_t version = r.u16();
  if (version != kCampaignWireVersion)
    throw r.fail("wire version " + std::to_string(version) + ", expected " +
                     std::to_string(kCampaignWireVersion),
                 4);
  const std::uint16_t got = r.u16();
  if (got < 1 || got > static_cast<std::uint16_t>(PayloadKind::kJournal))
    throw r.fail("unknown payload kind " + std::to_string(got), 6);
  return static_cast<PayloadKind>(got);
}

void check_header(Reader& r, PayloadKind kind) {
  const PayloadKind got = read_header(r);
  if (got != kind)
    throw r.fail("payload kind " +
                     std::to_string(static_cast<std::uint16_t>(got)) +
                     ", expected " +
                     std::to_string(static_cast<std::uint16_t>(kind)),
                 6);
}

// ------------------------------------------------------- composite types

void put_f64_vec(Writer& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double d : v) w.f64(d);
}
std::vector<double> get_f64_vec(Reader& r) {
  const std::size_t n = r.count(8);
  std::vector<double> v(n);
  for (auto& d : v) d = r.f64();
  return v;
}

void put_cmat(Writer& w, const lina::CMat& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (const lina::cplx& z : m.raw()) {
    w.f64(z.real());
    w.f64(z.imag());
  }
}
lina::CMat get_cmat(Reader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  if (rows != 0 && cols > std::numeric_limits<std::uint64_t>::max() / rows)
    throw std::runtime_error("campaign_io: matrix dimensions overflow");
  r.need_elems(rows * cols, 16);
  lina::CMat m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (lina::cplx& z : m.raw()) {
    const double re = r.f64();
    const double im = r.f64();
    z = {re, im};
  }
  return m;
}

void put_rng(Writer& w, const lina::Rng& rng) {
  // The standard stream representation of mt19937_64 round-trips the
  // engine state exactly (decimal words, space-separated).
  lina::Rng copy = rng;
  std::ostringstream os;
  os << copy.engine();
  w.str(os.str());
}
lina::Rng get_rng(Reader& r) {
  lina::Rng rng;
  std::istringstream is(r.str());
  is >> rng.engine();
  if (is.fail()) throw std::runtime_error("campaign_io: bad rng state");
  return rng;
}

void put_memory(Writer& w, const Memory::Snapshot& s) {
  w.u64(s.bytes.size());
  w.bytes(s.bytes.data(), s.bytes.size());
  w.u64(s.stuck.size());
  for (const Memory::Stuck& st : s.stuck) {
    w.u32(st.offset);
    w.u8(st.bit);
    w.b(st.value);
  }
}
Memory::Snapshot get_memory(Reader& r) {
  Memory::Snapshot s;
  s.bytes.resize(r.count(1));
  r.bytes(s.bytes.data(), s.bytes.size());
  s.stuck.resize(r.count(6));
  for (Memory::Stuck& st : s.stuck) {
    st.offset = r.u32();
    st.bit = r.u8();
    st.value = r.b();
  }
  return s;
}

void put_dma(Writer& w, const DmaEngine::Snapshot& s) {
  w.u32(s.src);
  w.u32(s.dst);
  w.u32(s.len);
  w.u32(s.ctrl);
  w.u32(s.cursor);
  w.b(s.busy);
  w.b(s.done);
  w.b(s.irq);
  w.b(s.error);
}
DmaEngine::Snapshot get_dma(Reader& r) {
  DmaEngine::Snapshot s;
  s.src = r.u32();
  s.dst = r.u32();
  s.len = r.u32();
  s.ctrl = r.u32();
  s.cursor = r.u32();
  s.busy = r.b();
  s.done = r.b();
  s.irq = r.b();
  s.error = r.b();
  return s;
}

void put_mesh(Writer& w, const mesh::PhysicalMesh::Snapshot& s) {
  put_f64_vec(w, s.phases);
  w.f64(s.drift_time_s);
  w.f64(s.detuning_nm);
}
mesh::PhysicalMesh::Snapshot get_mesh(Reader& r) {
  mesh::PhysicalMesh::Snapshot s;
  s.phases = get_f64_vec(r);
  s.drift_time_s = r.f64();
  s.detuning_nm = r.f64();
  return s;
}

void put_engine(Writer& w, const core::MvmEngine::Snapshot& s) {
  put_mesh(w, s.mesh_u);
  put_mesh(w, s.mesh_v);
  put_cmat(w, s.weight);
  put_cmat(w, s.svd.u);
  put_f64_vec(w, s.svd.sigma);
  put_cmat(w, s.svd.v);
  put_f64_vec(w, s.attenuation);
  w.f64(s.sigma_max);
  put_cmat(w, s.t_phys);
  w.f64(s.gain.real());
  w.f64(s.gain.imag());
  w.f64(s.fidelity);
  w.f64(s.pcm_drift_time_s);
  put_rng(w, s.rng);
  w.u64(s.counters.mvm_ops);
  w.u64(s.counters.program_ops);
  w.f64(s.counters.busy_time_s);
  w.f64(s.counters.weight_write_energy_j);
  w.b(s.weights_clean);
}
core::MvmEngine::Snapshot get_engine(Reader& r) {
  core::MvmEngine::Snapshot s;
  s.mesh_u = get_mesh(r);
  s.mesh_v = get_mesh(r);
  s.weight = get_cmat(r);
  s.svd.u = get_cmat(r);
  s.svd.sigma = get_f64_vec(r);
  s.svd.v = get_cmat(r);
  s.attenuation = get_f64_vec(r);
  s.sigma_max = r.f64();
  s.t_phys = get_cmat(r);
  const double gr = r.f64();
  const double gi = r.f64();
  s.gain = {gr, gi};
  s.fidelity = r.f64();
  s.pcm_drift_time_s = r.f64();
  s.rng = get_rng(r);
  s.counters.mvm_ops = r.u64();
  s.counters.program_ops = r.u64();
  s.counters.busy_time_s = r.f64();
  s.counters.weight_write_energy_j = r.f64();
  s.weights_clean = r.b();
  return s;
}

void put_gemm(Writer& w, const core::GemmCore::Snapshot& s) {
  put_engine(w, s.engine);
  w.u64(s.stats.symbols);
  w.f64(s.stats.wall_time_s);
  w.u64(s.stats.macs);
  w.f64(s.stats.modulator_energy_j);
  w.f64(s.stats.adc_energy_j);
  w.f64(s.stats.laser_energy_j);
  w.f64(s.stats.weight_write_energy_j);
  w.u64(s.channel_transfer.size());
  for (const lina::CMat& m : s.channel_transfer) put_cmat(w, m);
  w.u64(s.abft.columns_checked);
  w.u64(s.abft.detected);
  w.u64(s.abft.corrected);
  w.u64(s.abft.uncorrectable);
}
core::GemmCore::Snapshot get_gemm(Reader& r) {
  core::GemmCore::Snapshot s;
  s.engine = get_engine(r);
  s.stats.symbols = r.u64();
  s.stats.wall_time_s = r.f64();
  s.stats.macs = r.u64();
  s.stats.modulator_energy_j = r.f64();
  s.stats.adc_energy_j = r.f64();
  s.stats.laser_energy_j = r.f64();
  s.stats.weight_write_energy_j = r.f64();
  s.channel_transfer.resize(r.count(16));
  for (lina::CMat& m : s.channel_transfer) m = get_cmat(r);
  s.abft.columns_checked = r.u64();
  s.abft.detected = r.u64();
  s.abft.corrected = r.u64();
  s.abft.uncorrectable = r.u64();
  return s;
}

void put_pe(Writer& w, const PhotonicAccelerator::Snapshot& s) {
  put_gemm(w, s.gemm);
  put_memory(w, s.spm_w);
  put_memory(w, s.spm_x);
  put_memory(w, s.spm_y);
  w.u32(s.ctrl);
  w.u32(s.cols);
  w.b(s.done);
  w.b(s.irq);
  w.u64(s.busy_cycles);
  w.u64(s.total_busy_cycles);
  w.u32(s.last_op_cycles);
  w.u32(s.pending_op);
  w.b(s.error);
  w.u32(s.err_cause);
  w.u32(s.crc_w_expect);
  w.u32(s.crc_x_expect);
  w.u64(s.watchdog_cycles);
}
PhotonicAccelerator::Snapshot get_pe(Reader& r) {
  PhotonicAccelerator::Snapshot s;
  s.gemm = get_gemm(r);
  s.spm_w = get_memory(r);
  s.spm_x = get_memory(r);
  s.spm_y = get_memory(r);
  s.ctrl = r.u32();
  s.cols = r.u32();
  s.done = r.b();
  s.irq = r.b();
  s.busy_cycles = r.u64();
  s.total_busy_cycles = r.u64();
  s.last_op_cycles = r.u32();
  s.pending_op = r.u32();
  s.error = r.b();
  s.err_cause = r.u32();
  s.crc_w_expect = r.u32();
  s.crc_x_expect = r.u32();
  s.watchdog_cycles = r.u64();
  return s;
}

void put_cpu(Writer& w, const rv::Cpu::Snapshot& s) {
  for (const std::uint32_t v : s.regs) w.u32(v);
  for (const std::uint32_t v : s.stuck_or) w.u32(v);
  for (const std::uint32_t v : s.stuck_and) w.u32(v);
  w.b(s.reg_faults_armed);
  w.u32(s.pc);
  w.u64(s.cycles);
  w.u64(s.instret);
  w.u32(s.stall);
  w.b(s.irq);
  w.b(s.wfi);
  w.u8(static_cast<std::uint8_t>(s.halt));
  w.u32(s.mstatus);
  w.u32(s.mie);
  w.u32(s.mip);
  w.u32(s.mtvec);
  w.u32(s.mscratch);
  w.u32(s.mepc);
  w.u32(s.mcause);
  w.u32(s.mtval);
}
rv::Cpu::Snapshot get_cpu(Reader& r) {
  rv::Cpu::Snapshot s;
  for (std::uint32_t& v : s.regs) v = r.u32();
  for (std::uint32_t& v : s.stuck_or) v = r.u32();
  for (std::uint32_t& v : s.stuck_and) v = r.u32();
  s.reg_faults_armed = r.b();
  s.pc = r.u32();
  s.cycles = r.u64();
  s.instret = r.u64();
  s.stall = r.u32();
  s.irq = r.b();
  s.wfi = r.b();
  s.halt = static_cast<rv::Halt>(r.u8_enum(
      static_cast<std::uint8_t>(rv::Halt::kIllegal), "halt reason"));
  s.mstatus = r.u32();
  s.mie = r.u32();
  s.mip = r.u32();
  s.mtvec = r.u32();
  s.mscratch = r.u32();
  s.mepc = r.u32();
  s.mcause = r.u32();
  s.mtval = r.u32();
  return s;
}

void put_system(Writer& w, const System::SystemSnapshot& s) {
  w.u64(s.cycle);
  put_memory(w, s.dram);
  put_dma(w, s.dma);
  w.u64(s.pes.size());
  for (const PhotonicAccelerator::Snapshot& pe : s.pes) put_pe(w, pe);
  put_cpu(w, s.cpu);
}
System::SystemSnapshot get_system(Reader& r) {
  System::SystemSnapshot s;
  s.cycle = r.u64();
  s.dram = get_memory(r);
  s.dma = get_dma(r);
  s.pes.resize(r.count(64));
  for (PhotonicAccelerator::Snapshot& pe : s.pes) pe = get_pe(r);
  s.cpu = get_cpu(r);
  return s;
}

void put_spec(Writer& w, const FaultSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.target));
  w.u8(static_cast<std::uint8_t>(s.model));
  w.u64(s.cycle);
  w.u32(s.index);
  w.u32(s.bit);
  w.f64(s.phase_delta_rad);
}
FaultSpec get_spec(Reader& r) {
  FaultSpec s;
  s.target = static_cast<FaultTarget>(r.u8_enum(
      static_cast<std::uint8_t>(FaultTarget::kAccelPhase), "fault target"));
  s.model = static_cast<FaultModel>(r.u8_enum(
      static_cast<std::uint8_t>(FaultModel::kStuckAt1), "fault model"));
  s.cycle = r.u64();
  s.index = r.u32();
  s.bit = r.u32();
  s.phase_delta_rad = r.f64();
  return s;
}

void put_point(Writer& w, const SweepPoint& p) {
  w.u32(p.cell);
  w.u8(static_cast<std::uint8_t>(p.target));
  w.u8(static_cast<std::uint8_t>(p.model));
  w.b(p.pcm_weights);
  w.f64(p.pcm_drift_time_s);
  w.f64(p.temperature_k);
  w.u32(static_cast<std::uint32_t>(p.adc_bits));
  w.b(p.abft);
}
SweepPoint get_point(Reader& r) {
  SweepPoint p;
  p.cell = r.u32();
  p.target = static_cast<FaultTarget>(r.u8_enum(
      static_cast<std::uint8_t>(FaultTarget::kAccelPhase), "fault target"));
  p.model = static_cast<FaultModel>(r.u8_enum(
      static_cast<std::uint8_t>(FaultModel::kStuckAt1), "fault model"));
  p.pcm_weights = r.b();
  p.pcm_drift_time_s = r.f64();
  p.temperature_k = r.f64();
  p.adc_bits = static_cast<int>(r.u32());
  p.abft = r.b();
  return p;
}

void put_progress(Writer& w, const CampaignProgress& p) {
  w.u64(p.shard_seq);
  w.u64(p.trials_done);
  w.u64(p.trials_total);
}
CampaignProgress get_progress(Reader& r) {
  CampaignProgress p;
  p.shard_seq = r.u64();
  p.trials_done = r.u64();
  p.trials_total = r.u64();
  return p;
}

void put_spec_vec(Writer& w, const std::vector<FaultSpec>& specs) {
  w.u64(specs.size());
  for (const FaultSpec& s : specs) put_spec(w, s);
}
std::vector<FaultSpec> get_spec_vec(Reader& r) {
  std::vector<FaultSpec> specs(r.count(26));
  for (FaultSpec& s : specs) s = get_spec(r);
  return specs;
}

void put_histogram(Writer& w, const CampaignResult& res) {
  w.u64(res.counts.size());
  for (const auto& [outcome, count] : res.counts) {
    w.u8(static_cast<std::uint8_t>(outcome));
    w.u64(static_cast<std::uint64_t>(count));
  }
  w.u64(static_cast<std::uint64_t>(res.total));
}
CampaignResult get_histogram(Reader& r) {
  CampaignResult res;
  const std::size_t n = r.count(9);
  for (std::size_t i = 0; i < n; ++i) {
    const auto outcome = static_cast<Outcome>(r.u8_enum(
        static_cast<std::uint8_t>(Outcome::kDetectedRecovered), "outcome"));
    res.counts[outcome] = static_cast<int>(r.u64());
  }
  res.total = static_cast<int>(r.u64());
  return res;
}

}  // namespace

// ----------------------------------------------------------- public API

std::vector<std::uint8_t> serialize_snapshot(const System::SystemSnapshot& s) {
  Writer w;
  put_header(w, PayloadKind::kSnapshot);
  put_system(w, s);
  return w.take();
}

std::vector<std::uint8_t> serialize_specs(const std::vector<FaultSpec>& specs) {
  Writer w;
  put_header(w, PayloadKind::kSpecBatch);
  put_spec_vec(w, specs);
  return w.take();
}

std::vector<std::uint8_t> serialize_histogram(const CampaignResult& r) {
  Writer w;
  put_header(w, PayloadKind::kHistogram);
  put_histogram(w, r);
  return w.take();
}

std::vector<std::uint8_t> serialize_shard(const CampaignShard& shard) {
  Writer w;
  put_header(w, PayloadKind::kShard);
  w.u64(shard.seq);
  put_point(w, shard.point);
  put_system(w, shard.staged);
  w.u64(shard.golden.size());
  w.bytes(shard.golden.data(), shard.golden.size());
  w.u64(shard.fallback_golden.size());
  w.bytes(shard.fallback_golden.data(), shard.fallback_golden.size());
  w.u64(shard.golden_cycles);
  w.u64(shard.max_cycles);
  w.u32(shard.ladder_rungs);
  put_spec_vec(w, shard.specs);
  return w.take();
}

System::SystemSnapshot deserialize_snapshot(const std::uint8_t* data,
                                            std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kSnapshot);
  System::SystemSnapshot s = get_system(r);
  r.expect_end();
  return s;
}

std::vector<FaultSpec> deserialize_specs(const std::uint8_t* data,
                                         std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kSpecBatch);
  std::vector<FaultSpec> specs = get_spec_vec(r);
  r.expect_end();
  return specs;
}

CampaignResult deserialize_histogram(const std::uint8_t* data,
                                     std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kHistogram);
  CampaignResult res = get_histogram(r);
  r.expect_end();
  return res;
}

CampaignShard deserialize_shard(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kShard);
  CampaignShard shard;
  shard.seq = r.u64();
  shard.point = get_point(r);
  shard.staged = get_system(r);
  shard.golden.resize(r.count(1));
  r.bytes(shard.golden.data(), shard.golden.size());
  shard.fallback_golden.resize(r.count(1));
  r.bytes(shard.fallback_golden.data(), shard.fallback_golden.size());
  shard.golden_cycles = r.u64();
  shard.max_cycles = r.u64();
  shard.ladder_rungs = r.u32();
  shard.specs = get_spec_vec(r);
  r.expect_end();
  return shard;
}

std::vector<std::uint8_t> serialize_progress(const CampaignProgress& p) {
  Writer w;
  put_header(w, PayloadKind::kProgress);
  put_progress(w, p);
  return w.take();
}

CampaignProgress deserialize_progress(const std::uint8_t* data,
                                      std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kProgress);
  CampaignProgress p = get_progress(r);
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> serialize_journal_entry(const JournalEntry& e) {
  Writer w;
  put_header(w, PayloadKind::kJournal);
  w.u64(e.shard_seq);
  put_histogram(w, e.hist);
  return w.take();
}

JournalEntry deserialize_journal_entry(const std::uint8_t* data,
                                       std::size_t size) {
  Reader r(data, size);
  check_header(r, PayloadKind::kJournal);
  JournalEntry e;
  e.shard_seq = r.u64();
  e.hist = get_histogram(r);
  r.expect_end();
  return e;
}

PayloadKind payload_kind(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  return read_header(r);
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  Writer w;
  w.u64(payload.size());
  w.bytes(payload.data(), payload.size());
  return w.take();
}

std::optional<std::vector<std::uint8_t>> FrameBuffer::next() {
  if (buf_.size() - pos_ < 8) return std::nullopt;
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
  if (len > kMaxFrameBytes)
    throw std::runtime_error(
        "campaign_io: frame length " + std::to_string(len) +
        " exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame cap (corrupt stream)");
  if (buf_.size() - pos_ - 8 < len) return std::nullopt;
  std::vector<std::uint8_t> payload(buf_.begin() + pos_ + 8,
                                    buf_.begin() + pos_ + 8 + len);
  pos_ += 8 + static_cast<std::size_t>(len);
  // Reclaim consumed prefix once it dominates the buffer, keeping feed()
  // amortized O(1) over long worker streams.
  if (pos_ > (1u << 16) && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return payload;
}

CampaignResult merge_histograms(const std::vector<CampaignResult>& shards) {
  CampaignResult merged;
  for (const CampaignResult& s : shards) {
    for (const auto& [outcome, count] : s.counts)
      merged.counts[outcome] += count;
    merged.total += s.total;
  }
  return merged;
}

std::vector<CampaignShard> plan_shards(FaultCampaign& campaign,
                                       const std::vector<FaultSpec>& specs,
                                       std::size_t shard_count,
                                       std::uint32_t ladder_rungs,
                                       const SweepPoint& point,
                                       std::uint64_t first_seq) {
  if (shard_count == 0) shard_count = 1;
  if (shard_count > specs.size() && !specs.empty())
    shard_count = specs.size();
  std::vector<CampaignShard> shards;
  shards.reserve(shard_count);
  const std::size_t per = specs.empty() ? 0 : specs.size() / shard_count;
  for (std::size_t k = 0; k < shard_count; ++k) {
    CampaignShard shard;
    shard.seq = first_seq + k;
    shard.point = point;
    shard.staged = campaign.staged_snapshot();
    shard.golden = campaign.golden();
    shard.fallback_golden = campaign.fallback_golden();
    shard.golden_cycles = campaign.golden_cycles();
    shard.max_cycles = campaign.max_cycles();
    shard.ladder_rungs = ladder_rungs;
    const std::size_t lo = k * per;
    const std::size_t hi = (k + 1 == shard_count) ? specs.size() : lo + per;
    shard.specs.assign(specs.begin() + static_cast<std::ptrdiff_t>(lo),
                       specs.begin() + static_cast<std::ptrdiff_t>(hi));
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace aspen::sys
