#pragma once
/// \file campaign_io.hpp
/// Binary wire format for distributed fault campaigns. NEUROPULS-scale
/// robustness sweeps (fault type x PCM drift x temperature x ENOB at
/// millions of trials) outgrow one process: a coordinator stages the
/// workload once, then fans pre-drawn spec shards out to worker
/// processes/machines which classify trials against the coordinator's
/// golden reference and stream verdict histograms back. Everything that
/// crosses the process boundary is serialized here:
///
///   System::SystemSnapshot  — the fully staged platform image
///   std::vector<FaultSpec>  — a pre-drawn spec shard
///   CampaignResult          — a verdict histogram
///   CampaignShard           — one worker's complete input (snapshot +
///                             golden reference + specs + budget)
///
/// Every payload starts with an 8-byte header (magic, format version,
/// payload kind); deserialization validates all three and every enum in
/// the body, throwing std::runtime_error with a precise message rather
/// than constructing half-formed state. Scalars are little-endian,
/// doubles are IEEE-754 bit patterns and the RNG engine is captured via
/// its standard stream representation, so round-trips are bit-exact and
/// merged multi-process histograms match the serial run bit-for-bit.

#include <cstdint>
#include <vector>

#include "sysim/fault.hpp"
#include "sysim/system.hpp"

namespace aspen::sys {

/// Format version; bump on any layout change (readers reject mismatches).
inline constexpr std::uint16_t kCampaignWireVersion = 1;

/// Payload discriminator carried in the header.
enum class PayloadKind : std::uint16_t {
  kSnapshot = 1,
  kSpecBatch = 2,
  kHistogram = 3,
  kShard = 4,
};

/// One worker's complete campaign input: the coordinator's staged
/// snapshot and golden reference plus the spec shard to execute. The
/// worker rebuilds the platform from its own (identical) factory,
/// adopts the snapshot, and classifies against the shipped golden bytes
/// so all processes share one reference.
struct CampaignShard {
  System::SystemSnapshot staged;
  std::vector<std::uint8_t> golden;
  std::uint64_t golden_cycles = 0;
  std::uint64_t max_cycles = 0;
  /// Checkpoint-ladder rungs the worker should build (<= 1 disables).
  std::uint32_t ladder_rungs = 0;
  std::vector<FaultSpec> specs;
};

// -- Serialization (header + body) ----------------------------------------
[[nodiscard]] std::vector<std::uint8_t> serialize_snapshot(
    const System::SystemSnapshot& s);
[[nodiscard]] std::vector<std::uint8_t> serialize_specs(
    const std::vector<FaultSpec>& specs);
[[nodiscard]] std::vector<std::uint8_t> serialize_histogram(
    const CampaignResult& r);
[[nodiscard]] std::vector<std::uint8_t> serialize_shard(
    const CampaignShard& shard);

// -- Deserialization (throws std::runtime_error on malformed payloads) ----
[[nodiscard]] System::SystemSnapshot deserialize_snapshot(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::vector<FaultSpec> deserialize_specs(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] CampaignResult deserialize_histogram(const std::uint8_t* data,
                                                   std::size_t size);
[[nodiscard]] CampaignShard deserialize_shard(const std::uint8_t* data,
                                              std::size_t size);

[[nodiscard]] inline System::SystemSnapshot deserialize_snapshot(
    const std::vector<std::uint8_t>& b) {
  return deserialize_snapshot(b.data(), b.size());
}
[[nodiscard]] inline std::vector<FaultSpec> deserialize_specs(
    const std::vector<std::uint8_t>& b) {
  return deserialize_specs(b.data(), b.size());
}
[[nodiscard]] inline CampaignResult deserialize_histogram(
    const std::vector<std::uint8_t>& b) {
  return deserialize_histogram(b.data(), b.size());
}
[[nodiscard]] inline CampaignShard deserialize_shard(
    const std::vector<std::uint8_t>& b) {
  return deserialize_shard(b.data(), b.size());
}

/// Deterministic histogram merge: shard counts sum per outcome (the map
/// is ordered, so the result is independent of shard arrival order).
/// With shards formed by partitioning one serially drawn spec list, the
/// merged histogram is bit-identical to the serial campaign's.
[[nodiscard]] CampaignResult merge_histograms(
    const std::vector<CampaignResult>& shards);

}  // namespace aspen::sys
