#pragma once
/// \file campaign_io.hpp
/// Binary wire format for distributed fault campaigns. NEUROPULS-scale
/// robustness sweeps (fault type x PCM drift x temperature x ENOB at
/// millions of trials) outgrow one process: a coordinator stages the
/// workload once, then fans pre-drawn spec shards out to worker
/// processes/machines which classify trials against the coordinator's
/// golden reference and stream verdict histograms back. Everything that
/// crosses the process boundary is serialized here:
///
///   System::SystemSnapshot  — the fully staged platform image
///   std::vector<FaultSpec>  — a pre-drawn spec shard
///   CampaignResult          — a verdict histogram
///   CampaignShard           — one worker's complete input (snapshot +
///                             golden reference + specs + budget)
///   CampaignProgress        — a worker heartbeat (trials completed)
///   JournalEntry            — a completed-shard record (resume marker)
///
/// Every payload starts with an 8-byte header (magic, format version,
/// payload kind); deserialization validates all three and every enum in
/// the body, throwing std::runtime_error whose message carries the byte
/// offset and the expected-vs-actual sizes rather than constructing
/// half-formed state — a short pipe read and a malformed enum are
/// distinguishable from the message alone. Scalars are little-endian,
/// doubles are IEEE-754 bit patterns and the RNG engine is captured via
/// its standard stream representation, so round-trips are bit-exact and
/// merged multi-process histograms match the serial run bit-for-bit.
///
/// Payloads that travel over a byte *stream* (worker stdout, journal
/// files) are wrapped in frames — a u64 length prefix followed by the
/// payload — reassembled by FrameBuffer, so heartbeats and the final
/// histogram share one pipe without ambiguity.

#include <cstdint>
#include <optional>
#include <vector>

#include "sysim/fault.hpp"
#include "sysim/system.hpp"

namespace aspen::sys {

/// Format version; bump on any layout change (readers reject mismatches).
/// v2: CampaignShard gained `seq` + `point` (sweep-cell parameters), and
/// the stream kinds kProgress / kJournal joined the protocol.
/// v3: fault-detection state joined the platform image (accelerator
/// ERROR latch, CRC expectations, watchdog countdown, ABFT counters),
/// SweepPoint gained the `abft` axis, CampaignShard gained the
/// software-fallback golden, and histograms carry the recovery verdicts.
/// v4: the CPU snapshot gained the mtval CSR (trap value register,
/// introduced with the RV32C / misaligned-fetch work).
inline constexpr std::uint16_t kCampaignWireVersion = 4;

/// Payload discriminator carried in the header.
enum class PayloadKind : std::uint16_t {
  kSnapshot = 1,
  kSpecBatch = 2,
  kHistogram = 3,
  kShard = 4,
  kProgress = 5,
  kJournal = 6,
};

/// One cell of the multi-axis NEUROPULS sweep (fault target/model x PCM
/// drift x temperature x ENOB). Shipped inside every shard so the worker
/// process can rebuild the *configuration* of the coordinator's platform
/// — the snapshot restores state, but detector temperature, ADC
/// resolution and weight technology live in the config and must match on
/// both sides for the trials to be bit-identical.
struct SweepPoint {
  std::uint32_t cell = 0;  ///< grid cell index (journal/report key)
  FaultTarget target = FaultTarget::kCpuRegfile;
  FaultModel model = FaultModel::kTransientFlip;
  bool pcm_weights = false;       ///< kPcm weight technology
  double pcm_drift_time_s = 0.0;  ///< seconds since PCM programming
  double temperature_k = 300.0;   ///< detector temperature
  int adc_bits = 8;               ///< ADC resolution (ENOB axis)
  bool abft = false;              ///< ABFT-protected offload (v3 axis)
};

/// One worker's complete campaign input: the coordinator's staged
/// snapshot and golden reference plus the spec shard to execute. The
/// worker rebuilds the platform from its own (identical) factory,
/// adopts the snapshot, and classifies against the shipped golden bytes
/// so all processes share one reference.
struct CampaignShard {
  /// Orchestrator sequence number: unique per shard across a campaign,
  /// stable across resume (it keys the journal).
  std::uint64_t seq = 0;
  /// Sweep-cell parameters the worker rebuilds its config from.
  SweepPoint point;
  System::SystemSnapshot staged;
  std::vector<std::uint8_t> golden;
  /// Software-fallback reference output for recovery-aware campaigns
  /// (empty otherwise): a worker running a checked workload classifies
  /// fell-back trials against these bytes (see
  /// FaultCampaign::set_recovery).
  std::vector<std::uint8_t> fallback_golden;
  std::uint64_t golden_cycles = 0;
  std::uint64_t max_cycles = 0;
  /// Checkpoint-ladder rungs the worker should build (<= 1 disables).
  std::uint32_t ladder_rungs = 0;
  std::vector<FaultSpec> specs;
};

/// Worker heartbeat: emitted between trial chunks so the orchestrator
/// can tell a slow shard from a hung worker.
struct CampaignProgress {
  std::uint64_t shard_seq = 0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
};

/// Completed-shard record appended to the on-disk journal: a killed
/// orchestrator resumes by replaying these and re-running only the
/// shards without one.
struct JournalEntry {
  std::uint64_t shard_seq = 0;
  CampaignResult hist;
};

// -- Serialization (header + body) ----------------------------------------
[[nodiscard]] std::vector<std::uint8_t> serialize_snapshot(
    const System::SystemSnapshot& s);
[[nodiscard]] std::vector<std::uint8_t> serialize_specs(
    const std::vector<FaultSpec>& specs);
[[nodiscard]] std::vector<std::uint8_t> serialize_histogram(
    const CampaignResult& r);
[[nodiscard]] std::vector<std::uint8_t> serialize_shard(
    const CampaignShard& shard);
[[nodiscard]] std::vector<std::uint8_t> serialize_progress(
    const CampaignProgress& p);
[[nodiscard]] std::vector<std::uint8_t> serialize_journal_entry(
    const JournalEntry& e);

// -- Deserialization (throws std::runtime_error on malformed payloads) ----
[[nodiscard]] System::SystemSnapshot deserialize_snapshot(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] std::vector<FaultSpec> deserialize_specs(
    const std::uint8_t* data, std::size_t size);
[[nodiscard]] CampaignResult deserialize_histogram(const std::uint8_t* data,
                                                   std::size_t size);
[[nodiscard]] CampaignShard deserialize_shard(const std::uint8_t* data,
                                              std::size_t size);
[[nodiscard]] CampaignProgress deserialize_progress(const std::uint8_t* data,
                                                    std::size_t size);
[[nodiscard]] JournalEntry deserialize_journal_entry(const std::uint8_t* data,
                                                     std::size_t size);

[[nodiscard]] inline System::SystemSnapshot deserialize_snapshot(
    const std::vector<std::uint8_t>& b) {
  return deserialize_snapshot(b.data(), b.size());
}
[[nodiscard]] inline std::vector<FaultSpec> deserialize_specs(
    const std::vector<std::uint8_t>& b) {
  return deserialize_specs(b.data(), b.size());
}
[[nodiscard]] inline CampaignResult deserialize_histogram(
    const std::vector<std::uint8_t>& b) {
  return deserialize_histogram(b.data(), b.size());
}
[[nodiscard]] inline CampaignShard deserialize_shard(
    const std::vector<std::uint8_t>& b) {
  return deserialize_shard(b.data(), b.size());
}
[[nodiscard]] inline CampaignProgress deserialize_progress(
    const std::vector<std::uint8_t>& b) {
  return deserialize_progress(b.data(), b.size());
}
[[nodiscard]] inline JournalEntry deserialize_journal_entry(
    const std::vector<std::uint8_t>& b) {
  return deserialize_journal_entry(b.data(), b.size());
}

// -- Stream framing --------------------------------------------------------

/// Upper bound on a framed payload; a length prefix beyond this is
/// treated as stream corruption, not an allocation request.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

/// Peek at a serialized payload's kind (validates magic + version).
[[nodiscard]] PayloadKind payload_kind(const std::uint8_t* data,
                                       std::size_t size);
[[nodiscard]] inline PayloadKind payload_kind(
    const std::vector<std::uint8_t>& b) {
  return payload_kind(b.data(), b.size());
}

/// Wrap a payload in a stream frame: u64 little-endian length + payload.
[[nodiscard]] std::vector<std::uint8_t> frame(
    const std::vector<std::uint8_t>& payload);

/// Incremental frame reassembly for byte streams (worker pipes, journal
/// files): feed() arbitrary chunks, next() yields each complete payload.
/// A partial frame simply waits for more bytes; an insane length prefix
/// (> kMaxFrameBytes) throws — corrupt streams fail loudly, they do not
/// allocate terabytes.
class FrameBuffer {
 public:
  void feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }
  void feed(const std::vector<std::uint8_t>& b) { feed(b.data(), b.size()); }
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();
  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t pending() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Deterministic histogram merge: shard counts sum per outcome (the map
/// is ordered, so the result is independent of shard arrival order).
/// With shards formed by partitioning one serially drawn spec list, the
/// merged histogram is bit-identical to the serial campaign's.
[[nodiscard]] CampaignResult merge_histograms(
    const std::vector<CampaignResult>& shards);

/// Shard planning: partition a serially drawn spec list into
/// `shard_count` contiguous shards, each carrying the campaign's staged
/// snapshot, golden reference and cycle budget plus the sweep-cell
/// parameters and a stable sequence number starting at `first_seq`.
/// Contiguous partitioning is what makes the merged histogram
/// bit-identical to the serial run — trials are independent and every
/// spec lands in exactly one shard. Trailing specs go to the last shard.
[[nodiscard]] std::vector<CampaignShard> plan_shards(
    FaultCampaign& campaign, const std::vector<FaultSpec>& specs,
    std::size_t shard_count, std::uint32_t ladder_rungs = 0,
    const SweepPoint& point = {}, std::uint64_t first_seq = 0);

}  // namespace aspen::sys
