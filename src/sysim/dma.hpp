#pragma once
/// \file dma.hpp
/// Descriptor-driven DMA engine (paper Section 5: "the gem5-based
/// infrastructure includes Direct Memory Access (DMA) devices"). A bus
/// master that copies SRC -> DST at a configurable beat width, raising an
/// interrupt line on completion so the host can WFI instead of polling.
///
/// Register map (word offsets):
///   0x00 SRC     source address
///   0x04 DST     destination address
///   0x08 LEN     bytes to copy
///   0x0C CTRL    bit0 START, bit1 IRQ_EN
///   0x10 STATUS  bit0 BUSY, bit1 DONE, bit2 ERROR (DONE/ERROR W1C)
///
/// A bus fault mid-transfer (either endpoint) aborts the transfer:
/// BUSY drops, ERROR rises (DONE stays clear) and the IRQ line is
/// raised when IRQ_EN is set, so guest code polling STATUS or parked
/// in WFI observes the abort instead of spinning forever. Starting a
/// new transfer clears a latched ERROR.

#include <cstdint>

#include "sysim/bus.hpp"

namespace aspen::sys {

class DmaEngine final : public BusDevice {
 public:
  /// `bytes_per_cycle`: transfer beat width (bus words per cycle).
  DmaEngine(Bus& bus, unsigned bytes_per_cycle = 4);

  std::uint32_t read(std::uint32_t offset, unsigned size) override;
  void write(std::uint32_t offset, std::uint32_t value, unsigned size) override;
  [[nodiscard]] unsigned access_latency() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "dma"; }
  /// Only CTRL writes start transfers; SRC/DST/LEN programming and
  /// STATUS clears are passive.
  [[nodiscard]] bool write_is_activating(std::uint32_t offset) const override {
    return offset == kRegCtrl;
  }

  /// Advance one cycle (moves data while busy).
  void tick();
  /// Advance `n` cycles at once. While busy, the remaining beats are
  /// bulk-moved in one memcpy when both endpoints resolve to direct
  /// spans covering the rest of the transfer (DRAM<->DRAM, DRAM<->SPM) —
  /// cursor progression, completion cycle and observer notifications are
  /// bit-identical to per-cycle ticking. Otherwise (MMIO endpoint, spans
  /// revoked by stuck-at faults, overlapping ranges) the engine falls
  /// back to per-cycle ticking.
  void skip_cycles(std::uint64_t n);

  /// Cycles until the running transfer completes, provided the remainder
  /// is bulk-movable (see skip_cycles); 0 while idle or when the
  /// transfer must tick per-cycle. The event-driven System uses this to
  /// skip straight to the completion/IRQ edge.
  [[nodiscard]] std::uint64_t bulk_cycles_remaining() const;

  [[nodiscard]] bool irq_pending() const { return irq_; }
  void clear_irq() { irq_ = false; }
  [[nodiscard]] bool busy() const { return busy_; }

  /// Complete register/transfer state (no derived caches to invalidate).
  struct Snapshot {
    std::uint32_t src = 0, dst = 0, len = 0, ctrl = 0;
    std::uint32_t cursor = 0;
    bool busy = false, done = false, irq = false, error = false;
  };
  [[nodiscard]] Snapshot snapshot() const {
    return {src_, dst_, len_, ctrl_, cursor_, busy_, done_, irq_, error_};
  }
  void restore(const Snapshot& s);

  static constexpr std::uint32_t kRegSrc = 0x00;
  static constexpr std::uint32_t kRegDst = 0x04;
  static constexpr std::uint32_t kRegLen = 0x08;
  static constexpr std::uint32_t kRegCtrl = 0x0C;
  static constexpr std::uint32_t kRegStatus = 0x10;
  static constexpr std::uint32_t kCtrlStart = 1u << 0;
  static constexpr std::uint32_t kCtrlIrqEn = 1u << 1;
  static constexpr std::uint32_t kStatusBusy = 1u << 0;
  static constexpr std::uint32_t kStatusDone = 1u << 1;
  static constexpr std::uint32_t kStatusError = 1u << 2;

 private:
  /// Resolved bulk-move endpoints for the remaining [cursor_, len_) range.
  struct BulkPath {
    std::uint8_t* src = nullptr;
    std::uint8_t* dst = nullptr;
    BusDevice* dst_dev = nullptr;
    std::uint32_t dst_dev_offset = 0;  ///< device-relative start of the move
  };
  /// Endpoints of the remaining transfer when every byte can be moved
  /// through raw spans (both windows cover the remainder, ranges do not
  /// overlap); nullptr data pointers otherwise.
  [[nodiscard]] BulkPath resolve_bulk() const;
  /// Advance `cursor` by exactly the bytes `ticks` busy cycles move
  /// (pure arithmetic mirror of tick()'s beat loop); returns the cycles
  /// actually consumed (< ticks when the transfer finishes early).
  [[nodiscard]] std::uint64_t advance_cursor(std::uint32_t& cursor,
                                             std::uint64_t ticks) const;

  /// Abort the running transfer on a mid-transfer bus fault: BUSY drops,
  /// ERROR latches, IRQ rises when enabled.
  void abort_transfer();

  Bus& bus_;
  unsigned beat_;
  std::uint32_t src_ = 0, dst_ = 0, len_ = 0, ctrl_ = 0;
  std::uint32_t cursor_ = 0;
  bool busy_ = false;
  bool done_ = false;
  bool irq_ = false;
  bool error_ = false;
};

}  // namespace aspen::sys
