#pragma once
/// \file dma.hpp
/// Descriptor-driven DMA engine (paper Section 5: "the gem5-based
/// infrastructure includes Direct Memory Access (DMA) devices"). A bus
/// master that copies SRC -> DST at a configurable beat width, raising an
/// interrupt line on completion so the host can WFI instead of polling.
///
/// Register map (word offsets):
///   0x00 SRC     source address
///   0x04 DST     destination address
///   0x08 LEN     bytes to copy
///   0x0C CTRL    bit0 START, bit1 IRQ_EN
///   0x10 STATUS  bit0 BUSY, bit1 DONE (write 1 to clear)

#include <cstdint>

#include "sysim/bus.hpp"

namespace aspen::sys {

class DmaEngine final : public BusDevice {
 public:
  /// `bytes_per_cycle`: transfer beat width (bus words per cycle).
  DmaEngine(Bus& bus, unsigned bytes_per_cycle = 4);

  std::uint32_t read(std::uint32_t offset, unsigned size) override;
  void write(std::uint32_t offset, std::uint32_t value, unsigned size) override;
  [[nodiscard]] unsigned access_latency() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "dma"; }
  /// Only CTRL writes start transfers; SRC/DST/LEN programming and
  /// STATUS clears are passive.
  [[nodiscard]] bool write_is_activating(std::uint32_t offset) const override {
    return offset == kRegCtrl;
  }

  /// Advance one cycle (moves data while busy).
  void tick();
  /// Advance `n` cycles at once. The engine issues bus transactions on
  /// every busy cycle, so bulk skipping is only free while idle; a busy
  /// engine falls back to per-cycle ticking to stay bit-identical.
  void skip_cycles(std::uint64_t n);

  [[nodiscard]] bool irq_pending() const { return irq_; }
  void clear_irq() { irq_ = false; }
  [[nodiscard]] bool busy() const { return busy_; }

  static constexpr std::uint32_t kRegSrc = 0x00;
  static constexpr std::uint32_t kRegDst = 0x04;
  static constexpr std::uint32_t kRegLen = 0x08;
  static constexpr std::uint32_t kRegCtrl = 0x0C;
  static constexpr std::uint32_t kRegStatus = 0x10;
  static constexpr std::uint32_t kCtrlStart = 1u << 0;
  static constexpr std::uint32_t kCtrlIrqEn = 1u << 1;
  static constexpr std::uint32_t kStatusBusy = 1u << 0;
  static constexpr std::uint32_t kStatusDone = 1u << 1;

 private:
  Bus& bus_;
  unsigned beat_;
  std::uint32_t src_ = 0, dst_ = 0, len_ = 0, ctrl_ = 0;
  std::uint32_t cursor_ = 0;
  bool busy_ = false;
  bool done_ = false;
  bool irq_ = false;
};

}  // namespace aspen::sys
