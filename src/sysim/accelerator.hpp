#pragma once
/// \file accelerator.hpp
/// The photonic DSA as a memory-mapped device — the paper's Fig. 3
/// architecture: a Compute Unit (the photonic GeMM core of src/core)
/// behind a Communications Interface of memory-mapped registers (MMRs),
/// scratchpad memories (SPMs) for the weight/input/output tiles, and an
/// interrupt line "so the host can utilize the provided interrupt signals
/// for synchronization without the need for constant polling".
///
/// Device memory map (offsets from the device base):
///   0x0000  MMR block
///     0x00 CTRL    bit0 START_COMPUTE, bit1 IRQ_EN, bit2 LOAD_WEIGHTS,
///                  bit3 CHECK_CRC_W, bit4 CHECK_CRC_X
///     0x04 STATUS  bit0 BUSY, bit1 DONE (write 1 to clear),
///                  bit2 ERROR (write 1 to clear; also clears ERR)
///     0x08 COLS    number of input columns M (1 .. max_cols)
///     0x0C PORTS   (RO) mesh size N
///     0x10 CYCLES  (RO) busy cycles of the last operation
///     0x14 ERR     (RO) error cause: bit0 CRC_W, bit1 CRC_X,
///                  bit2 ABFT (uncorrectable checksum miss),
///                  bit3 WATCHDOG
///     0x18 ABFT_DET (RO) cumulative ABFT-detected output columns
///     0x1C ABFT_COR (RO) cumulative ABFT-corrected output columns
///     0x20 CRC_W   (RW) expected CRC-32 of the N*N*2-byte weight tile
///     0x24 CRC_X   (RW) expected CRC-32 of the N*M*2-byte input tile
///     0x28 WDOG    (RW) watchdog: write a cycle deadline to arm, 0 to
///                  disarm; reads the remaining countdown. Disarmed by
///                  operation completion; on expiry latches ERROR
///                  (cause WATCHDOG) and raises the interrupt line even
///                  with IRQ_EN clear, so a WFI'd host always wakes.
///   0x1000  SPM_W  N x N   int16 Q3.12 weights, row-major
///   0x2000  SPM_X  N x M   int16 Q3.12 inputs, column-major
///   0x3000  SPM_Y  N x M   int16 Q3.12 outputs, column-major
///
/// Fault detection: CHECK_CRC_W / CHECK_CRC_X verify the marshalled SPM
/// tile against the CRC_W / CRC_X registers as the operation starts; a
/// mismatch aborts the operation (weights are not programmed, SPM_Y is
/// not written), latches ERROR with the cause bit, and still raises DONE
/// at completion so the host handshake never wedges. With ABFT enabled in
/// the GEMM config the compute unit runs the checksum-augmented (N+2)
/// tile: correctable output corruptions are repaired transparently
/// (counted in ABFT_COR), uncorrectable ones latch ERROR cause ABFT. The
/// ERROR latch mirrors the DMA engine's: it persists across reads and
/// clears only on the documented STATUS write.
///
/// Timing: LOAD_WEIGHTS costs the weight-programming time of the
/// configured technology (micro-seconds for thermo-optic heaters,
/// ~100 ns for PCM); START_COMPUTE costs the optical GeMM wall time plus
/// a fixed handshake overhead. Data conversion is Q3.12 fixed point with
/// saturation (range [-8, 8), resolution 2^-12) — wide enough for N <= 8
/// dot products of [-1, 1] operands without overflow.

#include <memory>

#include "core/gemm_core.hpp"
#include "sysim/memory.hpp"

namespace aspen::sys {

struct AcceleratorConfig {
  core::GemmConfig gemm;
  std::uint32_t max_cols = 64;
  double clock_hz = 1e9;          ///< system clock for cycle conversion
  unsigned handshake_cycles = 20; ///< fixed start/finish overhead
  /// Use the deterministic (noise-free) optical path so software-visible
  /// results are reproducible; benches studying analog noise disable it.
  bool deterministic = true;
};

class PhotonicAccelerator final : public BusDevice {
 public:
  explicit PhotonicAccelerator(AcceleratorConfig cfg);

  std::uint32_t read(std::uint32_t offset, unsigned size) override;
  void write(std::uint32_t offset, std::uint32_t value, unsigned size) override;
  [[nodiscard]] unsigned access_latency() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "photonic-dsa"; }
  /// CTRL writes start operations and WDOG writes arm a countdown with a
  /// tick()-observable deadline; SPM data and the remaining MMRs (STATUS
  /// clear, COLS, CRC expectations) change no tick()-observable behavior.
  [[nodiscard]] bool write_is_activating(std::uint32_t offset) const override {
    return offset == kRegCtrl || offset == kRegWdog;
  }

  /// Advance one system clock cycle.
  void tick();
  /// Advance `n` cycles at once (event-driven scheduling): the busy
  /// countdown has no per-cycle side effects, so skipping is exact —
  /// completion (DONE/IRQ) fires iff the countdown reaches zero.
  void skip_cycles(std::uint64_t n);

  [[nodiscard]] bool irq_pending() const { return irq_; }
  void clear_irq() { irq_ = false; }
  [[nodiscard]] bool busy() const { return busy_cycles_ > 0; }
  /// Cycles until the running operation completes (0 when idle).
  [[nodiscard]] std::uint64_t busy_cycles_remaining() const {
    return busy_cycles_;
  }
  /// Watchdog countdown state (the event-driven scheduler folds the
  /// deadline into its skip window so bulk skipping stays exact).
  [[nodiscard]] bool watchdog_armed() const { return watchdog_cycles_ > 0; }
  [[nodiscard]] std::uint64_t watchdog_cycles_remaining() const {
    return watchdog_cycles_;
  }
  [[nodiscard]] bool error() const { return error_; }

  /// Direct SPM access for fault injection campaigns.
  [[nodiscard]] Memory& spm_w() { return spm_w_; }
  [[nodiscard]] Memory& spm_x() { return spm_x_; }
  [[nodiscard]] Memory& spm_y() { return spm_y_; }
  /// Perturb one programmed mesh phase (photonic-domain fault).
  void inject_phase_fault(std::size_t phase_index, double delta_rad);
  /// Number of programmable phases (the photonic fault surface).
  [[nodiscard]] std::size_t phase_state_size() const {
    return gemm_.engine().phase_state_size();
  }

  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t total_busy_cycles() const {
    return total_busy_cycles_;
  }
  /// The photonic compute unit behind the MMRs (engine inspection for
  /// tests / benches: programmed transfer, counters, fidelity).
  [[nodiscard]] const core::GemmCore& gemm() const { return gemm_; }

  // -- Snapshot / restore -------------------------------------------------
  /// MMR block + SPM images + the full photonic compute-unit state.
  struct Snapshot {
    core::GemmCore::Snapshot gemm;
    Memory::Snapshot spm_w, spm_x, spm_y;
    std::uint32_t ctrl = 0, cols = 1;
    bool done = false, irq = false;
    std::uint64_t busy_cycles = 0, total_busy_cycles = 0;
    std::uint32_t last_op_cycles = 0, pending_op = 0;
    bool error = false;
    std::uint32_t err_cause = 0, crc_w_expect = 0, crc_x_expect = 0;
    std::uint64_t watchdog_cycles = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& s);

  static constexpr std::uint32_t kMmrBase = 0x0000;
  static constexpr std::uint32_t kSpmWBase = 0x1000;
  static constexpr std::uint32_t kSpmXBase = 0x2000;
  static constexpr std::uint32_t kSpmYBase = 0x3000;
  static constexpr std::uint32_t kRegCtrl = 0x00;
  static constexpr std::uint32_t kRegStatus = 0x04;
  static constexpr std::uint32_t kRegCols = 0x08;
  static constexpr std::uint32_t kRegPorts = 0x0C;
  static constexpr std::uint32_t kRegCycles = 0x10;
  static constexpr std::uint32_t kRegErr = 0x14;
  static constexpr std::uint32_t kRegAbftDetected = 0x18;
  static constexpr std::uint32_t kRegAbftCorrected = 0x1C;
  static constexpr std::uint32_t kRegCrcW = 0x20;
  static constexpr std::uint32_t kRegCrcX = 0x24;
  static constexpr std::uint32_t kRegWdog = 0x28;
  static constexpr std::uint32_t kCtrlStart = 1u << 0;
  static constexpr std::uint32_t kCtrlIrqEn = 1u << 1;
  static constexpr std::uint32_t kCtrlLoadWeights = 1u << 2;
  static constexpr std::uint32_t kCtrlCrcW = 1u << 3;
  static constexpr std::uint32_t kCtrlCrcX = 1u << 4;
  static constexpr std::uint32_t kStatusBusy = 1u << 0;
  static constexpr std::uint32_t kStatusDone = 1u << 1;
  static constexpr std::uint32_t kStatusError = 1u << 2;
  static constexpr std::uint32_t kErrCrcW = 1u << 0;
  static constexpr std::uint32_t kErrCrcX = 1u << 1;
  static constexpr std::uint32_t kErrAbft = 1u << 2;
  static constexpr std::uint32_t kErrWatchdog = 1u << 3;

  /// Fixed-point format shared with the software baseline workloads.
  static constexpr int kFracBits = 12;  // Q3.12
  [[nodiscard]] static std::int16_t to_fixed(double v);
  [[nodiscard]] static double from_fixed(std::int16_t v);

 private:
  void start_operation(std::uint32_t ctrl);
  void finish_operation();
  void latch_error(std::uint32_t cause) {
    error_ = true;
    err_cause_ |= cause;
  }
  void watchdog_fire();

  AcceleratorConfig cfg_;
  core::GemmCore gemm_;
  Memory spm_w_;
  Memory spm_x_;
  Memory spm_y_;
  std::uint32_t ctrl_ = 0;
  std::uint32_t cols_ = 1;
  bool done_ = false;
  bool irq_ = false;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t total_busy_cycles_ = 0;
  std::uint32_t last_op_cycles_ = 0;
  std::uint32_t pending_op_ = 0;  ///< latched CTRL of the running op
  bool error_ = false;            ///< ERROR latch (persists until W1C)
  std::uint32_t err_cause_ = 0;
  std::uint32_t crc_w_expect_ = 0;
  std::uint32_t crc_x_expect_ = 0;
  std::uint64_t watchdog_cycles_ = 0;  ///< 0 = disarmed
  // start_operation marshalling scratch (tiles stream through every op).
  lina::CMat scratch_x_;
  lina::CMat scratch_y_;
};

}  // namespace aspen::sys
