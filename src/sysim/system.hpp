#pragma once
/// \file system.hpp
/// Full-platform wiring (paper Fig. 3): RISC-V CPU + shared bus + DRAM +
/// DMA engine + a cluster of photonic DSA processing elements (PEs), with
/// interrupt lines from DMA and every PE OR-ed into the CPU's external
/// interrupt. Synchronous cycle stepping: every tick advances the CPU and
/// all devices by one system clock cycle. run()/run_until() are
/// event-driven by default: stretches where no component does visible
/// work — the CPU stalled on a memory/multiplier latency or parked in
/// WFI, the DMA engine quiescent, PEs counting down their optical
/// busy time — are skipped in bulk via the per-component skip_cycles()
/// hooks, at bit-identical cycle counts to per-cycle ticking.
///
/// Address map:
///   0x8000_0000  DRAM (code + data)
///   0x4000_0000  PE 0 (MMRs + SPM windows, 64 KiB stride per PE)
///   0x4001_0000  PE 1 ...
///   0x4100_0000  DMA engine

#include <memory>
#include <vector>

#include "sysim/accelerator.hpp"
#include "sysim/dma.hpp"
#include "sysim/memory.hpp"
#include "sysim/riscv/cpu.hpp"

namespace aspen::sys {

struct SystemConfig {
  std::uint32_t dram_base = 0x80000000u;
  std::uint32_t dram_size = 4u << 20;
  unsigned dram_latency = 10;
  std::uint32_t accel_base = 0x40000000u;
  std::uint32_t accel_stride = 0x10000u;
  std::uint32_t dma_base = 0x41000000u;
  unsigned bus_latency = 1;
  unsigned dma_bytes_per_cycle = 4;
  std::size_t num_pes = 1;
  AcceleratorConfig accel;  ///< configuration shared by all PEs
  rv::CpuConfig cpu;
  std::uint64_t max_cycles = 200'000'000ULL;
  /// Skip idle stretches in bulk inside run()/run_until(). Per-cycle
  /// ticking (false) is kept for differential testing and benchmarking;
  /// results are bit-identical either way.
  bool event_driven = true;
};

class System {
 public:
  explicit System(SystemConfig cfg = {});

  /// Copy an assembled program to the reset address.
  void load_program(const std::vector<std::uint32_t>& words);
  /// Host-side data staging in DRAM (offset relative to dram_base).
  void write_dram(std::uint32_t offset, const void* src, std::size_t n);
  void read_dram(std::uint32_t offset, void* dst, std::size_t n) const;

  /// Advance one cycle.
  void tick();

  /// Advance until the CPU halts or the absolute cycle `target` is
  /// reached — event-driven unless cfg.event_driven is false. This is
  /// the exact-cycle entry point fault campaigns use to hit their
  /// injection points: on return (unless halted) now() == target.
  void run_until(std::uint64_t target);

  struct RunResult {
    std::uint64_t cycles = 0;
    std::uint64_t instret = 0;
    rv::Halt halt = rv::Halt::kRunning;
    std::uint32_t exit_code = 0;
    bool timed_out = false;
  };
  /// Run until the CPU halts or max_cycles elapse.
  RunResult run();

  /// Complete captured platform state, restorable into any System built
  /// from the same SystemConfig. Component snapshots hold architectural
  /// state only; derived caches (predecoded micro-ops, bus windows, mesh
  /// transfer factorizations) are invalidated on restore and repopulate
  /// lazily at bit-identical cycle cost. The fault campaigns stage a
  /// workload once, snapshot, and restore per trial instead of paying
  /// construction (DRAM allocation + weight programming) every run.
  struct SystemSnapshot {
    std::uint64_t cycle = 0;
    Memory::Snapshot dram;
    DmaEngine::Snapshot dma;
    std::vector<PhotonicAccelerator::Snapshot> pes;
    rv::Cpu::Snapshot cpu;
  };
  [[nodiscard]] SystemSnapshot snapshot() const;
  /// Restore a snapshot taken from an identically configured System
  /// (throws std::invalid_argument on a shape mismatch). Cost is
  /// dominated by the DRAM memcpy.
  void restore(const SystemSnapshot& s);
  /// Bitwise-equivalent restore tuned for hot trial loops: DRAM is
  /// diff-restored (only spans differing from the snapshot are copied
  /// and notified) and the CPU keeps its direct-memory windows and
  /// predecoded micro-ops — the diff's observer notifications invalidate
  /// exactly the stale entries, the same protocol that keeps them
  /// coherent across DMA writes. Checkpoint-ladder fault campaigns
  /// restore mostly-identical prefixes thousands of times; skipping the
  /// untouched program image is the difference between a full-DRAM
  /// memcpy plus cold re-decode per trial and a short scan.
  ///
  /// The DRAM scan is bounded to the union of the memory's own dirty
  /// watermark (completed by publishing the CPU's raw-span store spans
  /// first) and the caller's stale span [dram_stale_lo,
  /// dram_stale_lo+dram_stale_len): the bytes where the image this
  /// system was last restored to may differ from `s.dram`. Callers that
  /// do not track the last restored image must keep the whole-span
  /// default.
  void restore_fast(const SystemSnapshot& s, std::uint32_t dram_stale_lo = 0,
                    std::uint32_t dram_stale_len = 0xFFFFFFFFu);

  [[nodiscard]] rv::Cpu& cpu() { return *cpu_; }
  [[nodiscard]] Memory& dram() { return *dram_; }
  [[nodiscard]] DmaEngine& dma() { return *dma_; }
  [[nodiscard]] Bus& bus() { return bus_; }
  [[nodiscard]] std::size_t pe_count() const { return pes_.size(); }
  [[nodiscard]] PhotonicAccelerator& pe(std::size_t i) { return *pes_.at(i); }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t now() const { return cycle_; }

 private:
  /// Cycles that can elapse from the current state without any component
  /// doing observable work (0 when the next tick must be stepped).
  [[nodiscard]] std::uint64_t skippable_cycles() const;
  /// True when the CPU can free-run instructions without per-cycle
  /// device ticking (all devices idle, interrupt line low).
  [[nodiscard]] bool can_burst() const;
  /// Advance every clock by `n` guaranteed-idle cycles at once.
  void skip_cycles(std::uint64_t n);

  SystemConfig cfg_;
  Bus bus_;
  std::unique_ptr<Memory> dram_;
  std::unique_ptr<DmaEngine> dma_;
  std::vector<std::unique_ptr<PhotonicAccelerator>> pes_;
  std::unique_ptr<rv::Cpu> cpu_;
  std::uint64_t cycle_ = 0;
};

}  // namespace aspen::sys
