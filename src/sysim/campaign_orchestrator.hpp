#pragma once
/// \file campaign_orchestrator.hpp
/// Supervised worker-pool orchestration for NEUROPULS-scale fault
/// campaigns. The statistical argument of the paper (Section 5) needs
/// millions of injected faults, and a harness that injects faults into
/// the simulated system must itself survive faults in the host processes
/// running it: a worker that is SIGKILLed mid-shard, hangs past its
/// deadline, or emits a truncated histogram must cost one retry, not the
/// campaign. Three layers live here:
///
///   CampaignOrchestrator — fork/exec worker pool over pipes (no temp
///     files). Each shard attempt is one worker process: the serialized
///     CampaignShard streams to the child's stdin, heartbeat/progress
///     frames and the final histogram stream back on its stdout. Lost
///     shards (crash / deadline / corrupt output) are re-queued to a
///     fresh worker with exponential backoff; a shard that fails on
///     `max_attempts` distinct workers degrades gracefully to in-process
///     serial execution. Because shards partition a serially drawn spec
///     list and every trial is deterministic, the merged histogram is
///     bit-identical to the serial oracle no matter how many workers
///     died on the way.
///
///   Journal — completed-shard records (campaign_io kJournal frames)
///     appended to a file as each shard finishes; a killed orchestrator
///     resumes by replaying the journal and re-running only the shards
///     without a record. The tail of a journal cut mid-append is
///     ignored, not fatal.
///
///   SweepGrid — the multi-axis sweep harness: fault target/model x PCM
///     drift time x temperature x ENOB. Plans per-cell campaigns and
///     shards, drives one orchestrator across the whole grid, and merges
///     per-cell outcome histograms (run_serial() is the in-process
///     oracle the orchestrated run is asserted against).
///
/// Worker processes use campaign_worker_main(): the same loop the bench
/// binary exposes behind --campaign-worker. All of this is POSIX
/// (fork/pipe/poll); on non-POSIX hosts construction works but run()
/// throws.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sysim/campaign_io.hpp"
#include "sysim/fault.hpp"

namespace aspen::sys {

/// Rebuilds a cell-specific System factory from the sweep parameters a
/// shard carries — the worker-side half of the contract that coordinator
/// and worker construct byte-identical platforms.
using PointFactory =
    std::function<FaultCampaign::SystemFactory(const SweepPoint&)>;

// -- Low-level pipe I/O (EINTR-retrying; SIGPIPE-safe) ---------------------
namespace io {
/// Read `fd` to EOF. Throws std::runtime_error on a read error.
[[nodiscard]] std::vector<std::uint8_t> read_all(int fd);
/// Write all `n` bytes, retrying short writes and EINTR. Returns false on
/// any other error (EPIPE included — callers see a closed peer, not a
/// signal).
bool write_all(int fd, const void* p, std::size_t n);
/// write_all of a stream frame (length prefix + payload).
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);
}  // namespace io

struct OrchestratorConfig {
  /// Concurrent worker processes.
  unsigned max_workers = 2;
  /// Worker processes a shard may consume before the orchestrator stops
  /// retrying and executes it in-process (the graceful-degradation
  /// floor). Must be >= 1.
  unsigned max_attempts = 3;
  /// A worker producing no frame for this long is declared lost and
  /// SIGKILLed (0 disables). Heartbeats arrive every progress chunk, so
  /// this is a hang detector, not a throughput requirement.
  std::uint32_t heartbeat_timeout_ms = 30'000;
  /// Total wall-clock deadline per shard attempt (0 disables).
  std::uint32_t shard_timeout_ms = 0;
  /// Exponential backoff before a lost shard is relaunched:
  /// initial * multiplier^(attempt-1), capped at backoff_max_ms.
  std::uint32_t backoff_initial_ms = 25;
  double backoff_multiplier = 2.0;
  std::uint32_t backoff_max_ms = 1'000;
  /// Resumable-journal path; empty disables journaling.
  std::string journal_path;
  /// Worker command line (argv[0] = executable); the child's stdin/stdout
  /// are the shard/frame pipes. Ignored when `child_entry` is set.
  std::vector<std::string> worker_argv;
  /// Optional per-attempt command override (chaos flags for fault drills:
  /// the CI smoke run crashes exactly one attempt this way).
  std::function<std::vector<std::string>(std::uint64_t seq, unsigned attempt)>
      worker_command;
  /// Test hook: run this in the forked child instead of exec'ing (pipes
  /// already dup2'ed onto fds 0/1); the return value is the child's exit
  /// code. Lets the self-fault-injection suite sabotage workers without
  /// a separate binary.
  std::function<int(std::uint64_t seq, unsigned attempt)> child_entry;
  /// Diagnostics sink for supervision events (launches, kills, retries,
  /// fallbacks). Default: silent.
  std::function<void(const std::string&)> log;
  /// Test hook: abandon the event loop (as if the orchestrator process
  /// died) after this many shard completions in this run; 0 = run to
  /// completion. In-flight workers are killed; the journal keeps what
  /// finished.
  unsigned stop_after_shards = 0;
};

/// One unit of distributable work: an opaque serialized CampaignShard.
struct ShardTask {
  std::uint64_t seq = 0;  ///< stable id; must match the payload's shard.seq
  std::vector<std::uint8_t> payload;
  std::uint64_t trials = 0;  ///< progress denominator (reporting only)
};

struct ShardOutcome {
  std::uint64_t seq = 0;
  CampaignResult hist;
  unsigned attempts = 0;  ///< worker processes launched for this shard
  bool completed = false;
  bool from_journal = false;    ///< satisfied by a resume record
  bool serial_fallback = false; ///< degraded to in-process execution
};

class CampaignOrchestrator {
 public:
  /// In-process executor for shards that exhausted their worker attempts
  /// (and for hosts without fork). Must produce the same histogram a
  /// healthy worker would — with deterministic trials, any correct
  /// executor does.
  using SerialExecutor = std::function<CampaignResult(const CampaignShard&)>;

  CampaignOrchestrator(OrchestratorConfig cfg, SerialExecutor serial_fallback);

  /// Drive every task to completion (workers, retries, fallback, journal
  /// replay). Outcomes are returned in task order. Throws
  /// std::invalid_argument on duplicate/missing task data and
  /// std::runtime_error on unrecoverable host errors (pipe/fork
  /// exhaustion).
  [[nodiscard]] std::vector<ShardOutcome> run(
      const std::vector<ShardTask>& tasks);

  struct Stats {
    unsigned launches = 0;          ///< worker processes spawned
    unsigned kills = 0;             ///< deadline SIGKILLs issued
    unsigned failures = 0;          ///< attempts lost (crash/hang/corrupt)
    unsigned retries = 0;           ///< shards re-queued after a failure
    unsigned serial_fallbacks = 0;  ///< shards degraded to in-process
    unsigned journal_hits = 0;      ///< shards satisfied from the journal
    std::uint64_t progress_frames = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  OrchestratorConfig cfg_;
  SerialExecutor serial_;
  Stats stats_;
};

// -- Worker side -----------------------------------------------------------

/// Worker-process body: read one CampaignShard from `in_fd` (to EOF),
/// rebuild the platform from `factory(shard.point)`, adopt the
/// coordinator's staged snapshot + golden reference, execute the specs in
/// chunks of `progress_every` trials with a progress frame after each
/// chunk (and one before the first — the "platform built" heartbeat),
/// then write the final histogram frame. When the shard carries a
/// software-fallback golden and a `recovery` reader is supplied, the
/// worker classifies with the recovery-aware six-outcome taxonomy —
/// exactly what the coordinator's serial oracle does, keeping merged
/// histograms bit-identical. Returns the process exit code; diagnostics
/// go to stderr so the frame stream stays clean. SIGPIPE is ignored: a
/// vanished orchestrator surfaces as a write error, not a signal death.
int campaign_worker_main(int in_fd, int out_fd, const PointFactory& factory,
                         const FaultCampaign::OutputReader& read_output,
                         int progress_every = 16,
                         const FaultCampaign::RecoveryReader& recovery = {});

// -- Multi-axis sweep harness ----------------------------------------------

/// Axes of the NEUROPULS robustness sweep. Cells are the cross product,
/// enumerated faults-major / abft-minor; a drift time > 0 selects
/// PCM weight technology for that cell (drift is a no-op on volatile
/// thermo-optic weights). The `abft` axis toggles the ABFT-protected
/// checked-offload platform (the factory decides what that means —
/// typically GemmConfig::abft plus the checked guest workload), letting
/// one sweep report unprotected SDC rates next to detection coverage.
struct SweepAxes {
  std::vector<std::pair<FaultTarget, FaultModel>> faults = {
      {FaultTarget::kCpuRegfile, FaultModel::kTransientFlip}};
  std::vector<double> pcm_drift_times_s = {0.0};
  std::vector<double> temperatures_k = {300.0};
  std::vector<int> adc_bits = {8};
  std::vector<bool> abft = {false};
};

struct SweepRunConfig {
  int trials_per_cell = 60;
  unsigned shards_per_cell = 2;
  std::uint32_t ladder_rungs = 0;  ///< checkpoint ladder in the workers
  std::uint64_t seed = 0x5eedULL;  ///< per-cell spec streams derive from it
};

struct SweepCell {
  SweepPoint point;
  CampaignResult hist;
  std::uint64_t golden_cycles = 0;
  unsigned shards = 0;
};

class SweepGrid {
 public:
  SweepGrid(SweepAxes axes, PointFactory factory,
            FaultCampaign::OutputReader read_output, std::uint64_t max_cycles);

  /// Recovery-aware classification for the grid's ABFT cells: `reader`
  /// extracts the guest recovery record, `fallback_golden` is the
  /// software-fallback reference output (the scalar guest kernel's
  /// rounding differs from the photonic golden). Applied to every cell
  /// whose point has abft set — both the serial oracle and the
  /// orchestrated run, so the bit-identity contract extends to the
  /// six-outcome taxonomy.
  void set_recovery(FaultCampaign::RecoveryReader reader,
                    std::vector<std::uint8_t> fallback_golden);

  /// The grid's cells in execution order (cell ids are indices here).
  [[nodiscard]] std::vector<SweepPoint> points() const;

  /// In-process serial oracle: every cell's campaign executed on the
  /// calling thread. Spec streams are drawn identically to run(), so the
  /// orchestrated histograms must match these bit-for-bit.
  [[nodiscard]] std::vector<SweepCell> run_serial(const SweepRunConfig& rc);

  /// Orchestrated run: plans shards_per_cell shards per cell (seq = cell
  /// * shards_per_cell + k, stable for journal resume), drives one
  /// worker pool across the whole grid, merges per-cell histograms.
  /// `stats_out` (optional) receives the orchestrator's supervision
  /// counters.
  [[nodiscard]] std::vector<SweepCell> run(
      const SweepRunConfig& rc, const OrchestratorConfig& orch,
      CampaignOrchestrator::Stats* stats_out = nullptr);

 private:
  /// Campaign + deterministic spec stream for one cell (shared by the
  /// serial and orchestrated paths — the bit-identity contract).
  struct Cell {
    std::unique_ptr<FaultCampaign> campaign;
    std::vector<FaultSpec> specs;
  };
  [[nodiscard]] Cell make_cell(const SweepPoint& p,
                               const SweepRunConfig& rc) const;

  SweepAxes axes_;
  PointFactory factory_;
  FaultCampaign::OutputReader read_output_;
  std::uint64_t max_cycles_;
  FaultCampaign::RecoveryReader recovery_;
  std::vector<std::uint8_t> recovery_fallback_golden_;
};

}  // namespace aspen::sys
