#include "sysim/campaign_orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>

#if defined(__unix__)
#include <csignal>
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace aspen::sys {

#if defined(__unix__)

namespace io {

std::vector<std::uint8_t> read_all(int fd) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      bytes.insert(bytes.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return bytes;
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("io::read_all: ") +
                             std::strerror(errno));
  }
}

bool write_all(int fd, const void* p, std::size_t n) {
  const auto* s = static_cast<const std::uint8_t*>(p);
  while (n > 0) {
    const ssize_t w = ::write(fd, s, n);
    if (w >= 0) {
      s += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return false;  // EPIPE and friends: peer gone, caller decides
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> framed = frame(payload);
  return write_all(fd, framed.data(), framed.size());
}

}  // namespace io

namespace {

using Clock = std::chrono::steady_clock;

int ms_until(Clock::time_point deadline, Clock::time_point now) {
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<int>(std::min<long long>(ms + 1, 60'000));
}

void set_cloexec_nonblock(int fd) {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

/// One worker-process attempt in flight.
struct Slot {
  bool active = false;
  pid_t pid = -1;
  int in_fd = -1;   ///< write end: shard payload -> child stdin
  int out_fd = -1;  ///< read end: frames <- child stdout
  std::size_t task = 0;
  std::size_t wr_off = 0;
  FrameBuffer frames;
  Clock::time_point started{}, last_frame{};
};

std::map<std::uint64_t, CampaignResult> load_journal(
    const std::string& path,
    const std::function<void(const std::string&)>& log) {
  std::map<std::uint64_t, CampaignResult> entries;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return entries;
  FrameBuffer frames;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) frames.feed(chunk, n);
  std::fclose(f);
  try {
    while (const auto payload = frames.next()) {
      const JournalEntry e = deserialize_journal_entry(*payload);
      // Replay is idempotent: a seq journaled twice (a resume re-ran a
      // shard whose record landed after the cut the resumer read, or the
      // append was duplicated) keeps only the last record. Trials are
      // deterministic, so duplicate records are identical and "last"
      // equals "first" — the shard merges into the campaign once either
      // way.
      entries[e.shard_seq] = e.hist;
    }
    // A partial frame at the tail (orchestrator killed mid-append) is
    // expected on resume; anything before it replays fine.
  } catch (const std::exception& e) {
    if (log) log(std::string("journal: ignoring corrupt tail: ") + e.what());
  }
  return entries;
}

}  // namespace

CampaignOrchestrator::CampaignOrchestrator(OrchestratorConfig cfg,
                                           SerialExecutor serial_fallback)
    : cfg_(std::move(cfg)), serial_(std::move(serial_fallback)) {
  if (cfg_.max_workers == 0) cfg_.max_workers = 1;
  if (cfg_.max_attempts == 0) cfg_.max_attempts = 1;
  if (!serial_)
    throw std::invalid_argument(
        "CampaignOrchestrator: a serial fallback executor is required");
}

std::vector<ShardOutcome> CampaignOrchestrator::run(
    const std::vector<ShardTask>& tasks) {
  std::signal(SIGPIPE, SIG_IGN);  // a dead worker is an error code, not death

  const auto log = [&](const std::string& m) {
    if (cfg_.log) cfg_.log(m);
  };

  std::vector<ShardOutcome> out(tasks.size());
  std::map<std::uint64_t, std::size_t> by_seq;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].seq = tasks[i].seq;
    if (!by_seq.emplace(tasks[i].seq, i).second)
      throw std::invalid_argument("CampaignOrchestrator: duplicate shard seq " +
                                  std::to_string(tasks[i].seq));
  }

  // Journal replay: shards with a completed record are done before any
  // worker spawns.
  std::FILE* journal = nullptr;
  if (!cfg_.journal_path.empty()) {
    for (const auto& [seq, hist] : load_journal(cfg_.journal_path, cfg_.log)) {
      const auto it = by_seq.find(seq);
      if (it == by_seq.end()) continue;
      ShardOutcome& o = out[it->second];
      o.hist = hist;
      o.completed = true;
      o.from_journal = true;
      ++stats_.journal_hits;
    }
    journal = std::fopen(cfg_.journal_path.c_str(), "ab");
    if (journal == nullptr)
      throw std::runtime_error("CampaignOrchestrator: cannot open journal " +
                               cfg_.journal_path);
    ::fcntl(fileno(journal), F_SETFD, FD_CLOEXEC);
  }
  const auto journal_append = [&](std::uint64_t seq,
                                  const CampaignResult& hist) {
    if (journal == nullptr) return;
    const std::vector<std::uint8_t> framed =
        frame(serialize_journal_entry({seq, hist}));
    if (std::fwrite(framed.data(), 1, framed.size(), journal) != framed.size())
      log("journal: short write (resume will re-run this shard)");
    std::fflush(journal);
    ::fsync(fileno(journal));
  };

  struct Pending {
    std::size_t task;
    Clock::time_point eligible;
  };
  std::vector<Pending> queue;
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (!out[i].completed) {
      queue.push_back({i, Clock::now()});
      ++remaining;
    }

  std::vector<Slot> slots(std::min<std::size_t>(
      cfg_.max_workers, std::max<std::size_t>(remaining, 1)));

  unsigned completed_this_run = 0;
  bool abandoned = false;

  const auto backoff_ms = [&](unsigned attempts_used) -> std::uint32_t {
    // attempts_used >= 1 when a retry is being scheduled.
    double d = cfg_.backoff_initial_ms *
               std::pow(cfg_.backoff_multiplier,
                        static_cast<int>(attempts_used) - 1);
    return static_cast<std::uint32_t>(
        std::min<double>(d, cfg_.backoff_max_ms));
  };

  const auto close_slot = [&](Slot& s) {
    if (s.in_fd >= 0) ::close(s.in_fd);
    if (s.out_fd >= 0) ::close(s.out_fd);
    s.in_fd = s.out_fd = -1;
    s.active = false;
    s.frames = FrameBuffer{};
  };

  /// Terminate an attempt's process (idempotent on exited children) and
  /// reap it — used for completion, failure and shutdown alike.
  const auto terminate = [&](Slot& s) {
    if (s.pid > 0) {
      ::kill(s.pid, SIGKILL);
      reap(s.pid);
      s.pid = -1;
    }
    close_slot(s);
  };

  const auto complete = [&](Slot& s, CampaignResult hist) {
    ShardOutcome& o = out[s.task];
    o.hist = std::move(hist);
    o.completed = true;
    journal_append(o.seq, o.hist);
    terminate(s);
    --remaining;
    ++completed_this_run;
    if (cfg_.stop_after_shards != 0 &&
        completed_this_run >= cfg_.stop_after_shards)
      abandoned = true;
  };

  const auto fallback_serial = [&](std::size_t task) {
    ShardOutcome& o = out[task];
    log("shard " + std::to_string(o.seq) + ": exhausted " +
        std::to_string(o.attempts) +
        " worker attempts, degrading to in-process execution");
    o.hist = serial_(deserialize_shard(tasks[task].payload));
    o.completed = true;
    o.serial_fallback = true;
    ++stats_.serial_fallbacks;
    journal_append(o.seq, o.hist);
    --remaining;
    ++completed_this_run;
    if (cfg_.stop_after_shards != 0 &&
        completed_this_run >= cfg_.stop_after_shards)
      abandoned = true;
  };

  const auto fail_attempt = [&](Slot& s, const char* why) {
    const std::size_t task = s.task;
    ShardOutcome& o = out[task];
    log("shard " + std::to_string(o.seq) + " attempt " +
        std::to_string(o.attempts) + ": " + why);
    terminate(s);
    ++stats_.failures;
    if (o.attempts >= cfg_.max_attempts) {
      fallback_serial(task);
    } else {
      ++stats_.retries;
      queue.push_back({task, Clock::now() + std::chrono::milliseconds(
                                                backoff_ms(o.attempts))});
    }
  };

  const auto spawn = [&](Slot& s, std::size_t task) -> bool {
    const ShardTask& t = tasks[task];
    ShardOutcome& o = out[task];
    const unsigned attempt = o.attempts;  // 0-based for hooks
    int in_pipe[2], out_pipe[2];
    if (::pipe(in_pipe) != 0) return false;
    if (::pipe(out_pipe) != 0) {
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
        ::close(fd);
      return false;
    }
    if (pid == 0) {
      // Child: pipes onto stdin/stdout, every orchestrator fd closed (the
      // exec path also has CLOEXEC, but child_entry never execs).
      ::dup2(in_pipe[0], 0);
      ::dup2(out_pipe[1], 1);
      for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
        if (fd > 2) ::close(fd);
      for (const Slot& other : slots) {
        if (other.in_fd > 2) ::close(other.in_fd);
        if (other.out_fd > 2) ::close(other.out_fd);
      }
      if (journal != nullptr) ::close(fileno(journal));
      if (cfg_.child_entry) ::_exit(cfg_.child_entry(t.seq, attempt));
      const std::vector<std::string> argv_s =
          cfg_.worker_command ? cfg_.worker_command(t.seq, attempt)
                              : cfg_.worker_argv;
      std::vector<char*> argv;
      argv.reserve(argv_s.size() + 1);
      for (const std::string& a : argv_s)
        argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      if (!argv_s.empty()) ::execvp(argv[0], argv.data());
      std::fprintf(stderr, "campaign orchestrator: exec %s failed: %s\n",
                   argv_s.empty() ? "<empty argv>" : argv_s[0].c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    s.pid = pid;
    s.in_fd = in_pipe[1];
    s.out_fd = out_pipe[0];
    set_cloexec_nonblock(s.in_fd);
    set_cloexec_nonblock(s.out_fd);
    s.task = task;
    s.wr_off = 0;
    s.frames = FrameBuffer{};
    s.started = s.last_frame = Clock::now();
    s.active = true;
    ++o.attempts;
    ++stats_.launches;
    log("shard " + std::to_string(t.seq) + ": worker pid " +
        std::to_string(pid) + " (attempt " + std::to_string(o.attempts) +
        "/" + std::to_string(cfg_.max_attempts) + ")");
    return true;
  };

  // ---------------------------------------------------- supervision loop
  while (remaining > 0 && !abandoned) {
    const Clock::time_point now = Clock::now();

    // Launch eligible pending shards into free slots, lowest seq first
    // (deterministic scheduling order; completion order still races).
    std::stable_sort(queue.begin(), queue.end(),
                     [&](const Pending& a, const Pending& b) {
                       return tasks[a.task].seq < tasks[b.task].seq;
                     });
    for (Slot& s : slots) {
      if (s.active) continue;
      const auto it = std::find_if(queue.begin(), queue.end(),
                                   [&](const Pending& p) {
                                     return p.eligible <= now;
                                   });
      if (it == queue.end()) break;
      const std::size_t task = it->task;
      queue.erase(it);
      if (!spawn(s, task)) {
        // Transient fork/pipe exhaustion: run the shard in-process rather
        // than dropping it.
        ++out[task].attempts;
        ++stats_.failures;
        fallback_serial(task);
      }
    }

    if (remaining == 0 || abandoned) break;

    // Poll timeout: nearest of backoff eligibility and worker deadlines.
    int timeout = -1;
    const auto consider = [&](Clock::time_point deadline) {
      const int ms = ms_until(deadline, now);
      if (timeout < 0 || ms < timeout) timeout = ms;
    };
    const bool have_free_slot = std::any_of(
        slots.begin(), slots.end(), [](const Slot& s) { return !s.active; });
    if (have_free_slot)
      for (const Pending& p : queue) consider(p.eligible);
    for (const Slot& s : slots) {
      if (!s.active) continue;
      if (cfg_.heartbeat_timeout_ms != 0)
        consider(s.last_frame +
                 std::chrono::milliseconds(cfg_.heartbeat_timeout_ms));
      if (cfg_.shard_timeout_ms != 0)
        consider(s.started + std::chrono::milliseconds(cfg_.shard_timeout_ms));
    }

    std::vector<pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> who;  // slot idx, is_input
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      if (!s.active) continue;
      fds.push_back({s.out_fd, POLLIN, 0});
      who.emplace_back(i, false);
      if (s.in_fd >= 0 && s.wr_off < tasks[s.task].payload.size()) {
        fds.push_back({s.in_fd, POLLOUT, 0});
        who.emplace_back(i, true);
      }
    }
    int rc;
    do {
      rc = ::poll(fds.data(), fds.size(), timeout);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
      throw std::runtime_error(std::string("CampaignOrchestrator: poll: ") +
                               std::strerror(errno));

    for (std::size_t k = 0; k < fds.size(); ++k) {
      const auto [idx, is_input] = who[k];
      Slot& s = slots[idx];
      if (!s.active || fds[k].revents == 0) continue;

      if (is_input) {
        // Stream the shard payload into the child's stdin; EOF (close)
        // once fully written tells the worker to start executing.
        const std::vector<std::uint8_t>& payload = tasks[s.task].payload;
        while (s.wr_off < payload.size()) {
          const std::size_t n =
              std::min<std::size_t>(payload.size() - s.wr_off, 1u << 18);
          const ssize_t w = ::write(s.in_fd, payload.data() + s.wr_off, n);
          if (w > 0) {
            s.wr_off += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && errno == EINTR) continue;
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          fail_attempt(s, "shard write failed (worker gone?)");
          break;
        }
        if (s.active && s.wr_off >= payload.size()) {
          ::close(s.in_fd);
          s.in_fd = -1;
        }
        continue;
      }

      // Frame stream from the worker.
      bool eof = false;
      std::uint8_t chunk[1 << 16];
      for (;;) {
        const ssize_t n = ::read(s.out_fd, chunk, sizeof chunk);
        if (n > 0) {
          s.frames.feed(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // read error: treat as a lost worker
        break;
      }
      try {
        bool done = false;
        while (!done) {
          const auto payload = s.frames.next();
          if (!payload) break;
          s.last_frame = Clock::now();
          switch (payload_kind(*payload)) {
            case PayloadKind::kProgress: {
              const CampaignProgress p = deserialize_progress(*payload);
              ++stats_.progress_frames;
              log("shard " + std::to_string(p.shard_seq) + ": " +
                  std::to_string(p.trials_done) + "/" +
                  std::to_string(p.trials_total) + " trials");
              break;
            }
            case PayloadKind::kHistogram:
              complete(s, deserialize_histogram(*payload));
              done = true;
              break;
            default:
              throw std::runtime_error(
                  "unexpected frame kind from worker");
          }
        }
        if (s.active && eof)
          fail_attempt(s, "worker EOF before final histogram");
      } catch (const std::exception& e) {
        if (s.active)
          fail_attempt(s, (std::string("corrupt frame stream: ") + e.what())
                              .c_str());
      }
    }

    // Deadline sweep: hung workers are killed and their shards retried.
    const Clock::time_point after = Clock::now();
    for (Slot& s : slots) {
      if (!s.active) continue;
      const bool hb_lost =
          cfg_.heartbeat_timeout_ms != 0 &&
          after - s.last_frame >=
              std::chrono::milliseconds(cfg_.heartbeat_timeout_ms);
      const bool over_budget =
          cfg_.shard_timeout_ms != 0 &&
          after - s.started >=
              std::chrono::milliseconds(cfg_.shard_timeout_ms);
      if (hb_lost || over_budget) {
        ++stats_.kills;
        fail_attempt(s, hb_lost ? "heartbeat deadline exceeded (hung worker)"
                                : "shard deadline exceeded");
      }
    }
  }

  // Shutdown: abandon in-flight attempts (journal already holds every
  // completed shard).
  for (Slot& s : slots)
    if (s.active) terminate(s);
  if (journal != nullptr) std::fclose(journal);
  return out;
}

int campaign_worker_main(int in_fd, int out_fd, const PointFactory& factory,
                         const FaultCampaign::OutputReader& read_output,
                         int progress_every,
                         const FaultCampaign::RecoveryReader& recovery) {
  std::signal(SIGPIPE, SIG_IGN);  // orchestrator death = write error, not kill
  try {
    const CampaignShard shard = deserialize_shard(io::read_all(in_fd));
    FaultCampaign campaign(factory(shard.point), read_output,
                           shard.max_cycles);
    campaign.adopt_staged(shard.staged, shard.golden, shard.golden_cycles);
    if (recovery && !shard.fallback_golden.empty())
      campaign.set_recovery(recovery, shard.fallback_golden);
    if (shard.ladder_rungs > 1) campaign.build_ladder(shard.ladder_rungs);

    if (progress_every <= 0) progress_every = 16;
    const std::size_t total = shard.specs.size();
    std::size_t done = 0;
    CampaignResult hist;
    // First heartbeat before the first chunk: "platform adopted, alive".
    if (!io::write_frame(out_fd,
                         serialize_progress({shard.seq, done, total})))
      return 1;
    while (done < total) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(progress_every), total - done);
      const std::vector<FaultSpec> part(
          shard.specs.begin() + static_cast<std::ptrdiff_t>(done),
          shard.specs.begin() + static_cast<std::ptrdiff_t>(done + n));
      hist = merge_histograms({hist, histogram_of(campaign.run_trials(part, 1))});
      done += n;
      if (!io::write_frame(out_fd,
                           serialize_progress({shard.seq, done, total})))
        return 1;
    }
    return io::write_frame(out_fd, serialize_histogram(hist)) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign worker: %s\n", e.what());
    return 1;
  }
}

#else  // !__unix__

namespace io {
std::vector<std::uint8_t> read_all(int) {
  throw std::runtime_error("campaign_orchestrator: POSIX-only");
}
bool write_all(int, const void*, std::size_t) { return false; }
bool write_frame(int, const std::vector<std::uint8_t>&) { return false; }
}  // namespace io

CampaignOrchestrator::CampaignOrchestrator(OrchestratorConfig cfg,
                                           SerialExecutor serial_fallback)
    : cfg_(std::move(cfg)), serial_(std::move(serial_fallback)) {
  if (!serial_)
    throw std::invalid_argument(
        "CampaignOrchestrator: a serial fallback executor is required");
}

/// Without fork/pipe the pool degrades to the serial executor for every
/// shard — the same graceful-degradation path a fully faulty pool takes.
std::vector<ShardOutcome> CampaignOrchestrator::run(
    const std::vector<ShardTask>& tasks) {
  std::vector<ShardOutcome> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].seq = tasks[i].seq;
    out[i].hist = serial_(deserialize_shard(tasks[i].payload));
    out[i].completed = true;
    out[i].serial_fallback = true;
    ++stats_.serial_fallbacks;
  }
  return out;
}

int campaign_worker_main(int, int, const PointFactory&,
                         const FaultCampaign::OutputReader&, int,
                         const FaultCampaign::RecoveryReader&) {
  return 1;
}

#endif  // __unix__

// -- SweepGrid (platform-independent; delegates process work) --------------

SweepGrid::SweepGrid(SweepAxes axes, PointFactory factory,
                     FaultCampaign::OutputReader read_output,
                     std::uint64_t max_cycles)
    : axes_(std::move(axes)),
      factory_(std::move(factory)),
      read_output_(std::move(read_output)),
      max_cycles_(max_cycles) {}

void SweepGrid::set_recovery(FaultCampaign::RecoveryReader reader,
                             std::vector<std::uint8_t> fallback_golden) {
  recovery_ = std::move(reader);
  recovery_fallback_golden_ = std::move(fallback_golden);
}

std::vector<SweepPoint> SweepGrid::points() const {
  std::vector<SweepPoint> pts;
  std::uint32_t cell = 0;
  for (const auto& [target, model] : axes_.faults)
    for (const double drift : axes_.pcm_drift_times_s)
      for (const double temp : axes_.temperatures_k)
        for (const int bits : axes_.adc_bits)
          for (const bool abft : axes_.abft) {
            SweepPoint p;
            p.cell = cell++;
            p.target = target;
            p.model = model;
            p.pcm_drift_time_s = drift;
            p.pcm_weights = drift > 0.0;
            p.temperature_k = temp;
            p.adc_bits = bits;
            p.abft = abft;
            pts.push_back(p);
          }
  return pts;
}

SweepGrid::Cell SweepGrid::make_cell(const SweepPoint& p,
                                     const SweepRunConfig& rc) const {
  Cell cell;
  cell.campaign = std::make_unique<FaultCampaign>(factory_(p), read_output_,
                                                  max_cycles_);
  if (p.abft && recovery_)
    cell.campaign->set_recovery(recovery_, recovery_fallback_golden_);
  // Per-cell spec stream: deterministic in (seed, cell) only, so the
  // serial oracle and the orchestrated run draw identical trials.
  lina::Rng rng(rc.seed + 0x9E3779B97F4A7C15ULL * (p.cell + 1));
  cell.specs = cell.campaign->sample_specs(p.target, p.model,
                                           rc.trials_per_cell, rng);
  return cell;
}

std::vector<SweepCell> SweepGrid::run_serial(const SweepRunConfig& rc) {
  std::vector<SweepCell> cells;
  for (const SweepPoint& p : points()) {
    Cell cell = make_cell(p, rc);
    SweepCell result;
    result.point = p;
    result.hist = histogram_of(cell.campaign->run_trials(cell.specs, 1));
    result.golden_cycles = cell.campaign->golden_cycles();
    result.shards = 1;
    cells.push_back(std::move(result));
  }
  return cells;
}

std::vector<SweepCell> SweepGrid::run(const SweepRunConfig& rc,
                                      const OrchestratorConfig& orch,
                                      CampaignOrchestrator::Stats* stats_out) {
  const std::vector<SweepPoint> pts = points();
  const unsigned shards_per_cell = std::max(1u, rc.shards_per_cell);

  // Stage every cell once; the campaigns stay alive through the run so
  // the serial fallback executes on already-staged platforms.
  std::vector<Cell> cells;
  cells.reserve(pts.size());
  std::vector<ShardTask> tasks;
  for (const SweepPoint& p : pts) {
    Cell cell = make_cell(p, rc);
    const std::vector<CampaignShard> shards =
        plan_shards(*cell.campaign, cell.specs, shards_per_cell,
                    rc.ladder_rungs, p,
                    static_cast<std::uint64_t>(p.cell) * shards_per_cell);
    for (const CampaignShard& shard : shards) {
      ShardTask t;
      t.seq = shard.seq;
      t.trials = shard.specs.size();
      t.payload = serialize_shard(shard);
      tasks.push_back(std::move(t));
    }
    cells.push_back(std::move(cell));
  }

  CampaignOrchestrator orchestrator(
      orch, [&](const CampaignShard& shard) {
        FaultCampaign& campaign = *cells.at(shard.point.cell).campaign;
        return histogram_of(campaign.run_trials(shard.specs, 1));
      });
  const std::vector<ShardOutcome> outcomes = orchestrator.run(tasks);
  if (stats_out != nullptr) *stats_out = orchestrator.stats();

  std::vector<SweepCell> result;
  result.reserve(pts.size());
  for (std::size_t c = 0; c < pts.size(); ++c) {
    SweepCell sc;
    sc.point = pts[c];
    sc.golden_cycles = cells[c].campaign->golden_cycles();
    std::vector<CampaignResult> parts;
    for (const ShardOutcome& o : outcomes)
      if (o.completed && o.seq / shards_per_cell == c) {
        parts.push_back(o.hist);
        ++sc.shards;
      }
    sc.hist = merge_histograms(parts);
    result.push_back(std::move(sc));
  }
  return result;
}

}  // namespace aspen::sys
