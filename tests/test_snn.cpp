// Tests for the spiking substrate (S6): spike encoders, PCM synapses,
// accumulate-and-fire neurons, STDP, and the crossbar network.
#include <gtest/gtest.h>

#include <cmath>

#include "snn/network.hpp"
#include "snn/neuron.hpp"
#include "snn/pcm_synapse.hpp"
#include "snn/spike.hpp"
#include "snn/stdp.hpp"

namespace {

using namespace aspen::snn;
using aspen::lina::Rng;

TEST(SpikeTest, PoissonRateMatches) {
  Rng rng(1);
  double total = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t)
    total += static_cast<double>(poisson_train(1e6, 1e-3, rng).size());
  EXPECT_NEAR(total / trials, 1000.0, 50.0);
}

TEST(SpikeTest, PoissonTimesSortedWithinWindow) {
  Rng rng(2);
  const auto train = poisson_train(1e6, 1e-3, rng);
  for (std::size_t i = 1; i < train.size(); ++i)
    EXPECT_GT(train[i], train[i - 1]);
  if (!train.empty()) {
    EXPECT_GE(train.front(), 0.0);
    EXPECT_LT(train.back(), 1e-3);
  }
}

TEST(SpikeTest, LatencyEncodeOrdersByValue) {
  const SpikeRaster r = latency_encode({0.9, 0.1, 0.0}, 1e-6);
  ASSERT_EQ(r[0].size(), 1u);
  ASSERT_EQ(r[1].size(), 1u);
  EXPECT_TRUE(r[2].empty()) << "zero input stays silent";
  EXPECT_LT(r[0][0], r[1][0]) << "larger value spikes earlier";
}

TEST(SpikeTest, RasterToEventsSorted) {
  SpikeRaster r(2);
  r[0] = {3e-9, 1e-9};
  r[1] = {2e-9};
  auto events = raster_to_events(r);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LE(events[0].time, events[1].time);
  EXPECT_LE(events[1].time, events[2].time);
}

TEST(SpikeTest, SpikeCountsWindowed) {
  SpikeRaster r(1);
  r[0] = {1e-9, 2e-9, 5e-9};
  EXPECT_EQ(spike_counts(r, 0.0, 3e-9)[0], 2u);
  EXPECT_EQ(spike_counts(r, 3e-9, 10e-9)[0], 1u);
}

TEST(StdpTest, CausalPotentiatesAnticausalDepresses) {
  StdpConfig cfg;
  EXPECT_GT(stdp_delta(cfg, 10e-9), 0.0);
  EXPECT_LT(stdp_delta(cfg, -10e-9), 0.0);
}

TEST(StdpTest, WindowDecaysExponentially) {
  StdpConfig cfg;
  const double near = stdp_delta(cfg, 5e-9);
  const double far = stdp_delta(cfg, 200e-9);
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, 0.0, cfg.a_plus * 0.01);
  // Exact exponential ratio.
  EXPECT_NEAR(stdp_delta(cfg, cfg.tau_plus_s) / stdp_delta(cfg, 0.0),
              std::exp(-1.0), 1e-12);
}

TEST(PcmSynapseTest, WeightSetAndRead) {
  PcmSynapse syn;
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    syn.set_weight(w);
    EXPECT_NEAR(syn.weight(), w, 0.02) << "64-level quantization";
  }
}

TEST(PcmSynapseTest, UpdateMovesWeightInRightDirection) {
  PcmSynapse syn(aspen::phot::PcmCellConfig{}, 0.5);
  const double w0 = syn.weight();
  syn.update(+0.2);
  EXPECT_GT(syn.weight(), w0);
  syn.update(-0.4);
  EXPECT_LT(syn.weight(), w0);
}

TEST(PcmSynapseTest, WeightClampsAtBounds) {
  PcmSynapse syn(aspen::phot::PcmCellConfig{}, 0.9);
  syn.update(10.0);
  EXPECT_NEAR(syn.weight(), 1.0, 1e-9);
  syn.update(-10.0);
  EXPECT_NEAR(syn.weight(), 0.0, 1e-9);
}

TEST(PcmSynapseTest, UpdatesCostWriteEnergy) {
  PcmSynapse syn;
  const double e0 = syn.cell().energy_spent_j();
  syn.update(0.1);
  EXPECT_GT(syn.cell().energy_spent_j(), e0);
}

TEST(PcmNeuronTest, IntegratesToThresholdAndFires) {
  PcmNeuronConfig cfg;
  cfg.cell.accumulation_step = 0.2;
  cfg.threshold_fraction = 0.75;
  PcmNeuron n(cfg);
  double t = 0.0;
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    t += 50e-9;
    if (n.inject(1.0, t)) ++fired;
  }
  EXPECT_EQ(fired, 1) << "4 pulses x 0.2 crosses the 0.75 threshold once";
  EXPECT_NEAR(n.membrane(), 0.0, 1e-12) << "reset after firing";
}

TEST(PcmNeuronTest, SubThresholdStatePersists) {
  // Non-volatility: the membrane keeps its value between pulses (no leak)
  PcmNeuronConfig cfg;
  cfg.cell.accumulation_step = 0.3;
  PcmNeuron n(cfg);
  (void)n.inject(1.0, 1e-9);
  const double m = n.membrane();
  EXPECT_GT(m, 0.0);
  // ... much later, state is unchanged
  (void)n.inject(0.0, 1.0);
  EXPECT_DOUBLE_EQ(n.membrane(), m);
}

TEST(PcmNeuronTest, RefractoryBlocksPrompt) {
  PcmNeuronConfig cfg;
  cfg.cell.accumulation_step = 1.0;  // fire on every pulse
  cfg.refractory_s = 100e-9;
  PcmNeuron n(cfg);
  EXPECT_TRUE(n.inject(1.0, 100e-9));
  EXPECT_FALSE(n.inject(1.0, 150e-9)) << "within refractory";
  EXPECT_TRUE(n.inject(1.0, 250e-9)) << "after refractory";
}

TEST(PcmNeuronTest, InhibitionLowersMembrane) {
  PcmNeuronConfig cfg;
  cfg.cell.accumulation_step = 0.3;
  PcmNeuron n(cfg);
  (void)n.inject(1.0, 1e-9);
  const double before = n.membrane();
  n.inhibit(0.2);
  EXPECT_LT(n.membrane(), before);
}

TEST(YamadaSpikingTest, PhysicalTimeConversion) {
  YamadaSpikingNeuron n;
  n.advance(100e-9, 0.0);
  EXPECT_NEAR(n.now(), 100e-9, 1e-9);
  EXPECT_TRUE(n.spike_times().empty());
}

TEST(YamadaSpikingTest, StrongDriveProducesSpikes) {
  YamadaSpikingNeuron n;
  n.advance(2000e-9, 0.2);
  EXPECT_GE(n.spike_times().size(), 1u);
}

TEST(NetworkTest, ForwardSpikesPropagate) {
  NetworkConfig cfg;
  cfg.inputs = 4;
  cfg.outputs = 1;
  cfg.learning = false;
  cfg.neuron.cell.accumulation_step = 0.5;
  cfg.neuron.threshold_fraction = 0.6;
  SpikingNetwork net(cfg);
  for (std::size_t i = 0; i < 4; ++i) net.set_weight(0, i, 1.0);

  // All four inputs pulse every slot: weighted sum = 1 -> accumulate 0.5
  // per slot -> fires every ~2 slots.
  SpikeRaster in(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (int k = 0; k < 10; ++k)
      in[i].push_back(static_cast<double>(k) * cfg.slot_s + 1e-12);
  const SpikeRaster out = net.run(in, 10 * cfg.slot_s);
  EXPECT_GE(out[0].size(), 3u);
  EXPECT_LE(out[0].size(), 6u);
}

TEST(NetworkTest, SilentWithoutInput) {
  NetworkConfig cfg;
  cfg.inputs = 4;
  cfg.outputs = 2;
  SpikingNetwork net(cfg);
  const SpikeRaster out = net.run(SpikeRaster(4), 1e-6);
  EXPECT_TRUE(out[0].empty());
  EXPECT_TRUE(out[1].empty());
}

TEST(NetworkTest, StdpPotentiatesActiveSynapses) {
  // One output; inputs 0,1 fire regularly, inputs 2,3 stay silent.
  // After learning, w[0..1] must exceed w[2..3].
  NetworkConfig cfg;
  cfg.inputs = 4;
  cfg.outputs = 1;
  cfg.learning = true;
  cfg.neuron.cell.accumulation_step = 0.6;
  cfg.neuron.threshold_fraction = 0.5;
  // LTP-dominant protocol: with sustained drive the anti-causal window
  // must be short, or the pre spikes that trail each post spike depress
  // the very synapses that caused it (rate-dependence of pair STDP).
  cfg.stdp.a_plus = 0.10;
  cfg.stdp.a_minus = 0.05;
  cfg.stdp.tau_minus_s = 5e-9;
  SpikingNetwork net(cfg);

  SpikeRaster in(4);
  for (int k = 0; k < 40; ++k) {
    in[0].push_back(k * cfg.slot_s + 1e-12);
    in[1].push_back(k * cfg.slot_s + 1e-12);
  }
  (void)net.run(in, 40 * cfg.slot_s);
  const auto w = net.weights();
  const double active = 0.5 * (w[0][0] + w[0][1]);
  const double silent = 0.5 * (w[0][2] + w[0][3]);
  EXPECT_GT(active, silent + 0.1);
}

TEST(NetworkTest, LateralInhibitionSpecializesOutputs) {
  // Two outputs, two disjoint input patterns presented alternately with
  // WTA inhibition: the outputs should prefer different patterns.
  NetworkConfig cfg;
  cfg.inputs = 8;
  cfg.outputs = 2;
  cfg.learning = true;
  cfg.lateral_inhibition = 0.4;
  cfg.neuron.cell.accumulation_step = 0.6;
  cfg.neuron.threshold_fraction = 0.5;
  cfg.seed = 0x77;
  SpikingNetwork net(cfg);

  SpikeRaster in(8);
  // Pattern A (inputs 0-3) on even 4-slot blocks; pattern B (4-7) on odd.
  for (int block = 0; block < 60; ++block) {
    const bool a = block % 2 == 0;
    for (int s = 0; s < 2; ++s) {
      const double t = (block * 4 + s) * cfg.slot_s + 1e-12;
      for (std::size_t i = a ? 0 : 4; i < (a ? 4u : 8u); ++i)
        in[i].push_back(t);
    }
  }
  (void)net.run(in, 60 * 4 * cfg.slot_s);
  const auto w = net.weights();
  // Selectivity: each output's preference for pattern A.
  const auto pref = [&](std::size_t o) {
    double wa = 0.0, wb = 0.0;
    for (std::size_t i = 0; i < 4; ++i) wa += w[o][i];
    for (std::size_t i = 4; i < 8; ++i) wb += w[o][i];
    return wa - wb;
  };
  // The two outputs must not have identical preferences (specialization).
  EXPECT_GT(std::abs(pref(0) - pref(1)), 0.2);
}

TEST(NetworkTest, WriteEnergyAccounted) {
  NetworkConfig cfg;
  cfg.inputs = 2;
  cfg.outputs = 1;
  SpikingNetwork net(cfg);
  const double e0 = net.total_write_energy_j();
  SpikeRaster in(2);
  in[0] = {1e-12};
  in[1] = {1e-12};
  (void)net.run(in, 20e-9);
  EXPECT_GE(net.total_write_energy_j(), e0);
}

TEST(NetworkTest, BadShapesThrow) {
  NetworkConfig cfg;
  cfg.inputs = 0;
  EXPECT_THROW(SpikingNetwork{cfg}, std::invalid_argument);
  NetworkConfig ok;
  SpikingNetwork net(ok);
  EXPECT_THROW((void)net.run(SpikeRaster(3), 1e-6), std::invalid_argument);
}

}  // namespace
