// Tests for the system-level simulator (S7): bus, memory, RV32IM ISS,
// assembler, DMA, accelerator device, full-system workloads, faults.
#include <gtest/gtest.h>

#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen::sys;
using namespace aspen::sys::rv;

// ---------------------------------------------------------------- memory

TEST(MemoryTest, ByteHalfWordAccess) {
  Memory m("m", 64, 1);
  m.write(0, 0xDDCCBBAA, 4);
  EXPECT_EQ(m.read(0, 4), 0xDDCCBBAAu);
  EXPECT_EQ(m.read(0, 1), 0xAAu);
  EXPECT_EQ(m.read(1, 1), 0xBBu);
  EXPECT_EQ(m.read(2, 2), 0xDDCCu);
}

TEST(MemoryTest, BusFacingOutOfRangeIsLenient) {
  // Wild accesses (possible under injected faults) must not kill the
  // simulator: reads-as-zero, writes ignored.
  Memory m("m", 16, 1);
  EXPECT_EQ(m.read(16, 1), 0u);
  m.write(15, 0xFFFFFFFFu, 4);  // crosses the boundary: ignored
  EXPECT_EQ(m.read(12, 4) >> 24, 0u);
  // Host-side bulk access stays strict.
  std::uint8_t buf[4] = {0};
  EXPECT_THROW(m.load(14, buf, 4), std::out_of_range);
  EXPECT_THROW(m.read_block(14, buf, 4), std::out_of_range);
}

TEST(MemoryTest, TransientFlipAndStuckBits) {
  Memory m("m", 8, 1);
  m.write(3, 0x00, 1);
  m.flip_bit(3, 4);
  EXPECT_EQ(m.read(3, 1), 0x10u);
  m.set_stuck_bit(3, 0, true);
  EXPECT_EQ(m.read(3, 1), 0x11u);
  m.write(3, 0x00, 1);
  EXPECT_EQ(m.read(3, 1), 0x01u) << "stuck bit persists across writes";
  m.clear_faults();
  EXPECT_EQ(m.read(3, 1), 0x00u);
}

// ------------------------------------------------------------------ bus

TEST(BusTest, RoutesByAddress) {
  Bus bus(1);
  Memory a("a", 16, 1), b("b", 16, 2);
  bus.attach(0x1000, 16, &a);
  bus.attach(0x2000, 16, &b);
  (void)bus.write(0x1004, 42, 4);
  (void)bus.write(0x2008, 77, 4);
  EXPECT_EQ(bus.read(0x1004, 4).value, 42u);
  EXPECT_EQ(bus.read(0x2008, 4).value, 77u);
  EXPECT_EQ(bus.read(0x2008, 4).latency, 1u + 2u);
}

TEST(BusTest, UnmappedAccessFaults) {
  Bus bus;
  EXPECT_TRUE(bus.read(0xdeadbeef, 4).fault);
}

TEST(BusTest, OverlappingRegionRejected) {
  Bus bus;
  Memory a("a", 32, 1);
  bus.attach(0x1000, 32, &a);
  Memory b("b", 32, 1);
  EXPECT_THROW(bus.attach(0x1010, 32, &b), std::invalid_argument);
}

// ------------------------------------------------------------ assembler

TEST(AssemblerTest, LiHandlesFullRange) {
  for (std::uint32_t v : {0u, 1u, 0xFFFu, 0x800u, 0x7FFFFFFFu, 0x80000000u,
                          0xFFFFFFFFu, 0x12345678u}) {
    Assembler as(0x80000000);
    as.li(a0, v);
    as.ebreak();
    Bus bus(0);
    Memory ram("ram", 1 << 16, 0);
    bus.attach(0x80000000u, 1 << 16, &ram);
    const auto words = as.assemble();
    ram.load(0, words.data(), words.size() * 4);
    Cpu cpu(bus);
    for (int i = 0; i < 10 && !cpu.halted(); ++i) cpu.tick();
    EXPECT_EQ(cpu.read_reg(a0), v) << std::hex << v;
  }
}

TEST(AssemblerTest, UnknownLabelThrows) {
  Assembler as;
  as.j("nowhere");
  EXPECT_THROW((void)as.assemble(), std::invalid_argument);
}

TEST(AssemblerTest, DuplicateLabelThrows) {
  Assembler as;
  as.label("x");
  EXPECT_THROW(as.label("x"), std::invalid_argument);
}

// ---------------------------------------------------------------- cpu

/// Helper: run a program on a bare CPU+RAM system; returns the CPU.
struct MiniSystem {
  Bus bus{0};
  Memory ram{"ram", 1 << 20, 0};
  std::unique_ptr<Cpu> cpu;

  explicit MiniSystem(Assembler& as, CpuConfig cfg = {}) {
    bus.attach(0x80000000u, 1 << 20, &ram);
    const auto words = as.assemble();
    ram.load(0, words.data(), words.size() * 4);
    cpu = std::make_unique<Cpu>(bus, cfg);
  }
  Halt run(std::uint64_t max = 100000) {
    while (!cpu->halted() && cpu->cycles() < max) cpu->tick();
    return cpu->halt_reason();
  }
};

TEST(CpuTest, ArithmeticLoop) {
  // sum 1..10 -> a0 = 55
  Assembler as;
  as.li(a0, 0);
  as.li(t0, 1);
  as.li(t1, 11);
  as.label("loop");
  as.add(a0, a0, t0);
  as.addi(t0, t0, 1);
  as.blt(t0, t1, "loop");
  as.ebreak();
  MiniSystem sys(as);
  EXPECT_EQ(sys.run(), Halt::kEbreak);
  EXPECT_EQ(sys.cpu->read_reg(a0), 55u);
}

TEST(CpuTest, LoadStoreRoundTrip) {
  Assembler as;
  as.li(t0, 0x80010000u);
  as.li(t1, 0xCAFEBABEu);
  as.sw(t1, t0, 0);
  as.lw(a0, t0, 0);
  as.lhu(a1, t0, 0);
  as.lbu(a2, t0, 3);
  as.lh(a3, t0, 2);  // sign-extended 0xCAFE
  as.ebreak();
  MiniSystem sys(as);
  sys.run();
  EXPECT_EQ(sys.cpu->read_reg(a0), 0xCAFEBABEu);
  EXPECT_EQ(sys.cpu->read_reg(a1), 0xBABEu);
  EXPECT_EQ(sys.cpu->read_reg(a2), 0xCAu);
  EXPECT_EQ(sys.cpu->read_reg(a3), 0xFFFFCAFEu);
}

TEST(CpuTest, MExtension) {
  Assembler as;
  as.li(t0, static_cast<std::uint32_t>(-7));
  as.li(t1, 3);
  as.mul(a0, t0, t1);    // -21
  as.div(a1, t0, t1);    // -2 (toward zero)
  as.rem(a2, t0, t1);    // -1
  as.li(t2, 0);
  as.div(a3, t0, t2);    // div by zero -> -1
  as.rem(a4, t0, t2);    // rem by zero -> dividend
  as.mulhu(a5, t0, t1);  // high bits of unsigned product
  as.ebreak();
  MiniSystem sys(as);
  sys.run();
  EXPECT_EQ(static_cast<std::int32_t>(sys.cpu->read_reg(a0)), -21);
  EXPECT_EQ(static_cast<std::int32_t>(sys.cpu->read_reg(a1)), -2);
  EXPECT_EQ(static_cast<std::int32_t>(sys.cpu->read_reg(a2)), -1);
  EXPECT_EQ(sys.cpu->read_reg(a3), 0xFFFFFFFFu);
  EXPECT_EQ(static_cast<std::int32_t>(sys.cpu->read_reg(a4)), -7);
  // (2^32-7)*3 = 3*2^32 - 21 -> high word = 2 (borrow from the -21).
  EXPECT_EQ(sys.cpu->read_reg(a5), 2u);
}

TEST(CpuTest, ShiftsAndCompares) {
  Assembler as;
  as.li(t0, 0x80000000u);
  as.srai(a0, t0, 4);  // arithmetic: 0xF8000000
  as.srli(a1, t0, 4);  // logical:    0x08000000
  as.li(t1, 5);
  as.slt(a2, t0, t1);   // signed: 0x80000000 < 5 -> 1
  as.sltu(a3, t0, t1);  // unsigned -> 0
  as.ebreak();
  MiniSystem sys(as);
  sys.run();
  EXPECT_EQ(sys.cpu->read_reg(a0), 0xF8000000u);
  EXPECT_EQ(sys.cpu->read_reg(a1), 0x08000000u);
  EXPECT_EQ(sys.cpu->read_reg(a2), 1u);
  EXPECT_EQ(sys.cpu->read_reg(a3), 0u);
}

TEST(CpuTest, FunctionCallAndReturn) {
  Assembler as;
  as.li(a0, 5);
  as.jal(ra, "double_it");
  as.jal(ra, "double_it");
  as.ebreak();
  as.label("double_it");
  as.add(a0, a0, a0);
  as.ret();
  MiniSystem sys(as);
  EXPECT_EQ(sys.run(), Halt::kEbreak);
  EXPECT_EQ(sys.cpu->read_reg(a0), 20u);
}

TEST(CpuTest, EcallExitConvention) {
  Assembler as;
  as.li(a0, 42);
  as.li(a7, 93);
  as.ecall();
  MiniSystem sys(as);
  EXPECT_EQ(sys.run(), Halt::kEcallExit);
  EXPECT_EQ(sys.cpu->exit_code(), 42u);
}

TEST(CpuTest, IllegalInstructionHaltsWithoutHandler) {
  Assembler as;
  as.nop();
  MiniSystem sys(as);
  sys.ram.write(4, 0xFFFFFFFFu, 4);  // garbage after the nop
  EXPECT_EQ(sys.run(), Halt::kIllegal);
}

TEST(CpuTest, TrapToHandlerAndMret) {
  // mtvec-directed trap on ecall (a7 != 93), handler sets a1 and returns
  // past the ecall via mepc += 4.
  Assembler as;
  as.li(t0, 0x80000000u + 64);  // handler address (word 16)
  as.csrrw(zero, kCsrMtvec, t0);
  as.li(a7, 1);
  as.ecall();
  as.li(a2, 7);  // must execute after the handler returns
  as.ebreak();
  while (as.current_address() < 0x80000000u + 64) as.nop();
  as.label("handler");
  as.li(a1, 99);
  as.csrrs(t1, kCsrMepc, zero);
  as.addi(t1, t1, 4);
  as.csrrw(zero, kCsrMepc, t1);
  as.mret();
  MiniSystem sys(as);
  EXPECT_EQ(sys.run(), Halt::kEbreak);
  EXPECT_EQ(sys.cpu->read_reg(a1), 99u);
  EXPECT_EQ(sys.cpu->read_reg(a2), 7u);
}

TEST(CpuTest, WfiWakesOnInterrupt) {
  Assembler as;
  as.wfi();
  as.li(a0, 1);
  as.ebreak();
  MiniSystem sys(as);
  for (int i = 0; i < 100; ++i) sys.cpu->tick();
  EXPECT_FALSE(sys.cpu->halted()) << "WFI must idle without an interrupt";
  sys.cpu->set_irq(true);
  for (int i = 0; i < 100 && !sys.cpu->halted(); ++i) sys.cpu->tick();
  EXPECT_TRUE(sys.cpu->halted());
  EXPECT_EQ(sys.cpu->read_reg(a0), 1u);
}

TEST(CpuTest, ExternalInterruptTrapsWhenEnabled) {
  Assembler as;
  as.li(t0, 0x80000000u + 64);
  as.csrrw(zero, kCsrMtvec, t0);
  as.li(t0, 1u << 11);  // MEIE
  as.csrrw(zero, kCsrMie, t0);
  as.li(t0, 1u << 3);  // MIE
  as.csrrs(zero, kCsrMstatus, t0);
  as.label("spin");
  as.j("spin");
  while (as.current_address() < 0x80000000u + 64) as.nop();
  as.label("handler");
  as.csrrs(a1, kCsrMcause, zero);
  as.ebreak();
  MiniSystem sys(as);
  for (int i = 0; i < 50; ++i) sys.cpu->tick();
  sys.cpu->set_irq(true);
  for (int i = 0; i < 50 && !sys.cpu->halted(); ++i) sys.cpu->tick();
  EXPECT_TRUE(sys.cpu->halted());
  EXPECT_EQ(sys.cpu->read_reg(a1), 0x8000000Bu);
}

TEST(CpuTest, RegfileFaultHooks) {
  Assembler as;
  as.li(a0, 0);
  as.ebreak();
  MiniSystem sys(as);
  sys.run();
  sys.cpu->flip_reg_bit(10, 3);
  EXPECT_EQ(sys.cpu->read_reg(10), 8u);
  sys.cpu->set_reg_stuck_bit(10, 0, true);
  EXPECT_EQ(sys.cpu->read_reg(10), 9u);
  sys.cpu->clear_faults();
  EXPECT_EQ(sys.cpu->read_reg(10), 8u);
}

TEST(CpuTest, CounterCsrHighWordsReadable) {
  // Guest code reading the 64-bit counters must see the high words in
  // mcycleh/minstreth (0xB80/0xB82) rather than silently reading 0.
  Assembler as;
  as.csrrs(a0, kCsrMcycle, zero);
  as.csrrs(a1, kCsrMcycleH, zero);
  as.csrrs(a2, kCsrMinstret, zero);
  as.csrrs(a3, kCsrMinstretH, zero);
  as.ebreak();
  MiniSystem sys(as);
  sys.cpu->set_counters(0x0000000512345678ULL, 0x00000002AABBCCDDULL);
  sys.run(0x0000000512345678ULL + 100);  // budget is an absolute cycle count
  // The first csrrs retires after one cycle: low words advance past the
  // preset values while the high words stay put.
  EXPECT_EQ(sys.cpu->read_reg(a0), 0x12345679u);
  EXPECT_EQ(sys.cpu->read_reg(a1), 5u);
  EXPECT_EQ(sys.cpu->read_reg(a2), 0xAABBCCDFu);
  EXPECT_EQ(sys.cpu->read_reg(a3), 2u);
}

TEST(SystemTest, CounterProbeWorkloadStoresBothWords) {
  SystemConfig sc;
  System system(sc);
  system.load_program(build_counter_probe(sc, 0x40000));
  const auto result = system.run();
  ASSERT_EQ(result.halt, Halt::kEcallExit);
  std::uint32_t words[4];
  system.read_dram(0x40000, words, sizeof(words));
  EXPECT_GT(words[0], 0u);             // mcycle low
  EXPECT_EQ(words[1], 0u);             // mcycle high (short run)
  EXPECT_GT(words[2], 0u);             // minstret low
  EXPECT_EQ(words[3], 0u);             // minstret high
}

TEST(CpuTest, CyclesExceedInstret) {
  Assembler as;
  as.li(t0, 0x80010000u);
  as.lw(a0, t0, 0);  // memory latency makes cycles > instret
  as.ebreak();
  MiniSystem sys(as, CpuConfig{});
  sys.run();
  EXPECT_GT(sys.cpu->cycles(), sys.cpu->instret());
}

// ---------------------------------------------------------------- dma

TEST(DmaTest, CopiesBlockAndRaisesIrq) {
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  const std::uint8_t pattern[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ram.load(0, pattern, 8);
  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000100u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 8, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                  DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn, 4);
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  EXPECT_FALSE(dma.busy());
  EXPECT_TRUE(dma.irq_pending());
  std::uint8_t out[8];
  ram.read_block(0x100, out, 8);
  EXPECT_EQ(0, memcmp(pattern, out, 8));
  // Clearing DONE clears the IRQ.
  (void)bus.write(0x40000000u + DmaEngine::kRegStatus, DmaEngine::kStatusDone,
                  4);
  EXPECT_FALSE(dma.irq_pending());
}

TEST(DmaTest, BulkCycleCountMatchesTickingExhaustively) {
  // The event-driven System trusts bulk_cycles_remaining() to predict
  // the exact completion cycle of a bulk-movable transfer; sweep beat
  // widths, alignments and lengths and pin the closed form against
  // per-cycle ticking.
  for (const unsigned beat : {1u, 2u, 3u, 4u, 6u, 8u}) {
    for (std::uint32_t src_off = 0; src_off < 4; ++src_off) {
      for (std::uint32_t dst_off = 0; dst_off < 4; ++dst_off) {
        for (std::uint32_t len : {1u, 3u, 4u, 5u, 7u, 8u, 13u, 32u, 61u,
                                  64u, 100u}) {
          Bus bus(0);
          Memory ram("ram", 4096, 1);
          bus.attach(0x80000000u, 4096, &ram);
          DmaEngine dma(bus, beat);
          bus.attach(0x40000000u, 0x1000, &dma);
          (void)bus.write(0x40000000u + DmaEngine::kRegSrc,
                          0x80000000u + src_off, 4);
          (void)bus.write(0x40000000u + DmaEngine::kRegDst,
                          0x80000800u + dst_off, 4);
          (void)bus.write(0x40000000u + DmaEngine::kRegLen, len, 4);
          (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                          DmaEngine::kCtrlStart, 4);
          const std::uint64_t predicted = dma.bulk_cycles_remaining();
          ASSERT_GT(predicted, 0u);
          std::uint64_t ticked = 0;
          while (dma.busy()) {
            dma.tick();
            ++ticked;
            ASSERT_LT(ticked, 10000u);
          }
          EXPECT_EQ(predicted, ticked)
              << "beat=" << beat << " src_off=" << src_off
              << " dst_off=" << dst_off << " len=" << len;
        }
      }
    }
  }
}

TEST(DmaTest, FaultMidTransferLatchesErrorAndRaisesIrq) {
  // A transfer whose destination runs past the mapped region must abort:
  // BUSY drops, ERROR latches (DONE stays clear) and the IRQ line rises
  // when IRQ_EN is set — guest code polling STATUS or parked in WFI
  // observes the abort instead of spinning forever.
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000FF8u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 16, 4);  // crosses end
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                  DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn, 4);
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  EXPECT_FALSE(dma.busy());
  EXPECT_TRUE(dma.irq_pending());
  const std::uint32_t status = bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value;
  EXPECT_EQ(status & DmaEngine::kStatusError, DmaEngine::kStatusError);
  EXPECT_EQ(status & DmaEngine::kStatusDone, 0u);
  EXPECT_EQ(status & DmaEngine::kStatusBusy, 0u);

  // ERROR is W1C like DONE: clearing it also drops the IRQ.
  (void)bus.write(0x40000000u + DmaEngine::kRegStatus, DmaEngine::kStatusError,
                  4);
  EXPECT_FALSE(dma.irq_pending());
  EXPECT_EQ(bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value &
                DmaEngine::kStatusError,
            0u);
}

TEST(DmaTest, StartClearsLatchedError) {
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  // Fault once (source past the mapped region this time).
  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80001000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 8, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl, DmaEngine::kCtrlStart, 4);
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  ASSERT_EQ(bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value &
                DmaEngine::kStatusError,
            DmaEngine::kStatusError);

  // A new valid START clears the latched ERROR without a STATUS write.
  const std::uint8_t pattern[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  ram.load(0, pattern, 8);
  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000100u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl, DmaEngine::kCtrlStart, 4);
  EXPECT_EQ(bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value &
                DmaEngine::kStatusError,
            0u);
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  const std::uint32_t status = bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value;
  EXPECT_EQ(status & DmaEngine::kStatusDone, DmaEngine::kStatusDone);
  EXPECT_EQ(status & DmaEngine::kStatusError, 0u);
  std::uint8_t out[8];
  ram.read_block(0x100, out, 8);
  EXPECT_EQ(0, memcmp(pattern, out, 8));
}

TEST(DmaTest, ErrorLatchLifecycle) {
  // Pin the full ERROR-latch contract: reads never clear it, STATUS W1C
  // is per-bit, a zero STATUS write is a no-op, a START that does not
  // actually launch (len == 0) leaves the latch alone, and checkpoints
  // carry the latch through snapshot/restore.
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  const auto status = [&] {
    return bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value;
  };

  // Latch ERROR via an unmapped source, IRQ enabled.
  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80001000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 8, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                  DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn, 4);
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  ASSERT_EQ(status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
  ASSERT_TRUE(dma.irq_pending());

  // STATUS is a latch, not a read-to-clear register.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
  EXPECT_TRUE(dma.irq_pending());

  // Writing 0 acknowledges nothing.
  (void)bus.write(0x40000000u + DmaEngine::kRegStatus, 0, 4);
  EXPECT_EQ(status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
  EXPECT_TRUE(dma.irq_pending());

  // W1C is per-bit: acknowledging DONE drops the IRQ line but must not
  // swallow the ERROR cause a handler has not looked at yet.
  (void)bus.write(0x40000000u + DmaEngine::kRegStatus, DmaEngine::kStatusDone,
                  4);
  EXPECT_EQ(status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
  EXPECT_FALSE(dma.irq_pending());

  // A START that does not launch (len == 0) leaves the latch alone.
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 0, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl, DmaEngine::kCtrlStart, 4);
  EXPECT_FALSE(dma.busy());
  EXPECT_EQ(status() & DmaEngine::kStatusError, DmaEngine::kStatusError);

  // Checkpoint-ladder campaigns restore DMA state mid-trial; the latch
  // must survive the round trip so a post-restore guest still sees it.
  const DmaEngine::Snapshot snap = dma.snapshot();
  DmaEngine twin(bus, 4);
  twin.restore(snap);
  EXPECT_EQ(twin.read(DmaEngine::kRegStatus, 4) & DmaEngine::kStatusError,
            DmaEngine::kStatusError);

  // Finally the documented acknowledge: W1C of ERROR clears it for good.
  (void)bus.write(0x40000000u + DmaEngine::kRegStatus, DmaEngine::kStatusError,
                  4);
  EXPECT_EQ(status() & DmaEngine::kStatusError, 0u);
  EXPECT_EQ(status(), 0u);
}

TEST(DmaTest, AdjacentRangesTakeBulkPath) {
  // dst == src + len: the ranges touch but do not overlap, so the bulk
  // mover must accept the transfer. Pin the bulk-moved image and cycle
  // count against per-cycle ticking on an identical twin.
  constexpr std::uint32_t kLen = 64;
  const auto setup = [](Bus& bus, Memory& ram, DmaEngine& dma) {
    bus.attach(0x80000000u, 4096, &ram);
    bus.attach(0x40000000u, 0x1000, &dma);
    for (std::uint32_t i = 0; i < kLen; ++i) {
      const std::uint8_t b = static_cast<std::uint8_t>(i * 7 + 3);
      ram.load(i, &b, 1);
    }
    (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80000000u, 4);
    (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000000u + kLen, 4);
    (void)bus.write(0x40000000u + DmaEngine::kRegLen, kLen, 4);
    (void)bus.write(0x40000000u + DmaEngine::kRegCtrl, DmaEngine::kCtrlStart,
                    4);
  };

  Bus bus_a(0);
  Memory ram_a("ram", 4096, 1);
  DmaEngine dma_a(bus_a, 4);
  setup(bus_a, ram_a, dma_a);
  const std::uint64_t predicted = dma_a.bulk_cycles_remaining();
  ASSERT_GT(predicted, 0u) << "adjacent ranges must be bulk-movable";
  dma_a.skip_cycles(predicted);
  EXPECT_FALSE(dma_a.busy());

  Bus bus_b(0);
  Memory ram_b("ram", 4096, 1);
  DmaEngine dma_b(bus_b, 4);
  setup(bus_b, ram_b, dma_b);
  std::uint64_t ticked = 0;
  while (dma_b.busy()) {
    dma_b.tick();
    ++ticked;
    ASSERT_LT(ticked, 10000u);
  }
  EXPECT_EQ(predicted, ticked);

  std::uint8_t img_a[2 * kLen], img_b[2 * kLen];
  ram_a.read_block(0, img_a, sizeof(img_a));
  ram_b.read_block(0, img_b, sizeof(img_b));
  EXPECT_EQ(0, memcmp(img_a, img_b, sizeof(img_a)));
  EXPECT_EQ(0, memcmp(img_a, img_a + kLen, kLen)) << "copy must be exact";
}

TEST(DmaTest, ZeroLengthStartIsIgnored) {
  // LEN == 0 has nothing to move: START must not latch BUSY (the
  // event-driven System would otherwise wait on a transfer that never
  // completes), and a subsequent nonzero transfer must run normally.
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  (void)bus.write(0x40000000u + DmaEngine::kRegSrc, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000100u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 0, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                  DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn, 4);
  EXPECT_FALSE(dma.busy());
  EXPECT_FALSE(dma.irq_pending());
  EXPECT_EQ(dma.bulk_cycles_remaining(), 0u);
  dma.tick();
  EXPECT_EQ(bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value, 0u);

  const std::uint8_t pattern[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  ram.load(0, pattern, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, 4, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl,
                  DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn, 4);
  EXPECT_TRUE(dma.busy());
  for (int i = 0; i < 100 && dma.busy(); ++i) dma.tick();
  EXPECT_TRUE(dma.irq_pending());
  std::uint8_t out[4];
  ram.read_block(0x100, out, 4);
  EXPECT_EQ(0, memcmp(pattern, out, 4));
}

TEST(DmaTest, SourceWindowEndingExactlyAtRegionEnd) {
  // src + len == window base + size: the final beat reads the last
  // mapped byte. The bulk path must accept this (the remainder is fully
  // covered) and the transfer must complete without a fault.
  constexpr std::uint32_t kLen = 64;
  Bus bus(0);
  Memory ram("ram", 4096, 1);
  bus.attach(0x80000000u, 4096, &ram);
  DmaEngine dma(bus, 4);
  bus.attach(0x40000000u, 0x1000, &dma);

  std::uint8_t pattern[kLen];
  for (std::uint32_t i = 0; i < kLen; ++i)
    pattern[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  ram.load(4096 - kLen, pattern, kLen);
  (void)bus.write(0x40000000u + DmaEngine::kRegSrc,
                  0x80000000u + 4096 - kLen, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegDst, 0x80000000u, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegLen, kLen, 4);
  (void)bus.write(0x40000000u + DmaEngine::kRegCtrl, DmaEngine::kCtrlStart, 4);
  const std::uint64_t predicted = dma.bulk_cycles_remaining();
  ASSERT_GT(predicted, 0u) << "window-exact source must be bulk-movable";
  std::uint64_t ticked = 0;
  while (dma.busy()) {
    dma.tick();
    ++ticked;
    ASSERT_LT(ticked, 10000u);
  }
  EXPECT_EQ(predicted, ticked);
  const std::uint32_t status = bus.read(0x40000000u + DmaEngine::kRegStatus, 4).value;
  EXPECT_EQ(status & DmaEngine::kStatusDone, DmaEngine::kStatusDone);
  EXPECT_EQ(status & DmaEngine::kStatusError, 0u);
  std::uint8_t out[kLen];
  ram.read_block(0, out, kLen);
  EXPECT_EQ(0, memcmp(pattern, out, kLen));
}

// ------------------------------------------------------------ accelerator

AcceleratorConfig small_accel() {
  AcceleratorConfig cfg;
  cfg.gemm.mvm.ports = 8;
  cfg.max_cols = 16;
  return cfg;
}

TEST(AcceleratorTest, FixedPointRoundTrip) {
  EXPECT_EQ(PhotonicAccelerator::to_fixed(0.5), 0x800);
  EXPECT_NEAR(PhotonicAccelerator::from_fixed(
                  PhotonicAccelerator::to_fixed(-1.25)),
              -1.25, 1e-3);
  EXPECT_EQ(PhotonicAccelerator::to_fixed(100.0), 32767);  // saturates
  EXPECT_EQ(PhotonicAccelerator::to_fixed(-100.0), -32768);
}

TEST(AcceleratorTest, HostDrivenGemmMatchesGolden) {
  PhotonicAccelerator accel(small_accel());
  const std::size_t n = 8, m = 4;
  GemmWorkload wl;
  wl.n = n;
  wl.m = m;

  std::vector<std::int16_t> a(n * n), x(n * m);
  aspen::lina::Rng rng(5);
  for (auto& v : a)
    v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  for (auto& v : x)
    v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));

  for (std::size_t i = 0; i < a.size(); ++i)
    accel.write(PhotonicAccelerator::kSpmWBase +
                    static_cast<std::uint32_t>(2 * i),
                static_cast<std::uint16_t>(a[i]), 2);
  for (std::size_t i = 0; i < x.size(); ++i)
    accel.write(PhotonicAccelerator::kSpmXBase +
                    static_cast<std::uint32_t>(2 * i),
                static_cast<std::uint16_t>(x[i]), 2);
  accel.write(PhotonicAccelerator::kRegCols, m, 4);
  accel.write(PhotonicAccelerator::kRegCtrl,
              PhotonicAccelerator::kCtrlStart |
                  PhotonicAccelerator::kCtrlLoadWeights,
              4);
  EXPECT_TRUE(accel.busy());
  for (int i = 0; i < 1000000 && accel.busy(); ++i) accel.tick();
  EXPECT_FALSE(accel.busy());
  EXPECT_EQ(accel.read(PhotonicAccelerator::kRegStatus, 4) &
                PhotonicAccelerator::kStatusDone,
            PhotonicAccelerator::kStatusDone);

  const auto golden = golden_gemm(wl, a, x);
  int max_lsb_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto got = static_cast<std::int16_t>(
        accel.read(PhotonicAccelerator::kSpmYBase +
                       static_cast<std::uint32_t>(2 * i),
                   2));
    max_lsb_err = std::max(max_lsb_err, std::abs(got - golden[i]));
  }
  // Analog compute + Q3.12 boundary conversion: worst case a few LSB.
  EXPECT_LE(max_lsb_err, 4);
}

TEST(AcceleratorTest, ColsRegisterClamped) {
  PhotonicAccelerator accel(small_accel());
  accel.write(PhotonicAccelerator::kRegCols, 9999, 4);
  EXPECT_EQ(accel.read(PhotonicAccelerator::kRegCols, 4), 1u)
      << "out-of-range writes are ignored";
  accel.write(PhotonicAccelerator::kRegCols, 8, 4);
  EXPECT_EQ(accel.read(PhotonicAccelerator::kRegCols, 4), 8u);
}

TEST(AcceleratorTest, ThermoSlowerProgrammingThanPcm) {
  AcceleratorConfig thermo = small_accel();
  thermo.gemm.mvm.weights = aspen::core::WeightTechnology::kThermoOptic;
  AcceleratorConfig pcm = small_accel();
  pcm.gemm.mvm.weights = aspen::core::WeightTechnology::kPcm;
  PhotonicAccelerator at(thermo), ap(pcm);
  const auto kick = [](PhotonicAccelerator& acc) {
    acc.write(PhotonicAccelerator::kRegCtrl,
              PhotonicAccelerator::kCtrlLoadWeights, 4);
    std::uint64_t cycles = 0;
    while (acc.busy()) {
      acc.tick();
      ++cycles;
    }
    return cycles;
  };
  EXPECT_GT(kick(at), kick(ap))
      << "thermo-optic settling (~10 us) >> PCM write (~110 ns)";
}

// ----------------------------------------------------------- full system

std::vector<std::int16_t> random_fixed(std::size_t count, double lim,
                                       std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-lim, lim));
  return v;
}

TEST(SystemTest, SoftwareGemmMatchesGoldenExactly) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  System system(sc);
  const auto a = random_fixed(wl.n * wl.n, 0.9, 1);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 2);
  stage_gemm_data(system, wl, a, x);
  system.load_program(build_gemm_software(wl, sc));
  const auto result = system.run();
  EXPECT_EQ(result.halt, Halt::kEcallExit);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(read_gemm_result(system, wl), golden_gemm(wl, a, x));
}

class OffloadTest : public ::testing::TestWithParam<OffloadPath> {};

TEST_P(OffloadTest, OffloadMatchesGoldenWithinTolerance) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  System system(sc);
  const auto a = random_fixed(wl.n * wl.n, 0.9, 3);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 4);
  stage_gemm_data(system, wl, a, x);
  system.load_program(build_gemm_offload(wl, sc, GetParam()));
  const auto result = system.run();
  ASSERT_EQ(result.halt, Halt::kEcallExit) << "timed_out=" << result.timed_out;

  const auto golden = golden_gemm(wl, a, x);
  const auto got = read_gemm_result(system, wl);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - golden[i]));
  EXPECT_LE(max_err, 4) << "analog vs integer rounding";
}

INSTANTIATE_TEST_SUITE_P(Paths, OffloadTest,
                         ::testing::Values(OffloadPath::kMmrPolling,
                                           OffloadPath::kMmrInterrupt,
                                           OffloadPath::kDmaInterrupt));

class OffloadWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OffloadWidthTest, AllWidthsMatchGolden) {
  // Property sweep: the offload path must be correct for any column
  // count, including single-column and SPM-filling widths.
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = GetParam();
  System system(sc);
  const auto a = random_fixed(wl.n * wl.n, 0.9, 100 + wl.m);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 200 + wl.m);
  stage_gemm_data(system, wl, a, x);
  system.load_program(
      build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt));
  const auto result = system.run();
  ASSERT_EQ(result.halt, Halt::kEcallExit) << "m=" << wl.m;
  const auto golden = golden_gemm(wl, a, x);
  const auto got = read_gemm_result(system, wl);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - golden[i]));
  EXPECT_LE(max_err, 4) << "m=" << wl.m;
}

INSTANTIATE_TEST_SUITE_P(Widths, OffloadWidthTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16));

TEST(SystemTest, DmaOffloadFasterThanMmrCopyLoops) {
  SystemConfig sc;
  sc.accel = small_accel();
  sc.accel.gemm.mvm.weights = aspen::core::WeightTechnology::kPcm;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 16;

  const auto a = random_fixed(wl.n * wl.n, 0.9, 5);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 6);

  const auto run_path = [&](OffloadPath p) {
    System system(sc);
    stage_gemm_data(system, wl, a, x);
    system.load_program(build_gemm_offload(wl, sc, p));
    return system.run().cycles;
  };
  EXPECT_LT(run_path(OffloadPath::kDmaInterrupt),
            run_path(OffloadPath::kMmrPolling));
}

TEST(SystemTest, MultiPePartitionsWork) {
  SystemConfig sc;
  sc.accel = small_accel();
  sc.num_pes = 2;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  System system(sc);
  const auto a = random_fixed(wl.n * wl.n, 0.9, 7);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 8);
  stage_gemm_data(system, wl, a, x);
  system.load_program(build_gemm_multi_pe(wl, sc));
  const auto result = system.run();
  ASSERT_EQ(result.halt, Halt::kEcallExit);

  const auto golden = golden_gemm(wl, a, x);
  const auto got = read_gemm_result(system, wl);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - golden[i]));
  EXPECT_LE(max_err, 4);
}

TEST(SystemTest, StreamingOffloadMatchesGolden) {
  // Weights programmed once, four tiles streamed through the PE: the
  // result must equal one wide GEMM over all tiles.
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload tile;
  tile.n = 8;
  tile.m = 4;
  const std::size_t batches = 4;
  GemmWorkload full = tile;
  full.m = tile.m * batches;

  System system(sc);
  const auto a = random_fixed(full.n * full.n, 0.9, 21);
  const auto x = random_fixed(full.n * full.m, 0.9, 22);
  stage_gemm_data(system, full, a, x);
  system.load_program(build_gemm_offload_stream(
      tile, sc, OffloadPath::kMmrInterrupt, batches));
  const auto result = system.run();
  ASSERT_EQ(result.halt, Halt::kEcallExit) << "timed_out=" << result.timed_out;

  const auto golden = golden_gemm(full, a, x);
  const auto got = read_gemm_result(system, full);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - golden[i]));
  EXPECT_LE(max_err, 4);
}

// ---------------------------------------------------------------- faults

FaultCampaign::SystemFactory make_factory(const SystemConfig& sc,
                                          const GemmWorkload& wl,
                                          std::vector<std::int16_t> a,
                                          std::vector<std::int16_t> x,
                                          OffloadPath path) {
  return [=]() {
    auto system = std::make_unique<System>(sc);
    stage_gemm_data(*system, wl, a, x);
    system->load_program(build_gemm_offload(wl, sc, path));
    return system;
  };
}

TEST(FaultTest, GoldenRunIsStable) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  FaultCampaign campaign(
      make_factory(sc, wl, random_fixed(64, 0.9, 9), random_fixed(32, 0.9, 10),
                   OffloadPath::kMmrPolling),
      [wl](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      500000);
  EXPECT_FALSE(campaign.golden().empty());
  EXPECT_GT(campaign.golden_cycles(), 0u);
}

TEST(FaultTest, OutcomesClassified) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  FaultCampaign campaign(
      make_factory(sc, wl, random_fixed(64, 0.9, 11),
                   random_fixed(32, 0.9, 12), OffloadPath::kMmrPolling),
      [wl](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      500000);

  aspen::lina::Rng rng(13);
  const auto res = campaign.run_campaign(FaultTarget::kCpuRegfile,
                                         FaultModel::kTransientFlip, 20, rng);
  EXPECT_EQ(res.total, 20);
  int sum = 0;
  for (const auto& [o, c] : res.counts) sum += c;
  EXPECT_EQ(sum, 20);
  // Transient regfile flips on a mostly-idle workload: some must be
  // masked (dead registers / already-consumed values).
  EXPECT_GT(res.fraction(Outcome::kMasked), 0.0);
}

TEST(FaultTest, SpmWeightFaultCausesSdcNotCrash) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  FaultCampaign campaign(
      make_factory(sc, wl, random_fixed(64, 0.9, 14),
                   random_fixed(32, 0.9, 15), OffloadPath::kMmrPolling),
      [wl](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      500000);
  // A high-bit stuck-at fault in the weight SPM, injected at cycle 1 so it
  // lands before LOAD_WEIGHTS consumes the SPM.
  FaultSpec spec;
  spec.target = FaultTarget::kAccelSpmW;
  spec.model = FaultModel::kStuckAt1;
  spec.cycle = 1;
  spec.index = 3;
  spec.bit = 6;
  const Outcome o = campaign.run_one(spec);
  EXPECT_TRUE(o == Outcome::kSdc || o == Outcome::kMasked);
}

TEST(FaultTest, PhaseFaultDegradesOutput) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  FaultCampaign campaign(
      make_factory(sc, wl, random_fixed(64, 0.9, 16),
                   random_fixed(32, 0.9, 17), OffloadPath::kMmrPolling),
      [wl](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      500000);
  // A large phase upset injected mid-run (after programming): the analog
  // result shifts -> SDC expected, never a crash.
  FaultSpec spec;
  spec.target = FaultTarget::kAccelPhase;
  spec.model = FaultModel::kTransientFlip;
  spec.cycle = campaign.golden_cycles() / 2;
  spec.index = 5;
  spec.phase_delta_rad = 1.0;
  const Outcome o = campaign.run_one(spec);
  EXPECT_TRUE(o == Outcome::kSdc || o == Outcome::kMasked);
}

FaultCampaign make_small_campaign(std::uint64_t seed_a, std::uint64_t seed_x,
                                  std::uint64_t max_cycles = 500000) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  return FaultCampaign(
      make_factory(sc, wl, random_fixed(64, 0.9, seed_a),
                   random_fixed(32, 0.9, seed_x), OffloadPath::kMmrPolling),
      [wl](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      max_cycles);
}

TEST(FaultTest, SampleSpecsHonorIndexBoundsForEveryTarget) {
  // index_lo/index_hi must constrain every target — the regfile and
  // phase targets used to ignore them and sample the whole structure.
  FaultCampaign campaign = make_small_campaign(31, 32);
  aspen::lina::Rng rng(33);
  const std::uint64_t window = campaign.golden_cycles();

  const auto check_bounds = [&](FaultTarget target, std::uint32_t lo,
                                std::uint32_t hi) {
    const auto specs = campaign.sample_specs(
        target, FaultModel::kTransientFlip, 40, rng, lo, hi);
    ASSERT_EQ(specs.size(), 40u);
    for (const FaultSpec& s : specs) {
      EXPECT_GE(s.index, lo) << to_string(target);
      EXPECT_LE(s.index, hi) << to_string(target);
      EXPECT_LE(s.cycle, window) << "closed injection window";
    }
  };
  check_bounds(FaultTarget::kCpuRegfile, 4, 9);
  check_bounds(FaultTarget::kAccelPhase, 2, 5);
  check_bounds(FaultTarget::kDramData, 0x100, 0x1FF);
  check_bounds(FaultTarget::kAccelSpmW, 8, 15);

  // An oversized hi clamps to the structure (31 regfile entries: index
  // i = x(i+1), so max index 30).
  const auto clamped = campaign.sample_specs(
      FaultTarget::kCpuRegfile, FaultModel::kTransientFlip, 40, rng, 0, 1000);
  for (const FaultSpec& s : clamped) EXPECT_LE(s.index, 30u);

  // An empty clamped range is an error, not a silent whole-structure
  // default: lo > hi directly, and lo past the structure end.
  EXPECT_THROW((void)campaign.sample_specs(FaultTarget::kCpuRegfile,
                                           FaultModel::kTransientFlip, 4, rng,
                                           20, 5),
               std::invalid_argument);
  EXPECT_THROW((void)campaign.sample_specs(FaultTarget::kCpuRegfile,
                                           FaultModel::kTransientFlip, 4, rng,
                                           31, 0),
               std::invalid_argument);
  EXPECT_THROW((void)campaign.sample_specs(FaultTarget::kAccelPhase,
                                           FaultModel::kTransientFlip, 4, rng,
                                           100000, 0),
               std::invalid_argument);
}

TEST(FaultTest, InjectionCycleWindowIsClosedAndBudgetBounded) {
  FaultCampaign campaign = make_small_campaign(34, 35);
  const std::uint64_t window = campaign.golden_cycles();
  ASSERT_GT(window, 0u);

  // Both window endpoints are legal injection points: cycle 0 lands
  // before the first executed cycle, golden_cycles() exactly at
  // completion (trivially masked — the run already finished).
  FaultSpec spec;
  spec.target = FaultTarget::kCpuRegfile;
  spec.model = FaultModel::kTransientFlip;
  spec.index = 5;
  spec.bit = 0;
  spec.cycle = 0;
  const Outcome at_start = campaign.run_one(spec);
  (void)at_start;  // any verdict is legal; the call must not throw
  spec.cycle = window;
  EXPECT_EQ(campaign.run_one(spec), Outcome::kMasked)
      << "a flip at the completion cycle can no longer corrupt the output";

  // Beyond the cycle budget the fault can never be injected: rejected
  // loudly instead of silently applied after completion.
  spec.cycle = 500001;
  EXPECT_THROW((void)campaign.run_one(spec), std::invalid_argument);
}

TEST(FaultTest, LadderVerdictsMatchRung0Oracle) {
  // The checkpoint ladder is a pure restore-path optimization: verdicts
  // must be bit-identical to the restore-from-cycle-0 oracle, serially
  // and across a thread pool.
  FaultCampaign campaign = make_small_campaign(36, 37);
  aspen::lina::Rng rng(38);
  std::vector<FaultSpec> specs;
  for (const FaultTarget t :
       {FaultTarget::kCpuRegfile, FaultTarget::kDramData,
        FaultTarget::kAccelSpmW, FaultTarget::kAccelPhase}) {
    const auto s = campaign.sample_specs(t, FaultModel::kTransientFlip, 8, rng);
    specs.insert(specs.end(), s.begin(), s.end());
  }

  const std::vector<Outcome> oracle = campaign.run_trials(specs, 1);
  campaign.build_ladder(8);
  ASSERT_EQ(campaign.ladder_rungs(), 8u);
  const std::vector<Outcome> laddered = campaign.run_trials(specs, 1);
  EXPECT_EQ(oracle, laddered) << "ladder changed a verdict";
  const std::vector<Outcome> threaded = campaign.run_trials(specs, 4);
  EXPECT_EQ(oracle, threaded) << "ladder + threads changed a verdict";
  campaign.build_ladder(1);  // tear down: back to the rung-0 path
  EXPECT_EQ(campaign.ladder_rungs(), 0u);
  EXPECT_EQ(oracle, campaign.run_trials(specs, 1));
}

// --------------------------------------- cached-code extent arithmetic

TEST(ByteExtentTest, ExactEdgesNoSlack) {
  ByteExtent e;
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.overlaps(0, 4));
  e.grow(0x100, 0x140);  // covers [0x100, 0x140)
  EXPECT_FALSE(e.empty());
  // Spans ending exactly at lo or starting exactly at hi do not touch.
  EXPECT_FALSE(e.overlaps(0xFC, 4));
  EXPECT_FALSE(e.overlaps(0x140, 4));
  // One byte inside either edge does.
  EXPECT_TRUE(e.overlaps(0xFD, 4));
  EXPECT_TRUE(e.overlaps(0x13F, 1));
  // Halfword spans landing exactly on either edge.
  EXPECT_TRUE(e.overlaps(0x13E, 2));
  EXPECT_TRUE(e.overlaps(0xFF, 2));
  EXPECT_FALSE(e.overlaps(0xFE, 2));
  // Zero-length spans never overlap.
  EXPECT_FALSE(e.overlaps(0x120, 0));
}

TEST(ByteExtentTest, TopOfAddressSpaceDoesNotWrap) {
  ByteExtent e;
  e.grow(0xFFFFFFF0u, 0xFFFFFFF8u);
  EXPECT_TRUE(e.overlaps(0xFFFFFFF4u, 0x10));  // span runs past 2^32
  EXPECT_FALSE(e.overlaps(0xFFFFFFF8u, 0xFF));
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.overlaps(0xFFFFFFF4u, 0x10));
}

TEST(ByteExtentTest, HalfwordStoreOnTailOfCachedInstructionRedecodes) {
  // sh whose two bytes cover only the upper half of an already-executed
  // instruction: the exact [lo, hi) extent arithmetic must still evict
  // and re-decode it in both the micro-op cache and the block cache (a
  // rounding or slack bug here silently executes stale code).
  SystemConfig sc;
  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);
  // addi a0,zero,11 and addi a0,zero,77 differ only in the upper half.
  const std::uint32_t hi_half = enc.assemble()[0] >> 16;

  // li expansion length depends on the patch address: fixed point.
  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.li(t0, patch_addr);
    as.li(t1, hi_half);
    as.li(s0, 0);
    as.li(s1, 2);
    as.label("loop");
    as.label("patch");
    as.addi(a0, zero, 11);
    as.sh(t1, t0, 2);  // touches only bytes [patch+2, patch+4)
    as.addi(s0, s0, 1);
    as.blt(s0, s1, "loop");
    as.ebreak();
    const std::uint32_t found = as.address_of("patch");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  System system(sc);
  system.load_program(program);
  const System::RunResult res = system.run();
  EXPECT_EQ(res.halt, Halt::kEbreak);
  EXPECT_EQ(system.cpu().read_reg(10), 77u)
      << "patched upper half must be re-decoded on the next iteration";
}

}  // namespace
