// Unit tests for the photonic device substrate (S2): materials, PCM cells,
// phase shifters, couplers, MZIs, modulators, detectors, lasers, budgets.
#include <gtest/gtest.h>

#include <cmath>

#include "photonics/coupler.hpp"
#include "photonics/laser.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/material.hpp"
#include "photonics/modulator.hpp"
#include "photonics/mzi.hpp"
#include "photonics/pcm_cell.hpp"
#include "photonics/phase_shifter.hpp"
#include "photonics/photodetector.hpp"
#include "lina/stats.hpp"
#include "photonics/units.hpp"

namespace {

using namespace aspen::phot;
using aspen::lina::Rng;

constexpr double kPi = 3.14159265358979323846;

TEST(UnitsTest, DbmRoundTrip) {
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(watt_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(10.0), 10e-3, 1e-12);
  EXPECT_NEAR(watt_to_dbm(dbm_to_watt(-17.3)), -17.3, 1e-10);
}

TEST(UnitsTest, LossAmplitude) {
  // 3 dB power loss ~ amplitude factor 1/sqrt(2).
  EXPECT_NEAR(loss_db_to_amplitude(3.0103), 1.0 / std::sqrt(2.0), 1e-4);
  EXPECT_DOUBLE_EQ(loss_db_to_amplitude(0.0), 1.0);
}

TEST(UnitsTest, PhotonEnergyAt1550) {
  // ~0.8 eV at 1550 nm.
  const double ev = photon_energy(kTelecomWavelength) / kElementaryCharge;
  EXPECT_NEAR(ev, 0.8, 0.01);
}

TEST(MaterialTest, FigureOfMeritOrdering) {
  // Paper Section 3: GSST and GeSe have larger FOM (delta n / delta k)
  // than the GST-225 baseline; GeSe is the most transparent.
  const double gst = make_gst225().figure_of_merit();
  const double gsst = make_gsst().figure_of_merit();
  const double gese = make_gese().figure_of_merit();
  EXPECT_GT(gsst, gst);
  EXPECT_GT(gese, gsst);
}

TEST(MaterialTest, EffectiveMediumEndpoints) {
  const PcmMaterial m = make_gsst();
  const auto am = m.at_fraction(0.0);
  const auto cr = m.at_fraction(1.0);
  EXPECT_NEAR(am.n, m.amorphous.n, 1e-9);
  EXPECT_NEAR(am.k, m.amorphous.k, 1e-9);
  EXPECT_NEAR(cr.n, m.crystalline.n, 1e-9);
  EXPECT_NEAR(cr.k, m.crystalline.k, 1e-9);
}

TEST(MaterialTest, EffectiveMediumMonotone) {
  const PcmMaterial m = make_gsst();
  double prev_n = -1.0;
  double prev_k = -1.0;
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    const auto oc = m.at_fraction(x);
    EXPECT_GT(oc.n, prev_n);
    EXPECT_GE(oc.k, prev_k);
    prev_n = oc.n;
    prev_k = oc.k;
  }
}

TEST(MaterialTest, LookupByName) {
  EXPECT_EQ(pcm_by_name("GSST").name, "GSST");
  EXPECT_EQ(pcm_by_name("gst").name, "GST-225");
  EXPECT_EQ(pcm_by_name("GeSe").name, "GeSe");
  EXPECT_THROW((void)pcm_by_name("unobtainium"), std::invalid_argument);
}

TEST(PcmCellTest, CoversTwoPiWithDefaultGeometry) {
  PcmCell cell{PcmCellConfig{}};
  EXPECT_GT(cell.max_phase(), 2.0 * kPi);
}

TEST(PcmCellTest, PhaseMonotoneInFraction) {
  PcmCell cell{PcmCellConfig{}};
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    const double p = cell.phase_of_fraction(x);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PcmCellTest, FractionForPhaseInverts) {
  PcmCell cell{PcmCellConfig{}};
  for (double phase : {0.1, 1.0, 2.0, 4.0, 6.0}) {
    const double x = cell.fraction_for_phase(phase);
    EXPECT_NEAR(cell.phase_of_fraction(x), phase, 1e-9);
  }
}

TEST(PcmCellTest, ProgramPhaseQuantizesToLevels) {
  PcmCellConfig cfg;
  cfg.level_bits = 2;  // 4 levels
  PcmCell cell{cfg};
  cell.program_phase(cell.max_phase() * 0.37);
  const double x = cell.fraction();
  // x must be one of {0, 1/3, 2/3, 1}.
  const double scaled = x * 3.0;
  EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

TEST(PcmCellTest, ProgramLevelRangeChecked) {
  PcmCellConfig cfg;
  cfg.level_bits = 3;
  PcmCell cell{cfg};
  EXPECT_THROW(cell.program_level(8), std::invalid_argument);
  EXPECT_THROW(cell.program_level(-1), std::invalid_argument);
  cell.program_level(7);
  EXPECT_NEAR(cell.fraction(), 1.0, 1e-12);
}

TEST(PcmCellTest, AccumulationIntegratesAndSaturates) {
  PcmCellConfig cfg;
  cfg.accumulation_step = 0.25;
  PcmCell cell{cfg};
  cell.accumulate();
  EXPECT_NEAR(cell.fraction(), 0.25, 1e-12);
  cell.accumulate(2.0);
  EXPECT_NEAR(cell.fraction(), 0.75, 1e-12);
  cell.accumulate(5.0);
  EXPECT_NEAR(cell.fraction(), 1.0, 1e-12);  // saturated
}

TEST(PcmCellTest, ResetReturnsToAmorphous) {
  PcmCell cell{PcmCellConfig{}};
  cell.program_fraction(0.8);
  cell.reset();
  EXPECT_DOUBLE_EQ(cell.fraction(), 0.0);
  EXPECT_NEAR(cell.phase(), 0.0, 1e-12);
}

TEST(PcmCellTest, NonVolatileHoldCostsNothingButWritesDo) {
  PcmCell cell{PcmCellConfig{}};
  const double e0 = cell.energy_spent_j();
  cell.program_fraction(0.5);
  const double e1 = cell.energy_spent_j();
  EXPECT_GT(e1, e0);
  cell.advance_time(3600.0);  // hold for an hour: no energy
  EXPECT_DOUBLE_EQ(cell.energy_spent_j(), e1);
}

TEST(PcmCellTest, DriftIsWorstAtIntermediateLevels) {
  PcmCell mid{PcmCellConfig{}};
  mid.program_fraction(0.5);
  const double before = mid.phase();
  mid.advance_time(1e6);
  const double mid_shift = std::abs(mid.phase() - before);
  EXPECT_GT(mid_shift, 0.0);

  PcmCell full{PcmCellConfig{}};
  full.program_fraction(1.0);
  const double f_before = full.phase();
  full.advance_time(1e6);
  EXPECT_NEAR(std::abs(full.phase() - f_before), 0.0, 1e-12);
}

TEST(PcmCellTest, CrystallineStateIsLossier) {
  PcmCell cell{PcmCellConfig{}};
  EXPECT_GT(cell.amplitude_of_fraction(0.0), cell.amplitude_of_fraction(1.0));
  EXPECT_LE(cell.amplitude_of_fraction(0.0), 1.0);
}

TEST(PcmCellTest, WriteNoisePerturbsFraction) {
  PcmCellConfig cfg;
  cfg.write_noise_sigma = 0.02;
  PcmCell cell{cfg};
  Rng rng(3);
  aspen::lina::Stats s;
  for (int i = 0; i < 200; ++i) {
    cell.program_fraction(0.5, &rng);
    s.add(cell.fraction());
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 0.02, 0.008);
}

TEST(PcmPhaseMapTest, QuantizeFindsNearestLevel) {
  PcmCellConfig cfg;
  cfg.level_bits = 6;
  const PcmPhaseMap map(cfg);
  EXPECT_TRUE(map.covers_two_pi());
  const PcmCell probe(cfg);
  for (double phase : {0.3, 1.7, 3.1, 5.9}) {
    const auto q = map.quantize(phase);
    // Quantization error bounded by half the worst level spacing.
    const double worst_step = probe.max_phase() / (map.levels() - 1);
    EXPECT_LE(std::abs(q.phase - phase), worst_step);
    EXPECT_GT(q.amplitude, 0.0);
    EXPECT_LE(q.amplitude, 1.0);
  }
}

TEST(PcmPhaseMapTest, MoreBitsSmallerError) {
  PcmCellConfig lo;
  lo.level_bits = 3;
  PcmCellConfig hi;
  hi.level_bits = 8;
  const PcmPhaseMap mlo(lo), mhi(hi);
  double err_lo = 0.0, err_hi = 0.0;
  for (double p = 0.05; p < 6.2; p += 0.1) {
    err_lo += std::abs(mlo.quantize(p).phase - p);
    err_hi += std::abs(mhi.quantize(p).phase - p);
  }
  EXPECT_LT(err_hi, err_lo / 8.0);
}

TEST(ThermoOpticTest, PowerScalesWithPhase) {
  ThermoOpticPhaseShifter ps;
  ps.set_phase(kPi);
  EXPECT_NEAR(ps.static_power_w(), ps.config().p_pi_w, 1e-12);
  ps.set_phase(kPi / 2.0);
  EXPECT_NEAR(ps.static_power_w(), ps.config().p_pi_w / 2.0, 1e-12);
}

TEST(ThermoOpticTest, HoldingAccumulatesEnergy) {
  ThermoOpticPhaseShifter ps;
  ps.set_phase(kPi);
  const double before = ps.total_energy_j();
  ps.advance_time(1.0);
  EXPECT_NEAR(ps.total_energy_j() - before, ps.config().p_pi_w, 1e-9);
}

TEST(PcmShifterTest, ZeroHoldPowerAndQuantizedPhase) {
  PcmPhaseShifter ps;
  ps.set_phase(1.5);
  EXPECT_DOUBLE_EQ(ps.static_power_w(), 0.0);
  EXPECT_NEAR(ps.phase(), 1.5, 0.1);  // quantized to 64 levels
  EXPECT_GT(ps.write_energy_j(), 0.0);
}

TEST(CouplerTest, IdealFiftyFiftyIsUnitary) {
  DirectionalCoupler dc;
  dc.insertion_loss_db = 0.0;
  const Transfer2 t = dc.transfer();
  EXPECT_TRUE(t.is_unitary(1e-12));
  EXPECT_NEAR(std::norm(t.b), 0.5, 1e-12);
  EXPECT_NEAR(dc.cross_coupling(), 0.5, 1e-12);
}

TEST(CouplerTest, ImbalanceShiftsSplitting) {
  DirectionalCoupler dc;
  dc.delta_eta = 0.1;
  dc.insertion_loss_db = 0.0;
  EXPECT_GT(dc.cross_coupling(), 0.5);
  EXPECT_TRUE(dc.transfer().is_unitary(1e-12));
}

TEST(CouplerTest, LossScalesAmplitude) {
  DirectionalCoupler dc;
  dc.insertion_loss_db = 3.0103;
  const Transfer2 t = dc.transfer();
  EXPECT_NEAR(std::norm(t.a) + std::norm(t.c), 0.5, 1e-4);
}

TEST(MziTest, IdealIsUnitaryForAllPhases) {
  for (double theta = 0.0; theta < 6.3; theta += 0.7)
    for (double phi = 0.0; phi < 6.3; phi += 0.9) {
      EXPECT_TRUE(mzi_ideal(theta, phi).is_unitary(1e-12));
      EXPECT_TRUE(
          mzi_ideal(theta, phi, MziStyle::kSymmetric).is_unitary(1e-12));
    }
}

TEST(MziTest, BarAndCrossStates) {
  // theta = pi: |T_00| = 1 (bar); theta = 0: |T_01| = 1 (cross).
  const Transfer2 bar = mzi_ideal(kPi, 0.0);
  EXPECT_NEAR(std::abs(bar.a), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(bar.b), 0.0, 1e-12);
  const Transfer2 cross = mzi_ideal(0.0, 0.0);
  EXPECT_NEAR(std::abs(cross.a), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cross.b), 1.0, 1e-12);
}

TEST(MziTest, SymmetricEqualsStandardUpToGlobalPhase) {
  const double theta = 1.1, phi = 2.3;
  const Transfer2 std_t = mzi_ideal(theta, phi, MziStyle::kStandard);
  const Transfer2 sym_t = mzi_ideal(theta, phi, MziStyle::kSymmetric);
  const auto g = std::polar(1.0, -(theta + phi) / 2.0);
  EXPECT_LT(std_t.scaled(g).max_abs_diff(sym_t), 1e-12);
}

TEST(MziTest, PhysicalMatchesIdealWithoutImperfections) {
  MziImperfections imp;
  imp.coupler_loss_db = 0.0;
  imp.ps_loss_db = 0.0;
  const Transfer2 phys = mzi_physical(0.8, 1.9, imp);
  EXPECT_LT(phys.max_abs_diff(mzi_ideal(0.8, 1.9)), 1e-12);
}

TEST(MziTest, CouplerErrorBreaksExtinction) {
  MziImperfections imp;
  imp.coupler_loss_db = 0.0;
  imp.ps_loss_db = 0.0;
  imp.coupler1_delta_eta = 0.05;
  imp.coupler2_delta_eta = -0.04;
  // Cross state can no longer be perfect.
  const Transfer2 t = mzi_physical(0.0, 0.0, imp);
  EXPECT_GT(std::abs(t.a), 1e-4);
}

TEST(MziTest, SymmetricCellBalancesStateDependentLoss) {
  // PCM absorption asymmetry distorts a standard cell but only attenuates
  // a symmetric cell (paper Section 3 loss-minimization motivation).
  MziImperfections imp;
  imp.coupler_loss_db = 0.0;
  imp.ps_loss_db = 0.0;
  imp.theta_arm_amplitude = 0.9;
  const Transfer2 std_t = mzi_physical(1.2, 0.0, imp, MziStyle::kStandard);
  const Transfer2 sym_t = mzi_physical(1.2, 0.0, imp, MziStyle::kSymmetric);
  // Symmetric: T = 0.9 * unitary; renormalizing restores unitarity.
  EXPECT_TRUE(sym_t.scaled(1.0 / 0.9).is_unitary(1e-9));
  EXPECT_FALSE(std_t.scaled(1.0 / 0.9).is_unitary(1e-3));
}

TEST(MziTest, NullingZeroesChosenPort) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const aspen::lina::cplx u = rng.cgaussian();
    const aspen::lina::cplx v = rng.cgaussian();
    for (int port : {0, 1}) {
      const auto sol = null_port(u, v, port);
      const Transfer2 t = mzi_ideal(sol.theta, sol.phi);
      const auto out_top = t.a * u + t.b * v;
      const auto out_bot = t.c * u + t.d * v;
      const double nulled = port == 0 ? std::abs(out_top) : std::abs(out_bot);
      EXPECT_LT(nulled, 1e-10) << "trial " << trial << " port " << port;
    }
  }
}

TEST(ModulatorTest, QuantizationRespectsBitDepth) {
  ModulatorConfig cfg;
  cfg.dac_bits = 2;  // levels at -1, -1/3, 1/3, 1
  Modulator mod(cfg);
  EXPECT_NEAR(mod.quantize(0.2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mod.quantize(-0.9), -1.0, 1e-12);
  EXPECT_NEAR(mod.quantize(2.0), 1.0, 1e-12);  // clamped
}

TEST(ModulatorTest, SignBecomesFieldSign) {
  Modulator mod;
  EXPECT_LT(mod.encode(-0.7).real(), 0.0);
  EXPECT_GT(mod.encode(0.7).real(), 0.0);
}

TEST(ModulatorTest, ExtinctionFloorsSmallValues) {
  ModulatorConfig cfg;
  cfg.extinction_ratio_db = 20.0;  // floor amplitude 0.1
  cfg.insertion_loss_db = 0.0;
  Modulator mod(cfg);
  EXPECT_NEAR(std::abs(mod.encode(0.0)), 0.1, 1e-9);
}

TEST(PhotodetectorTest, IdealCurrentLinear) {
  Photodetector pd;
  EXPECT_NEAR(pd.ideal_current(1e-3) - pd.ideal_current(0.0), 1e-3, 1e-12);
}

TEST(PhotodetectorTest, NoiseGrowsWithPower) {
  Photodetector pd;
  EXPECT_GT(pd.noise_rms_a(1e-3), pd.noise_rms_a(1e-6));
}

TEST(PhotodetectorTest, MeasuredCurrentStatistics) {
  Photodetector pd;
  Rng rng(8);
  aspen::lina::Stats s;
  const double p = 1e-4;
  for (int i = 0; i < 5000; ++i) s.add(pd.measure_current(p, rng));
  EXPECT_NEAR(s.mean(), pd.ideal_current(p), 5e-2 * pd.ideal_current(p));
  EXPECT_NEAR(s.stddev(), pd.noise_rms_a(p), 0.1 * pd.noise_rms_a(p));
}

TEST(PhotodetectorTest, SnrIncreasesWithPower) {
  Photodetector pd;
  EXPECT_GT(pd.snr(1e-3), pd.snr(1e-5));
}

TEST(CoherentReceiverTest, RecoversFieldOnAverage) {
  CoherentReceiver rx{PhotodetectorConfig{}, AdcConfig{}};
  Rng rng(9);
  const std::complex<double> field{0.012, -0.007};
  std::complex<double> acc{0.0, 0.0};
  const int kAvg = 2000;
  for (int i = 0; i < kAvg; ++i) acc += rx.measure(field, rng);
  acc /= static_cast<double>(kAvg);
  EXPECT_NEAR(acc.real(), field.real(), 2e-3);
  EXPECT_NEAR(acc.imag(), field.imag(), 2e-3);
}

TEST(CwLaserTest, ElectricalPowerFromWallPlug) {
  CwLaser laser;
  EXPECT_NEAR(laser.electrical_power_w(),
              laser.mean_power_w() / laser.config().wall_plug_efficiency,
              1e-12);
}

TEST(CwLaserTest, RinScalesWithPower) {
  CwLaserConfig a;
  a.power_w = 1e-3;
  CwLaserConfig b;
  b.power_w = 10e-3;
  EXPECT_GT(CwLaser(b).rin_rms_w(), CwLaser(a).rin_rms_w());
}

TEST(YamadaTest, QuiescentWithoutInput) {
  YamadaNeuron n;
  const auto trace = n.run(20000);
  for (double i : trace) EXPECT_LT(i, 1e-3);
}

TEST(YamadaTest, SupraThresholdPerturbationFiresPulse) {
  YamadaNeuron n;
  // Strong injection for a short window.
  std::vector<double> inj(200, 0.5);
  (void)n.run(200, inj);
  const auto trace = n.run(30000);
  double peak = 0.0;
  for (double i : trace) peak = std::max(peak, i);
  EXPECT_GT(peak, n.config().spike_threshold)
      << "excitable laser must fire a large pulse";
}

TEST(YamadaTest, SubThresholdPerturbationDecays) {
  YamadaNeuron n;
  std::vector<double> inj(200, 1e-4);
  (void)n.run(200, inj);
  const auto trace = n.run(30000);
  double peak = 0.0;
  for (double i : trace) peak = std::max(peak, i);
  EXPECT_LT(peak, 0.5 * n.config().spike_threshold);
}

TEST(YamadaTest, RefractoryAfterSpike) {
  // Under constant supra-threshold drive the excitable laser emits a
  // periodic pulse train whose interspike interval is set by the slow
  // gain recovery — i.e. a refractory period much longer than the pulse.
  YamadaNeuron n;
  std::vector<std::size_t> spike_steps;
  for (std::size_t step = 0; step < 120000; ++step) {
    (void)n.step(0.02);
    if (n.spiked()) spike_steps.push_back(step);
  }
  ASSERT_GE(spike_steps.size(), 2u) << "constant drive must elicit a train";
  std::size_t min_gap = SIZE_MAX;
  for (std::size_t i = 1; i < spike_steps.size(); ++i)
    min_gap = std::min(min_gap, spike_steps[i] - spike_steps[i - 1]);
  // Gain recovery time ~ 1/gamma_g = 20 time units = 2000 steps at
  // dt = 0.01; the refractory gap must be at least that order.
  EXPECT_GT(min_gap, 1000u);
}

TEST(LinkBudgetTest, LossesAccumulate) {
  LinkBudget lb(1e-3);
  lb.add("in-coupler", 1.5).add_repeated("mzi-column", 0.2, 8).add("out", 1.5);
  EXPECT_NEAR(lb.total_loss_db(), 1.5 + 8 * 0.2 + 1.5, 1e-12);
  EXPECT_NEAR(lb.output_power_w(), 1e-3 * std::pow(10.0, -4.6 / 10.0), 1e-9);
}

TEST(LinkBudgetTest, EnobDropsWithDepth) {
  Photodetector pd;
  LinkBudget shallow(1e-3);
  shallow.add_repeated("col", 0.2, 4);
  LinkBudget deep(1e-3);
  deep.add_repeated("col", 0.2, 64);
  EXPECT_GT(shallow.enob(pd), deep.enob(pd));
}

TEST(LinkBudgetTest, InvalidInputsThrow) {
  EXPECT_THROW(LinkBudget(0.0), std::invalid_argument);
  LinkBudget lb(1e-3);
  EXPECT_THROW(lb.add("x", -1.0), std::invalid_argument);
}

}  // namespace
