// Tests for the end-to-end precision-budget analysis (S4 extension).
#include <gtest/gtest.h>

#include "core/noise_analysis.hpp"

namespace {

using namespace aspen::core;

MvmConfig base() {
  MvmConfig cfg;
  cfg.ports = 8;
  return cfg;
}

TEST(NoiseAnalysisTest, RmsToBitsInvertsQuantizerRms) {
  // An ideal b-bit quantizer over [-1, 1] has rms = step / (2 sqrt 3);
  // rms_to_bits must recover ~b (up to the 2^b vs 2^b - 1 endpoint
  // convention, worth log2(2^b / (2^b - 1)) ~ 0.1 bit at b = 4).
  for (int bits : {4, 8, 12}) {
    const double step = 2.0 / ((1 << bits) - 1);
    EXPECT_NEAR(rms_to_bits(step / (2.0 * std::sqrt(3.0))), bits, 0.1);
  }
  EXPECT_DOUBLE_EQ(rms_to_bits(0.0), 24.0);
}

TEST(NoiseAnalysisTest, BudgetHasAllSources) {
  const auto b = analytic_precision_budget(base());
  EXPECT_GE(b.contributions.size(), 6u);
  EXPECT_GT(b.total_relative_rms, 0.0);
  EXPECT_GT(b.enob, 0.0);
  // Total is at least as large as any single contribution.
  for (const auto& c : b.contributions)
    EXPECT_GE(b.total_relative_rms, c.relative_rms);
}

TEST(NoiseAnalysisTest, PcmAddsWeightContributions) {
  MvmConfig cfg = base();
  const auto thermo = analytic_precision_budget(cfg);
  cfg.weights = WeightTechnology::kPcm;
  const auto pcm = analytic_precision_budget(cfg);
  EXPECT_EQ(pcm.contributions.size(), thermo.contributions.size() + 2);
  EXPECT_LT(pcm.enob, thermo.enob);
}

TEST(NoiseAnalysisTest, MoreLaserPowerMoreBits) {
  MvmConfig lo = base();
  lo.laser.power_w = 0.1e-3;
  MvmConfig hi = base();
  hi.laser.power_w = 100e-3;
  EXPECT_GT(analytic_precision_budget(hi).enob,
            analytic_precision_budget(lo).enob);
}

TEST(NoiseAnalysisTest, ConverterBitsBoundEnob) {
  // ENOB can never exceed the converter resolution.
  for (int bits : {4, 6, 8}) {
    MvmConfig cfg = base();
    cfg.modulator.dac_bits = bits;
    cfg.adc.bits = bits;
    EXPECT_LE(analytic_precision_budget(cfg).enob, bits + 0.01);
  }
}

TEST(NoiseAnalysisTest, DominantIdentifiesLargest) {
  MvmConfig cfg = base();
  cfg.modulator.dac_bits = 3;  // make the DAC clearly dominant
  cfg.adc.bits = 12;
  const auto b = analytic_precision_budget(cfg);
  EXPECT_EQ(b.dominant().source, "input DAC");
}

TEST(NoiseAnalysisTest, EmpiricalTracksAnalyticWithinMargin) {
  MvmConfig cfg = base();
  cfg.modulator.dac_bits = 10;
  cfg.adc.bits = 10;
  const double analytic = analytic_precision_budget(cfg).enob;
  const double empirical = empirical_enob(cfg, /*trials=*/32);
  // The analytic model ignores mesh loss imbalance; expect agreement
  // within ~1.5 bits, with the empirical value lower.
  EXPECT_LT(std::abs(analytic - empirical), 1.8);
}

TEST(NoiseAnalysisTest, EmpiricalDeterministicForSeed) {
  const double a = empirical_enob(base(), 16, 42);
  const double b = empirical_enob(base(), 16, 42);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
