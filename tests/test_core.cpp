// Tests for the photonic accelerator core (S4): MVM engine, GeMM
// scheduler (TDM/WDM), energy/area model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/energy_model.hpp"
#include "core/gemm_core.hpp"
#include "core/mvm_engine.hpp"
#include "lina/random.hpp"

namespace {

using namespace aspen::core;
using aspen::lina::CMat;
using aspen::lina::cplx;
using aspen::lina::CVec;
using aspen::lina::Rng;

MvmConfig clean_config(std::size_t ports = 8) {
  MvmConfig cfg;
  cfg.ports = ports;
  cfg.errors.coupler_loss_db = 0.0;
  cfg.errors.ps_loss_db = 0.0;
  cfg.errors.routing_loss_db_per_column = 0.0;
  cfg.modulator.insertion_loss_db = 0.0;
  cfg.modulator.dac_bits = 14;
  cfg.modulator.extinction_ratio_db = 90.0;
  cfg.adc.bits = 14;
  cfg.detector.thermal_noise_a_per_sqrt_hz = 0.0;
  cfg.laser.rin_db_per_hz = -200.0;
  return cfg;
}

double max_err(const CVec& a, const CVec& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(MvmEngineTest, IdentityRoundTrip) {
  MvmEngine eng(clean_config());
  Rng rng(1);
  const CVec x = aspen::lina::random_state(8, rng);
  const CVec y = eng.multiply_noiseless(x);
  EXPECT_LT(max_err(y, x), 1e-6);
}

TEST(MvmEngineTest, ArbitraryRealMatrixNoiseless) {
  MvmConfig cfg = clean_config();
  MvmEngine eng(cfg);
  Rng rng(2);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);
  EXPECT_GT(eng.programming_fidelity(), 0.999999);

  const CVec x = aspen::lina::random_state(8, rng);
  const CVec expected = w * x;
  const CVec y = eng.multiply_noiseless(x);
  EXPECT_LT(max_err(y, expected), 1e-6);
}

TEST(MvmEngineTest, ComplexMatrixNoiseless) {
  MvmEngine eng(clean_config());
  Rng rng(3);
  CMat w = aspen::lina::ginibre(8, 8, rng);
  w = w.scaled(cplx{0.3, 0.0});  // keep entries modest
  eng.set_matrix(w);
  const CVec x = aspen::lina::random_state(8, rng);
  EXPECT_LT(max_err(eng.multiply_noiseless(x), w * x), 1e-6);
}

TEST(MvmEngineTest, NoisyMultiplyCloseToExact) {
  MvmConfig cfg = clean_config();
  cfg.detector.thermal_noise_a_per_sqrt_hz = 10e-12;
  cfg.modulator.dac_bits = 8;
  cfg.adc.bits = 8;
  MvmEngine eng(cfg);
  Rng rng(4);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);
  const CVec x = aspen::lina::random_state(8, rng);
  const CVec expected = w * x;
  const CVec y = eng.multiply(x);
  // 8-bit converters + physical noise: expect percent-level accuracy.
  EXPECT_LT(max_err(y, expected), 0.08);
}

TEST(MvmEngineTest, LossDoesNotBiasCalibratedResult) {
  MvmConfig cfg = clean_config();
  cfg.errors.coupler_loss_db = 0.05;
  cfg.errors.ps_loss_db = 0.05;
  cfg.errors.routing_loss_db_per_column = 0.02;
  cfg.modulator.insertion_loss_db = 3.0;
  MvmEngine eng(cfg);
  Rng rng(5);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);
  const CVec x = aspen::lina::random_state(8, rng);
  EXPECT_LT(max_err(eng.multiply_noiseless(x), w * x), 1e-6)
      << "scalar gain calibration must absorb path loss";
}

TEST(MvmEngineTest, FabricationErrorsShowUpAsSystematicError) {
  MvmConfig cfg = clean_config();
  cfg.errors.coupler_sigma = 0.05;
  cfg.errors.phase_sigma = 0.05;
  MvmEngine eng(cfg);
  Rng rng(6);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);
  EXPECT_LT(eng.programming_fidelity(), 0.99999);
  const CVec x = aspen::lina::random_state(8, rng);
  EXPECT_GT(max_err(eng.multiply_noiseless(x), w * x), 1e-4);
}

TEST(MvmEngineTest, RecalibrationImprovesProgrammingFidelity) {
  MvmConfig cfg = clean_config(6);
  cfg.errors.coupler_sigma = 0.05;
  cfg.errors.phase_sigma = 0.05;
  Rng rng(7);
  const CMat w = aspen::lina::random_real(6, 6, rng);

  MvmEngine direct(cfg);
  direct.set_matrix(w);
  cfg.recalibrate = true;
  MvmEngine recal(cfg);
  recal.set_matrix(w);
  EXPECT_GT(recal.programming_fidelity(), direct.programming_fidelity());
}

TEST(MvmEngineTest, PcmWeightsZeroHoldingPower) {
  MvmConfig cfg = clean_config();
  cfg.weights = WeightTechnology::kPcm;
  MvmEngine eng(cfg);
  Rng rng(8);
  eng.set_matrix(aspen::lina::random_real(8, 8, rng));
  EXPECT_DOUBLE_EQ(eng.holding_power_w(), 0.0);
  EXPECT_GT(eng.counters().weight_write_energy_j, 0.0);
}

TEST(MvmEngineTest, ThermoWeightsDrawHoldingPower) {
  MvmEngine eng(clean_config());
  Rng rng(9);
  eng.set_matrix(aspen::lina::random_real(8, 8, rng));
  EXPECT_GT(eng.holding_power_w(), 0.0);
}

TEST(MvmEngineTest, PcmQuantizationLimitsAccuracy) {
  MvmConfig cfg = clean_config();
  cfg.weights = WeightTechnology::kPcm;
  cfg.pcm.level_bits = 3;
  MvmEngine coarse(cfg);
  cfg.pcm.level_bits = 8;
  MvmEngine fine(cfg);
  Rng rng(10);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  coarse.set_matrix(w);
  fine.set_matrix(w);
  EXPECT_GT(fine.programming_fidelity(), coarse.programming_fidelity());
}

TEST(MvmEngineTest, DriftDegradesFidelityMonotonically) {
  MvmConfig cfg = clean_config();
  cfg.weights = WeightTechnology::kPcm;
  cfg.pcm.level_bits = 8;
  MvmEngine eng(cfg);
  Rng rng(11);
  eng.set_matrix(aspen::lina::random_real(8, 8, rng));
  const double f0 = eng.programming_fidelity();
  eng.set_pcm_drift_time(1e4);
  const double f1 = eng.programming_fidelity();
  eng.set_pcm_drift_time(1e8);
  const double f2 = eng.programming_fidelity();
  EXPECT_GE(f0, f1);
  EXPECT_GT(f1, f2);
}

TEST(MvmEngineTest, CountersAdvance) {
  MvmEngine eng(clean_config());
  Rng rng(12);
  const CVec x = aspen::lina::random_state(8, rng);
  (void)eng.multiply(x);
  (void)eng.multiply(x);
  EXPECT_EQ(eng.counters().mvm_ops, 2u);
  EXPECT_NEAR(eng.counters().busy_time_s, 2.0 * eng.symbol_time_s(), 1e-18);
}

// -------------------------------------- weight-programming memoization

// Raw (bitwise) equality of two complex matrices.
bool bit_equal(const CMat& a, const CMat& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() && a.raw() == b.raw();
}

TEST(MvmEngineTest, RepeatedSetMatrixIsBitIdentical) {
  MvmConfig cfg;
  cfg.ports = 8;
  cfg.errors.coupler_sigma = 0.02;
  cfg.errors.phase_sigma = 0.02;
  MvmEngine eng(cfg);
  Rng rng(91);
  const CMat w1 = aspen::lina::random_real(8, 8, rng);
  const CMat w2 = aspen::lina::random_real(8, 8, rng);

  eng.set_matrix(w1);
  const CMat t1 = eng.physical_transfer();
  const cplx g1 = eng.system_gain();
  const double f1 = eng.programming_fidelity();

  eng.set_matrix(w2);
  ASSERT_FALSE(bit_equal(eng.physical_transfer(), t1));

  // Memoized reprogram (decomposition skipped): every derived quantity
  // must come back bit-identical, not merely close.
  eng.set_matrix(w1);
  EXPECT_TRUE(bit_equal(eng.physical_transfer(), t1));
  EXPECT_EQ(eng.system_gain(), g1);
  EXPECT_EQ(eng.programming_fidelity(), f1);

  // Unchanged-weights fast path: state untouched, write cost still paid.
  const auto ops_before = eng.counters().program_ops;
  const double energy_before = eng.counters().weight_write_energy_j;
  eng.set_matrix(w1);
  EXPECT_TRUE(bit_equal(eng.physical_transfer(), t1));
  EXPECT_EQ(eng.counters().program_ops, ops_before + 1);
  EXPECT_GT(eng.counters().weight_write_energy_j, energy_before);
}

TEST(MvmEngineTest, ReprogramAfterPhaseFaultRestoresTransferExactly) {
  MvmConfig cfg;
  cfg.ports = 8;
  cfg.errors.coupler_sigma = 0.02;
  MvmEngine eng(cfg);
  Rng rng(92);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);
  const CMat t = eng.physical_transfer();

  // A configuration upset dirties the mesh: the next set_matrix of the
  // same weights must actually reprogram (no stale fast path) and land
  // on the exact pre-fault transfer.
  eng.perturb_phase(3, 0.7);
  ASSERT_FALSE(bit_equal(eng.physical_transfer(), t));
  eng.set_matrix(w);
  EXPECT_TRUE(bit_equal(eng.physical_transfer(), t));
}

TEST(MvmEngineTest, MemoizedProgramMatchesWithRecalibrationAndPcm) {
  MvmConfig cfg;
  cfg.ports = 6;
  cfg.errors.coupler_sigma = 0.03;
  cfg.errors.phase_sigma = 0.03;
  cfg.recalibrate = true;
  cfg.weights = WeightTechnology::kPcm;
  MvmEngine eng(cfg);
  Rng rng(93);
  const CMat w1 = aspen::lina::random_real(6, 6, rng);
  const CMat w2 = aspen::lina::random_real(6, 6, rng);
  eng.set_matrix(w1);
  const CMat t1 = eng.physical_transfer();
  const cplx g1 = eng.system_gain();
  eng.set_matrix(w2);
  eng.set_matrix(w1);
  EXPECT_TRUE(bit_equal(eng.physical_transfer(), t1));
  EXPECT_EQ(eng.system_gain(), g1);
}

TEST(MvmEngineTest, SnapshotRestoreRoundTrip) {
  MvmConfig cfg;
  cfg.ports = 8;
  cfg.errors.coupler_sigma = 0.02;
  MvmEngine eng(cfg);
  Rng rng(94);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  eng.set_matrix(w);

  const MvmEngine::Snapshot snap = eng.snapshot();
  const CMat t = eng.physical_transfer();
  const CVec x = aspen::lina::random_state(8, rng);
  const CVec y_ref = eng.multiply(x);  // advances the noise stream

  // Mutate: different weights, a phase fault, more noise draws.
  eng.set_matrix(aspen::lina::random_real(8, 8, rng));
  eng.perturb_phase(1, 0.4);
  (void)eng.multiply(x);

  eng.restore(snap);
  EXPECT_TRUE(bit_equal(eng.physical_transfer(), t));
  const CVec y_again = eng.multiply(x);
  // Same state + same rng position -> bit-identical noisy output.
  for (std::size_t i = 0; i < y_ref.size(); ++i)
    EXPECT_EQ(y_ref[i], y_again[i]);
}

TEST(MvmEngineTest, ShapeMismatchThrows) {
  MvmEngine eng(clean_config());
  EXPECT_THROW(eng.set_matrix(CMat(4, 4)), std::invalid_argument);
  EXPECT_THROW((void)eng.multiply(CVec(5)), std::invalid_argument);
}

TEST(MvmEngineTest, ZeroMatrixHandled) {
  MvmEngine eng(clean_config());
  eng.set_matrix(CMat(8, 8));  // all zeros
  Rng rng(13);
  const CVec x = aspen::lina::random_state(8, rng);
  const CVec y = eng.multiply_noiseless(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_LT(std::abs(y[i]), 1e-9);
}

TEST(MvmEngineTest, InsertionLossPositiveWithRealDevices) {
  MvmConfig cfg;  // default lossy devices
  cfg.ports = 8;
  MvmEngine eng(cfg);
  EXPECT_GT(eng.insertion_loss_db(), 1.0);
}

TEST(GemmCoreTest, TdmMatchesPerColumnMvm) {
  GemmConfig gc;
  gc.mvm = clean_config();
  GemmCore gemm(gc);
  Rng rng(14);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  gemm.set_weights(w);
  const CMat x = aspen::lina::random_real(8, 5, rng, -0.5, 0.5);
  const CMat c = gemm.multiply(x);
  const CMat expected = w * x;
  EXPECT_LT(CMat::rel_error(expected, c), 0.02);
  EXPECT_EQ(gemm.last_stats().symbols, 5u);
  EXPECT_EQ(gemm.last_stats().macs, 8u * 8u * 5u);
}

TEST(GemmCoreTest, WdmReducesSymbolCount) {
  GemmConfig gc;
  gc.mvm = clean_config();
  gc.wdm_channels = 4;
  GemmCore gemm(gc);
  Rng rng(15);
  gemm.set_weights(aspen::lina::random_real(8, 8, rng));
  const CMat x = aspen::lina::random_real(8, 12, rng, -0.5, 0.5);
  (void)gemm.multiply(x);
  EXPECT_EQ(gemm.last_stats().symbols, 3u);  // ceil(12 / 4)
}

TEST(GemmCoreTest, WdmCrosstalkCostsAccuracy) {
  Rng rng(16);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  const CMat x = aspen::lina::random_real(8, 16, rng, -0.5, 0.5);
  const CMat expected = w * x;

  GemmConfig tdm;
  tdm.mvm = clean_config();
  GemmCore g1(tdm);
  g1.set_weights(w);
  const double err_tdm = CMat::rel_error(expected, g1.multiply(x));

  GemmConfig wdm = tdm;
  wdm.wdm_channels = 8;
  wdm.channel_isolation_db = 15.0;  // poor isolation
  GemmCore g8(wdm);
  g8.set_weights(w);
  const double err_wdm = CMat::rel_error(expected, g8.multiply(x));
  EXPECT_GT(err_wdm, err_tdm);
}

TEST(GemmCoreTest, WdmImprovesThroughputAndEfficiencyScalesSanely) {
  Rng rng(17);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  const CMat x = aspen::lina::random_real(8, 32, rng, -0.5, 0.5);

  GemmConfig tdm;
  tdm.mvm = clean_config();
  GemmCore g1(tdm);
  g1.set_weights(w);
  (void)g1.multiply(x);
  const auto s1 = g1.last_stats();

  GemmConfig wdm = tdm;
  wdm.wdm_channels = 8;
  GemmCore g8(wdm);
  g8.set_weights(w);
  (void)g8.multiply(x);
  const auto s8 = g8.last_stats();

  EXPECT_NEAR(s8.ops_per_second() / s1.ops_per_second(), 8.0, 0.5);
  EXPECT_EQ(s1.macs, s8.macs);
}

TEST(GemmCoreTest, DispersionPenalizesWideGrids) {
  Rng rng(18);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  const CMat x = aspen::lina::random_real(8, 16, rng, -0.5, 0.5);
  const CMat exact = w * x;

  GemmConfig narrow;
  narrow.mvm = clean_config();
  narrow.wdm_channels = 2;
  narrow.channel_spacing_nm = 0.8;
  narrow.channel_isolation_db = 80.0;
  GemmCore g2(narrow);
  g2.set_weights(w);
  const double err2 = CMat::rel_error(exact, g2.multiply(x));

  GemmConfig wide = narrow;
  wide.wdm_channels = 16;
  GemmCore g16(wide);
  g16.set_weights(w);
  const double err16 = CMat::rel_error(exact, g16.multiply(x));
  EXPECT_GT(err16, err2) << "outer channels see rotated couplers";
}

TEST(GemmCoreTest, ZeroSpacingMatchesFlatMesh) {
  Rng rng(19);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  const CMat x = aspen::lina::random_real(8, 8, rng, -0.5, 0.5);
  GemmConfig flat;
  flat.mvm = clean_config();
  flat.wdm_channels = 4;
  flat.channel_spacing_nm = 0.0;
  flat.channel_isolation_db = 80.0;  // isolate the dispersion variable
  GemmCore g(flat);
  g.set_weights(w);
  const CMat y = g.multiply(x);
  EXPECT_LT(CMat::rel_error(w * x, y), 0.02);
}

TEST(GemmCoreTest, InvalidConfigThrows) {
  GemmConfig gc;
  gc.wdm_channels = 0;
  EXPECT_THROW(GemmCore{gc}, std::invalid_argument);
  GemmConfig gc2;
  gc2.channel_isolation_db = 0.0;
  EXPECT_THROW(GemmCore{gc2}, std::invalid_argument);
}

TEST(EnergyModelTest, PcmEliminatesWeightHoldingPower) {
  MvmConfig cfg;
  cfg.ports = 8;
  const auto thermo = evaluate_accelerator(cfg);
  cfg.weights = WeightTechnology::kPcm;
  const auto pcm = evaluate_accelerator(cfg);
  EXPECT_GT(thermo.weight_holding_w, 0.0);
  EXPECT_DOUBLE_EQ(pcm.weight_holding_w, 0.0);
  EXPECT_LT(pcm.static_power_w, thermo.static_power_w);
}

TEST(EnergyModelTest, EnergyCrossoverFavorsPcmAtHighReuse) {
  MvmConfig cfg;
  cfg.ports = 8;
  // At reuse = 1 PCM pays its write energy every inference; at high reuse
  // the thermo heaters' static draw dominates (Section 3's argument).
  const auto once = weight_energy_at_reuse(cfg, 1.0, 8.0);
  const auto many = weight_energy_at_reuse(cfg, 1e6, 8.0);
  EXPECT_LT(many.pcm_energy_j, many.thermo_energy_j);
  // Amortization helps PCM: per-inference energy shrinks with reuse.
  EXPECT_GT(once.pcm_energy_j, many.pcm_energy_j);
  EXPECT_GT(once.pcm_energy_j, 0.0);
  EXPECT_GT(once.thermo_energy_j, 0.0);
}

TEST(EnergyModelTest, AreaGrowsQuadratically) {
  MvmConfig small;
  small.ports = 8;
  MvmConfig large;
  large.ports = 32;
  const double a8 = evaluate_accelerator(small).area_mm2;
  const double a32 = evaluate_accelerator(large).area_mm2;
  // N(N-1)/2 cells per mesh: 32-port mesh has ~17.7x the cells of 8-port.
  EXPECT_GT(a32 / a8, 8.0);
  EXPECT_LT(a32 / a8, 20.0);
}

TEST(EnergyModelTest, WdmBoostsThroughputSameMeshArea) {
  MvmConfig cfg;
  cfg.ports = 8;
  const auto one = evaluate_accelerator(cfg, 1e6, 1);
  const auto four = evaluate_accelerator(cfg, 1e6, 4);
  EXPECT_NEAR(four.throughput_ops_s / one.throughput_ops_s, 4.0, 1e-9);
  EXPECT_LT(four.area_mm2 / one.area_mm2, 3.0)
      << "mesh is shared; only IO replicates";
}

TEST(EnergyModelTest, ReckAndClementsSameCellCountSameArea) {
  MvmConfig a;
  a.ports = 8;
  a.architecture = aspen::mesh::Architecture::kClements;
  MvmConfig b = a;
  b.architecture = aspen::mesh::Architecture::kReck;
  EXPECT_NEAR(evaluate_accelerator(a).area_mm2, evaluate_accelerator(b).area_mm2,
              1e-12);
  // But Reck's deeper triangle pays more optical loss.
  EXPECT_GT(evaluate_accelerator(b).insertion_loss_db,
            evaluate_accelerator(a).insertion_loss_db);
}

TEST(MvmEngineTest, MultiplyBatchMatchesLoopedMultiply) {
  // Batched propagation is one GEMM, but the noise draws are consumed in
  // the same order as a multiply() loop — results agree up to FP
  // reassociation even with every noise source enabled (default config).
  MvmConfig cfg;
  cfg.ports = 8;
  MvmEngine batched(cfg);
  MvmEngine looped(cfg);
  Rng rng(71);
  const CMat w = aspen::lina::random_real(8, 8, rng);
  batched.set_matrix(w);
  looped.set_matrix(w);

  const std::size_t m = 12;
  CMat x(8, m);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < m; ++c)
      x(r, c) = cplx{rng.uniform(-1.0, 1.0), 0.0};

  const CMat yb = batched.multiply_batch(x);
  for (std::size_t c = 0; c < m; ++c) {
    const CVec yl = looped.multiply(x.col(c));
    for (std::size_t r = 0; r < 8; ++r)
      EXPECT_LT(std::abs(yb(r, c) - yl[r]), 1e-9) << "r=" << r << " c=" << c;
  }
  EXPECT_EQ(batched.counters().mvm_ops, looped.counters().mvm_ops);
  EXPECT_DOUBLE_EQ(batched.counters().busy_time_s,
                   looped.counters().busy_time_s);
}

TEST(MvmEngineTest, TransferAtDetuningIsLogicallyConst) {
  MvmConfig cfg;
  cfg.ports = 6;
  cfg.errors.coupler_sigma = 0.02;
  const MvmEngine eng(cfg);  // const: must compile and not mutate
  const CMat before = eng.physical_transfer();
  const CMat t1 = eng.transfer_at_detuning(2.0);
  const CMat t2 = eng.transfer_at_detuning(2.0);
  EXPECT_LT(t1.max_abs_diff(t2), 1e-15) << "must be repeatable";
  EXPECT_LT(eng.physical_transfer().max_abs_diff(before), 1e-15)
      << "engine state untouched";
  // At zero detuning it reproduces the calibrated design-wavelength path.
  EXPECT_LT(eng.transfer_at_detuning(0.0).max_abs_diff(before), 1e-12);
}

TEST(GemmCoreTest, BatchedPipelineMatchesStagedPerColumnLoop) {
  // The GEMM rewrite must reproduce the per-column staged pipeline
  // (encode -> propagate -> leak-mix -> detect -> rescale) including the
  // noise stream order.
  GemmConfig gc;
  gc.mvm.ports = 6;
  gc.wdm_channels = 3;
  gc.channel_isolation_db = 20.0;
  GemmCore gemm(gc);
  GemmCore ref(gc);
  Rng rng(72);
  const CMat w = aspen::lina::random_real(6, 6, rng);
  gemm.set_weights(w);
  ref.set_weights(w);

  const std::size_t m = 7;  // ragged: last group has a single channel
  CMat x(6, m);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < m; ++c)
      x(r, c) = cplx{rng.uniform(-1.0, 1.0), 0.0};

  const CMat got = gemm.multiply(x);

  // Reference: the pre-batching algorithm on the staged per-vector API.
  const double leak = std::pow(10.0, -gc.channel_isolation_db / 20.0);
  MvmEngine& eng = ref.engine();
  CMat expected(6, m);
  for (std::size_t first = 0; first < m; first += 3) {
    const std::size_t count = std::min<std::size_t>(3, m - first);
    std::vector<CVec> outputs(count);
    for (std::size_t c = 0; c < count; ++c)
      outputs[c] = eng.propagate_fields(eng.encode(x.col(first + c)));
    std::vector<CVec> mixed = outputs;
    if (count > 1) {
      for (std::size_t c = 0; c < count; ++c)
        for (std::size_t p = 0; p < 6; ++p) {
          cplx leakage{0.0, 0.0};
          if (c > 0) leakage += outputs[c - 1][p];
          if (c + 1 < count) leakage += outputs[c + 1][p];
          mixed[c][p] += leak * leakage;
        }
    }
    for (std::size_t c = 0; c < count; ++c) {
      const CVec y = eng.rescale(eng.detect(mixed[c]));
      for (std::size_t r = 0; r < 6; ++r) expected(r, first + c) = y[r];
    }
  }
  EXPECT_LT(got.max_abs_diff(expected), 1e-9);
}

}  // namespace
