// Cross-stack integration tests: NN workloads running through the full
// system simulator, randomized differential testing of the ISS, and
// end-to-end invariants that span multiple subsystems.
#include <gtest/gtest.h>

#include <cstring>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;

// ------------------------------------------------------------------------
// NN layer executed on the *system-level* accelerator: quantize a trained
// dense layer and one input batch to Q3.12, offload via the RISC-V
// program, and compare classification argmax against the float reference.
// Exercises: nn training -> fixed-point -> assembler -> ISS -> bus -> DSA
// -> photonic core -> readback.
TEST(EndToEndTest, TrainedLayerOffloadPreservesArgmax) {
  lina::Rng rng(17);
  const nn::Dataset data = nn::make_blobs(4, 8, 40, rng, 0.08);
  nn::Mlp mlp({8, 8, 4}, rng);
  mlp.train(data, 60, 0.2, 20, rng);
  ASSERT_GT(mlp.accuracy(data), 0.9);

  // Offload the first (8x8) layer for a batch of 8 samples.
  const auto& layer = mlp.layers()[0];
  // Thermo-optic weights: exact phases keep this end-to-end check tight
  // (PCM quantization effects are characterized separately in E3/E10).
  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  sc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;

  std::vector<std::int16_t> a(64), x(64);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      a[r * 8 + c] = PhotonicAccelerator::to_fixed(layer.weights(r, c));
  for (std::size_t s = 0; s < 8; ++s)
    for (std::size_t f = 0; f < 8; ++f)
      x[s * 8 + f] = PhotonicAccelerator::to_fixed(data.inputs(f, s));

  System system(sc);
  stage_gemm_data(system, wl, a, x);
  system.load_program(
      build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt));
  const auto run = system.run();
  ASSERT_EQ(run.halt, rv::Halt::kEcallExit);

  const auto y = read_gemm_result(system, wl);
  // Compare pre-activation values against the float layer output.
  nn::Matrix batch(8, 8);
  for (std::size_t s = 0; s < 8; ++s)
    for (std::size_t f = 0; f < 8; ++f) batch(f, s) = data.inputs(f, s);
  const nn::Matrix exact = layer.weights * batch;
  double max_err = 0.0;
  for (std::size_t s = 0; s < 8; ++s)
    for (std::size_t r = 0; r < 8; ++r)
      max_err = std::max(
          max_err, std::abs(PhotonicAccelerator::from_fixed(y[s * 8 + r]) -
                            exact(r, s)));
  EXPECT_LT(max_err, 0.05) << "offloaded layer must track the float layer";
}

// ------------------------------------------------------------------------
// Randomized differential test of the ISS: generate straight-line RV32IM
// arithmetic on random operands, compute the expected results on the
// host, compare every destination register.
struct AluCase {
  const char* name;
  std::uint32_t (*expect)(std::uint32_t, std::uint32_t);
  void (*emit)(rv::Assembler&, int, int, int);
};

const AluCase kAluCases[] = {
    {"add", [](std::uint32_t a, std::uint32_t b) { return a + b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.add(d, s1, s2); }},
    {"sub", [](std::uint32_t a, std::uint32_t b) { return a - b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.sub(d, s1, s2); }},
    {"xor", [](std::uint32_t a, std::uint32_t b) { return a ^ b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.xor_(d, s1, s2); }},
    {"or", [](std::uint32_t a, std::uint32_t b) { return a | b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.or_(d, s1, s2); }},
    {"and", [](std::uint32_t a, std::uint32_t b) { return a & b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.and_(d, s1, s2); }},
    {"sll",
     [](std::uint32_t a, std::uint32_t b) { return a << (b & 31u); },
     [](rv::Assembler& as, int d, int s1, int s2) { as.sll(d, s1, s2); }},
    {"srl",
     [](std::uint32_t a, std::uint32_t b) { return a >> (b & 31u); },
     [](rv::Assembler& as, int d, int s1, int s2) { as.srl(d, s1, s2); }},
    {"sra",
     [](std::uint32_t a, std::uint32_t b) {
       return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                         (b & 31u));
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.sra(d, s1, s2); }},
    {"slt",
     [](std::uint32_t a, std::uint32_t b) {
       return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) <
                                         static_cast<std::int32_t>(b));
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.slt(d, s1, s2); }},
    {"sltu",
     [](std::uint32_t a, std::uint32_t b) {
       return static_cast<std::uint32_t>(a < b);
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.sltu(d, s1, s2); }},
    {"mul", [](std::uint32_t a, std::uint32_t b) { return a * b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.mul(d, s1, s2); }},
    {"mulh",
     [](std::uint32_t a, std::uint32_t b) {
       const auto p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                      static_cast<std::int64_t>(static_cast<std::int32_t>(b));
       return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.mulh(d, s1, s2); }},
    {"mulhu",
     [](std::uint32_t a, std::uint32_t b) {
       return static_cast<std::uint32_t>(
           (static_cast<std::uint64_t>(a) * b) >> 32);
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.mulhu(d, s1, s2); }},
    {"divu",
     [](std::uint32_t a, std::uint32_t b) {
       return b == 0 ? 0xFFFFFFFFu : a / b;
     },
     [](rv::Assembler& as, int d, int s1, int s2) { as.divu(d, s1, s2); }},
    {"remu",
     [](std::uint32_t a, std::uint32_t b) { return b == 0 ? a : a % b; },
     [](rv::Assembler& as, int d, int s1, int s2) { as.remu(d, s1, s2); }},
};

class IssDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IssDifferentialTest, RandomAluProgramsMatchHost) {
  lina::Rng rng(GetParam());
  rv::Assembler as(0x80000000u);

  // Random operands in s2/s3, results spread over s4..s11 (8 slots).
  struct Step {
    std::size_t op;
    std::uint32_t a, b;
    int dest;
  };
  std::vector<Step> steps;
  for (int k = 0; k < 8; ++k) {
    Step s;
    s.op = rng.uniform_int(0, std::size(kAluCases) - 1);
    // Mix of adversarial and random operands.
    const std::uint32_t specials[] = {0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                      0xFFFFFFFFu};
    s.a = rng.chance(0.3)
              ? specials[rng.uniform_int(0, 4)]
              : static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFu));
    s.b = rng.chance(0.3)
              ? specials[rng.uniform_int(0, 4)]
              : static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFu));
    s.dest = 20 + k;  // s4..s11
    steps.push_back(s);
    as.li(rv::s2, s.a);
    as.li(rv::s3, s.b);
    kAluCases[s.op].emit(as, s.dest, rv::s2, rv::s3);
  }
  as.ebreak();

  Bus bus(0);
  Memory ram("ram", 1 << 16, 0);
  bus.attach(0x80000000u, 1 << 16, &ram);
  const auto words = as.assemble();
  ram.load(0, words.data(), words.size() * 4);
  rv::Cpu cpu(bus);
  for (int i = 0; i < 10000 && !cpu.halted(); ++i) cpu.tick();
  ASSERT_TRUE(cpu.halted());

  for (const auto& s : steps)
    EXPECT_EQ(cpu.read_reg(s.dest), kAluCases[s.op].expect(s.a, s.b))
        << kAluCases[s.op].name << "(" << std::hex << s.a << ", " << s.b
        << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IssDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------------------------
// Memory differential: random store/load sequences vs a host shadow copy.
TEST(IssDifferentialTest, RandomMemoryTrafficMatchesShadow) {
  lina::Rng rng(777);
  rv::Assembler as(0x80000000u);
  std::vector<std::uint8_t> shadow(256, 0);
  const std::uint32_t data_base = 0x80008000u;

  struct Access {
    std::uint32_t offset;
    std::uint32_t value;
    unsigned size;
  };
  std::vector<Access> writes;
  for (int k = 0; k < 24; ++k) {
    Access a;
    a.size = 1u << rng.uniform_int(0, 2);
    a.offset =
        static_cast<std::uint32_t>(rng.uniform_int(0, 255 - a.size)) &
        ~(a.size - 1);
    a.value = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFu));
    writes.push_back(a);
    as.li(rv::t0, data_base + a.offset);
    as.li(rv::t1, a.value);
    if (a.size == 1)
      as.sb(rv::t1, rv::t0, 0);
    else if (a.size == 2)
      as.sh(rv::t1, rv::t0, 0);
    else
      as.sw(rv::t1, rv::t0, 0);
    for (unsigned i = 0; i < a.size; ++i)
      shadow[a.offset + i] = static_cast<std::uint8_t>(a.value >> (8 * i));
  }
  as.ebreak();

  Bus bus(0);
  Memory ram("ram", 1 << 16, 0);
  bus.attach(0x80000000u, 1 << 16, &ram);
  const auto words = as.assemble();
  ram.load(0, words.data(), words.size() * 4);
  rv::Cpu cpu(bus);
  for (int i = 0; i < 100000 && !cpu.halted(); ++i) cpu.tick();
  ASSERT_TRUE(cpu.halted());

  std::vector<std::uint8_t> got(256);
  ram.read_block(0x8000, got.data(), 256);
  EXPECT_EQ(got, shadow);
}

// ------------------------------------------------------------------------
// Cross-subsystem invariant: the analytical energy model and the GemmCore
// measured stats must agree on modulator/ADC energy for a known call.
TEST(EndToEndTest, EnergyModelMatchesMeasuredStats) {
  core::GemmConfig gc;
  gc.mvm.ports = 8;
  core::GemmCore gemm(gc);
  lina::Rng rng(9);
  gemm.set_weights(lina::random_real(8, 8, rng));
  const lina::CMat x = lina::random_real(8, 16, rng, -0.5, 0.5);
  (void)gemm.multiply(x);
  const auto& s = gemm.last_stats();
  // 8 ports x 16 columns symbols of modulation.
  EXPECT_NEAR(s.modulator_energy_j,
              8.0 * 16.0 * gc.mvm.modulator.energy_per_symbol_j, 1e-18);
  EXPECT_NEAR(s.adc_energy_j, 2.0 * 8.0 * 16.0 * gc.mvm.adc.energy_per_sample_j,
              1e-18);
  EXPECT_EQ(s.macs, 8u * 8u * 16u);
}

// Drift must never *improve* an engine's programming fidelity (sanity
// across photonics + mesh + core).
TEST(EndToEndTest, DriftMonotonicityProperty) {
  core::MvmConfig cfg;
  cfg.ports = 8;
  cfg.weights = core::WeightTechnology::kPcm;
  core::MvmEngine engine(cfg);
  lina::Rng rng(11);
  engine.set_matrix(lina::random_real(8, 8, rng));
  double prev = engine.programming_fidelity();
  for (double t : {1e2, 1e4, 1e6, 1e8}) {
    engine.set_pcm_drift_time(t);
    EXPECT_LE(engine.programming_fidelity(), prev + 1e-9);
    prev = engine.programming_fidelity();
  }
}

}  // namespace
