// Differential suite for the event-driven sysim rebuild: every workload
// program plus interrupt/WFI, self-modifying-code and fault-injection
// scenarios run through ALL THREE execution tiers —
//   legacy: decode-every-fetch interpreter + per-cycle System ticking
//   uop:    predecoded micro-op cache + DRAM fast path + bulk cycle
//           skipping
//   block:  basic-block translation (block cache, chaining, macro-op
//           fusion) on top of the uop engine
// — asserting bit-identical cycles, instret, halt reason, exit code,
// final register file and final DRAM image. This is the contract that
// lets the fault campaigns trust the optimized simulator.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>

#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen::sys;
using namespace aspen::sys::rv;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

/// Execution tiers under differential test. The per-cycle interpreter
/// is the oracle; the uop-at-a-time engine and the block translation
/// tier built on top of it must both match it bit for bit.
enum class Tier { kLegacy, kUop, kBlock };

constexpr Tier kFastTiers[] = {Tier::kUop, Tier::kBlock};

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kLegacy: return "legacy";
    case Tier::kUop: return "uop";
    default: return "block";
  }
}

SystemConfig with_tier(SystemConfig sc, Tier t) {
  sc.event_driven = t != Tier::kLegacy;
  sc.cpu.legacy_decode = t == Tier::kLegacy;
  // Explicit on both fast tiers: the default tracks ASPEN_BLOCK_TIER,
  // and this suite must pin all three tiers regardless of environment.
  sc.cpu.block_tier = t == Tier::kBlock;
  return sc;
}

/// Everything architecturally observable after a run (bstats is
/// diagnostic-only: captured for block-tier assertions, not diffed).
struct Capture {
  System::RunResult result;
  std::uint64_t system_cycle = 0;
  std::array<std::uint32_t, 32> regs{};
  std::vector<std::uint8_t> dram;
  BlockStats bstats;
};

/// Everything a trial can observe, captured from a live system.
Capture capture_state(System& system) {
  Capture c;
  c.result.cycles = system.cpu().cycles();
  c.result.instret = system.cpu().instret();
  c.result.halt = system.cpu().halt_reason();
  c.result.exit_code = system.cpu().halted() ? system.cpu().exit_code() : 0;
  c.result.timed_out = !system.cpu().halted();
  c.system_cycle = system.now();
  for (int i = 0; i < 32; ++i)
    c.regs[static_cast<std::size_t>(i)] = system.cpu().read_reg(i);
  c.dram.resize(system.config().dram_size);
  system.read_dram(0, c.dram.data(), c.dram.size());
  c.bstats = system.cpu().block_stats();
  return c;
}

Capture run_tier(const SystemConfig& sc_base, Tier tier,
                 const std::vector<std::uint32_t>& program,
                 const std::function<void(System&)>& stage = {}) {
  System system(with_tier(sc_base, tier));
  if (stage) stage(system);
  system.load_program(program);
  const System::RunResult result = system.run();
  Capture c = capture_state(system);
  c.result = result;
  return c;
}

void expect_identical(const Capture& legacy, const Capture& fast,
                      const char* what) {
  EXPECT_EQ(legacy.result.cycles, fast.result.cycles) << what;
  EXPECT_EQ(legacy.result.instret, fast.result.instret) << what;
  EXPECT_EQ(legacy.result.halt, fast.result.halt) << what;
  EXPECT_EQ(legacy.result.exit_code, fast.result.exit_code) << what;
  EXPECT_EQ(legacy.result.timed_out, fast.result.timed_out) << what;
  EXPECT_EQ(legacy.system_cycle, fast.system_cycle) << what;
  EXPECT_EQ(legacy.regs, fast.regs) << what << ": register file differs";
  EXPECT_EQ(legacy.dram == fast.dram, true) << what << ": DRAM image differs";
}

void diff_program(const SystemConfig& sc,
                  const std::vector<std::uint32_t>& program, const char* what,
                  const std::function<void(System&)>& stage = {}) {
  const Capture legacy = run_tier(sc, Tier::kLegacy, program, stage);
  for (const Tier tier : kFastTiers) {
    const Capture fast = run_tier(sc, tier, program, stage);
    expect_identical(
        legacy, fast,
        (std::string(what) + " [" + tier_name(tier) + "]").c_str());
  }
}

/// Drive a fresh system per tier through an arbitrary scenario (mid-run
/// injections, staged runs), diff both fast tiers against legacy, and
/// return the block-tier capture for tier-specific assertions.
Capture diff_drive(const SystemConfig& sc, const char* what,
                   const std::function<void(System&)>& drive) {
  System legacy_sys(with_tier(sc, Tier::kLegacy));
  drive(legacy_sys);
  const Capture legacy = capture_state(legacy_sys);
  Capture block;
  for (const Tier tier : kFastTiers) {
    System system(with_tier(sc, tier));
    drive(system);
    Capture c = capture_state(system);
    expect_identical(
        legacy, c,
        (std::string(what) + " [" + tier_name(tier) + "]").c_str());
    if (tier == Tier::kBlock) block = c;
  }
  return block;
}

AcceleratorConfig small_accel() {
  AcceleratorConfig cfg;
  cfg.gemm.mvm.ports = 8;
  cfg.max_cols = 16;
  return cfg;
}

std::function<void(System&)> gemm_stager(const GemmWorkload& wl,
                                         std::uint64_t seed) {
  const auto a = random_fixed(wl.n * wl.n, seed);
  const auto x = random_fixed(wl.n * wl.m, seed + 1);
  return [wl, a, x](System& s) { stage_gemm_data(s, wl, a, x); };
}

// ------------------------------------------------- workload programs

TEST(SysimDiffTest, SoftwareGemm) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  diff_program(sc, build_gemm_software(wl, sc), "software gemm",
               gemm_stager(wl, 301));
}

class DiffOffloadTest : public ::testing::TestWithParam<OffloadPath> {};

TEST_P(DiffOffloadTest, OffloadPathsIdentical) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  diff_program(sc, build_gemm_offload(wl, sc, GetParam()), "offload",
               gemm_stager(wl, 311));
}

INSTANTIATE_TEST_SUITE_P(Paths, DiffOffloadTest,
                         ::testing::Values(OffloadPath::kMmrPolling,
                                           OffloadPath::kMmrInterrupt,
                                           OffloadPath::kDmaInterrupt));

TEST(SysimDiffTest, OffloadThermoOpticLongBusyWindow) {
  // Thermo-optic programming parks the CPU for ~10k cycles — the bulk
  // skip's best case must still land DONE/IRQ on the exact same cycle.
  SystemConfig sc;
  sc.accel = small_accel();
  sc.accel.gemm.mvm.weights = aspen::core::WeightTechnology::kThermoOptic;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  diff_program(sc, build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt),
               "thermo offload", gemm_stager(wl, 321));
}

TEST(SysimDiffTest, StreamingOffload) {
  // Weights once + 8 tiles back to back: long CPU bursts interleaved
  // with device-busy windows and WFI wakes.
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload tile;
  tile.n = 8;
  tile.m = 4;
  GemmWorkload full = tile;
  full.m = tile.m * 8;
  diff_program(sc,
               build_gemm_offload_stream(tile, sc, OffloadPath::kMmrInterrupt,
                                         8),
               "streaming offload", gemm_stager(full, 361));
  diff_program(sc,
               build_gemm_offload_stream(tile, sc, OffloadPath::kDmaInterrupt,
                                         8),
               "streaming offload dma", gemm_stager(full, 362));
  diff_program(sc,
               build_gemm_offload_stream(tile, sc, OffloadPath::kMmrPolling,
                                         8),
               "streaming offload polling", gemm_stager(full, 363));
}

TEST(SysimDiffTest, MultiPe) {
  SystemConfig sc;
  sc.accel = small_accel();
  sc.num_pes = 2;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  diff_program(sc, build_gemm_multi_pe(wl, sc), "multi-pe",
               gemm_stager(wl, 331));
}

TEST(SysimDiffTest, CounterProbe) {
  SystemConfig sc;
  sc.accel = small_accel();
  diff_program(sc, build_counter_probe(sc, 0x40000), "counter probe");
}

// --------------------------------------- interrupt / WFI / timeout

TEST(SysimDiffTest, WfiDeadlockTimesOutAtSameCycle) {
  SystemConfig sc;
  sc.accel = small_accel();
  sc.max_cycles = 5000;  // nothing will ever wake the CPU
  Assembler as(sc.dram_base);
  as.nop();
  as.wfi();
  as.ebreak();
  const auto program = as.assemble();
  const Capture legacy = run_tier(sc, Tier::kLegacy, program);
  EXPECT_TRUE(legacy.result.timed_out);
  for (const Tier tier : kFastTiers) {
    const Capture fast = run_tier(sc, tier, program);
    EXPECT_TRUE(fast.result.timed_out) << tier_name(tier);
    expect_identical(legacy, fast, "wfi deadlock");
  }
}

TEST(SysimDiffTest, DmaInterruptTrapHandler) {
  // Spin loop + asynchronous DMA-completion interrupt through mtvec:
  // the trap must be taken at the identical instruction boundary.
  SystemConfig sc;
  sc.accel = small_accel();
  Assembler as(sc.dram_base);
  as.li(t0, sc.dram_base + 256);  // handler
  as.csrrw(zero, kCsrMtvec, t0);
  as.li(t0, 1u << 11);  // MEIE
  as.csrrw(zero, kCsrMie, t0);
  as.li(t0, 1u << 3);  // MIE
  as.csrrs(zero, kCsrMstatus, t0);
  as.li(s7, sc.dma_base);
  as.li(t1, sc.dram_base + 0x10000);
  as.sw(t1, s7, DmaEngine::kRegSrc);
  as.li(t1, sc.dram_base + 0x11000);
  as.sw(t1, s7, DmaEngine::kRegDst);
  as.li(t1, 256);
  as.sw(t1, s7, DmaEngine::kRegLen);
  as.li(t1, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
  as.sw(t1, s7, DmaEngine::kRegCtrl);
  as.label("spin");
  as.j("spin");
  while (as.current_address() < sc.dram_base + 256) as.nop();
  as.label("handler");
  as.csrrs(a1, kCsrMcause, zero);
  as.li(t0, DmaEngine::kStatusDone);
  as.sw(t0, s7, DmaEngine::kRegStatus);
  as.li(a0, 7);
  as.li(a7, 93);
  as.ecall();
  const auto program = as.assemble();
  const auto stage = [](System& s) {
    std::vector<std::uint8_t> src(256);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<std::uint8_t>(i * 3 + 1);
    s.write_dram(0x10000, src.data(), src.size());
  };
  const Capture legacy = run_tier(sc, Tier::kLegacy, program, stage);
  for (const Tier tier : kFastTiers) {
    const Capture fast = run_tier(sc, tier, program, stage);
    EXPECT_EQ(fast.result.halt, Halt::kEcallExit) << tier_name(tier);
    EXPECT_EQ(fast.regs[11], 0x8000000Bu);  // mcause: machine external irq
    expect_identical(legacy, fast, "dma interrupt trap");
  }
}

TEST(SysimDiffTest, DmaFaultAbortObservedIdentically) {
  // A DMA transfer whose destination runs past the end of DRAM aborts
  // mid-flight: BUSY drops, ERROR latches and the completion IRQ fires.
  // The guest parks in a spin loop and the trap handler reads STATUS,
  // W1C-clears ERROR and exits with the observed status — the abort
  // cycle, the latched status and the wakeup must be bit-identical
  // between per-cycle ticking and the event-driven core (a faulting
  // transfer is never bulk-movable, so the fast path must fall back to
  // ticking the engine to the exact faulting beat).
  SystemConfig sc;
  sc.accel = small_accel();
  Assembler as(sc.dram_base);
  as.li(t0, sc.dram_base + 256);  // handler
  as.csrrw(zero, kCsrMtvec, t0);
  as.li(t0, 1u << 11);  // MEIE
  as.csrrw(zero, kCsrMie, t0);
  as.li(t0, 1u << 3);  // MIE
  as.csrrs(zero, kCsrMstatus, t0);
  as.li(s7, sc.dma_base);
  as.li(t1, sc.dram_base + 0x10000);
  as.sw(t1, s7, DmaEngine::kRegSrc);
  as.li(t1, sc.dram_base + sc.dram_size - 8);  // 56 of 64 bytes past the end
  as.sw(t1, s7, DmaEngine::kRegDst);
  as.li(t1, 64);
  as.sw(t1, s7, DmaEngine::kRegLen);
  as.li(t1, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
  as.sw(t1, s7, DmaEngine::kRegCtrl);
  as.label("spin");
  as.j("spin");
  while (as.current_address() < sc.dram_base + 256) as.nop();
  as.label("handler");
  as.csrrs(a2, kCsrMcause, zero);
  as.lw(a1, s7, DmaEngine::kRegStatus);  // ERROR set, BUSY/DONE clear
  as.li(t0, DmaEngine::kStatusError);
  as.sw(t0, s7, DmaEngine::kRegStatus);  // W1C drops the IRQ line
  as.lw(a3, s7, DmaEngine::kRegStatus);  // now fully clear
  as.mv(a0, a1);
  as.li(a7, 93);
  as.ecall();
  const auto program = as.assemble();
  const auto stage = [](System& s) {
    std::vector<std::uint8_t> src(64);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<std::uint8_t>(i + 1);
    s.write_dram(0x10000, src.data(), src.size());
  };
  const Capture legacy = run_tier(sc, Tier::kLegacy, program, stage);
  for (const Tier tier : kFastTiers) {
    const Capture fast = run_tier(sc, tier, program, stage);
    EXPECT_EQ(fast.result.halt, Halt::kEcallExit) << tier_name(tier);
    EXPECT_EQ(fast.result.exit_code, DmaEngine::kStatusError);
    EXPECT_EQ(fast.regs[11], DmaEngine::kStatusError);
    EXPECT_EQ(fast.regs[12], 0x8000000Bu);  // mcause: machine external irq
    EXPECT_EQ(fast.regs[13], 0u);           // W1C cleared ERROR
    expect_identical(legacy, fast, "dma fault abort");
  }
}

// ------------------------------------------------ self-modifying code

TEST(SysimDiffTest, SelfModifyingCodeReexecutesPatchedWord) {
  SystemConfig sc;
  sc.accel = small_accel();

  // Encoding of the replacement instruction.
  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);
  const std::uint32_t patched_word = enc.assemble()[0];

  // The li expansion length depends on the patch address, which depends
  // on the layout: iterate to a fixed point.
  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.li(t0, patch_addr);
    as.li(t1, patched_word);
    as.li(s0, 0);
    as.li(s1, 2);
    as.label("loop");
    as.label("patch");
    as.addi(a0, zero, 11);
    as.sw(t1, t0, 0);  // overwrite the instruction just executed
    as.addi(s0, s0, 1);
    as.blt(s0, s1, "loop");
    as.ebreak();
    const std::uint32_t found = as.address_of("patch");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  const Capture legacy = run_tier(sc, Tier::kLegacy, program);
  for (const Tier tier : kFastTiers) {
    const Capture fast = run_tier(sc, tier, program);
    EXPECT_EQ(fast.result.halt, Halt::kEbreak) << tier_name(tier);
    EXPECT_EQ(fast.regs[10], 77u)
        << "second loop iteration must execute the patched instruction";
    expect_identical(legacy, fast, "self-modifying code");
  }
}

TEST(SysimDiffTest, SmcPatchesMiddleOfChainedHotLoop) {
  // A hot loop split into chained blocks by an inner branch runs long
  // enough for the block tier to chain it; then a store from one block
  // rewrites an instruction in the middle of another. The patched word
  // must take effect on the very next iteration in every tier, and the
  // block tier must observably evict and rebuild.
  SystemConfig sc;
  sc.accel = small_accel();

  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);
  const std::uint32_t patched_word = enc.assemble()[0];

  // li expansion length depends on the patch address: fixed point.
  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.li(t0, patch_addr);
    as.li(t1, patched_word);
    as.li(s0, 0);
    as.li(s1, 60);  // total iterations
    as.li(s2, 40);  // start patching after this many
    as.label("loop");
    as.addi(s0, s0, 1);
    as.blt(s0, s2, "mid");  // splits the loop body into two blocks
    as.sw(t1, t0, 0);       // rewrite 'mid' (hot and chained by now)
    as.label("mid");
    as.addi(a0, zero, 11);
    as.blt(s0, s1, "loop");
    as.ebreak();
    const std::uint32_t found = as.address_of("mid");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  const Capture block = diff_drive(sc, "smc chained hot loop",
                                   [&](System& system) {
                                     system.load_program(program);
                                     system.run();
                                   });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[10], 77u) << "patched instruction must execute";
  EXPECT_GE(block.bstats.evictions, 1u) << "store must evict the block";
  EXPECT_GT(block.bstats.chained, 0u) << "loop must chain before the patch";
}

TEST(SysimDiffTest, DmaOverwritesCachedBlock) {
  // A DMA transfer lands on an instruction inside an already-translated
  // hot loop between two passes over it: bus-side writes must evict
  // blocks through the same coherence path as CPU stores.
  SystemConfig sc;
  sc.accel = small_accel();

  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);
  const std::uint32_t patched_word = enc.assemble()[0];

  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.li(s7, sc.dma_base);
    as.li(s1, 30);  // iterations per pass
    as.li(s3, 0);   // pass counter
    as.label("again");
    as.li(s0, 0);
    as.label("loop");
    as.label("patchme");
    as.addi(a0, zero, 11);
    as.addi(s0, s0, 1);
    as.blt(s0, s1, "loop");
    as.bne(s3, zero, "done");
    // Between passes: DMA the staged replacement word over 'patchme'.
    as.li(t1, sc.dram_base + 0x10000);
    as.sw(t1, s7, DmaEngine::kRegSrc);
    as.li(t1, patch_addr);
    as.sw(t1, s7, DmaEngine::kRegDst);
    as.li(t1, 4);
    as.sw(t1, s7, DmaEngine::kRegLen);
    as.li(t1, DmaEngine::kCtrlStart);
    as.sw(t1, s7, DmaEngine::kRegCtrl);
    as.label("poll");
    as.lw(t1, s7, DmaEngine::kRegStatus);
    as.andi(t1, t1, DmaEngine::kStatusDone);
    as.beq(t1, zero, "poll");
    as.li(t1, DmaEngine::kStatusDone);
    as.sw(t1, s7, DmaEngine::kRegStatus);  // W1C
    as.li(s3, 1);
    as.j("again");
    as.label("done");
    as.ebreak();
    const std::uint32_t found = as.address_of("patchme");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  const auto stage = [&](System& s) {
    std::uint8_t bytes[4];
    std::memcpy(bytes, &patched_word, 4);
    s.write_dram(0x10000, bytes, 4);
  };
  const Capture block = diff_drive(sc, "dma overwrites cached block",
                                   [&](System& system) {
                                     stage(system);
                                     system.load_program(program);
                                     system.run();
                                   });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[10], 77u)
      << "second pass must execute the DMA-patched instruction";
  EXPECT_GE(block.bstats.evictions, 1u) << "DMA write must evict the block";
}

TEST(SysimDiffTest, FaultFlipInsideFusedPair) {
  // Transient bit flip in the second half of a lui+addi fused pair
  // inside a hot loop: invalidation must evict the block and the
  // rebuilt pair must fuse around the corrupted word, bit-identical to
  // the decode-every-fetch oracle.
  SystemConfig sc;
  sc.accel = small_accel();
  Assembler as(sc.dram_base);
  as.li(s0, 0);    // one word (addi)
  as.li(s1, 200);  // one word (addi)
  as.label("loop");
  as.li(a0, 0x12345678);  // lui+addi at byte offsets 8 and 12
  as.addi(s0, s0, 1);
  as.blt(s0, s1, "loop");  // fuses with the addi (op+branch)
  as.ebreak();
  const auto program = as.assemble();
  ASSERT_EQ(as.address_of("loop"), sc.dram_base + 8);

  const Capture block =
      diff_drive(sc, "flip inside fused pair", [&](System& system) {
        system.load_program(program);
        system.run_until(100);  // loop is hot, pair is fused
        // Flip imm[4] of the addi half (code byte 15, bit 0).
        system.dram().flip_bit(15, 0);
        system.run_until(500000);
      });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[10], 0x12345668u)
      << "remaining iterations must materialize the corrupted constant";
  EXPECT_GE(block.bstats.evictions, 1u) << "flip must evict the block";
  EXPECT_GT(block.bstats.fused_exec, 0u);
}

// --------------------------------------------- RV32C / constant folding

TEST(SysimDiffTest, RvcDenseLoop) {
  // The compressed workload: mixed 2/4-byte fetch through all three
  // tiers, bit-identical, with the block tier demonstrating the fetch
  // traffic reduction through its counters.
  SystemConfig sc;
  sc.accel = small_accel();
  constexpr std::uint32_t kWords = 96;
  std::vector<std::uint32_t> data(kWords);
  for (std::uint32_t i = 0; i < kWords; ++i)
    data[i] = 0x9E3779B9u * (i + 1);  // deterministic scramble input
  const auto program = build_rvc_loop(sc, 0x40000, 0x48000, kWords);

  const Capture block = diff_drive(sc, "rvc dense loop", [&](System& system) {
    system.write_dram(0x40000, data.data(), data.size() * 4);
    system.load_program(program);
    system.run();
  });
  EXPECT_EQ(block.result.halt, Halt::kEcallExit);
  EXPECT_EQ(block.result.exit_code, 0);
  EXPECT_GT(block.bstats.rvc_built, 0u);
  // 2-byte forms must dominate the decode traffic: total bytes fetched
  // into blocks stays below 4 bytes per compressed op alone.
  EXPECT_LT(block.bstats.fetch_bytes, 4 * block.bstats.rvc_built);
}

TEST(SysimDiffTest, MisaAndMisalignedFetchTrap) {
  // misa reports RV32IMC; an mret to an odd mepc takes the
  // instruction-address-misaligned trap (cause 0) with the faulting pc
  // in both mtval and mepc — identically on every tier.
  SystemConfig sc;
  sc.accel = small_accel();
  std::uint32_t handler_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.csrrs(a1, kCsrMisa, zero);
    as.li(t0, handler_addr);
    as.csrrw(zero, kCsrMtvec, t0);
    as.li(t1, sc.dram_base + 0x201);  // odd resume target
    as.csrrw(zero, kCsrMepc, t1);
    as.mret();
    as.label("handler");
    as.csrrs(a2, kCsrMcause, zero);
    as.csrrs(a3, kCsrMtval, zero);
    as.csrrs(a4, kCsrMepc, zero);
    as.ebreak();
    const std::uint32_t found = as.address_of("handler");
    program = as.assemble();
    if (found == handler_addr) break;
    handler_addr = found;
  }

  const Capture block =
      diff_drive(sc, "misa + misaligned fetch", [&](System& system) {
        system.load_program(program);
        system.run();
      });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[11], 0x40001104u) << "misa: MXL=1 + I, M, C";
  EXPECT_EQ(block.regs[12], 0u) << "mcause: instruction address misaligned";
  EXPECT_EQ(block.regs[13], sc.dram_base + 0x201) << "mtval: faulting pc";
  EXPECT_EQ(block.regs[14], sc.dram_base + 0x201) << "mepc: faulting pc";
}

TEST(SysimDiffTest, StoreOverwritesAdjacentCompressedPair) {
  // A 4-byte store rewrites two adjacent 2-byte instructions inside a
  // hot compressed loop: the block tier must evict on the clipped pair
  // and every tier must execute the patched full-width instruction.
  SystemConfig sc;
  sc.accel = small_accel();

  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);
  const std::uint32_t patched_word = enc.assemble()[0];

  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 6; ++iter) {
    Assembler as(sc.dram_base, /*compress=*/true);
    as.li(t0, patch_addr);
    as.li(t1, patched_word);
    as.li(s0, 0);
    as.li(s1, 60);  // total iterations
    as.li(s2, 40);  // start patching after this many
    as.label("loop");
    as.addi(s0, s0, 1);  // c.addi
    as.blt(s0, s2, "mid");
    as.sw(t1, t0, 0);  // full-width store over the compressed pair
    as.label("mid");
    as.addi(a0, zero, 11);  // c.li  \ the adjacent 2-byte pair the
    as.addi(a0, a0, 1);     // c.addi / store overwrites
    as.blt(s0, s1, "loop");
    as.ebreak();
    const std::uint32_t found = as.address_of("mid");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  const Capture block = diff_drive(sc, "store over compressed pair",
                                   [&](System& system) {
                                     system.load_program(program);
                                     system.run();
                                   });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[10], 77u)
      << "patched full-width instruction must execute";
  EXPECT_GE(block.bstats.evictions, 1u) << "store must evict the block";
  EXPECT_GT(block.bstats.rvc_built, 0u);
}

TEST(SysimDiffTest, SmcPatchesHalfOfWideInstructionAtBlockTail) {
  // A 2-byte store rewrites only the upper parcel of a 32-bit
  // instruction sitting at the tail of a translated block: the
  // clipped-half invalidation must evict, and the re-decoded word
  // (old lower half + new upper half) must execute on every tier.
  SystemConfig sc;
  sc.accel = small_accel();

  Assembler enc(sc.dram_base);
  enc.addi(a0, zero, 77);   // target word after the patch
  enc.addi(a0, zero, 11);   // word initially at the patch site
  const auto enc_words = enc.assemble();
  // Both words share the lower parcel (same rd/funct3/opcode bits), so
  // patching just the upper half switches the immediate 11 -> 77.
  ASSERT_EQ(enc_words[0] & 0xFFFFu, enc_words[1] & 0xFFFFu);
  const std::uint32_t patch_half = enc_words[0] >> 16;

  std::uint32_t patch_addr = sc.dram_base;
  std::vector<std::uint32_t> program;
  for (int iter = 0; iter < 4; ++iter) {
    Assembler as(sc.dram_base);
    as.li(t0, patch_addr);
    as.li(t1, patch_half);
    as.li(s0, 0);
    as.li(s1, 60);
    as.li(s2, 40);
    as.label("loop");
    as.addi(s0, s0, 1);
    as.blt(s0, s2, "mid");
    as.sh(t1, t0, 2);  // clip only the upper half of the tail op
    as.label("mid");
    as.addi(a0, zero, 11);  // tail of the 'mid' block (branch terminates)
    as.blt(s0, s1, "loop");
    as.ebreak();
    const std::uint32_t found = as.address_of("mid");
    program = as.assemble();
    if (found == patch_addr) break;
    patch_addr = found;
  }

  const Capture block = diff_drive(sc, "smc patches half of wide op",
                                   [&](System& system) {
                                     system.load_program(program);
                                     system.run();
                                   });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[10], 77u) << "half-patched instruction must execute";
  EXPECT_GE(block.bstats.evictions, 1u)
      << "half-word store must evict the block";
}

TEST(SysimDiffTest, InstructionStraddlesWindowEdge) {
  // A compressed run at the very top of DRAM ends with a 32-bit
  // instruction whose upper parcel lies past the end of memory: block
  // building must stop at the straddle, and the eventual fetch must
  // fault identically on every tier (two-parcel fetch, lower read ok,
  // upper read faults).
  SystemConfig sc;
  sc.accel = small_accel();

  Assembler tail(sc.dram_base + sc.dram_size - 6, /*compress=*/true);
  tail.addi(a0, a0, 1);   // c.addi
  tail.addi(a0, a0, 2);   // c.addi
  tail.addi(a0, a0, 77);  // 4-byte: imm 77 does not fit a C form
  const auto tail_words = tail.assemble();
  ASSERT_EQ(tail_words.size(), 2u);  // 2 + 2 + 4 bytes
  std::uint8_t tail_bytes[8];
  std::memcpy(tail_bytes, tail_words.data(), 8);

  Assembler as(sc.dram_base);
  as.li(a0, 0);
  as.li(t0, sc.dram_base + sc.dram_size - 6);
  as.jalr(zero, t0, 0);
  const auto program = as.assemble();

  const Capture block =
      diff_drive(sc, "instruction straddles window edge", [&](System& system) {
        // Only the first 6 bytes fit: the straddling word's upper
        // parcel has no backing memory.
        system.write_dram(sc.dram_size - 6, tail_bytes, 6);
        system.load_program(program);
        system.run();
      });
  EXPECT_EQ(block.result.halt, Halt::kBusFault);
  EXPECT_EQ(block.regs[10], 3u)
      << "both compressed adds must retire before the faulting fetch";
}

TEST(SysimDiffTest, FaultFlipInsideFoldedChain) {
  // Transient bit flip lands inside an op that was constant-folded as
  // part of a known-register chain in a hot loop: invalidation must
  // evict the block, and the rebuilt fold must propagate the corrupted
  // immediate — bit-identical to the decode-every-fetch oracle.
  SystemConfig sc;
  sc.accel = small_accel();
  sc.cpu.block_constfold = true;  // pinned: assertions count folds
  Assembler as(sc.dram_base);
  as.li(s0, 0);    // one word (addi)
  as.li(s1, 200);  // one word (addi)
  as.label("loop");
  as.li(a0, 0x12345678);  // lui+addi fused pair seeds the known set
  as.addi(a1, a0, 0x10);  // folded: a1 = const + 0x10
  as.slli(a2, a1, 1);     // folded: chained through a1
  as.addi(s0, s0, 1);
  as.blt(s0, s1, "loop");
  as.ebreak();
  const auto program = as.assemble();
  ASSERT_EQ(as.address_of("loop"), sc.dram_base + 8);

  const Capture block =
      diff_drive(sc, "flip inside folded chain", [&](System& system) {
        system.load_program(program);
        system.run_until(100);  // loop is hot, chain is folded
        // Flip imm[4] of the folded addi (code byte 19, bit 0):
        // 0x10 -> 0, so the rebuilt fold yields a1 = const + 0.
        system.dram().flip_bit(19, 0);
        system.run_until(500000);
      });
  EXPECT_EQ(block.result.halt, Halt::kEbreak);
  EXPECT_EQ(block.regs[11], 0x12345678u)
      << "rebuilt fold must propagate the corrupted immediate";
  EXPECT_EQ(block.regs[12], 0x2468ACF0u)
      << "downstream fold must chain through the corrupted value";
  EXPECT_GE(block.bstats.evictions, 1u) << "flip must evict the block";
  EXPECT_GT(block.bstats.folded_built, 0u);
  EXPECT_GT(block.bstats.folded_exec, 0u);
}

// ------------------------------------------------------ fault flips

struct FaultScenario {
  const char* what;
  FaultSpec spec;
};

class DiffFaultTest : public ::testing::TestWithParam<FaultScenario> {};

TEST_P(DiffFaultTest, InjectedRunsIdentical) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto stage = gemm_stager(wl, 341);
  const auto program = build_gemm_offload(wl, sc, OffloadPath::kMmrPolling);
  const FaultSpec& spec = GetParam().spec;
  constexpr std::uint64_t kMax = 500000;

  diff_drive(sc, GetParam().what, [&](System& system) {
    stage(system);
    system.load_program(program);
    system.run_until(std::min<std::uint64_t>(spec.cycle, kMax));
    switch (spec.target) {
      case FaultTarget::kCpuRegfile:
        if (spec.model == FaultModel::kTransientFlip)
          system.cpu().flip_reg_bit(static_cast<int>(spec.index), spec.bit);
        else
          system.cpu().set_reg_stuck_bit(static_cast<int>(spec.index),
                                         spec.bit,
                                         spec.model == FaultModel::kStuckAt1);
        break;
      case FaultTarget::kDramData:
        if (spec.model == FaultModel::kTransientFlip)
          system.dram().flip_bit(spec.index, spec.bit);
        else
          system.dram().set_stuck_bit(spec.index, spec.bit,
                                      spec.model == FaultModel::kStuckAt1);
        break;
      case FaultTarget::kAccelSpmW:
        system.pe(0).spm_w().set_stuck_bit(spec.index, spec.bit, true);
        break;
      default:
        system.pe(0).inject_phase_fault(spec.index, spec.phase_delta_rad);
        break;
    }
    system.run_until(kMax);
  });
}

FaultScenario scenario(const char* what, FaultTarget target, FaultModel model,
                       std::uint64_t cycle, std::uint32_t index,
                       unsigned bit) {
  FaultScenario s;
  s.what = what;
  s.spec.target = target;
  s.spec.model = model;
  s.spec.cycle = cycle;
  s.spec.index = index;
  s.spec.bit = bit;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, DiffFaultTest,
    ::testing::Values(
        scenario("reg transient flip", FaultTarget::kCpuRegfile,
                 FaultModel::kTransientFlip, 200, 10, 3),
        scenario("reg stuck-at-1", FaultTarget::kCpuRegfile,
                 FaultModel::kStuckAt1, 150, 6, 0),
        // Data-region flip: exercises icache-range rejection.
        scenario("dram data flip", FaultTarget::kDramData,
                 FaultModel::kTransientFlip, 300, 0x20004, 5),
        // Code-region flip: the cached micro-op must be re-decoded.
        scenario("dram code flip", FaultTarget::kDramData,
                 FaultModel::kTransientFlip, 250, 24, 1),
        // Code-region stuck-at: revokes the DRAM direct span mid-run.
        scenario("dram code stuck-at-1", FaultTarget::kDramData,
                 FaultModel::kStuckAt1, 220, 16, 6),
        scenario("spm-w stuck-at-1", FaultTarget::kAccelSpmW,
                 FaultModel::kStuckAt1, 1, 3, 6),
        scenario("phase fault", FaultTarget::kAccelPhase,
                 FaultModel::kTransientFlip, 400, 5, 0)),
    [](const ::testing::TestParamInfo<FaultScenario>& info) {
      std::string name = info.param.what;
      for (auto& ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

TEST(SysimDiffTest, StuckArmThenClearMidRun) {
  // Arm a stuck-at bit on the DRAM code region mid-run (revoking the
  // direct span), then clear it again later: the fast engine must fall
  // back to masked reads and recover the fast path, matching the
  // per-cycle interpreter cycle for cycle.
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto stage = gemm_stager(wl, 371);
  const auto program = build_gemm_software(wl, sc);

  diff_drive(sc, "stuck arm + clear mid-run", [&](System& system) {
    stage(system);
    system.load_program(program);
    system.run_until(300);
    system.dram().set_stuck_bit(16, 1, true);  // code region
    system.run_until(600);
    system.dram().clear_faults();
    system.run_until(500000);
  });
}

// ------------------------------------------------ DMA bulk fast path

/// DMA DRAM->DRAM copy with WFI/irq synchronization; parameterized
/// offsets/length stress the beat-alignment arithmetic of the bulk move.
std::vector<std::uint32_t> build_dma_copy(const SystemConfig& sc,
                                          std::uint32_t src_off,
                                          std::uint32_t dst_off,
                                          std::uint32_t len) {
  Assembler as(sc.dram_base);
  as.li(t0, sc.dram_base + 0x200);  // handler
  as.csrrw(zero, kCsrMtvec, t0);
  as.li(t0, 1u << 11);  // MEIE
  as.csrrw(zero, kCsrMie, t0);
  as.li(t0, 1u << 3);  // MIE
  as.csrrs(zero, kCsrMstatus, t0);
  as.li(s7, sc.dma_base);
  as.li(t1, sc.dram_base + src_off);
  as.sw(t1, s7, DmaEngine::kRegSrc);
  as.li(t1, sc.dram_base + dst_off);
  as.sw(t1, s7, DmaEngine::kRegDst);
  as.li(t1, len);
  as.sw(t1, s7, DmaEngine::kRegLen);
  as.li(t1, DmaEngine::kCtrlStart | DmaEngine::kCtrlIrqEn);
  as.sw(t1, s7, DmaEngine::kRegCtrl);
  as.wfi();
  as.label("spin");
  as.j("spin");
  while (as.current_address() < sc.dram_base + 0x200) as.nop();
  as.label("handler");
  as.li(t0, DmaEngine::kStatusDone);
  as.sw(t0, s7, DmaEngine::kRegStatus);
  as.li(a0, 0);
  as.li(a7, 93);
  as.ecall();
  return as.assemble();
}

struct DmaCase {
  const char* what;
  std::uint32_t src_off, dst_off, len;
};

class DiffDmaTest : public ::testing::TestWithParam<DmaCase> {};

TEST_P(DiffDmaTest, BulkMoveCycleExact) {
  SystemConfig sc;
  sc.accel = small_accel();
  const DmaCase& dc = GetParam();
  const auto stage = [&](System& s) {
    std::vector<std::uint8_t> src(dc.len);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<std::uint8_t>(i * 7 + 3);
    s.write_dram(dc.src_off, src.data(), src.size());
  };
  diff_program(sc, build_dma_copy(sc, dc.src_off, dc.dst_off, dc.len),
               dc.what, stage);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DiffDmaTest,
    ::testing::Values(
        DmaCase{"aligned", 0x10000, 0x11000, 0x400},
        // Congruent but unaligned: byte prologue, then word beats.
        DmaCase{"congruent_unaligned", 0x10001, 0x11001, 253},
        // Incongruent: every beat degrades to byte transfers.
        DmaCase{"incongruent", 0x10001, 0x11002, 251},
        // Odd tail: last beat shorter than the word width.
        DmaCase{"odd_tail", 0x10000, 0x11000, 0x3F5},
        // Overlapping ranges: the bulk move must refuse and the exact
        // per-cycle path take over (forward copy duplicates bytes).
        DmaCase{"overlap_forward", 0x10000, 0x10080, 0x100},
        DmaCase{"overlap_backward", 0x10080, 0x10000, 0x100}),
    [](const ::testing::TestParamInfo<DmaCase>& info) {
      return std::string(info.param.what);
    });

// ---------------------------------------------- snapshot / restore

TEST(SnapshotTest, MutateRestoreRoundTripEqualsFreshSystem) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto stage = gemm_stager(wl, 411);
  const auto program = build_gemm_offload(wl, sc, OffloadPath::kMmrPolling);

  System system(sc);
  stage(system);
  system.load_program(program);
  const System::SystemSnapshot snap = system.snapshot();

  // Beat the system up: run, arm every fault class, run some more.
  system.run_until(400);
  system.cpu().flip_reg_bit(9, 4);
  system.cpu().set_reg_stuck_bit(12, 2, true);
  system.dram().flip_bit(0x20008, 3);
  system.dram().set_stuck_bit(20, 1, true);  // code region, revokes span
  system.pe(0).spm_w().set_stuck_bit(5, 7, true);
  system.pe(0).inject_phase_fault(2, 0.9);
  system.run_until(2000);

  system.restore(snap);

  // A freshly staged identical system is the ground truth.
  System fresh(sc);
  stage(fresh);
  fresh.load_program(program);

  // Registers, counters, DRAM image.
  const Capture restored = capture_state(system);
  const Capture baseline = capture_state(fresh);
  expect_identical(baseline, restored, "restored vs fresh");

  // SPM images and the programmed photonic transfer, bit for bit.
  for (std::uint32_t off = 0; off < system.pe(0).spm_w().size(); ++off)
    ASSERT_EQ(system.pe(0).spm_w().read(off, 1), fresh.pe(0).spm_w().read(off, 1));
  const auto& t_restored = system.pe(0).gemm().engine().physical_transfer();
  const auto& t_fresh = fresh.pe(0).gemm().engine().physical_transfer();
  EXPECT_EQ(t_restored.raw(), t_fresh.raw()) << "mesh transfer differs";

  // And both runs from here must be indistinguishable to completion.
  system.run_until(500000);
  fresh.run_until(500000);
  expect_identical(capture_state(fresh), capture_state(system),
                   "post-restore execution");
}

TEST(SnapshotTest, RestoredTrialMatchesRebuiltSystemPerScenario) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto stage = gemm_stager(wl, 421);
  const auto program = build_gemm_offload(wl, sc, OffloadPath::kMmrPolling);
  constexpr std::uint64_t kMax = 500000;

  const FaultSpec specs[] = {
      {FaultTarget::kCpuRegfile, FaultModel::kTransientFlip, 200, 10, 3, 0.5},
      {FaultTarget::kCpuRegfile, FaultModel::kStuckAt0, 150, 6, 0, 0.5},
      {FaultTarget::kDramData, FaultModel::kTransientFlip, 300, 0x20004, 5,
       0.5},
      {FaultTarget::kDramData, FaultModel::kStuckAt1, 220, 16, 6, 0.5},
      {FaultTarget::kAccelSpmW, FaultModel::kStuckAt1, 1, 3, 6, 0.5},
      {FaultTarget::kAccelSpmX, FaultModel::kTransientFlip, 350, 17, 2, 0.5},
      {FaultTarget::kAccelPhase, FaultModel::kTransientFlip, 400, 5, 0, 0.9},
  };

  const auto run_spec = [&](System& system, const FaultSpec& spec) {
    system.run_until(std::min(spec.cycle, kMax));
    switch (spec.target) {
      case FaultTarget::kCpuRegfile:
        if (spec.model == FaultModel::kTransientFlip)
          system.cpu().flip_reg_bit(static_cast<int>(spec.index), spec.bit);
        else
          system.cpu().set_reg_stuck_bit(static_cast<int>(spec.index),
                                         spec.bit,
                                         spec.model == FaultModel::kStuckAt1);
        break;
      case FaultTarget::kDramData:
        if (spec.model == FaultModel::kTransientFlip)
          system.dram().flip_bit(spec.index, spec.bit);
        else
          system.dram().set_stuck_bit(spec.index, spec.bit,
                                      spec.model == FaultModel::kStuckAt1);
        break;
      case FaultTarget::kAccelSpmW:
        system.pe(0).spm_w().set_stuck_bit(spec.index, spec.bit, true);
        break;
      case FaultTarget::kAccelSpmX:
        system.pe(0).spm_x().flip_bit(spec.index, spec.bit);
        break;
      default:
        system.pe(0).inject_phase_fault(spec.index, spec.phase_delta_rad);
        break;
    }
    system.run_until(kMax);
  };

  // One long-lived system restored between trials (the campaign pattern)
  // vs a freshly constructed system per trial (the PR 3 behavior).
  System reused(sc);
  stage(reused);
  reused.load_program(program);
  const System::SystemSnapshot snap = reused.snapshot();

  for (const FaultSpec& spec : specs) {
    reused.restore(snap);
    run_spec(reused, spec);

    System rebuilt(sc);
    stage(rebuilt);
    rebuilt.load_program(program);
    run_spec(rebuilt, spec);

    expect_identical(capture_state(rebuilt), capture_state(reused),
                     (std::string("spec target ") + to_string(spec.target) +
                      " model " + to_string(spec.model))
                         .c_str());
  }
}

TEST(SnapshotTest, SerialAndParallelCampaignVerdictsIdentical) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 431);
  const auto x = random_fixed(wl.n * wl.m, 432);
  const auto program = build_gemm_offload(wl, sc, OffloadPath::kMmrPolling);
  FaultCampaign campaign(
      [&]() {
        auto system = std::make_unique<System>(sc);
        stage_gemm_data(*system, wl, a, x);
        system->load_program(program);
        return system;
      },
      [&](System& s) {
        const auto y = read_gemm_result(s, wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        memcpy(bytes.data(), y.data(), bytes.size());
        return bytes;
      },
      500000);

  aspen::lina::Rng rng(433);
  const std::pair<FaultTarget, FaultModel> points[] = {
      {FaultTarget::kCpuRegfile, FaultModel::kTransientFlip},
      {FaultTarget::kCpuRegfile, FaultModel::kStuckAt1},
      {FaultTarget::kDramData, FaultModel::kTransientFlip},
      {FaultTarget::kAccelSpmW, FaultModel::kStuckAt0},
      {FaultTarget::kAccelSpmX, FaultModel::kTransientFlip},
      {FaultTarget::kAccelPhase, FaultModel::kTransientFlip},
  };
  for (const auto& [target, model] : points) {
    const auto specs = campaign.sample_specs(target, model, 6, rng);
    const auto serial = campaign.run_trials(specs, 1);
    const auto parallel = campaign.run_trials(specs, 4);
    EXPECT_EQ(serial, parallel)
        << "verdicts diverge for " << to_string(target) << "/"
        << to_string(model);
  }
}

TEST(SysimDiffTest, CampaignVerdictsIdentical) {
  SystemConfig sc;
  sc.accel = small_accel();
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 351);
  const auto x = random_fixed(wl.n * wl.m, 352);
  const auto program = build_gemm_offload(wl, sc, OffloadPath::kMmrPolling);
  const auto read_y = [wl](System& s) {
    const auto y = read_gemm_result(s, wl);
    std::vector<std::uint8_t> bytes(y.size() * 2);
    memcpy(bytes.data(), y.data(), bytes.size());
    return bytes;
  };

  const auto campaign_counts = [&](Tier tier) {
    const SystemConfig mode_sc = with_tier(sc, tier);
    FaultCampaign campaign(
        [&, mode_sc]() {
          auto system = std::make_unique<System>(mode_sc);
          stage_gemm_data(*system, wl, a, x);
          system->load_program(program);
          return system;
        },
        read_y, 500000);
    aspen::lina::Rng rng(353);  // same draw sequence in every tier
    CampaignResult res;
    for (const FaultTarget target :
         {FaultTarget::kCpuRegfile, FaultTarget::kDramData}) {
      const auto part = campaign.run_campaign(
          target, FaultModel::kTransientFlip, 15, rng);
      for (const auto& [o, n] : part.counts) res.counts[o] += n;
      res.total += part.total;
    }
    return res;
  };

  const CampaignResult legacy = campaign_counts(Tier::kLegacy);
  for (const Tier tier : kFastTiers) {
    const CampaignResult fast = campaign_counts(tier);
    EXPECT_EQ(legacy.total, fast.total) << tier_name(tier);
    EXPECT_EQ(legacy.counts, fast.counts) << tier_name(tier);
  }
}

}  // namespace
