// Unit + property tests for the mesh architectures (S3): layouts,
// Reck/Clements decompositions, physical mesh error models, calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "lina/random.hpp"
#include "mesh/analysis.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "mesh/layout.hpp"
#include "mesh/physical_mesh.hpp"

namespace {

using namespace aspen::mesh;
using aspen::lina::CMat;
using aspen::lina::Rng;

TEST(LayoutTest, ClementsCellCountAndDepth) {
  for (std::size_t n : {2, 3, 4, 5, 8, 12}) {
    const MeshLayout m = clements_layout(n);
    EXPECT_EQ(m.mzi_count(), n * (n - 1) / 2) << "n=" << n;
    // n MZI columns (1 for n = 2, whose odd column is empty) + output
    // phase column.
    EXPECT_EQ(m.depth(), (n == 2 ? 1 : n) + 1) << "n=" << n;
    EXPECT_EQ(m.phase_count(), n * (n - 1) + n) << "n=" << n;
  }
}

TEST(LayoutTest, ReckCellCountAndDepth) {
  for (std::size_t n : {2, 3, 4, 5, 8, 12}) {
    const MeshLayout m = reck_layout(n);
    EXPECT_EQ(m.mzi_count(), n * (n - 1) / 2) << "n=" << n;
    EXPECT_EQ(m.depth(), (n == 2 ? 1 : 2 * n - 3) + 1) << "n=" << n;
  }
}

TEST(LayoutTest, FldzhyanPhaseCount) {
  const MeshLayout m = fldzhyan_layout(6);  // default n+1 phase layers
  EXPECT_EQ(m.phase_count(), 6u * 7u);
  EXPECT_EQ(m.mzi_count(), 0u);
  EXPECT_GT(m.coupler_count(), 0u);
}

TEST(LayoutTest, RedundantAddsColumns) {
  const MeshLayout base = clements_layout(6);
  const MeshLayout red = redundant_layout(6, 2);
  EXPECT_EQ(red.depth(), base.depth() + 2);
  EXPECT_GT(red.phase_count(), base.phase_count());
}

TEST(LayoutTest, ValidationCatchesOverlap) {
  MeshLayout m;
  m.ports = 4;
  MziColumn bad;
  bad.top_ports = {0, 1};  // overlapping cells
  m.columns.emplace_back(bad);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LayoutTest, ValidationCatchesOutOfRange) {
  MeshLayout m;
  m.ports = 4;
  MziColumn bad;
  bad.top_ports = {3};  // cell would span ports 3,4 but ports = 4
  m.columns.emplace_back(bad);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ColumnPackerTest, PacksClementsRectangle) {
  // Packing the Clements encounter order for n=4 must give the canonical
  // alternating rectangle {0,2},{1},{0,2},{1}.
  ColumnPacker p;
  for (int t : {0, 2, 1, 0, 2, 1}) p.add_cell(t, 4);
  const auto cols = p.columns();
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0].top_ports, (std::vector<int>{0, 2}));
  EXPECT_EQ(cols[1].top_ports, (std::vector<int>{1}));
  EXPECT_EQ(cols[2].top_ports, (std::vector<int>{0, 2}));
  EXPECT_EQ(cols[3].top_ports, (std::vector<int>{1}));
}

class DecompositionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecompositionTest, ClementsReconstructs) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 3; ++trial) {
    const CMat u = aspen::lina::haar_unitary(n, rng);
    const ProgrammedMesh pm = clements_decompose(u);
    const CMat rebuilt = ideal_transfer(pm);
    EXPECT_LT(u.max_abs_diff(rebuilt), 1e-9) << "n=" << n << " t=" << trial;
  }
}

TEST_P(DecompositionTest, ReckReconstructs) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  for (int trial = 0; trial < 3; ++trial) {
    const CMat u = aspen::lina::haar_unitary(n, rng);
    const ProgrammedMesh pm = reck_decompose(u);
    const CMat rebuilt = ideal_transfer(pm);
    EXPECT_LT(u.max_abs_diff(rebuilt), 1e-9) << "n=" << n << " t=" << trial;
  }
}

TEST_P(DecompositionTest, ClementsLayoutMatchesBuilder) {
  const std::size_t n = GetParam();
  Rng rng(3000 + n);
  const CMat u = aspen::lina::haar_unitary(n, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  const MeshLayout built = clements_layout(n);
  ASSERT_EQ(pm.layout.columns.size(), built.columns.size());
  EXPECT_EQ(pm.layout.phase_count(), built.phase_count());
}

TEST_P(DecompositionTest, SymmetricStyleFidelityOne) {
  // Symmetric (Bell-Walmsley) cells reproduce the target up to a global
  // phase; fidelity must still be 1.
  const std::size_t n = GetParam();
  Rng rng(4000 + n);
  const CMat u = aspen::lina::haar_unitary(n, rng);
  const ProgrammedMesh pm =
      clements_decompose(u, aspen::phot::MziStyle::kSymmetric);
  EXPECT_NEAR(CMat::fidelity(u, ideal_transfer(pm)), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecompositionTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16));

TEST(DecompositionTest, RejectsNonUnitary) {
  Rng rng(1);
  const CMat g = aspen::lina::ginibre(4, 4, rng);
  EXPECT_THROW((void)clements_decompose(g), std::invalid_argument);
  EXPECT_THROW((void)reck_decompose(g), std::invalid_argument);
}

TEST(DecompositionTest, RejectsNonSquare) {
  const CMat g(3, 4);
  EXPECT_THROW((void)clements_decompose(g), std::invalid_argument);
}

TEST(DecompositionTest, IdentityGivesIdentity) {
  const CMat i8 = CMat::identity(8);
  const ProgrammedMesh pm = clements_decompose(i8);
  EXPECT_LT(ideal_transfer(pm).max_abs_diff(i8), 1e-10);
}

TEST(PhysicalMeshTest, ZeroErrorMatchesIdeal) {
  Rng rng(5);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  em.coupler_loss_db = 0.0;
  em.ps_loss_db = 0.0;
  em.routing_loss_db_per_column = 0.0;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  EXPECT_LT(mesh.transfer().max_abs_diff(u), 1e-9);
}

TEST(PhysicalMeshTest, LossyTransferIsSubunitary) {
  Rng rng(6);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  PhysicalMesh mesh(pm.layout, MeshErrorModel{});  // default losses on
  mesh.program(pm.phases);
  const CMat t = mesh.transfer();
  // Every singular value < 1 but fidelity (shape) preserved.
  EXPECT_LT(t.frobenius(), u.frobenius());
  EXPECT_NEAR(CMat::fidelity(u, t), 1.0, 1e-9);
}

TEST(PhysicalMeshTest, PhaseCountMismatchThrows) {
  PhysicalMesh mesh(clements_layout(4), MeshErrorModel{});
  EXPECT_THROW(mesh.program(std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(PhysicalMeshTest, FabricationErrorsDegradeFidelity) {
  Rng rng(7);
  const CMat u = aspen::lina::haar_unitary(8, rng);
  const ProgrammedMesh pm = clements_decompose(u);

  MeshErrorModel dirty;
  dirty.coupler_sigma = 0.05;
  dirty.phase_sigma = 0.05;
  PhysicalMesh mesh(pm.layout, dirty);
  mesh.program(pm.phases);
  const double f = CMat::fidelity(u, mesh.transfer());
  EXPECT_LT(f, 0.9999);
  EXPECT_GT(f, 0.5);
}

TEST(PhysicalMeshTest, ErrorSeverityMonotone) {
  // Larger sigma must (statistically) hurt more; average over dies.
  Rng rng(8);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  auto mean_fid = [&](double sigma) {
    double acc = 0.0;
    for (std::uint64_t die = 0; die < 12; ++die) {
      MeshErrorModel em;
      em.coupler_sigma = sigma;
      em.phase_sigma = sigma;
      em.seed = 97 + die;
      PhysicalMesh mesh(pm.layout, em);
      mesh.program(pm.phases);
      acc += CMat::fidelity(u, mesh.transfer());
    }
    return acc / 12.0;
  };
  EXPECT_GT(mean_fid(0.01), mean_fid(0.15));
}

TEST(PhysicalMeshTest, SameSeedSameDie) {
  MeshErrorModel em;
  em.coupler_sigma = 0.05;
  em.phase_sigma = 0.05;
  em.seed = 1234;
  Rng rng(9);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  PhysicalMesh a(pm.layout, em), b(pm.layout, em);
  a.program(pm.phases);
  b.program(pm.phases);
  EXPECT_LT(a.transfer().max_abs_diff(b.transfer()), 1e-15);
}

TEST(PhysicalMeshTest, PcmQuantizationDegradesGracefully) {
  Rng rng(10);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);

  // Low-loss GeSe phase shifters sized for full 2*pi range.
  aspen::phot::PcmCellConfig coarse =
      aspen::phot::pcm_config_for_two_pi(aspen::phot::make_gese());
  coarse.level_bits = 3;
  aspen::phot::PcmCellConfig fine = coarse;
  fine.level_bits = 8;

  mesh.enable_pcm(fine);
  const double f_fine = CMat::fidelity(u, mesh.transfer());
  mesh.enable_pcm(coarse);
  const double f_coarse = CMat::fidelity(u, mesh.transfer());
  EXPECT_GT(f_fine, f_coarse);
  EXPECT_GT(f_fine, 0.99);
}

TEST(PhysicalMeshTest, DriftReducesFidelityOverTime) {
  Rng rng(11);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  PhysicalMesh mesh(pm.layout, MeshErrorModel{});
  mesh.program(pm.phases);
  aspen::phot::PcmCellConfig cfg =
      aspen::phot::pcm_config_for_two_pi(aspen::phot::make_gese());
  cfg.level_bits = 8;
  mesh.enable_pcm(cfg);
  mesh.set_drift_time(0.0);
  const double f0 = CMat::fidelity(u, mesh.transfer());
  mesh.set_drift_time(1e7);
  const double f1 = CMat::fidelity(u, mesh.transfer());
  EXPECT_LT(f1, f0);
}

TEST(PhysicalMeshTest, ThermalCrosstalkPerturbsTransfer) {
  Rng rng(12);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  em.thermal_crosstalk = 0.03;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  const double f = CMat::fidelity(u, mesh.transfer());
  EXPECT_LT(f, 0.99999);
}

TEST(PhysicalMeshTest, WavelengthDetuningRotatesCouplers) {
  Rng rng(40);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  PhysicalMesh mesh(pm.layout, MeshErrorModel{});
  mesh.program(pm.phases);
  const double f0 = CMat::fidelity(u, mesh.transfer());
  mesh.set_wavelength_detuning_nm(6.0);
  const double f6 = CMat::fidelity(u, mesh.transfer());
  mesh.set_wavelength_detuning_nm(0.0);
  const double f0b = CMat::fidelity(u, mesh.transfer());
  EXPECT_LT(f6, f0);
  EXPECT_DOUBLE_EQ(f0, f0b) << "detuning must be reversible";
}

TEST(PhysicalMeshTest, ZeroDispersionIgnoresDetuning) {
  Rng rng(41);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  em.coupler_dispersion_rad_per_nm = 0.0;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  const CMat t0 = mesh.transfer();
  mesh.set_wavelength_detuning_nm(10.0);
  EXPECT_LT(mesh.transfer().max_abs_diff(t0), 1e-15);
}

TEST(PhysicalMeshTest, NominalInsertionLossScalesWithDepth) {
  PhysicalMesh small(clements_layout(4), MeshErrorModel{});
  PhysicalMesh large(clements_layout(16), MeshErrorModel{});
  EXPECT_GT(large.nominal_insertion_loss_db(),
            small.nominal_insertion_loss_db());
}

TEST(CalibrateTest, RecoversFromFabricationErrors) {
  Rng rng(13);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  em.coupler_sigma = 0.03;
  em.phase_sigma = 0.05;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  const double before = CMat::fidelity(u, mesh.transfer());
  const auto report = calibrate(mesh, u);
  EXPECT_GT(report.final_fidelity, before);
  EXPECT_GT(report.final_fidelity, 0.999);
}

TEST(CalibrateTest, PerfectMeshStaysPerfect) {
  Rng rng(14);
  const CMat u = aspen::lina::haar_unitary(4, rng);
  const ProgrammedMesh pm = clements_decompose(u);
  MeshErrorModel em;
  em.coupler_loss_db = 0.0;
  em.ps_loss_db = 0.0;
  em.routing_loss_db_per_column = 0.0;
  PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  const auto report = calibrate(mesh, u);
  EXPECT_NEAR(report.final_fidelity, 1.0, 1e-9);
  EXPECT_LE(report.sweeps_used, 3);
}

TEST(CalibrateTest, ShapeMismatchThrows) {
  PhysicalMesh mesh(clements_layout(4), MeshErrorModel{});
  Rng rng(15);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  EXPECT_THROW((void)calibrate(mesh, u), std::invalid_argument);
}

TEST(AnalysisTest, LayoutFactory) {
  EXPECT_EQ(make_layout(Architecture::kReck, 6).mzi_count(), 15u);
  EXPECT_EQ(make_layout(Architecture::kClements, 6).mzi_count(), 15u);
  EXPECT_EQ(make_layout(Architecture::kFldzhyan, 6).mzi_count(), 0u);
  EXPECT_TRUE(has_analytic_decomposition(Architecture::kClements));
  EXPECT_FALSE(has_analytic_decomposition(Architecture::kFldzhyan));
}

TEST(AnalysisTest, ProgramForTargetAnalyticPerfectDie) {
  Rng rng(16);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  for (auto arch : {Architecture::kReck, Architecture::kClements,
                    Architecture::kClementsSym, Architecture::kRedundant}) {
    MeshErrorModel em;
    em.coupler_loss_db = 0.0;
    em.ps_loss_db = 0.0;
    em.routing_loss_db_per_column = 0.0;
    PhysicalMesh mesh(make_layout(arch, 5), em);
    const double f = program_for_target(arch, mesh, u, /*recalibrate=*/false);
    EXPECT_NEAR(f, 1.0, 1e-8) << to_string(arch);
  }
}

TEST(AnalysisTest, FldzhyanReachesHighFidelityOnPerfectDie) {
  Rng rng(17);
  const CMat u = aspen::lina::haar_unitary(4, rng);
  MeshErrorModel em;
  em.coupler_loss_db = 0.0;
  em.ps_loss_db = 0.0;
  em.routing_loss_db_per_column = 0.0;
  // Use a redundant (2n phase layers) Fldzhyan mesh: optimization-based
  // programming converges reliably with parameter headroom.
  PhysicalMesh mesh(fldzhyan_layout(4, 8), em);
  CalibrationOptions opt;
  opt.restarts = 4;
  const double f =
      program_for_target(Architecture::kFldzhyan, mesh, u, false, opt);
  EXPECT_GT(f, 0.99);
}

TEST(AnalysisTest, RecalibrationBeatsDirectProgrammingUnderError) {
  Rng rng(18);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  MeshErrorModel em;
  em.coupler_sigma = 0.05;
  em.phase_sigma = 0.05;
  em.seed = 77;
  PhysicalMesh direct(make_layout(Architecture::kClements, 5), em);
  PhysicalMesh recal(make_layout(Architecture::kClements, 5), em);
  const double f_direct =
      program_for_target(Architecture::kClements, direct, u, false);
  const double f_recal =
      program_for_target(Architecture::kClements, recal, u, true);
  EXPECT_GT(f_recal, f_direct);
}

TEST(AnalysisTest, HaarEnsembleRunsAndIsDeterministic) {
  MeshErrorModel em;
  em.coupler_sigma = 0.02;
  const auto a = haar_ensemble_fidelity(Architecture::kClements, 4, em, 3,
                                        false, /*seed=*/5);
  const auto b = haar_ensemble_fidelity(Architecture::kClements, 4, em, 3,
                                        false, /*seed=*/5);
  EXPECT_EQ(a.fidelity.count(), 3u);
  EXPECT_DOUBLE_EQ(a.fidelity.mean(), b.fidelity.mean());
}

}  // namespace
