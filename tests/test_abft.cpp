// Tests for the end-to-end fault detection & recovery stack: the ABFT
// checksum math (core/abft), the checked GemmCore tile path, the
// accelerator's CRC / ERROR / watchdog MMIO surface, the checked guest
// offload workload (detect -> retry -> software fallback), and the
// recovery-aware six-outcome fault campaigns built on top of them.
#include <gtest/gtest.h>

#include <cstring>

#include "core/abft.hpp"
#include "core/gemm_core.hpp"
#include "lina/random.hpp"
#include "sysim/crc32.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen::sys;
using aspen::core::abft_augment;
using aspen::core::abft_check;
using aspen::core::AbftReport;
using aspen::core::GemmConfig;
using aspen::core::GemmCore;
using aspen::core::kAbftRows;
using aspen::lina::CMat;
using aspen::lina::cplx;

// --------------------------------------------------------- ABFT checksums

CMat random_real_tile(std::size_t n, double lim, std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  CMat w(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      w(r, c) = cplx{rng.uniform(-lim, lim), 0.0};
  return w;
}

/// A block whose checksum rows are exact — what a fault-free augmented
/// multiply produces (up to fp noise).
CMat consistent_block(std::size_t n, std::size_t m, std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  CMat y(n + kAbftRows, m);
  for (std::size_t c = 0; c < m; ++c) {
    cplx sum{0.0, 0.0};
    cplx wsum{0.0, 0.0};
    for (std::size_t r = 0; r < n; ++r) {
      y(r, c) = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      sum += y(r, c);
      wsum += static_cast<double>(r + 1) * y(r, c);
    }
    y(n, c) = sum;
    y(n + 1, c) = wsum;
  }
  return y;
}

TEST(AbftTest, AugmentAppendsChecksumRowsAndZeroColumns) {
  const std::size_t n = 4;
  const CMat w = random_real_tile(n, 1.0, 1);
  const CMat a = abft_augment(w);
  ASSERT_EQ(a.rows(), n + kAbftRows);
  ASSERT_EQ(a.cols(), n + kAbftRows);
  for (std::size_t c = 0; c < n; ++c) {
    cplx sum{0.0, 0.0};
    cplx wsum{0.0, 0.0};
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(a(r, c), w(r, c));
      sum += w(r, c);
      wsum += static_cast<double>(r + 1) * w(r, c);
    }
    EXPECT_NEAR(std::abs(a(n, c) - sum), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(a(n + 1, c) - wsum), 0.0, 1e-12);
  }
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = n; c < a.cols(); ++c)
      EXPECT_EQ(a(r, c), (cplx{0.0, 0.0})) << "padding columns must be zero";
}

TEST(AbftTest, AugmentRejectsNonSquare) {
  CMat w(3, 4);
  EXPECT_THROW((void)abft_augment(w), std::invalid_argument);
}

TEST(AbftTest, CleanBlockPassesAllColumns) {
  CMat y = consistent_block(6, 5, 2);
  const AbftReport rep = abft_check(y, 1e-6);
  EXPECT_EQ(rep.counts.columns_checked, 5u);
  EXPECT_EQ(rep.counts.detected, 0u);
  EXPECT_EQ(rep.counts.corrected, 0u);
  EXPECT_EQ(rep.counts.uncorrectable, 0u);
  EXPECT_LT(rep.max_residual, 1e-9);
}

TEST(AbftTest, SingleDataErrorLocatedAndRepaired) {
  const std::size_t n = 6;
  CMat y = consistent_block(n, 4, 3);
  const CMat clean = y;
  y(2, 1) += cplx{0.25, -0.1};
  const AbftReport rep = abft_check(y, 1e-6);
  EXPECT_EQ(rep.counts.detected, 1u);
  EXPECT_EQ(rep.counts.corrected, 1u);
  EXPECT_EQ(rep.counts.uncorrectable, 0u);
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c)
      EXPECT_NEAR(std::abs(y(r, c) - clean(r, c)), 0.0, 1e-9)
          << "repair must restore the exact block (" << r << "," << c << ")";
}

TEST(AbftTest, ChecksumLaneErrorsRepairedWithoutTouchingData) {
  const std::size_t n = 6;
  // Error confined to the plain checksum lane: d2 closes, d1 does not.
  CMat y = consistent_block(n, 3, 4);
  CMat clean = y;
  y(n, 0) += cplx{0.3, 0.0};
  AbftReport rep = abft_check(y, 1e-6);
  EXPECT_EQ(rep.counts.detected, 1u);
  EXPECT_EQ(rep.counts.corrected, 1u);
  EXPECT_NEAR(std::abs(y(n, 0) - clean(n, 0)), 0.0, 1e-9);

  // Error confined to the weighted checksum lane: d1 closes, d2 does not.
  y = consistent_block(n, 3, 5);
  clean = y;
  y(n + 1, 2) += cplx{-0.4, 0.2};
  rep = abft_check(y, 1e-6);
  EXPECT_EQ(rep.counts.detected, 1u);
  EXPECT_EQ(rep.counts.corrected, 1u);
  EXPECT_NEAR(std::abs(y(n + 1, 2) - clean(n + 1, 2)), 0.0, 1e-9);
}

TEST(AbftTest, DoubleErrorIsUncorrectable) {
  const std::size_t n = 6;
  CMat y = consistent_block(n, 2, 6);
  // Two data-row errors in one column: the locate ratio is inconsistent
  // with a single-element hypothesis, so the column must be flagged, not
  // "repaired" into a wrong value.
  y(0, 0) += cplx{0.2, 0.0};
  y(3, 0) += cplx{0.3, 0.0};
  const AbftReport rep = abft_check(y, 1e-6);
  EXPECT_EQ(rep.counts.detected, 1u);
  EXPECT_EQ(rep.counts.corrected, 0u);
  EXPECT_EQ(rep.counts.uncorrectable, 1u);
}

// ------------------------------------------------------ GemmCore checked

GemmConfig gemm_cfg(bool abft) {
  GemmConfig cfg;
  cfg.mvm.ports = 8;
  cfg.abft.enabled = abft;
  return cfg;
}

TEST(GemmCoreAbftTest, NoiselessCheckedPathMatchesUnprotected) {
  const std::size_t n = 8, m = 4;
  const CMat w = random_real_tile(n, 0.3, 7);
  CMat x(n, m);
  aspen::lina::Rng rng(8);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c)
      x(r, c) = cplx{rng.uniform(-1.0, 1.0), 0.0};

  GemmCore checked(gemm_cfg(true));
  GemmCore plain(gemm_cfg(false));
  EXPECT_EQ(checked.data_ports(), n) << "callers keep the N x N view";
  checked.set_weights(w);
  plain.set_weights(w);

  CMat yc, yp;
  checked.multiply_noiseless(x, yc);
  plain.multiply_noiseless(x, yp);
  ASSERT_EQ(yc.rows(), n);
  ASSERT_EQ(yc.cols(), m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c)
      EXPECT_NEAR(std::abs(yc(r, c) - yp(r, c)), 0.0, 1e-6);
  EXPECT_EQ(checked.abft_counters().columns_checked, m);
  EXPECT_EQ(checked.abft_counters().detected, 0u);
  EXPECT_EQ(checked.last_abft().counts.detected, 0u);
}

TEST(GemmCoreAbftTest, PhaseUpsetDetectabilityFollowsMeshSide) {
  const std::size_t n = 8, m = 4;
  // One perturbed phase per run; returns {output changed, ABFT detected}.
  const auto probe = [&](bool output_side) {
    GemmCore core(gemm_cfg(true));
    core.set_weights(random_real_tile(n, 0.3, 9));
    CMat x(n, m);
    aspen::lina::Rng rng(10);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < m; ++c)
        x(r, c) = cplx{rng.uniform(-1.0, 1.0), 0.0};
    CMat clean;
    core.multiply_noiseless(x, clean);
    // Phase indices run mesh V (input side) first, then mesh U; the last
    // indices sit in U's output layers.
    const std::size_t idx =
        output_side ? core.engine().phase_state_size() - 1 : 0;
    core.engine().perturb_phase(idx, 0.8);
    CMat y;
    core.multiply_noiseless(x, y);
    double dmax = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < m; ++c)
        dmax = std::max(dmax, std::abs(y(r, c) - clean(r, c)));
    const auto& counts = core.last_abft().counts;
    EXPECT_EQ(counts.detected, counts.corrected + counts.uncorrectable);
    return std::make_pair(dmax > 1e-6, counts.detected > 0);
  };

  // Output-side (mesh U) upset mixes the rows of T = U S V^dagger, so
  // the row-checksum identities break on readout. A single output-layer
  // phase error is a single-row error per column — exactly the case ABFT
  // locates and repairs — so the returned data block is already clean.
  const auto [u_corrupts, u_detected] = probe(true);
  EXPECT_FALSE(u_corrupts) << "repaired in place, output must match clean";
  EXPECT_TRUE(u_detected);

  // Input-side (mesh V) upset yields T' = U S V'^dagger: the checksum
  // rows ride the same U S factor as the data rows, so the corrupted
  // output stays checksum-CONSISTENT. This is the structural blind spot
  // of row-checksum ABFT — the silent-corruption surface the campaign's
  // SDC accounting exists to quantify.
  const auto [v_corrupts, v_detected] = probe(false);
  EXPECT_TRUE(v_corrupts);
  EXPECT_FALSE(v_detected);
}

// -------------------------------------------- accelerator error surface

using PA = PhotonicAccelerator;

AcceleratorConfig accel_cfg(bool abft = false) {
  AcceleratorConfig cfg;
  cfg.gemm.mvm.ports = 8;
  cfg.max_cols = 16;
  cfg.gemm.abft.enabled = abft;
  return cfg;
}

std::vector<std::int16_t> random_fixed(std::size_t count, double lim,
                                       std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PA::to_fixed(rng.uniform(-lim, lim));
  return v;
}

void write_spm(PA& accel, std::uint32_t base,
               const std::vector<std::int16_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i)
    accel.write(base + static_cast<std::uint32_t>(2 * i),
                static_cast<std::uint16_t>(v[i]), 2);
}

void run_to_idle(PA& accel) {
  for (int i = 0; i < 1000000 && accel.busy(); ++i) accel.tick();
  ASSERT_FALSE(accel.busy());
}

TEST(AcceleratorFaultTest, CrcMismatchAbortsLoadAndLatchesError) {
  PA accel(accel_cfg());
  const auto a = random_fixed(64, 0.9, 11);
  write_spm(accel, PA::kSpmWBase, a);
  // Deliberately wrong expectation: flip one bit of the true CRC.
  accel.write(PA::kRegCrcW, crc32(a.data(), a.size() * 2) ^ 1u, 4);
  accel.write(PA::kRegCtrl, PA::kCtrlLoadWeights | PA::kCtrlCrcW, 4);
  run_to_idle(accel);

  // DONE still raises (the host handshake must not wedge) alongside the
  // latched ERROR, and ERR names the cause.
  const std::uint32_t status = accel.read(PA::kRegStatus, 4);
  EXPECT_TRUE(status & PA::kStatusDone);
  EXPECT_TRUE(status & PA::kStatusError);
  EXPECT_EQ(accel.read(PA::kRegErr, 4), PA::kErrCrcW);

  // The latch persists across reads and across a DONE-only clear...
  EXPECT_TRUE(accel.read(PA::kRegStatus, 4) & PA::kStatusError);
  accel.write(PA::kRegStatus, PA::kStatusDone, 4);
  const std::uint32_t after_done_clear = accel.read(PA::kRegStatus, 4);
  EXPECT_FALSE(after_done_clear & PA::kStatusDone);
  EXPECT_TRUE(after_done_clear & PA::kStatusError);

  // ...and clears only on the documented ERROR write (ERR clears too).
  accel.write(PA::kRegStatus, PA::kStatusError, 4);
  EXPECT_FALSE(accel.read(PA::kRegStatus, 4) & PA::kStatusError);
  EXPECT_EQ(accel.read(PA::kRegErr, 4), 0u);
}

TEST(AcceleratorFaultTest, MatchingCrcsRunCleanToGolden) {
  PA accel(accel_cfg());
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 12);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 13);
  write_spm(accel, PA::kSpmWBase, a);
  write_spm(accel, PA::kSpmXBase, x);
  accel.write(PA::kRegCols, static_cast<std::uint32_t>(wl.m), 4);
  accel.write(PA::kRegCrcW, crc32(a.data(), a.size() * 2), 4);
  accel.write(PA::kRegCrcX, crc32(x.data(), x.size() * 2), 4);
  accel.write(PA::kRegCtrl,
              PA::kCtrlStart | PA::kCtrlLoadWeights | PA::kCtrlCrcW |
                  PA::kCtrlCrcX,
              4);
  run_to_idle(accel);

  EXPECT_FALSE(accel.error());
  EXPECT_EQ(accel.read(PA::kRegErr, 4), 0u);
  const auto golden = golden_gemm(wl, a, x);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto got = static_cast<std::int16_t>(
        accel.read(PA::kSpmYBase + static_cast<std::uint32_t>(2 * i), 2));
    max_err = std::max(max_err, std::abs(got - golden[i]));
  }
  EXPECT_LE(max_err, 4);
}

TEST(AcceleratorFaultTest, ErrorLatchDoesNotBlockSubsequentOps) {
  PA accel(accel_cfg());
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 14);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 15);
  write_spm(accel, PA::kSpmWBase, a);
  accel.write(PA::kRegCrcW, crc32(a.data(), a.size() * 2) ^ 1u, 4);
  accel.write(PA::kRegCtrl, PA::kCtrlLoadWeights | PA::kCtrlCrcW, 4);
  run_to_idle(accel);
  ASSERT_TRUE(accel.error());

  // Retry with the correct expectation while ERROR is still latched: the
  // operation must run and produce the right answer (a wedged device
  // would defeat the guest's retry loop).
  write_spm(accel, PA::kSpmXBase, x);
  accel.write(PA::kRegCols, static_cast<std::uint32_t>(wl.m), 4);
  accel.write(PA::kRegCrcW, crc32(a.data(), a.size() * 2), 4);
  accel.write(PA::kRegCtrl,
              PA::kCtrlStart | PA::kCtrlLoadWeights | PA::kCtrlCrcW, 4);
  run_to_idle(accel);

  EXPECT_TRUE(accel.error()) << "the stale latch persists until W1C";
  const auto golden = golden_gemm(wl, a, x);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto got = static_cast<std::int16_t>(
        accel.read(PA::kSpmYBase + static_cast<std::uint32_t>(2 * i), 2));
    max_err = std::max(max_err, std::abs(got - golden[i]));
  }
  EXPECT_LE(max_err, 4);
}

TEST(AcceleratorFaultTest, OnDeviceAbftCountersExposedOverMmio) {
  PA accel(accel_cfg(true));
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  write_spm(accel, PA::kSpmWBase, random_fixed(wl.n * wl.n, 0.9, 16));
  write_spm(accel, PA::kSpmXBase, random_fixed(wl.n * wl.m, 0.9, 17));
  accel.write(PA::kRegCols, static_cast<std::uint32_t>(wl.m), 4);
  accel.write(PA::kRegCtrl, PA::kCtrlStart | PA::kCtrlLoadWeights, 4);
  run_to_idle(accel);
  // Deterministic fault-free tile: every column checked, none flagged.
  EXPECT_FALSE(accel.error());
  EXPECT_EQ(accel.read(PA::kRegAbftDetected, 4), 0u);
  EXPECT_EQ(accel.read(PA::kRegAbftCorrected, 4), 0u);
  EXPECT_EQ(accel.gemm().abft_counters().columns_checked, wl.m);
}

TEST(AcceleratorFaultTest, WatchdogFiresAndAlwaysRaisesIrq) {
  PA accel(accel_cfg());
  accel.write(PA::kRegWdog, 50, 4);
  EXPECT_TRUE(accel.watchdog_armed());
  EXPECT_EQ(accel.read(PA::kRegWdog, 4), 50u);
  for (int i = 0; i < 50; ++i) accel.tick();
  EXPECT_TRUE(accel.error());
  EXPECT_EQ(accel.read(PA::kRegErr, 4), PA::kErrWatchdog);
  EXPECT_TRUE(accel.irq_pending())
      << "watchdog expiry must wake a WFI'd host even with IRQ_EN clear";
  EXPECT_EQ(accel.read(PA::kRegWdog, 4), 0u);
  EXPECT_FALSE(accel.watchdog_armed());
}

TEST(AcceleratorFaultTest, WatchdogDisarmedByCompletionAndZeroWrite) {
  PA accel(accel_cfg());
  write_spm(accel, PA::kSpmWBase, random_fixed(64, 0.9, 18));
  accel.write(PA::kRegWdog, 1u << 20, 4);
  accel.write(PA::kRegCtrl, PA::kCtrlLoadWeights, 4);
  run_to_idle(accel);
  EXPECT_FALSE(accel.watchdog_armed()) << "completion disarms the deadline";
  EXPECT_FALSE(accel.error());

  accel.write(PA::kRegWdog, 1000, 4);
  ASSERT_TRUE(accel.watchdog_armed());
  accel.write(PA::kRegWdog, 0, 4);
  EXPECT_FALSE(accel.watchdog_armed());
  for (int i = 0; i < 2000; ++i) accel.tick();
  EXPECT_FALSE(accel.error()) << "a disarmed watchdog never fires";
}

// ------------------------------------------- checked offload end-to-end

std::vector<std::uint8_t> bytes_of(const std::vector<std::int16_t>& v) {
  std::vector<std::uint8_t> b(v.size() * 2);
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

TEST(CheckedOffloadTest, FaultFreeRunLeavesRecoveryRecordClean) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  System system(sc);
  const auto a = random_fixed(wl.n * wl.n, 0.9, 21);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 22);
  stage_gemm_data_checked(system, wl, a, x);
  system.load_program(build_gemm_offload_checked(wl, sc));
  const auto result = system.run();
  EXPECT_EQ(result.halt, rv::Halt::kEcallExit);
  EXPECT_FALSE(result.timed_out);

  const GemmRecoveryRecord rec = read_gemm_recovery(system, wl);
  EXPECT_EQ(rec.detected, 0u);
  EXPECT_EQ(rec.corrected, 0u);
  EXPECT_EQ(rec.retried, 0u);
  EXPECT_EQ(rec.fell_back, 0u);

  const auto golden = golden_gemm(wl, a, x);
  const auto got = read_gemm_result(system, wl);
  int max_err = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - golden[i]));
  EXPECT_LE(max_err, 4);
}

TEST(CheckedOffloadTest, PermanentSpmFaultExhaustsRetriesAndFallsBack) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  System system(sc);
  auto a = random_fixed(wl.n * wl.n, 0.9, 23);
  a[1] = 0;  // guarantees the stuck-at-1 bit below actually corrupts
  const auto x = random_fixed(wl.n * wl.m, 0.9, 24);
  stage_gemm_data_checked(system, wl, a, x);
  system.load_program(build_gemm_offload_checked(wl, sc));
  // Permanent fault in the weight SPM: every copy-in re-lands on the
  // stuck bit, so every CRC_W check fails and every retry is futile.
  system.pe(0).spm_w().set_stuck_bit(2, 6, true);

  const auto result = system.run();
  EXPECT_EQ(result.halt, rv::Halt::kEcallExit);
  EXPECT_FALSE(result.timed_out);

  const GemmRecoveryRecord rec = read_gemm_recovery(system, wl);
  EXPECT_EQ(rec.detected, wl.max_retries + 1)
      << "initial attempt plus every retry detects the stuck tile";
  EXPECT_EQ(rec.retried, wl.max_retries);
  EXPECT_EQ(rec.fell_back, 1u);

  // The software fallback reads A/X from DRAM, so its output is the
  // exact scalar golden — byte for byte, not merely within tolerance.
  EXPECT_EQ(read_gemm_result(system, wl), golden_gemm(wl, a, x));
}

// -------------------------------------------- recovery-aware campaigns

FaultCampaign::SystemFactory checked_factory(const SystemConfig& sc,
                                             const GemmWorkload& wl,
                                             std::vector<std::int16_t> a,
                                             std::vector<std::int16_t> x) {
  return [=]() {
    auto system = std::make_unique<System>(sc);
    stage_gemm_data_checked(*system, wl, a, x);
    system->load_program(build_gemm_offload_checked(wl, sc));
    return system;
  };
}

FaultCampaign::OutputReader result_reader(const GemmWorkload& wl) {
  return [wl](System& s) { return bytes_of(read_gemm_result(s, wl)); };
}

/// Programmable phases of the platform's photonic fault surface.
std::size_t campaign_phase_count(const SystemConfig& sc) {
  return PhotonicAccelerator(sc.accel).phase_state_size();
}

FaultCampaign make_recovery_campaign(const SystemConfig& sc,
                                     const GemmWorkload& wl,
                                     const std::vector<std::int16_t>& a,
                                     const std::vector<std::int16_t>& x) {
  FaultCampaign campaign(checked_factory(sc, wl, a, x), result_reader(wl),
                         800000);
  campaign.set_recovery([wl](System& s) { return read_gemm_recovery(s, wl); },
                        bytes_of(golden_gemm(wl, a, x)));
  return campaign;
}

TEST(RecoveryCampaignTest, StuckAtDatapathCoverageAtLeastNinetyPercent) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 31);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 32);
  FaultCampaign campaign = make_recovery_campaign(sc, wl, a, x);
  ASSERT_TRUE(campaign.recovery_enabled());

  aspen::lina::Rng rng(33);
  std::vector<FaultSpec> specs;
  for (const FaultTarget target :
       {FaultTarget::kAccelSpmW, FaultTarget::kAccelSpmX})
    for (const FaultModel model :
         {FaultModel::kStuckAt1, FaultModel::kStuckAt0}) {
      const auto batch = campaign.sample_specs(target, model, 10, rng);
      specs.insert(specs.end(), batch.begin(), batch.end());
    }
  const auto outcomes = campaign.run_trials(specs);
  const CampaignResult res = histogram_of(outcomes);
  EXPECT_EQ(res.total, 40);
  // The acceptance bar: stuck-at faults in the accelerator datapath that
  // corrupt anything must be caught by CRC/ABFT/watchdog >= 90% of the
  // time. Pre-consumption faults fail the CRC on every attempt and end in
  // the software fallback; post-consumption faults are masked.
  EXPECT_GE(res.detection_coverage(), 0.9);
  EXPECT_LE(res.sdc_rate(), 0.1);
}

TEST(RecoveryCampaignTest, TransientFaultsRecoverViaRetry) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 41);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 42);
  FaultCampaign campaign = make_recovery_campaign(sc, wl, a, x);

  aspen::lina::Rng rng(43);
  std::vector<FaultSpec> specs =
      campaign.sample_specs(FaultTarget::kAccelSpmW,
                            FaultModel::kTransientFlip, 12, rng);
  // Phase upsets restricted to mesh U's output layers — the band the
  // row-checksum identities actually cover (input-side upsets alias into
  // checksum-consistent outputs; see PhaseUpsetDetectabilityFollowsMeshSide
  // and the blind-spot trial below).
  const auto phases =
      static_cast<std::uint32_t>(campaign_phase_count(sc));
  const auto phase = campaign.sample_specs(FaultTarget::kAccelPhase,
                                           FaultModel::kTransientFlip, 12,
                                           rng, phases - 20, phases - 1);
  specs.insert(specs.end(), phase.begin(), phase.end());
  const CampaignResult res = histogram_of(campaign.run_trials(specs));
  EXPECT_EQ(res.total, 24);
  // Transient upsets are repairable: the retry re-copies the tile from
  // DRAM (flips) or reprograms the mesh (phase upsets), so detected
  // trials should overwhelmingly end corrected, not fallen-back.
  EXPECT_GE(res.detection_coverage(), 0.9);
}

TEST(RecoveryCampaignTest, PhaseBlindSpotIsAccountedAsSdc) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 71);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 72);
  FaultCampaign campaign = make_recovery_campaign(sc, wl, a, x);
  const std::uint64_t mid = campaign.golden_cycles() / 2;
  const auto phases = campaign_phase_count(sc);

  // Output-mesh upset after programming: ABFT flags the readout, the
  // ERROR latch fires, and the retry's reprogram erases the upset — the
  // canonical Detected+corrected trajectory.
  FaultSpec detectable;
  detectable.target = FaultTarget::kAccelPhase;
  detectable.model = FaultModel::kTransientFlip;
  detectable.cycle = mid;
  detectable.index = static_cast<std::uint32_t>(phases - 1);
  detectable.phase_delta_rad = 0.8;
  EXPECT_EQ(campaign.run_one(detectable), Outcome::kDetectedCorrected);

  // Input-mesh upset: the corrupted output is checksum-consistent, so no
  // detector fires and the verdict must be an honest SDC — the residual
  // surface the campaign's sdc_rate() reports.
  FaultSpec blind = detectable;
  blind.index = 0;
  EXPECT_EQ(campaign.run_one(blind), Outcome::kSdc);
}

TEST(RecoveryCampaignTest, RecoveryOffKeepsLegacyFourOutcomeTaxonomy) {
  SystemConfig sc;
  sc.accel = accel_cfg(true);
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 51);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 52);
  // Same checked platform, but no recovery reader: classification must
  // stay the legacy four-outcome behavior (the ABFT-off compatibility
  // contract extends to recovery-off campaigns).
  FaultCampaign campaign(checked_factory(sc, wl, a, x), result_reader(wl),
                         800000);
  ASSERT_FALSE(campaign.recovery_enabled());
  aspen::lina::Rng rng(53);
  const auto res = campaign.run_campaign(FaultTarget::kAccelSpmW,
                                         FaultModel::kStuckAt1, 10, rng);
  EXPECT_EQ(res.total, 10);
  EXPECT_EQ(res.counts.count(Outcome::kDetectedCorrected), 0u);
  EXPECT_EQ(res.counts.count(Outcome::kDetectedRecovered), 0u);
}

TEST(RecoveryCampaignTest, VerdictsBitIdenticalAcrossCpuTiers) {
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  const auto a = random_fixed(wl.n * wl.n, 0.9, 61);
  const auto x = random_fixed(wl.n * wl.m, 0.9, 62);

  const auto run_tier = [&](bool legacy_decode, bool block_tier) {
    SystemConfig sc;
    sc.accel = accel_cfg(true);
    sc.cpu.legacy_decode = legacy_decode;
    sc.cpu.block_tier = block_tier;
    FaultCampaign campaign = make_recovery_campaign(sc, wl, a, x);
    // Spec streams are drawn serially from a fixed seed, so every tier
    // samples the identical trial list.
    aspen::lina::Rng rng(63);
    auto specs = campaign.sample_specs(FaultTarget::kAccelSpmW,
                                       FaultModel::kStuckAt1, 8, rng);
    const auto flips = campaign.sample_specs(
        FaultTarget::kCpuRegfile, FaultModel::kTransientFlip, 8, rng);
    specs.insert(specs.end(), flips.begin(), flips.end());
    return campaign.run_trials(specs);
  };

  const auto block = run_tier(false, true);
  const auto uop = run_tier(false, false);
  const auto legacy = run_tier(true, false);
  EXPECT_EQ(block, uop) << "six-outcome verdicts must not depend on tier";
  EXPECT_EQ(block, legacy);
}

}  // namespace
