// Unit tests for the boundary-conversion helpers in photonics/units.hpp,
// the optical LinkBudget / ENOB analysis, and determinism of the shared
// aspen::lina::Rng (every EXPERIMENTS.md table is reproducible from its
// stated seed, so the generator's sequences are part of the contract).
#include <gtest/gtest.h>

#include <cmath>

#include "lina/random.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/units.hpp"

namespace {

using aspen::lina::Rng;
namespace phot = aspen::phot;

TEST(UnitsTest, PhotonEnergyAtTelecomWavelength) {
  // E = h*c/lambda at 1550 nm is ~0.8 eV = ~1.28e-19 J.
  const double e = phot::photon_energy(phot::kTelecomWavelength);
  EXPECT_NEAR(e / phot::kElementaryCharge, 0.8, 0.01);
  // Exact identity, not just a ballpark.
  EXPECT_DOUBLE_EQ(e, phot::kPlanck * phot::kSpeedOfLight /
                          phot::kTelecomWavelength);
}

TEST(UnitsTest, DbmWattRoundTrip) {
  EXPECT_DOUBLE_EQ(phot::dbm_to_watt(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(phot::dbm_to_watt(30.0), 1.0);
  EXPECT_NEAR(phot::dbm_to_watt(-30.0), 1e-6, 1e-18);
  for (double dbm : {-40.0, -3.0, 0.0, 7.5, 20.0}) {
    EXPECT_NEAR(phot::watt_to_dbm(phot::dbm_to_watt(dbm)), dbm, 1e-12);
  }
}

TEST(UnitsTest, PowerRatioDbRoundTrip) {
  EXPECT_DOUBLE_EQ(phot::db_to_power_ratio(0.0), 1.0);
  EXPECT_NEAR(phot::db_to_power_ratio(3.0), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(phot::db_to_power_ratio(10.0), 10.0);
  for (double db : {-20.0, -3.0, 0.0, 3.0, 13.0}) {
    EXPECT_NEAR(phot::power_ratio_to_db(phot::db_to_power_ratio(db)), db,
                1e-12);
  }
}

TEST(UnitsTest, LossDbToAmplitude) {
  // A loss of L dB in power is L/2 dB in field amplitude:
  // |t|^2 must equal the power transmission.
  for (double loss_db : {0.0, 0.1, 3.0, 10.0}) {
    const double amp = phot::loss_db_to_amplitude(loss_db);
    EXPECT_NEAR(amp * amp, phot::db_to_power_ratio(-loss_db), 1e-15);
  }
  EXPECT_DOUBLE_EQ(phot::loss_db_to_amplitude(0.0), 1.0);
}

TEST(LinkBudgetTest, LossesAccumulateAcrossStages) {
  phot::LinkBudget link(phot::dbm_to_watt(10.0));  // 10 dBm in
  link.add("laser-coupling", 1.5)
      .add_repeated("mesh-column", 0.25, 8)
      .add("detector-coupling", 1.5);
  EXPECT_EQ(link.stages().size(), 10u);
  EXPECT_NEAR(link.total_loss_db(), 5.0, 1e-12);
  // 10 dBm - 5 dB = 5 dBm out.
  EXPECT_NEAR(phot::watt_to_dbm(link.output_power_w()), 5.0, 1e-12);
}

TEST(LinkBudgetTest, RejectsInvalidInputs) {
  EXPECT_THROW(phot::LinkBudget(0.0), std::invalid_argument);
  EXPECT_THROW(phot::LinkBudget(-1e-3), std::invalid_argument);
  phot::LinkBudget link(1e-3);
  EXPECT_THROW(link.add("gain?", -1.0), std::invalid_argument);
}

TEST(LinkBudgetTest, EnobDegradesWithLoss) {
  // Deeper meshes -> more loss -> lower detection SNR -> fewer effective
  // bits. This is the Section 3 argument for minimizing optical loss.
  const phot::Photodetector det;
  phot::LinkBudget shallow(1e-3);
  shallow.add_repeated("col", 0.25, 4);
  phot::LinkBudget deep(1e-3);
  deep.add_repeated("col", 0.25, 64);
  EXPECT_GT(shallow.snr(det), deep.snr(det));
  EXPECT_GT(shallow.enob(det), deep.enob(det));
  EXPECT_GT(shallow.enob(det), 0.0);
  // ENOB follows the standard (SNR_dB - 1.76) / 6.02 formula.
  const double snr_db = 10.0 * std::log10(shallow.snr(det));
  EXPECT_NEAR(shallow.enob(det), (snr_db - 1.76) / 6.02, 1e-12);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_EQ(a.poisson(3.5), b.poisson(3.5));
  }
}

TEST(RngTest, PinnedRawEngineSequence) {
  // mt19937_64 output for a fixed seed is specified by the C++ standard,
  // so these values are portable across compilers and platforms. If this
  // test ever fails, every EXPERIMENTS.md table is suspect.
  Rng rng(0x5eed5eedULL);
  auto& eng = rng.engine();
  EXPECT_EQ(eng(), 7090392361162978728ULL);
  EXPECT_EQ(eng(), 16563534141566478799ULL);
  EXPECT_EQ(eng(), 13657529692677218509ULL);
}

TEST(RngTest, DistributionsStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    const auto k = rng.uniform_int(5, 9);
    EXPECT_GE(k, 5u);
    EXPECT_LE(k, 9u);
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  // Forking is itself deterministic...
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
  // ...and the parents stay in lock-step afterwards.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(parent1.uniform(), parent2.uniform());
  }
}

}  // namespace
