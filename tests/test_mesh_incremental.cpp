// Regression coverage for the column-factored mesh transfer cache: the
// incrementally maintained transfer() must stay within 1e-12 of the
// from-scratch transfer_uncached() evaluation across every layout style,
// error model, PCM state and randomized set_phase sequence — and the
// rewritten mesh::calibrate must reproduce the pre-refactor fidelities.
#include <gtest/gtest.h>

#include <cmath>

#include "lina/random.hpp"
#include "mesh/analysis.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "mesh/layout.hpp"
#include "mesh/physical_mesh.hpp"

namespace {

using namespace aspen::mesh;
using aspen::lina::CMat;
using aspen::lina::Rng;

constexpr double kTol = 1e-12;
constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Drive `ops` randomized single-phase updates, checking the cached
/// transfer against the from-scratch evaluation after every one.
void check_random_updates(PhysicalMesh& mesh, Rng& rng, int ops,
                          const char* tag) {
  const std::size_t nph = mesh.phase_count();
  ASSERT_GT(nph, 0u) << tag;
  for (int op = 0; op < ops; ++op) {
    const auto k = static_cast<std::size_t>(rng.uniform_int(0, nph - 1));
    mesh.set_phase(k, rng.uniform(0.0, kTwoPi));
    const double diff = mesh.transfer().max_abs_diff(mesh.transfer_uncached());
    ASSERT_LT(diff, kTol) << tag << " op=" << op << " slot=" << k;
  }
}

/// Sweep every phase slot in order (the calibrate access pattern: probe
/// two trial values, then settle), checking against scratch throughout.
void check_coordinate_sweep(PhysicalMesh& mesh, Rng& rng, const char* tag) {
  for (std::size_t k = 0; k < mesh.phase_count(); ++k) {
    const double old = mesh.phase(k);
    mesh.set_phase(k, 0.0);
    ASSERT_LT(mesh.transfer().max_abs_diff(mesh.transfer_uncached()), kTol)
        << tag << " probe0 slot=" << k;
    mesh.set_phase(k, rng.uniform(0.0, kTwoPi));
    ASSERT_LT(mesh.transfer().max_abs_diff(mesh.transfer_uncached()), kTol)
        << tag << " probe1 slot=" << k;
    mesh.set_phase(k, old + 0.1);
    ASSERT_LT(mesh.transfer().max_abs_diff(mesh.transfer_uncached()), kTol)
        << tag << " settle slot=" << k;
  }
}

MeshErrorModel dirty_model(std::uint64_t seed) {
  MeshErrorModel em;
  em.coupler_sigma = 0.05;
  em.phase_sigma = 0.04;
  em.thermal_crosstalk = 0.03;
  em.seed = seed;
  return em;
}

struct LayoutCase {
  const char* name;
  MeshLayout layout;
};

std::vector<LayoutCase> all_layouts(std::size_t n) {
  return {
      {"clements", clements_layout(n)},
      {"clements-sym", clements_layout(n, aspen::phot::MziStyle::kSymmetric)},
      {"reck", reck_layout(n)},
      {"fldzhyan", fldzhyan_layout(n)},
      {"redundant", redundant_layout(n, 2)},
  };
}

TEST(IncrementalTransferTest, MatchesScratchAcrossLayoutsCleanDie) {
  Rng rng(101);
  for (auto& lc : all_layouts(6)) {
    MeshErrorModel em;  // deterministic losses only
    PhysicalMesh mesh(lc.layout, em);
    check_random_updates(mesh, rng, 60, lc.name);
  }
}

TEST(IncrementalTransferTest, MatchesScratchAcrossLayoutsDirtyDie) {
  Rng rng(102);
  std::uint64_t die = 42;
  for (auto& lc : all_layouts(6)) {
    PhysicalMesh mesh(lc.layout, dirty_model(die++));
    check_random_updates(mesh, rng, 60, lc.name);
  }
}

TEST(IncrementalTransferTest, MatchesScratchWithPcm) {
  Rng rng(103);
  const aspen::phot::PcmCellConfig pcm =
      aspen::phot::pcm_config_for_two_pi(aspen::phot::make_gese());
  for (auto& lc : all_layouts(5)) {
    PhysicalMesh mesh(lc.layout, dirty_model(7));
    mesh.enable_pcm(pcm);
    mesh.set_drift_time(1e4);
    check_random_updates(mesh, rng, 40, lc.name);
  }
}

TEST(IncrementalTransferTest, CoordinateSweepPattern) {
  Rng rng(104);
  for (auto& lc : all_layouts(5)) {
    PhysicalMesh mesh(lc.layout, dirty_model(11));
    check_coordinate_sweep(mesh, rng, lc.name);
  }
}

TEST(IncrementalTransferTest, SurvivesGlobalStateChanges) {
  // program() / detuning / PCM toggles / drift interleaved with phase
  // updates must all invalidate correctly.
  Rng rng(105);
  PhysicalMesh mesh(clements_layout(6), dirty_model(3));
  const std::size_t nph = mesh.phase_count();
  const aspen::phot::PcmCellConfig pcm =
      aspen::phot::pcm_config_for_two_pi(aspen::phot::make_gese());
  for (int round = 0; round < 6; ++round) {
    std::vector<double> phases(nph);
    for (auto& p : phases) p = rng.uniform(0.0, kTwoPi);
    mesh.program(phases);
    ASSERT_LT(mesh.transfer().max_abs_diff(mesh.transfer_uncached()), kTol);
    switch (round % 4) {
      case 0: mesh.set_wavelength_detuning_nm(rng.uniform(-3.0, 3.0)); break;
      case 1: mesh.enable_pcm(pcm); break;
      case 2: mesh.set_drift_time(rng.uniform(0.0, 1e6)); break;
      case 3: mesh.disable_pcm(); break;
    }
    check_random_updates(mesh, rng, 20, "global-state");
  }
}

TEST(IncrementalTransferTest, LongUpdateSequenceStaysAccurate) {
  // Hundreds of rank-one updates (through several forced cache refreshes)
  // must not accumulate error beyond the tolerance.
  Rng rng(106);
  PhysicalMesh mesh(clements_layout(8), dirty_model(99));
  const std::size_t nph = mesh.phase_count();
  for (int op = 0; op < 600; ++op) {
    const auto k = static_cast<std::size_t>(rng.uniform_int(0, nph - 1));
    mesh.set_phase(k, rng.uniform(0.0, kTwoPi));
    (void)mesh.transfer();  // keep the incremental path hot
  }
  ASSERT_LT(mesh.transfer().max_abs_diff(mesh.transfer_uncached()), kTol);
}

TEST(IncrementalTransferTest, TransferAtDoesNotDisturbState) {
  PhysicalMesh mesh(clements_layout(5), dirty_model(13));
  Rng rng(107);
  std::vector<double> phases(mesh.phase_count());
  for (auto& p : phases) p = rng.uniform(0.0, kTwoPi);
  mesh.program(phases);
  const CMat t0 = mesh.transfer();
  const CMat detuned = mesh.transfer_at(4.0);
  EXPECT_GT(detuned.max_abs_diff(t0), 1e-6) << "detuning must matter";
  EXPECT_DOUBLE_EQ(mesh.wavelength_detuning_nm(), 0.0);
  EXPECT_LT(mesh.transfer().max_abs_diff(t0), 1e-15)
      << "transfer_at must not touch cached state";
  // And it must agree with the mutate-and-restore equivalent.
  mesh.set_wavelength_detuning_nm(4.0);
  EXPECT_LT(mesh.transfer().max_abs_diff(detuned), kTol);
}

TEST(IncrementalTransferTest, ColumnOfPhaseIsConsistent) {
  const MeshLayout layout = clements_layout(6);
  PhysicalMesh mesh(layout, MeshErrorModel{});
  // Phase slots are assigned to columns in nondecreasing order and every
  // column index is within range.
  std::size_t prev = 0;
  for (std::size_t k = 0; k < mesh.phase_count(); ++k) {
    const std::size_t c = mesh.column_of_phase(k);
    ASSERT_LT(c, layout.columns.size());
    ASSERT_GE(c, prev);
    prev = c;
  }
}

// -- Calibration pinning: the rewritten calibrate must reproduce the
// -- pre-refactor final fidelities (captured from the O(columns * N^2)
// -- implementation) to well within 1e-9.

TEST(CalibratePinTest, Clements6) {
  Rng rng(42);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  MeshErrorModel em;
  em.coupler_sigma = 0.03;
  em.phase_sigma = 0.05;
  em.seed = 123;
  PhysicalMesh mesh(clements_layout(6), em);
  mesh.program(clements_decompose(u).phases);
  const auto rep = calibrate(mesh, u);
  EXPECT_NEAR(rep.final_fidelity, 0.999982915073901, 1e-9);
}

TEST(CalibratePinTest, ClementsSymmetric5) {
  Rng rng(43);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  MeshErrorModel em;
  em.coupler_sigma = 0.04;
  em.phase_sigma = 0.03;
  em.seed = 321;
  PhysicalMesh mesh(clements_layout(5, aspen::phot::MziStyle::kSymmetric),
                    em);
  const auto rep = calibrate(mesh, u);
  EXPECT_NEAR(rep.final_fidelity, 0.995375712091583, 1e-9);
}

TEST(CalibratePinTest, Reck5) {
  Rng rng(44);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  MeshErrorModel em;
  em.coupler_sigma = 0.05;
  em.seed = 777;
  PhysicalMesh mesh(reck_layout(5), em);
  mesh.program(reck_decompose(u).phases);
  const auto rep = calibrate(mesh, u);
  EXPECT_NEAR(rep.final_fidelity, 0.999941928167531, 1e-9);
}

TEST(CalibratePinTest, Fldzhyan4) {
  Rng rng(45);
  const CMat u = aspen::lina::haar_unitary(4, rng);
  MeshErrorModel em;
  em.coupler_loss_db = 0.0;
  em.ps_loss_db = 0.0;
  em.routing_loss_db_per_column = 0.0;
  PhysicalMesh mesh(fldzhyan_layout(4, 8), em);
  CalibrationOptions opt;
  opt.restarts = 2;
  const auto rep = calibrate(mesh, u, opt);
  EXPECT_NEAR(rep.final_fidelity, 0.996639972253042, 1e-9);
}

TEST(CalibratePinTest, Clements16) {
  Rng rng(916);
  const CMat u = aspen::lina::haar_unitary(16, rng);
  MeshErrorModel em;
  em.coupler_sigma = 0.02;
  em.phase_sigma = 0.02;
  em.seed = 555;
  PhysicalMesh mesh(clements_layout(16), em);
  mesh.program(clements_decompose(u).phases);
  const auto rep = calibrate(mesh, u);
  EXPECT_NEAR(rep.final_fidelity, 0.999624859657566, 1e-9);
}

}  // namespace
