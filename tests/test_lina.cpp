// Unit tests for the numerics substrate (S1): complex matrices, Haar
// sampling, one-sided Jacobi SVD, statistics, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lina/complex_matrix.hpp"
#include "lina/random.hpp"
#include "lina/stats.hpp"
#include "lina/svd.hpp"
#include "lina/table.hpp"

namespace {

using aspen::lina::CMat;
using aspen::lina::cplx;
using aspen::lina::CVec;
using aspen::lina::Rng;

TEST(CVecTest, NormAndPower) {
  CVec v{cplx{3.0, 0.0}, cplx{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(v.power(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(CVecTest, DotIsConjugateLinear) {
  CVec a{cplx{0.0, 1.0}, cplx{2.0, 0.0}};
  CVec b{cplx{1.0, 0.0}, cplx{0.0, 1.0}};
  const cplx d = dot(a, b);
  // conj(i)*1 + conj(2)*i = -i + 2i = i
  EXPECT_NEAR(d.real(), 0.0, 1e-15);
  EXPECT_NEAR(d.imag(), 1.0, 1e-15);
}

TEST(CVecTest, DotSizeMismatchThrows) {
  CVec a(2), b(3);
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
}

TEST(CMatTest, IdentityMultiplication) {
  Rng rng(1);
  const CMat a = aspen::lina::ginibre(5, 5, rng);
  const CMat i = CMat::identity(5);
  EXPECT_LT((a * i).max_abs_diff(a), 1e-14);
  EXPECT_LT((i * a).max_abs_diff(a), 1e-14);
}

TEST(CMatTest, MatmulShapeMismatchThrows) {
  CMat a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(CMatTest, AdjointInvolution) {
  Rng rng(2);
  const CMat a = aspen::lina::ginibre(4, 6, rng);
  EXPECT_LT(a.adjoint().adjoint().max_abs_diff(a), 1e-15);
}

TEST(CMatTest, AdjointReversesProducts) {
  Rng rng(3);
  const CMat a = aspen::lina::ginibre(4, 4, rng);
  const CMat b = aspen::lina::ginibre(4, 4, rng);
  EXPECT_LT((a * b).adjoint().max_abs_diff(b.adjoint() * a.adjoint()), 1e-12);
}

TEST(CMatTest, FrobeniusMatchesTrace) {
  Rng rng(4);
  const CMat a = aspen::lina::ginibre(6, 3, rng);
  const double f = a.frobenius();
  const cplx t = (a.adjoint() * a).trace();
  EXPECT_NEAR(f * f, t.real(), 1e-9 * std::abs(t));
}

TEST(CMatTest, FidelitySelfIsOne) {
  Rng rng(5);
  const CMat u = aspen::lina::haar_unitary(6, rng);
  EXPECT_NEAR(CMat::fidelity(u, u), 1.0, 1e-12);
}

TEST(CMatTest, FidelityIgnoresGlobalPhase) {
  Rng rng(6);
  const CMat u = aspen::lina::haar_unitary(5, rng);
  const CMat v = u.scaled(std::polar(1.0, 1.234));
  EXPECT_NEAR(CMat::fidelity(u, v), 1.0, 1e-12);
}

TEST(CMatTest, FidelityOfOrthogonalMatricesIsSmall) {
  // Two different Haar unitaries overlap weakly for moderate N.
  Rng rng(7);
  const CMat u = aspen::lina::haar_unitary(16, rng);
  const CMat v = aspen::lina::haar_unitary(16, rng);
  EXPECT_LT(CMat::fidelity(u, v), 0.5);
}

TEST(CMatTest, TwoModeLeftMatchesFullEmbedding) {
  Rng rng(8);
  CMat a = aspen::lina::ginibre(5, 5, rng);
  const CMat orig = a;
  const cplx ta{0.6, 0.1}, tb{0.2, -0.3}, tc{-0.4, 0.2}, td{0.9, 0.0};
  aspen::lina::apply_two_mode_left(a, 1, 3, ta, tb, tc, td);
  CMat full = CMat::identity(5);
  full(1, 1) = ta;
  full(1, 3) = tb;
  full(3, 1) = tc;
  full(3, 3) = td;
  EXPECT_LT(a.max_abs_diff(full * orig), 1e-13);
}

TEST(CMatTest, TwoModeRightMatchesFullEmbedding) {
  Rng rng(9);
  CMat a = aspen::lina::ginibre(5, 5, rng);
  const CMat orig = a;
  const cplx ta{0.6, 0.1}, tb{0.2, -0.3}, tc{-0.4, 0.2}, td{0.9, 0.0};
  aspen::lina::apply_two_mode_right(a, 0, 2, ta, tb, tc, td);
  CMat full = CMat::identity(5);
  full(0, 0) = ta;
  full(0, 2) = tb;
  full(2, 0) = tc;
  full(2, 2) = td;
  EXPECT_LT(a.max_abs_diff(orig * full), 1e-13);
}

class HaarUnitaryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarUnitaryTest, IsUnitary) {
  Rng rng(42 + GetParam());
  const CMat u = aspen::lina::haar_unitary(GetParam(), rng);
  EXPECT_TRUE(u.is_unitary(1e-10)) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, HaarUnitaryTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

TEST(HaarUnitaryTest, ZeroSizeThrows) {
  Rng rng(1);
  EXPECT_THROW((void)aspen::lina::haar_unitary(0, rng), std::invalid_argument);
}

TEST(HaarUnitaryTest, PhaseDistributionIsFlat) {
  // Haar first-column entries should have uniformly distributed phases:
  // crude check via mean of e^{i arg} over many samples.
  Rng rng(11);
  cplx acc{0.0, 0.0};
  const int kSamples = 200;
  for (int s = 0; s < kSamples; ++s) {
    const CMat u = aspen::lina::haar_unitary(4, rng);
    acc += u(0, 0) / std::abs(u(0, 0));
  }
  EXPECT_LT(std::abs(acc) / kSamples, 0.15);
}

struct SvdShape {
  std::size_t rows, cols;
};

class SvdTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdTest, ReconstructsAndIsOrthonormal) {
  const auto [rows, cols] = GetParam();
  Rng rng(100 + rows * 17 + cols);
  const CMat a = aspen::lina::ginibre(rows, cols, rng);
  const auto r = aspen::lina::svd(a);

  EXPECT_LT(CMat::rel_error(a, r.reconstruct()), 1e-10);

  // Orthonormal columns of U and V.
  const std::size_t k = std::min(rows, cols);
  const CMat utu = r.u.adjoint() * r.u;
  const CMat vtv = r.v.adjoint() * r.v;
  EXPECT_LT(utu.max_abs_diff(CMat::identity(k)), 1e-10);
  EXPECT_LT(vtv.max_abs_diff(CMat::identity(k)), 1e-10);

  // Singular values non-negative and descending.
  for (std::size_t i = 0; i + 1 < r.sigma.size(); ++i) {
    EXPECT_GE(r.sigma[i], r.sigma[i + 1]);
    EXPECT_GE(r.sigma[i + 1], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdTest,
                         ::testing::Values(SvdShape{1, 1}, SvdShape{2, 2},
                                           SvdShape{4, 4}, SvdShape{8, 8},
                                           SvdShape{16, 16}, SvdShape{6, 3},
                                           SvdShape{3, 6}, SvdShape{12, 5},
                                           SvdShape{5, 12}, SvdShape{32, 32}));

TEST(SvdTest, RankDeficientMatrix) {
  // Build a rank-2 4x4 matrix; the two smallest singular values must be 0
  // and reconstruction must still hold.
  Rng rng(55);
  const CMat b = aspen::lina::ginibre(4, 2, rng);
  const CMat a = b * b.adjoint();  // rank <= 2, Hermitian PSD
  const auto r = aspen::lina::svd(a);
  EXPECT_LT(CMat::rel_error(a, r.reconstruct()), 1e-9);
  EXPECT_NEAR(r.sigma[2], 0.0, 1e-9 * r.sigma[0]);
  EXPECT_NEAR(r.sigma[3], 0.0, 1e-9 * r.sigma[0]);
  const CMat utu = r.u.adjoint() * r.u;
  EXPECT_LT(utu.max_abs_diff(CMat::identity(4)), 1e-9);
}

TEST(SvdTest, UnitaryHasUnitSingularValues) {
  Rng rng(66);
  const CMat u = aspen::lina::haar_unitary(8, rng);
  const auto r = aspen::lina::svd(u);
  for (double s : r.sigma) EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(SvdTest, SigmaMaxMatchesOperatorNormBound) {
  Rng rng(77);
  const CMat a = aspen::lina::ginibre(6, 6, rng);
  const auto r = aspen::lina::svd(a);
  // ||A x|| <= sigma_max ||x|| for random probes.
  for (int t = 0; t < 10; ++t) {
    const CVec x = aspen::lina::random_state(6, rng);
    EXPECT_LE((a * x).norm(), r.sigma_max() * 1.0 + 1e-9);
  }
}

TEST(SvdTest, EmptyThrows) {
  EXPECT_THROW((void)aspen::lina::svd(CMat{}), std::invalid_argument);
}

TEST(StatsTest, MeanVarianceMinMax) {
  aspen::lina::Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StatsTest, Percentiles) {
  aspen::lina::Stats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(StatsTest, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 0.5 * i);
  }
  const auto f = aspen::lina::linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-10);
  EXPECT_NEAR(f.slope, 0.5, 1e-12);
}

TEST(TableTest, RendersAlignedRows) {
  aspen::lina::Table t("demo");
  t.set_header({"arch", "N", "fidelity"});
  t.add_row({"clements", "8", aspen::lina::Table::num(0.9987, 4)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("clements"), std::string::npos);
  EXPECT_NE(out.find("0.9987"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  aspen::lina::Table t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumFormatsIntegersWithoutDecimals) {
  EXPECT_EQ(aspen::lina::Table::num(42.0), "42");
  EXPECT_EQ(aspen::lina::Table::num(2.5, 2), "2.50");
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(123);
  Rng child = a.fork();
  // Parent and child should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (a.uniform_int(0, 1000) == child.uniform_int(0, 1000)) ++same;
  EXPECT_LT(same, 8);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  aspen::lina::Stats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, RandomStateIsNormalized) {
  Rng rng(10);
  const CVec v = aspen::lina::random_state(7, rng);
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
}

TEST(InPlaceKernelTest, MulIntoMatchesOperator) {
  Rng rng(11);
  const CMat a = aspen::lina::ginibre(5, 7, rng);
  const CMat b = aspen::lina::ginibre(7, 4, rng);
  CMat out;
  aspen::lina::mul_into(out, a, b);
  EXPECT_LT(out.max_abs_diff(a * b), 1e-15);
  // Reuse with a different shape: storage is recycled, result exact.
  const CMat c = aspen::lina::ginibre(4, 6, rng);
  aspen::lina::mul_into(out, b, c);
  EXPECT_LT(out.max_abs_diff(b * c), 1e-15);
}

TEST(InPlaceKernelTest, MulIntoShapeMismatchThrows) {
  const CMat a(3, 4), b(5, 2);
  CMat out;
  EXPECT_THROW(aspen::lina::mul_into(out, a, b), std::invalid_argument);
}

TEST(InPlaceKernelTest, MulVecIntoMatchesOperator) {
  Rng rng(12);
  const CMat a = aspen::lina::ginibre(6, 3, rng);
  const CVec x = aspen::lina::random_state(3, rng);
  CVec out;
  aspen::lina::mul_vec_into(out, a, x);
  EXPECT_LT(aspen::lina::max_abs_diff(out, a * x), 1e-15);
}

TEST(InPlaceKernelTest, AdjointIntoMatchesAdjoint) {
  Rng rng(13);
  const CMat a = aspen::lina::ginibre(4, 6, rng);
  CMat out;
  aspen::lina::adjoint_into(out, a);
  EXPECT_LT(out.max_abs_diff(a.adjoint()), 1e-15);
}

TEST(InPlaceKernelTest, ResizeZeroFills) {
  CMat m(2, 2);
  m(0, 0) = cplx{3.0, -1.0};
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(m(r, c), (cplx{0.0, 0.0}));
}

}  // namespace
