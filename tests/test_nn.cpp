// Tests for the NN workload substrate (S5): tensors, datasets, MLP
// training, and the photonic execution backend.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/photonic_backend.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace aspen::nn;
using aspen::lina::Rng;

TEST(TensorTest, MatmulKnownValues) {
  Matrix a(2, 3), b(3, 2);
  double v = 1.0;
  for (auto& x : a.raw()) x = v++;
  for (auto& x : b.raw()) x = v++;
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
  EXPECT_THROW((void)(a + Matrix(3, 2)), std::invalid_argument);
}

TEST(TensorTest, TransposeInvolution) {
  Matrix a(3, 5);
  Rng rng(1);
  for (auto& x : a.raw()) x = rng.uniform(-1, 1);
  const Matrix att = a.transpose().transpose();
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    EXPECT_DOUBLE_EQ(att.raw()[i], a.raw()[i]);
}

TEST(TensorTest, ReluClampsNegatives) {
  Matrix a(1, 4);
  a(0, 0) = -1.0;
  a(0, 1) = 0.0;
  a(0, 2) = 2.0;
  a(0, 3) = -0.5;
  const Matrix r = relu(a);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 2), 2.0);
  const Matrix g = relu_grad(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 2), 1.0);
}

TEST(TensorTest, SoftmaxColumnsNormalized) {
  Matrix logits(3, 2);
  logits(0, 0) = 1.0;
  logits(1, 0) = 2.0;
  logits(2, 0) = 3.0;
  logits(0, 1) = 100.0;  // stability check
  logits(1, 1) = 100.0;
  logits(2, 1) = 100.0;
  const Matrix p = softmax_columns(logits);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < 3; ++r) sum += p(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_NEAR(p(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(DatasetTest, DigitsShapeAndDeterminism) {
  Rng rng1(7), rng2(7);
  const Dataset a = make_digits(5, rng1);
  const Dataset b = make_digits(5, rng2);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a.features(), 64u);
  EXPECT_EQ(a.classes, 10);
  for (std::size_t i = 0; i < a.inputs.raw().size(); ++i)
    EXPECT_DOUBLE_EQ(a.inputs.raw()[i], b.inputs.raw()[i]);
}

TEST(DatasetTest, PixelsInRange) {
  Rng rng(8);
  const Dataset d = make_digits(3, rng, /*noise=*/0.5);
  for (const double v : d.inputs.raw()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(DatasetTest, BlobsSeparable) {
  Rng rng(9);
  const Dataset d = make_blobs(3, 4, 30, rng, /*spread=*/0.02);
  // Tight blobs must be trivially separable by nearest-centroid.
  std::vector<std::vector<double>> centroids(3, std::vector<double>(4, 0.0));
  std::vector<int> counts(3, 0);
  for (std::size_t s = 0; s < d.size(); ++s) {
    const int k = d.labels[s];
    ++counts[static_cast<std::size_t>(k)];
    for (std::size_t f = 0; f < 4; ++f)
      centroids[static_cast<std::size_t>(k)][f] += d.inputs(f, s);
  }
  for (int k = 0; k < 3; ++k)
    for (auto& x : centroids[static_cast<std::size_t>(k)])
      x /= counts[static_cast<std::size_t>(k)];
  std::size_t hits = 0;
  for (std::size_t s = 0; s < d.size(); ++s) {
    int best = -1;
    double best_d = 1e300;
    for (int k = 0; k < 3; ++k) {
      double dist = 0.0;
      for (std::size_t f = 0; f < 4; ++f) {
        const double diff =
            d.inputs(f, s) - centroids[static_cast<std::size_t>(k)][f];
        dist += diff * diff;
      }
      if (dist < best_d) {
        best_d = dist;
        best = k;
      }
    }
    if (best == d.labels[s]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(d.size()), 0.98);
}

TEST(DatasetTest, SplitPreservesSamples) {
  Rng rng(10);
  const Dataset d = make_digits(10, rng);
  const Split s = split_dataset(d, 0.8, rng);
  EXPECT_EQ(s.train.size() + s.test.size(), d.size());
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_THROW((void)split_dataset(d, 1.5, rng), std::invalid_argument);
}

TEST(MlpTest, TrainsOnBlobs) {
  Rng rng(11);
  const Dataset d = make_blobs(3, 8, 60, rng);
  Mlp mlp({8, 16, 3}, rng);
  const double before = mlp.accuracy(d);
  mlp.train(d, /*epochs=*/30, /*lr=*/0.2, /*batch=*/16, rng);
  const double after = mlp.accuracy(d);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.95);
}

TEST(MlpTest, TrainsOnDigits) {
  Rng rng(12);
  const Dataset d = make_digits(40, rng, /*noise=*/0.08);
  const Split s = split_dataset(d, 0.75, rng);
  Mlp mlp({64, 32, 10}, rng);
  mlp.train(s.train, /*epochs=*/80, /*lr=*/0.15, /*batch=*/25, rng);
  EXPECT_GT(mlp.accuracy(s.train), 0.95);
  EXPECT_GT(mlp.accuracy(s.test), 0.75);
}

TEST(MlpTest, LossDecreases) {
  Rng rng(13);
  const Dataset d = make_blobs(2, 4, 50, rng);
  Mlp mlp({4, 8, 2}, rng);
  const double l0 = mlp.train_epoch(d, 0.1, 16, rng);
  for (int e = 0; e < 10; ++e) (void)mlp.train_epoch(d, 0.1, 16, rng);
  const double l1 = mlp.train_epoch(d, 0.1, 16, rng);
  EXPECT_LT(l1, l0);
}

TEST(MlpTest, BadShapeThrows) {
  Rng rng(14);
  EXPECT_THROW(Mlp({10}, rng), std::invalid_argument);
}

PhotonicBackendConfig clean_backend(std::size_t ports = 8) {
  PhotonicBackendConfig cfg;
  cfg.gemm.mvm.ports = ports;
  cfg.gemm.mvm.modulator.dac_bits = 12;
  cfg.gemm.mvm.modulator.extinction_ratio_db = 70.0;
  cfg.gemm.mvm.adc.bits = 12;
  return cfg;
}

TEST(PhotonicBackendTest, MatmulMatchesDigitalWithinTolerance) {
  PhotonicBackend backend(clean_backend());
  Rng rng(15);
  Matrix w(10, 20), x(20, 6);
  for (auto& v : w.raw()) v = rng.uniform(-0.8, 0.8);
  for (auto& v : x.raw()) v = rng.uniform(0.0, 1.0);
  const Matrix exact = w * x;
  const Matrix got = backend.matmul(w, x);
  double max_err = 0.0;
  for (std::size_t i = 0; i < exact.raw().size(); ++i)
    max_err = std::max(max_err, std::abs(exact.raw()[i] - got.raw()[i]));
  // Tiled analog compute with 12-bit converters on values of O(5).
  EXPECT_LT(max_err, 0.25);
  EXPECT_GT(backend.totals().tiles_programmed, 0u);
  EXPECT_GT(backend.totals().macs, 0u);
}

TEST(PhotonicBackendTest, AccuracySurvivesPhotonicExecution) {
  Rng rng(16);
  const Dataset d = make_digits(30, rng, 0.08);
  const Split s = split_dataset(d, 0.7, rng);
  Mlp mlp({64, 24, 10}, rng);
  mlp.train(s.train, 80, 0.15, 21, rng);
  const double digital = mlp.accuracy(s.test);

  PhotonicBackend backend(clean_backend());
  const double photonic = backend.accuracy(mlp, s.test);
  EXPECT_GT(digital, 0.70);
  EXPECT_GT(photonic, digital - 0.12)
      << "clean photonic execution must track digital accuracy";
}

TEST(PhotonicBackendTest, CoarsePcmWeightsCostAccuracy) {
  Rng rng(17);
  const Dataset d = make_digits(20, rng, 0.08);
  const Split s = split_dataset(d, 0.7, rng);
  Mlp mlp({64, 16, 10}, rng);
  mlp.train(s.train, 80, 0.15, 21, rng);

  PhotonicBackendConfig fine = clean_backend();
  fine.gemm.mvm.weights = aspen::core::WeightTechnology::kPcm;
  fine.gemm.mvm.pcm.level_bits = 7;
  PhotonicBackendConfig coarse = fine;
  coarse.gemm.mvm.pcm.level_bits = 2;

  PhotonicBackend bf(fine), bc(coarse);
  const double acc_fine = bf.accuracy(mlp, s.test);
  const double acc_coarse = bc.accuracy(mlp, s.test);
  EXPECT_GE(acc_fine, acc_coarse);
}

TEST(PhotonicBackendTest, ShapeMismatchThrows) {
  PhotonicBackend backend(clean_backend());
  EXPECT_THROW((void)backend.matmul(Matrix(4, 5), Matrix(6, 2)),
               std::invalid_argument);
}

TEST(PhotonicBackendTest, ZeroInputGivesZeroOutput) {
  PhotonicBackend backend(clean_backend());
  const Matrix w(8, 8);
  const Matrix x(8, 2);
  const Matrix y = backend.matmul(w, x);
  for (const double v : y.raw()) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
