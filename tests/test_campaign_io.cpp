// Tests for the distributed-campaign wire format (campaign_io): bit-exact
// round-trips of snapshots, spec shards and verdict histograms, loud
// rejection of malformed payloads, and the end-to-end guarantee the
// format exists for — a spec list partitioned into shards, executed
// through serialize/deserialize on adopted-staged campaigns and merged,
// yields the serial campaign's histogram bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>

#include "sysim/campaign_io.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen::sys;
using namespace aspen::sys::rv;

constexpr std::uint64_t kMaxCycles = 500000;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

SystemConfig small_config() {
  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  sc.accel.max_cols = 16;
  sc.max_cycles = kMaxCycles;
  return sc;
}

GemmWorkload small_workload() {
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  return wl;
}

/// Staged-system factory identical across every campaign/worker in a
/// test — the contract the wire format assumes.
FaultCampaign::SystemFactory make_factory(std::uint64_t seed) {
  const SystemConfig sc = small_config();
  const GemmWorkload wl = small_workload();
  const auto a = random_fixed(wl.n * wl.n, seed);
  const auto x = random_fixed(wl.n * wl.m, seed + 1);
  return [=]() {
    auto system = std::make_unique<System>(sc);
    stage_gemm_data(*system, wl, a, x);
    system->load_program(build_gemm_offload(wl, sc, OffloadPath::kMmrPolling));
    return system;
  };
}

FaultCampaign::OutputReader make_reader() {
  const GemmWorkload wl = small_workload();
  return [wl](System& s) {
    const auto y = read_gemm_result(s, wl);
    std::vector<std::uint8_t> bytes(y.size() * 2);
    std::memcpy(bytes.data(), y.data(), bytes.size());
    return bytes;
  };
}

std::vector<FaultSpec> mixed_specs(FaultCampaign& campaign,
                                   std::uint64_t seed, int per_target) {
  aspen::lina::Rng rng(seed);
  std::vector<FaultSpec> specs;
  for (const FaultTarget t :
       {FaultTarget::kCpuRegfile, FaultTarget::kDramData,
        FaultTarget::kAccelSpmW, FaultTarget::kAccelPhase}) {
    const auto s =
        campaign.sample_specs(t, FaultModel::kTransientFlip, per_target, rng);
    specs.insert(specs.end(), s.begin(), s.end());
  }
  return specs;
}

CampaignResult to_histogram(const std::vector<Outcome>& outcomes) {
  CampaignResult r;
  for (const Outcome o : outcomes) {
    ++r.counts[o];
    ++r.total;
  }
  return r;
}

// ------------------------------------------------------------ round trips

TEST(CampaignIoTest, SnapshotRoundTripIsBitExactAndRunnable) {
  const auto factory = make_factory(501);
  auto original = factory();
  const System::SystemSnapshot snap = original->snapshot();

  const std::vector<std::uint8_t> wire = serialize_snapshot(snap);
  const System::SystemSnapshot back = deserialize_snapshot(wire);
  // Re-serializing the deserialized snapshot must reproduce the payload
  // byte for byte — the strongest field-completeness check available
  // without enumerating every member.
  EXPECT_EQ(serialize_snapshot(back), wire);

  // The deserialized snapshot must be a complete platform image: restored
  // into a fresh identically-configured system it runs bit-identically to
  // the original.
  auto twin = factory();
  twin->restore(back);
  const System::RunResult ra = original->run();
  const System::RunResult rb = twin->run();
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instret, rb.instret);
  EXPECT_EQ(ra.halt, rb.halt);
  EXPECT_EQ(ra.exit_code, rb.exit_code);
  EXPECT_EQ(original->now(), twin->now());
  std::vector<std::uint8_t> da(original->config().dram_size);
  std::vector<std::uint8_t> db(da.size());
  original->read_dram(0, da.data(), da.size());
  twin->read_dram(0, db.data(), db.size());
  EXPECT_EQ(da == db, true) << "DRAM image differs after restored run";
}

TEST(CampaignIoTest, SpecBatchRoundTrip) {
  FaultCampaign campaign(make_factory(502), make_reader(), kMaxCycles);
  const std::vector<FaultSpec> specs = mixed_specs(campaign, 503, 6);
  ASSERT_FALSE(specs.empty());

  const std::vector<std::uint8_t> wire = serialize_specs(specs);
  const std::vector<FaultSpec> back = deserialize_specs(wire);
  EXPECT_EQ(serialize_specs(back), wire);
  ASSERT_EQ(back.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(back[i].target, specs[i].target);
    EXPECT_EQ(back[i].model, specs[i].model);
    EXPECT_EQ(back[i].cycle, specs[i].cycle);
    EXPECT_EQ(back[i].index, specs[i].index);
    EXPECT_EQ(back[i].bit, specs[i].bit);
    // Bit-pattern equality, not approximate: the wire format ships the
    // IEEE-754 image.
    std::uint64_t pa, pb;
    std::memcpy(&pa, &specs[i].phase_delta_rad, 8);
    std::memcpy(&pb, &back[i].phase_delta_rad, 8);
    EXPECT_EQ(pa, pb);
  }
  EXPECT_TRUE(deserialize_specs(serialize_specs({})).empty());
}

TEST(CampaignIoTest, HistogramRoundTripAndMerge) {
  CampaignResult r;
  r.counts[Outcome::kMasked] = 17;
  r.counts[Outcome::kSdc] = 4;
  r.counts[Outcome::kDueHang] = 1;
  r.total = 22;

  const std::vector<std::uint8_t> wire = serialize_histogram(r);
  const CampaignResult back = deserialize_histogram(wire);
  EXPECT_EQ(serialize_histogram(back), wire);
  EXPECT_EQ(back.counts, r.counts);
  EXPECT_EQ(back.total, r.total);

  CampaignResult a, b;
  a.counts[Outcome::kMasked] = 10;
  a.counts[Outcome::kSdc] = 3;
  a.total = 13;
  b.counts[Outcome::kMasked] = 7;
  b.counts[Outcome::kSdc] = 1;
  b.counts[Outcome::kDueHang] = 1;
  b.total = 9;
  const CampaignResult merged = merge_histograms({a, b});
  EXPECT_EQ(merged.counts, r.counts);
  EXPECT_EQ(merged.total, r.total);
  // Ordered-map merge: shard arrival order cannot matter.
  const CampaignResult swapped = merge_histograms({b, a});
  EXPECT_EQ(swapped.counts, merged.counts);
  EXPECT_EQ(swapped.total, merged.total);
}

TEST(CampaignIoTest, ShardRoundTrip) {
  const auto factory = make_factory(504);
  FaultCampaign campaign(make_factory(504), make_reader(), kMaxCycles);

  CampaignShard shard;
  shard.seq = 42;
  shard.point.cell = 7;
  shard.point.target = FaultTarget::kAccelPhase;
  shard.point.pcm_weights = true;
  shard.point.pcm_drift_time_s = 3600.0;
  shard.point.temperature_k = 340.0;
  shard.point.adc_bits = 6;
  shard.staged = factory()->snapshot();
  shard.golden = campaign.golden();
  shard.golden_cycles = campaign.golden_cycles();
  shard.max_cycles = kMaxCycles;
  shard.ladder_rungs = 8;
  shard.specs = mixed_specs(campaign, 505, 4);

  const std::vector<std::uint8_t> wire = serialize_shard(shard);
  const CampaignShard back = deserialize_shard(wire);
  EXPECT_EQ(serialize_shard(back), wire);
  EXPECT_EQ(back.seq, shard.seq);
  EXPECT_EQ(back.point.cell, shard.point.cell);
  EXPECT_EQ(back.point.target, shard.point.target);
  EXPECT_EQ(back.point.pcm_weights, shard.point.pcm_weights);
  EXPECT_EQ(back.point.pcm_drift_time_s, shard.point.pcm_drift_time_s);
  EXPECT_EQ(back.point.temperature_k, shard.point.temperature_k);
  EXPECT_EQ(back.point.adc_bits, shard.point.adc_bits);
  EXPECT_EQ(back.golden, shard.golden);
  EXPECT_EQ(back.golden_cycles, shard.golden_cycles);
  EXPECT_EQ(back.max_cycles, shard.max_cycles);
  EXPECT_EQ(back.ladder_rungs, shard.ladder_rungs);
  EXPECT_EQ(back.specs.size(), shard.specs.size());
  EXPECT_EQ(serialize_snapshot(back.staged), serialize_snapshot(shard.staged));
}

TEST(CampaignIoTest, ProgressAndJournalRoundTrip) {
  const CampaignProgress p{911, 64, 256};
  const std::vector<std::uint8_t> pw = serialize_progress(p);
  EXPECT_EQ(payload_kind(pw), PayloadKind::kProgress);
  const CampaignProgress pb = deserialize_progress(pw);
  EXPECT_EQ(pb.shard_seq, p.shard_seq);
  EXPECT_EQ(pb.trials_done, p.trials_done);
  EXPECT_EQ(pb.trials_total, p.trials_total);
  EXPECT_EQ(serialize_progress(pb), pw);

  JournalEntry e;
  e.shard_seq = 911;
  e.hist.counts[Outcome::kMasked] = 60;
  e.hist.counts[Outcome::kSdc] = 4;
  e.hist.total = 64;
  const std::vector<std::uint8_t> ew = serialize_journal_entry(e);
  EXPECT_EQ(payload_kind(ew), PayloadKind::kJournal);
  const JournalEntry eb = deserialize_journal_entry(ew);
  EXPECT_EQ(eb.shard_seq, e.shard_seq);
  EXPECT_EQ(eb.hist.counts, e.hist.counts);
  EXPECT_EQ(eb.hist.total, e.hist.total);
  EXPECT_EQ(serialize_journal_entry(eb), ew);

  // Kind mismatch across the new payloads is rejected like any other.
  EXPECT_THROW((void)deserialize_progress(ew), std::runtime_error);
  EXPECT_THROW((void)deserialize_journal_entry(pw), std::runtime_error);
}

TEST(CampaignIoTest, FrameBufferReassemblesByteDribbledStreams) {
  // Three frames of different kinds, delivered one byte at a time — the
  // worst pipe fragmentation possible. FrameBuffer must hand back each
  // payload whole, in order.
  const std::vector<std::vector<std::uint8_t>> payloads = {
      serialize_progress({1, 0, 8}),
      serialize_progress({1, 8, 8}),
      serialize_histogram({{{Outcome::kMasked, 8}}, 8}),
  };
  std::vector<std::uint8_t> stream;
  for (const auto& p : payloads) {
    const auto f = frame(p);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  FrameBuffer fb;
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t byte : stream) {
    fb.feed(&byte, 1);
    while (const auto p = fb.next()) got.push_back(*p);
  }
  ASSERT_EQ(got.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i)
    EXPECT_EQ(got[i], payloads[i]);
  EXPECT_EQ(fb.pending(), 0u);

  // A partial tail frame stays buffered, never yielded.
  const auto tail = frame(payloads[0]);
  fb.feed(tail.data(), tail.size() - 3);
  EXPECT_FALSE(fb.next().has_value());
  EXPECT_GT(fb.pending(), 0u);

  // An insane length prefix is corruption, not an allocation request.
  FrameBuffer evil;
  std::uint8_t huge[8];
  const std::uint64_t len = kMaxFrameBytes + 1;
  std::memcpy(huge, &len, 8);
  evil.feed(huge, 8);
  EXPECT_THROW((void)evil.next(), std::runtime_error);
}

// ------------------------------------------------------ malformed payloads

TEST(CampaignIoTest, MalformedPayloadsRejected) {
  FaultCampaign campaign(make_factory(506), make_reader(), kMaxCycles);
  aspen::lina::Rng rng(507);
  const auto specs = campaign.sample_specs(FaultTarget::kCpuRegfile,
                                           FaultModel::kStuckAt0, 3, rng);
  const std::vector<std::uint8_t> good = serialize_specs(specs);

  // Empty / truncated-below-header payloads.
  EXPECT_THROW((void)deserialize_specs(good.data(), 0), std::runtime_error);
  EXPECT_THROW((void)deserialize_specs(good.data(), 7), std::runtime_error);

  // Corrupt magic (byte 0), unknown version (byte 4).
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;
  EXPECT_THROW((void)deserialize_specs(bad), std::runtime_error);
  bad = good;
  bad[4] ^= 0xFF;
  EXPECT_THROW((void)deserialize_specs(bad), std::runtime_error);

  // Kind mismatch: a histogram payload is not a spec batch (and vice
  // versa) even though both parse as valid headers.
  CampaignResult hist;
  hist.counts[Outcome::kMasked] = 1;
  hist.total = 1;
  EXPECT_THROW((void)deserialize_specs(serialize_histogram(hist)),
               std::runtime_error);
  EXPECT_THROW((void)deserialize_histogram(good), std::runtime_error);

  // Truncation mid-body and trailing garbage.
  EXPECT_THROW((void)deserialize_specs(good.data(), good.size() - 1),
               std::runtime_error);
  EXPECT_THROW((void)deserialize_specs(good.data(), good.size() / 2),
               std::runtime_error);
  bad = good;
  bad.push_back(0);
  EXPECT_THROW((void)deserialize_specs(bad), std::runtime_error);

  // Invalid enum values: fault target (first spec body byte, offset
  // header(8) + count(8)), outcome in a histogram.
  bad = good;
  bad[16] = 0xFF;
  EXPECT_THROW((void)deserialize_specs(bad), std::runtime_error);
  std::vector<std::uint8_t> hist_wire = serialize_histogram(hist);
  hist_wire[16] = 0x7F;
  EXPECT_THROW((void)deserialize_histogram(hist_wire), std::runtime_error);

  // A spec-count field larger than the remaining payload must be
  // rejected before any allocation is sized from it.
  bad = good;
  bad[8] = 0xFF;
  bad[9] = 0xFF;
  EXPECT_THROW((void)deserialize_specs(bad), std::runtime_error);
}

/// The satellite contract for pipe debugging: a truncated payload and a
/// malformed enum must be distinguishable from the exception message
/// alone, and the message must locate the damage (byte offset) and
/// quantify it (expected vs actual sizes).
TEST(CampaignIoTest, MalformedPayloadErrorsCarryOffsetsAndSizes) {
  FaultCampaign campaign(make_factory(510), make_reader(), kMaxCycles);
  aspen::lina::Rng rng(511);
  const auto specs = campaign.sample_specs(FaultTarget::kCpuRegfile,
                                           FaultModel::kTransientFlip, 3, rng);
  const std::vector<std::uint8_t> good = serialize_specs(specs);

  const auto message_of = [](const auto& fn) -> std::string {
    try {
      fn();
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };

  // Short read: the message names the missing vs remaining byte counts
  // and the offset where the reader ran dry. (A progress payload is
  // fixed-size, so truncation lands mid-field rather than tripping the
  // element-count guard first.)
  const std::vector<std::uint8_t> prog = serialize_progress({9, 1, 4});
  const std::string trunc = message_of(
      [&] { (void)deserialize_progress(prog.data(), prog.size() - 5); });
  EXPECT_NE(trunc.find("truncated payload"), std::string::npos) << trunc;
  EXPECT_NE(trunc.find("byte offset"), std::string::npos) << trunc;
  EXPECT_NE(trunc.find("remain"), std::string::npos) << trunc;
  EXPECT_NE(trunc.find(std::to_string(prog.size() - 5) + "-byte payload"),
            std::string::npos)
      << trunc;

  // Malformed enum: offset of the bad byte plus the valid range.
  std::vector<std::uint8_t> bad = good;
  bad[16] = 0xEE;  // first spec's target (header 8 + count 8)
  const std::string enum_msg = message_of([&] { (void)deserialize_specs(bad); });
  EXPECT_NE(enum_msg.find("invalid"), std::string::npos) << enum_msg;
  EXPECT_NE(enum_msg.find("238"), std::string::npos) << enum_msg;  // 0xEE
  EXPECT_NE(enum_msg.find("byte offset 16"), std::string::npos) << enum_msg;
  EXPECT_NE(enum_msg.find("valid: 0.."), std::string::npos) << enum_msg;

  // Oversized count: the claimed element count vs the remaining bytes.
  bad = good;
  bad[8] = 0xFF;
  bad[9] = 0xFF;
  const std::string count_msg =
      message_of([&] { (void)deserialize_specs(bad); });
  EXPECT_NE(count_msg.find("element count"), std::string::npos) << count_msg;
  EXPECT_NE(count_msg.find("exceeds the remaining payload"),
            std::string::npos)
      << count_msg;
  EXPECT_NE(count_msg.find("byte offset 8"), std::string::npos) << count_msg;

  // Trailing garbage: how many bytes were left over, and where the
  // payload should have ended.
  bad = good;
  bad.insert(bad.end(), {1, 2, 3});
  const std::string trail = message_of([&] { (void)deserialize_specs(bad); });
  EXPECT_NE(trail.find("3 trailing bytes"), std::string::npos) << trail;
  EXPECT_NE(trail.find("byte offset " + std::to_string(good.size())),
            std::string::npos)
      << trail;
}

/// Every mutation an adversarial (or merely crashed) peer can apply to a
/// wire payload — truncation at every byte, damaged header fields, an
/// unknown payload tag, a hostile element count, trailing garbage — must
/// surface as the offset-tagged campaign_io error, never as an
/// out-of-bounds read or a silent half-parse. Exhaustive truncation is
/// the part the sanitizer leg leans on: each cut length walks the reader
/// up to a different field boundary.
TEST(CampaignIoTest, CorruptFrameTableRejectsEveryMutation) {
  FaultCampaign campaign(make_factory(512), make_reader(), kMaxCycles);
  aspen::lina::Rng rng(513);
  const auto specs = campaign.sample_specs(FaultTarget::kAccelSpmW,
                                           FaultModel::kStuckAt1, 4, rng);
  CampaignResult hist;
  hist.counts[Outcome::kMasked] = 5;
  hist.counts[Outcome::kDetectedCorrected] = 3;
  hist.counts[Outcome::kDetectedRecovered] = 2;
  hist.counts[Outcome::kSdc] = 1;
  hist.total = 11;
  JournalEntry entry;
  entry.shard_seq = 77;
  entry.hist = hist;

  struct Case {
    const char* name;
    std::vector<std::uint8_t> wire;
    std::function<void(const std::uint8_t*, std::size_t)> parse;
    bool counted;  ///< body starts with an element count at offset 8
  };
  const std::vector<Case> cases = {
      {"specs", serialize_specs(specs),
       [](const std::uint8_t* d, std::size_t n) { (void)deserialize_specs(d, n); },
       true},
      {"histogram", serialize_histogram(hist),
       [](const std::uint8_t* d, std::size_t n) {
         (void)deserialize_histogram(d, n);
       },
       true},
      {"progress", serialize_progress({3, 9, 27}),
       [](const std::uint8_t* d, std::size_t n) {
         (void)deserialize_progress(d, n);
       },
       false},
      {"journal", serialize_journal_entry(entry),
       [](const std::uint8_t* d, std::size_t n) {
         (void)deserialize_journal_entry(d, n);
       },
       false},
  };

  const auto expect_tagged_throw = [](const Case& c,
                                      const std::vector<std::uint8_t>& wire,
                                      const std::string& mutation) {
    try {
      c.parse(wire.data(), wire.size());
      ADD_FAILURE() << c.name << ": " << mutation << " was accepted";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("campaign_io:"), std::string::npos)
          << c.name << "/" << mutation << ": " << msg;
      EXPECT_NE(msg.find("byte offset"), std::string::npos)
          << c.name << "/" << mutation << ": " << msg;
    }
  };

  for (const Case& c : cases) {
    // The pristine payload parses (the table tests the mutations, not
    // the serializer).
    ASSERT_NO_THROW(c.parse(c.wire.data(), c.wire.size())) << c.name;

    // Truncation at every length, header through last-byte-missing.
    for (std::size_t cut = 0; cut < c.wire.size(); ++cut)
      expect_tagged_throw(c, {c.wire.begin(), c.wire.begin() + cut},
                          "truncate@" + std::to_string(cut));

    // Each damaged header field: magic bytes, version, payload kind
    // (both zero and far out of range).
    for (const std::size_t at : {0u, 1u, 2u, 3u, 4u, 5u}) {
      std::vector<std::uint8_t> bad = c.wire;
      bad[at] ^= 0xFF;
      expect_tagged_throw(c, bad, "header-flip@" + std::to_string(at));
    }
    for (const std::uint8_t kind : {0x00, 0x63}) {
      std::vector<std::uint8_t> bad = c.wire;
      bad[6] = kind;
      bad[7] = 0;
      expect_tagged_throw(c, bad, "kind=" + std::to_string(kind));
    }

    // Trailing garbage after a complete payload.
    std::vector<std::uint8_t> bad = c.wire;
    bad.insert(bad.end(), {0xDE, 0xAD});
    expect_tagged_throw(c, bad, "trailing-bytes");

    // A hostile element count must be rejected by the remaining-payload
    // bound before it sizes any allocation.
    if (c.counted) {
      bad = c.wire;
      for (std::size_t i = 0; i < 8; ++i) bad[8 + i] = 0xFF;
      expect_tagged_throw(c, bad, "count=2^64-1");
    }
  }
}

/// The v3 additions — recovery verdicts in histograms, the ABFT sweep
/// axis, the software-fallback golden, and the accelerator's fault state
/// (ERROR latch, CRC expectations, watchdog countdown, ABFT counters) —
/// must all survive the wire bit-exactly; a worker that dropped any of
/// them would classify recovery trials against the wrong reference.
TEST(CampaignIoTest, RecoveryFieldsRoundTripInV3Payloads) {
  CampaignResult hist;
  hist.counts[Outcome::kMasked] = 9;
  hist.counts[Outcome::kDetectedCorrected] = 6;
  hist.counts[Outcome::kDetectedRecovered] = 4;
  hist.counts[Outcome::kSdc] = 2;
  hist.counts[Outcome::kDueTrap] = 1;
  hist.total = 22;
  const std::vector<std::uint8_t> hw = serialize_histogram(hist);
  const CampaignResult hb = deserialize_histogram(hw);
  EXPECT_EQ(hb.counts, hist.counts);
  EXPECT_EQ(serialize_histogram(hb), hw);

  const auto factory = make_factory(514);
  FaultCampaign campaign(make_factory(514), make_reader(), kMaxCycles);

  CampaignShard shard;
  shard.seq = 99;
  shard.point.cell = 3;
  shard.point.abft = true;
  shard.golden = campaign.golden();
  shard.fallback_golden = campaign.golden();
  shard.fallback_golden[0] ^= 0x55;  // distinct from the primary golden
  shard.golden_cycles = campaign.golden_cycles();
  shard.max_cycles = kMaxCycles;
  shard.staged = factory()->snapshot();
  ASSERT_FALSE(shard.staged.pes.empty());
  // Fault-detection state a v2 reader had no fields for.
  PhotonicAccelerator::Snapshot& pe = shard.staged.pes[0];
  pe.error = true;
  pe.err_cause = 2;
  pe.crc_w_expect = 0xDEADBEEFu;
  pe.crc_x_expect = 0x1234ABCDu;
  pe.watchdog_cycles = 4096;
  pe.gemm.abft.columns_checked = 40;
  pe.gemm.abft.detected = 7;
  pe.gemm.abft.corrected = 5;
  pe.gemm.abft.uncorrectable = 2;
  shard.staged.dma.error = true;

  const std::vector<std::uint8_t> wire = serialize_shard(shard);
  const CampaignShard back = deserialize_shard(wire);
  EXPECT_EQ(serialize_shard(back), wire);
  EXPECT_TRUE(back.point.abft);
  EXPECT_EQ(back.fallback_golden, shard.fallback_golden);
  ASSERT_FALSE(back.staged.pes.empty());
  const PhotonicAccelerator::Snapshot& bpe = back.staged.pes[0];
  EXPECT_TRUE(bpe.error);
  EXPECT_EQ(bpe.err_cause, pe.err_cause);
  EXPECT_EQ(bpe.crc_w_expect, pe.crc_w_expect);
  EXPECT_EQ(bpe.crc_x_expect, pe.crc_x_expect);
  EXPECT_EQ(bpe.watchdog_cycles, pe.watchdog_cycles);
  EXPECT_EQ(bpe.gemm.abft.columns_checked, pe.gemm.abft.columns_checked);
  EXPECT_EQ(bpe.gemm.abft.detected, pe.gemm.abft.detected);
  EXPECT_EQ(bpe.gemm.abft.corrected, pe.gemm.abft.corrected);
  EXPECT_EQ(bpe.gemm.abft.uncorrectable, pe.gemm.abft.uncorrectable);
  EXPECT_TRUE(back.staged.dma.error);
}

// ------------------------------------------- sharded execution end to end

TEST(CampaignIoTest, TwoShardWirePathMatchesSerialBitForBit) {
  // The full multi-process protocol, in-process: a coordinator campaign
  // draws specs and runs them serially; the same specs split into two
  // shards, serialized, deserialized and executed by worker campaigns
  // that adopt the coordinator's staged snapshot + golden, must merge to
  // the identical histogram. This is the determinism contract the
  // bench's process-level fan-out relies on.
  const auto factory = make_factory(508);
  FaultCampaign coordinator(make_factory(508), make_reader(), kMaxCycles);
  const std::vector<FaultSpec> specs = mixed_specs(coordinator, 509, 6);
  const CampaignResult serial = to_histogram(coordinator.run_trials(specs, 1));

  const System::SystemSnapshot staged = factory()->snapshot();
  std::vector<CampaignResult> worker_results;
  const std::size_t half = specs.size() / 2;
  for (int w = 0; w < 2; ++w) {
    CampaignShard shard;
    shard.staged = staged;
    shard.golden = coordinator.golden();
    shard.golden_cycles = coordinator.golden_cycles();
    shard.max_cycles = kMaxCycles;
    shard.ladder_rungs = 4;  // workers may ladder; verdicts cannot change
    shard.specs.assign(specs.begin() + (w == 0 ? 0 : half),
                       w == 0 ? specs.begin() + half : specs.end());

    // Through the wire, as a worker process would receive it.
    const CampaignShard received = deserialize_shard(serialize_shard(shard));
    FaultCampaign worker(make_factory(508), make_reader(),
                         received.max_cycles);
    worker.adopt_staged(received.staged, received.golden,
                        received.golden_cycles);
    if (received.ladder_rungs > 1) worker.build_ladder(received.ladder_rungs);
    const CampaignResult hist =
        to_histogram(worker.run_trials(received.specs, 1));
    // ...and the verdict histogram travels back through the wire too.
    worker_results.push_back(
        deserialize_histogram(serialize_histogram(hist)));
  }

  const CampaignResult merged = merge_histograms(worker_results);
  EXPECT_EQ(merged.counts, serial.counts);
  EXPECT_EQ(merged.total, serial.total);
  EXPECT_EQ(merged.total, static_cast<int>(specs.size()));
}

}  // namespace
