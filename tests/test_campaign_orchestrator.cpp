// Self-fault-injection tests for the supervised campaign orchestrator: a
// harness that injects faults into the simulated system must itself
// survive faults in the host processes running it. Workers here are
// sabotaged on purpose — SIGKILLed mid-shard, hung past the heartbeat
// deadline, made to emit truncated histograms, or crashed on every
// attempt — and in every case the campaign must complete with a merged
// histogram bit-identical to the serial oracle. The resumable journal is
// exercised with a kill-and-resume round trip: an orchestrator abandoned
// mid-campaign must, on resume, re-run only the shards without a journal
// record.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "sysim/campaign_io.hpp"
#include "sysim/campaign_orchestrator.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

#if defined(__unix__)
#include <csignal>
#include <unistd.h>
#endif

namespace {

using namespace aspen::sys;

constexpr std::uint64_t kMaxCycles = 500000;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  aspen::lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

SystemConfig small_config() {
  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  sc.accel.max_cols = 16;
  sc.max_cycles = kMaxCycles;
  return sc;
}

GemmWorkload small_workload() {
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 4;
  return wl;
}

FaultCampaign::SystemFactory make_factory(std::uint64_t seed) {
  const SystemConfig sc = small_config();
  const GemmWorkload wl = small_workload();
  const auto a = random_fixed(wl.n * wl.n, seed);
  const auto x = random_fixed(wl.n * wl.m, seed + 1);
  return [=]() {
    auto system = std::make_unique<System>(sc);
    stage_gemm_data(*system, wl, a, x);
    system->load_program(build_gemm_offload(wl, sc, OffloadPath::kMmrPolling));
    return system;
  };
}

FaultCampaign::OutputReader make_reader() {
  const GemmWorkload wl = small_workload();
  return [wl](System& s) {
    const auto y = read_gemm_result(s, wl);
    std::vector<std::uint8_t> bytes(y.size() * 2);
    std::memcpy(bytes.data(), y.data(), bytes.size());
    return bytes;
  };
}

/// Worker-side factory: every cell in these tests uses the same small
/// platform (the sweep axes exercised here don't change the config).
PointFactory make_point_factory(std::uint64_t seed) {
  return [seed](const SweepPoint&) { return make_factory(seed); };
}

std::vector<FaultSpec> mixed_specs(FaultCampaign& campaign,
                                   std::uint64_t seed, int per_target) {
  aspen::lina::Rng rng(seed);
  std::vector<FaultSpec> specs;
  for (const FaultTarget t :
       {FaultTarget::kCpuRegfile, FaultTarget::kDramData,
        FaultTarget::kAccelPhase}) {
    const auto s =
        campaign.sample_specs(t, FaultModel::kTransientFlip, per_target, rng);
    specs.insert(specs.end(), s.begin(), s.end());
  }
  return specs;
}

std::vector<ShardTask> to_tasks(const std::vector<CampaignShard>& shards) {
  std::vector<ShardTask> tasks;
  for (const CampaignShard& shard : shards) {
    ShardTask t;
    t.seq = shard.seq;
    t.trials = shard.specs.size();
    t.payload = serialize_shard(shard);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

CampaignResult merge_completed(const std::vector<ShardOutcome>& outs) {
  std::vector<CampaignResult> parts;
  for (const ShardOutcome& o : outs) {
    EXPECT_TRUE(o.completed) << "shard " << o.seq << " never completed";
    parts.push_back(o.hist);
  }
  return merge_histograms(parts);
}

// ----------------------------------------------------------- shard planning

TEST(PlanShardsTest, PartitionsSpecsExactlyWithStableSeqs) {
  FaultCampaign campaign(make_factory(601), make_reader(), kMaxCycles);
  const std::vector<FaultSpec> specs = mixed_specs(campaign, 602, 4);  // 12

  SweepPoint point;
  point.cell = 3;
  point.adc_bits = 6;
  const std::vector<CampaignShard> shards =
      plan_shards(campaign, specs, 5, 4, point, 70);
  ASSERT_EQ(shards.size(), 5u);
  std::size_t covered = 0;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    EXPECT_EQ(shards[k].seq, 70 + k);
    EXPECT_EQ(shards[k].point.cell, 3u);
    EXPECT_EQ(shards[k].point.adc_bits, 6);
    EXPECT_EQ(shards[k].ladder_rungs, 4u);
    EXPECT_EQ(shards[k].max_cycles, kMaxCycles);
    EXPECT_EQ(shards[k].golden, campaign.golden());
    // Contiguous partition: shard k carries the next run of specs.
    for (const FaultSpec& s : shards[k].specs) {
      EXPECT_EQ(s.cycle, specs[covered].cycle);
      EXPECT_EQ(s.index, specs[covered].index);
      ++covered;
    }
  }
  EXPECT_EQ(covered, specs.size());  // every spec in exactly one shard

  // Remainder goes to the last shard; shard_count clamps to specs.size().
  const auto uneven = plan_shards(campaign, specs, 5);
  EXPECT_EQ(uneven.back().specs.size(),
            specs.size() - 4 * (specs.size() / 5));
  EXPECT_EQ(plan_shards(campaign, specs, 100).size(), specs.size());
  EXPECT_EQ(plan_shards(campaign, specs, 0).size(), 1u);
}

#if defined(__unix__)

// -------------------------------------------------------- supervised pool

/// Fixture state shared by the supervision drills: a coordinator
/// campaign, its serial-oracle histogram, and the planned shard tasks.
struct Drill {
  FaultCampaign coordinator;
  std::vector<FaultSpec> specs;
  CampaignResult serial;
  std::vector<CampaignShard> shards;
  std::vector<ShardTask> tasks;

  explicit Drill(std::uint64_t seed, int per_target = 4,
                 std::size_t shard_count = 3)
      : coordinator(make_factory(seed), make_reader(), kMaxCycles) {
    specs = mixed_specs(coordinator, seed + 1, per_target);
    serial = histogram_of(coordinator.run_trials(specs, 1));
    shards = plan_shards(coordinator, specs, shard_count);
    tasks = to_tasks(shards);
  }

  /// A healthy worker body (run in the forked child; fds 0/1 are the
  /// shard/frame pipes).
  [[nodiscard]] std::function<int(std::uint64_t, unsigned)> healthy(
      std::uint64_t seed) const {
    return [seed](std::uint64_t, unsigned) {
      return campaign_worker_main(0, 1, make_point_factory(seed),
                                  make_reader(), 4);
    };
  }

  [[nodiscard]] CampaignOrchestrator::SerialExecutor serial_exec() {
    return [this](const CampaignShard& shard) {
      return histogram_of(coordinator.run_trials(shard.specs, 1));
    };
  }
};

TEST(CampaignOrchestratorTest, HealthyPoolMatchesSerialBitForBit) {
  Drill d(611);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.child_entry = d.healthy(611);
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  EXPECT_EQ(orch.stats().launches, d.tasks.size());
  EXPECT_EQ(orch.stats().failures, 0u);
  EXPECT_EQ(orch.stats().serial_fallbacks, 0u);
  EXPECT_GT(orch.stats().progress_frames, 0u);
  for (const ShardOutcome& o : outs) {
    EXPECT_EQ(o.attempts, 1u);
    EXPECT_FALSE(o.serial_fallback);
    EXPECT_FALSE(o.from_journal);
  }
}

TEST(CampaignOrchestratorTest, SigkilledWorkerIsRetriedBitIdentical) {
  Drill d(612);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.backoff_initial_ms = 1;
  const auto healthy = d.healthy(612);
  oc.child_entry = [healthy](std::uint64_t seq, unsigned attempt) {
    if (seq == 0 && attempt == 0) {
      // Die the way a OOM-killed or operator-killed worker dies: after
      // reading the shard and proving liveness with one heartbeat.
      const CampaignShard shard = deserialize_shard(io::read_all(0));
      (void)io::write_frame(
          1, serialize_progress({shard.seq, 0, shard.specs.size()}));
      std::raise(SIGKILL);
    }
    return healthy(seq, attempt);
  };
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  EXPECT_GE(orch.stats().retries, 1u);
  EXPECT_EQ(orch.stats().serial_fallbacks, 0u);
  EXPECT_EQ(outs[0].attempts, 2u);  // the SIGKILLed attempt plus the retry
}

TEST(CampaignOrchestratorTest, HungWorkerIsKilledAndRetried) {
  Drill d(613);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.heartbeat_timeout_ms = 200;  // hang detector, tightened for the test
  oc.backoff_initial_ms = 1;
  const auto healthy = d.healthy(613);
  oc.child_entry = [healthy](std::uint64_t seq, unsigned attempt) {
    if (seq == 1 && attempt == 0) {
      const CampaignShard shard = deserialize_shard(io::read_all(0));
      (void)io::write_frame(
          1, serialize_progress({shard.seq, 0, shard.specs.size()}));
      for (;;) ::pause();  // heartbeats stop; the deadline must reap us
    }
    return healthy(seq, attempt);
  };
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  EXPECT_GE(orch.stats().kills, 1u);
  EXPECT_GE(orch.stats().retries, 1u);
  EXPECT_EQ(outs[1].attempts, 2u);
}

TEST(CampaignOrchestratorTest, CorruptHistogramIsRetried) {
  Drill d(614);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.backoff_initial_ms = 1;
  const auto healthy = d.healthy(614);
  oc.child_entry = [healthy](std::uint64_t seq, unsigned attempt) {
    if (seq == 2 && attempt == 0) {
      // A truncated histogram: the frame arrives whole, the payload does
      // not survive deserialization — a short disk write shipped onward.
      (void)io::read_all(0);
      std::vector<std::uint8_t> bad = serialize_histogram({});
      bad.resize(bad.size() / 2);
      (void)io::write_frame(1, bad);
      return 0;
    }
    return healthy(seq, attempt);
  };
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  EXPECT_GE(orch.stats().retries, 1u);
  EXPECT_EQ(outs[2].attempts, 2u);
}

TEST(CampaignOrchestratorTest, ExhaustedRetriesDegradeToSerialFallback) {
  Drill d(615);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.max_attempts = 2;
  oc.backoff_initial_ms = 1;
  const auto healthy = d.healthy(615);
  oc.child_entry = [healthy](std::uint64_t seq, unsigned attempt) {
    if (seq == 0) return 3;  // every attempt dies before any output
    return healthy(seq, attempt);
  };
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  EXPECT_EQ(orch.stats().serial_fallbacks, 1u);
  EXPECT_TRUE(outs[0].serial_fallback);
  EXPECT_EQ(outs[0].attempts, 2u);  // both worker attempts were consumed
  EXPECT_FALSE(outs[1].serial_fallback);
}

// ------------------------------------------------------- resumable journal

TEST(CampaignOrchestratorTest, JournalKillAndResumeRerunsOnlyUnfinished) {
  Drill d(616, /*per_target=*/4, /*shard_count=*/4);
  const std::string journal =
      ::testing::TempDir() + "aspen_orch_journal_" +
      std::to_string(::getpid()) + ".bin";
  std::remove(journal.c_str());

  // First orchestrator: dies (abandons the loop) after two completions.
  {
    OrchestratorConfig oc;
    oc.max_workers = 1;  // deterministic completion order: seq 0 then 1
    oc.journal_path = journal;
    oc.stop_after_shards = 2;
    oc.child_entry = d.healthy(616);
    CampaignOrchestrator orch(oc, d.serial_exec());
    const std::vector<ShardOutcome> outs = orch.run(d.tasks);
    EXPECT_TRUE(outs[0].completed);
    EXPECT_TRUE(outs[1].completed);
    EXPECT_FALSE(outs[2].completed);
    EXPECT_FALSE(outs[3].completed);
  }

  // Resumed orchestrator: journal satisfies seq 0/1; only 2/3 launch.
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.journal_path = journal;
  oc.child_entry = d.healthy(616);
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  EXPECT_EQ(orch.stats().journal_hits, 2u);
  EXPECT_EQ(orch.stats().launches, 2u);  // only the unfinished shards ran
  EXPECT_TRUE(outs[0].from_journal);
  EXPECT_TRUE(outs[1].from_journal);
  EXPECT_EQ(outs[0].attempts, 0u);
  EXPECT_FALSE(outs[2].from_journal);
  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  std::remove(journal.c_str());
}

TEST(CampaignOrchestratorTest, JournalToleratesTruncatedTail) {
  Drill d(617, /*per_target=*/3, /*shard_count=*/2);
  const std::string journal =
      ::testing::TempDir() + "aspen_orch_journal_tail_" +
      std::to_string(::getpid()) + ".bin";
  std::remove(journal.c_str());
  {
    OrchestratorConfig oc;
    oc.journal_path = journal;
    oc.child_entry = d.healthy(617);
    CampaignOrchestrator orch(oc, d.serial_exec());
    (void)orch.run(d.tasks);
  }
  // Simulate an orchestrator killed mid-append: a frame header promising
  // more bytes than the file holds.
  {
    std::FILE* f = std::fopen(journal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t partial[12] = {0xF0, 0x00, 0x00, 0x00, 0, 0, 0, 0,
                                      0xDE, 0xAD, 0xBE, 0xEF};
    std::fwrite(partial, 1, sizeof partial, f);
    std::fclose(f);
  }
  OrchestratorConfig oc;
  oc.journal_path = journal;
  oc.child_entry = d.healthy(617);
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);
  EXPECT_EQ(orch.stats().journal_hits, 2u);
  EXPECT_EQ(orch.stats().launches, 0u);
  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  std::remove(journal.c_str());
}

TEST(CampaignOrchestratorTest, JournalDuplicatedTailRecordMergesOnce) {
  // Crash window the journal must survive: the orchestrator fsyncs a
  // shard's record, dies before reaping the worker, and the resumed run
  // re-executes and re-journals the same shard — leaving two records for
  // one seq. Replay must merge that shard once; counting it twice would
  // inflate the histogram and break the serial bit-identity contract.
  Drill d(619, /*per_target=*/4, /*shard_count=*/4);
  const std::string journal =
      ::testing::TempDir() + "aspen_orch_journal_dup_" +
      std::to_string(::getpid()) + ".bin";
  std::remove(journal.c_str());

  {
    OrchestratorConfig oc;
    oc.max_workers = 1;  // deterministic completion order: seq 0 then 1
    oc.journal_path = journal;
    oc.stop_after_shards = 2;
    oc.child_entry = d.healthy(619);
    CampaignOrchestrator orch(oc, d.serial_exec());
    (void)orch.run(d.tasks);
  }

  // Duplicate the tail record verbatim (trials are deterministic, so a
  // re-run's record is bit-identical to the original's).
  {
    std::FILE* f = std::fopen(journal.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    FrameBuffer frames;
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
      frames.feed(chunk, n);
    std::fclose(f);
    std::vector<std::uint8_t> tail;
    while (const auto payload = frames.next()) tail = *payload;
    ASSERT_FALSE(tail.empty());
    const std::vector<std::uint8_t> framed = frame(tail);
    f = std::fopen(journal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(framed.data(), 1, framed.size(), f);
    std::fclose(f);
  }

  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.journal_path = journal;
  oc.child_entry = d.healthy(619);
  CampaignOrchestrator orch(oc, d.serial_exec());
  const std::vector<ShardOutcome> outs = orch.run(d.tasks);

  // Two distinct seqs satisfied from the journal — the duplicate is not a
  // third hit — and the merged histogram counts every trial exactly once.
  EXPECT_EQ(orch.stats().journal_hits, 2u);
  EXPECT_EQ(orch.stats().launches, 2u);
  const CampaignResult merged = merge_completed(outs);
  EXPECT_EQ(merged.counts, d.serial.counts);
  EXPECT_EQ(merged.total, d.serial.total);
  std::remove(journal.c_str());
}

// --------------------------------------------------------- multi-axis sweep

TEST(SweepGridTest, OrchestratedSweepMatchesSerialOraclePerCell) {
  SweepAxes axes;
  axes.faults = {{FaultTarget::kCpuRegfile, FaultModel::kTransientFlip},
                 {FaultTarget::kDramData, FaultModel::kStuckAt1}};
  SweepGrid grid(axes, make_point_factory(618), make_reader(), kMaxCycles);
  SweepRunConfig rc;
  rc.trials_per_cell = 8;
  rc.shards_per_cell = 2;

  const std::vector<SweepPoint> pts = grid.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].cell, 0u);
  EXPECT_EQ(pts[1].cell, 1u);
  EXPECT_EQ(pts[1].target, FaultTarget::kDramData);

  const std::vector<SweepCell> serial = grid.run_serial(rc);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.child_entry = [](std::uint64_t, unsigned) {
    return campaign_worker_main(0, 1, make_point_factory(618), make_reader(),
                                4);
  };
  CampaignOrchestrator::Stats stats;
  const std::vector<SweepCell> swept = grid.run(rc, oc, &stats);

  ASSERT_EQ(swept.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(swept[i].hist.counts, serial[i].hist.counts)
        << "cell " << i << " diverged from the serial oracle";
    EXPECT_EQ(swept[i].hist.total, rc.trials_per_cell);
    EXPECT_EQ(swept[i].shards, rc.shards_per_cell);
    EXPECT_EQ(swept[i].golden_cycles, serial[i].golden_cycles);
  }
  EXPECT_EQ(stats.launches, 4u);  // 2 cells x 2 shards, no failures
  EXPECT_EQ(stats.failures, 0u);
}

/// Worker-side factory for the ABFT sweep axis: abft cells get the
/// checked platform (CRC'd transfers, ABFT-enabled accelerator, the
/// retry/fallback guest workload); unprotected cells get the plain
/// offload. Both sides of the wire must make the same choice from
/// point.abft alone.
PointFactory make_abft_point_factory(std::uint64_t seed) {
  return [seed](const SweepPoint& p) -> FaultCampaign::SystemFactory {
    if (!p.abft) return make_factory(seed);
    SystemConfig sc = small_config();
    sc.accel.gemm.abft.enabled = true;
    const GemmWorkload wl = small_workload();
    const auto a = random_fixed(wl.n * wl.n, seed);
    const auto x = random_fixed(wl.n * wl.m, seed + 1);
    return [=]() {
      auto system = std::make_unique<System>(sc);
      stage_gemm_data_checked(*system, wl, a, x);
      system->load_program(build_gemm_offload_checked(wl, sc));
      return system;
    };
  };
}

TEST(SweepGridTest, AbftAxisMatchesSerialOracleWithRecoveryTaxonomy) {
  // One fault pair swept across abft = {off, on}: the abft cell runs the
  // checked workload and classifies with the six-outcome recovery
  // taxonomy, and the orchestrated histograms must still match the
  // serial oracle bit-for-bit — the same contract the legacy four
  // outcomes have, extended to the recovery verdicts.
  SweepAxes axes;
  axes.faults = {{FaultTarget::kAccelSpmW, FaultModel::kStuckAt1}};
  axes.abft = {false, true};
  SweepGrid grid(axes, make_abft_point_factory(620), make_reader(),
                 kMaxCycles);

  const GemmWorkload wl = small_workload();
  const auto a = random_fixed(wl.n * wl.n, 620);
  const auto x = random_fixed(wl.n * wl.m, 621);
  const auto fb = golden_gemm(wl, a, x);
  std::vector<std::uint8_t> fb_bytes(fb.size() * 2);
  std::memcpy(fb_bytes.data(), fb.data(), fb_bytes.size());
  const auto recovery = [wl](System& s) { return read_gemm_recovery(s, wl); };
  grid.set_recovery(recovery, fb_bytes);

  SweepRunConfig rc;
  rc.trials_per_cell = 10;
  rc.shards_per_cell = 2;

  const std::vector<SweepCell> serial = grid.run_serial(rc);
  OrchestratorConfig oc;
  oc.max_workers = 2;
  oc.child_entry = [recovery](std::uint64_t, unsigned) {
    return campaign_worker_main(0, 1, make_abft_point_factory(620),
                                make_reader(), 4, recovery);
  };
  CampaignOrchestrator::Stats stats;
  const std::vector<SweepCell> swept = grid.run(rc, oc, &stats);

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(swept.size(), serial.size());
  EXPECT_FALSE(serial[0].point.abft);
  EXPECT_TRUE(serial[1].point.abft);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(swept[i].hist.counts, serial[i].hist.counts)
        << "cell " << i << " diverged from the serial oracle";
    EXPECT_EQ(swept[i].hist.total, rc.trials_per_cell);
  }
  // The unprotected cell must stay in the legacy four-outcome space —
  // recovery verdicts exist only where the abft axis enabled them.
  for (const auto& kv : serial[0].hist.counts) {
    EXPECT_NE(kv.first, Outcome::kDetectedCorrected);
    EXPECT_NE(kv.first, Outcome::kDetectedRecovered);
  }
  EXPECT_EQ(stats.failures, 0u);
}

#endif  // __unix__

}  // namespace
