# Locate GoogleTest, preferring offline sources so the suite builds in
# sandboxed environments:
#   1. an installed package (GTestConfig.cmake / FindGTest),
#   2. vendored sources (third_party/googletest or /usr/src/googletest),
#   3. FetchContent from GitHub as a last resort (needs network).
# Defines GTest::gtest and GTest::gtest_main either way.

include_guard(GLOBAL)

find_package(GTest QUIET)
if(GTest_FOUND OR GTEST_FOUND)
  message(STATUS "ASPEN: using installed GoogleTest")
  return()
endif()

set(_aspen_gtest_src "")
foreach(_cand
    "${PROJECT_SOURCE_DIR}/third_party/googletest"
    "/usr/src/googletest")
  if(EXISTS "${_cand}/CMakeLists.txt")
    set(_aspen_gtest_src "${_cand}")
    break()
  endif()
endforeach()

if(_aspen_gtest_src)
  message(STATUS "ASPEN: using vendored GoogleTest at ${_aspen_gtest_src}")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${_aspen_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
else()
  message(STATUS "ASPEN: fetching GoogleTest from GitHub")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

# Older vendored trees export plain `gtest` targets; alias to GTest:: names.
if(NOT TARGET GTest::gtest AND TARGET gtest)
  add_library(GTest::gtest ALIAS gtest)
endif()
if(NOT TARGET GTest::gtest_main AND TARGET gtest_main)
  add_library(GTest::gtest_main ALIAS gtest_main)
endif()
