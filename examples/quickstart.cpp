// Quickstart: build an 8x8 photonic MVM accelerator (Clements mesh, paper
// Fig. 2b), program an arbitrary real matrix onto it, and push a vector
// through the full electro-optic path: DAC + modulators -> V-dagger mesh
// -> singular-value attenuators -> U mesh -> coherent receivers + ADC.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/energy_model.hpp"
#include "core/mvm_engine.hpp"
#include "lina/random.hpp"

int main() {
  using namespace aspen;

  core::MvmConfig cfg;
  cfg.ports = 8;
  cfg.architecture = mesh::Architecture::kClements;
  // A realistic die: +-0.5 % coupler imbalance, small static phase errors.
  cfg.errors.coupler_sigma = 0.01;
  cfg.errors.phase_sigma = 0.01;
  cfg.recalibrate = true;  // error-aware in-situ programming

  core::MvmEngine engine(cfg);

  // An arbitrary (non-unitary) weight matrix, programmed via SVD.
  lina::Rng rng(42);
  const lina::CMat w = lina::random_real(8, 8, rng, -1.0, 1.0);
  engine.set_matrix(w);
  std::printf("programmed 8x8 matrix, fidelity = %.6f\n",
              engine.programming_fidelity());
  std::printf("optical path insertion loss = %.2f dB\n",
              engine.insertion_loss_db());

  // One matrix-vector multiply through the physical model.
  const lina::CVec x = lina::random_state(8, rng);
  const lina::CVec y_exact = w * x;
  const lina::CVec y_photonic = engine.multiply(x);

  std::printf("\n%-4s %-22s %-22s\n", "i", "exact W*x", "photonic");
  for (std::size_t i = 0; i < 8; ++i)
    std::printf("%-4zu %+.4f %+.4fi        %+.4f %+.4fi\n", i,
                y_exact[i].real(), y_exact[i].imag(), y_photonic[i].real(),
                y_photonic[i].imag());

  std::printf("\nsymbol period: %.1f ps  (one MVM per symbol)\n",
              engine.symbol_time_s() * 1e12);
  std::printf("weight holding power: %.1f mW (thermo-optic)\n",
              engine.holding_power_w() * 1e3);

  // The same accelerator with non-volatile PCM weights: zero hold power.
  cfg.weights = core::WeightTechnology::kPcm;
  core::MvmEngine pcm_engine(cfg);
  pcm_engine.set_matrix(w);
  std::printf("with GeSe PCM weights:  %.1f mW hold power, %.6f fidelity "
              "(%d-level quantization)\n",
              pcm_engine.holding_power_w() * 1e3,
              pcm_engine.programming_fidelity(),
              1 << cfg.pcm.level_bits);

  const auto report = core::evaluate_accelerator(cfg, /*weight_reuse=*/1e6);
  std::printf("\nfootprint %.2f mm^2, throughput %.1f GOPS, %.2f TOPS/W\n",
              report.area_mm2, report.throughput_ops_s / 1e9,
              report.tops_per_watt);
  return 0;
}
