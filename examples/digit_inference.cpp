// Edge-inference scenario (paper Section 1 motivation): train a small MLP
// on the synthetic 8x8 digits task, then run inference with every dense
// layer executed on the photonic accelerator — comparing volatile
// thermo-optic weight holding against non-volatile multilevel PCM (GeSe)
// weights, including write-energy and accuracy effects.
//
//   ./examples/digit_inference
#include <cstdio>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/photonic_backend.hpp"

int main() {
  using namespace aspen;

  lina::Rng rng(7);
  const nn::Dataset data = nn::make_digits(40, rng, /*noise=*/0.08);
  const nn::Split split = nn::split_dataset(data, 0.75, rng);
  std::printf("synthetic digits: %zu train / %zu test samples, 64 features\n",
              split.train.size(), split.test.size());

  nn::Mlp mlp({64, 32, 10}, rng);
  mlp.train(split.train, /*epochs=*/80, /*lr=*/0.15, /*batch=*/25, rng);
  const double digital = mlp.accuracy(split.test);
  std::printf("digital float MLP accuracy:     %.3f\n", digital);

  // Photonic execution, thermo-optic weights (exact phases, static power).
  nn::PhotonicBackendConfig thermo;
  thermo.gemm.mvm.ports = 8;
  nn::PhotonicBackend b_thermo(thermo);
  std::printf("photonic (thermo-optic) acc.:   %.3f\n",
              b_thermo.accuracy(mlp, split.test));

  // Photonic execution, 64-level non-volatile GeSe PCM weights.
  nn::PhotonicBackendConfig pcm = thermo;
  pcm.gemm.mvm.weights = core::WeightTechnology::kPcm;
  pcm.gemm.mvm.pcm = phot::pcm_config_for_two_pi(phot::make_gese());
  nn::PhotonicBackend b_pcm(pcm);
  std::printf("photonic (GeSe PCM, 64 lvl):    %.3f\n",
              b_pcm.accuracy(mlp, split.test));

  // One month of drift on the PCM weights, no recalibration.
  nn::PhotonicBackend b_drift(pcm);
  b_drift.set_pcm_drift_time(30.0 * 24 * 3600);
  std::printf("photonic (PCM, 30 days drift):  %.3f\n",
              b_drift.accuracy(mlp, split.test));

  const auto& t = b_pcm.totals();
  std::printf("\nper-test-set cost on the accelerator: %llu tiles "
              "programmed, %llu MACs, %.2f us optical time, %.2f uJ\n",
              static_cast<unsigned long long>(t.tiles_programmed),
              static_cast<unsigned long long>(t.macs),
              t.optical_time_s * 1e6, t.energy_j * 1e6);
  return 0;
}
