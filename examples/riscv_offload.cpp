// Full-system offload demo (paper Fig. 3 / Section 5): a bare-metal
// RISC-V program computes an int16 GEMM three ways on the simulated
// platform — scalar software, MMR-programmed offload with polling, and
// DMA offload with interrupt synchronization — and the host compares
// cycle counts and checks results against the golden reference.
//
//   ./examples/riscv_offload
#include <cstdio>

#include "lina/random.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

int main() {
  using namespace aspen;
  using namespace aspen::sys;

  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  // Non-volatile PCM weights: ~110 ns programming (vs ~10 us thermo-optic)
  // keeps the offload latency transfer-dominated; 256 levels keep the
  // analog weight error at the Q3.12 LSB scale.
  sc.accel.gemm.mvm.weights = core::WeightTechnology::kPcm;
  sc.accel.gemm.mvm.pcm.level_bits = 8;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 32;

  // Stage random Q3.12 operands.
  lina::Rng rng(3);
  std::vector<std::int16_t> a(wl.n * wl.n), x(wl.n * wl.m);
  for (auto& v : a) v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  for (auto& v : x) v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  const auto golden = golden_gemm(wl, a, x);

  struct Variant {
    const char* name;
    std::vector<std::uint32_t> program;
  };
  const Variant variants[] = {
      {"software (scalar RV32IM)", build_gemm_software(wl, sc)},
      {"offload, MMR + polling",
       build_gemm_offload(wl, sc, OffloadPath::kMmrPolling)},
      {"offload, MMR + interrupt",
       build_gemm_offload(wl, sc, OffloadPath::kMmrInterrupt)},
      {"offload, DMA + interrupt",
       build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt)},
  };

  std::printf("8x8 weights x 32 columns, int16 Q3.12, 1 GHz system clock\n\n");
  std::printf("%-28s %12s %12s %10s %8s\n", "variant", "cycles", "instrs",
              "speedup", "max|err|");

  std::uint64_t baseline = 0;
  for (const auto& v : variants) {
    System system(sc);
    stage_gemm_data(system, wl, a, x);
    system.load_program(v.program);
    const auto r = system.run();
    if (r.halt != rv::Halt::kEcallExit) {
      std::printf("%-28s FAILED (halt=%d timeout=%d)\n", v.name,
                  static_cast<int>(r.halt), r.timed_out);
      return 1;
    }
    const auto y = read_gemm_result(system, wl);
    int max_err = 0;
    for (std::size_t i = 0; i < y.size(); ++i)
      max_err = std::max(max_err, std::abs(y[i] - golden[i]));
    if (baseline == 0) baseline = r.cycles;
    std::printf("%-28s %12llu %12llu %9.2fx %8d\n", v.name,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instret),
                static_cast<double>(baseline) / static_cast<double>(r.cycles),
                max_err);
  }

  // Multi-PE scaling: the same GEMM partitioned across a PE cluster.
  // Expect *negative* scaling here: the photonic compute per tile is a
  // handful of cycles, so the workload is bound by the shared bus + DMA,
  // and each extra PE adds weight-broadcast and handshake traffic. This
  // is the data-movement bottleneck the paper's introduction motivates,
  // reproduced at system level.
  std::printf("\nmulti-PE cluster (DMA distribution; IO-bound workload):\n");
  for (std::size_t pes : {1u, 2u, 4u}) {
    SystemConfig msc = sc;
    msc.num_pes = pes;
    System system(msc);
    stage_gemm_data(system, wl, a, x);
    system.load_program(build_gemm_multi_pe(wl, msc));
    const auto r = system.run();
    std::printf("  %zu PE: %llu cycles\n", pes,
                static_cast<unsigned long long>(r.cycles));
  }
  return 0;
}
