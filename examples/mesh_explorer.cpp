// Mesh design-space explorer: a small CLI over the architecture /
// error-model / weight-technology axes, for interactive what-if studies
// beyond the fixed sweeps in bench/.
//
//   ./examples/mesh_explorer [N] [coupler_sigma] [phase_sigma] [samples]
//   e.g. ./examples/mesh_explorer 8 0.02 0.01 5
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/energy_model.hpp"
#include "lina/table.hpp"
#include "mesh/analysis.hpp"

int main(int argc, char** argv) {
  using namespace aspen;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const double coupler_sigma = argc > 2 ? std::strtod(argv[2], nullptr) : 0.02;
  const double phase_sigma = argc > 3 ? std::strtod(argv[3], nullptr) : 0.01;
  const int samples = argc > 4 ? std::atoi(argv[4]) : 4;
  if (n < 2 || n > 32) {
    std::fprintf(stderr, "usage: %s [N 2..32] [coupler_sigma] [phase_sigma] "
                         "[samples]\n", argv[0]);
    return 1;
  }

  std::printf("design-space snapshot: N=%zu, coupler sigma=%.3f, phase "
              "sigma=%.3f, %d Haar targets per point\n\n",
              n, coupler_sigma, phase_sigma, samples);

  mesh::MeshErrorModel em;
  em.coupler_sigma = coupler_sigma;
  em.phase_sigma = phase_sigma;

  lina::Table t("architectures under this die model");
  t.set_header({"architecture", "cells", "depth", "IL dB", "F direct",
                "F recalibrated", "area mm2", "TOPS/W (pcm)"});
  for (auto arch :
       {mesh::Architecture::kReck, mesh::Architecture::kClements,
        mesh::Architecture::kClementsSym, mesh::Architecture::kRedundant,
        mesh::Architecture::kFldzhyan}) {
    // Fldzhyan programming is optimizer-based; keep big-N runs tractable.
    if (arch == mesh::Architecture::kFldzhyan && n > 10) {
      t.add_row({mesh::to_string(arch), "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const mesh::MeshLayout layout = mesh::make_layout(arch, n);
    mesh::PhysicalMesh probe(layout, em);

    const auto direct =
        mesh::haar_ensemble_fidelity(arch, n, em, samples, false, 17);
    const auto recal =
        mesh::haar_ensemble_fidelity(arch, n, em, samples, true, 17);

    core::MvmConfig cfg;
    cfg.ports = n;
    cfg.architecture = arch;
    cfg.weights = core::WeightTechnology::kPcm;
    const auto report = core::evaluate_accelerator(cfg);

    t.add_row({mesh::to_string(arch),
               lina::Table::num(double(layout.mzi_count())),
               lina::Table::num(double(layout.depth())),
               lina::Table::num(probe.nominal_insertion_loss_db(), 2),
               lina::Table::num(direct.fidelity.mean(), 5),
               lina::Table::num(recal.fidelity.mean(), 5),
               lina::Table::num(report.area_mm2, 3),
               lina::Table::num(report.tops_per_watt, 2)});
  }
  t.print(std::cout);
  std::printf("\nhint: bench_e1/e2 sweep these axes systematically; this "
              "tool is for spot checks.\n");
  return 0;
}
