// Photonic spiking neural network with STDP self-learning (paper
// Section 3): excitable Q-switched laser neurons provide the spikes, PCM
// cells provide both the synaptic weights and the accumulate-and-fire
// membranes. Two output neurons with winner-take-all inhibition learn to
// separate two spatio-temporal input patterns without labels — the
// Feldmann-2019-style self-learning demo.
//
//   ./examples/spiking_stdp
#include <cstdio>

#include "snn/network.hpp"
#include "snn/neuron.hpp"

namespace {

void print_weights(const aspen::snn::SpikingNetwork& net) {
  const auto w = net.weights();
  for (std::size_t o = 0; o < w.size(); ++o) {
    std::printf("  out%zu: ", o);
    for (const double x : w[o]) std::printf("%.2f ", x);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace aspen;

  // -- 1. The spiking source: an excitable Q-switched III-V laser -------
  snn::YamadaSpikingNeuron laser;
  laser.advance(400e-9, 0.0);     // quiescent: no spikes
  const auto quiet = laser.spike_times().size();
  laser.advance(2400e-9, 0.15);   // driven: pulse train
  std::printf("Yamada laser neuron: %zu spikes quiescent, %zu spikes under "
              "drive (excitability)\n",
              quiet, laser.spike_times().size() - quiet);

  // -- 2. Unsupervised pattern separation with STDP ---------------------
  snn::NetworkConfig cfg;
  cfg.inputs = 8;
  cfg.outputs = 2;
  cfg.learning = true;
  cfg.lateral_inhibition = 0.4;
  cfg.neuron.cell.accumulation_step = 0.6;
  cfg.neuron.threshold_fraction = 0.5;
  // Homeostasis: frequent winners raise their own threshold, forcing the
  // competing neuron to claim the other pattern.
  cfg.neuron.adaptation_delta = 0.25;
  cfg.neuron.adaptation_tau_s = 600e-9;
  cfg.stdp.a_plus = 0.10;
  cfg.stdp.a_minus = 0.05;
  cfg.stdp.tau_minus_s = 5e-9;
  cfg.seed = 0x77;
  snn::SpikingNetwork net(cfg);

  std::printf("\ninitial synapse weights (2 outputs x 8 inputs):\n");
  print_weights(net);

  // Pattern A pulses inputs 0-3, pattern B pulses inputs 4-7; patterns
  // alternate in blocks of 4 slots.
  snn::SpikeRaster in(8);
  const int kBlocks = 120;
  for (int block = 0; block < kBlocks; ++block) {
    const bool a = block % 2 == 0;
    for (int s = 0; s < 2; ++s) {
      const double t = (block * 4 + s) * cfg.slot_s + 1e-12;
      for (std::size_t i = a ? 0 : 4; i < (a ? 4u : 8u); ++i)
        in[i].push_back(t);
    }
  }
  (void)net.run(in, kBlocks * 4 * cfg.slot_s);

  std::printf("\nafter %d unsupervised pattern presentations:\n", kBlocks);
  print_weights(net);

  // -- 3. Read out the learned selectivity ------------------------------
  net.set_learning(false);
  const auto present = [&](bool pattern_a) {
    snn::SpikeRaster probe(8);
    for (int k = 0; k < 8; ++k) {
      const double t = k * cfg.slot_s + 1e-12;
      for (std::size_t i = pattern_a ? 0 : 4; i < (pattern_a ? 4u : 8u); ++i)
        probe[i].push_back(t);
    }
    const auto out = net.run(probe, 8 * cfg.slot_s);
    return std::make_pair(out[0].size(), out[1].size());
  };
  const auto [a0, a1] = present(true);
  const auto [b0, b1] = present(false);
  std::printf("\nresponse to pattern A: out0=%zu out1=%zu spikes\n", a0, a1);
  std::printf("response to pattern B: out0=%zu out1=%zu spikes\n", b0, b1);
  std::printf("total PCM write energy spent learning: %.2f nJ\n",
              net.total_write_energy_j() * 1e9);
  return 0;
}
