// E10 — End-to-end precision budget (ablation of the analog impairments).
// Paper Section 2 motivates ">50 GHz" converters; this experiment answers
// the question that pitch raises: how many effective bits does the full
// electro-optic path keep, and which impairment binds?
//
// Series 1: per-impairment budget for the default configuration.
// Series 2: ENOB vs laser power (shot-noise limit).
// Series 3: ENOB vs converter resolution (quantization limit).
// Series 4: analytic vs Monte-Carlo ENOB cross-check.
#include "bench_util.hpp"
#include "core/noise_analysis.hpp"

namespace {

using namespace aspen;

core::MvmConfig base() {
  core::MvmConfig cfg;
  cfg.ports = 8;
  return cfg;
}

}  // namespace

int main() {
  bench::header("E10 end-to-end precision budget",
                "Sec.2: high-bandwidth IO only pays off if the analog "
                "precision budget closes");

  {
    const auto b = core::analytic_precision_budget(base());
    lina::Table t("impairment budget (N=8, defaults: 8-bit DAC/ADC, 50 dB "
                  "ER, 10 mW laser, thermo-optic weights)");
    t.set_header({"source", "relative rms", "bits alone"});
    for (const auto& c : b.contributions)
      t.add_row({c.source, lina::Table::sci(c.relative_rms),
                 lina::Table::num(c.bits_alone(), 1)});
    t.add_row({"TOTAL (rss)", lina::Table::sci(b.total_relative_rms),
               lina::Table::num(b.enob, 1)});
    bench::show(t);
    std::printf("dominant impairment: %s\n\n", b.dominant().source.c_str());
  }

  {
    lina::Table t("ENOB vs laser power (shot-noise limit)");
    t.set_header({"laser mW", "analytic ENOB", "empirical ENOB"});
    for (double mw : {0.1, 1.0, 10.0, 100.0}) {
      core::MvmConfig cfg = base();
      cfg.laser.power_w = mw * 1e-3;
      cfg.modulator.dac_bits = 12;  // expose the optical noise floor
      cfg.adc.bits = 12;
      t.add_row({lina::Table::num(mw, 1),
                 lina::Table::num(core::analytic_precision_budget(cfg).enob, 2),
                 lina::Table::num(core::empirical_enob(cfg), 2)});
    }
    bench::show(t);
  }

  {
    lina::Table t("ENOB vs converter bits (DAC = ADC)");
    t.set_header({"bits", "analytic ENOB", "empirical ENOB"});
    for (int bits : {4, 6, 8, 10, 12}) {
      core::MvmConfig cfg = base();
      cfg.modulator.dac_bits = bits;
      cfg.adc.bits = bits;
      t.add_row({lina::Table::num(double(bits)),
                 lina::Table::num(core::analytic_precision_budget(cfg).enob, 2),
                 lina::Table::num(core::empirical_enob(cfg), 2)});
    }
    bench::show(t);
  }

  {
    lina::Table t("weight-technology precision cost");
    t.set_header({"weights", "analytic ENOB", "empirical ENOB"});
    for (const bool pcm : {false, true}) {
      core::MvmConfig cfg = base();
      cfg.modulator.dac_bits = 12;
      cfg.adc.bits = 12;
      cfg.weights = pcm ? core::WeightTechnology::kPcm
                        : core::WeightTechnology::kThermoOptic;
      t.add_row({pcm ? "PCM (GeSe, 64 lvl)" : "thermo-optic",
                 lina::Table::num(core::analytic_precision_budget(cfg).enob, 2),
                 lina::Table::num(core::empirical_enob(cfg), 2)});
    }
    bench::show(t);
  }
  return 0;
}
