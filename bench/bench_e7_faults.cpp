// E7 — Microarchitecture-level fault injection (the gem5-MARVEL feature).
// Paper Section 5: "a fault injection framework that operates at the
// microarchitecture level and supports transient and permanent fault
// injections to all hardware structures".
//
// Campaigns over the offloaded-GEMM workload: outcome distributions
// (Masked / SDC / DUE-trap / DUE-hang) per target structure and fault
// model, plus a photonic-specific phase-upset severity sweep.
#include <cstring>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/fault.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;

struct Bench {
  SystemConfig sc;
  GemmWorkload wl;
  std::vector<std::int16_t> a, x;

  Bench() {
    sc.accel.gemm.mvm.ports = 8;
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kPcm;
    sc.accel.gemm.mvm.pcm.level_bits = 8;
    wl.n = 8;
    wl.m = 8;
    lina::Rng rng(99);
    a.resize(wl.n * wl.n);
    x.resize(wl.n * wl.m);
    for (auto& v : a)
      v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
    for (auto& v : x)
      v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  }

  FaultCampaign campaign() const {
    auto factory = [this]() {
      auto system = std::make_unique<System>(sc);
      stage_gemm_data(*system, wl, a, x);
      system->load_program(
          build_gemm_offload(wl, sc, OffloadPath::kMmrPolling));
      return system;
    };
    auto reader = [wl = wl](System& s) {
      const auto y = read_gemm_result(s, wl);
      std::vector<std::uint8_t> bytes(y.size() * 2);
      std::memcpy(bytes.data(), y.data(), bytes.size());
      return bytes;
    };
    return FaultCampaign(factory, reader, /*max_cycles=*/400000);
  }
};

}  // namespace

int main() {
  bench::header("E7  fault-injection campaigns",
                "Sec.5: transient + permanent faults on all structures, "
                "gem5-MARVEL style");

  Bench b;
  const int kTrials = 40;

  {
    lina::Table t("outcome distribution per target (transient bit flips, "
                  "40 injections each)");
    t.set_header({"target", "masked", "SDC", "DUE-trap", "DUE-hang"});
    lina::Rng rng(1);
    for (const auto target :
         {FaultTarget::kCpuRegfile, FaultTarget::kDramData,
          FaultTarget::kAccelSpmW, FaultTarget::kAccelSpmX,
          FaultTarget::kAccelPhase}) {
      auto campaign = b.campaign();
      // Restrict DRAM faults to the workload data region so injections
      // actually matter (a random bit in 4 MiB of idle DRAM is masked).
      std::uint32_t lo = 0, hi = 0;
      if (target == FaultTarget::kDramData) {
        // Inject into the staged weight matrix A in DRAM: SDC when the
        // flip lands before the copy to the accelerator, masked after.
        lo = b.wl.a_offset;
        hi = b.wl.a_offset + static_cast<std::uint32_t>(b.wl.n * b.wl.n * 2) - 1;
      } else if (target == FaultTarget::kAccelSpmX) {
        // Restrict to the bytes this workload actually stages (the SPM is
        // sized for max_cols columns).
        hi = static_cast<std::uint32_t>(b.wl.n * b.wl.m * 2) - 1;
      }
      const auto r = campaign.run_campaign(
          target, FaultModel::kTransientFlip, kTrials, rng, lo, hi);
      t.add_row({to_string(target),
                 lina::Table::num(r.fraction(Outcome::kMasked), 2),
                 lina::Table::num(r.fraction(Outcome::kSdc), 2),
                 lina::Table::num(r.fraction(Outcome::kDueTrap), 2),
                 lina::Table::num(r.fraction(Outcome::kDueHang), 2)});
    }
    bench::show(t);
  }

  {
    lina::Table t("transient vs permanent faults (CPU register file)");
    t.set_header({"model", "masked", "SDC", "DUE-trap", "DUE-hang"});
    lina::Rng rng(2);
    for (const auto model :
         {FaultModel::kTransientFlip, FaultModel::kStuckAt0,
          FaultModel::kStuckAt1}) {
      auto campaign = b.campaign();
      const auto r = campaign.run_campaign(FaultTarget::kCpuRegfile, model,
                                           kTrials, rng);
      t.add_row({to_string(model),
                 lina::Table::num(r.fraction(Outcome::kMasked), 2),
                 lina::Table::num(r.fraction(Outcome::kSdc), 2),
                 lina::Table::num(r.fraction(Outcome::kDueTrap), 2),
                 lina::Table::num(r.fraction(Outcome::kDueHang), 2)});
    }
    bench::show(t);
  }

  {
    // Photonic configuration upsets: perturb one programmed phase in the
    // window between weight loading and compute (the two-phase offload
    // protocol exposes exactly this vulnerability window). Injection is
    // triggered on the LOAD-done edge rather than a cycle count.
    lina::Table t("photonic configuration upsets injected after weight "
                  "programming (20 trials each)");
    t.set_header({"delta phase rad", "masked", "SDC"});
    lina::Rng rng(3);
    auto golden_campaign = b.campaign();
    const auto& golden = golden_campaign.golden();
    for (const double delta : {0.01, 0.05, 0.1, 0.3, 1.0}) {
      int masked = 0, sdc = 0;
      for (int k = 0; k < 20; ++k) {
        auto system = std::make_unique<System>(b.sc);
        stage_gemm_data(*system, b.wl, b.a, b.x);
        system->load_program(
            build_gemm_offload(b.wl, b.sc, OffloadPath::kMmrPolling));
        // Run until the first busy->idle edge: LOAD_WEIGHTS finished.
        bool was_busy = false;
        while (!system->cpu().halted()) {
          const bool busy = system->pe(0).busy();
          if (was_busy && !busy) break;
          was_busy = busy;
          system->tick();
        }
        const std::size_t nph = system->pe(0).phase_state_size();
        const auto idx =
            static_cast<std::size_t>(rng.uniform_int(0, nph - 1));
        system->pe(0).inject_phase_fault(
            idx, rng.chance(0.5) ? delta : -delta);
        while (!system->cpu().halted() && system->now() < 400000)
          system->tick();
        const auto y = read_gemm_result(*system, b.wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        std::memcpy(bytes.data(), y.data(), bytes.size());
        if (bytes == golden)
          ++masked;
        else
          ++sdc;
      }
      t.add_row({lina::Table::num(delta, 2),
                 lina::Table::num(masked / 20.0, 2),
                 lina::Table::num(sdc / 20.0, 2)});
    }
    bench::show(t);
  }

  return 0;
}
