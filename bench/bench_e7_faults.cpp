// E7 — Microarchitecture-level fault injection (the gem5-MARVEL feature).
// Paper Section 5: "a fault injection framework that operates at the
// microarchitecture level and supports transient and permanent fault
// injections to all hardware structures".
//
// Campaigns over the offloaded-GEMM workload: outcome distributions
// (Masked / SDC / DUE-trap / DUE-hang) per target structure and fault
// model, plus a photonic-specific phase-upset severity sweep.
#include <cstring>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/fault.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;

struct Bench {
  SystemConfig sc;
  GemmWorkload wl;
  std::vector<std::int16_t> a, x;

  Bench() {
    sc.accel.gemm.mvm.ports = 8;
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kPcm;
    sc.accel.gemm.mvm.pcm.level_bits = 8;
    wl.n = 8;
    wl.m = 8;
    lina::Rng rng(99);
    a.resize(wl.n * wl.n);
    x.resize(wl.n * wl.m);
    for (auto& v : a)
      v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
    for (auto& v : x)
      v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  }

  FaultCampaign campaign() const {
    auto factory = [this]() {
      auto system = std::make_unique<System>(sc);
      stage_gemm_data(*system, wl, a, x);
      system->load_program(
          build_gemm_offload(wl, sc, OffloadPath::kMmrPolling));
      return system;
    };
    return FaultCampaign(factory, reader(), /*max_cycles=*/400000);
  }

  FaultCampaign::OutputReader reader() const {
    return [wl = wl](System& s) {
      const auto y = read_gemm_result(s, wl);
      std::vector<std::uint8_t> bytes(y.size() * 2);
      std::memcpy(bytes.data(), y.data(), bytes.size());
      return bytes;
    };
  }

  /// ABFT-protected variant: thermo-optic weights (the deterministic
  /// platform the default ABFT tolerance is calibrated for), CRC'd
  /// transfers and the checked guest workload with retry + software
  /// fallback. Recovery-aware classification splits the survived space
  /// into corrected/recovered and counts the residual as SDC.
  FaultCampaign checked_campaign() const {
    SystemConfig csc = sc;
    csc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
    csc.accel.gemm.abft.enabled = true;
    auto factory = [this, csc]() {
      auto system = std::make_unique<System>(csc);
      stage_gemm_data_checked(*system, wl, a, x);
      system->load_program(build_gemm_offload_checked(wl, csc));
      return system;
    };
    FaultCampaign c(factory, reader(), /*max_cycles=*/800000);
    const auto fb = golden_gemm(wl, a, x);
    std::vector<std::uint8_t> fb_bytes(fb.size() * 2);
    std::memcpy(fb_bytes.data(), fb.data(), fb_bytes.size());
    c.set_recovery([wl = wl](System& s) { return read_gemm_recovery(s, wl); },
                   fb_bytes);
    return c;
  }
};

}  // namespace

int main() {
  bench::header("E7  fault-injection campaigns",
                "Sec.5: transient + permanent faults on all structures, "
                "gem5-MARVEL style");

  Bench b;
  const int kTrials = 40;

  {
    lina::Table t("outcome distribution per target (transient bit flips, "
                  "40 injections each)");
    t.set_header({"target", "masked", "SDC", "DUE-trap", "DUE-hang"});
    lina::Rng rng(1);
    for (const auto target :
         {FaultTarget::kCpuRegfile, FaultTarget::kDramData,
          FaultTarget::kAccelSpmW, FaultTarget::kAccelSpmX,
          FaultTarget::kAccelPhase}) {
      auto campaign = b.campaign();
      // Restrict DRAM faults to the workload data region so injections
      // actually matter (a random bit in 4 MiB of idle DRAM is masked).
      std::uint32_t lo = 0, hi = 0;
      if (target == FaultTarget::kDramData) {
        // Inject into the staged weight matrix A in DRAM: SDC when the
        // flip lands before the copy to the accelerator, masked after.
        lo = b.wl.a_offset;
        hi = b.wl.a_offset + static_cast<std::uint32_t>(b.wl.n * b.wl.n * 2) - 1;
      } else if (target == FaultTarget::kAccelSpmX) {
        // Restrict to the bytes this workload actually stages (the SPM is
        // sized for max_cols columns).
        hi = static_cast<std::uint32_t>(b.wl.n * b.wl.m * 2) - 1;
      }
      const auto r = campaign.run_campaign(
          target, FaultModel::kTransientFlip, kTrials, rng, lo, hi);
      t.add_row({to_string(target),
                 lina::Table::num(r.fraction(Outcome::kMasked), 2),
                 lina::Table::num(r.fraction(Outcome::kSdc), 2),
                 lina::Table::num(r.fraction(Outcome::kDueTrap), 2),
                 lina::Table::num(r.fraction(Outcome::kDueHang), 2)});
    }
    bench::show(t);
  }

  {
    lina::Table t("transient vs permanent faults (CPU register file)");
    t.set_header({"model", "masked", "SDC", "DUE-trap", "DUE-hang"});
    lina::Rng rng(2);
    for (const auto model :
         {FaultModel::kTransientFlip, FaultModel::kStuckAt0,
          FaultModel::kStuckAt1}) {
      auto campaign = b.campaign();
      const auto r = campaign.run_campaign(FaultTarget::kCpuRegfile, model,
                                           kTrials, rng);
      t.add_row({to_string(model),
                 lina::Table::num(r.fraction(Outcome::kMasked), 2),
                 lina::Table::num(r.fraction(Outcome::kSdc), 2),
                 lina::Table::num(r.fraction(Outcome::kDueTrap), 2),
                 lina::Table::num(r.fraction(Outcome::kDueHang), 2)});
    }
    bench::show(t);
  }

  {
    // Photonic configuration upsets: perturb one programmed phase in the
    // window between weight loading and compute (the two-phase offload
    // protocol exposes exactly this vulnerability window). Injection is
    // triggered on the LOAD-done edge rather than a cycle count.
    lina::Table t("photonic configuration upsets injected after weight "
                  "programming (20 trials each)");
    t.set_header({"delta phase rad", "masked", "SDC"});
    lina::Rng rng(3);
    auto golden_campaign = b.campaign();
    const auto& golden = golden_campaign.golden();
    for (const double delta : {0.01, 0.05, 0.1, 0.3, 1.0}) {
      int masked = 0, sdc = 0;
      for (int k = 0; k < 20; ++k) {
        auto system = std::make_unique<System>(b.sc);
        stage_gemm_data(*system, b.wl, b.a, b.x);
        system->load_program(
            build_gemm_offload(b.wl, b.sc, OffloadPath::kMmrPolling));
        // Run until the first busy->idle edge: LOAD_WEIGHTS finished.
        bool was_busy = false;
        while (!system->cpu().halted()) {
          const bool busy = system->pe(0).busy();
          if (was_busy && !busy) break;
          was_busy = busy;
          system->tick();
        }
        const std::size_t nph = system->pe(0).phase_state_size();
        const auto idx =
            static_cast<std::size_t>(rng.uniform_int(0, nph - 1));
        system->pe(0).inject_phase_fault(
            idx, rng.chance(0.5) ? delta : -delta);
        while (!system->cpu().halted() && system->now() < 400000)
          system->tick();
        const auto y = read_gemm_result(*system, b.wl);
        std::vector<std::uint8_t> bytes(y.size() * 2);
        std::memcpy(bytes.data(), y.data(), bytes.size());
        if (bytes == golden)
          ++masked;
        else
          ++sdc;
      }
      t.add_row({lina::Table::num(delta, 2),
                 lina::Table::num(masked / 20.0, 2),
                 lina::Table::num(sdc / 20.0, 2)});
    }
    bench::show(t);
  }

  std::vector<bench::BenchRow> rows;

  {
    // ABFT-protected offload: the same datapath faults, but the checked
    // workload (CRC'd transfers, on-accelerator ABFT, guest retry and
    // software fallback) turns pass/fail into a coverage measurement —
    // what fraction of corrupting faults was detected, and how much
    // silent corruption remains.
    const int trials = bench::samples(40, 8);
    lina::Table t("ABFT-protected offload: recovery verdicts per fault "
                  "(stuck-at, accelerator datapath)");
    t.set_header({"target", "masked", "corrected", "recovered", "SDC",
                  "DUE", "coverage"});
    lina::Rng rng(4);
    struct Axis {
      FaultTarget target;
      FaultModel model;
      const char* name;
    };
    for (const Axis ax : {Axis{FaultTarget::kAccelSpmW,
                               FaultModel::kStuckAt1, "spm_w"},
                          Axis{FaultTarget::kAccelSpmX,
                               FaultModel::kStuckAt1, "spm_x"}}) {
      auto campaign = b.checked_campaign();
      std::uint32_t lo = 0, hi = 0;
      if (ax.target == FaultTarget::kAccelSpmX)
        hi = static_cast<std::uint32_t>(b.wl.n * b.wl.m * 2) - 1;
      const auto r =
          campaign.run_campaign(ax.target, ax.model, trials, rng, lo, hi);
      t.add_row({to_string(ax.target),
                 lina::Table::num(r.fraction(Outcome::kMasked), 2),
                 lina::Table::num(r.fraction(Outcome::kDetectedCorrected), 2),
                 lina::Table::num(r.fraction(Outcome::kDetectedRecovered), 2),
                 lina::Table::num(r.sdc_rate(), 2),
                 lina::Table::num(r.fraction(Outcome::kDueTrap) +
                                      r.fraction(Outcome::kDueHang),
                                  2),
                 lina::Table::num(r.detection_coverage(), 2)});
      rows.push_back({std::string("abft_coverage_") + ax.name,
                      r.detection_coverage(), 8, "frac"});
      rows.push_back({std::string("abft_sdc_") + ax.name, r.sdc_rate(), 8,
                      "frac"});
    }
    bench::show(t);
  }

  {
    // ABFT overhead on the steady-state streaming row (weights once,
    // then input tiles back to back): checksum lanes shrink the usable
    // tile and each op runs a check window, so this is where protection
    // costs the most relative to useful work.
    const std::size_t batches = 4;
    lina::Rng rng(5);
    std::vector<std::int16_t> xbig(b.wl.n * b.wl.m * batches);
    for (auto& v : xbig)
      v = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
    const auto stream_cycles = [&](bool abft) {
      SystemConfig scc = b.sc;
      scc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
      scc.accel.gemm.abft.enabled = abft;
      auto system = std::make_unique<System>(scc);
      GemmWorkload big = b.wl;
      big.m = b.wl.m * batches;
      stage_gemm_data(*system, big, b.a, xbig);
      system->load_program(build_gemm_offload_stream(
          b.wl, scc, OffloadPath::kMmrPolling, batches));
      return system->run().cycles;
    };
    const std::uint64_t off = stream_cycles(false);
    const std::uint64_t on = stream_cycles(true);
    const double pct =
        off == 0 ? 0.0
                 : 100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
                       static_cast<double>(off);
    lina::Table t("ABFT overhead, streaming offload (8x8 tile, 4 batches)");
    t.set_header({"config", "guest cycles"});
    t.add_row({"abft off", lina::Table::num(static_cast<double>(off), 0)});
    t.add_row({"abft on", lina::Table::num(static_cast<double>(on), 0)});
    t.add_row({"overhead %", lina::Table::num(pct, 2)});
    bench::show(t);
    rows.push_back({"abft_stream_overhead_8x8", pct, 8, "%"});
  }

  bench::json_report("BENCH_e7.json", rows);
  return 0;
}
