#pragma once
/// Shared helpers for the experiment harness binaries (bench_e1 .. e9).
/// Every binary is standalone: it runs its sweep and prints the rows that
/// EXPERIMENTS.md records, on deterministic seeds.

#include <cstdio>
#include <iostream>

#include "lina/table.hpp"

namespace aspen::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("################################################################\n");
  std::printf("# %s\n", experiment);
  std::printf("# paper hook: %s\n", claim);
  std::printf("################################################################\n\n");
}

inline void show(lina::Table& t) {
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace aspen::bench
